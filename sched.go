package aorta

import (
	"math/rand"

	"aorta/internal/sched"
	"aorta/internal/workload"
)

// Scheduling surface: the paper's action workload scheduling problem
// (§5) and its five algorithms, usable as a standalone library.

// SchedProblem is one workload scheduling instance: n action requests, m
// devices, candidate sets and a sequence-dependent cost model.
type SchedProblem = sched.Problem

// SchedRequest is one action request to schedule.
type SchedRequest = sched.Request

// SchedAssignment is a complete schedule: per-device service sequences.
type SchedAssignment = sched.Assignment

// SchedResult carries the makespan and its scheduling/service breakdown.
type SchedResult = sched.Result

// Scheduler is one scheduling algorithm.
type Scheduler = sched.Algorithm

// SchedAccounting converts probes and cost evaluations into virtual
// scheduling time (see DESIGN.md §5).
type SchedAccounting = sched.Accounting

// DeviceID identifies a device within a scheduling problem.
type DeviceID = sched.DeviceID

// Estimator is the scheduling cost model.
type Estimator = sched.Estimator

// The five algorithms of the paper's evaluation plus the exact solver.
func SchedulerLERFASRFE() Scheduler { return sched.LERFASRFE{} }

// SchedulerSRFAE returns the paper's Algorithm 2 (the engine default).
func SchedulerSRFAE() Scheduler { return sched.SRFAE{} }

// SchedulerLS returns classic greedy List Scheduling.
func SchedulerLS() Scheduler { return sched.LS{} }

// SchedulerSA returns the simulated-annealing baseline.
func SchedulerSA() Scheduler { return &sched.SA{} }

// SchedulerRandom returns the RANDOM baseline.
func SchedulerRandom() Scheduler { return sched.Random{} }

// SchedulerOptimal returns the exact solver (small instances only).
func SchedulerOptimal() Scheduler { return &sched.Optimal{} }

// RunScheduler executes one algorithm on a problem with virtual-time
// accounting and a deterministic service simulation.
func RunScheduler(alg Scheduler, p *SchedProblem, rng *rand.Rand, acct SchedAccounting) (*SchedResult, error) {
	return sched.Run(alg, p, rng, acct)
}

// DefaultAccounting reproduces the paper's Figure 5 calibration.
func DefaultAccounting() SchedAccounting { return sched.DefaultAccounting() }

// UniformWorkload builds the paper's §6.3 uniform camera workload: n
// photo requests, m cameras, every camera a candidate.
func UniformWorkload(n, m int, rng *rand.Rand) *SchedProblem {
	return workload.Uniform(n, m, rng)
}

// SkewedWorkload restricts half the requests to a random camera subset of
// relative size skew (the Figure 6 workload).
func SkewedWorkload(n, m int, skew float64, rng *rand.Rand) (*SchedProblem, error) {
	return workload.Skewed(n, m, skew, rng)
}
