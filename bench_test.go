package aorta_test

// The benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (§6). Each benchmark regenerates its result through
// internal/experiments, prints the paper-style table once, and reports
// the headline numbers as custom benchmark metrics (units of seconds of
// virtual makespan, or failure percent for the §6.2 study).
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// or regenerate the tables directly with cmd/aortabench.

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"aorta/internal/comm"
	"aorta/internal/device"
	"aorta/internal/device/mote"
	"aorta/internal/experiments"
	"aorta/internal/geo"
	"aorta/internal/netsim"
	"aorta/internal/profile"
	"aorta/internal/sched"
	"aorta/internal/vclock"
)

// benchConfig keeps benchmark iterations affordable while preserving the
// paper's shapes; cmd/aortabench uses the paper's full 10 runs.
func benchConfig() experiments.Config {
	return experiments.Config{
		Runs:       3,
		Cameras:    10,
		Seed:       2005,
		Accounting: sched.DefaultAccounting(),
	}
}

var printOnce sync.Map

// printTable prints a table exactly once per benchmark name.
func printTable(name string, print func()) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		print()
	}
}

// BenchmarkFig4 regenerates Figure 4: makespan vs number of requests
// (10/20/30) for the five scheduling algorithms under uniform workloads.
func BenchmarkFig4(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig4", func() { experiments.PrintFig4(os.Stdout, points) })
		if i == 0 {
			for _, st := range points[1].Algos { // n=20 row
				b.ReportMetric(st.Makespan, "s-makespan-n20/"+st.Algorithm)
			}
		}
	}
}

// BenchmarkFig5 regenerates Figure 5: the scheduling/service time
// breakdown of the five algorithms at 20 requests.
func BenchmarkFig5(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig5", func() { experiments.PrintFig5(os.Stdout, rows) })
		if i == 0 {
			for _, st := range rows {
				b.ReportMetric(st.SchedulingTime, "s-sched/"+st.Algorithm)
				b.ReportMetric(st.ServiceTime, "s-service/"+st.Algorithm)
			}
		}
	}
}

// BenchmarkFig6 regenerates Figure 6: makespan vs workload skewness
// (0.2/0.3/0.4) with 20 requests on 10 cameras.
func BenchmarkFig6(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig6", func() { experiments.PrintFig6(os.Stdout, points) })
		if i == 0 {
			for _, st := range points[0].Algos { // skew 0.2 row
				b.ReportMetric(st.Makespan, "s-makespan-skew02/"+st.Algorithm)
			}
		}
	}
}

// BenchmarkRatio regenerates the §6.3 prose observation: performance
// depends only on the #requests/#devices ratio for uniform workloads.
func BenchmarkRatio(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		points, err := experiments.Ratio(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printTable("ratio", func() { experiments.PrintRatio(os.Stdout, points) })
		if i == 0 {
			for _, pt := range points {
				for _, st := range pt.Algos {
					if st.Algorithm == "SRFAE" {
						b.ReportMetric(st.Makespan, fmt.Sprintf("s-makespan-n%d-m%d", pt.Requests, pt.Cameras))
					}
				}
			}
		}
	}
}

// BenchmarkCostModel regenerates the §2.3 claim that the profile-driven
// cost model is accurate against the live camera emulator.
func BenchmarkCostModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.CostModel(30, 2005)
		if err != nil {
			b.Fatal(err)
		}
		printTable("costmodel", func() { experiments.PrintCostModel(os.Stdout, s) })
		if i == 0 {
			b.ReportMetric(s.MeanRelError*100, "%-mean-rel-error")
		}
	}
}

// BenchmarkOptimalGap regenerates the §5.2 trade-off: heuristics are near
// optimal while exact solving explodes with instance size.
func BenchmarkOptimalGap(b *testing.B) {
	cfg := benchConfig()
	cfg.Runs = 2
	for i := 0; i < b.N; i++ {
		rows, err := experiments.OptimalGap(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printTable("optimal", func() { experiments.PrintOptimalGap(os.Stdout, rows) })
		if i == 0 {
			last := rows[len(rows)-1]
			b.ReportMetric(last.Heuristics["SRFAE"]/last.Optimal, "x-srfae-vs-opt")
			b.ReportMetric(last.OptimalWall.Seconds(), "s-opt-wall")
		}
	}
}

// BenchmarkAblationSequenceDependence runs the DESIGN.md §3 ablation:
// how much of the proposed heuristics' edge comes from planning with the
// sequence-dependent cost model.
func BenchmarkAblationSequenceDependence(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationSequenceDependence(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printTable("ablation", func() { experiments.PrintAblation(os.Stdout, rows) })
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.Penalty, "x-static-penalty/"+r.Algorithm)
			}
		}
	}
}

// BenchmarkScalability sweeps the greedy algorithms to 400 requests on
// 100 devices — the paper's future-work question of scheduling large
// heterogeneous device populations.
func BenchmarkScalability(b *testing.B) {
	cfg := benchConfig()
	cfg.Runs = 2
	for i := 0; i < b.N; i++ {
		points, err := experiments.Scalability(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printTable("scale", func() { experiments.PrintScalability(os.Stdout, points) })
		if i == 0 {
			last := points[len(points)-1]
			b.ReportMetric(last.Makespans["SRFAE"], "s-makespan-n400/SRFAE")
			b.ReportMetric(last.Wall["SRFAE"].Seconds()*1000, "ms-wall-n400/SRFAE")
		}
	}
}

// BenchmarkSyncStudy regenerates the §6.2 device-synchronization study:
// action failure rates with and without locking + probing.
func BenchmarkSyncStudy(b *testing.B) {
	cfg := experiments.DefaultSyncConfig()
	cfg.Minutes = 4
	cfg.ClockScale = 200
	for i := 0; i < b.N; i++ {
		with, without, err := experiments.SyncStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printTable("sync", func() { experiments.PrintSyncStudy(os.Stdout, with, without) })
		if i == 0 {
			b.ReportMetric(with.FailureRate*100, "%-failures-with-sync")
			b.ReportMetric(without.FailureRate*100, "%-failures-without-sync")
		}
	}
}

// BenchmarkLatency runs the continuous-arrival study: event-to-completion
// latency under Poisson request arrivals — the paper's §5.1 real-time
// requirement measured directly.
func BenchmarkLatency(b *testing.B) {
	cfg := experiments.LatencyConfig{Seed: 2005}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Latency(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printTable("latency", func() { experiments.PrintLatency(os.Stdout, cfg, rows) })
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.P95, "s-p95/"+r.Algorithm)
			}
		}
	}
}

// newBenchFarm builds a real-clock device farm behind the communication
// layer with a configurable per-link latency, for transport benchmarks.
func newBenchFarm(b *testing.B, motes int, latency time.Duration) (*comm.Layer, *netsim.Network) {
	b.Helper()
	clk := vclock.Real{}
	network := netsim.NewNetwork(clk, 1)
	reg, err := profile.DefaultRegistry()
	if err != nil {
		b.Fatal(err)
	}
	layer := comm.New(network, clk, reg)
	for i := 0; i < motes; i++ {
		id := fmt.Sprintf("mote-%d", i+1)
		m := mote.New(id, geo.Point{X: float64(i)}, clk, mote.Config{Seed: int64(i)})
		ln, err := network.Listen(id)
		if err != nil {
			b.Fatal(err)
		}
		srv := device.Serve(ln, m)
		b.Cleanup(func() { srv.Close() })
		network.SetLink(id, netsim.LinkConfig{Latency: latency})
		if err := layer.Register(comm.DeviceInfo{ID: id, Type: m.Type(), Addr: id}); err != nil {
			b.Fatal(err)
		}
	}
	b.Cleanup(func() { _ = layer.Close() })
	return layer, network
}

// BenchmarkProbePooledVsOneShot measures what the pooled transport saves
// on the hot probe path: with pooling each probe reuses the live session,
// one-shot pays a fresh dial (one link latency) every time.
func BenchmarkProbePooledVsOneShot(b *testing.B) {
	const latency = time.Millisecond
	ctx := context.Background()
	b.Run("pooled", func(b *testing.B) {
		layer, _ := newBenchFarm(b, 1, latency)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := layer.Probe(ctx, "mote-1"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("oneshot", func(b *testing.B) {
		layer, _ := newBenchFarm(b, 1, latency)
		layer.ConfigurePool(comm.PoolConfig{MaxSessions: -1})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := layer.Probe(ctx, "mote-1"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkScanPooled measures a virtual-table scan over a small farm —
// the per-epoch cost of every continuous query — with pooled sessions
// versus one dial per device per scan.
func BenchmarkScanPooled(b *testing.B) {
	const latency = time.Millisecond
	ctx := context.Background()
	b.Run("pooled", func(b *testing.B) {
		layer, _ := newBenchFarm(b, 4, latency)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := layer.Scan(ctx, "sensor", nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("oneshot", func(b *testing.B) {
		layer, _ := newBenchFarm(b, 4, latency)
		layer.ConfigurePool(comm.PoolConfig{MaxSessions: -1})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := layer.Scan(ctx, "sensor", nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}
