// Quickstart: the smallest end-to-end Aorta program.
//
// It builds the default simulated lab (2 PTZ cameras, 10 motes, 1 phone on
// an in-memory network at 100× clock speed), registers the paper's
// Figure 1 snapshot query, injects one physical event — someone pushing a
// door with a motion sensor on it — and prints the photo the engine takes
// in response.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"aorta"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	l, err := aorta.NewLab(aorta.LabConfig{})
	if err != nil {
		return err
	}
	defer l.Close()

	ctx := context.Background()
	if err := l.Engine.Start(ctx); err != nil {
		return err
	}

	// The paper's Figure 1 query, verbatim (plus a sampling epoch).
	const snapshot = `
		CREATE AQ snapshot AS
		SELECT photo(c.ip, s.loc, "photos/admin")
		FROM sensor s, camera c
		WHERE s.accel_x > 500 AND coverage(c.id, s.loc)
		EVERY "2s"`
	res, err := l.Engine.Exec(ctx, snapshot)
	if err != nil {
		return err
	}
	fmt.Println("registered:", res.Message)

	// Someone pushes the door mote-3 is attached to: its accelerometer
	// reads ~900 mg for 3 virtual seconds.
	fmt.Println("event: pushing the door at", l.Motes[2].Location())
	l.StimulateMote(2, 900, 3*time.Second)

	// Wait (in wall time) for the engine to detect the event, pick the
	// cheapest covering camera, and take the photo. At 100× clock speed
	// each wall millisecond is a tenth of a virtual second.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && len(l.Engine.Photos()) == 0 {
		time.Sleep(5 * time.Millisecond)
	}

	photos := l.Engine.Photos()
	if len(photos) == 0 {
		return fmt.Errorf("no photo taken; metrics: %+v", l.Engine.Metrics())
	}
	for _, p := range photos {
		fmt.Printf("photo #%d by %s → %s (head %s, blurred=%v, %dKB)\n",
			p.Photo.ID, p.DeviceID, p.Directory, p.Photo.At, p.Photo.Blurred, p.Photo.SizeKB)
	}

	m := l.Engine.Metrics()
	fmt.Printf("requests=%d successes=%d mean latency=%s\n",
		m.Requests, m.Successes, m.MeanLatency.Round(time.Millisecond))
	return nil
}
