// Pervasivelab: the paper's §6 monitoring application, with the §6.2
// device-synchronization ablation run live.
//
// Ten continuous queries each photograph one mote's location every
// (virtual) minute on two shared cameras. The program runs the workload
// twice — once with Aorta's device synchronization (locking + probing)
// and once without — and prints the action failure breakdown. The paper
// reports >50% failures without synchronization and ≈10% with.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"aorta"
)

const (
	queries    = 10
	minutes    = 5
	clockScale = 200
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pervasivelab:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Printf("workload: %d photo queries, 1/min each, 2 cameras, %d virtual minutes\n\n", queries, minutes)
	withSync, err := runOnce(true)
	if err != nil {
		return err
	}
	withoutSync, err := runOnce(false)
	if err != nil {
		return err
	}

	fmt.Printf("%-22s %9s %9s %10s\n", "configuration", "requests", "failed", "failrate")
	for _, r := range []result{withoutSync, withSync} {
		fmt.Printf("%-22s %9d %9d %9.0f%%   %s\n", r.name, r.requests, r.failed, r.rate*100, r.breakdown)
	}
	fmt.Println("\npaper: >50% failures without device synchronization, ≈10% with")
	return nil
}

type result struct {
	name      string
	requests  int64
	failed    int64
	rate      float64
	breakdown string
}

func runOnce(synchronized bool) (result, error) {
	cfg := aorta.LabConfig{
		Motes:      queries,
		ClockScale: clockScale,
		CameraLink: aorta.LinkConfig{DialFailProb: 0.08}, // flaky camera WiFi
	}
	if !synchronized {
		cfg.Engine.DisableLocking = true
		cfg.Engine.DisableProbing = true
		cfg.Engine.ScheduleBusyDevices = true
		// Restore the paper's fully unserialized execution (§6.2): without
		// this flag, lock-free sequences still run in order.
		cfg.Engine.InterferenceAblation = true
	}
	// The paper's system executed each request once — no failover retries.
	cfg.Engine.MaxAttempts = 1
	l, err := aorta.NewLab(cfg)
	if err != nil {
		return result{}, err
	}
	defer l.Close()
	ctx := context.Background()
	if err := l.Engine.Start(ctx); err != nil {
		return result{}, err
	}

	for i := 1; i <= queries; i++ {
		sql := fmt.Sprintf(`CREATE AQ snap%d AS
			SELECT photo(c.ip, s.loc, "photos/lab")
			FROM sensor s, camera c
			WHERE s.accel_x > 500 AND s.id = "mote-%d" AND coverage(c.id, s.loc)
			EVERY "60s"`, i, i)
		if _, err := l.Engine.Exec(ctx, sql); err != nil {
			return result{}, err
		}
	}
	for i := 0; i < queries; i++ {
		l.StimulateMote(i, 900, time.Duration(minutes+2)*time.Minute)
	}

	// Let the virtual minutes elapse.
	wall := time.Duration(float64(time.Duration(minutes)*time.Minute+30*time.Second) / clockScale)
	time.Sleep(wall)
	l.Engine.Stop()

	m := l.Engine.Metrics()
	name := "with synchronization"
	if !synchronized {
		name = "without synchronization"
	}
	breakdown := ""
	for _, k := range []aorta.FailureKind{aorta.FailConnect, aorta.FailBlurred, aorta.FailWrongPosition, aorta.FailStale, aorta.FailRetried, aorta.FailNoDevice, aorta.FailOther} {
		if n := m.Failures[k]; n > 0 {
			breakdown += fmt.Sprintf("%s=%d ", k, n)
		}
	}
	return result{
		name:      name,
		requests:  m.Requests,
		failed:    m.Requests - m.Successes,
		rate:      m.FailureRate,
		breakdown: breakdown,
	}, nil
}
