// Assettracking: extending Aorta with a brand-new device type at runtime.
//
// The paper lists "extending the uniform data communication layer to
// support new types of devices" as future work; this example does it:
// RFID readers join the system purely through XML documents (catalog,
// atomic operation costs, action profile) and a registered Go action —
// no engine or communication-layer changes. Tagged assets moving past a
// reader trigger a scantag() action and an SMS to the warehouse manager.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"aorta"
	"aorta/internal/comm"
	"aorta/internal/core"
	"aorta/internal/device"
	"aorta/internal/device/rfid"
	"aorta/internal/geo"
	"aorta/internal/netsim"
	"aorta/internal/profile"
	"aorta/internal/vclock"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "assettracking:", err)
		os.Exit(1)
	}
}

func run() error {
	clk := vclock.NewScaled(100)
	network := netsim.NewNetwork(clk, 1)

	// 1. Extend the registry with the rfid device type: three XML
	// documents, exactly what a site administrator would author.
	reg, err := profile.DefaultRegistry()
	if err != nil {
		return err
	}
	cat, err := profile.ParseCatalog([]byte(rfid.CatalogXML))
	if err != nil {
		return err
	}
	if err := reg.RegisterCatalog(cat); err != nil {
		return err
	}
	costs, err := profile.ParseAtomicCosts([]byte(rfid.CostsXML))
	if err != nil {
		return err
	}
	if err := reg.RegisterCosts(costs); err != nil {
		return err
	}

	eng, err := core.New(core.Config{Clock: clk, Dialer: network, Registry: reg})
	if err != nil {
		return err
	}

	// 2. Deploy: two dock-door readers and the manager's phone.
	serve := func(id string, m device.Model) error {
		lis, err := network.Listen(id)
		if err != nil {
			return err
		}
		device.Serve(lis, m)
		return nil
	}
	readers := make(map[string]*rfid.Reader)
	for i, id := range []string{"rfid-dock-1", "rfid-dock-2"} {
		r := rfid.New(id, geo.Point{X: float64(i * 10)}, clk)
		readers[id] = r
		if err := serve(id, r); err != nil {
			return err
		}
		if err := eng.RegisterDevice(comm.DeviceInfo{
			ID: id, Type: "rfid", Addr: id, Static: map[string]any{"loc": r.Location()},
		}, geo.Mount{}); err != nil {
			return err
		}
	}
	manager := aorta.NewPhone("phone-1", "+852555001", "warehouse-manager", clk)
	if err := serve("phone-1", manager); err != nil {
		return err
	}
	if err := eng.RegisterDevice(comm.DeviceInfo{
		ID: "phone-1", Type: "phone", Addr: "phone-1",
		Static: map[string]any{"number": "+852555001", "owner": "warehouse-manager"},
	}, geo.Mount{}); err != nil {
		return err
	}

	// 3. The scantag() action: profile from XML, implementation in Go.
	ap, err := profile.ParseAction([]byte(rfid.ScanTagProfileXML))
	if err != nil {
		return err
	}
	if err := eng.RegisterUserAction(&core.ActionDef{
		Name:    "scantag",
		Profile: ap,
		Fn: func(ctx context.Context, actx *core.ActionContext, _ []any) (any, error) {
			raw, err := actx.Engine.Layer().Exec(ctx, actx.DeviceID, "scan", nil)
			if err != nil {
				return nil, err
			}
			var res rfid.ScanResult
			if err := json.Unmarshal(raw, &res); err != nil {
				return nil, err
			}
			fmt.Printf("  %s scanned %v\n", actx.DeviceID, res.Tags)
			return &res, nil
		},
	}); err != nil {
		return err
	}

	ctx := context.Background()
	if err := eng.Start(ctx); err != nil {
		return err
	}
	defer eng.Stop()

	// 4. Two queries: scan whenever tags appear, and text the manager.
	if _, err := eng.Exec(ctx, `CREATE AQ scanassets AS
		SELECT scantag(r.id) FROM rfid r
		WHERE r.tags_in_range > 0 EVERY "2s"`); err != nil {
		return err
	}
	if _, err := eng.Exec(ctx, `CREATE AQ tellmanager AS
		SELECT notify(p.number, "asset movement at dock") FROM rfid r, phone p
		WHERE r.tags_in_range > 0 EVERY "2s"`); err != nil {
		return err
	}

	fmt.Println("asset tracking armed: 2 dock readers, 1 phone")
	fmt.Println("\nforklift #42 arrives at dock 1:")
	readers["rfid-dock-1"].PlaceTag("asset-42", "forklift")
	time.Sleep(60 * time.Millisecond) // 6 virtual seconds
	readers["rfid-dock-1"].RemoveTag("asset-42")

	fmt.Println("pallet #7 arrives at dock 2:")
	readers["rfid-dock-2"].PlaceTag("asset-07", "pallet")
	time.Sleep(60 * time.Millisecond)
	readers["rfid-dock-2"].RemoveTag("asset-07")

	time.Sleep(100 * time.Millisecond)
	fmt.Println("\n--- manager's phone ---")
	for _, msg := range manager.Inbox() {
		fmt.Printf("  [%s] %s\n", msg.Kind, msg.Text)
	}
	m := eng.Metrics()
	fmt.Printf("\nrequests=%d successes=%d\n", m.Requests, m.Successes)
	if m.Successes == 0 {
		return fmt.Errorf("no successful actions; metrics %+v", m)
	}
	return nil
}
