// Scheduling: drives the action-workload scheduling library directly.
//
// It generates the paper's §6.3 synthetic workload — photo() requests
// with random PTZ targets on ten simulated AXIS-2130 cameras, costs in
// [0.36 s, 5.36 s] — and compares the five algorithms of the paper's
// evaluation (LERFA+SRFE, SRFAE, LS, SA, RANDOM) on uniform and skewed
// candidate distributions.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"aorta"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scheduling:", err)
		os.Exit(1)
	}
}

func run() error {
	algorithms := []aorta.Scheduler{
		aorta.SchedulerLERFASRFE(),
		aorta.SchedulerSRFAE(),
		aorta.SchedulerLS(),
		aorta.SchedulerSA(),
		aorta.SchedulerRandom(),
	}
	acct := aorta.DefaultAccounting()

	fmt.Println("uniform workload: 20 photo requests, 10 cameras, 5 runs")
	fmt.Printf("%-12s %10s %10s %10s\n", "algorithm", "makespan", "sched", "service")
	for _, alg := range algorithms {
		var mk, st, sv float64
		const runs = 5
		for seed := int64(0); seed < runs; seed++ {
			rng := rand.New(rand.NewSource(seed*271 + 11))
			p := aorta.UniformWorkload(20, 10, rng)
			res, err := aorta.RunScheduler(alg, p, rng, acct)
			if err != nil {
				return err
			}
			mk += res.Makespan.Seconds()
			st += res.SchedulingTime.Seconds()
			sv += res.ServiceTime.Seconds()
		}
		fmt.Printf("%-12s %9.2fs %9.2fs %9.2fs\n", alg.Name(), mk/runs, st/runs, sv/runs)
	}

	fmt.Println("\nskewed workload (skewness 0.2): half the requests restricted to 2 of 10 cameras")
	fmt.Printf("%-12s %10s %10s %10s\n", "algorithm", "makespan", "sched", "service")
	for _, alg := range algorithms {
		var mk, st, sv float64
		const runs = 5
		for seed := int64(0); seed < runs; seed++ {
			rng := rand.New(rand.NewSource(seed*977 + 5))
			p, err := aorta.SkewedWorkload(20, 10, 0.2, rng)
			if err != nil {
				return err
			}
			res, err := aorta.RunScheduler(alg, p, rng, acct)
			if err != nil {
				return err
			}
			mk += res.Makespan.Seconds()
			st += res.SchedulingTime.Seconds()
			sv += res.ServiceTime.Seconds()
		}
		fmt.Printf("%-12s %9.2fs %9.2fs %9.2fs\n", alg.Name(), mk/runs, st/runs, sv/runs)
	}

	// A tiny instance where the exact solver is feasible: show the
	// optimality gap.
	fmt.Println("\nexact solver on a tiny instance (6 requests, 3 cameras)")
	rng := rand.New(rand.NewSource(42))
	p := aorta.UniformWorkload(6, 3, rng)
	for _, alg := range []aorta.Scheduler{aorta.SchedulerOptimal(), aorta.SchedulerSRFAE(), aorta.SchedulerLS()} {
		res, err := aorta.RunScheduler(alg, p, rng, acct)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s service makespan %.2fs\n", alg.Name(), res.ServiceTime.Seconds())
	}
	return nil
}
