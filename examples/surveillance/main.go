// Surveillance: the paper's §1 building-monitoring scenario.
//
// A surveillance application watches acceleration sensors on doors; when
// one detects movement it photographs the location on a remotely
// controlled camera and forwards the photo to the off-duty manager's cell
// phone via MMS. The MMS delivery uses the paper's §2.2 user-defined
// action, registered through CREATE ACTION with a Go function standing in
// for the DLL.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"aorta"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "surveillance:", err)
		os.Exit(1)
	}
}

func run() error {
	l, err := aorta.NewLab(aorta.LabConfig{Motes: 4})
	if err != nil {
		return err
	}
	defer l.Close()
	ctx := context.Background()
	if err := l.Engine.Start(ctx); err != nil {
		return err
	}

	// Register the user-defined sendphoto action exactly as the paper
	// does: bind the "DLL" (here, a registered Go implementation) and a
	// profile, then CREATE ACTION.
	l.Engine.RegisterLibrary("lib/users/sendphoto.dll", sendphotoImpl)
	if _, err := l.Engine.Exec(ctx, `
		CREATE ACTION sendphoto2(String phone_no, String photo_pathname)
		AS "lib/users/sendphoto.dll"
		PROFILE "registry:sendphoto"`); err != nil {
		return err
	}

	// Query 1: photograph any door that moves.
	if _, err := l.Engine.Exec(ctx, `
		CREATE AQ watchdoors AS
		SELECT photo(c.ip, s.loc, "photos/security")
		FROM sensor s, camera c
		WHERE s.accel_x > 500 AND coverage(c.id, s.loc)
		EVERY "2s"`); err != nil {
		return err
	}
	// Query 2: forward the evidence to the manager's phone.
	if _, err := l.Engine.Exec(ctx, `
		CREATE AQ alertmanager AS
		SELECT sendphoto2(p.number, "photos/security")
		FROM sensor s, phone p
		WHERE s.accel_x > 500
		EVERY "2s"`); err != nil {
		return err
	}

	fmt.Println("surveillance armed: 4 door sensors, 2 cameras, 1 phone")

	// An intruder pushes door 2, then door 4 a few virtual seconds later.
	l.StimulateMote(1, 850, 3*time.Second)
	time.Sleep(60 * time.Millisecond) // 6 virtual seconds at 100×
	l.StimulateMote(3, 1200, 3*time.Second)

	// Wait for photos and MMS deliveries.
	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		if len(l.Engine.Photos()) >= 2 && len(l.Phones[0].Inbox()) >= 2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	fmt.Println("\n--- photos taken ---")
	for _, p := range l.Engine.Photos() {
		fmt.Printf("  %s by %s at %s\n", p.Directory, p.DeviceID, p.Photo.At)
	}
	fmt.Println("--- manager's phone inbox ---")
	for _, msg := range l.Phones[0].Inbox() {
		fmt.Printf("  [%s] %s (%d KB)\n", msg.Kind, msg.PhotoPath, msg.SizeKB)
	}
	m := l.Engine.Metrics()
	fmt.Printf("\nrequests=%d successes=%d failure rate=%.0f%%\n",
		m.Requests, m.Successes, m.FailureRate*100)
	if len(l.Engine.Photos()) == 0 || len(l.Phones[0].Inbox()) == 0 {
		return fmt.Errorf("scenario incomplete: %d photos, %d messages",
			len(l.Engine.Photos()), len(l.Phones[0].Inbox()))
	}
	return nil
}

// sendphotoImpl is the user's "DLL": deliver the latest photo stored under
// the given path to the phone. It reuses the engine's communication layer
// through the action context.
func sendphotoImpl(ctx context.Context, actx *aorta.ActionContext, args []any) (any, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("sendphoto2 takes 2 args, got %d", len(args))
	}
	path, _ := args[1].(string)
	sizeKB := 40
	for _, sp := range actx.Engine.Photos() {
		if sp.Directory == path {
			sizeKB = sp.Photo.SizeKB
		}
	}
	return actx.Engine.Layer().Exec(ctx, actx.DeviceID, "send_mms",
		map[string]any{"photo_path": path, "size_kb": sizeKB})
}
