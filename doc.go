// Package aorta is a pervasive query processing framework — a full Go
// reproduction of "Systems Support for Pervasive Query Processing"
// (Xue, Luo, Ni; ICDCS 2005).
//
// Aorta lets applications task a network of heterogeneous devices —
// PTZ cameras, sensor motes, phones — with SQL-style action-embedded
// continuous queries:
//
//	CREATE AQ snapshot AS
//	  SELECT photo(c.ip, s.loc, "photos/admin")
//	  FROM sensor s, camera c
//	  WHERE s.accel_x > 500 AND coverage(c.id, s.loc)
//
// Whenever a sensor detects the event (acceleration above 500 mg), the
// engine probes the candidate cameras, picks the cheapest available one
// (cost = estimated execution time, driven by the camera's current head
// position), locks it, moves its head, takes the photo, and stores it —
// all without the application handling device APIs, transmission loss or
// concurrency.
//
// # Architecture
//
// Aorta has three layers (paper §2.1):
//
//   - a declarative interface: extended SQL with CREATE ACTION (register
//     user-defined actions) and CREATE AQ (register named continuous
//     queries with embedded actions);
//   - an action-oriented query engine: continuous evaluation over virtual
//     device tables, shared action operators that batch and schedule
//     concurrent requests (five scheduling algorithms, including the
//     paper's LERFA+SRFE and SRFAE heuristics), cost-based device
//     selection, and device synchronization (per-device locking plus
//     availability probing with timeouts);
//   - a uniform data communication layer: device catalogs and profiles,
//     scan operators over virtual relational tables, and typed
//     probe/read/exec messaging over any stream transport (in-memory
//     simulated network with fault injection, or real TCP). Device
//     connections are pooled: operations share one persistent,
//     health-checked session per device, and devices that refuse a dial
//     enter exponential backoff instead of being re-dialed every epoch.
//     Config.PoolMaxSessions, Config.PoolIdleTTL and Config.DialBackoff
//     tune the pool.
//
// # Quick start
//
//	l, err := aorta.NewLab(aorta.LabConfig{})   // 2 cameras, 10 motes, 1 phone
//	if err != nil { ... }
//	defer l.Close()
//	l.Engine.Start(context.Background())
//	l.Engine.Exec(ctx, `CREATE AQ snapshot AS ...`)
//	l.StimulateMote(2, 900, 3*time.Second)      // push the "door"
//	// ... l.Engine.Photos() now contains the snapshot.
//
// See examples/ for runnable programs and EXPERIMENTS.md for the
// reproduction of every table and figure in the paper's evaluation.
package aorta
