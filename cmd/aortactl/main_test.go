package main

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

func render(t *testing.T, payload string) string {
	t.Helper()
	var sb strings.Builder
	printResponse(&sb, []byte(payload))
	return sb.String()
}

func TestPrintResponseError(t *testing.T) {
	out := render(t, `{"ok":false,"error":"no query \"x\""}`)
	if !strings.Contains(out, "error:") || !strings.Contains(out, "no query") {
		t.Errorf("out = %q", out)
	}
}

func TestPrintResponseRowsTable(t *testing.T) {
	out := render(t, `{"ok":true,"rows":[{"s.id":"mote-1","s.temp":21.7},{"s.id":"mote-2","s.temp":22.3}]}`)
	if !strings.Contains(out, "s.id") || !strings.Contains(out, "mote-2") {
		t.Errorf("out = %q", out)
	}
	if !strings.Contains(out, "(2 rows)") {
		t.Errorf("missing row count: %q", out)
	}
	// Column alignment: header and first row start with the same column.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 3 {
		t.Fatalf("table too short: %q", out)
	}
}

func TestPrintResponseNames(t *testing.T) {
	out := render(t, `{"ok":true,"names":["photo","beep"]}`)
	if !strings.Contains(out, "photo") || !strings.Contains(out, "beep") {
		t.Errorf("out = %q", out)
	}
}

func TestPrintResponseMessage(t *testing.T) {
	out := render(t, `{"ok":true,"message":"query snap registered"}`)
	if !strings.Contains(out, "registered") {
		t.Errorf("out = %q", out)
	}
}

func TestPrintResponseMetrics(t *testing.T) {
	out := render(t, `{"ok":true,"metrics":{"Requests":5,"Successes":4}}`)
	if !strings.Contains(out, "Requests") {
		t.Errorf("out = %q", out)
	}
}

func TestPrintResponsePlainOK(t *testing.T) {
	if out := render(t, `{"ok":true}`); !strings.Contains(out, "ok") {
		t.Errorf("out = %q", out)
	}
}

func TestPrintResponseGarbagePassthrough(t *testing.T) {
	if out := render(t, `not-json`); !strings.Contains(out, "not-json") {
		t.Errorf("out = %q", out)
	}
}

func TestPrintTableMissingCells(t *testing.T) {
	out := render(t, `{"ok":true,"rows":[{"a":1},{"b":2}]}`)
	if !strings.Contains(out, "(2 rows)") {
		t.Errorf("out = %q", out)
	}
}

// TestPrintResponseFailureWithoutMessage: an ok:false frame with no
// error text must never print "ok" — that is how the phantom-success
// \stimulate bug stayed hidden.
func TestPrintResponseFailureWithoutMessage(t *testing.T) {
	out := strings.TrimSpace(render(t, `{"ok":false}`))
	if !strings.HasPrefix(out, "error:") {
		t.Fatalf("ok:false printed %q, want an error line", out)
	}
}

// TestPrintResponseShardView: with -shards, merged rows keep their
// source-shard column and broadcast responses print per-shard codes;
// without it the cluster renders like a single daemon.
func TestPrintResponseShardView(t *testing.T) {
	payload := `{"ok":true,"rows":[{"s.id":"mote-1","shard":"shard-1"},{"s.id":"mote-9","shard":"shard-2"}],"shards":{"shard-1":"ok","shard-2":"ok"}}`

	out := render(t, payload)
	if strings.Contains(out, "shard-1") {
		t.Errorf("shard tags leaked without -shards: %q", out)
	}

	shardView = true
	defer func() { shardView = false }()
	out = render(t, payload)
	if !strings.Contains(out, "shard-1") || !strings.Contains(out, "shard-2") {
		t.Errorf("shard column missing with -shards: %q", out)
	}
	if !strings.Contains(out, "shards: shard-1=ok shard-2=ok") {
		t.Errorf("shard codes missing: %q", out)
	}
}

// TestPrintResponsePartialFailure: a partial cluster failure always
// names the diverging shards, -shards or not.
func TestPrintResponsePartialFailure(t *testing.T) {
	out := render(t, `{"ok":false,"code":"partial","error":"shard-2: disk full","shards":{"shard-1":"ok","shard-2":"degraded"}}`)
	if !strings.Contains(out, "error:") || !strings.Contains(out, "disk full") {
		t.Errorf("out = %q", out)
	}
	if !strings.Contains(out, "shard-2=degraded") {
		t.Errorf("partial failure hid the failing shard: %q", out)
	}
}

// TestPrintResponseClusterMetrics: -shards adds the per-shard breakdown
// table under the aggregate.
func TestPrintResponseClusterMetrics(t *testing.T) {
	payload := `{"ok":true,"metrics":{"Requests":30,"Successes":27},` +
		`"cluster":{"shards":[` +
		`{"shard":"shard-1","metrics":{"Requests":10,"Successes":9,"MeanLatency":2000000}},` +
		`{"shard":"shard-2","metrics":{"Requests":20,"Successes":18,"MeanLatency":1000000}}]}}`

	out := render(t, payload)
	if strings.Contains(out, "per shard:") {
		t.Errorf("breakdown shown without -shards: %q", out)
	}

	shardView = true
	defer func() { shardView = false }()
	out = render(t, payload)
	if !strings.Contains(out, "per shard:") || !strings.Contains(out, "shard-2") {
		t.Errorf("breakdown missing: %q", out)
	}
	if !strings.Contains(out, "2ms") {
		t.Errorf("latency not rendered as a duration: %q", out)
	}
}

func TestSplitStatements(t *testing.T) {
	got := splitStatements(" SHOW DEVICES ;; SHOW ACTIONS ; ")
	if len(got) != 2 || got[0] != "SHOW DEVICES" || got[1] != "SHOW ACTIONS" {
		t.Fatalf("splitStatements = %q", got)
	}
	if got := splitStatements("SELECT 1"); len(got) != 1 || got[0] != "SELECT 1" {
		t.Fatalf("single statement = %q", got)
	}
}

// TestExecPipelinedReorders feeds responses out of order and checks the
// client both tags requests sequentially and prints output in request
// order.
func TestExecPipelinedReorders(t *testing.T) {
	// Server responses arrive s2, s0, s1.
	responses := strings.Join([]string{
		`{"id":"s2","ok":true,"message":"third"}`,
		`{"id":"s0","ok":true,"message":"first"}`,
		`{"id":"s1","ok":true,"message":"second"}`,
	}, "\n") + "\n"
	server := bufio.NewScanner(strings.NewReader(responses))

	var sent, out bytes.Buffer
	stmts := []string{"SHOW A", "SHOW B", "SHOW C"}
	if err := execPipelined(&sent, server, &out, stmts, 3, func() error { return nil }); err != nil {
		t.Fatal(err)
	}

	wantSent := "#s0 SHOW A\n#s1 SHOW B\n#s2 SHOW C\n"
	if sent.String() != wantSent {
		t.Fatalf("sent %q, want %q", sent.String(), wantSent)
	}
	wantOut := "first\nsecond\nthird\n"
	if out.String() != wantOut {
		t.Fatalf("printed %q, want %q", out.String(), wantOut)
	}
}

// TestExecPipelinedWindow: with window 1 the client must alternate
// write/read, so tags and output stay strictly in order.
func TestExecPipelinedWindow(t *testing.T) {
	responses := `{"id":"s0","ok":true,"message":"a"}` + "\n" +
		`{"id":"s1","ok":true,"message":"b"}` + "\n"
	server := bufio.NewScanner(strings.NewReader(responses))
	var sent, out bytes.Buffer
	if err := execPipelined(&sent, server, &out, []string{"X", "Y"}, 1, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if out.String() != "a\nb\n" {
		t.Fatalf("printed %q", out.String())
	}
}
