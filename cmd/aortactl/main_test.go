package main

import (
	"strings"
	"testing"
)

func render(t *testing.T, payload string) string {
	t.Helper()
	var sb strings.Builder
	printResponse(&sb, []byte(payload))
	return sb.String()
}

func TestPrintResponseError(t *testing.T) {
	out := render(t, `{"ok":false,"error":"no query \"x\""}`)
	if !strings.Contains(out, "error:") || !strings.Contains(out, "no query") {
		t.Errorf("out = %q", out)
	}
}

func TestPrintResponseRowsTable(t *testing.T) {
	out := render(t, `{"ok":true,"rows":[{"s.id":"mote-1","s.temp":21.7},{"s.id":"mote-2","s.temp":22.3}]}`)
	if !strings.Contains(out, "s.id") || !strings.Contains(out, "mote-2") {
		t.Errorf("out = %q", out)
	}
	if !strings.Contains(out, "(2 rows)") {
		t.Errorf("missing row count: %q", out)
	}
	// Column alignment: header and first row start with the same column.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 3 {
		t.Fatalf("table too short: %q", out)
	}
}

func TestPrintResponseNames(t *testing.T) {
	out := render(t, `{"ok":true,"names":["photo","beep"]}`)
	if !strings.Contains(out, "photo") || !strings.Contains(out, "beep") {
		t.Errorf("out = %q", out)
	}
}

func TestPrintResponseMessage(t *testing.T) {
	out := render(t, `{"ok":true,"message":"query snap registered"}`)
	if !strings.Contains(out, "registered") {
		t.Errorf("out = %q", out)
	}
}

func TestPrintResponseMetrics(t *testing.T) {
	out := render(t, `{"ok":true,"metrics":{"Requests":5,"Successes":4}}`)
	if !strings.Contains(out, "Requests") {
		t.Errorf("out = %q", out)
	}
}

func TestPrintResponsePlainOK(t *testing.T) {
	if out := render(t, `{"ok":true}`); !strings.Contains(out, "ok") {
		t.Errorf("out = %q", out)
	}
}

func TestPrintResponseGarbagePassthrough(t *testing.T) {
	if out := render(t, `not-json`); !strings.Contains(out, "not-json") {
		t.Errorf("out = %q", out)
	}
}

func TestPrintTableMissingCells(t *testing.T) {
	out := render(t, `{"ok":true,"rows":[{"a":1},{"b":2}]}`)
	if !strings.Contains(out, "(2 rows)") {
		t.Errorf("out = %q", out)
	}
}
