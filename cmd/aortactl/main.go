// Command aortactl is the interactive client for cmd/aortad: a small SQL
// shell over the daemon's line protocol.
//
//	aortactl                               # interactive shell
//	aortactl -e 'SHOW DEVICES'             # one-shot statement
//	aortactl -e 'SHOW DEVICES; SHOW ACTIONS' -pipeline 8
//	                                       # pipelined: ';'-separated
//	                                       # statements tagged #<seq> and
//	                                       # kept in flight concurrently
//	echo 'SHOW QUERIES' | aortactl         # piped statements
//
// With -pipeline N, statements are sent tagged ("#<seq> <stmt>") with up
// to N outstanding at once; responses may arrive out of order and are
// reordered before printing, so output order always matches input order.
//
// Against an aortad -router (cluster front door), -shards exposes the
// cluster structure: merged rows keep their source-shard column,
// broadcast responses print the per-shard status codes, and \metrics
// adds a per-shard breakdown table plus the router's shard-health view
// (detector state, breaker/backoff flags, recent membership events)
// under the aggregate. Without -shards the cluster looks like one big
// daemon. -drain <shard> asks the router to live-drain a shard: flush
// it, hand its devices/queries/intents to the survivors, retire it.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"strings"
	"time"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7730", "aortad address")
		stmt     = flag.String("e", "", "execute one statement (or several, ';'-separated) and exit")
		pipeline = flag.Int("pipeline", 0, "send statements tagged with up to N in flight (0 = serial)")
		timeout  = flag.Duration("timeout", 0, "dial timeout and per-response read deadline (0 = none)")
		drain    = flag.String("drain", "", "drain shard ID through the router (DRAIN SHARD <id>) and exit")
	)
	flag.BoolVar(&shardView, "shards", false, "cluster view: show source shards on rows, per-shard codes, shard health, and the \\metrics per-shard breakdown")
	flag.Parse()
	if *drain != "" {
		// -drain is sugar for the cooperative rebalance statement; the
		// router flushes the shard, hands its state to the survivors,
		// and retires it from membership.
		*stmt = "DRAIN SHARD " + *drain
	}
	if err := run(*addr, *stmt, *pipeline, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "aortactl:", err)
		os.Exit(1)
	}
}

func run(addr, oneShot string, pipeline int, timeout time.Duration) error {
	conn, err := net.DialTimeout("tcp", addr, timeout) // 0 means no timeout
	if err != nil {
		return fmt.Errorf("connect to aortad at %s: %w", addr, err)
	}
	defer conn.Close()
	server := bufio.NewScanner(conn)
	server.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	// armRead (re)arms the read deadline before each wait for a response
	// frame, so a wedged or vanished daemon fails the shell in bounded
	// time instead of hanging it. The deadline covers waiting, not idling:
	// it is set only when a response is owed.
	armRead := func() error {
		if timeout <= 0 {
			return nil
		}
		return conn.SetReadDeadline(time.Now().Add(timeout))
	}

	exec := func(line string) error {
		if _, err := fmt.Fprintln(conn, line); err != nil {
			return err
		}
		if err := armRead(); err != nil {
			return err
		}
		if !server.Scan() {
			if err := server.Err(); err != nil {
				if timeout > 0 && errors.Is(err, os.ErrDeadlineExceeded) {
					return fmt.Errorf("no response within %v: %w", timeout, err)
				}
				return err
			}
			return io.EOF
		}
		printResponse(os.Stdout, server.Bytes())
		return nil
	}

	if oneShot != "" {
		stmts := splitStatements(oneShot)
		if pipeline > 0 {
			return execPipelined(conn, server, os.Stdout, stmts, pipeline, armRead)
		}
		for _, s := range stmts {
			if err := exec(s); err != nil {
				return err
			}
		}
		return nil
	}

	interactive := isTerminal()
	if interactive {
		fmt.Println("aortactl — Aorta SQL shell (\\metrics, \\photos, \\stimulate i mg sec, \\quit)")
	}
	in := bufio.NewScanner(os.Stdin)
	for {
		if interactive {
			fmt.Print("aorta> ")
		}
		if !in.Scan() {
			return in.Err()
		}
		line := strings.TrimSpace(in.Text())
		if line == "" {
			continue
		}
		if line == "\\quit" || line == "exit" || line == "quit" {
			return nil
		}
		if err := exec(line); err != nil {
			return err
		}
	}
}

// splitStatements splits a -e argument on ';', dropping empties, so one
// flag can carry a whole pipelined batch.
func splitStatements(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ";") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// execPipelined sends stmts tagged "#<seq>" with up to window in flight,
// reorders responses by tag, and prints them in request order. Control
// (backslash) statements are sent tagged too: the daemon echoes the tag,
// so they pipeline like everything else. armRead re-arms the connection
// read deadline before every wait for the next frame (no-op without
// -timeout).
func execPipelined(conn io.Writer, server *bufio.Scanner, w io.Writer, stmts []string, window int, armRead func() error) error {
	type frame struct {
		data []byte
		err  error
	}
	pending := make(map[string][]byte, window)
	frames := make(chan frame, window)
	go func() {
		for {
			if err := armRead(); err != nil {
				frames <- frame{err: err}
				return
			}
			if !server.Scan() {
				break
			}
			data := make([]byte, len(server.Bytes()))
			copy(data, server.Bytes())
			frames <- frame{data: data}
		}
		err := server.Err()
		if err == nil {
			err = io.EOF
		}
		frames <- frame{err: err}
	}()

	next := 0 // next response sequence to print
	recv := func() error {
		f := <-frames
		if f.err != nil {
			return f.err
		}
		var tag struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(f.data, &tag); err != nil || tag.ID == "" {
			// Untagged frame (e.g. a connection-level error): print as-is.
			printResponse(w, f.data)
			return nil
		}
		pending[tag.ID] = f.data
		for {
			data, ok := pending[fmt.Sprintf("s%d", next)]
			if !ok {
				return nil
			}
			delete(pending, fmt.Sprintf("s%d", next))
			printResponse(w, data)
			next++
		}
	}

	inFlight := 0
	for i, stmt := range stmts {
		for inFlight >= window {
			if err := recv(); err != nil {
				return err
			}
			inFlight--
		}
		if _, err := fmt.Fprintf(conn, "#s%d %s\n", i, stmt); err != nil {
			return err
		}
		inFlight++
	}
	for inFlight > 0 {
		if err := recv(); err != nil {
			return err
		}
		inFlight--
	}
	return nil
}

// shardView, set by -shards, keeps the cluster visible in the output:
// source-shard columns on merged rows, per-shard status codes, and the
// \metrics per-shard breakdown.
var shardView bool

// printResponse pretty-prints one JSON response line.
func printResponse(w io.Writer, data []byte) {
	var resp struct {
		OK      bool             `json:"ok"`
		Code    string           `json:"code"`
		Error   string           `json:"error"`
		Message string           `json:"message"`
		Rows    []map[string]any `json:"rows"`
		Queries []map[string]any `json:"queries"`
		Names   []string         `json:"names"`
		Metrics map[string]any   `json:"metrics"`
		Comm    map[string]any   `json:"comm"`
		// Scanshare is the shared scan fabric's counters; ScanGroups the
		// current coalesced scan groups.
		Scanshare  map[string]any   `json:"scanshare"`
		ScanGroups []map[string]any `json:"scan_groups"`
		// Liveness keys device ID → failure-detector health (state,
		// consecutive_failures, since).
		Liveness map[string]map[string]any `json:"liveness"`
		Photos   []map[string]any          `json:"photos"`
		// Cluster and Shards come from an aortad -router: the per-shard
		// \metrics breakdown and the shard→status map of a fanned-out
		// statement.
		Cluster *struct {
			Shards []struct {
				Shard     string         `json:"shard"`
				Metrics   map[string]any `json:"metrics"`
				Frontdoor map[string]any `json:"frontdoor"`
				Wal       map[string]any `json:"wal"`
			} `json:"shards"`
		} `json:"cluster"`
		Shards map[string]string `json:"shards"`
		// Router is the router's cluster-membership health view: per-shard
		// failure-detector state and the recent membership events.
		Router *struct {
			Shards map[string]struct {
				State               string `json:"state"`
				ConsecutiveFailures int    `json:"consecutive_failures"`
				Draining            bool   `json:"draining"`
				BreakerOpen         bool   `json:"breaker_open"`
				DialBackoff         bool   `json:"dial_backoff"`
			} `json:"shards"`
			Events []struct {
				At     time.Time `json:"at"`
				Shard  string    `json:"shard"`
				Action string    `json:"action"`
				Reason string    `json:"reason"`
			} `json:"events"`
			AutoRetire bool `json:"auto_retire"`
		} `json:"router"`
	}
	if err := json.Unmarshal(data, &resp); err != nil {
		fmt.Fprintln(w, string(data))
		return
	}
	if !shardView {
		// Single-daemon view: hide the router's source-shard row tags.
		for _, r := range resp.Rows {
			delete(r, "shard")
		}
	}
	switch {
	case resp.Error != "":
		fmt.Fprintln(w, "error:", resp.Error)
		// A partial cluster failure names the diverging shards so the
		// operator knows where to look (always — hiding which half of the
		// cluster failed would make -shards load-bearing for correctness).
		if resp.Code == "partial" || (shardView && len(resp.Shards) > 0) {
			printShardCodes(w, resp.Shards)
		}
	case len(resp.Rows) > 0:
		printTable(w, resp.Rows)
		if shardView && len(resp.Shards) > 0 {
			printShardCodes(w, resp.Shards)
		}
	case len(resp.Queries) > 0:
		printTable(w, resp.Queries)
	case len(resp.Photos) > 0:
		printTable(w, resp.Photos)
	case len(resp.Names) > 0:
		for _, n := range resp.Names {
			fmt.Fprintln(w, " ", n)
		}
		if shardView && len(resp.Shards) > 0 {
			printShardCodes(w, resp.Shards)
		}
	case resp.Metrics != nil:
		out, _ := json.MarshalIndent(resp.Metrics, "", "  ")
		fmt.Fprintln(w, string(out))
		if shardView && resp.Cluster != nil && len(resp.Cluster.Shards) > 0 {
			fmt.Fprintln(w, "per shard:")
			rows := make([]map[string]any, 0, len(resp.Cluster.Shards))
			for _, sm := range resp.Cluster.Shards {
				row := map[string]any{"shard": sm.Shard}
				for _, k := range []string{"Requests", "Successes", "FailureRate", "Retries"} {
					if v, ok := sm.Metrics[k]; ok {
						row[k] = v
					}
				}
				if v, ok := sm.Metrics["MeanLatency"]; ok {
					row["MeanLatency"] = formatEpoch(v)
				}
				if v, ok := sm.Metrics["Degraded"]; ok {
					row["Degraded"] = v
				}
				rows = append(rows, row)
			}
			printTable(w, rows)
		}
		if shardView && resp.Router != nil && len(resp.Router.Shards) > 0 {
			fmt.Fprintf(w, "shard health (auto-retire %v):\n", resp.Router.AutoRetire)
			rows := make([]map[string]any, 0, len(resp.Router.Shards))
			for id, h := range resp.Router.Shards {
				row := map[string]any{
					"shard":    id,
					"state":    h.State,
					"failures": h.ConsecutiveFailures,
				}
				flags := make([]string, 0, 3)
				if h.Draining {
					flags = append(flags, "draining")
				}
				if h.BreakerOpen {
					flags = append(flags, "breaker-open")
				}
				if h.DialBackoff {
					flags = append(flags, "dial-backoff")
				}
				row["flags"] = strings.Join(flags, ",")
				rows = append(rows, row)
			}
			sort.Slice(rows, func(i, j int) bool {
				return rows[i]["shard"].(string) < rows[j]["shard"].(string)
			})
			printTable(w, rows)
			if n := len(resp.Router.Events); n > 0 {
				fmt.Fprintln(w, "membership events:")
				// Last few only: the full journal is in the router's -memlog.
				start := 0
				if n > 8 {
					start = n - 8
				}
				for _, ev := range resp.Router.Events[start:] {
					line := fmt.Sprintf("  %s %s %s", ev.At.Format(time.RFC3339), ev.Action, ev.Shard)
					if ev.Reason != "" {
						line += " (" + ev.Reason + ")"
					}
					fmt.Fprintln(w, line)
				}
			}
		}
		if resp.Comm != nil {
			out, _ := json.MarshalIndent(resp.Comm, "", "  ")
			fmt.Fprintln(w, "comm:", string(out))
		}
		if resp.Scanshare != nil {
			out, _ := json.MarshalIndent(resp.Scanshare, "", "  ")
			fmt.Fprintln(w, "scanshare:", string(out))
		}
		if len(resp.ScanGroups) > 0 {
			fmt.Fprintln(w, "scan groups:")
			for _, g := range resp.ScanGroups {
				fmt.Fprintf(w, "  %v every %v: %v queries\n",
					g["device_type"], formatEpoch(g["epoch"]), g["queries"])
			}
		}
		if len(resp.Liveness) > 0 {
			ids := make([]string, 0, len(resp.Liveness))
			for id := range resp.Liveness {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			fmt.Fprintln(w, "liveness:")
			for _, id := range ids {
				h := resp.Liveness[id]
				fmt.Fprintf(w, "  %s: %v (consecutive failures %v)\n",
					id, h["state"], h["consecutive_failures"])
			}
		}
	case resp.Message != "":
		fmt.Fprintln(w, resp.Message)
	case !resp.OK:
		// A failure with no error text must still read as a failure.
		fmt.Fprintln(w, "error: (no error message)")
	default:
		fmt.Fprintln(w, "ok")
	}
}

// printShardCodes renders a router response's shard→status map, one
// sorted line, so partial failures read at a glance.
func printShardCodes(w io.Writer, codes map[string]string) {
	ids := make([]string, 0, len(codes))
	for id := range codes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	parts := make([]string, 0, len(ids))
	for _, id := range ids {
		parts = append(parts, id+"="+codes[id])
	}
	fmt.Fprintln(w, "shards:", strings.Join(parts, " "))
}

// formatEpoch renders a ShareInfo epoch (nanoseconds in JSON) as a
// duration string.
func formatEpoch(v any) string {
	if ns, ok := v.(float64); ok {
		return time.Duration(ns).String()
	}
	return fmt.Sprintf("%v", v)
}

// printTable renders homogeneous row maps as a column-aligned table.
func printTable(w io.Writer, rows []map[string]any) {
	cols := map[string]bool{}
	for _, r := range rows {
		for k := range r {
			cols[k] = true
		}
	}
	names := make([]string, 0, len(cols))
	for k := range cols {
		names = append(names, k)
	}
	sort.Strings(names)
	widths := make([]int, len(names))
	cells := make([][]string, len(rows))
	for i, name := range names {
		widths[i] = len(name)
	}
	for ri, r := range rows {
		cells[ri] = make([]string, len(names))
		for ci, name := range names {
			v := ""
			if raw, ok := r[name]; ok {
				v = fmt.Sprintf("%v", raw)
			}
			cells[ri][ci] = v
			if len(v) > widths[ci] {
				widths[ci] = len(v)
			}
		}
	}
	for i, name := range names {
		fmt.Fprintf(w, "%-*s  ", widths[i], name)
	}
	fmt.Fprintln(w)
	for _, row := range cells {
		for i, v := range row {
			fmt.Fprintf(w, "%-*s  ", widths[i], v)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "(%d rows)\n", len(rows))
}

// isTerminal reports whether stdin looks interactive.
func isTerminal() bool {
	fi, err := os.Stdin.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}
