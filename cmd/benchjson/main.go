// Command benchjson turns `go test -bench` output into a committed,
// benchstat-comparable benchmark record, and checks fresh runs against
// that record for drift.
//
// Record mode (default): parse a benchmark run from stdin and write a
// JSON document holding the raw benchstat-format lines, the parsed
// per-benchmark numbers, and the before/after speedup for every
// benchmark that has /before and /after variants.
//
//	go test -run xxx -bench 'RoutePath|PredicateCompile|ScanFanout' \
//	    -benchmem ./internal/... | benchjson -o BENCH_routing.json
//
// Drift mode (-drift <baseline.json>): parse a fresh run from stdin and
// compare its ns/op against the committed baseline. If benchstat is
// installed it gets the raw lines of both runs; otherwise a built-in
// table is printed. The report is informational unless -max is set, in
// which case any benchmark slower than the baseline by more than max
// percent fails the run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string   `json:"name"`
	Iters       int64    `json:"iters"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Record is the committed BENCH_routing.json document.
type Record struct {
	RecordedAt string `json:"recorded_at"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	// Raw holds the benchmark lines verbatim, in benchstat's input
	// format, so `benchstat old.txt new.txt` style comparisons can be
	// reconstructed from the committed record alone.
	Raw     []string `json:"raw"`
	Results []Result `json:"results"`
	// Speedups maps each benchmark family with /before and /after
	// variants to before-ns ÷ after-ns.
	Speedups map[string]float64 `json:"speedups,omitempty"`
}

func main() {
	out := flag.String("o", "", "write the record to this file instead of stdout")
	drift := flag.String("drift", "", "compare stdin's run against this committed baseline instead of recording")
	maxPct := flag.Float64("max", 0, "with -drift: fail if any benchmark regresses by more than this percent (0 = informational)")
	flag.Parse()

	raw, results, err := parseBench(bufio.NewScanner(os.Stdin))
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin (expected `go test -bench` output)"))
	}

	if *drift != "" {
		if err := reportDrift(*drift, raw, results, *maxPct); err != nil {
			fatal(err)
		}
		return
	}

	rec := Record{
		RecordedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Raw:        raw,
		Results:    results,
		Speedups:   speedups(results),
	}
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *out)
}

// parseBench pulls benchmark lines out of `go test -bench` output. A
// benchmark line starts with "Benchmark" and carries at least an
// iteration count and a ns/op pair; -benchmem adds B/op and allocs/op.
func parseBench(sc *bufio.Scanner) (raw []string, results []Result, err error) {
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 || f[3] != "ns/op" {
			continue
		}
		iters, err1 := strconv.ParseInt(f[1], 10, 64)
		ns, err2 := strconv.ParseFloat(f[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		r := Result{Name: trimProcs(f[0]), Iters: iters, NsPerOp: ns}
		for i := 4; i+1 < len(f); i += 2 {
			v, verr := strconv.ParseFloat(f[i], 64)
			if verr != nil {
				break
			}
			switch f[i+1] {
			case "B/op":
				r.BytesPerOp = &v
			case "allocs/op":
				r.AllocsPerOp = &v
			}
		}
		raw = append(raw, line)
		results = append(results, r)
	}
	return raw, results, sc.Err()
}

// trimProcs drops the -GOMAXPROCS suffix go test appends to benchmark
// names, so records taken on machines with different core counts still
// key to the same benchmark.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// speedups pairs every Benchmark<Family>/before with its /after and
// reports before÷after.
func speedups(results []Result) map[string]float64 {
	ns := make(map[string]float64, len(results))
	for _, r := range results {
		ns[r.Name] = r.NsPerOp
	}
	out := make(map[string]float64)
	for name, before := range ns {
		fam, ok := strings.CutSuffix(name, "/before")
		if !ok {
			continue
		}
		after, ok := ns[fam+"/after"]
		if !ok || after <= 0 {
			continue
		}
		out[strings.TrimPrefix(fam, "Benchmark")] = before / after
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// reportDrift compares a fresh run against the committed baseline:
// benchstat over the raw lines when available, a built-in table
// otherwise. Only benchmarks present in both runs are compared.
func reportDrift(baselinePath string, freshRaw []string, fresh []Result, maxPct float64) error {
	buf, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base Record
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", baselinePath, err)
	}

	if path, err := exec.LookPath("benchstat"); err == nil {
		if err := runBenchstat(path, base.Raw, freshRaw); err == nil {
			return checkDrift(base.Results, fresh, maxPct)
		}
		// benchstat present but failed: fall through to the table.
	}

	baseNs := make(map[string]float64, len(base.Results))
	for _, r := range base.Results {
		baseNs[r.Name] = r.NsPerOp
	}
	fmt.Printf("%-40s %14s %14s %9s\n", "benchmark", "baseline ns/op", "current ns/op", "delta")
	for _, r := range fresh {
		old, ok := baseNs[r.Name]
		if !ok || old <= 0 {
			continue
		}
		pct := (r.NsPerOp - old) / old * 100
		fmt.Printf("%-40s %14.1f %14.1f %+8.1f%%\n", r.Name, old, r.NsPerOp, pct)
	}
	fmt.Printf("baseline: %s (%s, %s/%s)\n", base.RecordedAt, base.GoVersion, base.GOOS, base.GOARCH)
	return checkDrift(base.Results, fresh, maxPct)
}

// runBenchstat writes both runs' raw lines to temp files and lets
// benchstat render the comparison.
func runBenchstat(path string, baseRaw, freshRaw []string) error {
	dir, err := os.MkdirTemp("", "benchjson")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	oldF := dir + "/old.txt"
	newF := dir + "/new.txt"
	if err := os.WriteFile(oldF, []byte(strings.Join(baseRaw, "\n")+"\n"), 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(newF, []byte(strings.Join(freshRaw, "\n")+"\n"), 0o644); err != nil {
		return err
	}
	cmd := exec.Command(path, oldF, newF)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	return cmd.Run()
}

// checkDrift enforces -max: any benchmark slower than baseline by more
// than maxPct percent is a failure.
func checkDrift(base, fresh []Result, maxPct float64) error {
	if maxPct <= 0 {
		return nil
	}
	baseNs := make(map[string]float64, len(base))
	for _, r := range base {
		baseNs[r.Name] = r.NsPerOp
	}
	var bad []string
	for _, r := range fresh {
		old, ok := baseNs[r.Name]
		if !ok || old <= 0 {
			continue
		}
		if pct := (r.NsPerOp - old) / old * 100; pct > maxPct {
			bad = append(bad, fmt.Sprintf("%s +%.1f%%", r.Name, pct))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("drift beyond %.0f%%: %s", maxPct, strings.Join(bad, ", "))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
