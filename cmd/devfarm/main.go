// Command devfarm serves a farm of emulated devices — PTZ cameras, MICA2
// motes and MMS phones — over real TCP, and writes a manifest that
// cmd/aortad consumes to register them. It is the deployment mode in
// which the engine and the devices live in different processes (or
// machines), exercising the same wire protocol as the in-memory labs.
//
// Usage:
//
//	devfarm -cameras 2 -motes 10 -phones 1 -manifest farm.json
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aorta/internal/device"
	"aorta/internal/device/camera"
	"aorta/internal/device/mote"
	"aorta/internal/device/phone"
	"aorta/internal/geo"
	"aorta/internal/manifest"
	"aorta/internal/vclock"
)

func main() {
	var (
		cameras      = flag.Int("cameras", 2, "number of PTZ cameras")
		motes        = flag.Int("motes", 10, "number of sensor motes")
		phones       = flag.Int("phones", 1, "number of phones")
		host         = flag.String("host", "127.0.0.1", "address to bind")
		manifestPath = flag.String("manifest", "farm.json", "manifest output path")
		scale        = flag.Float64("scale", 1, "clock scale (1 = real time)")
		stimulate    = flag.Bool("stimulate", false, "periodically stimulate random motes")
	)
	flag.Parse()
	if err := run(*cameras, *motes, *phones, *host, *manifestPath, *scale, *stimulate); err != nil {
		fmt.Fprintln(os.Stderr, "devfarm:", err)
		os.Exit(1)
	}
}

func run(cameras, motes, phones int, host, manifestPath string, scale float64, stimulate bool) error {
	var clk vclock.Clock = vclock.Real{}
	if scale > 1 {
		clk = vclock.NewScaled(scale)
	}

	var m manifest.Manifest
	var servers []*device.Server
	defer func() {
		for _, s := range servers {
			_ = s.Close()
		}
	}()

	serve := func(model device.Model) (string, error) {
		l, err := net.Listen("tcp", host+":0")
		if err != nil {
			return "", err
		}
		servers = append(servers, device.Serve(l, model))
		return l.Addr().String(), nil
	}

	var moteModels []*mote.Mote
	for i := 0; i < cameras; i++ {
		id := fmt.Sprintf("camera-%d", i+1)
		mount := geo.DefaultMount(geo.Point{X: float64(i) * 14, Y: 4, Z: 3}, float64((i%2)*180))
		addr, err := serve(camera.New(id, mount, clk))
		if err != nil {
			return err
		}
		m.Devices = append(m.Devices, manifest.Device{ID: id, Type: "camera", Addr: addr, Mount: &mount})
		fmt.Printf("camera %s at %s (mount %v facing %.0f°)\n", id, addr, mount.Position, mount.ForwardDeg)
	}
	for i := 0; i < motes; i++ {
		id := fmt.Sprintf("mote-%d", i+1)
		loc := geo.Point{X: 2 + float64(i%5)*2.5, Y: 1 + float64(i/5)*2.5}
		mm := mote.New(id, loc, clk, mote.Config{Depth: 1 + i%3, Seed: int64(i)})
		moteModels = append(moteModels, mm)
		addr, err := serve(mm)
		if err != nil {
			return err
		}
		m.Devices = append(m.Devices, manifest.Device{ID: id, Type: "sensor", Addr: addr, Loc: &loc, Depth: 1 + i%3})
		fmt.Printf("mote %s at %s (loc %v)\n", id, addr, loc)
	}
	for i := 0; i < phones; i++ {
		id := fmt.Sprintf("phone-%d", i+1)
		number := fmt.Sprintf("+8525550%02d", i+1)
		addr, err := serve(phone.New(id, number, fmt.Sprintf("manager-%d", i+1), clk))
		if err != nil {
			return err
		}
		m.Devices = append(m.Devices, manifest.Device{ID: id, Type: "phone", Addr: addr, Number: number, Owner: fmt.Sprintf("manager-%d", i+1)})
		fmt.Printf("phone %s at %s (%s)\n", id, addr, number)
	}

	if err := manifest.Write(manifestPath, &m); err != nil {
		return err
	}
	fmt.Printf("manifest written to %s; serving %d devices (ctrl-c to stop)\n", manifestPath, len(m.Devices))

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})

	if stimulate && len(moteModels) > 0 {
		go func() {
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				case <-clk.After(15 * time.Second):
				}
				mm := moteModels[i%len(moteModels)]
				mm.Stimulate("x", 900, 5*time.Second)
				fmt.Printf("stimulated %s\n", mm.ID())
			}
		}()
	}

	<-stop
	close(done)
	fmt.Println("shutting down")
	return nil
}
