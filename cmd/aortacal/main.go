// Command aortacal is the paper's "homegrown program" (§3.1): it measures
// the cost of every atomic operation on live devices and emits the
// atomic_operation_cost.xml tables the cost model consumes.
//
//	aortacal                          # calibrate the built-in lab's devices
//	aortacal -devices farm.json       # calibrate an external TCP farm
//	aortacal -o costs/                # write one XML file per device type
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"aorta/internal/calibrate"
	"aorta/internal/comm"
	"aorta/internal/core"
	"aorta/internal/geo"
	"aorta/internal/lab"
	"aorta/internal/manifest"
	"aorta/internal/netsim"
	"aorta/internal/profile"
	"aorta/internal/vclock"
)

func main() {
	var (
		devices = flag.String("devices", "", "external farm manifest; empty = built-in lab")
		outDir  = flag.String("o", "", "directory for XML output files; empty = stdout")
		trials  = flag.Int("trials", 3, "repetitions per fixed-cost operation")
		scale   = flag.Float64("scale", 100, "built-in lab: clock scale")
	)
	flag.Parse()
	if err := run(*devices, *outDir, *trials, *scale); err != nil {
		fmt.Fprintln(os.Stderr, "aortacal:", err)
		os.Exit(1)
	}
}

// target is one device to calibrate per type.
type target struct {
	id         string
	deviceType string
	fixedOps   []string // empty for cameras (special-cased)
}

func run(devicesPath, outDir string, trials int, scale float64) error {
	var layer *comm.Layer
	var clk vclock.Clock
	var targets []target

	if devicesPath == "" {
		l, err := lab.New(lab.Config{ClockScale: scale})
		if err != nil {
			return err
		}
		defer l.Close()
		layer = l.Engine.Layer()
		clk = l.Clock
		targets = []target{
			{id: "camera-1", deviceType: profile.DeviceCamera},
			{id: "mote-1", deviceType: profile.DeviceSensor, fixedOps: []string{"beep", "blink", "sample"}},
			{id: "phone-1", deviceType: profile.DevicePhone, fixedOps: []string{"send_sms", "ring"}},
		}
		fmt.Fprintln(os.Stderr, "calibrating the built-in lab (camera-1, mote-1, phone-1)")
	} else {
		m, err := manifest.Read(devicesPath)
		if err != nil {
			return err
		}
		clk = vclock.Real{}
		eng, err := core.New(core.Config{Clock: clk, Dialer: &netsim.TCP{}})
		if err != nil {
			return err
		}
		seen := make(map[string]bool)
		for i := range m.Devices {
			d := &m.Devices[i]
			var mount geo.Mount
			if d.Mount != nil {
				mount = *d.Mount
			}
			if err := eng.RegisterDevice(comm.DeviceInfo{ID: d.ID, Type: d.Type, Addr: d.Addr, Static: d.Static()}, mount); err != nil {
				return err
			}
			// One calibration target per device type.
			if seen[d.Type] {
				continue
			}
			seen[d.Type] = true
			tg := target{id: d.ID, deviceType: d.Type}
			switch d.Type {
			case profile.DeviceSensor:
				tg.fixedOps = []string{"beep", "blink", "sample"}
			case profile.DevicePhone:
				tg.fixedOps = []string{"send_sms", "ring"}
			}
			targets = append(targets, tg)
		}
		layer = eng.Layer()
		fmt.Fprintf(os.Stderr, "calibrating %d device types from %s\n", len(targets), devicesPath)
	}

	ctx := context.Background()
	cfg := calibrate.Config{Trials: trials, Clock: clk}
	for _, tg := range targets {
		var costs *profile.AtomicCosts
		var err error
		if tg.deviceType == profile.DeviceCamera {
			costs, err = calibrate.Camera(ctx, layer, tg.id, cfg)
		} else {
			costs, err = calibrate.Fixed(ctx, layer, tg.id, tg.deviceType, tg.fixedOps, cfg)
		}
		if err != nil {
			return fmt.Errorf("calibrate %s: %w", tg.id, err)
		}
		data, err := costs.Marshal()
		if err != nil {
			return err
		}
		if outDir == "" {
			fmt.Printf("-- %s (measured on %s)\n%s\n", tg.deviceType, tg.id, data)
			continue
		}
		path := filepath.Join(outDir, tg.deviceType+"_costs.xml")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	return nil
}
