// Command aortad is the Aorta daemon: an engine plus a device farm,
// accepting extended-SQL statements over TCP (one statement per line,
// one JSON response per line). Use cmd/aortactl as the client.
//
// The line protocol is pipelined: a statement may carry an optional
// request tag ("#<id> <stmt>"), in which case it executes concurrently
// with other tagged statements (bounded by the per-connection window and
// the shared worker pool) and its response frame echoes the id. Bare
// lines keep the legacy one-at-a-time in-order semantics. Ad-hoc
// SELECTs are admission-controlled: rate limited per connection
// (-adhoc-rate) and shed with a typed "overloaded" error when the pool
// is saturated, so continuous-query management is never starved. See
// internal/frontdoor.
//
// Two farm modes:
//
//   - built-in simulated lab (default): -cameras/-motes/-phones devices on
//     an in-memory network with an optionally scaled clock;
//   - external farm: -devices farm.json registers the TCP devices served
//     by cmd/devfarm.
//
// Two cluster modes (see internal/cluster and DESIGN.md "Cluster"):
//
//   - -shard <id>: serve one shard of a cluster manifest — register only
//     the devices the manifest's shard map assigns to <id>;
//   - -router: serve no engine at all; fan statements out to the
//     manifest's shard daemons and merge their responses. The router
//     speaks the same line protocol, so aortactl works unchanged.
//
// Besides SQL, the protocol accepts backslash commands:
//
//	\metrics              engine action metrics + transport/pool + scan fabric counters
//	\photos               photos stored by photo()
//	\stimulate <i> <mg> <sec>   inject an event at mote i (lab mode)
//	\ping                 liveness probe (the cluster router's health checks)
//	\drain                cooperative drain: refuse new placements, flush intents, sync the WAL
//	\quit                 close the connection
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"aorta/internal/cluster"
	"aorta/internal/comm"
	"aorta/internal/core"
	"aorta/internal/frontdoor"
	"aorta/internal/geo"
	"aorta/internal/lab"
	"aorta/internal/liveness"
	"aorta/internal/manifest"
	"aorta/internal/netsim"
	"aorta/internal/scanshare"
	"aorta/internal/vclock"
	"aorta/internal/wal"
)

func main() {
	var opts options
	flag.StringVar(&opts.listen, "listen", "127.0.0.1:7730", "SQL service address")
	flag.StringVar(&opts.devices, "devices", "", "external farm manifest (from devfarm); empty = built-in lab")
	flag.BoolVar(&opts.router, "router", false, "cluster router mode: fan statements out to the manifest's shards (requires -devices with a shards section)")
	flag.StringVar(&opts.shard, "shard", "", "cluster shard mode: register only the devices the manifest assigns to this shard id")
	flag.IntVar(&opts.cameras, "cameras", 2, "built-in lab: cameras")
	flag.IntVar(&opts.motes, "motes", 10, "built-in lab: motes")
	flag.IntVar(&opts.phones, "phones", 1, "built-in lab: phones")
	flag.Float64Var(&opts.scale, "scale", 1, "built-in lab: clock scale")
	flag.StringVar(&opts.dataDir, "data", "", "durable state directory (write-ahead journal); empty = in-memory only")
	flag.StringVar(&opts.pprof, "pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060); empty = off")
	flag.IntVar(&opts.workers, "workers", 0, "statement worker pool size (0 = 2x GOMAXPROCS)")
	flag.IntVar(&opts.window, "window", 0, "per-connection in-flight window for tagged statements (0 = default 32)")
	flag.Float64Var(&opts.adhocRate, "adhoc-rate", 0, "per-connection ad-hoc SELECT rate limit per second (0 = unlimited)")
	flag.Float64Var(&opts.adhocBurst, "adhoc-burst", 0, "ad-hoc rate limit burst (0 = max(1, adhoc-rate))")
	flag.DurationVar(&opts.stmtTimeout, "stmt-timeout", 0, "per-statement execution deadline; expired statements get a typed deadline_exceeded error (0 = none)")
	flag.DurationVar(&opts.drainTimeout, "drain-timeout", 30*time.Second, "flush bound for the \\drain command (engine/shard modes) and for DRAIN SHARD forwarded by the router")
	flag.DurationVar(&opts.probeInterval, "probe-interval", 5*time.Second, "router mode: shard health probe period (0 = passive evidence only)")
	flag.DurationVar(&opts.grace, "grace", cluster.DefaultGraceWindow, "router mode: how long a shard must stay down before auto-retire")
	flag.BoolVar(&opts.autoRetire, "auto-retire", false, "router mode: automatically retire shards that stay down through the grace window")
	flag.Float64Var(&opts.quorum, "quorum", cluster.DefaultQuorum, "router mode: fraction of peer shards that must be reachable for auto-retire to proceed")
	flag.StringVar(&opts.memlog, "memlog", "", "router mode: append membership events (retire/drain) as JSON lines to this file")
	flag.BoolVar(&opts.verbose, "v", false, "log engine events to stderr")
	flag.Parse()
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "aortad:", err)
		os.Exit(1)
	}
}

// options configures one daemon run. Tests drive run directly with a
// private shutdown channel instead of delivering real signals.
type options struct {
	listen  string
	devices string
	// router serves the cluster fan-out/merge front door instead of an
	// engine; shard restricts device registration to one shard's slice of
	// the manifest. Both need -devices with a shards section.
	router  bool
	shard   string
	cameras int
	motes   int
	phones  int
	scale   float64
	// dataDir, when set, makes engine state durable: catalog mutations and
	// action intents/outcomes go through a write-ahead journal there, and
	// startup replays it before serving.
	dataDir string
	// pprof, when set, serves net/http/pprof on that address so routing
	// hot paths can be profiled against a live daemon.
	pprof string
	// workers/window/adhocRate/adhocBurst size the front door: the shared
	// statement pool, the per-connection pipelining window, and the
	// ad-hoc SELECT admission policy.
	workers    int
	window     int
	adhocRate  float64
	adhocBurst float64
	// stmtTimeout bounds each statement's execution; the deadline
	// propagates frontdoor → engine → comm → device session.
	stmtTimeout time.Duration
	// drainTimeout bounds the \drain flush (and the router's forwarded
	// drain); probeInterval/grace/autoRetire/quorum/memlog configure the
	// router's shard health detector and auto-retire control loop.
	drainTimeout  time.Duration
	probeInterval time.Duration
	grace         time.Duration
	autoRetire    bool
	quorum        float64
	memlog        string
	verbose       bool
	// shutdown delivers the stop request; nil means install the real
	// SIGINT/SIGTERM handler.
	shutdown chan os.Signal
	// ready, when non-nil, receives the bound listen address once the
	// daemon is serving.
	ready chan<- net.Addr
	// pprofReady, when non-nil, receives the bound pprof address.
	pprofReady chan<- net.Addr
}

// server holds the running daemon state.
type server struct {
	engine *core.Engine
	lab    *lab.Lab // nil in external-farm mode
	door   *frontdoor.Door
	logger *slog.Logger
	// drainTimeout bounds the \drain command's flush.
	drainTimeout time.Duration
}

func run(opts options) error {
	srv := &server{drainTimeout: opts.drainTimeout}
	ctx := context.Background()
	var logger *slog.Logger
	if opts.verbose {
		logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug}))
	}

	// The router is a different daemon shape: no engine, no journal, no
	// devices of its own — just the fan-out/merge front door.
	if opts.router {
		return runRouter(ctx, opts, logger)
	}

	// Open the journal before anything else touches the data dir: the
	// directory lock is the single-writer guarantee, so a second daemon on
	// the same -data must be refused here, not after it has half-started.
	var j *wal.Journal
	if opts.dataDir != "" {
		var err error
		j, err = wal.Open(opts.dataDir, wal.Options{})
		if errors.Is(err, wal.ErrLocked) {
			return fmt.Errorf("data dir %s is in use by another aortad: %w", opts.dataDir, err)
		}
		if err != nil {
			return err
		}
		// Deferred first so it runs last (LIFO): the engine's Stop flushes
		// its final outcome records before Close syncs and drops the lock.
		defer j.Close()
	}

	// Long-running daemons need the active health prober: a device whose
	// traffic has been shed by the failure detector produces no passive
	// evidence, so probing is its only road back to Up.
	const probeInterval = 5 * time.Second

	if opts.shard != "" && opts.devices == "" {
		return errors.New("-shard requires -devices with a shards section")
	}
	if opts.devices == "" {
		l, err := lab.New(lab.Config{
			Cameras: opts.cameras, Motes: opts.motes, Phones: opts.phones, ClockScale: opts.scale,
			Engine: core.Config{Logger: logger, LivenessProbeInterval: probeInterval, Journal: j},
		})
		if err != nil {
			return err
		}
		defer l.Close()
		srv.lab = l
		srv.engine = l.Engine
		fmt.Printf("built-in lab: %d cameras, %d motes, %d phones (clock %gx)\n",
			opts.cameras, opts.motes, opts.phones, opts.scale)
	} else {
		m, err := manifest.Read(opts.devices)
		if err != nil {
			return err
		}
		// In shard mode this daemon owns only its slice of the farm: the
		// manifest's shard map (hash + pins) decides which devices register
		// here, and the router sends it only statements those can answer.
		var smap *cluster.Map
		if opts.shard != "" {
			smap, err = m.ShardMap()
			if err != nil {
				return err
			}
			if !smap.Contains(opts.shard) {
				return fmt.Errorf("shard %q is not in %s (have %v)", opts.shard, opts.devices, smap.Shards())
			}
		}
		eng, err := core.New(core.Config{
			Clock:                 vclock.Real{},
			Dialer:                &netsim.TCP{Timeout: 2 * time.Second},
			Logger:                logger,
			LivenessProbeInterval: probeInterval,
			Journal:               j,
		})
		if err != nil {
			return err
		}
		registered := 0
		for i := range m.Devices {
			d := &m.Devices[i]
			if smap != nil && smap.Owner(d.ID) != opts.shard {
				continue
			}
			var mount geo.Mount
			if d.Mount != nil {
				mount = *d.Mount
			}
			info := comm.DeviceInfo{ID: d.ID, Type: d.Type, Addr: d.Addr, Static: d.Static()}
			if err := eng.RegisterDevice(info, mount); err != nil {
				return err
			}
			registered++
		}
		srv.engine = eng
		if opts.shard != "" {
			fmt.Printf("shard %s: %d of %d devices from %s\n", opts.shard, registered, len(m.Devices), opts.devices)
		} else {
			fmt.Printf("external farm: %d devices from %s\n", registered, opts.devices)
		}
	}

	if j != nil {
		stats, err := srv.engine.Recover(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("recovered from %s: %d records (%d devices, %d queries), %d pending intents (%d re-dispatched, %d expired) in %s\n",
			opts.dataDir, stats.Replayed, stats.Devices, stats.Queries,
			stats.PendingIntents, stats.Redispatched, stats.Expired, stats.ReplayLatency.Round(time.Microsecond))
		if stats.SkippedQueries > 0 {
			fmt.Printf("warning: %d journaled queries no longer compile and were dropped\n", stats.SkippedQueries)
		}
	}

	if err := srv.engine.Start(ctx); err != nil {
		return err
	}
	defer srv.engine.Stop()

	// The front door owns all client-path concurrency: its pool is the
	// single bound on statement execution. Deferred after engine Stop
	// registration (LIFO) so the drained pool closes before the engine.
	srv.logger = logger
	srv.door = frontdoor.New(frontdoor.Config{
		Workers:     opts.workers,
		Window:      opts.window,
		AdHocPerSec: opts.adhocRate,
		AdHocBurst:  opts.adhocBurst,
		StmtTimeout: opts.stmtTimeout,
		Clock:       vclock.Real{},
		Logger:      logger,
	})
	defer srv.door.Close()

	return serveLoop(ctx, opts, srv.door, srv.execLine)
}

// runRouter serves the cluster front door: no engine of its own, just a
// manifest-configured fan-out/merge router behind the same pipelined
// line protocol as a single-shard daemon.
func runRouter(ctx context.Context, opts options, logger *slog.Logger) error {
	if opts.devices == "" {
		return errors.New("-router requires -devices with a shards section")
	}
	if opts.dataDir != "" {
		return errors.New("-router keeps no durable state; -data belongs on the shard daemons")
	}
	m, err := manifest.Read(opts.devices)
	if err != nil {
		return err
	}
	if len(m.Shards) == 0 {
		return fmt.Errorf("%s declares no shards; -router needs a cluster manifest", opts.devices)
	}
	pins := make(map[string]string, len(m.Assignments))
	for _, a := range m.Assignments {
		pins[a.Device] = a.Shard
	}
	hcfg := cluster.HealthConfig{
		ProbeInterval: opts.probeInterval,
		GraceWindow:   opts.grace,
		AutoRetire:    opts.autoRetire,
		Quorum:        opts.quorum,
	}
	if opts.memlog != "" {
		f, err := os.OpenFile(opts.memlog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("membership log: %w", err)
		}
		defer f.Close()
		hcfg.MembershipLog = f
	}
	// DRAIN SHARD from a wire-only router forwards \drain to the victim
	// daemon: it stops accepting placements, flushes its intents and
	// syncs its WAL. Its state stays in that WAL — adoption into
	// survivors needs the journal directory, which lives with the shard
	// process — so the drained daemon can be stopped and handed off
	// offline with zero loss.
	var rt *cluster.Router
	hcfg.Drainer = func(ctx context.Context, victim string, owner func(string) string) (cluster.DrainReport, error) {
		dctx, cancel := context.WithTimeout(ctx, opts.drainTimeout)
		defer cancel()
		if err := rt.ShardCommand(dctx, victim, "\\drain"); err != nil {
			return cluster.DrainReport{}, err
		}
		return cluster.DrainReport{Note: "shard flushed and synced its WAL; stop the daemon and adopt its journal to finish the move"}, nil
	}
	rt, err = cluster.NewRouter(cluster.RouterConfig{
		Shards: m.ShardInfos(),
		Pins:   pins,
		Dialer: &netsim.TCP{Timeout: 2 * time.Second},
		Logger: logger,
		Health: hcfg,
	})
	if err != nil {
		return err
	}
	defer rt.Close()
	entries := make([]cluster.DeviceEntry, 0, len(m.Devices))
	for i := range m.Devices {
		entries = append(entries, cluster.DeviceEntry{ID: m.Devices[i].ID, Type: m.Devices[i].Type})
	}
	rt.SetDevices(entries)
	fmt.Printf("router: %d shards, %d devices from %s\n", len(m.Shards), len(m.Devices), opts.devices)

	door := frontdoor.New(frontdoor.Config{
		Workers:     opts.workers,
		Window:      opts.window,
		AdHocPerSec: opts.adhocRate,
		AdHocBurst:  opts.adhocBurst,
		StmtTimeout: opts.stmtTimeout,
		Clock:       vclock.Real{},
		Logger:      logger,
	})
	defer door.Close()

	return serveLoop(ctx, opts, door, rt.Exec)
}

// serveLoop binds the SQL (and optional pprof) listeners and accepts
// clients until shutdown. Shared by the engine and router daemon shapes.
func serveLoop(ctx context.Context, opts options, door *frontdoor.Door, exec frontdoor.Exec) error {
	// The pprof endpoint rides the side import's DefaultServeMux
	// registration; binding the listener here (rather than inside the
	// goroutine) surfaces a bad -pprof address as a startup error.
	if opts.pprof != "" {
		pln, err := net.Listen("tcp", opts.pprof)
		if err != nil {
			return fmt.Errorf("pprof listen: %w", err)
		}
		defer pln.Close()
		go func() { _ = http.Serve(pln, nil) }()
		fmt.Printf("pprof on http://%s/debug/pprof/\n", pln.Addr())
		if opts.pprofReady != nil {
			opts.pprofReady <- pln.Addr()
		}
	}

	ln, err := net.Listen("tcp", opts.listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("aortad listening on %s\n", ln.Addr())
	if opts.ready != nil {
		opts.ready <- ln.Addr()
	}

	stop := opts.shutdown
	if stop == nil {
		stop = make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(stop)
	}

	// Track live client connections so shutdown can sever them: a handler
	// blocked reading an idle client would otherwise stall wg.Wait() — and
	// with it the engine drain and journal close — indefinitely.
	var (
		connMu sync.Mutex
		conns  = make(map[net.Conn]struct{})
	)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			connMu.Lock()
			conns[conn] = struct{}{}
			connMu.Unlock()
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() {
					connMu.Lock()
					delete(conns, conn)
					connMu.Unlock()
				}()
				door.Serve(ctx, conn, exec)
			}()
		}
	}()

	<-stop
	fmt.Println("shutting down")
	ln.Close()
	connMu.Lock()
	for conn := range conns {
		conn.Close()
	}
	connMu.Unlock()
	wg.Wait()
	return nil
}

// response is the JSON reply to one statement.
type response struct {
	// ID echoes the request tag of a pipelined ("#<id> ...") statement so
	// the client can match out-of-order responses; empty for bare lines.
	ID string `json:"id,omitempty"`
	OK bool   `json:"ok"`
	// Code is the typed error class (deadline_exceeded, degraded,
	// quarantined, panic — plus the door's own overloaded/rate_limited/
	// statement_too_long) so clients can react by kind instead of parsing
	// Error text.
	Code    string                `json:"code,omitempty"`
	Error   string                `json:"error,omitempty"`
	Message string                `json:"message,omitempty"`
	Rows    []map[string]any      `json:"rows,omitempty"`
	Queries []core.Info           `json:"queries,omitempty"`
	Names   []string              `json:"names,omitempty"`
	Metrics *core.MetricsSnapshot `json:"metrics,omitempty"`
	Comm    *comm.MetricsSnapshot `json:"comm,omitempty"`
	// Scanshare is the shared scan fabric's view: coalesced scans, fan-out
	// volume and predicate-index hit rates.
	Scanshare *scanshare.MetricsSnapshot `json:"scanshare,omitempty"`
	// ScanGroups lists the current coalesced scan groups (SHOW SCANS).
	ScanGroups []scanshare.ShareInfo `json:"scan_groups,omitempty"`
	// Liveness is the failure detector's per-device health view.
	Liveness map[string]liveness.DeviceHealth `json:"liveness,omitempty"`
	// Frontdoor is the admission-control view: shed/rate-limited counts,
	// pool occupancy, and the pipelining window.
	Frontdoor *frontdoor.MetricsSnapshot `json:"frontdoor,omitempty"`
	// Wal is the write-ahead journal's counter set; its AppendErrors/
	// SyncErrors are the early warning that degraded mode is near (or the
	// record of why it fired). Absent without -data.
	Wal    *wal.Stats  `json:"wal,omitempty"`
	Photos []photoInfo `json:"photos,omitempty"`
}

type photoInfo struct {
	Directory string `json:"directory"`
	Device    string `json:"device"`
	Blurred   bool   `json:"blurred"`
	SizeKB    int    `json:"size_kb"`
}

func (s *server) handle(ctx context.Context, conn net.Conn) {
	s.door.Serve(ctx, conn, s.execLine)
}

// execLine runs one admitted statement for the front door. id is the
// request tag ("" for bare lines); the returned value is the response
// frame the door's per-connection writer will encode.
func (s *server) execLine(ctx context.Context, id, line string) any {
	if strings.HasPrefix(line, "\\") {
		resp := s.command(line)
		resp.ID = id
		return resp
	}
	resp := &response{ID: id, OK: true}
	res, err := s.engine.Exec(ctx, line)
	if err != nil {
		resp.OK = false
		resp.Error = err.Error()
		resp.Code = errorCode(ctx, err)
	} else {
		resp.Message = res.Message
		resp.Rows = res.Rows
		resp.Queries = res.Queries
		resp.Names = res.Names
	}
	return resp
}

// errorCode maps an engine error to its wire-level error class. The
// deadline check also consults the statement context's cancellation
// cause: -stmt-timeout cancellation surfaces from arbitrary depths
// (device sessions, pooled transports) as wrapped context errors, and
// the cause is the one reliable witness that the deadline — not a client
// disconnect — fired.
func errorCode(ctx context.Context, err error) string {
	cause := context.Cause(ctx)
	switch {
	case errors.Is(err, core.ErrDraining):
		return frontdoor.CodeDraining
	case errors.Is(err, core.ErrDegraded):
		return frontdoor.CodeDegraded
	case errors.Is(err, core.ErrQuarantined):
		return frontdoor.CodeQuarantined
	case errors.Is(err, core.ErrPanic):
		return frontdoor.CodePanic
	case errors.Is(err, context.DeadlineExceeded),
		ctx.Err() != nil && errors.Is(cause, context.DeadlineExceeded):
		return frontdoor.CodeDeadlineExceeded
	default:
		return ""
	}
}

// command handles backslash commands.
func (s *server) command(line string) *response {
	fields := strings.Fields(line)
	switch fields[0] {
	case "\\ping":
		// The cluster router's health probe.
		return &response{OK: true, Message: "pong"}
	case "\\drain":
		// Cooperative drain: refuse new placements, flush journaled
		// intents and in-flight dispatches, sync the WAL. The daemon keeps
		// serving reads afterwards; stop it to release the journal for
		// handoff. Queries keep evaluating until then.
		ctx, cancel := context.WithTimeout(context.Background(), s.drainTimeout)
		defer cancel()
		st, err := s.engine.Drain(ctx)
		if err != nil {
			return &response{Error: err.Error()}
		}
		return &response{OK: true, Message: fmt.Sprintf(
			"drained: flushed %d pending intents, %d in-flight dispatches in %s; WAL synced, new placements refused",
			st.PendingAtEntry, st.InFlightAtEntry, st.Waited.Round(time.Millisecond))}
	case "\\metrics":
		m := s.engine.Metrics()
		cm := s.engine.CommMetrics()
		sm := s.engine.ScanMetrics()
		resp := &response{
			OK: true, Metrics: &m, Comm: &cm, Scanshare: &sm,
			ScanGroups: s.engine.ScanSharing(),
			Liveness:   s.engine.LivenessSnapshot(),
		}
		if s.door != nil {
			fm := s.door.Metrics()
			resp.Frontdoor = &fm
		}
		if ws, ok := s.engine.JournalStats(); ok {
			resp.Wal = &ws
		}
		return resp
	case "\\photos":
		var out []photoInfo
		for _, p := range s.engine.Photos() {
			out = append(out, photoInfo{
				Directory: p.Directory, Device: p.DeviceID,
				Blurred: p.Photo.Blurred, SizeKB: p.Photo.SizeKB,
			})
		}
		return &response{OK: true, Photos: out, Message: fmt.Sprintf("%d photos", len(out))}
	case "\\stimulate":
		if s.lab == nil {
			return &response{Error: "\\stimulate only works with the built-in lab"}
		}
		if len(fields) != 4 {
			return &response{Error: "usage: \\stimulate <mote-index> <magnitude> <seconds>"}
		}
		idx, err1 := strconv.Atoi(fields[1])
		mag, err2 := strconv.ParseFloat(fields[2], 64)
		secs, err3 := strconv.ParseFloat(fields[3], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return &response{Error: "usage: \\stimulate <mote-index> <magnitude> <seconds>"}
		}
		if !s.lab.StimulateMote(idx, mag, time.Duration(secs*float64(time.Second))) {
			return &response{Error: fmt.Sprintf("unknown mote index %d (have %d motes)", idx, len(s.lab.Motes))}
		}
		return &response{OK: true, Message: fmt.Sprintf("mote %d stimulated at %.0f mg for %.0fs", idx, mag, secs)}
	default:
		return &response{Error: "unknown command " + fields[0]}
	}
}
