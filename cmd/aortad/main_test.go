package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"

	"aorta/internal/lab"
)

// startServer builds a lab-backed server and serves its line protocol
// over an in-memory pipe, returning a client-side reader/writer.
func startServer(t *testing.T) (net.Conn, *server) {
	t.Helper()
	l, err := lab.New(lab.Config{Motes: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	if err := l.Engine.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv := &server{engine: l.Engine, lab: l}
	client, serverConn := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.handle(context.Background(), serverConn)
	}()
	t.Cleanup(func() {
		client.Close()
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Error("handler did not exit")
		}
	})
	return client, srv
}

// exchange sends one line and decodes the JSON response.
func exchange(t *testing.T, conn net.Conn, sc *bufio.Scanner, line string) response {
	t.Helper()
	if _, err := conn.Write([]byte(line + "\n")); err != nil {
		t.Fatal(err)
	}
	if !sc.Scan() {
		t.Fatalf("no response to %q: %v", line, sc.Err())
	}
	var resp response
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		t.Fatalf("bad response %q: %v", sc.Text(), err)
	}
	return resp
}

func TestProtocolSQLAndCommands(t *testing.T) {
	conn, _ := startServer(t)
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	// SHOW DEVICES: 3 motes + 2 cameras + 1 phone.
	resp := exchange(t, conn, sc, "SHOW DEVICES")
	if !resp.OK || len(resp.Names) != 6 {
		t.Fatalf("SHOW DEVICES = %+v", resp)
	}

	// Ad-hoc select returns rows.
	resp = exchange(t, conn, sc, `SELECT s.id FROM sensor s WHERE s.temp > -100`)
	if !resp.OK || len(resp.Rows) != 3 {
		t.Fatalf("select = %+v", resp)
	}

	// Register a continuous query.
	resp = exchange(t, conn, sc, `CREATE AQ snap AS SELECT photo(c.ip, s.loc, "d") FROM sensor s, camera c WHERE s.accel_x > 500 AND coverage(c.id, s.loc) EVERY "2s"`)
	if !resp.OK || !strings.Contains(resp.Message, "snap") {
		t.Fatalf("create = %+v", resp)
	}
	resp = exchange(t, conn, sc, "SHOW QUERIES")
	if !resp.OK || len(resp.Queries) != 1 {
		t.Fatalf("queries = %+v", resp)
	}

	// Stimulate through the control command and wait for a photo.
	resp = exchange(t, conn, sc, `\stimulate 1 900 30`)
	if !resp.OK {
		t.Fatalf("stimulate = %+v", resp)
	}
	deadline := time.Now().Add(8 * time.Second)
	var photos int
	for time.Now().Before(deadline) {
		resp = exchange(t, conn, sc, `\photos`)
		photos = len(resp.Photos)
		if photos > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if photos == 0 {
		t.Fatal("no photos after stimulate")
	}

	// Metrics round-trip, including the failure-aware execution counters:
	// Retries/Dropped ride the same snapshot, and failure kinds key the
	// breakdown by name.
	resp = exchange(t, conn, sc, `\metrics`)
	if !resp.OK || resp.Metrics == nil || resp.Metrics.Requests == 0 {
		t.Fatalf("metrics = %+v", resp)
	}
	if resp.Metrics.Failures == nil {
		t.Fatalf("metrics missing failure breakdown: %+v", resp.Metrics)
	}
	if resp.Metrics.Retries != 0 && resp.Metrics.Successes == 0 {
		t.Fatalf("retries without outcomes: %+v", resp.Metrics)
	}

	// SQL errors are reported, not fatal.
	resp = exchange(t, conn, sc, "SELEKT nonsense")
	if resp.OK || resp.Error == "" {
		t.Fatalf("bad SQL = %+v", resp)
	}

	// Unknown and malformed control commands.
	resp = exchange(t, conn, sc, `\dance`)
	if resp.Error == "" {
		t.Fatalf("unknown command = %+v", resp)
	}
	resp = exchange(t, conn, sc, `\stimulate nope`)
	if resp.Error == "" {
		t.Fatalf("malformed stimulate = %+v", resp)
	}
}

func TestProtocolQuit(t *testing.T) {
	conn, _ := startServer(t)
	if _, err := conn.Write([]byte("\\quit\n")); err != nil {
		t.Fatal(err)
	}
	// The server closes the connection; subsequent reads must fail.
	buf := make([]byte, 1)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("connection still open after \\quit")
	}
}

func TestProtocolSkipsBlankLines(t *testing.T) {
	conn, _ := startServer(t)
	sc := bufio.NewScanner(conn)
	if _, err := conn.Write([]byte("\n\n")); err != nil {
		t.Fatal(err)
	}
	resp := exchange(t, conn, sc, "SHOW ACTIONS")
	if !resp.OK || len(resp.Names) == 0 {
		t.Fatalf("actions = %+v", resp)
	}
}
