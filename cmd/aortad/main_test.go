package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"aorta/internal/frontdoor"
	"aorta/internal/lab"
	"aorta/internal/wal"
)

// startServer builds a lab-backed server and serves its line protocol
// over an in-memory pipe, returning a client-side reader/writer.
func startServer(t *testing.T) (net.Conn, *server) {
	t.Helper()
	l, err := lab.New(lab.Config{Motes: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	if err := l.Engine.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv := &server{engine: l.Engine, lab: l, door: frontdoor.New(frontdoor.Config{})}
	t.Cleanup(srv.door.Close)
	client, serverConn := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.handle(context.Background(), serverConn)
	}()
	t.Cleanup(func() {
		client.Close()
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Error("handler did not exit")
		}
	})
	return client, srv
}

// exchange sends one line and decodes the JSON response.
func exchange(t *testing.T, conn net.Conn, sc *bufio.Scanner, line string) response {
	t.Helper()
	if _, err := conn.Write([]byte(line + "\n")); err != nil {
		t.Fatal(err)
	}
	if !sc.Scan() {
		t.Fatalf("no response to %q: %v", line, sc.Err())
	}
	var resp response
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		t.Fatalf("bad response %q: %v", sc.Text(), err)
	}
	return resp
}

func TestProtocolSQLAndCommands(t *testing.T) {
	conn, _ := startServer(t)
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	// SHOW DEVICES: 3 motes + 2 cameras + 1 phone.
	resp := exchange(t, conn, sc, "SHOW DEVICES")
	if !resp.OK || len(resp.Names) != 6 {
		t.Fatalf("SHOW DEVICES = %+v", resp)
	}

	// Ad-hoc select returns rows.
	resp = exchange(t, conn, sc, `SELECT s.id FROM sensor s WHERE s.temp > -100`)
	if !resp.OK || len(resp.Rows) != 3 {
		t.Fatalf("select = %+v", resp)
	}

	// Register a continuous query.
	resp = exchange(t, conn, sc, `CREATE AQ snap AS SELECT photo(c.ip, s.loc, "d") FROM sensor s, camera c WHERE s.accel_x > 500 AND coverage(c.id, s.loc) EVERY "2s"`)
	if !resp.OK || !strings.Contains(resp.Message, "snap") {
		t.Fatalf("create = %+v", resp)
	}
	resp = exchange(t, conn, sc, "SHOW QUERIES")
	if !resp.OK || len(resp.Queries) != 1 {
		t.Fatalf("queries = %+v", resp)
	}

	// Stimulate through the control command and wait for a photo.
	resp = exchange(t, conn, sc, `\stimulate 1 900 30`)
	if !resp.OK {
		t.Fatalf("stimulate = %+v", resp)
	}
	deadline := time.Now().Add(8 * time.Second)
	var photos int
	for time.Now().Before(deadline) {
		resp = exchange(t, conn, sc, `\photos`)
		photos = len(resp.Photos)
		if photos > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if photos == 0 {
		t.Fatal("no photos after stimulate")
	}

	// Metrics round-trip, including the failure-aware execution counters:
	// Retries/Dropped ride the same snapshot, and failure kinds key the
	// breakdown by name.
	resp = exchange(t, conn, sc, `\metrics`)
	if !resp.OK || resp.Metrics == nil || resp.Metrics.Requests == 0 {
		t.Fatalf("metrics = %+v", resp)
	}
	if resp.Metrics.Failures == nil {
		t.Fatalf("metrics missing failure breakdown: %+v", resp.Metrics)
	}
	if resp.Metrics.Retries != 0 && resp.Metrics.Successes == 0 {
		t.Fatalf("retries without outcomes: %+v", resp.Metrics)
	}

	// SQL errors are reported, not fatal.
	resp = exchange(t, conn, sc, "SELEKT nonsense")
	if resp.OK || resp.Error == "" {
		t.Fatalf("bad SQL = %+v", resp)
	}

	// Unknown and malformed control commands.
	resp = exchange(t, conn, sc, `\dance`)
	if resp.Error == "" {
		t.Fatalf("unknown command = %+v", resp)
	}
	resp = exchange(t, conn, sc, `\stimulate nope`)
	if resp.Error == "" {
		t.Fatalf("malformed stimulate = %+v", resp)
	}
}

// startDaemon runs the full daemon loop against dataDir and returns its
// bound address plus a stop function that delivers the SIGTERM-equivalent
// shutdown and waits for a clean exit.
func startDaemon(t *testing.T, dataDir string) (net.Addr, func() error) {
	t.Helper()
	shutdown := make(chan os.Signal, 1)
	ready := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(options{
			listen: "127.0.0.1:0", cameras: 1, motes: 2, phones: 1,
			dataDir: dataDir, shutdown: shutdown, ready: ready,
		})
	}()
	select {
	case addr := <-ready:
		return addr, sync.OnceValue(func() error {
			shutdown <- syscall.SIGTERM
			select {
			case err := <-errc:
				return err
			case <-time.After(10 * time.Second):
				return errors.New("daemon did not exit")
			}
		})
	case err := <-errc:
		t.Fatalf("daemon failed to start: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	return nil, nil
}

// dialDaemon opens a line-protocol client connection to a running daemon.
func dialDaemon(t *testing.T, addr net.Addr) (net.Conn, *bufio.Scanner) {
	t.Helper()
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return conn, sc
}

func TestDaemonRefusesLockedDataDir(t *testing.T) {
	dir := t.TempDir()
	_, stop := startDaemon(t, dir)
	defer stop()

	// A second daemon on the same data dir must be refused up front by the
	// journal's directory lock, before it binds anything.
	err := run(options{listen: "127.0.0.1:0", dataDir: dir})
	if !errors.Is(err, wal.ErrLocked) {
		t.Fatalf("second daemon on locked dir: err = %v, want wal.ErrLocked", err)
	}

	if err := stop(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestDaemonShutdownClosesJournalCleanly(t *testing.T) {
	dir := t.TempDir()
	addr, stop := startDaemon(t, dir)
	conn, sc := dialDaemon(t, addr)

	resp := exchange(t, conn, sc, `CREATE AQ durable AS SELECT photo(c.ip, s.loc, "d") FROM sensor s, camera c WHERE s.accel_x > 500 AND coverage(c.id, s.loc) EVERY "2s"`)
	if !resp.OK {
		t.Fatalf("create = %+v", resp)
	}
	conn.Close()

	if err := stop(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// The lock must be released and the journal tail whole: reopening
	// succeeds, truncates nothing, and replays the CREATE AQ record.
	j, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("reopen after shutdown: %v", err)
	}
	defer j.Close()
	if torn := j.Stats().TornTailBytes; torn != 0 {
		t.Fatalf("clean shutdown left %d torn bytes", torn)
	}
	var created int
	if err := j.Replay(func(rec wal.Record) error {
		if rec.Kind == wal.KindCreateQuery {
			created++
		}
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if created != 1 {
		t.Fatalf("replayed %d create-query records, want 1", created)
	}
}

func TestDaemonRestartRecoversCatalog(t *testing.T) {
	dir := t.TempDir()
	addr, stop := startDaemon(t, dir)
	conn, sc := dialDaemon(t, addr)
	resp := exchange(t, conn, sc, `CREATE AQ snap AS SELECT photo(c.ip, s.loc, "d") FROM sensor s, camera c WHERE s.accel_x > 500 AND coverage(c.id, s.loc) EVERY "2s"`)
	if !resp.OK {
		t.Fatalf("create = %+v", resp)
	}
	conn.Close()
	if err := stop(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Second life on the same data dir: the query catalog must come back
	// without any client re-issuing statements.
	addr, stop = startDaemon(t, dir)
	defer stop()
	conn, sc = dialDaemon(t, addr)
	resp = exchange(t, conn, sc, "SHOW QUERIES")
	if !resp.OK || len(resp.Queries) != 1 || resp.Queries[0].Name != "snap" {
		t.Fatalf("after restart SHOW QUERIES = %+v", resp)
	}
	if !resp.Queries[0].Running {
		t.Fatalf("recovered query not running: %+v", resp.Queries[0])
	}
	resp = exchange(t, conn, sc, "SHOW DEVICES")
	if !resp.OK || len(resp.Names) != 4 {
		t.Fatalf("after restart SHOW DEVICES = %+v", resp)
	}
	if err := stop(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestDaemonSigtermDrainsPipelinedStatements: SIGTERM arriving while a
// client still has tagged statements in flight must produce a graceful
// drain — run() returns nil, and every goroutine the daemon started
// (listener, sessions, session writers, pool workers, engine, lab
// devices) is gone afterwards, within a small budget over the
// pre-daemon count.
func TestDaemonSigtermDrainsPipelinedStatements(t *testing.T) {
	before := runtime.NumGoroutine()
	dir := t.TempDir()
	addr, stop := startDaemon(t, dir)
	conn, sc := dialDaemon(t, addr)

	// Keep a window of tagged statements in flight, reading only a few
	// responses so the shutdown lands mid-stream.
	const n = 32
	for i := 0; i < n; i++ {
		if _, err := fmt.Fprintf(conn, "#p%d SELECT s.id FROM sensor s WHERE s.temp > -100\n", i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if !sc.Scan() {
			t.Fatalf("response %d missing before shutdown: %v", i, sc.Err())
		}
	}

	if err := stop(); err != nil {
		t.Fatalf("shutdown with statements in flight: %v", err)
	}

	// Whatever the daemon still sent must be well-formed frames; the
	// connection then closes rather than wedging the client.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for sc.Scan() {
		var resp response
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			t.Fatalf("torn frame during drain: %q", sc.Text())
		}
	}

	// Goroutine budget: poll because conn teardown and runtime
	// bookkeeping lag the daemon's exit slightly.
	budget := before + 3
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= budget {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutines leaked: %d now vs %d before daemon (budget +3)\n%s",
		runtime.NumGoroutine(), before, buf[:runtime.Stack(buf, true)])
}

func TestDaemonPprofEndpoint(t *testing.T) {
	shutdown := make(chan os.Signal, 1)
	ready := make(chan net.Addr, 1)
	pprofReady := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(options{
			listen: "127.0.0.1:0", pprof: "127.0.0.1:0",
			cameras: 1, motes: 2, phones: 1,
			shutdown: shutdown, ready: ready, pprofReady: pprofReady,
		})
	}()
	defer func() {
		shutdown <- syscall.SIGTERM
		select {
		case err := <-errc:
			if err != nil {
				t.Errorf("daemon exit: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("daemon did not exit")
		}
	}()
	var paddr net.Addr
	select {
	case paddr = <-pprofReady:
	case err := <-errc:
		t.Fatalf("daemon failed to start: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("pprof endpoint never became ready")
	}
	<-ready

	// The goroutine profile always exists and is cheap; debug=1 renders it
	// as text with a recognizable header.
	resp, err := http.Get("http://" + paddr.String() + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatalf("pprof fetch: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine profile:") {
		t.Fatalf("pprof goroutine: status %d, body %.120s", resp.StatusCode, body)
	}

	// A bad pprof address must fail startup, not be discovered later.
	if err := run(options{listen: "127.0.0.1:0", pprof: "256.0.0.1:0"}); err == nil {
		t.Fatal("bad -pprof address did not fail startup")
	}
}

// TestProtocolTaggedPipelining drives tagged statements concurrently
// over the real line protocol and matches responses by echoed ID.
func TestProtocolTaggedPipelining(t *testing.T) {
	conn, _ := startServer(t)
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	const n = 16
	for i := 0; i < n; i++ {
		stmt := "SHOW DEVICES"
		if i%2 == 1 {
			stmt = "SELECT s.id FROM sensor s WHERE s.temp > -100"
		}
		if _, err := fmt.Fprintf(conn, "#q%d %s\n", i, stmt); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[string]response, n)
	for i := 0; i < n; i++ {
		if !sc.Scan() {
			t.Fatalf("response %d missing: %v", i, sc.Err())
		}
		var resp response
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			t.Fatalf("bad response %q: %v", sc.Text(), err)
		}
		if resp.ID == "" {
			t.Fatalf("tagged response lost its id: %+v", resp)
		}
		if _, dup := seen[resp.ID]; dup {
			t.Fatalf("duplicate response id %q", resp.ID)
		}
		seen[resp.ID] = resp
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("q%d", i)
		resp, ok := seen[id]
		if !ok {
			t.Fatalf("no response for %s", id)
		}
		if !resp.OK {
			t.Fatalf("%s failed: %+v", id, resp)
		}
		if i%2 == 0 && len(resp.Names) != 6 {
			t.Fatalf("%s SHOW DEVICES = %+v", id, resp)
		}
		if i%2 == 1 && len(resp.Rows) != 3 {
			t.Fatalf("%s select = %+v", id, resp)
		}
	}
}

// TestStimulateUnknownMote: an out-of-range mote index must be an
// error, not a phantom success.
func TestStimulateUnknownMote(t *testing.T) {
	conn, _ := startServer(t)
	sc := bufio.NewScanner(conn)
	resp := exchange(t, conn, sc, `\stimulate 99 900 30`)
	if resp.OK {
		t.Fatalf("stimulating mote 99 of 3 reported success: %+v", resp)
	}
	if !strings.Contains(resp.Error, "unknown mote index 99") || !strings.Contains(resp.Error, "3 motes") {
		t.Fatalf("stimulate error = %q", resp.Error)
	}
	// Negative index too.
	resp = exchange(t, conn, sc, `\stimulate -1 900 30`)
	if resp.OK || !strings.Contains(resp.Error, "unknown mote index -1") {
		t.Fatalf("stimulate -1 = %+v", resp)
	}
}

// TestProtocolOversizedLine: a statement over the line limit must get a
// typed JSON error frame before the server closes the connection —
// not a silent drop.
func TestProtocolOversizedLine(t *testing.T) {
	conn, _ := startServer(t)
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)

	// Write from a goroutine: net.Pipe writes are synchronous and the
	// server stops reading mid-line once the scanner passes its limit, so
	// the tail of this write only unblocks when the server closes the pipe.
	huge := strings.Repeat("x", 2*1024*1024)
	go func() {
		_, _ = conn.Write([]byte("SELECT " + huge + "\n"))
	}()
	if !sc.Scan() {
		t.Fatalf("no error frame for oversized statement: %v", sc.Err())
	}
	var frame frontdoor.ErrorResponse
	if err := json.Unmarshal(sc.Bytes(), &frame); err != nil {
		t.Fatalf("bad frame %q: %v", sc.Text(), err)
	}
	if frame.OK || frame.Code != frontdoor.CodeTooLong {
		t.Fatalf("oversized frame = %+v", frame)
	}
	// The server closes the connection after the error frame.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	for {
		if _, err := conn.Read(buf); err != nil {
			break
		}
	}
}

func TestProtocolQuit(t *testing.T) {
	conn, _ := startServer(t)
	if _, err := conn.Write([]byte("\\quit\n")); err != nil {
		t.Fatal(err)
	}
	// The server closes the connection; subsequent reads must fail.
	buf := make([]byte, 1)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("connection still open after \\quit")
	}
}

// startWith runs the full daemon loop with arbitrary options and returns
// its bound address plus a stop function.
func startWith(t *testing.T, opts options) (net.Addr, func() error) {
	t.Helper()
	shutdown := make(chan os.Signal, 1)
	ready := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	opts.listen = "127.0.0.1:0"
	opts.shutdown = shutdown
	opts.ready = ready
	go func() { errc <- run(opts) }()
	select {
	case addr := <-ready:
		return addr, sync.OnceValue(func() error {
			shutdown <- syscall.SIGTERM
			select {
			case err := <-errc:
				return err
			case <-time.After(10 * time.Second):
				return errors.New("daemon did not exit")
			}
		})
	case err := <-errc:
		t.Fatalf("daemon failed to start: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	return nil, nil
}

// TestDaemonRouterMode is the two-shard quick-start from the README: two
// lab-backed daemons as shards, one -router daemon in front, and a plain
// line-protocol client seeing the merged cluster.
func TestDaemonRouterMode(t *testing.T) {
	addr1, stop1 := startWith(t, options{cameras: 1, motes: 2, phones: 1})
	defer stop1()
	addr2, stop2 := startWith(t, options{cameras: 1, motes: 2, phones: 1})
	defer stop2()

	// The cluster manifest: where the shards listen, and which devices the
	// farm holds (the router prunes fan-out by this inventory). Assignments
	// pin two sensors per shard so neither shard validates as empty.
	manifestJSON := fmt.Sprintf(`{
	  "devices": [
	    {"id": "mote-a", "type": "sensor", "addr": "127.0.0.1:1", "loc": {"x": 0, "y": 0}},
	    {"id": "mote-b", "type": "sensor", "addr": "127.0.0.1:1", "loc": {"x": 1, "y": 0}},
	    {"id": "mote-c", "type": "sensor", "addr": "127.0.0.1:1", "loc": {"x": 2, "y": 0}},
	    {"id": "mote-d", "type": "sensor", "addr": "127.0.0.1:1", "loc": {"x": 3, "y": 0}}
	  ],
	  "shards": [
	    {"id": "shard-1", "addr": %q},
	    {"id": "shard-2", "addr": %q}
	  ],
	  "assignments": [
	    {"device": "mote-a", "shard": "shard-1"},
	    {"device": "mote-b", "shard": "shard-1"},
	    {"device": "mote-c", "shard": "shard-2"},
	    {"device": "mote-d", "shard": "shard-2"}
	  ]
	}`, addr1.String(), addr2.String())
	path := t.TempDir() + "/cluster.json"
	if err := os.WriteFile(path, []byte(manifestJSON), 0o644); err != nil {
		t.Fatal(err)
	}

	raddr, stopR := startWith(t, options{router: true, devices: path})
	defer stopR()
	conn, sc := dialDaemon(t, raddr)

	// A broadcast merges both shards and reports who answered.
	if _, err := conn.Write([]byte("SHOW DEVICES\n")); err != nil {
		t.Fatal(err)
	}
	if !sc.Scan() {
		t.Fatalf("no response: %v", sc.Err())
	}
	var resp struct {
		OK     bool              `json:"ok"`
		Names  []string          `json:"names"`
		Rows   []map[string]any  `json:"rows"`
		Shards map[string]string `json:"shards"`
	}
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		t.Fatalf("bad frame %q: %v", sc.Text(), err)
	}
	if !resp.OK || len(resp.Names) == 0 {
		t.Fatalf("SHOW DEVICES via router = %+v", resp)
	}
	if resp.Shards["shard-1"] != "ok" || resp.Shards["shard-2"] != "ok" {
		t.Fatalf("shard codes = %v, want both ok", resp.Shards)
	}

	// A sensor SELECT fans out to both shards (each claims sensors) and the
	// merged rows carry their source shard.
	if _, err := conn.Write([]byte("SELECT s.id FROM sensor s WHERE s.temp > -100\n")); err != nil {
		t.Fatal(err)
	}
	if !sc.Scan() {
		t.Fatalf("no response: %v", sc.Err())
	}
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		t.Fatalf("bad frame %q: %v", sc.Text(), err)
	}
	if !resp.OK || len(resp.Rows) != 4 {
		t.Fatalf("cluster select = %+v, want 2 rows per shard", resp)
	}
	fromShard := map[string]int{}
	for _, row := range resp.Rows {
		shard, _ := row["shard"].(string)
		fromShard[shard]++
	}
	if fromShard["shard-1"] != 2 || fromShard["shard-2"] != 2 {
		t.Fatalf("rows by shard = %v, want 2 from each", fromShard)
	}

	// Router misconfiguration fails startup, not at first statement.
	if err := run(options{listen: "127.0.0.1:0", router: true}); err == nil {
		t.Fatal("-router without -devices did not fail startup")
	}
	if err := run(options{listen: "127.0.0.1:0", shard: "shard-9", devices: path}); err == nil {
		t.Fatal("-shard with unknown id did not fail startup")
	}
}

func TestProtocolSkipsBlankLines(t *testing.T) {
	conn, _ := startServer(t)
	sc := bufio.NewScanner(conn)
	if _, err := conn.Write([]byte("\n\n")); err != nil {
		t.Fatal(err)
	}
	resp := exchange(t, conn, sc, "SHOW ACTIONS")
	if !resp.OK || len(resp.Names) == 0 {
		t.Fatalf("actions = %+v", resp)
	}
}
