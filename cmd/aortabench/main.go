// Command aortabench regenerates the paper's evaluation (§6): every
// figure, the prose results, and the supporting validations, printed as
// paper-style tables. See EXPERIMENTS.md for the paper-vs-measured
// record.
//
//	aortabench -exp all
//	aortabench -exp fig4 -runs 10
//	aortabench -exp sync -minutes 10
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"aorta/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: fig4|fig5|fig6|ratio|costmodel|optimal|ablation|scale|latency|sync|failover|churn|qscale|crashrec|frontdoor|chaos|cluster|selfheal|all")
		runs    = flag.Int("runs", 10, "independent runs per data point (paper: 10)")
		seed    = flag.Int64("seed", 2005, "random seed")
		cameras = flag.Int("cameras", 10, "camera count for the scheduling studies (paper: 10)")
		minutes = flag.Int("minutes", 10, "virtual minutes for the sync study (paper ran continuously)")
		clients = flag.Int("clients", 0, "concurrent clients for the frontdoor study (0 = default 120)")
	)
	flag.Parse()
	if err := run(*exp, *runs, *seed, *cameras, *minutes, *clients); err != nil {
		fmt.Fprintln(os.Stderr, "aortabench:", err)
		os.Exit(1)
	}
}

func run(exp string, runs int, seed int64, cameras, minutes, clients int) error {
	cfg := experiments.DefaultConfig()
	cfg.Runs = runs
	cfg.Seed = seed
	cfg.Cameras = cameras

	wanted := map[string]bool{}
	for _, e := range strings.Split(exp, ",") {
		wanted[strings.TrimSpace(e)] = true
	}
	all := wanted["all"]
	out := os.Stdout
	ran := false

	if all || wanted["fig4"] {
		ran = true
		points, err := experiments.Fig4(cfg)
		if err != nil {
			return err
		}
		experiments.PrintFig4(out, points)
		fmt.Fprintln(out)
	}
	if all || wanted["fig5"] {
		ran = true
		rows, err := experiments.Fig5(cfg)
		if err != nil {
			return err
		}
		experiments.PrintFig5(out, rows)
		fmt.Fprintln(out)
	}
	if all || wanted["fig6"] {
		ran = true
		points, err := experiments.Fig6(cfg)
		if err != nil {
			return err
		}
		experiments.PrintFig6(out, points)
		fmt.Fprintln(out)
	}
	if all || wanted["ratio"] {
		ran = true
		points, err := experiments.Ratio(cfg)
		if err != nil {
			return err
		}
		experiments.PrintRatio(out, points)
		fmt.Fprintln(out)
	}
	if all || wanted["costmodel"] {
		ran = true
		s, err := experiments.CostModel(20*runs, seed)
		if err != nil {
			return err
		}
		experiments.PrintCostModel(out, s)
		fmt.Fprintln(out)
	}
	if all || wanted["optimal"] {
		ran = true
		rows, err := experiments.OptimalGap(cfg)
		if err != nil {
			return err
		}
		experiments.PrintOptimalGap(out, rows)
		fmt.Fprintln(out)
	}
	if all || wanted["ablation"] {
		ran = true
		rows, err := experiments.AblationSequenceDependence(cfg)
		if err != nil {
			return err
		}
		experiments.PrintAblation(out, rows)
		fmt.Fprintln(out)
	}
	if all || wanted["scale"] {
		ran = true
		points, err := experiments.Scalability(cfg)
		if err != nil {
			return err
		}
		experiments.PrintScalability(out, points)
		fmt.Fprintln(out)
	}
	if all || wanted["latency"] {
		ran = true
		lcfg := experiments.LatencyConfig{Seed: seed}
		rows, err := experiments.Latency(lcfg)
		if err != nil {
			return err
		}
		experiments.PrintLatency(out, lcfg, rows)
		fmt.Fprintln(out)
	}
	if all || wanted["sync"] {
		ran = true
		scfg := experiments.DefaultSyncConfig()
		scfg.Minutes = minutes
		scfg.Seed = seed
		with, without, err := experiments.SyncStudy(scfg)
		if err != nil {
			return err
		}
		experiments.PrintSyncStudy(out, with, without)
		fmt.Fprintln(out)
	}
	if all || wanted["failover"] {
		ran = true
		fcfg := experiments.DefaultFailoverConfig()
		fcfg.Minutes = minutes * 2 // needs more samples than the sync study
		fcfg.Seed = seed
		without, with, err := experiments.FailoverStudy(fcfg)
		if err != nil {
			return err
		}
		experiments.PrintFailoverStudy(out, without, with)
		fmt.Fprintln(out)
	}
	if all || wanted["churn"] {
		ran = true
		ccfg := experiments.DefaultChurnConfig()
		ccfg.Minutes = minutes * 2 // each outage must span several epochs
		ccfg.Seed = seed
		baseline, withDetector, err := experiments.ChurnStudy(ccfg)
		if err != nil {
			return err
		}
		experiments.PrintChurnStudy(out, baseline, withDetector)
		fmt.Fprintln(out)
	}
	if all || wanted["qscale"] {
		ran = true
		qcfg := experiments.DefaultQScaleConfig()
		qcfg.Seed = seed
		points, err := experiments.QScaleStudy(qcfg)
		if err != nil {
			return err
		}
		experiments.PrintQScaleStudy(out, qcfg, points)
		fmt.Fprintln(out)
	}
	if all || wanted["crashrec"] {
		ran = true
		rcfg := experiments.DefaultCrashRecConfig()
		rcfg.Seed = seed
		res, err := experiments.CrashRecStudy(rcfg)
		if err != nil {
			return err
		}
		experiments.PrintCrashRecStudy(out, rcfg, res)
		fmt.Fprintln(out)
	}
	if all || wanted["frontdoor"] {
		ran = true
		fcfg := experiments.DefaultFrontdoorConfig()
		fcfg.Seed = seed
		if clients > 0 {
			fcfg.Clients = clients
		}
		serial, pipelined, err := experiments.FrontdoorStudy(fcfg)
		if err != nil {
			return err
		}
		experiments.PrintFrontdoorStudy(out, fcfg, serial, pipelined)
		fmt.Fprintln(out)
	}
	if all || wanted["chaos"] {
		ran = true
		hcfg := experiments.DefaultChaosConfig()
		hcfg.Seed = seed
		res, err := experiments.ChaosStudy(hcfg)
		if err != nil {
			return err
		}
		experiments.PrintChaosStudy(out, hcfg, res)
		fmt.Fprintln(out)
		if len(res.Violations) > 0 {
			return fmt.Errorf("chaos: %d invariant violation(s)", len(res.Violations))
		}
	}
	if all || wanted["cluster"] {
		ran = true
		ucfg := experiments.DefaultClusterConfig()
		ucfg.Seed = seed
		res, err := experiments.ClusterStudy(ucfg)
		if err != nil {
			return err
		}
		experiments.PrintClusterStudy(out, ucfg, res)
		fmt.Fprintln(out)
		if len(res.Violations) > 0 {
			return fmt.Errorf("cluster: %d invariant violation(s)", len(res.Violations))
		}
	}
	if all || wanted["selfheal"] {
		ran = true
		scfg := experiments.DefaultSelfhealConfig()
		scfg.Seed = seed
		res, err := experiments.SelfhealStudy(scfg)
		if err != nil {
			return err
		}
		experiments.PrintSelfhealStudy(out, scfg, res)
		fmt.Fprintln(out)
		if len(res.Violations) > 0 {
			return fmt.Errorf("selfheal: %d invariant violation(s)", len(res.Violations))
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want fig4|fig5|fig6|ratio|costmodel|optimal|sync|failover|churn|qscale|crashrec|frontdoor|chaos|cluster|selfheal|all)", exp)
	}
	return nil
}
