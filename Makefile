GO ?= go

.PHONY: all build vet test race bench clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The transport pool is exercised heavily by concurrent scans/probes;
# keep the race detector in the default CI gate.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

clean:
	$(GO) clean ./...
