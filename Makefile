GO ?= go

.PHONY: all build vet test race bench churn-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Shuffled so test-order coupling (shared detector/breaker state would be
# the classic offender) cannot hide.
test:
	$(GO) test -shuffle=on ./...

# The transport pool is exercised heavily by concurrent scans/probes;
# keep the race detector in the default CI gate.
race:
	$(GO) test -race -shuffle=on ./...

# A short end-to-end churn run: kill/revive cameras mid-workload and
# check the failure detector's numbers print sanely.
churn-smoke:
	$(GO) run ./cmd/aortabench -exp churn -minutes 3

bench:
	$(GO) test -run xxx -bench . -benchmem .

clean:
	$(GO) clean ./...
