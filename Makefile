GO ?= go

.PHONY: all build vet test race bench bench-smoke churn-smoke qscale-smoke crashrec-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Shuffled so test-order coupling (shared detector/breaker state would be
# the classic offender) cannot hide.
test:
	$(GO) test -shuffle=on ./...

# The transport pool is exercised heavily by concurrent scans/probes;
# keep the race detector in the default CI gate.
race:
	$(GO) test -race -shuffle=on ./...

# A short end-to-end churn run: kill/revive cameras mid-workload and
# check the failure detector's numbers print sanely.
churn-smoke:
	$(GO) run ./cmd/aortabench -exp churn -minutes 3

# The crash-recovery study: five engine kill/restart cycles over one
# journal; fails loudly if any outcome or query is lost.
crashrec-smoke:
	$(GO) run ./cmd/aortabench -exp crashrec

# The full query-scaling study: scan coalescing at O(D) plus
# index-vs-brute routing timings (fast — manual clock + microbenchmark).
qscale-smoke:
	$(GO) run ./cmd/aortabench -exp qscale

bench:
	$(GO) test -run xxx -bench . -benchmem .

# One iteration of every match/scanshare benchmark: catches bit-rot in
# the benchmark code itself without paying for real measurements.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime=1x ./internal/match/ ./internal/scanshare/

clean:
	$(GO) clean ./...
