GO ?= go

.PHONY: all build vet test race bench bench-smoke bench-record bench-drift frontdoor-smoke bench-record-frontdoor bench-drift-frontdoor bench-record-cluster bench-drift-cluster churn-smoke qscale-smoke crashrec-smoke chaos-smoke cluster-smoke selfheal-smoke clean

# The columnar hot-path benchmarks: each has /before (row-map era) and
# /after (columnar) variants so the committed record carries its own
# baseline.
BENCH_PKGS = ./internal/match/ ./internal/core/ ./internal/scanshare/ ./internal/frontdoor/ ./internal/cluster/
BENCH_RE   = 'RoutePath|PredicateCompile|ScanFanout'
# The front-door pipelining benchmark keeps its own record: its numbers
# move with scheduler behaviour, not routing code.
FD_BENCH_RE = 'FrontdoorWindow'
# The router fan-out benchmark records what the shard-health apparatus
# (breaker + backoff + detector evidence) costs on the hot path.
CL_BENCH_RE = 'RouterFanout'

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Shuffled so test-order coupling (shared detector/breaker state would be
# the classic offender) cannot hide.
test:
	$(GO) test -shuffle=on ./...

# The transport pool is exercised heavily by concurrent scans/probes;
# keep the race detector in the default CI gate.
race:
	$(GO) test -race -shuffle=on ./...

# A short end-to-end churn run: kill/revive cameras mid-workload and
# check the failure detector's numbers print sanely.
churn-smoke:
	$(GO) run ./cmd/aortabench -exp churn -minutes 3

# The crash-recovery study: five engine kill/restart cycles over one
# journal; fails loudly if any outcome or query is lost.
crashrec-smoke:
	$(GO) run ./cmd/aortabench -exp crashrec

# The full query-scaling study: scan coalescing at O(D) plus
# index-vs-brute routing timings (fast — manual clock + microbenchmark).
qscale-smoke:
	$(GO) run ./cmd/aortabench -exp qscale

# A short front-door study under the race detector: concurrent pipelined
# clients against the real door over simulated high-latency links.
frontdoor-smoke:
	$(GO) run -race ./cmd/aortabench -exp frontdoor -clients 60

# The chaos study under the race detector: evaluation panics, WAL
# faults, camera churn, and slow links against one engine process;
# exits non-zero if any fail-operational invariant breaks.
chaos-smoke:
	$(GO) run -race ./cmd/aortabench -exp chaos

# The sharded-cluster study under the race detector: router fan-out and
# id-pruned placement at 1/2/4/8 shards, the aggregate-throughput
# scaling bar, and the kill-one-shard WAL handoff; exits non-zero if
# placement, scaling, or the zero-loss audit breaks.
cluster-smoke:
	$(GO) run -race ./cmd/aortabench -exp cluster

# The self-healing study under the race detector: kill a shard mid-
# stream (auto-detect + auto-retire + WAL handoff), flap a shard inside
# the grace window (no false retirement), and DRAIN SHARD under
# concurrent fan-outs (zero loss, zero dropped statements); exits
# non-zero if any invariant breaks.
selfheal-smoke:
	$(GO) run -race ./cmd/aortabench -exp selfheal

bench:
	$(GO) test -run xxx -bench . -benchmem .

# One iteration of every match/core/scanshare benchmark under the race
# detector: catches bit-rot (and data races) in the benchmark code
# itself without paying for real measurements.
bench-smoke:
	$(GO) test -race -run xxx -bench . -benchtime=1x $(BENCH_PKGS)

# Re-measure the routing benchmarks and rewrite the committed record.
bench-record:
	$(GO) test -run xxx -bench $(BENCH_RE) -benchmem $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchjson -o BENCH_routing.json

# Compare a fresh run against the committed record. Informational by
# default; set MAX_DRIFT_PCT to fail on regressions beyond that bound.
MAX_DRIFT_PCT ?= 0
bench-drift:
	$(GO) test -run xxx -bench $(BENCH_RE) -benchmem $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchjson -drift BENCH_routing.json -max $(MAX_DRIFT_PCT)

# Re-measure the front-door window benchmark and rewrite its record.
bench-record-frontdoor:
	$(GO) test -run xxx -bench $(FD_BENCH_RE) -benchmem ./internal/frontdoor/ \
		| $(GO) run ./cmd/benchjson -o BENCH_frontdoor.json

bench-drift-frontdoor:
	$(GO) test -run xxx -bench $(FD_BENCH_RE) -benchmem ./internal/frontdoor/ \
		| $(GO) run ./cmd/benchjson -drift BENCH_frontdoor.json -max $(MAX_DRIFT_PCT)

# Re-measure the router fan-out benchmark and rewrite its record.
bench-record-cluster:
	$(GO) test -run xxx -bench $(CL_BENCH_RE) -benchmem ./internal/cluster/ \
		| $(GO) run ./cmd/benchjson -o BENCH_cluster.json

bench-drift-cluster:
	$(GO) test -run xxx -bench $(CL_BENCH_RE) -benchmem ./internal/cluster/ \
		| $(GO) run ./cmd/benchjson -drift BENCH_cluster.json -max $(MAX_DRIFT_PCT)

clean:
	$(GO) clean ./...
