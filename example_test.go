package aorta_test

import (
	"context"
	"fmt"
	"math/rand"

	"aorta"
)

// ExampleNewLab builds the default simulated pervasive lab and queries
// the sensor virtual table.
func ExampleNewLab() {
	l, err := aorta.NewLab(aorta.LabConfig{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer l.Close()
	if err := l.Engine.Start(context.Background()); err != nil {
		fmt.Println("error:", err)
		return
	}

	res, err := l.Engine.Exec(context.Background(), `SELECT count(*) FROM sensor s`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("motes:", res.Rows[0]["count(*)"])
	// Output: motes: 10
}

// ExampleRunScheduler compares the paper's Algorithm 2 (SRFAE) with the
// RANDOM baseline on one uniform workload.
func ExampleRunScheduler() {
	rng := rand.New(rand.NewSource(2005))
	problem := aorta.UniformWorkload(20, 10, rng)

	srfae, err := aorta.RunScheduler(aorta.SchedulerSRFAE(), problem, rng, aorta.DefaultAccounting())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	random, err := aorta.RunScheduler(aorta.SchedulerRandom(), problem, rng, aorta.DefaultAccounting())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("SRFAE beats RANDOM:", srfae.Makespan < random.Makespan)
	// Output: SRFAE beats RANDOM: true
}

// ExampleParseActionProfile parses a user-authored action profile and
// estimates its cost against the built-in camera cost table.
func ExampleParseActionProfile() {
	profile, err := aorta.ParseActionProfile([]byte(`
		<action name="glance" device_type="camera" exclusive="true">
		  <seq>
		    <op name="connect"/>
		    <op name="capture_small"/>
		  </seq>
		</action>`))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	reg, err := aorta.DefaultRegistry()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	costs, _ := reg.Costs(aorta.DeviceCamera)
	cost, err := profile.EstimateCost(costs, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%s costs %s\n", profile.Name, cost)
	// Output: glance costs 200ms
}

// ExampleEngine_Exec registers the paper's snapshot query and inspects
// its compiled plan.
func ExampleEngine_Exec() {
	l, err := aorta.NewLab(aorta.LabConfig{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer l.Close()

	res, err := l.Engine.Exec(context.Background(), `
		EXPLAIN SELECT photo(c.ip, s.loc, "photos/admin")
		FROM sensor s, camera c
		WHERE s.accel_x > 500 AND coverage(c.id, s.loc)
		EVERY "2s"`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, line := range res.Names {
		fmt.Println(line)
	}
	// Output:
	// continuous query (epoch 2s)
	//   scan sensor as s [accel_x, id, loc] (10 devices registered, routed on accel_x > 500)
	//   scan camera as c [id, ip] (2 devices registered)
	//   filter (s.accel_x > 500 AND coverage(c.id, s.loc))
	//   action photo on camera table (alias c) [shared operator, scheduler SRFAE, exclusive lock]
}

// ExampleMount_Aim solves the PTZ orientation that points a ceiling
// camera at a floor location.
func ExampleMount_Aim() {
	mount := aorta.DefaultMount(aorta.Point{X: 0, Y: 4, Z: 3}, 0)
	aim, ok := mount.Aim(aorta.Point{X: 3, Y: 4, Z: 0})
	fmt.Println("coverable:", ok)
	fmt.Printf("pan %.0f° tilt %.0f°\n", aim.Pan, aim.Tilt)
	// Output:
	// coverable: true
	// pan 0° tilt 45°
}
