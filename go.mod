module aorta

go 1.22
