// Package liveness implements Aorta's per-device failure detector.
//
// The paper's testbed assumes a fixed, always-on device population; real
// pervasive deployments face constant churn — motes brown out, cameras
// reboot, phones leave coverage. The detector tracks every device through
// a three-state machine:
//
//	Up ──(SuspectAfter consecutive failures)──▶ Suspect
//	Suspect ──(DownAfter consecutive failures)──▶ Down
//	any state ──(one success)──▶ Up
//
// Evidence is passive — every communication-layer operation (scan read,
// probe, exec) reports whether the device answered — plus active health
// probes (see HealthProber) on the engine clock. Down devices are excluded
// from scheduling and shed at the transport layer, so batches stop burning
// dial timeouts on corpses; re-admission happens the moment any evidence
// source reaches the device again.
//
// Everything is measured on a vclock.Clock, so a Manual clock drives the
// detector deterministically in tests and a Scaled clock runs churn
// studies in accelerated virtual time.
package liveness

import (
	"fmt"
	"sync"
	"time"

	"aorta/internal/vclock"
)

// State is a device's liveness state.
type State int

// Liveness states.
const (
	// Up: the device is answering (or has produced no evidence yet —
	// unknown devices are optimistically Up).
	Up State = iota
	// Suspect: recent consecutive failures; the device stays schedulable
	// but the transport's circuit breaker may shed load if it flaps.
	Suspect
	// Down: the failure threshold was crossed; the device is excluded from
	// scheduling and operations on it are shed without dialing.
	Down
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Up:
		return "up"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// MarshalText renders the state by name for JSON consumers (aortad's
// \metrics response).
func (s State) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a state name produced by MarshalText, so clients
// (cmd/aortactl) can decode the \metrics response back into typed form.
func (s *State) UnmarshalText(text []byte) error {
	for st := Up; st <= Down; st++ {
		if st.String() == string(text) {
			*s = st
			return nil
		}
	}
	return fmt.Errorf("liveness: unknown state %q", text)
}

// Default thresholds.
const (
	// DefaultSuspectAfter is the consecutive-failure count that moves a
	// device Up → Suspect.
	DefaultSuspectAfter = 1
	// DefaultDownAfter is the consecutive-failure count that moves a
	// device to Down.
	DefaultDownAfter = 3
	// DefaultDownRetry is how often a Down device is granted one trial
	// operation through the transport gate, so passive evidence alone can
	// re-admit it even without an active health prober.
	DefaultDownRetry = 15 * time.Second
	// DefaultProbeInterval is the active health-probe period used when a
	// caller enables probing without choosing one.
	DefaultProbeInterval = 5 * time.Second
	// DefaultDownProbeEvery makes the health prober probe Down devices
	// only every Nth cycle, bounding the dial cost of watching corpses.
	DefaultDownProbeEvery = 3
)

// Config tunes a Detector. Zero values select the defaults above.
type Config struct {
	// SuspectAfter is the consecutive-failure threshold for Up → Suspect.
	SuspectAfter int
	// DownAfter is the consecutive-failure threshold for → Down. Resolved
	// to at least SuspectAfter.
	DownAfter int
	// DownRetry is the trial period for Down devices: AdmitTrial grants
	// one operation per window so traffic itself can discover recovery.
	// Negative disables gate trials (recovery then needs a health prober).
	DownRetry time.Duration
}

func (c Config) resolve() Config {
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = DefaultSuspectAfter
	}
	if c.DownAfter <= 0 {
		c.DownAfter = DefaultDownAfter
	}
	if c.DownAfter < c.SuspectAfter {
		c.DownAfter = c.SuspectAfter
	}
	if c.DownRetry == 0 {
		c.DownRetry = DefaultDownRetry
	}
	return c
}

// Event records one state transition.
type Event struct {
	Device string
	From   State
	To     State
	// At is the transition time on the detector's clock.
	At time.Time
	// Reason is a short human-readable cause ("3 consecutive failures",
	// "recovered", "forgotten").
	Reason string
}

// DeviceHealth is a point-in-time copy of one device's detector entry.
type DeviceHealth struct {
	State State `json:"state"`
	// ConsecutiveFailures is the current failure streak (0 after any
	// success).
	ConsecutiveFailures int `json:"consecutive_failures"`
	// Since is when the device entered its current state.
	Since time.Time `json:"since"`
}

type health struct {
	state     State
	fails     int
	since     time.Time
	nextTrial time.Time
}

// Detector is the failure detector: it accumulates per-device evidence
// and drives the Up/Suspect/Down state machine. Safe for concurrent use.
type Detector struct {
	clk vclock.Clock
	cfg Config

	mu      sync.Mutex
	devices map[string]*health
	subs    []func(Event)
	events  []Event

	transitions int64
}

// maxEvents bounds the in-memory transition log.
const maxEvents = 4096

// New returns a detector on clk.
func New(clk vclock.Clock, cfg Config) *Detector {
	return &Detector{
		clk:     clk,
		cfg:     cfg.resolve(),
		devices: make(map[string]*health),
	}
}

// Subscribe registers fn to be called synchronously (outside the
// detector's lock) on every state transition. Subscribers must not block.
func (d *Detector) Subscribe(fn func(Event)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.subs = append(d.subs, fn)
}

// Observe feeds one piece of evidence: alive means the device answered an
// operation (any contact, including a semantic error — a device that
// reports a wrong-position failure is very much alive), false means a
// transport-level failure (dial refused, timeout, connection died).
func (d *Detector) Observe(id string, alive bool) {
	d.mu.Lock()
	h := d.get(id)
	var ev *Event
	if alive {
		h.fails = 0
		if h.state != Up {
			ev = d.transitionLocked(id, h, Up, "recovered")
		}
	} else {
		h.fails++
		switch {
		case h.state != Down && h.fails >= d.cfg.DownAfter:
			ev = d.transitionLocked(id, h, Down,
				fmt.Sprintf("%d consecutive failures", h.fails))
			h.nextTrial = d.clk.Now().Add(d.cfg.DownRetry)
		case h.state == Up && h.fails >= d.cfg.SuspectAfter:
			ev = d.transitionLocked(id, h, Suspect,
				fmt.Sprintf("%d consecutive failures", h.fails))
		}
	}
	subs := d.subs
	d.mu.Unlock()
	if ev != nil {
		for _, fn := range subs {
			fn(*ev)
		}
	}
}

// transitionLocked moves h to state to, logging the event. Caller holds
// d.mu and fires the returned event after unlocking.
func (d *Detector) transitionLocked(id string, h *health, to State, reason string) *Event {
	ev := Event{Device: id, From: h.state, To: to, At: d.clk.Now(), Reason: reason}
	h.state = to
	h.since = ev.At
	d.transitions++
	if len(d.events) >= maxEvents {
		copy(d.events, d.events[1:])
		d.events = d.events[:len(d.events)-1]
	}
	d.events = append(d.events, ev)
	return &ev
}

func (d *Detector) get(id string) *health {
	h, ok := d.devices[id]
	if !ok {
		h = &health{state: Up, since: d.clk.Now()}
		d.devices[id] = h
	}
	return h
}

// State returns the device's current state. Unknown devices are Up.
func (d *Detector) State(id string) State {
	d.mu.Lock()
	defer d.mu.Unlock()
	h, ok := d.devices[id]
	if !ok {
		return Up
	}
	return h.state
}

// DownDevice reports whether the device is currently Down.
func (d *Detector) DownDevice(id string) bool { return d.State(id) == Down }

// AdmitTrial reports whether an operation on the device should proceed.
// Up and Suspect devices are always admitted. A Down device is admitted
// once per DownRetry window — the trial that lets ordinary traffic
// discover recovery without an active prober. Down devices between trials
// are shed.
func (d *Detector) AdmitTrial(id string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	h, ok := d.devices[id]
	if !ok || h.state != Down {
		return true
	}
	if d.cfg.DownRetry < 0 {
		return false
	}
	now := d.clk.Now()
	if now.Before(h.nextTrial) {
		return false
	}
	h.nextTrial = now.Add(d.cfg.DownRetry)
	return true
}

// Forget drops the device's detector entry (dynamic unregistration, or a
// re-registered device starting fresh). No event is fired: the device is
// leaving the membership, not changing health.
func (d *Detector) Forget(id string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.devices, id)
}

// Snapshot copies every tracked device's health, keyed by device ID.
func (d *Detector) Snapshot() map[string]DeviceHealth {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]DeviceHealth, len(d.devices))
	for id, h := range d.devices {
		out[id] = DeviceHealth{State: h.state, ConsecutiveFailures: h.fails, Since: h.since}
	}
	return out
}

// Events returns a copy of the bounded transition log, oldest first.
func (d *Detector) Events() []Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Event, len(d.events))
	copy(out, d.events)
	return out
}

// Transitions returns the total number of state transitions observed.
func (d *Detector) Transitions() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.transitions
}
