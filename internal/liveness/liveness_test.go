package liveness

import (
	"context"
	"sync"
	"testing"
	"time"

	"aorta/internal/vclock"
)

func newTestDetector(cfg Config) (*Detector, *vclock.Manual) {
	clk := vclock.NewManual(time.Unix(1_000_000, 0))
	return New(clk, cfg), clk
}

func TestStateMachineTransitions(t *testing.T) {
	d, _ := newTestDetector(Config{SuspectAfter: 1, DownAfter: 3})
	var events []Event
	d.Subscribe(func(ev Event) { events = append(events, ev) })

	if got := d.State("m1"); got != Up {
		t.Fatalf("unknown device state = %v, want Up", got)
	}
	d.Observe("m1", false)
	if got := d.State("m1"); got != Suspect {
		t.Fatalf("after 1 failure state = %v, want Suspect", got)
	}
	d.Observe("m1", false)
	if got := d.State("m1"); got != Suspect {
		t.Fatalf("after 2 failures state = %v, want Suspect", got)
	}
	d.Observe("m1", false)
	if got := d.State("m1"); got != Down {
		t.Fatalf("after 3 failures state = %v, want Down", got)
	}
	if !d.DownDevice("m1") {
		t.Error("DownDevice = false for a Down device")
	}
	d.Observe("m1", true)
	if got := d.State("m1"); got != Up {
		t.Fatalf("after recovery state = %v, want Up", got)
	}

	want := []struct {
		from, to State
	}{{Up, Suspect}, {Suspect, Down}, {Down, Up}}
	if len(events) != len(want) {
		t.Fatalf("got %d events %v, want %d", len(events), events, len(want))
	}
	for i, w := range want {
		if events[i].From != w.from || events[i].To != w.to {
			t.Errorf("event %d = %v→%v, want %v→%v", i, events[i].From, events[i].To, w.from, w.to)
		}
		if events[i].Device != "m1" {
			t.Errorf("event %d device = %q", i, events[i].Device)
		}
	}
	if d.Transitions() != 3 {
		t.Errorf("transitions = %d, want 3", d.Transitions())
	}
}

// A success anywhere in the streak resets the consecutive-failure count:
// a flapping device oscillates between Up and Suspect but never reaches
// Down on consecutive thresholds alone (the circuit breaker handles
// flap shedding).
func TestSuccessResetsStreak(t *testing.T) {
	d, _ := newTestDetector(Config{SuspectAfter: 1, DownAfter: 3})
	for i := 0; i < 10; i++ {
		d.Observe("m1", false)
		d.Observe("m1", false)
		d.Observe("m1", true)
	}
	if got := d.State("m1"); got != Up {
		t.Errorf("flapping device state = %v, want Up", got)
	}
	snap := d.Snapshot()
	if snap["m1"].ConsecutiveFailures != 0 {
		t.Errorf("consecutive failures = %d, want 0", snap["m1"].ConsecutiveFailures)
	}
}

// AdmitTrial grants one operation per DownRetry window to a Down device
// and admits everything else unconditionally.
func TestAdmitTrial(t *testing.T) {
	d, clk := newTestDetector(Config{SuspectAfter: 1, DownAfter: 2, DownRetry: 10 * time.Second})
	if !d.AdmitTrial("m1") {
		t.Fatal("unknown device not admitted")
	}
	d.Observe("m1", false)
	if !d.AdmitTrial("m1") {
		t.Fatal("Suspect device not admitted")
	}
	d.Observe("m1", false) // → Down; nextTrial = now + 10s
	if d.AdmitTrial("m1") {
		t.Fatal("Down device admitted before its trial window")
	}
	clk.Advance(11 * time.Second)
	if !d.AdmitTrial("m1") {
		t.Fatal("Down device not granted its trial")
	}
	if d.AdmitTrial("m1") {
		t.Fatal("second trial granted inside the same window")
	}
	// The trial succeeded: the device is re-admitted fully.
	d.Observe("m1", true)
	if !d.AdmitTrial("m1") {
		t.Fatal("recovered device not admitted")
	}
}

func TestDownRetryDisabled(t *testing.T) {
	d, clk := newTestDetector(Config{SuspectAfter: 1, DownAfter: 1, DownRetry: -1})
	d.Observe("m1", false)
	clk.Advance(time.Hour)
	if d.AdmitTrial("m1") {
		t.Fatal("trial granted with DownRetry disabled")
	}
}

func TestForget(t *testing.T) {
	d, _ := newTestDetector(Config{DownAfter: 1})
	d.Observe("m1", false)
	if d.State("m1") != Down {
		t.Fatal("setup: device not Down")
	}
	d.Forget("m1")
	if got := d.State("m1"); got != Up {
		t.Errorf("forgotten device state = %v, want Up (fresh)", got)
	}
	if _, ok := d.Snapshot()["m1"]; ok {
		t.Error("forgotten device still in snapshot")
	}
}

func TestConfigResolution(t *testing.T) {
	// DownAfter below SuspectAfter is clamped up so Suspect is reachable.
	d, _ := newTestDetector(Config{SuspectAfter: 5, DownAfter: 2})
	for i := 0; i < 4; i++ {
		d.Observe("m1", false)
	}
	if got := d.State("m1"); got != Up {
		t.Fatalf("state after 4 failures = %v, want Up (thresholds clamped to 5)", got)
	}
	d.Observe("m1", false)
	if got := d.State("m1"); got != Down {
		t.Fatalf("state after 5 failures = %v, want Down", got)
	}
}

// The health prober feeds active evidence on the clock: a device whose
// probe fails three times is detected Down without any request traffic,
// and a recovering probe re-admits it.
func TestHealthProberDrivesDetector(t *testing.T) {
	d, clk := newTestDetector(Config{SuspectAfter: 1, DownAfter: 3})
	var mu sync.Mutex
	alive := map[string]bool{"m1": true, "m2": false}
	probe := func(_ context.Context, id string) bool {
		mu.Lock()
		defer mu.Unlock()
		return alive[id]
	}
	list := func() []string { return []string{"m1", "m2"} }
	hp := NewHealthProber(d, clk, 2*time.Second, 1, list, probe)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); hp.Run(ctx) }()

	fireCycle := func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for clk.Waiters() == 0 {
			if time.Now().After(deadline) {
				t.Fatal("prober never armed its interval timer")
			}
			time.Sleep(time.Millisecond)
		}
		clk.Advance(2*time.Second + time.Millisecond)
	}
	await := func(id string, want State) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for d.State(id) != want {
			if time.Now().After(deadline) {
				t.Fatalf("device %s state = %v, want %v", id, d.State(id), want)
			}
			time.Sleep(time.Millisecond)
		}
	}

	for i := 0; i < 3; i++ {
		fireCycle()
	}
	await("m2", Down)
	await("m1", Up)

	mu.Lock()
	alive["m2"] = true
	mu.Unlock()
	// Down devices are probed every DownEvery cycles; with downEvery=1
	// the next cycle re-admits it.
	fireCycle()
	await("m2", Up)

	cancel()
	// Unblock the prober's pending After so Run observes cancellation.
	clk.Advance(3 * time.Second)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("prober did not stop on cancel")
	}
}
