package liveness

import (
	"context"
	"sync"
	"time"

	"aorta/internal/vclock"
)

// ProbeFunc checks one device and reports whether it is alive. It must
// respect ctx and should classify any contact — even a semantic error —
// as alive; only transport-level failures mean dead.
type ProbeFunc func(ctx context.Context, id string) bool

// HealthProber drives the detector with active evidence: every Interval
// on the clock it probes the current membership concurrently and feeds
// the results to the detector. Down devices are probed only every
// DownEvery cycles, bounding the dial cost of watching corpses while
// still providing the re-admission path for devices that ordinary
// traffic no longer reaches (the request path skips Down devices).
type HealthProber struct {
	det      *Detector
	clk      vclock.Clock
	interval time.Duration
	downEvry int
	list     func() []string
	probe    ProbeFunc
}

// NewHealthProber builds a prober over the detector. list returns the
// current device membership; probe checks one device. interval <= 0
// selects DefaultProbeInterval; downEvery <= 0 selects
// DefaultDownProbeEvery.
func NewHealthProber(det *Detector, clk vclock.Clock, interval time.Duration, downEvery int, list func() []string, probe ProbeFunc) *HealthProber {
	if interval <= 0 {
		interval = DefaultProbeInterval
	}
	if downEvery <= 0 {
		downEvery = DefaultDownProbeEvery
	}
	return &HealthProber{det: det, clk: clk, interval: interval, downEvry: downEvery, list: list, probe: probe}
}

// Run probes until ctx is cancelled. Call it on its own goroutine.
func (p *HealthProber) Run(ctx context.Context) {
	for cycle := 1; ; cycle++ {
		select {
		case <-ctx.Done():
			return
		case <-p.clk.After(p.interval):
		}
		var wg sync.WaitGroup
		for _, id := range p.list() {
			if p.det.DownDevice(id) && cycle%p.downEvry != 0 {
				continue
			}
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				alive := p.probe(ctx, id)
				if ctx.Err() != nil {
					return // shutdown, not evidence
				}
				p.det.Observe(id, alive)
			}(id)
		}
		wg.Wait()
	}
}
