package manifest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aorta/internal/geo"
)

func sample() *Manifest {
	mount := geo.DefaultMount(geo.Point{X: 0, Y: 4, Z: 3}, 0)
	loc := geo.Point{X: 2, Y: 1}
	return &Manifest{Devices: []Device{
		{ID: "camera-1", Type: "camera", Addr: "127.0.0.1:9001", Mount: &mount},
		{ID: "mote-1", Type: "sensor", Addr: "127.0.0.1:9002", Loc: &loc, Depth: 2},
		{ID: "phone-1", Type: "phone", Addr: "127.0.0.1:9003", Number: "+852555001", Owner: "manager"},
	}}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "farm.json")
	if err := Write(path, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Devices) != 3 {
		t.Fatalf("devices = %d", len(got.Devices))
	}
	cam := got.Devices[0]
	if cam.Mount == nil || cam.Mount.Position.Z != 3 || cam.Mount.PanRangeDeg != 170 {
		t.Errorf("camera mount = %+v", cam.Mount)
	}
	sensor := got.Devices[1]
	if sensor.Loc == nil || sensor.Loc.X != 2 || sensor.Depth != 2 {
		t.Errorf("sensor = %+v", sensor)
	}
	if got.Devices[2].Number != "+852555001" {
		t.Errorf("phone = %+v", got.Devices[2])
	}
}

func TestReadMissingFile(t *testing.T) {
	if _, err := Read(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReadGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(path, "{nope"); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadValidatesRequiredFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "incomplete.json")
	if err := writeFile(path, `{"devices":[{"id":"x","type":"camera"}]}`); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("device without addr accepted")
	}
}

// TestValidateReportsEveryDefect: one pass over a thoroughly broken
// manifest surfaces every problem at once — duplicate ID, malformed
// addr, camera without mount, sensor without loc, phone without number,
// unknown type.
func TestValidateReportsEveryDefect(t *testing.T) {
	mount := geo.DefaultMount(geo.Point{Z: 3}, 0)
	m := &Manifest{Devices: []Device{
		{ID: "camera-1", Type: "camera", Addr: "127.0.0.1:9001", Mount: &mount},
		{ID: "camera-1", Type: "camera", Addr: "127.0.0.1:9002", Mount: &mount}, // dup id
		{ID: "camera-2", Type: "camera", Addr: "127.0.0.1:9003"},                // no mount
		{ID: "mote-1", Type: "sensor", Addr: "no-port"},                         // bad addr, no loc
		{ID: "phone-1", Type: "phone", Addr: "127.0.0.1:9004"},                  // no number
		{ID: "toaster-1", Type: "toaster", Addr: "127.0.0.1:9005"},              // unknown type
	}}
	err := m.Validate()
	if err == nil {
		t.Fatal("broken manifest validated")
	}
	for _, want := range []string{
		"duplicate id",
		"camera needs mount",
		"not host:port",
		"sensor needs a loc",
		"phone needs a number",
		`unknown type "toaster"`,
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error does not mention %q:\n%v", want, err)
		}
	}
}

func TestValidateAcceptsSample(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestWriteRejectsInvalid: a generator bug is caught at write time.
func TestWriteRejectsInvalid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	m := &Manifest{Devices: []Device{{ID: "camera-1", Type: "camera", Addr: "127.0.0.1:9001"}}}
	if err := Write(path, m); err == nil {
		t.Fatal("invalid manifest written")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("invalid manifest left a file behind")
	}
}

// TestReadRejectsTypeMismatch: consumers refuse a manifest whose typed
// fields don't match the declared device type.
func TestReadRejectsTypeMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mismatch.json")
	if err := writeFile(path, `{"devices":[{"id":"camera-1","type":"camera","addr":"127.0.0.1:9001"}]}`); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("camera without mount accepted")
	}
}

func TestStaticMaps(t *testing.T) {
	m := sample()
	camStatic := m.Devices[0].Static()
	if camStatic["ip"] != "127.0.0.1:9001" {
		t.Errorf("camera static = %v", camStatic)
	}
	if _, ok := camStatic["loc"]; !ok {
		t.Error("camera static missing loc")
	}
	sensorStatic := m.Devices[1].Static()
	if sensorStatic["depth"] != 2 {
		t.Errorf("sensor static = %v", sensorStatic)
	}
	if loc, ok := sensorStatic["loc"].(geo.Point); !ok || loc.X != 2 {
		t.Errorf("sensor loc = %v", sensorStatic["loc"])
	}
	phoneStatic := m.Devices[2].Static()
	if phoneStatic["number"] != "+852555001" || phoneStatic["owner"] != "manager" {
		t.Errorf("phone static = %v", phoneStatic)
	}
}

func TestStaticDefaultsDepth(t *testing.T) {
	d := Device{ID: "m", Type: "sensor", Addr: "a"}
	if got := d.Static()["depth"]; got != 1 {
		t.Errorf("default depth = %v, want 1", got)
	}
}

// TestValidateShardDefects: every cluster-topology defect surfaces in
// one pass — duplicate shard id, malformed shard addr, assignment to an
// unknown shard, assignment of an unknown device, and a duplicated
// device→shard claim.
func TestValidateShardDefects(t *testing.T) {
	m := sample()
	m.Shards = []Shard{
		{ID: "shard-1", Addr: "127.0.0.1:7001"},
		{ID: "shard-1", Addr: "no-port"}, // dup id, bad addr
		{ID: "", Addr: "127.0.0.1:7003"}, // missing id
	}
	m.Assignments = []Assignment{
		{Device: "camera-1", Shard: "shard-9"}, // unknown shard
		{Device: "ghost", Shard: "shard-1"},    // unknown device
		{Device: "camera-1", Shard: "shard-1"}, // duplicate claim
	}
	err := m.Validate()
	if err == nil {
		t.Fatal("broken cluster topology validated")
	}
	for _, want := range []string{
		"duplicate id (first used by shard 0)",
		`addr "no-port" is not host:port`,
		"shard 2: missing id",
		`unknown shard "shard-9"`,
		`unknown device "ghost"`,
		`device "camera-1" already assigned by assignment 0`,
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error does not mention %q:\n%v", want, err)
		}
	}
}

// TestValidateEmptyShard: a shard that owns no devices is a provisioning
// defect — all three sample devices pinned onto shard-1 starves shard-2.
func TestValidateEmptyShard(t *testing.T) {
	m := sample()
	m.Shards = []Shard{
		{ID: "shard-1", Addr: "127.0.0.1:7001"},
		{ID: "shard-2", Addr: "127.0.0.1:7002"},
	}
	m.Assignments = []Assignment{
		{Device: "camera-1", Shard: "shard-1"},
		{Device: "mote-1", Shard: "shard-1"},
		{Device: "phone-1", Shard: "shard-1"},
	}
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "shard shard-2: owns no devices") {
		t.Fatalf("starved shard not reported: %v", err)
	}
}

func TestValidateAssignmentsWithoutShards(t *testing.T) {
	m := sample()
	m.Assignments = []Assignment{{Device: "camera-1", Shard: "shard-1"}}
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "assignments present but no shards") {
		t.Fatalf("orphan assignments not reported: %v", err)
	}
}

// TestShardMapRoundTrip: a valid cluster manifest yields a shard map
// honoring its pins, and survives the JSON round trip.
func TestShardMapRoundTrip(t *testing.T) {
	m := sample()
	m.Shards = []Shard{
		{ID: "shard-1", Addr: "127.0.0.1:7001"},
		{ID: "shard-2", Addr: "127.0.0.1:7002"},
	}
	m.Assignments = []Assignment{{Device: "phone-1", Shard: "shard-2"}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cluster.json")
	if err := Write(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Shards) != 2 || len(got.Assignments) != 1 {
		t.Fatalf("round trip lost topology: %+v", got)
	}
	smap, err := got.ShardMap()
	if err != nil {
		t.Fatal(err)
	}
	if owner := smap.Owner("phone-1"); owner != "shard-2" {
		t.Errorf("pinned phone-1 owned by %s, want shard-2", owner)
	}
	infos := got.ShardInfos()
	if len(infos) != 2 || infos[0].ID != "shard-1" || infos[1].Addr != "127.0.0.1:7002" {
		t.Errorf("shard infos = %+v", infos)
	}
}

func TestShardMapWithoutShards(t *testing.T) {
	if _, err := sample().ShardMap(); err == nil {
		t.Fatal("shard map built from shardless manifest")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
