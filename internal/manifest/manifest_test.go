package manifest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aorta/internal/geo"
)

func sample() *Manifest {
	mount := geo.DefaultMount(geo.Point{X: 0, Y: 4, Z: 3}, 0)
	loc := geo.Point{X: 2, Y: 1}
	return &Manifest{Devices: []Device{
		{ID: "camera-1", Type: "camera", Addr: "127.0.0.1:9001", Mount: &mount},
		{ID: "mote-1", Type: "sensor", Addr: "127.0.0.1:9002", Loc: &loc, Depth: 2},
		{ID: "phone-1", Type: "phone", Addr: "127.0.0.1:9003", Number: "+852555001", Owner: "manager"},
	}}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "farm.json")
	if err := Write(path, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Devices) != 3 {
		t.Fatalf("devices = %d", len(got.Devices))
	}
	cam := got.Devices[0]
	if cam.Mount == nil || cam.Mount.Position.Z != 3 || cam.Mount.PanRangeDeg != 170 {
		t.Errorf("camera mount = %+v", cam.Mount)
	}
	sensor := got.Devices[1]
	if sensor.Loc == nil || sensor.Loc.X != 2 || sensor.Depth != 2 {
		t.Errorf("sensor = %+v", sensor)
	}
	if got.Devices[2].Number != "+852555001" {
		t.Errorf("phone = %+v", got.Devices[2])
	}
}

func TestReadMissingFile(t *testing.T) {
	if _, err := Read(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReadGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(path, "{nope"); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadValidatesRequiredFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "incomplete.json")
	if err := writeFile(path, `{"devices":[{"id":"x","type":"camera"}]}`); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("device without addr accepted")
	}
}

// TestValidateReportsEveryDefect: one pass over a thoroughly broken
// manifest surfaces every problem at once — duplicate ID, malformed
// addr, camera without mount, sensor without loc, phone without number,
// unknown type.
func TestValidateReportsEveryDefect(t *testing.T) {
	mount := geo.DefaultMount(geo.Point{Z: 3}, 0)
	m := &Manifest{Devices: []Device{
		{ID: "camera-1", Type: "camera", Addr: "127.0.0.1:9001", Mount: &mount},
		{ID: "camera-1", Type: "camera", Addr: "127.0.0.1:9002", Mount: &mount}, // dup id
		{ID: "camera-2", Type: "camera", Addr: "127.0.0.1:9003"},                // no mount
		{ID: "mote-1", Type: "sensor", Addr: "no-port"},                         // bad addr, no loc
		{ID: "phone-1", Type: "phone", Addr: "127.0.0.1:9004"},                  // no number
		{ID: "toaster-1", Type: "toaster", Addr: "127.0.0.1:9005"},              // unknown type
	}}
	err := m.Validate()
	if err == nil {
		t.Fatal("broken manifest validated")
	}
	for _, want := range []string{
		"duplicate id",
		"camera needs mount",
		"not host:port",
		"sensor needs a loc",
		"phone needs a number",
		`unknown type "toaster"`,
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error does not mention %q:\n%v", want, err)
		}
	}
}

func TestValidateAcceptsSample(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestWriteRejectsInvalid: a generator bug is caught at write time.
func TestWriteRejectsInvalid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	m := &Manifest{Devices: []Device{{ID: "camera-1", Type: "camera", Addr: "127.0.0.1:9001"}}}
	if err := Write(path, m); err == nil {
		t.Fatal("invalid manifest written")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("invalid manifest left a file behind")
	}
}

// TestReadRejectsTypeMismatch: consumers refuse a manifest whose typed
// fields don't match the declared device type.
func TestReadRejectsTypeMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mismatch.json")
	if err := writeFile(path, `{"devices":[{"id":"camera-1","type":"camera","addr":"127.0.0.1:9001"}]}`); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("camera without mount accepted")
	}
}

func TestStaticMaps(t *testing.T) {
	m := sample()
	camStatic := m.Devices[0].Static()
	if camStatic["ip"] != "127.0.0.1:9001" {
		t.Errorf("camera static = %v", camStatic)
	}
	if _, ok := camStatic["loc"]; !ok {
		t.Error("camera static missing loc")
	}
	sensorStatic := m.Devices[1].Static()
	if sensorStatic["depth"] != 2 {
		t.Errorf("sensor static = %v", sensorStatic)
	}
	if loc, ok := sensorStatic["loc"].(geo.Point); !ok || loc.X != 2 {
		t.Errorf("sensor loc = %v", sensorStatic["loc"])
	}
	phoneStatic := m.Devices[2].Static()
	if phoneStatic["number"] != "+852555001" || phoneStatic["owner"] != "manager" {
		t.Errorf("phone static = %v", phoneStatic)
	}
}

func TestStaticDefaultsDepth(t *testing.T) {
	d := Device{ID: "m", Type: "sensor", Addr: "a"}
	if got := d.Static()["depth"]; got != 1 {
		t.Errorf("default depth = %v, want 1", got)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
