// Package manifest defines the device-farm manifest exchanged between
// cmd/devfarm (which serves emulated devices over real TCP) and
// cmd/aortad (which registers them with an engine). It is the deployment
// descriptor a site administrator would maintain for a real installation.
package manifest

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"

	"aorta/internal/cluster"
	"aorta/internal/geo"
)

// Device describes one device in a farm.
type Device struct {
	ID   string `json:"id"`
	Type string `json:"type"` // camera | sensor | phone
	Addr string `json:"addr"` // host:port

	// Camera-only: mount geometry.
	Mount *geo.Mount `json:"mount,omitempty"`
	// Sensor-only: deployment position and routing depth.
	Loc   *geo.Point `json:"loc,omitempty"`
	Depth int        `json:"depth,omitempty"`
	// Phone-only.
	Number string `json:"number,omitempty"`
	Owner  string `json:"owner,omitempty"`
}

// Shard is one engine instance of a sharded cluster deployment.
type Shard struct {
	ID   string `json:"id"`
	Addr string `json:"addr"` // the shard daemon's front-door host:port
}

// Assignment pins one device to a specific shard (zone/type affinity),
// overriding the consistent hash. Devices without an assignment follow
// the hash.
type Assignment struct {
	Device string `json:"device"`
	Shard  string `json:"shard"`
}

// Manifest is a whole farm. Shards and Assignments are optional: present
// only for cluster deployments, where aortad -router fans statements out
// across the shard daemons.
type Manifest struct {
	Devices []Device `json:"devices"`
	// Shards lists the cluster's engine instances; empty means a single-
	// engine deployment.
	Shards []Shard `json:"shards,omitempty"`
	// Assignments pins devices to shards (affinity). Only meaningful with
	// Shards present.
	Assignments []Assignment `json:"assignments,omitempty"`
}

// Validate checks the manifest as a deployment descriptor and reports
// every defect at once (one error per defect, joined), so a site
// administrator fixes the whole file in one pass instead of playing
// error whack-a-mole: duplicate IDs, missing or malformed fields, and
// type-field mismatches (a camera without mount geometry or a sensor
// without a location cannot answer the queries its virtual table
// promises).
func (m *Manifest) Validate() error {
	var errs []error
	seen := make(map[string]int)
	for i, d := range m.Devices {
		name := d.ID
		if name == "" {
			name = fmt.Sprintf("device %d", i)
		}
		if d.ID == "" {
			errs = append(errs, fmt.Errorf("device %d: missing id", i))
		} else if first, dup := seen[d.ID]; dup {
			errs = append(errs, fmt.Errorf("%s: duplicate id (first used by device %d)", name, first))
		} else {
			seen[d.ID] = i
		}
		if d.Type == "" {
			errs = append(errs, fmt.Errorf("%s: missing type", name))
		}
		switch d.Addr {
		case "":
			errs = append(errs, fmt.Errorf("%s: missing addr", name))
		default:
			if _, _, err := net.SplitHostPort(d.Addr); err != nil {
				errs = append(errs, fmt.Errorf("%s: addr %q is not host:port: %v", name, d.Addr, err))
			}
		}
		switch d.Type {
		case "camera":
			if d.Mount == nil {
				errs = append(errs, fmt.Errorf("%s: camera needs mount geometry", name))
			}
		case "sensor":
			if d.Loc == nil {
				errs = append(errs, fmt.Errorf("%s: sensor needs a loc", name))
			}
			if d.Depth < 0 {
				errs = append(errs, fmt.Errorf("%s: negative depth %d", name, d.Depth))
			}
		case "phone":
			if d.Number == "" {
				errs = append(errs, fmt.Errorf("%s: phone needs a number", name))
			}
		case "":
			// already reported above
		default:
			errs = append(errs, fmt.Errorf("%s: unknown type %q (want camera, sensor or phone)", name, d.Type))
		}
	}
	// Cluster topology: shard list, device→shard affinity claims, and the
	// resulting partition. Same posture as the device checks — every
	// defect reported, one error each.
	shardIdx := make(map[string]int)
	shardsValid := len(m.Shards) > 0
	for i, s := range m.Shards {
		name := s.ID
		if name == "" {
			name = fmt.Sprintf("shard %d", i)
		}
		if s.ID == "" {
			errs = append(errs, fmt.Errorf("shard %d: missing id", i))
			shardsValid = false
		} else if first, dup := shardIdx[s.ID]; dup {
			errs = append(errs, fmt.Errorf("shard %s: duplicate id (first used by shard %d)", name, first))
			shardsValid = false
		} else {
			shardIdx[s.ID] = i
		}
		switch s.Addr {
		case "":
			errs = append(errs, fmt.Errorf("shard %s: missing addr", name))
		default:
			if _, _, err := net.SplitHostPort(s.Addr); err != nil {
				errs = append(errs, fmt.Errorf("shard %s: addr %q is not host:port: %v", name, s.Addr, err))
			}
		}
	}
	if len(m.Assignments) > 0 && len(m.Shards) == 0 {
		errs = append(errs, errors.New("assignments present but no shards declared"))
	}
	claimed := make(map[string]int)
	pins := make(map[string]string, len(m.Assignments))
	for i, a := range m.Assignments {
		switch {
		case a.Device == "":
			errs = append(errs, fmt.Errorf("assignment %d: missing device", i))
			continue
		case len(m.Devices) > 0:
			if _, known := seen[a.Device]; !known {
				errs = append(errs, fmt.Errorf("assignment %d: unknown device %q", i, a.Device))
			}
		}
		if first, dup := claimed[a.Device]; dup {
			errs = append(errs, fmt.Errorf("assignment %d: device %q already assigned by assignment %d", i, a.Device, first))
			continue
		}
		claimed[a.Device] = i
		if a.Shard == "" {
			errs = append(errs, fmt.Errorf("assignment %d: missing shard", i))
		} else if _, known := shardIdx[a.Shard]; len(m.Shards) > 0 && !known {
			errs = append(errs, fmt.Errorf("assignment %d: unknown shard %q", i, a.Shard))
		} else {
			pins[a.Device] = a.Shard
		}
	}
	// An empty shard is a provisioning defect: it consumes an instance and
	// serves no devices. Detectable only when the shard list itself is
	// well-formed, because the partition comes from the shard map.
	if shardsValid && len(m.Devices) > 0 {
		ids := make([]string, 0, len(m.Shards))
		for _, s := range m.Shards {
			ids = append(ids, s.ID)
		}
		if smap, err := cluster.NewMap(ids, pins); err == nil {
			devIDs := make([]string, 0, len(m.Devices))
			for _, d := range m.Devices {
				if d.ID != "" {
					devIDs = append(devIDs, d.ID)
				}
			}
			for shard, owned := range smap.Partition(devIDs) {
				if len(owned) == 0 {
					errs = append(errs, fmt.Errorf("shard %s: owns no devices", shard))
				}
			}
		}
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("manifest: invalid:\n%w", errors.Join(errs...))
}

// ShardMap builds the deterministic device→shard map the manifest
// describes: the declared shard membership plus assignment pins.
func (m *Manifest) ShardMap() (*cluster.Map, error) {
	if len(m.Shards) == 0 {
		return nil, errors.New("manifest: no shards declared")
	}
	ids := make([]string, 0, len(m.Shards))
	for _, s := range m.Shards {
		ids = append(ids, s.ID)
	}
	pins := make(map[string]string, len(m.Assignments))
	for _, a := range m.Assignments {
		pins[a.Device] = a.Shard
	}
	return cluster.NewMap(ids, pins)
}

// ShardInfos renders the shard list in the router's membership form.
func (m *Manifest) ShardInfos() []cluster.ShardInfo {
	out := make([]cluster.ShardInfo, 0, len(m.Shards))
	for _, s := range m.Shards {
		out = append(out, cluster.ShardInfo{ID: s.ID, Addr: s.Addr})
	}
	return out
}

// Write validates and saves the manifest as JSON, so a generator bug
// (cmd/devfarm) is caught at write time, not at the consumer.
func Write(path string, m *Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("manifest: marshal: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	return nil
}

// Read loads and validates a manifest; consumers (cmd/aortad,
// cmd/aortacal) refuse to start on an invalid one.
func Read(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("manifest: parse %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &m, nil
}

// Static converts a device entry into the communication layer's static
// attribute map.
func (d *Device) Static() map[string]any {
	out := map[string]any{"id": d.ID}
	switch d.Type {
	case "camera":
		out["ip"] = d.Addr
		if d.Mount != nil {
			out["loc"] = d.Mount.Position
		}
	case "sensor":
		if d.Loc != nil {
			out["loc"] = *d.Loc
		}
		depth := d.Depth
		if depth < 1 {
			depth = 1
		}
		out["depth"] = depth
	case "phone":
		out["number"] = d.Number
		out["owner"] = d.Owner
	}
	return out
}
