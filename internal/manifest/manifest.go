// Package manifest defines the device-farm manifest exchanged between
// cmd/devfarm (which serves emulated devices over real TCP) and
// cmd/aortad (which registers them with an engine). It is the deployment
// descriptor a site administrator would maintain for a real installation.
package manifest

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"

	"aorta/internal/geo"
)

// Device describes one device in a farm.
type Device struct {
	ID   string `json:"id"`
	Type string `json:"type"` // camera | sensor | phone
	Addr string `json:"addr"` // host:port

	// Camera-only: mount geometry.
	Mount *geo.Mount `json:"mount,omitempty"`
	// Sensor-only: deployment position and routing depth.
	Loc   *geo.Point `json:"loc,omitempty"`
	Depth int        `json:"depth,omitempty"`
	// Phone-only.
	Number string `json:"number,omitempty"`
	Owner  string `json:"owner,omitempty"`
}

// Manifest is a whole farm.
type Manifest struct {
	Devices []Device `json:"devices"`
}

// Validate checks the manifest as a deployment descriptor and reports
// every defect at once (one error per defect, joined), so a site
// administrator fixes the whole file in one pass instead of playing
// error whack-a-mole: duplicate IDs, missing or malformed fields, and
// type-field mismatches (a camera without mount geometry or a sensor
// without a location cannot answer the queries its virtual table
// promises).
func (m *Manifest) Validate() error {
	var errs []error
	seen := make(map[string]int)
	for i, d := range m.Devices {
		name := d.ID
		if name == "" {
			name = fmt.Sprintf("device %d", i)
		}
		if d.ID == "" {
			errs = append(errs, fmt.Errorf("device %d: missing id", i))
		} else if first, dup := seen[d.ID]; dup {
			errs = append(errs, fmt.Errorf("%s: duplicate id (first used by device %d)", name, first))
		} else {
			seen[d.ID] = i
		}
		if d.Type == "" {
			errs = append(errs, fmt.Errorf("%s: missing type", name))
		}
		switch d.Addr {
		case "":
			errs = append(errs, fmt.Errorf("%s: missing addr", name))
		default:
			if _, _, err := net.SplitHostPort(d.Addr); err != nil {
				errs = append(errs, fmt.Errorf("%s: addr %q is not host:port: %v", name, d.Addr, err))
			}
		}
		switch d.Type {
		case "camera":
			if d.Mount == nil {
				errs = append(errs, fmt.Errorf("%s: camera needs mount geometry", name))
			}
		case "sensor":
			if d.Loc == nil {
				errs = append(errs, fmt.Errorf("%s: sensor needs a loc", name))
			}
			if d.Depth < 0 {
				errs = append(errs, fmt.Errorf("%s: negative depth %d", name, d.Depth))
			}
		case "phone":
			if d.Number == "" {
				errs = append(errs, fmt.Errorf("%s: phone needs a number", name))
			}
		case "":
			// already reported above
		default:
			errs = append(errs, fmt.Errorf("%s: unknown type %q (want camera, sensor or phone)", name, d.Type))
		}
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("manifest: invalid:\n%w", errors.Join(errs...))
}

// Write validates and saves the manifest as JSON, so a generator bug
// (cmd/devfarm) is caught at write time, not at the consumer.
func Write(path string, m *Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("manifest: marshal: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	return nil
}

// Read loads and validates a manifest; consumers (cmd/aortad,
// cmd/aortacal) refuse to start on an invalid one.
func Read(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("manifest: parse %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &m, nil
}

// Static converts a device entry into the communication layer's static
// attribute map.
func (d *Device) Static() map[string]any {
	out := map[string]any{"id": d.ID}
	switch d.Type {
	case "camera":
		out["ip"] = d.Addr
		if d.Mount != nil {
			out["loc"] = d.Mount.Position
		}
	case "sensor":
		if d.Loc != nil {
			out["loc"] = *d.Loc
		}
		depth := d.Depth
		if depth < 1 {
			depth = 1
		}
		out["depth"] = depth
	case "phone":
		out["number"] = d.Number
		out["owner"] = d.Owner
	}
	return out
}
