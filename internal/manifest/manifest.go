// Package manifest defines the device-farm manifest exchanged between
// cmd/devfarm (which serves emulated devices over real TCP) and
// cmd/aortad (which registers them with an engine). It is the deployment
// descriptor a site administrator would maintain for a real installation.
package manifest

import (
	"encoding/json"
	"fmt"
	"os"

	"aorta/internal/geo"
)

// Device describes one device in a farm.
type Device struct {
	ID   string `json:"id"`
	Type string `json:"type"` // camera | sensor | phone
	Addr string `json:"addr"` // host:port

	// Camera-only: mount geometry.
	Mount *geo.Mount `json:"mount,omitempty"`
	// Sensor-only: deployment position and routing depth.
	Loc   *geo.Point `json:"loc,omitempty"`
	Depth int        `json:"depth,omitempty"`
	// Phone-only.
	Number string `json:"number,omitempty"`
	Owner  string `json:"owner,omitempty"`
}

// Manifest is a whole farm.
type Manifest struct {
	Devices []Device `json:"devices"`
}

// Write saves the manifest as JSON.
func Write(path string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("manifest: marshal: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	return nil
}

// Read loads a manifest from JSON.
func Read(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("manifest: parse %s: %w", path, err)
	}
	for i, d := range m.Devices {
		if d.ID == "" || d.Type == "" || d.Addr == "" {
			return nil, fmt.Errorf("manifest: device %d missing id/type/addr", i)
		}
	}
	return &m, nil
}

// Static converts a device entry into the communication layer's static
// attribute map.
func (d *Device) Static() map[string]any {
	out := map[string]any{"id": d.ID}
	switch d.Type {
	case "camera":
		out["ip"] = d.Addr
		if d.Mount != nil {
			out["loc"] = d.Mount.Position
		}
	case "sensor":
		if d.Loc != nil {
			out["loc"] = *d.Loc
		}
		depth := d.Depth
		if depth < 1 {
			depth = 1
		}
		out["depth"] = depth
	case "phone":
		out["number"] = d.Number
		out["owner"] = d.Owner
	}
	return out
}
