package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"aorta/internal/comm"
	"aorta/internal/device/camera"
	"aorta/internal/device/phone"
	"aorta/internal/geo"
	"aorta/internal/profile"
	"aorta/internal/sched"
)

// Action failure modes observed in the paper's §6.2 study.
var (
	// ErrBlurred: the photo was corrupted by interfering head movement.
	ErrBlurred = errors.New("core: photo blurred")
	// ErrWrongPosition: the photo was taken pointing away from the
	// requested location.
	ErrWrongPosition = errors.New("core: photo taken at wrong position")
	// ErrStale: the request waited so long that its transient event is
	// gone.
	ErrStale = errors.New("core: action request became stale")
	// ErrNotCoverable: the selected camera cannot aim at the target.
	ErrNotCoverable = errors.New("core: target outside camera coverage")
	// ErrShutdown: the engine stopped before the request could execute.
	// Requests pending in a batch window when Engine.Stop fires are drained
	// with this error so every submitted request still yields an Outcome.
	ErrShutdown = errors.New("core: engine stopped before action could run")
	// ErrDeviceBusy: the device reported itself busy at execution time.
	// Action implementations return it (wrapped) to mark the failure as
	// transient; the operator re-dispatches the request on another
	// candidate instead of failing it.
	ErrDeviceBusy = errors.New("core: device reported busy")
)

// ActionContext carries execution context into an action implementation.
type ActionContext struct {
	Engine    *Engine
	QueryID   int
	RequestID int64
	// DeviceID is the device the optimizer selected.
	DeviceID string
	// Attempt is 1 for the first execution of a request and increments on
	// every failover retry.
	Attempt int
}

// ActionFunc is the code block of an action: the method invoked when the
// optimizer dispatches a request to a device. Args are the evaluated
// SQL-call arguments.
type ActionFunc func(ctx context.Context, actx *ActionContext, args []any) (any, error)

// ActionDef binds an action name to its profile, implementation and cost
// model.
type ActionDef struct {
	Name    string
	Profile *profile.ActionProfile
	Fn      ActionFunc
	Coster  Coster
	// TargetExtractor picks the cost-model target out of the evaluated
	// argument list (for photo: the location). Nil means no target.
	TargetExtractor func(args []any) any
}

// StoredPhoto is one photo archived by the photo() action.
type StoredPhoto struct {
	Directory string
	QueryID   int
	DeviceID  string
	Photo     camera.Photo
}

// photoStore collects photos taken by the built-in photo() action.
type photoStore struct {
	mu     sync.Mutex
	photos []StoredPhoto
}

const maxStoredPhotos = 10000

func (s *photoStore) add(p StoredPhoto) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.photos) >= maxStoredPhotos {
		copy(s.photos, s.photos[1:])
		s.photos = s.photos[:len(s.photos)-1]
	}
	s.photos = append(s.photos, p)
}

func (s *photoStore) all() []StoredPhoto {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StoredPhoto, len(s.photos))
	copy(out, s.photos)
	return out
}

// asPoint converts tuple values (geo.Point or decoded JSON objects) into a
// location.
func asPoint(v any) (geo.Point, bool) {
	switch p := v.(type) {
	case geo.Point:
		return p, true
	case *geo.Point:
		return *p, true
	case map[string]any:
		x, _ := toFloat(p["X"])
		y, _ := toFloat(p["Y"])
		z, _ := toFloat(p["Z"])
		return geo.Point{X: x, Y: y, Z: z}, true
	default:
		return geo.Point{}, false
	}
}

// photoCoster is the cost model for the photo() action: head-movement
// time from the probed head position to the aim solution, plus the fixed
// profile overhead. Sequence-dependent: the status chains through the aim
// orientations.
type photoCoster struct {
	engine *Engine
}

var _ Coster = (*photoCoster)(nil)

// ParseStatus implements Coster.
func (pc *photoCoster) ParseStatus(raw json.RawMessage) sched.Status {
	var st camera.Status
	if err := json.Unmarshal(raw, &st); err != nil {
		return geo.Orientation{Zoom: 1}
	}
	return st.Head
}

// Cost implements Coster.
func (pc *photoCoster) Cost(req *ActionRequest, deviceID string, st sched.Status) (time.Duration, sched.Status) {
	head, _ := st.(geo.Orientation)
	target, ok := asPoint(req.Target)
	if !ok {
		return DefaultPhotoFixed, st
	}
	mount, ok := pc.engine.MountOf(deviceID)
	if !ok {
		return DefaultPhotoFixed, st
	}
	aim, ok := mount.Aim(target)
	if !ok {
		// Not coverable: effectively infinite cost so the optimizer never
		// picks it (candidates are pre-filtered by coverage()).
		return 24 * time.Hour, st
	}
	pan, tilt := geo.AngularDist(head, aim)
	zoom := math.Abs(head.Zoom - aim.Zoom)
	photoProfile, pok := pc.engine.reg.Action(profile.ActionPhoto)
	costs, cok := pc.engine.reg.Costs(profile.DeviceCamera)
	if pok && cok {
		if cost, err := photoProfile.EstimateCost(costs, profile.Params{
			"pan_delta":  pan,
			"tilt_delta": tilt,
			"zoom_delta": zoom,
		}); err == nil {
			return cost, aim
		}
	}
	return camera.MoveTime(head, aim) + DefaultPhotoFixed, aim
}

// DefaultPhotoFixed is the movement-independent photo() overhead.
const DefaultPhotoFixed = 360 * time.Millisecond

// PositionTolerance is how far (degrees) a photo's achieved orientation
// may deviate from the requested aim before it counts as wrong-position.
const PositionTolerance = 2.0

// photoAction is the built-in photo(camera_ip, location, directory)
// implementation: move the selected camera's head to aim at location,
// take a medium photo, store it under directory.
func photoAction(ctx context.Context, actx *ActionContext, args []any) (any, error) {
	if len(args) != 3 {
		return nil, fmt.Errorf("core: photo() takes 3 arguments, got %d", len(args))
	}
	loc, ok := asPoint(args[1])
	if !ok {
		return nil, fmt.Errorf("core: photo() second argument is %T, not a location", args[1])
	}
	dir, _ := args[2].(string)

	e := actx.Engine
	mount, ok := e.MountOf(actx.DeviceID)
	if !ok {
		return nil, fmt.Errorf("core: no mount geometry for camera %q", actx.DeviceID)
	}
	aim, ok := mount.Aim(loc)
	if !ok {
		return nil, fmt.Errorf("%w: %s cannot aim at %s", ErrNotCoverable, actx.DeviceID, loc)
	}

	// The whole move→capture→store sequence rides one pooled session, so
	// back-to-back photos on the same camera dial once, not per action.
	var photo camera.Photo
	err := e.layer.WithSession(ctx, actx.DeviceID, func(sess *comm.Session) error {
		if _, err := sess.Exec(ctx, "move", &camera.MoveArgs{Pan: aim.Pan, Tilt: aim.Tilt, Zoom: aim.Zoom}); err != nil {
			return err
		}
		raw, err := sess.Exec(ctx, "capture", &camera.CaptureArgs{Size: "medium"})
		if err != nil {
			return err
		}
		if err := json.Unmarshal(raw, &photo); err != nil {
			return fmt.Errorf("core: decode photo: %w", err)
		}
		_, err = sess.Exec(ctx, "store", nil)
		return err
	})
	if err != nil {
		return nil, err
	}

	e.photos.add(StoredPhoto{Directory: dir, QueryID: actx.QueryID, DeviceID: actx.DeviceID, Photo: photo})
	if photo.Blurred {
		return photo, ErrBlurred
	}
	pan, tilt := geo.AngularDist(photo.At, aim)
	if pan > PositionTolerance || tilt > PositionTolerance {
		return photo, fmt.Errorf("%w: wanted %s, got %s", ErrWrongPosition, aim, photo.At)
	}
	return photo, nil
}

// beepAction and blinkAction operate motes.
func beepAction(ctx context.Context, actx *ActionContext, _ []any) (any, error) {
	raw, err := actx.Engine.layer.Exec(ctx, actx.DeviceID, "beep", nil)
	if err != nil {
		return nil, err
	}
	return raw, nil
}

func blinkAction(ctx context.Context, actx *ActionContext, _ []any) (any, error) {
	raw, err := actx.Engine.layer.Exec(ctx, actx.DeviceID, "blink", nil)
	if err != nil {
		return nil, err
	}
	return raw, nil
}

// sendphotoAction is the paper's §2.2 user-action example, provided as a
// system built-in here: sendphoto(phone_no, photo_pathname) delivers the
// most recent photo stored under photo_pathname to the phone via MMS.
func sendphotoAction(ctx context.Context, actx *ActionContext, args []any) (any, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("core: sendphoto() takes 2 arguments, got %d", len(args))
	}
	path, _ := args[1].(string)
	e := actx.Engine

	sizeKB := 40
	for _, sp := range e.photos.all() {
		if sp.Directory == path {
			sizeKB = sp.Photo.SizeKB
		}
	}
	raw, err := e.layer.Exec(ctx, actx.DeviceID, "send_mms", &phone.MMSArgs{PhotoPath: path, SizeKB: sizeKB})
	if err != nil {
		return nil, err
	}
	return raw, nil
}

// notifyAction sends an SMS: notify(phone_no, text).
func notifyAction(ctx context.Context, actx *ActionContext, args []any) (any, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("core: notify() takes 2 arguments, got %d", len(args))
	}
	text, _ := args[1].(string)
	raw, err := actx.Engine.layer.Exec(ctx, actx.DeviceID, "send_sms", &phone.SMSArgs{Text: text})
	if err != nil {
		return nil, err
	}
	return raw, nil
}

// registerBuiltinActions installs the system action library (paper §2.2).
func (e *Engine) registerBuiltinActions() error {
	photoProfile, _ := e.reg.Action(profile.ActionPhoto)
	beepProfile, _ := e.reg.Action(profile.ActionBeep)
	blinkProfile, _ := e.reg.Action(profile.ActionBlink)
	sendProfile, _ := e.reg.Action(profile.ActionSendPhoto)
	notifyProfile, _ := e.reg.Action(profile.ActionNotify)

	defs := []*ActionDef{
		{
			Name:    profile.ActionPhoto,
			Profile: photoProfile,
			Fn:      photoAction,
			Coster:  &photoCoster{engine: e},
			TargetExtractor: func(args []any) any {
				if len(args) > 1 {
					if p, ok := asPoint(args[1]); ok {
						return p
					}
				}
				return nil
			},
		},
		{Name: profile.ActionBeep, Profile: beepProfile, Fn: beepAction, Coster: &FixedCoster{Duration: 250 * time.Millisecond}},
		{Name: profile.ActionBlink, Profile: blinkProfile, Fn: blinkAction, Coster: &FixedCoster{Duration: 150 * time.Millisecond}},
		{Name: profile.ActionSendPhoto, Profile: sendProfile, Fn: sendphotoAction, Coster: &FixedCoster{Duration: 2 * time.Second}},
		{Name: profile.ActionNotify, Profile: notifyProfile, Fn: notifyAction, Coster: &FixedCoster{Duration: 1800 * time.Millisecond}},
	}
	for _, def := range defs {
		if def.Profile == nil {
			return fmt.Errorf("core: missing profile for built-in action %q", def.Name)
		}
		if err := e.registerActionDef(def); err != nil {
			return err
		}
	}
	// The paper's CREATE ACTION example binds code via a library path;
	// expose the built-ins under canonical library names so scripts can
	// re-bind them.
	e.libs["builtin/photo"] = photoAction
	e.libs["builtin/sendphoto"] = sendphotoAction
	e.libs["builtin/notify"] = notifyAction
	e.libs["builtin/beep"] = beepAction
	e.libs["builtin/blink"] = blinkAction
	return nil
}
