package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"aorta/internal/comm"
	"aorta/internal/devsync"
	"aorta/internal/geo"
	"aorta/internal/liveness"
	"aorta/internal/netsim"
	"aorta/internal/profile"
	"aorta/internal/scanshare"
	"aorta/internal/sched"
	"aorta/internal/sqlparse"
	"aorta/internal/vclock"
	"aorta/internal/wal"
)

// Config configures an Engine. Zero values select production defaults.
type Config struct {
	// Clock is the engine time source (default: the wall clock).
	Clock vclock.Clock
	// Dialer connects to devices (required).
	Dialer netsim.Dialer
	// Registry holds catalogs, atomic costs and action profiles
	// (default: profile.DefaultRegistry()).
	Registry *profile.Registry
	// DefaultEpoch is the sampling epoch for queries without EVERY
	// (default 1s).
	DefaultEpoch time.Duration
	// BatchWindow is how long the shared action operator collects
	// concurrent requests before scheduling them together (default
	// 100ms).
	BatchWindow time.Duration
	// Scheduler is the action workload scheduling algorithm (default
	// SRFAE, the paper's Algorithm 2).
	Scheduler sched.Algorithm
	// StaleAfter fails requests that have not started executing within
	// this long of their event (0 disables staleness).
	StaleAfter time.Duration
	// LockLease bounds how long one action may hold a device lock; a
	// crashed or hung action is revoked after this TTL and the device
	// handed to the next request (0 uses plain locks).
	LockLease time.Duration
	// MaxAttempts is the per-request execution attempt budget: after a
	// retryable failure (connect/timeout, lock-lease loss, device busy)
	// the shared action operator re-schedules the request over its
	// remaining probed candidates until this many attempts are spent
	// (default DefaultMaxAttempts; values below 1 clamp to 1, i.e. no
	// failover).
	MaxAttempts int

	// PoolMaxSessions caps the transport pool's concurrently open device
	// sessions; beyond it the least-recently-used idle session is evicted
	// (default comm.DefaultPoolMaxSessions; negative disables pooling so
	// every operation dials and closes its own connection).
	PoolMaxSessions int
	// PoolIdleTTL reaps pooled sessions unused for this long on the
	// engine clock (default comm.DefaultPoolIdleTTL; negative keeps idle
	// sessions forever).
	PoolIdleTTL time.Duration
	// DialBackoff is the first suppression window after a device refuses
	// a dial; consecutive failures double it. While a device is in
	// backoff, scans and probes skip it without dialing — it simply
	// contributes no tuple (default comm.DefaultDialBackoff; negative
	// disables the dial-failure cache).
	DialBackoff time.Duration

	// LivenessSuspectAfter is the consecutive-failure count that moves a
	// device Up → Suspect in the failure detector (default
	// liveness.DefaultSuspectAfter).
	LivenessSuspectAfter int
	// LivenessDownAfter is the consecutive-failure count that moves a
	// device to Down, excluding it from scheduling and shedding its
	// traffic (default liveness.DefaultDownAfter).
	LivenessDownAfter int
	// LivenessProbeInterval enables the active health prober: every
	// interval on the engine clock the current membership is probed and
	// the results feed the failure detector — the re-admission path for
	// devices the request path no longer touches. 0 disables active
	// probing (the detector still runs on passive evidence).
	LivenessProbeInterval time.Duration
	// LivenessDownRetry is how often a Down device is granted one trial
	// operation through the transport gate so ordinary traffic can
	// discover recovery (default liveness.DefaultDownRetry; negative
	// disables trials).
	LivenessDownRetry time.Duration
	// DisableLiveness turns the failure detector off entirely — no
	// passive evidence, no gate, no scheduling filter. The churn study's
	// ablation, and the right setting for experiments that need dial
	// attempts to stay independent trials.
	DisableLiveness bool

	// BreakerThreshold is the transport-failure count within
	// BreakerWindow that opens a device's circuit breaker (default
	// comm.DefaultBreakerThreshold; negative disables the breaker).
	BreakerThreshold int
	// BreakerWindow is the breaker's rolling failure-counting window
	// (default comm.DefaultBreakerWindow).
	BreakerWindow time.Duration
	// BreakerCooldown is how long an open breaker sheds load before a
	// half-open trial (default comm.DefaultBreakerCooldown).
	BreakerCooldown time.Duration

	// DisableLocking turns off the device locking mechanism — the §6.2
	// ablation that reproduces interference failures.
	DisableLocking bool
	// DisableProbing turns off candidate probing before scheduling.
	DisableProbing bool
	// ScheduleBusyDevices keeps busy devices in the candidate set instead
	// of excluding them at probe time.
	ScheduleBusyDevices bool
	// InterferenceAblation fires every request of a device's sequence
	// concurrently instead of in order. Only meaningful together with
	// DisableLocking: it reproduces the §6.2 interference failures
	// (blurred photos, wrong positions) that motivate the locking
	// mechanism. Without it, DisableLocking still runs sequences in
	// order — just without the cross-operator lock guarantee.
	InterferenceAblation bool

	// EvalWorkers caps how many continuous-query epoch evaluations may run
	// concurrently on this engine; further epochs queue behind the cap (and
	// the fabric's bounded delivery buffer sheds batches that back up past
	// it, so a saturated engine degrades by skipping epochs, not by growing
	// without bound). This is the engine's evaluation capacity: a cluster
	// multiplies it by adding shards. 0 means unlimited (no admission gate).
	EvalWorkers int

	// QuarantineAfter auto-stops (quarantines) a continuous query after
	// this many contained evaluation panics: the query is STOPped with a
	// recorded reason instead of poisoning every subsequent epoch, and
	// START AQ refuses it until DROP AQ discards it (default
	// DefaultQuarantineAfter; negative disables quarantine).
	QuarantineAfter int

	// Logger receives structured engine events (query lifecycle, batch
	// dispatch, action failures). Nil discards them.
	Logger *slog.Logger

	// Journal makes the engine's state durable: catalog mutations (device
	// membership, query lifecycle) and action intents/outcomes are written
	// ahead, and Start replays them after a crash — restoring the catalog
	// and re-dispatching every intent that has no outcome. Nil runs the
	// engine purely in memory. The engine takes over the journal's
	// snapshot function; close the journal after Engine.Stop.
	Journal *wal.Journal
}

// DefaultMaxAttempts is the default per-request execution attempt budget
// (first attempt plus up to two failover retries).
const DefaultMaxAttempts = 3

// DefaultQuarantineAfter is the default contained-panic count that
// quarantines a continuous query.
const DefaultQuarantineAfter = 3

// engineConfig is the resolved form used internally.
type engineConfig struct {
	DefaultEpoch  time.Duration
	BatchWindow   time.Duration
	Scheduler     sched.Algorithm
	StaleAfter    time.Duration
	LockLease     time.Duration
	MaxAttempts   int
	Locking       bool
	Probing       bool
	ExcludeBusy   bool
	Interference  bool
	ProbeInterval time.Duration // active liveness probing (0 = off)
	// QuarantineAfter is the contained-panic threshold (0 = disabled).
	QuarantineAfter int
}

// Engine is the Aorta pervasive query processing engine.
type Engine struct {
	cfg    engineConfig
	lg     *slog.Logger
	clk    vclock.Clock
	reg    *profile.Registry
	layer  *comm.Layer
	locks  *devsync.LockManager
	prober *devsync.Prober
	// live is the per-device failure detector; nil when DisableLiveness.
	live *liveness.Detector
	// fabric is the shared scan fabric: continuous queries subscribe their
	// table needs and every (device type, epoch) pair is sampled once per
	// epoch regardless of how many queries ride it.
	fabric *scanshare.Fabric
	// evalSem bounds concurrent continuous-query evaluations when
	// Config.EvalWorkers > 0; nil means unlimited.
	evalSem chan struct{}

	mu        sync.Mutex
	queries   map[string]*Query
	actions   map[string]*ActionDef
	operators map[string]*actionOperator
	boolFuncs map[string]BoolFunc
	libs      map[string]ActionFunc
	nextQID   int
	started   bool

	runCtx    context.Context
	runCancel context.CancelFunc
	wg        sync.WaitGroup

	reqSeq  atomic.Int64
	seedSeq atomic.Int64

	photos   *photoStore
	metrics  *EngineMetrics
	outcomes *outcomeLog

	// glue wires the write-ahead journal in; nil without Config.Journal.
	glue *journalGlue
	// degraded flags journal-degraded (read-only) mode: a journal append
	// failed for a storage reason, so mutating statements are refused with
	// ErrDegraded until a journal write succeeds again. Continuous queries
	// keep streaming throughout — a full disk degrades durability, never
	// availability.
	degraded atomic.Bool

	// draining refuses new placements while the engine flushes for a
	// cooperative shard drain (see Drain).
	draining atomic.Bool
	// inFlight counts action requests currently inside a dispatch.
	inFlight atomic.Int64
	// recovered holds journal-recovered intents awaiting re-submission;
	// Start drains it. recoveryStats memoizes the replay for Recover's
	// idempotent second call. Both under e.mu.
	recovered     []*recoveredIntent
	recoveryStats RecoveryStats
}

// New builds an engine over the given transport.
func New(cfg Config) (*Engine, error) {
	if cfg.Dialer == nil {
		return nil, errors.New("core: Config.Dialer is required")
	}
	clk := cfg.Clock
	if clk == nil {
		clk = vclock.Real{}
	}
	reg := cfg.Registry
	if reg == nil {
		var err error
		reg, err = profile.DefaultRegistry()
		if err != nil {
			return nil, err
		}
	}
	resolved := engineConfig{
		DefaultEpoch:    cfg.DefaultEpoch,
		BatchWindow:     cfg.BatchWindow,
		Scheduler:       cfg.Scheduler,
		StaleAfter:      cfg.StaleAfter,
		LockLease:       cfg.LockLease,
		MaxAttempts:     cfg.MaxAttempts,
		Locking:         !cfg.DisableLocking,
		Probing:         !cfg.DisableProbing,
		ExcludeBusy:     !cfg.ScheduleBusyDevices,
		Interference:    cfg.DisableLocking && cfg.InterferenceAblation,
		QuarantineAfter: cfg.QuarantineAfter,
	}
	if resolved.QuarantineAfter == 0 {
		resolved.QuarantineAfter = DefaultQuarantineAfter
	}
	if resolved.QuarantineAfter < 0 {
		resolved.QuarantineAfter = 0 // quarantine disabled
	}
	if !cfg.DisableLiveness && cfg.LivenessProbeInterval > 0 {
		resolved.ProbeInterval = cfg.LivenessProbeInterval
	}
	if resolved.DefaultEpoch <= 0 {
		resolved.DefaultEpoch = time.Second
	}
	if resolved.MaxAttempts == 0 {
		resolved.MaxAttempts = DefaultMaxAttempts
	}
	if resolved.MaxAttempts < 1 {
		resolved.MaxAttempts = 1
	}
	if resolved.BatchWindow <= 0 {
		resolved.BatchWindow = 100 * time.Millisecond
	}
	if resolved.Scheduler == nil {
		resolved.Scheduler = sched.SRFAE{}
	}

	lg := cfg.Logger
	if lg == nil {
		lg = slog.New(slog.NewTextHandler(io.Discard, nil))
	}

	layer := comm.New(cfg.Dialer, clk, reg)
	layer.ConfigurePool(comm.PoolConfig{
		MaxSessions: cfg.PoolMaxSessions,
		IdleTTL:     cfg.PoolIdleTTL,
		BackoffBase: cfg.DialBackoff,
	})
	layer.ConfigureBreaker(comm.BreakerConfig{
		Threshold: cfg.BreakerThreshold,
		Window:    cfg.BreakerWindow,
		Cooldown:  cfg.BreakerCooldown,
	})
	e := &Engine{
		cfg:       resolved,
		lg:        lg,
		clk:       clk,
		reg:       reg,
		layer:     layer,
		locks:     devsync.NewLockManager(clk),
		prober:    devsync.NewProber(layer),
		queries:   make(map[string]*Query),
		actions:   make(map[string]*ActionDef),
		operators: make(map[string]*actionOperator),
		boolFuncs: make(map[string]BoolFunc),
		libs:      make(map[string]ActionFunc),
		runCtx:    context.Background(),
		photos:    &photoStore{},
		metrics:   newEngineMetrics(),
		outcomes:  &outcomeLog{},
	}
	if cfg.EvalWorkers > 0 {
		e.evalSem = make(chan struct{}, cfg.EvalWorkers)
	}
	// The fabric scans through the layer, so pooled sessions, dial backoff,
	// circuit breakers and the liveness gate all apply to shared scans.
	e.fabric = scanshare.New(clk, func(ctx context.Context, deviceType string, attrs []string) (*comm.Batch, error) {
		b, _, err := layer.ScanBatch(ctx, deviceType, attrs)
		return b, err
	})
	if !cfg.DisableLiveness {
		e.live = liveness.New(clk, liveness.Config{
			SuspectAfter: cfg.LivenessSuspectAfter,
			DownAfter:    cfg.LivenessDownAfter,
			DownRetry:    cfg.LivenessDownRetry,
		})
		e.live.Subscribe(e.onLivenessEvent)
		layer.SetGate(e.live.AdmitTrial)
		layer.SetObserver(e.live.Observe)
	}
	if cfg.Journal != nil {
		e.glue = newJournalGlue(cfg.Journal)
	}
	if err := e.registerBuiltinActions(); err != nil {
		return nil, err
	}
	e.registerBuiltinBoolFuncs()
	return e, nil
}

// onLivenessEvent reacts to failure-detector transitions: a device going
// Down has any stranded lock reclaimed so queued requests stop waiting on
// a dead holder; a device recovering has its negative transport state
// (dial backoff, open breaker) cleared so traffic re-expands immediately.
func (e *Engine) onLivenessEvent(ev liveness.Event) {
	switch {
	case ev.To == liveness.Down:
		e.lg.Warn("device down", "device", ev.Device, "reason", ev.Reason)
		if e.locks.Reclaim(ev.Device) {
			e.lg.Warn("reclaimed lock stranded on down device", "device", ev.Device)
		}
	case ev.To == liveness.Up && ev.From != liveness.Up:
		e.layer.Readmit(ev.Device)
		e.lg.Info("device recovered", "device", ev.Device, "from", ev.From.String())
	default:
		e.lg.Info("device suspect", "device", ev.Device, "reason", ev.Reason)
	}
}

// deviceIDs lists the current membership for the health prober.
func (e *Engine) deviceIDs() []string {
	devs := e.layer.Devices()
	ids := make([]string, len(devs))
	for i, d := range devs {
		ids[i] = d.ID
	}
	return ids
}

// healthProbe is the active liveness check for one device: a dedicated
// (unpooled, ungated) connect + probe round trip, so a Down device is
// still reachable by the prober even while the gate sheds its ordinary
// traffic. Transport failures count as dead; a semantic answer — or a
// device unregistered mid-probe — does not.
func (e *Engine) healthProbe(ctx context.Context, id string) bool {
	sess, err := e.layer.Connect(ctx, id)
	if err != nil {
		if errors.Is(err, comm.ErrUnknownDevice) {
			return true // membership changed mid-probe: no evidence of death
		}
		return !comm.Retryable(err)
	}
	defer sess.Close()
	if _, err := sess.Probe(ctx); err != nil {
		return !comm.Retryable(err)
	}
	return true
}

// Layer exposes the uniform data communication layer.
func (e *Engine) Layer() *comm.Layer { return e.layer }

// Locks exposes the device lock manager.
func (e *Engine) Locks() *devsync.LockManager { return e.locks }

// Clock returns the engine's clock.
func (e *Engine) Clock() vclock.Clock { return e.clk }

// Registry returns the profile registry.
func (e *Engine) Registry() *profile.Registry { return e.reg }

// Metrics returns the engine's action metrics.
func (e *Engine) Metrics() MetricsSnapshot {
	snap := e.metrics.Snapshot()
	snap.Degraded = e.degraded.Load()
	return snap
}

// Degraded reports whether the engine is currently in journal-degraded
// (read-only) mode.
func (e *Engine) Degraded() bool { return e.degraded.Load() }

// JournalStats returns the write-ahead journal's counters (including the
// AppendErrors/SyncErrors early-warning counters degraded mode fires on),
// or false when the engine runs without a journal.
func (e *Engine) JournalStats() (wal.Stats, bool) {
	if e.glue == nil {
		return wal.Stats{}, false
	}
	return e.glue.j.Stats(), true
}

// enterDegraded flips the engine read-only after a journal write failed
// for a storage reason. Idempotent; only the transition is counted.
func (e *Engine) enterDegraded(cause error) {
	if e.degraded.CompareAndSwap(false, true) {
		e.metrics.noteDegraded(true)
		e.lg.Error("journal write failed: engine entering degraded (read-only) mode",
			"err", cause)
	}
}

// exitDegraded clears degraded mode after a journal write or probe
// succeeded. Idempotent; only the transition is counted.
func (e *Engine) exitDegraded() {
	if e.degraded.CompareAndSwap(true, false) {
		e.metrics.noteDegraded(false)
		e.lg.Info("journal writes succeeding again: engine exiting degraded mode")
	}
}

// checkDegraded gates a mutating statement. In degraded mode it first
// re-probes the journal with a sync — recovery (an admin freeing disk
// space) is discovered by the next mutation rather than requiring a
// restart — and refuses with ErrDegraded only if the probe still fails.
func (e *Engine) checkDegraded() error {
	if !e.degraded.Load() {
		return nil
	}
	if e.glue != nil {
		if err := e.glue.j.Sync(); err == nil {
			e.exitDegraded()
			return nil
		}
	}
	return ErrDegraded
}

// CommMetrics returns a snapshot of the communication layer's transport
// counters, including the session pool (hits, misses, evictions,
// suppressed dials, open sessions).
func (e *Engine) CommMetrics() comm.MetricsSnapshot { return e.layer.Metrics().Snapshot() }

// ScanMetrics returns a snapshot of the shared scan fabric's counters:
// coalesced scans, fan-out volume, delivery drops and predicate-index
// hit/residual rates.
func (e *Engine) ScanMetrics() scanshare.MetricsSnapshot { return e.fabric.Metrics() }

// ScanSharing reports the fabric's current scan groups: each entry is one
// coalesced (device type, epoch) scan and how many query tables ride it.
func (e *Engine) ScanSharing() []scanshare.ShareInfo { return e.fabric.Sharing() }

// Outcomes returns the recorded action outcomes.
func (e *Engine) Outcomes() []*Outcome { return e.outcomes.all() }

// SubscribeOutcomes returns a channel receiving future outcomes. Slow
// subscribers miss outcomes rather than stalling execution.
func (e *Engine) SubscribeOutcomes(buf int) <-chan *Outcome {
	return e.outcomes.subscribe(buf)
}

// Photos returns every photo stored by the photo() action.
func (e *Engine) Photos() []StoredPhoto { return e.photos.all() }

// RegisterDevice adds a device to the communication layer. For cameras,
// mount must carry the PTZ geometry; pass a zero Mount for other types.
func (e *Engine) RegisterDevice(info comm.DeviceInfo, mount geo.Mount) error {
	if info.Static == nil {
		info.Static = make(map[string]any)
	}
	if info.Type == profile.DeviceCamera {
		info.Static["mount"] = mount
		if _, ok := info.Static["loc"]; !ok {
			info.Static["loc"] = mount.Position
		}
		if _, ok := info.Static["ip"]; !ok {
			info.Static["ip"] = info.Addr
		}
	}
	if err := e.layer.Register(info); err != nil {
		return err
	}
	// A device (re)joining starts with a clean slate: no failure history,
	// no dial backoff, no open breaker. Devices join the network
	// dynamically and unpredictably (paper §4); a rejoin after churn must
	// not inherit the penalties of its previous life.
	if e.live != nil {
		e.live.Forget(info.ID)
	}
	e.layer.Readmit(info.ID)
	e.journalRegisterDevice(info)
	return nil
}

// UnregisterDevice removes a device from the engine at runtime — the
// departure half of dynamic membership. Its transport state (pooled
// session, dial backoff, circuit breaker) is torn down, the failure
// detector forgets it, and any lock it stranded is reclaimed so queued
// requests move on. Running queries keep going over the remaining
// membership; the device simply stops contributing tuples and candidates.
func (e *Engine) UnregisterDevice(id string) {
	e.layer.Unregister(id)
	if e.live != nil {
		e.live.Forget(id)
	}
	if e.locks.Reclaim(id) {
		e.lg.Warn("reclaimed lock stranded on unregistered device", "device", id)
	}
	e.journalUnregisterDevice(id)
	e.lg.Info("device unregistered", "device", id)
}

// Liveness exposes the failure detector; nil when DisableLiveness.
func (e *Engine) Liveness() *liveness.Detector { return e.live }

// LivenessSnapshot returns per-device health states, or nil when the
// detector is disabled.
func (e *Engine) LivenessSnapshot() map[string]liveness.DeviceHealth {
	if e.live == nil {
		return nil
	}
	return e.live.Snapshot()
}

// MountOf returns the PTZ mount geometry of a registered camera.
func (e *Engine) MountOf(deviceID string) (geo.Mount, bool) {
	info, ok := e.layer.Device(deviceID)
	if !ok {
		return geo.Mount{}, false
	}
	m, ok := info.Static["mount"].(geo.Mount)
	return m, ok
}

// RegisterBoolFunc installs a boolean function usable in WHERE clauses.
func (e *Engine) RegisterBoolFunc(name string, fn BoolFunc) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.boolFuncs[name] = fn
}

// RegisterLibrary binds a library path (the AS "..." clause of CREATE
// ACTION) to a Go function — the reproduction's stand-in for the paper's
// dynamically linked libraries.
func (e *Engine) RegisterLibrary(path string, fn ActionFunc) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.libs[path] = fn
}

// RegisterUserAction installs a fully specified action definition
// programmatically (profile + implementation + cost model).
func (e *Engine) RegisterUserAction(def *ActionDef) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.registerActionDefLocked(def)
}

func (e *Engine) registerActionDef(def *ActionDef) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.registerActionDefLocked(def)
}

func (e *Engine) registerActionDefLocked(def *ActionDef) error {
	if def.Name == "" || def.Fn == nil || def.Profile == nil {
		return errors.New("core: action definition needs Name, Fn and Profile")
	}
	if _, dup := e.actions[def.Name]; dup {
		return fmt.Errorf("core: action %q already registered", def.Name)
	}
	if def.Coster == nil {
		def.Coster = &FixedCoster{Duration: time.Second}
	}
	// Ensure the profile registry knows the action under its own name
	// (built-ins already do). A def may borrow another action's profile;
	// register a renamed copy in that case.
	if _, known := e.reg.Action(def.Name); !known {
		prof := def.Profile
		if prof.Name != def.Name {
			clone := *prof
			clone.Name = def.Name
			prof = &clone
			def.Profile = prof
		}
		if err := e.reg.RegisterAction(prof); err != nil {
			return err
		}
	}
	e.actions[def.Name] = def
	return nil
}

// registerBuiltinBoolFuncs installs coverage() and near().
func (e *Engine) registerBuiltinBoolFuncs() {
	// coverage(camera_id, location) — paper §2.2's Boolean function:
	// TRUE when the camera's view envelope covers the location.
	e.boolFuncs["coverage"] = func(args []any) (bool, error) {
		if len(args) != 2 {
			return false, fmt.Errorf("core: coverage() takes 2 arguments, got %d", len(args))
		}
		id, ok := args[0].(string)
		if !ok {
			return false, fmt.Errorf("core: coverage() first argument is %T, not a device id", args[0])
		}
		loc, ok := asPoint(args[1])
		if !ok {
			return false, fmt.Errorf("core: coverage() second argument is %T, not a location", args[1])
		}
		mount, ok := e.MountOf(id)
		if !ok {
			return false, nil
		}
		return mount.Covers(loc), nil
	}
	// near(loc_a, loc_b, metres) — proximity predicate.
	e.boolFuncs["near"] = func(args []any) (bool, error) {
		if len(args) != 3 {
			return false, fmt.Errorf("core: near() takes 3 arguments, got %d", len(args))
		}
		a, ok1 := asPoint(args[0])
		b, ok2 := asPoint(args[1])
		d, ok3 := toFloat(args[2])
		if !ok1 || !ok2 || !ok3 {
			return false, errors.New("core: near() arguments must be (location, location, number)")
		}
		return a.Dist(b) <= d, nil
	}
}

// Start launches the continuous-query loops. It may be called once. With
// a journal configured it first recovers any state a previous process
// left behind (an explicit Recover beforehand is equivalent), then
// re-submits every recovered intent whose deadline is still live.
func (e *Engine) Start(ctx context.Context) error {
	if e.glue != nil && !e.glue.didRecover() {
		if _, err := e.Recover(ctx); err != nil {
			return err
		}
	}
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return errors.New("core: engine already started")
	}
	e.started = true
	e.runCtx, e.runCancel = context.WithCancel(ctx)
	e.fabric.Start(e.runCtx)
	if e.live != nil && e.cfg.ProbeInterval > 0 {
		hp := liveness.NewHealthProber(e.live, e.clk, e.cfg.ProbeInterval, 0,
			e.deviceIDs, e.healthProbe)
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			hp.Run(e.runCtx)
		}()
		e.lg.Info("health prober started", "interval", e.cfg.ProbeInterval)
	}
	for _, q := range e.queries {
		e.startQueryLocked(q)
	}
	recovered := e.recovered
	e.recovered = nil
	e.mu.Unlock()
	// Re-submission happens after releasing e.mu: the shared operators
	// take it, and the submit path needs the run context armed above.
	for _, ri := range recovered {
		e.lg.Info("re-dispatching recovered intent", "query", ri.req.Query,
			"action", ri.req.Action, "event", ri.req.EventKey)
		e.operatorFor(ri.def).submit(ri.req)
	}
	return nil
}

// Stop cancels all query loops, waits for in-flight work and drains the
// transport pool. The engine's communication layer stays usable for
// ad-hoc statements afterwards; drained devices are simply re-dialed.
func (e *Engine) Stop() {
	e.mu.Lock()
	cancel := e.runCancel
	e.runCancel = nil
	e.started = false
	e.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	e.wg.Wait()
	// Query loops have exited and dropped their subscriptions; wait for the
	// fabric's cohort loops before tearing down the transport they scan on.
	e.fabric.Stop()
	snap := e.layer.Metrics().Snapshot()
	_ = e.layer.Close()
	if cancel == nil && snap.OpenSessions == 0 {
		// Repeated Stop (e.g. a deferred Stop after an explicit one):
		// nothing ran and nothing was drained, so don't log it again.
		return
	}
	if e.glue != nil {
		// Push every buffered record to stable storage before the caller
		// proceeds to exit; errors degrade durability, not the shutdown.
		if err := e.glue.j.Sync(); err != nil && !errors.Is(err, wal.ErrClosed) {
			e.lg.Error("journal sync at stop failed", "err", err)
		}
	}
	e.lg.Info("transport pool drained",
		"open_sessions", snap.OpenSessions,
		"dials", snap.Dials,
		"pool_hits", snap.PoolHits,
		"pool_misses", snap.PoolMisses,
		"pool_evictions", snap.PoolEvictions,
		"pool_expired", snap.PoolExpired,
		"pool_broken", snap.PoolBroken,
		"suppressed_dials", snap.SuppressedDials)
}

// startQueryLocked launches one query loop. Caller holds e.mu. Stopped
// queries (STOP AQ, possibly in a previous process) stay in the catalog
// but do not run until START AQ clears the flag.
func (e *Engine) startQueryLocked(q *Query) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.running || q.stopped || !e.started {
		return
	}
	qctx, cancel := context.WithCancel(e.runCtx)
	q.cancel = cancel
	q.running = true
	e.wg.Add(1)
	go e.runQuery(qctx, q)
}

func (e *Engine) nextRequestID() int64 { return e.reqSeq.Add(1) }
func (e *Engine) nextSeed() int64      { return e.seedSeq.Add(1) }

// operatorFor returns the shared operator of an action, creating it on
// first use.
func (e *Engine) operatorFor(def *ActionDef) *actionOperator {
	e.mu.Lock()
	defer e.mu.Unlock()
	op, ok := e.operators[def.Name]
	if !ok {
		op = newActionOperator(e, def)
		e.operators[def.Name] = op
	}
	return op
}

// forgetQuery unregisters a query from every shared operator's sharing
// set when it is dropped or stopped; without this the sets grow without
// bound on long-running daemons that cycle queries.
func (e *Engine) forgetQuery(qid int) {
	e.mu.Lock()
	ops := make([]*actionOperator, 0, len(e.operators))
	for _, op := range e.operators {
		ops = append(ops, op)
	}
	e.mu.Unlock()
	for _, op := range ops {
		op.forgetQuery(qid)
	}
}

// OperatorSharing reports how many queries share each action operator.
func (e *Engine) OperatorSharing() map[string]int {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]int, len(e.operators))
	for name, op := range e.operators {
		out[name] = op.SharedBy()
	}
	return out
}

// ExecResult is the outcome of one Exec call.
type ExecResult struct {
	// Kind is "ok", "rows", "queries", "actions", "devices", "scans" or
	// "plan".
	Kind    string
	Message string
	Rows    []map[string]any
	Queries []Info
	Names   []string
}

// Exec parses and executes one extended-SQL statement.
func (e *Engine) Exec(ctx context.Context, sql string) (*ExecResult, error) {
	// A statement whose deadline already expired fails typed up front;
	// mid-statement expiry during a scan instead degrades to partial
	// results (network data independence: a device that did not answer
	// in time contributes no tuple).
	if ctx.Err() != nil {
		return nil, context.Cause(ctx)
	}
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	// Statements that mutate journaled state are refused while the
	// journal cannot accept writes; reads and continuous evaluation
	// continue untouched.
	switch stmt.(type) {
	case *sqlparse.CreateAQ, *sqlparse.DropAQ, *sqlparse.StopAQ, *sqlparse.StartAQ:
		if err := e.checkDegraded(); err != nil {
			return nil, err
		}
	}
	// A draining engine accepts no new placements — its state is being
	// handed off — but keeps serving reads and lifecycle statements.
	switch stmt.(type) {
	case *sqlparse.CreateAQ, *sqlparse.CreateAction:
		if e.draining.Load() {
			return nil, ErrDraining
		}
	}
	switch st := stmt.(type) {
	case *sqlparse.CreateAction:
		return e.execCreateAction(st)
	case *sqlparse.CreateAQ:
		return e.execCreateAQ(st)
	case *sqlparse.DropAQ:
		return e.execDropAQ(st.Name)
	case *sqlparse.StopAQ:
		return e.execStopAQ(st.Name)
	case *sqlparse.StartAQ:
		return e.execStartAQ(st.Name)
	case *sqlparse.Show:
		return e.execShow(st.What)
	case *sqlparse.Explain:
		q, err := e.compileQuery("explain", st.Select)
		if err != nil {
			return nil, err
		}
		return &ExecResult{Kind: "plan", Names: e.explain(q)}, nil
	case *sqlparse.Select:
		q, err := e.compileQuery("adhoc", st)
		if err != nil {
			return nil, err
		}
		rows, err := e.evalOnce(ctx, q)
		if err != nil {
			return nil, err
		}
		// A statement deadline that expired mid-scan is an error for an
		// ad-hoc query, not silently truncated rows: device-level
		// timeouts skip tuples (network data independence), but the
		// statement's own bound breaching is the client's signal.
		if ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
		return &ExecResult{Kind: "rows", Rows: rows}, nil
	default:
		return nil, fmt.Errorf("core: unsupported statement %T", stmt)
	}
}

func (e *Engine) execCreateAction(st *sqlparse.CreateAction) (*ExecResult, error) {
	e.mu.Lock()
	fn, ok := e.libs[st.Library]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: no implementation registered for library %q (RegisterLibrary first)", st.Library)
	}
	var prof *profile.ActionProfile
	if name, isReg := strings.CutPrefix(st.Profile, "registry:"); isReg {
		p, ok := e.reg.Action(name)
		if !ok {
			return nil, fmt.Errorf("core: no registered profile %q", name)
		}
		clone := *p
		clone.Name = st.Name
		prof = &clone
	} else {
		p, err := profile.LoadActionFile(st.Profile)
		if err != nil {
			return nil, err
		}
		p.Name = st.Name
		prof = p
	}
	def := &ActionDef{Name: st.Name, Profile: prof, Fn: fn}
	if costs, ok := e.reg.Costs(prof.DeviceType); ok {
		if d, err := prof.EstimateCost(costs, profile.Params{}); err == nil {
			def.Coster = &FixedCoster{Duration: d}
		}
	}
	if err := e.registerActionDef(def); err != nil {
		return nil, err
	}
	return &ExecResult{Kind: "ok", Message: fmt.Sprintf("action %s registered", st.Name)}, nil
}

func (e *Engine) execCreateAQ(st *sqlparse.CreateAQ) (*ExecResult, error) {
	q, err := e.compileQuery(st.Name, st.Select)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	if _, dup := e.queries[st.Name]; dup {
		e.mu.Unlock()
		return nil, fmt.Errorf("core: query %q already registered", st.Name)
	}
	e.nextQID++
	q.ID = e.nextQID
	e.queries[st.Name] = q
	e.startQueryLocked(q)
	e.mu.Unlock()
	e.journalQuery(wal.KindCreateQuery, &wal.QueryRecord{
		ID: q.ID, Name: q.Name, SQL: q.sel.String(), EpochNS: int64(q.Epoch),
	})
	e.lg.Info("query registered", "query", q.Name, "id", q.ID, "epoch", q.Epoch)
	return &ExecResult{
		Kind:    "ok",
		Message: fmt.Sprintf("query %s registered (id %d, epoch %s)", q.Name, q.ID, q.Epoch),
		Queries: []Info{q.Info()},
	}, nil
}

func (e *Engine) execDropAQ(name string) (*ExecResult, error) {
	e.mu.Lock()
	q, ok := e.queries[name]
	if ok {
		delete(e.queries, name)
	}
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: no query %q", name)
	}
	stopQuery(q)
	e.forgetQuery(q.ID)
	e.journalQuery(wal.KindDropQuery, &wal.QueryRefRecord{Name: name})
	e.lg.Info("query dropped", "query", name)
	return &ExecResult{Kind: "ok", Message: fmt.Sprintf("query %s dropped", name)}, nil
}

func (e *Engine) execStopAQ(name string) (*ExecResult, error) {
	e.mu.Lock()
	q, ok := e.queries[name]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: no query %q", name)
	}
	stopQuery(q)
	q.mu.Lock()
	q.stopped = true
	q.mu.Unlock()
	e.forgetQuery(q.ID)
	e.journalQuery(wal.KindStopQuery, &wal.QueryRefRecord{Name: name})
	return &ExecResult{Kind: "ok", Message: fmt.Sprintf("query %s stopped", name)}, nil
}

func (e *Engine) execStartAQ(name string) (*ExecResult, error) {
	e.mu.Lock()
	q, ok := e.queries[name]
	if !ok {
		e.mu.Unlock()
		return nil, fmt.Errorf("core: no query %q", name)
	}
	q.mu.Lock()
	if q.quarantined {
		reason := q.quarReason
		q.mu.Unlock()
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: %s (DROP AQ %s to discard it)", ErrQuarantined, reason, name)
	}
	q.stopped = false
	q.mu.Unlock()
	e.startQueryLocked(q)
	e.mu.Unlock()
	e.journalQuery(wal.KindStartQuery, &wal.QueryRefRecord{Name: name})
	return &ExecResult{Kind: "ok", Message: fmt.Sprintf("query %s started", name)}, nil
}

// quarantineQuery auto-stops a query whose evaluation panicked
// QuarantineAfter times: the same catalog transition as STOP AQ (journaled,
// so a restart keeps it stopped) plus a recorded reason SHOW QUERIES and
// START AQ surface. Called from the query's own loop with no locks held.
func (e *Engine) quarantineQuery(q *Query, cause error) {
	stopQuery(q)
	q.mu.Lock()
	q.stopped = true
	q.quarantined = true
	q.quarReason = fmt.Sprintf("quarantined after %d evaluation panics, last: %v", q.panics, cause)
	reason := q.quarReason
	q.mu.Unlock()
	e.forgetQuery(q.ID)
	e.journalQuery(wal.KindStopQuery, &wal.QueryRefRecord{Name: q.Name})
	e.metrics.noteQuarantine()
	e.lg.Error("query quarantined", "query", q.Name, "id", q.ID, "reason", reason)
}

func stopQuery(q *Query) {
	q.mu.Lock()
	cancel := q.cancel
	q.cancel = nil
	q.running = false
	q.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

func (e *Engine) execShow(what string) (*ExecResult, error) {
	switch what {
	case "QUERIES":
		e.mu.Lock()
		out := make([]Info, 0, len(e.queries))
		for _, q := range e.queries {
			out = append(out, q.Info())
		}
		e.mu.Unlock()
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
		return &ExecResult{Kind: "queries", Queries: out}, nil
	case "ACTIONS":
		e.mu.Lock()
		names := make([]string, 0, len(e.actions))
		for name := range e.actions {
			names = append(names, name)
		}
		e.mu.Unlock()
		sort.Strings(names)
		return &ExecResult{Kind: "actions", Names: names}, nil
	case "DEVICES":
		var names []string
		for _, d := range e.layer.Devices() {
			line := fmt.Sprintf("%s (%s @ %s)", d.ID, d.Type, d.Addr)
			if e.live != nil {
				line += fmt.Sprintf(" [%s]", e.live.State(d.ID))
			}
			names = append(names, line)
		}
		return &ExecResult{Kind: "devices", Names: names}, nil
	case "SCANS":
		var names []string
		for _, si := range e.fabric.Sharing() {
			noun := "queries"
			if si.Queries == 1 {
				noun = "query"
			}
			names = append(names, fmt.Sprintf("%s every %s: %d %s [%s]",
				si.DeviceType, si.Epoch, si.Queries, noun, strings.Join(si.Attrs, ", ")))
		}
		return &ExecResult{Kind: "scans", Names: names}, nil
	default:
		return nil, fmt.Errorf("core: cannot SHOW %q", what)
	}
}

// explain renders a compiled query's physical plan, one line per
// operator, bottom-up: scans → filter → action/projection.
func (e *Engine) explain(q *Query) []string {
	var out []string
	out = append(out, fmt.Sprintf("continuous query (epoch %s)", q.Epoch))
	for _, bt := range q.tables {
		devices := len(e.layer.DevicesOfType(bt.deviceType))
		line := fmt.Sprintf("  scan %s as %s [%s] (%d devices registered",
			bt.deviceType, bt.alias, strings.Join(bt.attrs, ", "), devices)
		if len(bt.preds) > 0 {
			var ps []string
			for _, p := range bt.preds {
				ps = append(ps, fmt.Sprintf("%s %s %v", p.Attr, p.Op, p.Value))
			}
			line += ", routed on " + strings.Join(ps, " AND ")
		}
		out = append(out, line+")")
	}
	if q.sel.Where != nil {
		out = append(out, "  filter "+q.sel.Where.String())
	}
	for _, item := range q.actionItems {
		exclusive := ""
		if item.def.Profile.Exclusive {
			exclusive = ", exclusive lock"
		}
		out = append(out, fmt.Sprintf("  action %s on %s table (alias %s) [shared operator, scheduler %s%s]",
			item.def.Name, item.def.Profile.DeviceType, item.deviceAlias,
			e.cfg.Scheduler.Name(), exclusive))
	}
	for _, item := range q.aggItems {
		out = append(out, "  aggregate "+item.key)
	}
	for _, item := range q.projItems {
		out = append(out, "  project "+item.String())
	}
	return out
}

// QueryInfo returns the state of a registered query.
func (e *Engine) QueryInfo(name string) (Info, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	q, ok := e.queries[name]
	if !ok {
		return Info{}, false
	}
	return q.Info(), true
}
