package core

// White-box tests of the shared action operator's retry state machine:
// deterministic Manual-clock tests drive submit/dispatch directly with
// synthetic requests and a scripted action implementation, so every
// failure, retry round and deadline is exact — no sleeps, no flake.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"aorta/internal/comm"
	"aorta/internal/netsim"
	"aorta/internal/profile"
	"aorta/internal/vclock"
)

// newRetryEngine builds a started engine on a Manual clock with probing
// disabled, so dispatch trusts the request's candidate set and the test's
// action function sees every execution attempt.
func newRetryEngine(t *testing.T, mut func(*Config)) (*Engine, *vclock.Manual, *netsim.Network) {
	t.Helper()
	clk := vclock.NewManual(time.Unix(1_000_000, 0))
	network := netsim.NewNetwork(clk, 1)
	cfg := Config{
		Clock:          clk,
		Dialer:         network,
		DisableProbing: true,
		BatchWindow:    10 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Stop)
	return e, clk, network
}

// registerRetryAction installs a test action borrowing the beep profile.
func registerRetryAction(t *testing.T, e *Engine, name string, fn ActionFunc) *ActionDef {
	t.Helper()
	prof, ok := e.reg.Action(profile.ActionBeep)
	if !ok {
		t.Fatal("no beep profile in default registry")
	}
	def := &ActionDef{Name: name, Profile: prof, Fn: fn, Coster: &FixedCoster{Duration: 50 * time.Millisecond}}
	if err := e.RegisterUserAction(def); err != nil {
		t.Fatal(err)
	}
	return def
}

// newRetryRequest builds a synthetic request over the given candidates.
func newRetryRequest(e *Engine, candidates ...string) *ActionRequest {
	var cs []CandidateDevice
	for _, c := range candidates {
		cs = append(cs, CandidateDevice{ID: c})
	}
	return &ActionRequest{
		ID:         e.nextRequestID(),
		QueryID:    1,
		Query:      "test",
		Action:     "testact",
		EventKey:   "ev",
		Candidates: cs,
		CreatedAt:  e.clk.Now(),
		bind:       func(string) ([]any, error) { return nil, nil },
	}
}

// fireBatch releases the operator's armed batch window: it waits for the
// batch goroutine to block on the Manual clock, then advances past the
// window.
func fireBatch(t *testing.T, e *Engine, clk *vclock.Manual) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for clk.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("batch goroutine never armed its window timer")
		}
		time.Sleep(time.Millisecond)
	}
	clk.Advance(e.cfg.BatchWindow + time.Millisecond)
}

// awaitOutcomes polls until n outcomes are recorded.
func awaitOutcomes(t *testing.T, e *Engine, n int) []*Outcome {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for len(e.Outcomes()) < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d outcomes arrived", len(e.Outcomes()), n)
		}
		time.Sleep(time.Millisecond)
	}
	return e.Outcomes()
}

// TestShutdownDrainsPendingBatch: requests sitting in an open batch
// window when the engine stops must not vanish — each is finished with
// ErrShutdown, so submitters still observe exactly one outcome per
// request.
func TestShutdownDrainsPendingBatch(t *testing.T) {
	e, clk, _ := newRetryEngine(t, func(c *Config) { c.BatchWindow = time.Hour })
	def := registerRetryAction(t, e, "testact", func(context.Context, *ActionContext, []any) (any, error) {
		t.Error("action executed; shutdown drain should have preempted it")
		return nil, nil
	})
	op := e.operatorFor(def)
	const n = 3
	for i := 0; i < n; i++ {
		op.submit(newRetryRequest(e, "dev-1"))
	}
	// The batch goroutine is blocked on the hour-long window; stop the
	// engine while it waits.
	deadline := time.Now().Add(5 * time.Second)
	for clk.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("batch goroutine never armed its window timer")
		}
		time.Sleep(time.Millisecond)
	}
	e.Stop()

	outs := e.Outcomes()
	if len(outs) != n {
		t.Fatalf("got %d outcomes, want %d", len(outs), n)
	}
	for _, o := range outs {
		if !errors.Is(o.Err, ErrShutdown) {
			t.Errorf("outcome err = %v, want ErrShutdown", o.Err)
		}
		if o.Failure != FailStale {
			t.Errorf("outcome failure = %v, want FailStale", o.Failure)
		}
		if o.Attempts != 0 {
			t.Errorf("outcome attempts = %d, want 0 (never reached a device)", o.Attempts)
		}
	}
	if m := e.Metrics(); m.Dropped != n {
		t.Errorf("metrics dropped = %d, want %d", m.Dropped, n)
	}
}

// TestFailoverAfterTimeout: a device that accepts the dispatch but times
// out mid-action (the probed-fine-then-hung camera) must not fail the
// request — the operator re-schedules it on the remaining candidate.
func TestFailoverAfterTimeout(t *testing.T) {
	e, clk, _ := newRetryEngine(t, nil)
	var mu sync.Mutex
	var tried []string
	def := registerRetryAction(t, e, "testact", func(_ context.Context, actx *ActionContext, _ []any) (any, error) {
		mu.Lock()
		tried = append(tried, actx.DeviceID)
		mu.Unlock()
		if actx.Attempt == 1 {
			return nil, fmt.Errorf("capture: %w", comm.ErrTimeout)
		}
		return "captured", nil
	})
	op := e.operatorFor(def)
	op.submit(newRetryRequest(e, "cam-1", "cam-2"))
	fireBatch(t, e, clk)
	outs := awaitOutcomes(t, e, 1)

	o := outs[0]
	if !o.OK() {
		t.Fatalf("outcome failed: %v", o.Err)
	}
	if o.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", o.Attempts)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(tried) != 2 || tried[0] == tried[1] {
		t.Errorf("tried devices %v, want two distinct candidates", tried)
	}
	if o.DeviceID != tried[1] {
		t.Errorf("outcome device = %q, want the failover device %q", o.DeviceID, tried[1])
	}
	if m := e.Metrics(); m.Retries != 1 {
		t.Errorf("metrics retries = %d, want 1", m.Retries)
	}
}

// TestAttemptBudgetExhaustion: MaxAttempts bounds failover. With three
// candidates but a budget of two, the request stops after the second
// failure and reports the retry-aware failure kind.
func TestAttemptBudgetExhaustion(t *testing.T) {
	e, clk, _ := newRetryEngine(t, func(c *Config) { c.MaxAttempts = 2 })
	var mu sync.Mutex
	tried := make(map[string]int)
	def := registerRetryAction(t, e, "testact", func(_ context.Context, actx *ActionContext, _ []any) (any, error) {
		mu.Lock()
		tried[actx.DeviceID]++
		mu.Unlock()
		return nil, fmt.Errorf("dial: %w", comm.ErrUnreachable)
	})
	op := e.operatorFor(def)
	op.submit(newRetryRequest(e, "d1", "d2", "d3"))
	fireBatch(t, e, clk)
	outs := awaitOutcomes(t, e, 1)

	o := outs[0]
	if o.OK() {
		t.Fatal("outcome succeeded; every attempt should fail")
	}
	if o.Attempts != 2 {
		t.Errorf("attempts = %d, want exactly the budget of 2", o.Attempts)
	}
	if o.Failure != FailRetried {
		t.Errorf("failure = %v, want FailRetried", o.Failure)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(tried) != 2 {
		t.Errorf("tried %v, want two distinct devices", tried)
	}
	for dev, n := range tried {
		if n != 1 {
			t.Errorf("device %s attempted %d times, want 1 (retries go somewhere new)", dev, n)
		}
	}
}

// TestDeadlineExpiryDuringRetry: a retry never fires a stale action.
// When the deadline passes between the failed attempt and the retry
// round, the request fails with ErrStale instead of re-dispatching.
func TestDeadlineExpiryDuringRetry(t *testing.T) {
	e, clk, _ := newRetryEngine(t, nil)
	var attempts int
	var mu sync.Mutex
	def := registerRetryAction(t, e, "testact", func(context.Context, *ActionContext, []any) (any, error) {
		mu.Lock()
		attempts++
		mu.Unlock()
		// The attempt drags past the request's deadline before failing.
		clk.Advance(time.Hour)
		return nil, fmt.Errorf("dial: %w", comm.ErrUnreachable)
	})
	op := e.operatorFor(def)
	req := newRetryRequest(e, "d1", "d2")
	req.Deadline = e.clk.Now().Add(time.Minute)
	op.submit(req)
	fireBatch(t, e, clk)
	outs := awaitOutcomes(t, e, 1)

	o := outs[0]
	if !errors.Is(o.Err, ErrStale) {
		t.Errorf("err = %v, want ErrStale", o.Err)
	}
	if o.Failure != FailStale {
		t.Errorf("failure = %v, want FailStale", o.Failure)
	}
	mu.Lock()
	defer mu.Unlock()
	if attempts != 1 {
		t.Errorf("attempts = %d, want 1 (no retry after the deadline)", attempts)
	}
	if o.Attempts != 1 {
		t.Errorf("outcome attempts = %d, want 1", o.Attempts)
	}
}

// TestMetricsSnapshotJSON: the failure breakdown marshals by kind name
// (what aortactl's \metrics shows) and round-trips back into the typed
// snapshot.
func TestMetricsSnapshotJSON(t *testing.T) {
	snap := MetricsSnapshot{
		Requests:  10,
		Successes: 7,
		Failures:  map[FailureKind]int64{FailConnect: 1, FailRetried: 2},
		Retries:   3,
		Dropped:   1,
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"retried-exhausted":2`, `"connect/timeout":1`, `"Retries":3`, `"Dropped":1`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("marshaled snapshot missing %s:\n%s", want, data)
		}
	}
	var back MetricsSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Failures[FailRetried] != 2 || back.Failures[FailConnect] != 1 {
		t.Errorf("round-trip lost failure kinds: %+v", back.Failures)
	}
}

// TestQueryForgottenOnDrop: DROP AQ and STOP AQ must unregister the query
// from the shared operators' sharing sets (satellite of the unbounded
// growth bug).
func TestQueryForgottenOnDrop(t *testing.T) {
	e, _, _ := newRetryEngine(t, nil)
	def := registerRetryAction(t, e, "testact", func(context.Context, *ActionContext, []any) (any, error) {
		return nil, nil
	})
	op := e.operatorFor(def)
	for qid := 1; qid <= 5; qid++ {
		req := newRetryRequest(e, "d1")
		req.QueryID = qid
		op.mu.Lock()
		op.queries[req.QueryID] = true // what submit does, minus the batch
		op.mu.Unlock()
	}
	if got := op.SharedBy(); got != 5 {
		t.Fatalf("SharedBy = %d, want 5", got)
	}
	for qid := 1; qid <= 5; qid++ {
		e.forgetQuery(qid)
	}
	if got := op.SharedBy(); got != 0 {
		t.Errorf("SharedBy after forgetting all queries = %d, want 0", got)
	}
}
