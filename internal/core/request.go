package core

import (
	"encoding/json"
	"time"

	"aorta/internal/comm"
	"aorta/internal/devsync"
	"aorta/internal/sched"
)

// CandidateDevice is one eligible device of an action request, carrying
// the tuple that qualified it.
type CandidateDevice struct {
	ID    string
	Tuple comm.Tuple
}

// ActionRequest is one request from a query for the execution of an action
// with instantiated parameters (paper §5's definition). It flows from the
// query evaluator into the shared action operator.
type ActionRequest struct {
	ID      int64
	QueryID int
	Query   string
	Action  string
	// EventKey identifies the triggering event (the non-device part of
	// the joined row); used for grouping and reporting.
	EventKey string
	// Candidates is the eligible device set Di.
	Candidates []CandidateDevice
	// Target is the action-specific cost target (for photo: the location
	// to aim at).
	Target any
	// CreatedAt is when the event fired on the engine clock.
	CreatedAt time.Time
	// Deadline is when the request becomes stale (transient events demand
	// real-time response, paper §5.1). Zero means no deadline.
	Deadline time.Time
	// bind evaluates the action's argument list for the selected device.
	bind func(deviceID string) ([]any, error)
	// attempts counts execution attempts. It is only touched by the
	// operator's retry state machine: retry rounds are sequential and a
	// request sits in exactly one device sequence per round, so no two
	// goroutines ever write it concurrently.
	attempts int
	// failed records the devices whose execution attempt for this request
	// ended in a retryable failure; retries never return to them. The set
	// is per-request: a device that transiently failed one request stays
	// a candidate for the others.
	failed *devsync.Exclusions
}

// markFailed excludes a device from this request's future retries.
func (r *ActionRequest) markFailed(deviceID string, err error) {
	if r.failed == nil {
		r.failed = devsync.NewExclusions()
	}
	r.failed.Mark(deviceID, err)
}

// failedOn reports whether a device already failed this request.
func (r *ActionRequest) failedOn(deviceID string) bool {
	return r.failed != nil && r.failed.Excluded(deviceID)
}

// CandidateIDs returns the candidate device IDs in order.
func (r *ActionRequest) CandidateIDs() []string {
	out := make([]string, len(r.Candidates))
	for i, c := range r.Candidates {
		out[i] = c.ID
	}
	return out
}

// Coster is the per-action cost model used in device selection and
// workload scheduling: it converts a device's probed physical status into
// scheduling status and computes sequence-dependent costs.
type Coster interface {
	// ParseStatus converts a probe's raw status into the scheduling
	// status this coster chains through a device's request sequence.
	ParseStatus(raw json.RawMessage) sched.Status
	// Cost returns the estimated execution time of req on the device and
	// the device's status afterwards.
	Cost(req *ActionRequest, deviceID string, st sched.Status) (time.Duration, sched.Status)
}

// FixedCoster is the default for actions whose cost does not depend on
// device status: every execution costs Duration.
type FixedCoster struct {
	Duration time.Duration
}

var _ Coster = (*FixedCoster)(nil)

// ParseStatus implements Coster.
func (*FixedCoster) ParseStatus(json.RawMessage) sched.Status { return nil }

// Cost implements Coster.
func (f *FixedCoster) Cost(_ *ActionRequest, _ string, st sched.Status) (time.Duration, sched.Status) {
	return f.Duration, st
}

// costerEstimator adapts a Coster to the scheduler's Estimator interface.
// The scheduler's opaque requests carry the engine's ActionRequest in
// Target.
type costerEstimator struct {
	coster Coster
}

var _ sched.Estimator = (*costerEstimator)(nil)

// Estimate implements sched.Estimator.
func (ce *costerEstimator) Estimate(req *sched.Request, dev sched.DeviceID, st sched.Status) (time.Duration, sched.Status) {
	ar, ok := req.Target.(*ActionRequest)
	if !ok {
		return 0, st
	}
	return ce.coster.Cost(ar, string(dev), st)
}
