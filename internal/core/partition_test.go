package core

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"aorta/internal/comm"
	"aorta/internal/device"
	"aorta/internal/device/mote"
	"aorta/internal/geo"
	"aorta/internal/netsim"
	"aorta/internal/profile"
	"aorta/internal/sched"
)

// preferCoster makes one device strictly cheaper than the rest, pinning
// the scheduler's first choice so the failover path is deterministic.
type preferCoster struct {
	preferred string
}

func (preferCoster) ParseStatus(json.RawMessage) sched.Status { return nil }

func (pc preferCoster) Cost(_ *ActionRequest, deviceID string, st sched.Status) (time.Duration, sched.Status) {
	if deviceID == pc.preferred {
		return time.Millisecond, st
	}
	return 100 * time.Millisecond, st
}

// TestPartitionFailover partitions the preferred device off the simulated
// network and submits a batch against it: every request's first attempt
// fails to dial, every retry lands on the surviving device over the real
// transport, and no outcome is lost. Run under -race this also exercises
// the retry machinery's concurrency.
func TestPartitionFailover(t *testing.T) {
	e, clk, network := newRetryEngine(t, nil)

	// Two real motes served over netsim.
	for _, id := range []string{"m1", "m2"} {
		lis, err := network.Listen(id)
		if err != nil {
			t.Fatal(err)
		}
		m := mote.New(id, geo.Point{}, clk, mote.Config{})
		srv := device.Serve(lis, m)
		t.Cleanup(func() { _ = srv.Close() })
		if err := e.RegisterDevice(comm.DeviceInfo{
			ID: id, Type: profile.DeviceSensor, Addr: id,
		}, geo.Mount{}); err != nil {
			t.Fatal(err)
		}
	}

	prof, _ := e.reg.Action(profile.ActionBeep)
	def := &ActionDef{
		Name:    "pbeep",
		Profile: prof,
		Coster:  preferCoster{preferred: "m1"},
		Fn: func(ctx context.Context, actx *ActionContext, _ []any) (any, error) {
			return actx.Engine.layer.Exec(ctx, actx.DeviceID, "beep", nil)
		},
	}
	if err := e.RegisterUserAction(def); err != nil {
		t.Fatal(err)
	}

	// Partition the preferred mote: dials to it now fail.
	network.SetLink("m1", netsim.LinkConfig{Down: true})

	op := e.operatorFor(def)
	const n = 4
	for i := 0; i < n; i++ {
		op.submit(newRetryRequest(e, "m1", "m2"))
	}
	fireBatch(t, e, clk)

	// The surviving mote's beep sleeps on the virtual clock; pump it
	// while the outcomes trickle in.
	deadline := time.Now().Add(10 * time.Second)
	for len(e.Outcomes()) < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d outcomes arrived; metrics=%+v", len(e.Outcomes()), n, e.Metrics())
		}
		clk.Advance(50 * time.Millisecond)
		time.Sleep(time.Millisecond)
	}

	outs := e.Outcomes()
	if len(outs) != n {
		t.Fatalf("%d outcomes for %d requests — lost or duplicated", len(outs), n)
	}
	seen := make(map[int64]bool)
	for _, o := range outs {
		if seen[o.RequestID] {
			t.Errorf("request %d has more than one outcome", o.RequestID)
		}
		seen[o.RequestID] = true
		if !o.OK() {
			t.Errorf("request %d failed despite a surviving candidate: %v", o.RequestID, o.Err)
			continue
		}
		if o.DeviceID != "m2" {
			t.Errorf("request %d completed on %q, want the surviving mote m2", o.RequestID, o.DeviceID)
		}
		if o.Attempts != 2 {
			t.Errorf("request %d attempts = %d, want 2 (failover from the partitioned mote)", o.RequestID, o.Attempts)
		}
	}
	if m := e.Metrics(); m.Retries != n {
		t.Errorf("metrics retries = %d, want %d", m.Retries, n)
	}

}
