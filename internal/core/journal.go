package core

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"aorta/internal/comm"
	"aorta/internal/geo"
	"aorta/internal/sqlparse"
	"aorta/internal/wal"
)

// ErrExpired fails a journaled intent whose deadline passed while the
// engine was down: recovery refuses to fire a stale action, so the intent
// is closed with a FailExpired outcome instead of being re-dispatched.
var ErrExpired = errors.New("core: intent deadline expired before recovery")

// IntentDedupKey derives the durable identity of an action intent: query
// name, trigger-tuple hash and deadline. Two submissions of the same
// logical action (same query, same triggering event, same epoch deadline)
// collide on it, which is what lets recovery suppress duplicates — an
// outcome journaled under the key proves the intent ran.
func IntentDedupKey(query, eventKey string, deadline time.Time) string {
	h := fnv.New64a()
	h.Write([]byte(eventKey))
	var d int64
	if !deadline.IsZero() {
		d = deadline.UnixNano()
	}
	return fmt.Sprintf("%s|%016x|%d", query, h.Sum64(), d)
}

// journalGlue wires a wal.Journal into the engine. It owns the in-memory
// mirror of the journal's pending-intent set (intents appended with no
// outcome yet) and the armed flag that keeps replayed state from being
// re-journaled during recovery.
//
// Lock ordering: the journal invokes the snapshot function while holding
// its own mutex, and the snapshot function takes e.mu, glue.mu and q.mu.
// Therefore no Append may ever be issued while holding any engine lock —
// every hook below journals only after releasing them.
type journalGlue struct {
	j *wal.Journal

	mu        sync.Mutex
	armed     bool
	recovered bool
	pending   map[string]*wal.IntentRecord
	// adopted remembers dedup keys transplanted in via AdoptIntent, even
	// after their outcomes cleared them from pending, so replaying the same
	// handoff set cannot re-run a completed action. Bounded by handoff
	// volume, not workload volume.
	adopted map[string]bool
}

func newJournalGlue(j *wal.Journal) *journalGlue {
	return &journalGlue{
		j:       j,
		pending: make(map[string]*wal.IntentRecord),
		adopted: make(map[string]bool),
	}
}

func (g *journalGlue) isArmed() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.armed
}

func (g *journalGlue) didRecover() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.recovered
}

// append journals one record, logging rather than propagating failures:
// a full disk must degrade durability, not availability. A storage-level
// append failure additionally flips the engine into degraded (read-only)
// mode — mutating statements are refused until a journal write succeeds
// again — and any later successful append auto-heals the mode.
func (e *Engine) journalAppend(kind wal.Kind, payload any) {
	rec, err := wal.NewRecord(kind, payload)
	if err != nil {
		// An unmarshalable payload is a programming error, not a storage
		// fault: log it, but do not flip the engine read-only over it.
		e.lg.Error("journal append failed", "kind", kind.String(), "err", err)
		return
	}
	if err := e.glue.j.Append(rec); err != nil {
		if !errors.Is(err, wal.ErrClosed) {
			e.lg.Error("journal append failed", "kind", kind.String(), "err", err)
			e.enterDegraded(err)
		}
		return
	}
	if e.degraded.Load() {
		e.exitDegraded()
	}
}

// deviceRecordOf renders a registered device for the journal. The typed
// PTZ mount is lifted out of Static so replay can restore it with its
// concrete type; everything else in Static survives a JSON round-trip
// (asPoint tolerates map-shaped locations).
func deviceRecordOf(info comm.DeviceInfo) wal.DeviceRecord {
	dr := wal.DeviceRecord{ID: info.ID, Type: info.Type, Addr: info.Addr}
	if len(info.Static) > 0 {
		dr.Static = make(map[string]any, len(info.Static))
		for k, v := range info.Static {
			if k == "mount" {
				if m, ok := v.(geo.Mount); ok {
					mc := m
					dr.Mount = &mc
					continue
				}
			}
			dr.Static[k] = v
		}
	}
	return dr
}

func (e *Engine) journalRegisterDevice(info comm.DeviceInfo) {
	if e.glue == nil || !e.glue.isArmed() {
		return
	}
	e.journalAppend(wal.KindRegisterDevice, deviceRecordOf(info))
}

func (e *Engine) journalUnregisterDevice(id string) {
	if e.glue == nil || !e.glue.isArmed() {
		return
	}
	e.journalAppend(wal.KindUnregisterDevice, wal.DeviceRecord{ID: id})
}

// journalQuery journals a catalog mutation (create/drop/stop/start).
// Callers must have released e.mu.
func (e *Engine) journalQuery(kind wal.Kind, payload any) {
	if e.glue == nil || !e.glue.isArmed() {
		return
	}
	e.journalAppend(kind, payload)
}

// journalIntent appends the durable intent of an action request before it
// executes. The per-candidate argument lists are evaluated now — the bind
// closure does not survive a restart, its values do. Requests whose key is
// already pending (recovered intents being re-submitted) are not
// re-appended: their record is already on disk.
func (e *Engine) journalIntent(req *ActionRequest) {
	if e.glue == nil || !e.glue.isArmed() {
		return
	}
	key := IntentDedupKey(req.Query, req.EventKey, req.Deadline)
	ir := &wal.IntentRecord{
		DedupKey:  key,
		RequestID: req.ID,
		QueryID:   req.QueryID,
		Query:     req.Query,
		Action:    req.Action,
		EventKey:  req.EventKey,
		CreatedNS: req.CreatedAt.UnixNano(),
	}
	if !req.Deadline.IsZero() {
		ir.DeadlineNS = req.Deadline.UnixNano()
	}
	for _, c := range req.Candidates {
		ir.Candidates = append(ir.Candidates, wal.CandidateRecord{ID: c.ID, Tuple: c.Tuple})
		if req.bind != nil {
			if args, err := req.bind(c.ID); err == nil {
				if ir.Args == nil {
					ir.Args = make(map[string][]any, len(req.Candidates))
				}
				ir.Args[c.ID] = args
			}
		}
	}
	g := e.glue
	g.mu.Lock()
	_, already := g.pending[key]
	if !already {
		g.pending[key] = ir
	}
	g.mu.Unlock()
	if already {
		return
	}
	e.journalAppend(wal.KindIntent, ir)
}

// journalOutcome closes a journaled intent. The pending entry is removed
// before the outcome record is appended: if a compaction snapshot races in
// between, the snapshot may miss an intent whose outcome exists (harmless)
// but can never keep an intent whose outcome the compaction discarded
// (which would re-dispatch it after every subsequent crash).
//
// ErrShutdown outcomes are deliberately not journaled: a request drained
// at graceful shutdown never executed, so its intent must stay pending and
// be re-dispatched when the engine restarts.
func (e *Engine) journalOutcome(req *ActionRequest, o *Outcome) {
	if e.glue == nil || !e.glue.isArmed() || errors.Is(o.Err, ErrShutdown) {
		return
	}
	key := IntentDedupKey(req.Query, req.EventKey, req.Deadline)
	g := e.glue
	g.mu.Lock()
	_, present := g.pending[key]
	delete(g.pending, key)
	g.mu.Unlock()
	if !present {
		return // intent predates the journal (or was never journaled)
	}
	or := &wal.OutcomeRecord{
		DedupKey:  key,
		RequestID: o.RequestID,
		DeviceID:  o.DeviceID,
		Failure:   o.Failure.String(),
		Attempts:  o.Attempts,
		LatencyNS: int64(o.Latency),
	}
	if o.Err != nil {
		or.Err = o.Err.Error()
	}
	e.journalAppend(wal.KindOutcome, or)
}

// JournalPending reports how many journaled intents have no journaled
// outcome yet — the work a crash right now would hand to recovery.
func (e *Engine) JournalPending() int {
	if e.glue == nil {
		return 0
	}
	e.glue.mu.Lock()
	defer e.glue.mu.Unlock()
	return len(e.glue.pending)
}

// InFlight reports how many action requests are currently inside a
// dispatch (probing, scheduled or executing). Requests parked in a batch
// window do not count: their intents are journaled and they are exactly
// the work recovery can reconstruct.
func (e *Engine) InFlight() int64 { return e.inFlight.Load() }

// journalSnapshot renders the full engine state for segment compaction:
// device membership, the query catalog (with stopped flags) and the
// pending-intent set. Called by the journal with its own mutex held — see
// the lock-ordering note on journalGlue.
func (e *Engine) journalSnapshot() ([]byte, error) {
	snap := wal.Snapshot{NextRequestID: e.reqSeq.Load()}
	for _, d := range e.layer.Devices() {
		snap.Devices = append(snap.Devices, deviceRecordOf(*d))
	}
	e.mu.Lock()
	snap.NextQueryID = e.nextQID
	for _, q := range e.queries {
		q.mu.Lock()
		sq := wal.SnapshotQuery{
			QueryRecord: wal.QueryRecord{
				ID: q.ID, Name: q.Name, SQL: q.sel.String(), EpochNS: int64(q.Epoch),
			},
			Stopped: q.stopped,
		}
		q.mu.Unlock()
		snap.Queries = append(snap.Queries, sq)
	}
	e.mu.Unlock()
	sort.Slice(snap.Queries, func(i, j int) bool { return snap.Queries[i].ID < snap.Queries[j].ID })
	g := e.glue
	g.mu.Lock()
	for _, ir := range g.pending {
		snap.Pending = append(snap.Pending, *ir)
	}
	g.mu.Unlock()
	sort.Slice(snap.Pending, func(i, j int) bool { return snap.Pending[i].RequestID < snap.Pending[j].RequestID })
	rec, err := wal.NewRecord(wal.KindSnapshot, &snap)
	if err != nil {
		return nil, err
	}
	return rec.Data, nil
}

// RecoveryStats summarizes one journal replay.
type RecoveryStats struct {
	// Replayed counts journal records applied.
	Replayed int
	// Devices and Queries are catalog entries restored from the journal
	// (pre-registered duplicates are skipped, not counted).
	Devices int
	Queries int
	// SkippedQueries counts journaled queries that no longer compile —
	// typically a user action whose library was not re-registered before
	// recovery. They are dropped with a warning, not silently.
	SkippedQueries int
	// PendingIntents is how many journaled intents had no journaled
	// outcome: the work the crash interrupted.
	PendingIntents int
	// Redispatched is how many of those Start will re-submit (deadline
	// still live); Expired is how many were closed with FailExpired
	// outcomes instead.
	Redispatched int
	Expired      int
	// ReplayLatency is the wall-clock cost of the replay; JournalBytes is
	// the journal size it covered.
	ReplayLatency time.Duration
	JournalBytes  int64
}

// recoveredIntent is a pending intent rebuilt from the journal, waiting
// for Start to re-submit it.
type recoveredIntent struct {
	def *ActionDef
	req *ActionRequest
}

// Recover replays the journal into the engine: devices re-register, the
// query catalog is rebuilt from its journaled SQL, and every intent
// without an outcome is either staged for re-dispatch (deadline still
// live) or closed with a FailExpired outcome. It must run before Start —
// Start calls it automatically when a journal is configured — and is
// idempotent: a second call returns the first call's stats.
func (e *Engine) Recover(ctx context.Context) (RecoveryStats, error) {
	if e.glue == nil {
		return RecoveryStats{}, errors.New("core: no journal configured")
	}
	g := e.glue
	g.mu.Lock()
	if g.recovered {
		stats := e.recoveryStats
		g.mu.Unlock()
		return stats, nil
	}
	g.mu.Unlock()
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return RecoveryStats{}, errors.New("core: Recover must run before Start")
	}
	e.mu.Unlock()

	start := time.Now()
	var stats RecoveryStats
	var maxReqID int64
	pending := make(map[string]*wal.IntentRecord)
	err := g.j.Replay(func(rec wal.Record) error {
		stats.Replayed++
		return e.applyRecord(rec, pending, &stats, &maxReqID)
	})
	if err != nil {
		return RecoveryStats{}, fmt.Errorf("core: journal replay: %w", err)
	}
	stats.PendingIntents = len(pending)
	if cur := e.reqSeq.Load(); maxReqID > cur {
		e.reqSeq.Store(maxReqID)
	}

	// Partition the pending intents: live deadlines are staged for Start
	// to re-submit; expired ones are closed now, because firing a stale
	// action is worse than admitting the crash lost its moment.
	now := e.clk.Now()
	var live []*wal.IntentRecord
	var expired []*wal.IntentRecord
	for _, ir := range pending {
		if ir.DeadlineNS != 0 && now.After(time.Unix(0, ir.DeadlineNS)) {
			expired = append(expired, ir)
		} else {
			live = append(live, ir)
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].RequestID < live[j].RequestID })
	sort.Slice(expired, func(i, j int) bool { return expired[i].RequestID < expired[j].RequestID })

	g.mu.Lock()
	g.pending = pending
	g.armed = true
	g.recovered = true
	g.mu.Unlock()

	for _, ir := range expired {
		e.expireIntent(ir, now)
		stats.Expired++
	}
	for _, ir := range live {
		ri, err := e.stageIntent(ir)
		if err != nil {
			e.lg.Warn("cannot re-dispatch recovered intent", "dedup_key", ir.DedupKey, "err", err)
			g.mu.Lock()
			delete(g.pending, ir.DedupKey)
			g.mu.Unlock()
			continue
		}
		e.mu.Lock()
		e.recovered = append(e.recovered, ri)
		e.mu.Unlock()
		stats.Redispatched++
	}

	// Armed journal + fresh snapshot: compaction folds the replayed
	// history (and any state registered before recovery, e.g. by a device
	// manifest) into a single snapshot segment.
	g.j.SetSnapshotFunc(e.journalSnapshot)
	if err := g.j.Compact(); err != nil && !errors.Is(err, wal.ErrClosed) {
		e.lg.Error("post-recovery compaction failed", "err", err)
	}
	stats.ReplayLatency = time.Since(start)
	stats.JournalBytes = g.j.Stats().Bytes
	e.recoveryStats = stats
	e.lg.Info("journal recovered",
		"records", stats.Replayed, "devices", stats.Devices,
		"queries", stats.Queries, "pending", stats.PendingIntents,
		"redispatch", stats.Redispatched, "expired", stats.Expired,
		"latency", stats.ReplayLatency)
	return stats, nil
}

// applyRecord folds one journal record into engine state during replay.
func (e *Engine) applyRecord(rec wal.Record, pending map[string]*wal.IntentRecord, stats *RecoveryStats, maxReqID *int64) error {
	switch rec.Kind {
	case wal.KindSnapshot:
		var snap wal.Snapshot
		if err := rec.Decode(&snap); err != nil {
			return err
		}
		for _, dr := range snap.Devices {
			e.applyDeviceRecord(dr, stats)
		}
		for _, sq := range snap.Queries {
			e.applyQueryRecord(sq.QueryRecord, sq.Stopped, stats)
		}
		for i := range snap.Pending {
			ir := snap.Pending[i]
			pending[ir.DedupKey] = &ir
			if ir.RequestID > *maxReqID {
				*maxReqID = ir.RequestID
			}
		}
		e.mu.Lock()
		if snap.NextQueryID > e.nextQID {
			e.nextQID = snap.NextQueryID
		}
		e.mu.Unlock()
		if snap.NextRequestID > *maxReqID {
			*maxReqID = snap.NextRequestID
		}
	case wal.KindRegisterDevice:
		var dr wal.DeviceRecord
		if err := rec.Decode(&dr); err != nil {
			return err
		}
		e.applyDeviceRecord(dr, stats)
	case wal.KindUnregisterDevice:
		var dr wal.DeviceRecord
		if err := rec.Decode(&dr); err != nil {
			return err
		}
		e.UnregisterDevice(dr.ID)
	case wal.KindCreateQuery:
		var qr wal.QueryRecord
		if err := rec.Decode(&qr); err != nil {
			return err
		}
		e.applyQueryRecord(qr, false, stats)
	case wal.KindDropQuery:
		var ref wal.QueryRefRecord
		if err := rec.Decode(&ref); err != nil {
			return err
		}
		e.mu.Lock()
		q, ok := e.queries[ref.Name]
		if ok {
			delete(e.queries, ref.Name)
		}
		e.mu.Unlock()
		if ok {
			e.forgetQuery(q.ID)
		}
	case wal.KindStopQuery, wal.KindStartQuery:
		var ref wal.QueryRefRecord
		if err := rec.Decode(&ref); err != nil {
			return err
		}
		e.mu.Lock()
		if q, ok := e.queries[ref.Name]; ok {
			q.mu.Lock()
			q.stopped = rec.Kind == wal.KindStopQuery
			q.mu.Unlock()
		}
		e.mu.Unlock()
	case wal.KindIntent:
		var ir wal.IntentRecord
		if err := rec.Decode(&ir); err != nil {
			return err
		}
		pending[ir.DedupKey] = &ir
		if ir.RequestID > *maxReqID {
			*maxReqID = ir.RequestID
		}
	case wal.KindOutcome:
		var or wal.OutcomeRecord
		if err := rec.Decode(&or); err != nil {
			return err
		}
		delete(pending, or.DedupKey)
	default:
		e.lg.Warn("skipping unknown journal record", "kind", rec.Kind.String())
	}
	return nil
}

// applyDeviceRecord re-registers a journaled device. Devices already
// registered (a lab or manifest pre-populates membership before recovery)
// are kept as-is: live registration wins over journaled history.
func (e *Engine) applyDeviceRecord(dr wal.DeviceRecord, stats *RecoveryStats) {
	if _, exists := e.layer.Device(dr.ID); exists {
		return
	}
	info := comm.DeviceInfo{ID: dr.ID, Type: dr.Type, Addr: dr.Addr}
	if len(dr.Static) > 0 {
		info.Static = make(map[string]any, len(dr.Static))
		for k, v := range dr.Static {
			info.Static[k] = v
		}
	}
	var mount geo.Mount
	if dr.Mount != nil {
		mount = *dr.Mount
	}
	if err := e.RegisterDevice(info, mount); err != nil {
		e.lg.Warn("cannot restore journaled device", "device", dr.ID, "err", err)
		return
	}
	stats.Devices++
}

// applyQueryRecord rebuilds a journaled query by re-compiling its SQL.
// The parser guarantees parse→render→parse stability, so the journaled
// rendering compiles back to the query the user created.
func (e *Engine) applyQueryRecord(qr wal.QueryRecord, stopped bool, stats *RecoveryStats) {
	sel, err := parseSelect(qr.SQL)
	if err == nil {
		var q *Query
		q, err = e.compileQuery(qr.Name, sel)
		if err == nil {
			q.ID = qr.ID
			if qr.EpochNS > 0 {
				q.Epoch = time.Duration(qr.EpochNS)
			}
			q.stopped = stopped
			e.mu.Lock()
			if _, dup := e.queries[qr.Name]; !dup {
				e.queries[qr.Name] = q
				if qr.ID > e.nextQID {
					e.nextQID = qr.ID
				}
				stats.Queries++
			}
			e.mu.Unlock()
			return
		}
	}
	stats.SkippedQueries++
	e.lg.Warn("cannot restore journaled query (re-register its actions before Start?)",
		"query", qr.Name, "err", err)
}

// expireIntent closes a recovered intent whose deadline passed while the
// engine was down.
func (e *Engine) expireIntent(ir *wal.IntentRecord, now time.Time) {
	req := requestOfIntent(ir)
	outcome := &Outcome{
		RequestID: ir.RequestID,
		QueryID:   ir.QueryID,
		Query:     ir.Query,
		Action:    ir.Action,
		EventKey:  ir.EventKey,
		Deadline:  req.Deadline,
		Latency:   now.Sub(time.Unix(0, ir.CreatedNS)),
		Err:       fmt.Errorf("%w (deadline %s)", ErrExpired, time.Unix(0, ir.DeadlineNS).Format(time.RFC3339)),
		Failure:   FailExpired,
	}
	e.lg.Warn("recovered intent expired", "query", ir.Query, "action", ir.Action,
		"event", ir.EventKey, "deadline", time.Unix(0, ir.DeadlineNS))
	e.journalOutcome(req, outcome)
	e.metrics.record(outcome)
	e.metrics.noteOutcomesDropped(e.outcomes.add(outcome))
}

// stageIntent rebuilds the ActionRequest of a live recovered intent. The
// bind closure serves the argument lists journaled at intent time.
func (e *Engine) stageIntent(ir *wal.IntentRecord) (*recoveredIntent, error) {
	e.mu.Lock()
	def, ok := e.actions[ir.Action]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("action %q not registered", ir.Action)
	}
	return &recoveredIntent{def: def, req: requestOfIntent(ir)}, nil
}

// AdoptIntent transplants a pending intent journaled by another engine —
// a departed cluster shard — into this one. The record is re-journaled
// locally first, so from this point on this engine's own crash recovery
// owns the intent; then it is re-dispatched, or closed with a FailExpired
// outcome when its deadline already passed in transit. An intent whose
// dedup key is already pending here is a no-op (adopted=false, err=nil),
// which makes handoff replay idempotent. The engine must have a recovered
// journal and be started.
func (e *Engine) AdoptIntent(ir *wal.IntentRecord) (redispatched bool, err error) {
	if e.glue == nil {
		return false, errors.New("core: no journal configured")
	}
	if !e.glue.isArmed() {
		return false, errors.New("core: AdoptIntent requires a recovered journal")
	}
	e.mu.Lock()
	started := e.started
	e.mu.Unlock()
	if !started {
		return false, errors.New("core: AdoptIntent requires a started engine")
	}
	cp := *ir // decouple from the caller's replay buffer
	g := e.glue
	g.mu.Lock()
	_, dup := g.pending[cp.DedupKey]
	dup = dup || g.adopted[cp.DedupKey]
	if !dup {
		g.pending[cp.DedupKey] = &cp
		g.adopted[cp.DedupKey] = true
	}
	g.mu.Unlock()
	if dup {
		return false, nil
	}
	// Request IDs are per-engine: lift reqSeq above the adopted ID so this
	// engine's future requests never collide with it.
	for {
		cur := e.reqSeq.Load()
		if cp.RequestID <= cur || e.reqSeq.CompareAndSwap(cur, cp.RequestID) {
			break
		}
	}
	e.journalAppend(wal.KindIntent, &cp)
	now := e.clk.Now()
	if cp.DeadlineNS != 0 && now.After(time.Unix(0, cp.DeadlineNS)) {
		e.expireIntent(&cp, now)
		return false, nil
	}
	ri, err := e.stageIntent(&cp)
	if err != nil {
		// Same posture as Recover: an intent whose action is not registered
		// here cannot run; drop it from pending with the error surfaced.
		g.mu.Lock()
		delete(g.pending, cp.DedupKey)
		g.mu.Unlock()
		return false, err
	}
	e.operatorFor(ri.def).submit(ri.req)
	return true, nil
}

// parseSelect parses a journaled SELECT rendering.
func parseSelect(sql string) (*sqlparse.Select, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sqlparse.Select)
	if !ok {
		return nil, fmt.Errorf("core: journaled SQL is a %T, not a SELECT", stmt)
	}
	return sel, nil
}

// requestOfIntent converts a journaled intent back into an ActionRequest.
func requestOfIntent(ir *wal.IntentRecord) *ActionRequest {
	req := &ActionRequest{
		ID:        ir.RequestID,
		QueryID:   ir.QueryID,
		Query:     ir.Query,
		Action:    ir.Action,
		EventKey:  ir.EventKey,
		CreatedAt: time.Unix(0, ir.CreatedNS),
	}
	if ir.DeadlineNS != 0 {
		req.Deadline = time.Unix(0, ir.DeadlineNS)
	}
	for _, cr := range ir.Candidates {
		req.Candidates = append(req.Candidates, CandidateDevice{ID: cr.ID, Tuple: comm.Tuple(cr.Tuple)})
	}
	args := ir.Args
	req.bind = func(deviceID string) ([]any, error) {
		if a, ok := args[deviceID]; ok {
			return a, nil
		}
		return nil, fmt.Errorf("core: recovered intent has no journaled args for device %s", deviceID)
	}
	return req
}
