package core

// Crash-recovery tests: deterministic Manual-clock engines over a shared
// journal directory, restarted the way a crashed daemon would be. They
// pin the durability contract — the catalog replays byte-for-byte, every
// outcome-less intent is re-dispatched exactly once, expired intents are
// closed instead of fired, and a torn journal tail never blocks reopen.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"aorta/internal/comm"
	"aorta/internal/geo"
	"aorta/internal/netsim"
	"aorta/internal/vclock"
	"aorta/internal/wal"
)

// journaledEngine builds an engine (not started) over dir's journal on
// the shared Manual clock and network.
func journaledEngine(t *testing.T, dir string, clk *vclock.Manual, network *netsim.Network, mut func(*Config)) (*Engine, *wal.Journal) {
	t.Helper()
	j, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Clock:           clk,
		Dialer:          network,
		Journal:         j,
		DisableProbing:  true,
		DisableLiveness: true,
		BatchWindow:     10 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, j
}

// pumpOutcomes advances the shared Manual clock in batch-window steps
// until n outcomes are recorded. Unlike fireBatch it does not rely on the
// clock's waiter count, which stale timers from a previous engine life
// (abandoned batch windows on the same clock) would confuse.
func pumpOutcomes(t *testing.T, e *Engine, clk *vclock.Manual, n int) []*Outcome {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for len(e.Outcomes()) < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d outcomes arrived", len(e.Outcomes()), n)
		}
		clk.Advance(e.cfg.BatchWindow + time.Millisecond)
		time.Sleep(time.Millisecond)
	}
	return e.Outcomes()
}

func mustExec(t *testing.T, e *Engine, sql string) *ExecResult {
	t.Helper()
	res, err := e.Exec(context.Background(), sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res
}

// catalogView captures what SHOW QUERIES / SHOW DEVICES render, minus the
// volatile eval counters.
func catalogView(t *testing.T, e *Engine) ([]Info, []string) {
	t.Helper()
	qres := mustExec(t, e, "SHOW QUERIES")
	infos := make([]Info, len(qres.Queries))
	for i, info := range qres.Queries {
		info.Evals, info.Errors = 0, 0
		infos[i] = info
	}
	dres := mustExec(t, e, "SHOW DEVICES")
	return infos, dres.Names
}

// The query catalog and device membership must survive a restart
// byte-for-byte: SHOW QUERIES and SHOW DEVICES render identically, drops
// stay dropped, and a STOP AQ'd query comes back stopped.
func TestRecoverCatalogByteForByte(t *testing.T) {
	dir := t.TempDir()
	clk := vclock.NewManual(time.Unix(1_000_000, 0))
	network := netsim.NewNetwork(clk, 1)

	e1, j1 := journaledEngine(t, dir, clk, network, nil)
	mount := geo.Mount{Position: geo.Point{X: 1, Y: 2, Z: 3}, PanRangeDeg: 170, TiltMaxDeg: 90, RangeM: 10}
	if err := e1.RegisterDevice(deviceInfo("cam-1", "camera", "10.0.0.1:1"), mount); err != nil {
		t.Fatal(err)
	}
	if err := e1.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Mutations after Start flow through the journal as records; the
	// pre-Start camera is captured by the recovery-time snapshot.
	if err := e1.RegisterDevice(deviceInfo("mote-1", "sensor", "10.0.0.2:1"), geo.Mount{}); err != nil {
		t.Fatal(err)
	}
	if err := e1.RegisterDevice(deviceInfo("mote-2", "sensor", "10.0.0.3:1"), geo.Mount{}); err != nil {
		t.Fatal(err)
	}
	e1.UnregisterDevice("mote-2")
	mustExec(t, e1, `CREATE AQ watch AS SELECT photo(c.ip, s.loc, "shots") FROM sensor s, camera c WHERE s.accel_x > 500 AND coverage(c.id, s.loc) EVERY "60s"`)
	mustExec(t, e1, `CREATE AQ paused AS SELECT s.accel_x FROM sensor s EVERY "30s"`)
	mustExec(t, e1, `CREATE AQ doomed AS SELECT s.accel_x FROM sensor s EVERY "30s"`)
	mustExec(t, e1, "STOP AQ paused")
	mustExec(t, e1, "DROP AQ doomed")
	wantQueries, wantDevices := catalogView(t, e1)
	e1.Stop()
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	e2, j2 := journaledEngine(t, dir, clk, network, nil)
	defer j2.Close()
	stats, err := e2.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Devices counts registrations applied (mote-2's replayed register is
	// counted before its unregister removes it again).
	if stats.Devices != 3 || stats.Queries != 3 || stats.SkippedQueries != 0 {
		t.Fatalf("recovery stats = %+v, want 3 devices and 3 queries applied", stats)
	}
	if err := e2.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer e2.Stop()
	gotQueries, gotDevices := catalogView(t, e2)
	if !reflect.DeepEqual(gotQueries, wantQueries) {
		t.Errorf("SHOW QUERIES after recovery:\n got %+v\nwant %+v", gotQueries, wantQueries)
	}
	if !reflect.DeepEqual(gotDevices, wantDevices) {
		t.Errorf("SHOW DEVICES after recovery:\n got %v\nwant %v", gotDevices, wantDevices)
	}
	// The stopped query must not be running, but START AQ must revive it.
	if info, _ := e2.QueryInfo("paused"); info.Running {
		t.Error("STOP AQ'd query came back running")
	}
	mustExec(t, e2, "START AQ paused")
	if info, _ := e2.QueryInfo("paused"); !info.Running {
		t.Error("START AQ did not revive the recovered query")
	}
	// The camera's typed mount survived the JSON round-trip.
	if m, ok := e2.MountOf("cam-1"); !ok || m.Position != mount.Position {
		t.Errorf("recovered mount = %+v ok=%v, want %+v", m, ok, mount)
	}
	// Second Recover is idempotent: same stats, no double-application.
	again, err := e2.Recover(context.Background())
	if err != nil || again.Replayed != stats.Replayed {
		t.Errorf("second Recover = %+v, %v; want first call's stats", again, err)
	}
}

func deviceInfo(id, typ, addr string) comm.DeviceInfo {
	return comm.DeviceInfo{ID: id, Type: typ, Addr: addr}
}

// An intent journaled before a crash, with no outcome, is re-dispatched
// exactly once; once its outcome is journaled, further restarts leave it
// alone.
func TestRecoverRedispatchExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	clk := vclock.NewManual(time.Unix(1_000_000, 0))
	network := netsim.NewNetwork(clk, 1)

	var execs atomic.Int64
	action := func(ctx context.Context, actx *ActionContext, args []any) (any, error) {
		execs.Add(1)
		return "done", nil
	}

	e1, j1 := journaledEngine(t, dir, clk, network, nil)
	registerRetryAction(t, e1, "testact", action)
	if err := e1.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	req := newRetryRequest(e1, "dev-a", "dev-b")
	e1.operatorFor(e1.actions["testact"]).submit(req)
	if got := e1.JournalPending(); got != 1 {
		t.Fatalf("JournalPending = %d after submit, want 1", got)
	}
	// Crash while the request sits in its batch window: the process dies,
	// the intent is on disk, the action never ran.
	j1.Crash()
	e1.Stop()
	if n := execs.Load(); n != 0 {
		t.Fatalf("action ran %d times before the crash", n)
	}

	e2, j2 := journaledEngine(t, dir, clk, network, nil)
	registerRetryAction(t, e2, "testact", action)
	stats, err := e2.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.PendingIntents != 1 || stats.Redispatched != 1 || stats.Expired != 0 {
		t.Fatalf("recovery stats = %+v, want 1 pending re-dispatched", stats)
	}
	if err := e2.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	outs := pumpOutcomes(t, e2, clk, 1)
	if n := execs.Load(); n != 1 {
		t.Fatalf("action ran %d times after recovery, want exactly 1", n)
	}
	if !outs[0].OK() || outs[0].RequestID != req.ID {
		t.Fatalf("recovered outcome = %+v, want success for request %d", outs[0], req.ID)
	}
	if got := e2.JournalPending(); got != 0 {
		t.Fatalf("JournalPending = %d after outcome, want 0", got)
	}
	e2.Stop()
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	// Third life: the journaled outcome suppresses any duplicate.
	e3, j3 := journaledEngine(t, dir, clk, network, nil)
	defer j3.Close()
	registerRetryAction(t, e3, "testact", action)
	stats, err = e3.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.PendingIntents != 0 || stats.Redispatched != 0 {
		t.Fatalf("third-life stats = %+v, want nothing pending", stats)
	}
	if err := e3.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	e3.Stop()
	if n := execs.Load(); n != 1 {
		t.Fatalf("action ran %d times across three lives, want exactly 1", n)
	}
}

// A graceful Stop drains batched requests with ErrShutdown — which is
// deliberately not journaled, so the intent survives and the restarted
// engine executes it.
func TestGracefulShutdownRedispatches(t *testing.T) {
	dir := t.TempDir()
	clk := vclock.NewManual(time.Unix(1_000_000, 0))
	network := netsim.NewNetwork(clk, 1)

	var execs atomic.Int64
	action := func(ctx context.Context, actx *ActionContext, args []any) (any, error) {
		execs.Add(1)
		return nil, nil
	}

	e1, j1 := journaledEngine(t, dir, clk, network, nil)
	registerRetryAction(t, e1, "testact", action)
	if err := e1.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	e1.operatorFor(e1.actions["testact"]).submit(newRetryRequest(e1, "dev-a"))
	e1.Stop() // drains the batch window with ErrShutdown
	outs := e1.Outcomes()
	if len(outs) != 1 || !errors.Is(outs[0].Err, ErrShutdown) {
		t.Fatalf("outcomes at shutdown = %+v, want one ErrShutdown", outs)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	e2, j2 := journaledEngine(t, dir, clk, network, nil)
	defer j2.Close()
	registerRetryAction(t, e2, "testact", action)
	stats, err := e2.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Redispatched != 1 {
		t.Fatalf("recovery stats = %+v, want the drained intent re-dispatched", stats)
	}
	if err := e2.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer e2.Stop()
	pumpOutcomes(t, e2, clk, 1)
	if n := execs.Load(); n != 1 {
		t.Fatalf("action ran %d times, want 1 (after the restart)", n)
	}
}

// An intent whose deadline passed while the engine was down is closed
// with a FailExpired outcome, never fired.
func TestRecoverExpiresStaleIntents(t *testing.T) {
	dir := t.TempDir()
	clk := vclock.NewManual(time.Unix(1_000_000, 0))
	network := netsim.NewNetwork(clk, 1)

	var execs atomic.Int64
	action := func(ctx context.Context, actx *ActionContext, args []any) (any, error) {
		execs.Add(1)
		return nil, nil
	}

	e1, j1 := journaledEngine(t, dir, clk, network, nil)
	registerRetryAction(t, e1, "testact", action)
	if err := e1.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	req := newRetryRequest(e1, "dev-a")
	req.Deadline = clk.Now().Add(10 * time.Second)
	e1.operatorFor(e1.actions["testact"]).submit(req)
	j1.Crash()
	e1.Stop()

	clk.Advance(time.Minute) // the deadline passes while "down"

	e2, j2 := journaledEngine(t, dir, clk, network, nil)
	defer j2.Close()
	registerRetryAction(t, e2, "testact", action)
	stats, err := e2.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.PendingIntents != 1 || stats.Expired != 1 || stats.Redispatched != 0 {
		t.Fatalf("recovery stats = %+v, want the intent expired", stats)
	}
	outs := e2.Outcomes()
	if len(outs) != 1 || outs[0].Failure != FailExpired || !errors.Is(outs[0].Err, ErrExpired) {
		t.Fatalf("outcomes = %+v, want one FailExpired", outs)
	}
	if n := execs.Load(); n != 0 {
		t.Fatalf("expired intent still executed %d times", n)
	}
	// The expiry outcome itself is journaled: the intent never comes back.
	if err := e2.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	e2.Stop()
	if got := e2.JournalPending(); got != 0 {
		t.Fatalf("JournalPending = %d after expiry, want 0", got)
	}
}

// A torn final record — the classic mid-write crash — is truncated on
// reopen and recovery proceeds over everything before it.
func TestRecoverTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	clk := vclock.NewManual(time.Unix(1_000_000, 0))
	network := netsim.NewNetwork(clk, 1)

	e1, j1 := journaledEngine(t, dir, clk, network, nil)
	if err := e1.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	mustExec(t, e1, `CREATE AQ survivor AS SELECT s.accel_x FROM sensor s EVERY "30s"`)
	e1.Stop()
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail of the newest segment.
	entries, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	newest := entries[len(entries)-1]
	f, err := os.OpenFile(newest, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x00, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	e2, j2 := journaledEngine(t, dir, clk, network, nil)
	defer j2.Close()
	stats, err := e2.Recover(context.Background())
	if err != nil {
		t.Fatalf("recovery over torn tail: %v", err)
	}
	if stats.Queries != 1 {
		t.Fatalf("recovery stats = %+v, want the query restored", stats)
	}
	if j2.Stats().TornTailBytes != 3 {
		t.Errorf("TornTailBytes = %d, want 3", j2.Stats().TornTailBytes)
	}
}

// The data-directory lock: a second engine cannot open a journal a live
// one holds.
func TestJournalDirLockedAgainstSecondEngine(t *testing.T) {
	dir := t.TempDir()
	j, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := wal.Open(dir, wal.Options{}); !errors.Is(err, wal.ErrLocked) {
		t.Fatalf("second Open = %v, want ErrLocked", err)
	}
}
