package core

// Engine-level failure-detector tests: deterministic Manual-clock tests
// that drive the detector and the shared action operator directly, so
// Down devices provably vanish from scheduling, coverage collapse yields
// FailNoDevice, recovery re-expands the candidate set, and the passive
// evidence pipeline (pool → observer → detector → gate) closes the loop.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"aorta/internal/comm"
	"aorta/internal/liveness"
)

// markDown feeds the detector enough failure evidence to take a device
// to Down.
func markDown(e *Engine, id string) {
	for i := 0; i < liveness.DefaultDownAfter; i++ {
		e.live.Observe(id, false)
	}
}

// TestDownDeviceSkippedInScheduling: a Down candidate is filtered before
// dispatch — the request lands on the healthy device on the first
// attempt, no wasted execution on the dead one.
func TestDownDeviceSkippedInScheduling(t *testing.T) {
	e, clk, _ := newRetryEngine(t, nil)
	markDown(e, "d1")
	if got := e.live.State("d1"); got != liveness.Down {
		t.Fatalf("state(d1) = %v, want Down", got)
	}

	var mu sync.Mutex
	var tried []string
	def := registerRetryAction(t, e, "testact", func(_ context.Context, actx *ActionContext, _ []any) (any, error) {
		mu.Lock()
		tried = append(tried, actx.DeviceID)
		mu.Unlock()
		return "ok", nil
	})
	op := e.operatorFor(def)
	op.submit(newRetryRequest(e, "d1", "d2"))
	fireBatch(t, e, clk)
	o := awaitOutcomes(t, e, 1)[0]

	if !o.OK() {
		t.Fatalf("outcome failed: %v", o.Err)
	}
	if o.DeviceID != "d2" {
		t.Errorf("outcome device = %q, want the healthy d2", o.DeviceID)
	}
	if o.Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (the Down device was never tried)", o.Attempts)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, dev := range tried {
		if dev == "d1" {
			t.Error("the Down device d1 was dispatched to")
		}
	}
}

// TestAllCandidatesDownYieldsNoDevice: when the detector holds every
// candidate Down, the request fails FailNoDevice without any execution
// attempt — the graceful-degradation floor.
func TestAllCandidatesDownYieldsNoDevice(t *testing.T) {
	e, clk, _ := newRetryEngine(t, nil)
	markDown(e, "d1")
	markDown(e, "d2")

	def := registerRetryAction(t, e, "testact", func(context.Context, *ActionContext, []any) (any, error) {
		t.Error("action executed on a Down device")
		return nil, nil
	})
	op := e.operatorFor(def)
	op.submit(newRetryRequest(e, "d1", "d2"))
	fireBatch(t, e, clk)
	o := awaitOutcomes(t, e, 1)[0]

	if o.OK() {
		t.Fatal("outcome succeeded with every candidate Down")
	}
	if o.Failure != FailNoDevice {
		t.Errorf("failure = %v, want FailNoDevice", o.Failure)
	}
	if o.Attempts != 0 {
		t.Errorf("attempts = %d, want 0 (no device ever tried)", o.Attempts)
	}
	if !errors.Is(o.Err, errNoCandidates) {
		t.Errorf("err = %v, want errNoCandidates", o.Err)
	}
}

// TestRecoveryReexpandsCandidates: one success observation re-admits a
// Down device, and the next request can use it again.
func TestRecoveryReexpandsCandidates(t *testing.T) {
	e, clk, _ := newRetryEngine(t, nil)
	markDown(e, "d1")
	e.live.Observe("d1", true) // recovery evidence
	if got := e.live.State("d1"); got != liveness.Up {
		t.Fatalf("state(d1) after recovery = %v, want Up", got)
	}

	def := registerRetryAction(t, e, "testact", func(context.Context, *ActionContext, []any) (any, error) {
		return "ok", nil
	})
	op := e.operatorFor(def)
	op.submit(newRetryRequest(e, "d1"))
	fireBatch(t, e, clk)
	o := awaitOutcomes(t, e, 1)[0]
	if !o.OK() || o.DeviceID != "d1" {
		t.Errorf("outcome = (%q, %v), want success on the recovered d1", o.DeviceID, o.Err)
	}
}

// TestPassiveEvidenceClosesTheLoop: transport failures observed by the
// pooled comm layer feed the engine's detector, the gate then sheds the
// Down device's traffic without dialing, and an AdmitTrial window later
// re-opens the gate — all on the Manual clock.
func TestPassiveEvidenceClosesTheLoop(t *testing.T) {
	e, clk, _ := newRetryEngine(t, func(c *Config) {
		c.DialBackoff = -1 // isolate the gate from the dial-failure cache
	})
	// Registered device with no listener: every dial fails.
	if err := e.layer.Register(comm.DeviceInfo{ID: "ghost", Type: "sensor", Addr: "ghost"}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < liveness.DefaultDownAfter; i++ {
		if _, err := e.layer.Probe(ctx, "ghost"); err == nil {
			t.Fatal("probe of a listener-less device succeeded")
		}
	}
	if got := e.live.State("ghost"); got != liveness.Down {
		t.Fatalf("state(ghost) = %v, want Down after %d dial failures", got, liveness.DefaultDownAfter)
	}

	// The next operation is shed by the gate without touching the network.
	dials := e.CommMetrics().Dials
	_, err := e.layer.Probe(ctx, "ghost")
	if !errors.Is(err, comm.ErrShed) || !errors.Is(err, comm.ErrUnreachable) {
		t.Fatalf("err = %v, want ErrShed wrapping ErrUnreachable", err)
	}
	m := e.CommMetrics()
	if m.Dials != dials {
		t.Errorf("gate shed still dialed (%d → %d dials)", dials, m.Dials)
	}
	if m.GateShed == 0 {
		t.Error("GateShed metric not incremented")
	}

	// After the DownRetry window one trial is admitted (and fails again —
	// still no listener), keeping the device Down.
	clk.Advance(liveness.DefaultDownRetry + time.Second)
	if _, err := e.layer.Probe(ctx, "ghost"); errors.Is(err, comm.ErrShed) {
		t.Fatal("trial operation was shed after the DownRetry window")
	}
	if got := e.live.State("ghost"); got != liveness.Down {
		t.Errorf("state(ghost) after failed trial = %v, want Down", got)
	}
}

// TestOutcomesDroppedOnSlowSubscriber: a full subscriber channel never
// blocks the executor; the overflow is counted in OutcomesDropped.
func TestOutcomesDroppedOnSlowSubscriber(t *testing.T) {
	e, clk, _ := newRetryEngine(t, nil)
	ch := e.SubscribeOutcomes(1) // room for exactly one delivery
	def := registerRetryAction(t, e, "testact", func(context.Context, *ActionContext, []any) (any, error) {
		return "ok", nil
	})
	op := e.operatorFor(def)
	const n = 3
	for i := 0; i < n; i++ {
		op.submit(newRetryRequest(e, "d1"))
	}
	fireBatch(t, e, clk)
	awaitOutcomes(t, e, n)

	if got := e.Metrics().OutcomesDropped; got != n-1 {
		t.Errorf("OutcomesDropped = %d, want %d", got, n-1)
	}
	if len(ch) != 1 {
		t.Errorf("subscriber channel holds %d outcomes, want 1", len(ch))
	}
}

// TestLivenessDisabled: DisableLiveness leaves no detector, no gate and
// no scheduling filter.
func TestLivenessDisabled(t *testing.T) {
	e, _, _ := newRetryEngine(t, func(c *Config) { c.DisableLiveness = true })
	if e.Liveness() != nil {
		t.Error("Liveness() non-nil with DisableLiveness")
	}
	if e.LivenessSnapshot() != nil {
		t.Error("LivenessSnapshot() non-nil with DisableLiveness")
	}
}
