package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"aorta/internal/sched"
)

// actionOperator is the shared action operator of paper §2.3: all
// concurrent queries embedding the same action share one operator, so
// their requests are batched and scheduled together (group optimization).
type actionOperator struct {
	engine *Engine
	def    *ActionDef

	mu       sync.Mutex
	pending  []*ActionRequest
	flushing bool
	queries  map[int]bool // queries sharing this operator
}

func newActionOperator(e *Engine, def *ActionDef) *actionOperator {
	return &actionOperator{engine: e, def: def, queries: make(map[int]bool)}
}

// submit enqueues a request. The first request of a batch arms the batch
// window; when it elapses all pending requests are scheduled together.
func (op *actionOperator) submit(req *ActionRequest) {
	op.mu.Lock()
	op.pending = append(op.pending, req)
	op.queries[req.QueryID] = true
	arm := !op.flushing
	if arm {
		op.flushing = true
	}
	op.mu.Unlock()
	if !arm {
		return
	}
	e := op.engine
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		select {
		case <-e.runCtx.Done():
			return
		case <-e.clk.After(e.cfg.BatchWindow):
		}
		op.mu.Lock()
		batch := op.pending
		op.pending = nil
		op.flushing = false
		op.mu.Unlock()
		op.dispatch(e.runCtx, batch)
	}()
}

// SharedBy returns how many distinct queries have routed requests through
// this operator.
func (op *actionOperator) SharedBy() int {
	op.mu.Lock()
	defer op.mu.Unlock()
	return len(op.queries)
}

// dispatch probes candidates, runs the workload scheduler over the batch
// and executes the resulting per-device sequences.
func (op *actionOperator) dispatch(ctx context.Context, batch []*ActionRequest) {
	if len(batch) == 0 {
		return
	}
	e := op.engine

	// 1. Probe the union of candidate devices (paper §4's probing
	// mechanism): availability check + physical status acquisition.
	available := make(map[string]sched.Status)
	if e.cfg.Probing {
		var ids []string
		seen := make(map[string]bool)
		for _, req := range batch {
			for _, c := range req.Candidates {
				if !seen[c.ID] {
					seen[c.ID] = true
					ids = append(ids, c.ID)
				}
			}
		}
		report := e.prober.ProbeCandidates(ctx, ids)
		if len(report.Excluded) > 0 {
			e.lg.Warn("probe excluded candidates", "action", op.def.Name, "excluded", report.Excluded)
		}
		if len(report.Suppressed) > 0 {
			e.lg.Debug("probe skipped backed-off candidates without dialing",
				"action", op.def.Name, "suppressed", report.Suppressed)
		}
		for _, c := range report.Available {
			if c.Busy && e.cfg.ExcludeBusy {
				continue
			}
			available[c.ID] = op.def.Coster.ParseStatus(c.Status)
		}
	} else {
		// Probing disabled (ablation): trust the registry blindly.
		for _, req := range batch {
			for _, c := range req.Candidates {
				if _, ok := available[c.ID]; !ok {
					available[c.ID] = op.def.Coster.ParseStatus(nil)
				}
			}
		}
	}

	// 2. Build the scheduling problem over the available candidates.
	var (
		schedReqs []*sched.Request
		devSet    = make(map[sched.DeviceID]bool)
		initial   = make(map[sched.DeviceID]sched.Status)
	)
	for i, req := range batch {
		var cands []sched.DeviceID
		for _, c := range req.Candidates {
			if st, ok := available[c.ID]; ok {
				id := sched.DeviceID(c.ID)
				cands = append(cands, id)
				if !devSet[id] {
					devSet[id] = true
					initial[id] = st
				}
			}
		}
		if len(cands) == 0 {
			// Every candidate is unavailable: the request fails now
			// rather than hanging on a malfunctioning device (paper §4).
			op.finish(req, "", nil, fmt.Errorf("%w: no available candidate device", errNoCandidates))
			continue
		}
		schedReqs = append(schedReqs, &sched.Request{
			ID:         i + 1,
			QueryID:    req.QueryID,
			Action:     req.Action,
			Target:     req,
			Candidates: cands,
		})
	}
	if len(schedReqs) == 0 {
		return
	}
	var devices []sched.DeviceID
	for d := range devSet {
		devices = append(devices, d)
	}
	sortDeviceIDs(devices)

	e.lg.Debug("dispatching batch", "action", op.def.Name,
		"requests", len(schedReqs), "devices", len(devices))
	problem := sched.NewProblem(schedReqs, devices, initial, &costerEstimator{coster: op.def.Coster})
	assignment, err := e.cfg.Scheduler.Schedule(problem, rand.New(rand.NewSource(e.nextSeed())))
	if err != nil {
		// Scheduling failure fails the whole batch.
		for _, sr := range schedReqs {
			op.finish(sr.Target.(*ActionRequest), "", nil, fmt.Errorf("core: scheduling failed: %w", err))
		}
		return
	}

	// 3. Execute. With locking enabled each device's sequence runs in
	// order under the device lock; with locking disabled every request
	// fires immediately — reproducing the §6.2 interference.
	for dev, seq := range assignment.Order {
		if len(seq) == 0 {
			continue
		}
		devID := string(dev)
		if e.cfg.Locking {
			e.wg.Add(1)
			go func(devID string, seq []*sched.Request) {
				defer e.wg.Done()
				for _, sr := range seq {
					op.executeLocked(ctx, devID, sr.Target.(*ActionRequest))
				}
			}(devID, seq)
		} else {
			for _, sr := range seq {
				e.wg.Add(1)
				go func(devID string, ar *ActionRequest) {
					defer e.wg.Done()
					op.execute(ctx, devID, ar)
				}(devID, sr.Target.(*ActionRequest))
			}
		}
	}
}

var errNoCandidates = errors.New("core: all candidate devices unavailable")

// executeLocked runs one request under the device lock. With
// Config.LockLease set the lock is a TTL lease, so a hung action cannot
// pin the device forever.
func (op *actionOperator) executeLocked(ctx context.Context, devID string, req *ActionRequest) {
	e := op.engine
	holder := fmt.Sprintf("q%d/r%d", req.QueryID, req.ID)
	if ttl := e.cfg.LockLease; ttl > 0 {
		lease, err := e.locks.LockWithLease(ctx, devID, holder, ttl)
		if err != nil {
			op.finish(req, devID, nil, err)
			return
		}
		defer func() {
			_ = lease.Release()
		}()
		op.execute(ctx, devID, req)
		return
	}
	if err := e.locks.Lock(ctx, devID, holder); err != nil {
		op.finish(req, devID, nil, err)
		return
	}
	defer func() {
		_ = e.locks.Unlock(devID, holder)
	}()
	op.execute(ctx, devID, req)
}

// execute runs one request on the selected device and records the outcome.
func (op *actionOperator) execute(ctx context.Context, devID string, req *ActionRequest) {
	e := op.engine
	if !req.Deadline.IsZero() && e.clk.Now().After(req.Deadline) {
		op.finish(req, devID, nil, ErrStale)
		return
	}
	args, err := req.bind(devID)
	if err != nil {
		op.finish(req, devID, nil, fmt.Errorf("core: bind args: %w", err))
		return
	}
	actx := &ActionContext{Engine: e, QueryID: req.QueryID, RequestID: req.ID, DeviceID: devID}
	result, err := op.def.Fn(ctx, actx, args)
	op.finish(req, devID, result, err)
}

// finish records the outcome of a request.
func (op *actionOperator) finish(req *ActionRequest, devID string, result any, err error) {
	e := op.engine
	outcome := &Outcome{
		RequestID: req.ID,
		QueryID:   req.QueryID,
		Query:     req.Query,
		Action:    req.Action,
		DeviceID:  devID,
		EventKey:  req.EventKey,
		Latency:   e.clk.Since(req.CreatedAt),
		Result:    result,
		Err:       err,
		Failure:   classifyFailure(err),
	}
	if err != nil {
		e.lg.Warn("action failed", "action", req.Action, "query", req.Query,
			"device", devID, "failure", outcome.Failure.String(), "err", err)
	} else {
		e.lg.Debug("action completed", "action", req.Action, "query", req.Query,
			"device", devID, "latency", outcome.Latency)
	}
	e.metrics.record(outcome)
	e.outcomes.add(outcome)
}

func sortDeviceIDs(ids []sched.DeviceID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
