package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"aorta/internal/sched"
)

// actionOperator is the shared action operator of paper §2.3: all
// concurrent queries embedding the same action share one operator, so
// their requests are batched and scheduled together (group optimization).
//
// Execution is failure-aware: a request whose attempt ends in a retryable
// failure (connect/timeout, lock-lease loss, device-reported busy) is
// re-dispatched over its remaining probed candidates — the scheduler runs
// again on the residual batch — until it succeeds, its attempt budget
// (Config.MaxAttempts) runs out, its deadline passes, or no candidate
// survives. Every submitted request produces exactly one Outcome, even
// across Engine.Stop.
type actionOperator struct {
	engine *Engine
	def    *ActionDef

	mu       sync.Mutex
	pending  []*ActionRequest
	flushing bool
	queries  map[int]bool // queries sharing this operator
}

func newActionOperator(e *Engine, def *ActionDef) *actionOperator {
	return &actionOperator{engine: e, def: def, queries: make(map[int]bool)}
}

// submit enqueues a request. The first request of a batch arms the batch
// window; when it elapses all pending requests are scheduled together.
// With a journal configured the request's intent is written ahead of
// everything else, so a crash anywhere after this point hands the request
// to recovery instead of losing it.
func (op *actionOperator) submit(req *ActionRequest) {
	op.engine.journalIntent(req)
	op.mu.Lock()
	op.pending = append(op.pending, req)
	op.queries[req.QueryID] = true
	arm := !op.flushing
	if arm {
		op.flushing = true
	}
	op.mu.Unlock()
	if !arm {
		return
	}
	e := op.engine
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		select {
		case <-e.runCtx.Done():
			// The engine stopped while the batch window was open: drain the
			// pending batch instead of dropping it, so Outcomes() and
			// subscribers still see one outcome per request.
			op.drainPending()
			return
		case <-e.clk.After(e.cfg.BatchWindow):
		}
		op.mu.Lock()
		batch := op.pending
		op.pending = nil
		op.flushing = false
		op.mu.Unlock()
		op.dispatch(e.runCtx, batch)
	}()
}

// drainPending fails every queued request with ErrShutdown.
func (op *actionOperator) drainPending() {
	op.mu.Lock()
	batch := op.pending
	op.pending = nil
	op.flushing = false
	op.mu.Unlock()
	for _, req := range batch {
		op.finish(req, "", nil, ErrShutdown)
	}
}

// SharedBy returns how many distinct queries have routed requests through
// this operator.
func (op *actionOperator) SharedBy() int {
	op.mu.Lock()
	defer op.mu.Unlock()
	return len(op.queries)
}

// forgetQuery removes a dropped or stopped query from the sharing set so
// SHOW and the group-optimization stats stay accurate on long-running
// daemons. The query re-registers automatically if it is started again
// and submits a new request.
func (op *actionOperator) forgetQuery(qid int) {
	op.mu.Lock()
	defer op.mu.Unlock()
	delete(op.queries, qid)
}

// dispatch probes candidates, then loops schedule→execute rounds over the
// batch until every request has an outcome: round 1 schedules the full
// batch; each later round re-schedules the requests whose attempt failed
// retryably, over their remaining probed candidates, excluding every
// device that already failed during this dispatch.
func (op *actionOperator) dispatch(ctx context.Context, batch []*ActionRequest) {
	if len(batch) == 0 {
		return
	}
	e := op.engine
	e.inFlight.Add(int64(len(batch)))
	defer e.inFlight.Add(-int64(len(batch)))

	// 1. Probe the union of candidate devices (paper §4's probing
	// mechanism): availability check + physical status acquisition.
	available := op.probeBatch(ctx, batch)

	// 2. Build the scheduling problem over the available candidates.
	var (
		schedReqs []*sched.Request
		devSet    = make(map[sched.DeviceID]bool)
		initial   = make(map[sched.DeviceID]sched.Status)
	)
	for i, req := range batch {
		var cands []sched.DeviceID
		for _, c := range req.Candidates {
			if st, ok := available[c.ID]; ok {
				id := sched.DeviceID(c.ID)
				cands = append(cands, id)
				if !devSet[id] {
					devSet[id] = true
					initial[id] = st
				}
			}
		}
		if len(cands) == 0 {
			// Every candidate is unavailable: the request fails now
			// rather than hanging on a malfunctioning device (paper §4).
			op.finish(req, "", nil, fmt.Errorf("%w: no available candidate device", errNoCandidates))
			continue
		}
		schedReqs = append(schedReqs, &sched.Request{
			ID:         i + 1,
			QueryID:    req.QueryID,
			Action:     req.Action,
			Target:     req,
			Candidates: cands,
		})
	}
	if len(schedReqs) == 0 {
		return
	}
	var devices []sched.DeviceID
	for d := range devSet {
		devices = append(devices, d)
	}
	sortDeviceIDs(devices)
	problem := sched.NewProblem(schedReqs, devices, initial, &costerEstimator{coster: op.def.Coster})

	// 3. Schedule→execute rounds. Each request remembers the devices that
	// failed it (a retry must go somewhere new), but the exclusion is
	// per-request: a transient failure for one request does not blacklist
	// the device for the rest of the batch.
	maxAttempts := e.cfg.MaxAttempts
	for round := 1; len(problem.Requests) > 0; round++ {
		if ctx.Err() != nil {
			op.finishAll(problem.Requests, ErrShutdown)
			return
		}
		e.lg.Debug("dispatching batch", "action", op.def.Name, "round", round,
			"requests", len(problem.Requests), "devices", len(problem.Devices))
		assignment, err := e.cfg.Scheduler.Schedule(problem, rand.New(rand.NewSource(e.nextSeed())))
		if err != nil {
			// Scheduling failure fails the whole round.
			op.finishAll(problem.Requests, fmt.Errorf("core: scheduling failed: %w", err))
			return
		}

		// Execute the round and split outcomes into finished vs retryable.
		var retry []*sched.Request
		for _, at := range op.executeRound(ctx, assignment) {
			req := at.req
			if at.err == nil || !retryableFailure(at.err) {
				op.finish(req, at.devID, at.result, at.err)
				continue
			}
			req.markFailed(at.devID, at.err)
			if req.attempts >= maxAttempts {
				op.finish(req, at.devID, at.result, at.err)
				continue
			}
			if !req.Deadline.IsZero() && e.clk.Now().After(req.Deadline) {
				// Deadline-aware re-dispatch: a retry never fires a stale
				// action (paper §5.1's real-time requirement).
				op.finish(req, at.devID, nil,
					fmt.Errorf("%w: deadline passed after %d attempt(s), last failure: %v", ErrStale, req.attempts, at.err))
				continue
			}
			e.lg.Info("action attempt failed, re-dispatching", "action", req.Action,
				"query", req.Query, "device", at.devID, "attempt", req.attempts, "err", at.err)
			retry = append(retry, at.sr)
		}
		if len(retry) == 0 {
			return
		}

		// Residual problem: surviving requests over their remaining probed
		// candidates, statuses reused from the original probe round.
		residual, starved := sched.Residual(problem, retry, func(sr *sched.Request, d sched.DeviceID) bool {
			return sr.Target.(*ActionRequest).failedOn(string(d))
		})
		for _, sr := range starved {
			req := sr.Target.(*ActionRequest)
			op.finish(req, "", nil,
				fmt.Errorf("%w: no surviving candidate after %d attempt(s)", errNoCandidates, req.attempts))
		}
		if residual == nil {
			return
		}
		problem = residual
	}
}

// probeBatch probes the union of the batch's candidate devices and returns
// the available ones with their parsed physical status. With probing
// disabled (ablation) the registry is trusted blindly.
func (op *actionOperator) probeBatch(ctx context.Context, batch []*ActionRequest) map[string]sched.Status {
	e := op.engine
	available := make(map[string]sched.Status)
	// Failure-detector filter (both paths): Down devices never enter the
	// scheduling problem, so batches stop burning dial timeouts on
	// corpses the moment detection fires. Re-admission flips them back
	// into the candidate pool on the next batch.
	skipped := 0
	usable := func(id string) bool {
		if e.live != nil && e.live.DownDevice(id) {
			skipped++
			return false
		}
		return true
	}
	if !e.cfg.Probing {
		for _, req := range batch {
			for _, c := range req.Candidates {
				if _, ok := available[c.ID]; !ok && usable(c.ID) {
					available[c.ID] = op.def.Coster.ParseStatus(nil)
				}
			}
		}
		if skipped > 0 {
			e.lg.Debug("skipped down candidates", "action", op.def.Name, "skipped", skipped)
		}
		return available
	}
	var ids []string
	seen := make(map[string]bool)
	for _, req := range batch {
		for _, c := range req.Candidates {
			if !seen[c.ID] {
				seen[c.ID] = true
				if usable(c.ID) {
					ids = append(ids, c.ID)
				}
			}
		}
	}
	if skipped > 0 {
		e.lg.Debug("skipped down candidates", "action", op.def.Name, "skipped", skipped)
	}
	report := e.prober.ProbeCandidates(ctx, ids)
	if len(report.Excluded) > 0 {
		e.lg.Warn("probe excluded candidates", "action", op.def.Name, "excluded", report.Excluded)
	}
	if len(report.Suppressed) > 0 {
		e.lg.Debug("probe skipped backed-off candidates without dialing",
			"action", op.def.Name, "suppressed", report.Suppressed)
	}
	for _, c := range report.Available {
		if c.Busy && e.cfg.ExcludeBusy {
			continue
		}
		available[c.ID] = op.def.Coster.ParseStatus(c.Status)
	}
	return available
}

// attemptOutcome is the result of one execution attempt of one request.
type attemptOutcome struct {
	sr     *sched.Request
	req    *ActionRequest
	devID  string
	result any
	err    error
}

// executeRound runs one scheduled round and returns one attemptOutcome per
// request. With locking enabled each device's sequence runs in order under
// the device lock. With locking disabled the sequence still runs in order
// (lock-free) unless the interference ablation is on, in which case every
// request fires immediately — reproducing the §6.2 interference.
func (op *actionOperator) executeRound(ctx context.Context, assignment *sched.Assignment) []*attemptOutcome {
	e := op.engine
	var total int
	for _, seq := range assignment.Order {
		total += len(seq)
	}
	results := make(chan *attemptOutcome, total)
	report := func(sr *sched.Request, devID string, result any, err error) {
		results <- &attemptOutcome{sr: sr, req: sr.Target.(*ActionRequest), devID: devID, result: result, err: err}
	}
	for dev, seq := range assignment.Order {
		if len(seq) == 0 {
			continue
		}
		devID := string(dev)
		switch {
		case e.cfg.Locking:
			e.wg.Add(1)
			go func(devID string, seq []*sched.Request) {
				defer e.wg.Done()
				for _, sr := range seq {
					result, err := op.attemptLocked(ctx, devID, sr.Target.(*ActionRequest))
					report(sr, devID, result, err)
				}
			}(devID, seq)
		case e.cfg.Interference:
			for _, sr := range seq {
				e.wg.Add(1)
				go func(devID string, sr *sched.Request) {
					defer e.wg.Done()
					result, err := op.attempt(ctx, devID, sr.Target.(*ActionRequest))
					report(sr, devID, result, err)
				}(devID, sr)
			}
		default:
			e.wg.Add(1)
			go func(devID string, seq []*sched.Request) {
				defer e.wg.Done()
				for _, sr := range seq {
					result, err := op.attempt(ctx, devID, sr.Target.(*ActionRequest))
					report(sr, devID, result, err)
				}
			}(devID, seq)
		}
	}
	out := make([]*attemptOutcome, 0, total)
	for i := 0; i < total; i++ {
		out = append(out, <-results)
	}
	return out
}

var errNoCandidates = errors.New("core: all candidate devices unavailable")

// attemptLocked runs one attempt under the device lock. With
// Config.LockLease set the lock is a TTL lease, so a hung action cannot
// pin the device forever; losing the lease mid-action fails the attempt
// retryably, because another holder may have moved the device under it.
func (op *actionOperator) attemptLocked(ctx context.Context, devID string, req *ActionRequest) (any, error) {
	e := op.engine
	holder := fmt.Sprintf("q%d/r%d", req.QueryID, req.ID)
	if ttl := e.cfg.LockLease; ttl > 0 {
		lease, err := e.locks.LockWithLease(ctx, devID, holder, ttl)
		if err != nil {
			return nil, err
		}
		result, aerr := op.attempt(ctx, devID, req)
		if rerr := lease.Release(); rerr != nil && aerr == nil {
			return result, fmt.Errorf("core: lock lease lost during %s on %s: %w", req.Action, devID, rerr)
		}
		return result, aerr
	}
	if err := e.locks.Lock(ctx, devID, holder); err != nil {
		return nil, err
	}
	defer func() {
		_ = e.locks.Unlock(devID, holder)
	}()
	return op.attempt(ctx, devID, req)
}

// attempt runs one execution attempt of req on the selected device. The
// action handler runs behind the engine's panic-containment boundary: a
// panicking handler yields a FailPanic outcome for this request instead
// of killing the executor — which would also strand executeRound's result
// collector forever.
func (op *actionOperator) attempt(ctx context.Context, devID string, req *ActionRequest) (result any, err error) {
	e := op.engine
	defer func() { e.containPanic(recover(), &err, "action handler", req.Action) }()
	if ctx.Err() != nil {
		return nil, ErrShutdown
	}
	if !req.Deadline.IsZero() && e.clk.Now().After(req.Deadline) {
		return nil, ErrStale
	}
	req.attempts++
	args, err := req.bind(devID)
	if err != nil {
		return nil, fmt.Errorf("core: bind args: %w", err)
	}
	actx := &ActionContext{Engine: e, QueryID: req.QueryID, RequestID: req.ID, DeviceID: devID, Attempt: req.attempts}
	return op.def.Fn(ctx, actx, args)
}

// finishAll records the same terminal error for a set of scheduled
// requests.
func (op *actionOperator) finishAll(reqs []*sched.Request, err error) {
	for _, sr := range reqs {
		op.finish(sr.Target.(*ActionRequest), "", nil, err)
	}
}

// finish records the outcome of a request. Exactly one finish call is made
// per submitted request.
func (op *actionOperator) finish(req *ActionRequest, devID string, result any, err error) {
	e := op.engine
	outcome := &Outcome{
		RequestID: req.ID,
		QueryID:   req.QueryID,
		Query:     req.Query,
		Action:    req.Action,
		DeviceID:  devID,
		EventKey:  req.EventKey,
		Deadline:  req.Deadline,
		Latency:   e.clk.Since(req.CreatedAt),
		Result:    result,
		Err:       err,
		Failure:   classifyOutcome(err, req.attempts, retryableFailure(err)),
		Attempts:  req.attempts,
	}
	if err != nil {
		e.lg.Warn("action failed", "action", req.Action, "query", req.Query,
			"device", devID, "failure", outcome.Failure.String(),
			"attempts", req.attempts, "err", err)
	} else {
		e.lg.Debug("action completed", "action", req.Action, "query", req.Query,
			"device", devID, "latency", outcome.Latency, "attempts", req.attempts)
	}
	// The outcome becomes durable before observers see it; a crash after
	// the append can no longer re-dispatch this intent.
	e.journalOutcome(req, outcome)
	e.metrics.record(outcome)
	e.metrics.noteOutcomesDropped(e.outcomes.add(outcome))
}

func sortDeviceIDs(ids []sched.DeviceID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
