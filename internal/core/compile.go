package core

// Compiled WHERE clauses: at query-compile time the WHERE expression tree
// is flattened once into closures over positional column accessors, so the
// per-row evaluation loop does no AST walking, no map lookups and no
// boxing on the float64/string fast paths.
//
// The compiled form is an optimization, never a semantic fork: the
// interpreted evalExpr stays the reference implementation, compilation
// falls back to it on any shape it does not handle, and the
// FuzzCompiledEval differential fuzzer holds both to identical values AND
// identical error text. Type specialization therefore happens at run time
// against the column's actual Kind — a column demoted to boxed values by a
// mixed-type scan takes the same general compare() path the interpreter
// takes.

import (
	"errors"
	"fmt"

	"aorta/internal/comm"
	"aorta/internal/sqlparse"
)

// frame is the per-epoch evaluation context of a compiled clause: the
// resolved column of every slot (nil when the epoch's batch lacks it) and
// the current physical batch row per table.
type frame struct {
	cols []*comm.Col
	rows []int
}

// valFn and boolFn are compiled expression nodes.
type valFn func(fr *frame) (any, error)
type boolFn func(fr *frame) (bool, error)

// slotRef names one column access of a compiled clause: table index and
// attribute, resolved into frame.cols once per batch.
type slotRef struct {
	tbl  int
	attr string
}

// compiledWhere is one query's compiled filter.
type compiledWhere struct {
	slots []slotRef
	eval  boolFn
}

// bind resolves the clause's slots against one epoch's batches (indexed by
// table position; nil entries leave the slot unresolved).
func (cw *compiledWhere) bind(fr *frame, batches []*comm.Batch) {
	for i, s := range cw.slots {
		if b := batches[s.tbl]; b != nil {
			fr.cols[i] = b.ColByName(s.attr)
		} else {
			fr.cols[i] = nil
		}
	}
}

// newFrame allocates a frame sized for the clause over n tables.
func (cw *compiledWhere) newFrame(n int) *frame {
	return &frame{cols: make([]*comm.Col, len(cw.slots)), rows: make([]int, n)}
}

// whereCompiler carries compile-time context: the query's alias bindings
// (table order and per-table attribute sets) and the engine's boolean
// functions, captured by value so compiled closures never touch the live
// registry map.
type whereCompiler struct {
	aliases []string
	attrs   []map[string]bool
	bools   map[string]BoolFunc
	slots   []slotRef
}

// errNotCompilable aborts compilation; the caller falls back to the
// interpreted evaluator.
var errNotCompilable = errors.New("core: expression not compilable")

// compileWhere flattens a query's WHERE clause. A nil return (with error)
// means the clause has a shape the compiler does not handle and the
// interpreted path must be used.
func compileWhere(q *Query, bools map[string]BoolFunc) (*compiledWhere, error) {
	c := &whereCompiler{bools: bools}
	for _, bt := range q.tables {
		c.aliases = append(c.aliases, bt.alias)
		set := make(map[string]bool, len(bt.attrs))
		for _, a := range bt.attrs {
			set[a] = true
		}
		c.attrs = append(c.attrs, set)
	}
	eval, err := c.compileBool(q.sel.Where)
	if err != nil {
		return nil, err
	}
	return &compiledWhere{slots: c.slots, eval: eval}, nil
}

// resolve maps a column reference to (table index, slot index) using the
// same rule as compileQuery's collect: a qualified reference belongs to
// its qualifier, an unqualified one to the unique table carrying the
// column. References the rule cannot place are not compilable.
func (c *whereCompiler) resolve(ref *sqlparse.ColumnRef) (tbl, slot int, missErr error, err error) {
	tbl = -1
	if ref.Qualifier != "" {
		for i, a := range c.aliases {
			if a == ref.Qualifier {
				tbl = i
				break
			}
		}
		if tbl < 0 || !c.attrs[tbl][ref.Column] {
			return 0, 0, nil, errNotCompilable
		}
		missErr = fmt.Errorf("%w: %s.%s", errUnknownColumn, ref.Qualifier, ref.Column)
	} else {
		for i := range c.aliases {
			if c.attrs[i][ref.Column] {
				if tbl >= 0 {
					return 0, 0, nil, errNotCompilable // ambiguous
				}
				tbl = i
			}
		}
		if tbl < 0 {
			return 0, 0, nil, errNotCompilable
		}
		missErr = fmt.Errorf("%w: %s", errUnknownColumn, ref.Column)
	}
	slot = len(c.slots)
	c.slots = append(c.slots, slotRef{tbl: tbl, attr: ref.Column})
	return tbl, slot, missErr, nil
}

// compileVal compiles an expression node into a value closure.
func (c *whereCompiler) compileVal(e sqlparse.Expr) (valFn, error) {
	switch ex := e.(type) {
	case *sqlparse.Literal:
		v := ex.Value
		return func(*frame) (any, error) { return v, nil }, nil

	case *sqlparse.ColumnRef:
		tbl, slot, missErr, err := c.resolve(ex)
		if err != nil {
			return nil, err
		}
		return func(fr *frame) (any, error) {
			col := fr.cols[slot]
			if col == nil {
				return nil, missErr
			}
			return col.Value(fr.rows[tbl]), nil
		}, nil

	case *sqlparse.Call:
		fn, ok := c.bools[ex.Func]
		if !ok {
			// Mirror the interpreter's runtime error; compileQuery rejects
			// this upstream for real queries.
			callErr := fmt.Errorf("core: unknown function %q in expression", ex.Func)
			return func(*frame) (any, error) { return nil, callErr }, nil
		}
		args := make([]valFn, len(ex.Args))
		for i, a := range ex.Args {
			af, err := c.compileVal(a)
			if err != nil {
				return nil, err
			}
			args[i] = af
		}
		return func(fr *frame) (any, error) {
			vals := make([]any, len(args))
			for i, af := range args {
				v, err := af(fr)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			return fn(vals)
		}, nil

	case *sqlparse.Compare:
		return c.compileCompare(ex)

	case *sqlparse.Logic, *sqlparse.Not:
		b, err := c.compileBool(e)
		if err != nil {
			return nil, err
		}
		return func(fr *frame) (any, error) { return b(fr) }, nil

	case *sqlparse.Star:
		starErr := errors.New("core: * is not valid in this position")
		return func(*frame) (any, error) { return nil, starErr }, nil

	default:
		nodeErr := fmt.Errorf("core: unsupported expression %T", e)
		return func(*frame) (any, error) { return nil, nodeErr }, nil
	}
}

// compileCompare compiles a comparison, specializing the column-vs-literal
// forms: when the epoch's column is typed, the closure compares straight
// off the typed slice; otherwise it falls back to the interpreter's shared
// compare() on the boxed value, keeping error semantics identical.
func (c *whereCompiler) compileCompare(ex *sqlparse.Compare) (valFn, error) {
	op := ex.Op

	// Constant fold: literal OP literal is decided at compile time.
	if ll, lok := ex.Left.(*sqlparse.Literal); lok {
		if rl, rok := ex.Right.(*sqlparse.Literal); rok {
			v, err := compare(op, ll.Value, rl.Value)
			return func(*frame) (any, error) { return v, err }, nil
		}
	}

	// Column-vs-literal specialization, both orientations.
	ref, lit, colLeft := compareAnchor(ex)
	if ref != nil {
		tbl, slot, missErr, err := c.resolve(ref)
		if err != nil {
			return nil, err
		}
		litVal := lit.Value
		if k, isNum := toFloat(litVal); isNum {
			cmp := floatCmp(op)
			return func(fr *frame) (any, error) {
				col := fr.cols[slot]
				if col == nil {
					return nil, missErr
				}
				row := fr.rows[tbl]
				if fs := col.Floats(); fs != nil {
					if colLeft {
						return cmp(fs[row], k), nil
					}
					return cmp(k, fs[row]), nil
				}
				return compareOriented(op, col.Value(row), litVal, colLeft)
			}, nil
		}
		if ks, isStr := litVal.(string); isStr {
			cmp := stringCmp(op)
			return func(fr *frame) (any, error) {
				col := fr.cols[slot]
				if col == nil {
					return nil, missErr
				}
				row := fr.rows[tbl]
				if ss := col.Strings(); ss != nil {
					if colLeft {
						return cmp(ss[row], ks), nil
					}
					return cmp(ks, ss[row]), nil
				}
				return compareOriented(op, col.Value(row), litVal, colLeft)
			}, nil
		}
		// bool or structured literal: general boxed path below.
	}

	l, err := c.compileVal(ex.Left)
	if err != nil {
		return nil, err
	}
	r, err := c.compileVal(ex.Right)
	if err != nil {
		return nil, err
	}
	return func(fr *frame) (any, error) {
		lv, err := l(fr)
		if err != nil {
			return nil, err
		}
		rv, err := r(fr)
		if err != nil {
			return nil, err
		}
		return compare(op, lv, rv)
	}, nil
}

// compareAnchor extracts the (column, literal) pair of a comparison, if it
// has one; colLeft reports the orientation.
func compareAnchor(ex *sqlparse.Compare) (ref *sqlparse.ColumnRef, lit *sqlparse.Literal, colLeft bool) {
	if r, ok := ex.Left.(*sqlparse.ColumnRef); ok {
		if l, ok := ex.Right.(*sqlparse.Literal); ok {
			return r, l, true
		}
	}
	if r, ok := ex.Right.(*sqlparse.ColumnRef); ok {
		if l, ok := ex.Left.(*sqlparse.Literal); ok {
			return r, l, false
		}
	}
	return nil, nil, false
}

// compareOriented calls the shared compare() with the column value on the
// side it appeared on in the source.
func compareOriented(op string, colVal, litVal any, colLeft bool) (bool, error) {
	if colLeft {
		return compare(op, colVal, litVal)
	}
	return compare(op, litVal, colVal)
}

// floatCmp returns the float64 comparator for an operator.
func floatCmp(op string) func(a, b float64) bool {
	switch op {
	case "=":
		return func(a, b float64) bool { return a == b }
	case "!=":
		return func(a, b float64) bool { return a != b }
	case "<":
		return func(a, b float64) bool { return a < b }
	case "<=":
		return func(a, b float64) bool { return a <= b }
	case ">":
		return func(a, b float64) bool { return a > b }
	default:
		return func(a, b float64) bool { return a >= b }
	}
}

// stringCmp returns the lexical comparator for an operator.
func stringCmp(op string) func(a, b string) bool {
	switch op {
	case "=":
		return func(a, b string) bool { return a == b }
	case "!=":
		return func(a, b string) bool { return a != b }
	case "<":
		return func(a, b string) bool { return a < b }
	case "<=":
		return func(a, b string) bool { return a <= b }
	case ">":
		return func(a, b string) bool { return a > b }
	default:
		return func(a, b string) bool { return a >= b }
	}
}

// compileBool compiles an expression that must produce a boolean,
// reproducing evalBool's type check (and its exact error text) for nodes
// that are not statically boolean.
func (c *whereCompiler) compileBool(e sqlparse.Expr) (boolFn, error) {
	switch ex := e.(type) {
	case *sqlparse.Logic:
		l, err := c.compileBool(ex.Left)
		if err != nil {
			return nil, err
		}
		r, err := c.compileBool(ex.Right)
		if err != nil {
			return nil, err
		}
		if ex.Op == "AND" {
			return func(fr *frame) (bool, error) {
				lv, err := l(fr)
				if err != nil || !lv {
					return false, err
				}
				return r(fr)
			}, nil
		}
		return func(fr *frame) (bool, error) {
			lv, err := l(fr)
			if err != nil || lv {
				return lv, err
			}
			return r(fr)
		}, nil

	case *sqlparse.Not:
		inner, err := c.compileBool(ex.Inner)
		if err != nil {
			return nil, err
		}
		return func(fr *frame) (bool, error) {
			v, err := inner(fr)
			if err != nil {
				return false, err
			}
			return !v, nil
		}, nil

	case *sqlparse.Compare:
		v, err := c.compileCompare(ex)
		if err != nil {
			return nil, err
		}
		// Compare yields bool on every non-error path: skip the check.
		return func(fr *frame) (bool, error) {
			val, err := v(fr)
			if err != nil {
				return false, err
			}
			return val.(bool), nil
		}, nil

	default:
		v, err := c.compileVal(e)
		if err != nil {
			return nil, err
		}
		src := e.String()
		return func(fr *frame) (bool, error) {
			val, err := v(fr)
			if err != nil {
				return false, err
			}
			b, ok := val.(bool)
			if !ok {
				return false, fmt.Errorf("core: expression %s is %T, not boolean", src, val)
			}
			return b, nil
		}, nil
	}
}
