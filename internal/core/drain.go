package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"aorta/internal/vclock"
	"aorta/internal/wal"
)

// ErrDraining rejects a new placement (CREATE AQ / CREATE ACTION) on an
// engine that is cooperatively draining: its state is flushing and
// about to hand off to surviving shards. Reads, lifecycle statements
// and running continuous queries are unaffected until Stop.
var ErrDraining = errors.New("core: engine is draining")

// drainTick is the flush-poll period on the engine clock.
const drainTick = 100 * time.Millisecond

// DrainStats summarizes one Drain call.
type DrainStats struct {
	// PendingAtEntry/InFlightAtEntry is the work the drain had to flush:
	// journaled intents without outcomes, and dispatches mid-flight.
	PendingAtEntry  int
	InFlightAtEntry int64
	// Waited is the flush duration on the engine clock.
	Waited time.Duration
}

// Draining reports whether the engine is in drain mode.
func (e *Engine) Draining() bool { return e.draining.Load() }

// CancelDrain lifts drain mode without stopping the engine — the escape
// hatch when a handoff aborts and the shard must resume normal service.
func (e *Engine) CancelDrain() { e.draining.Store(false) }

// Drain puts the engine into drain mode and flushes it: new placements
// are refused with ErrDraining while continuous queries keep evaluating
// and in-flight actions run to completion; Drain returns once every
// journaled intent has an outcome and no dispatch is in flight, with
// the journal synced — the point at which DrainState is a complete,
// durable picture a successor can adopt with zero loss. ctx bounds the
// flush; on expiry the engine stays draining (leftover intents are
// still journaled, so a crash-style handoff loses nothing).
func (e *Engine) Drain(ctx context.Context) (DrainStats, error) {
	st := DrainStats{
		PendingAtEntry:  e.JournalPending(),
		InFlightAtEntry: e.InFlight(),
	}
	if !e.draining.Swap(true) {
		e.lg.Info("engine draining", "pending_intents", st.PendingAtEntry, "in_flight", st.InFlightAtEntry)
	}
	start := e.clk.Now()
	for e.JournalPending() != 0 || e.InFlight() != 0 {
		if err := vclock.SleepCtx(ctx, e.clk, drainTick); err != nil {
			st.Waited = e.clk.Since(start)
			return st, fmt.Errorf("core: drain flush interrupted with %d pending, %d in flight: %w",
				e.JournalPending(), e.InFlight(), err)
		}
	}
	st.Waited = e.clk.Since(start)
	if e.glue != nil {
		if err := e.glue.j.Sync(); err != nil && !errors.Is(err, wal.ErrClosed) {
			return st, fmt.Errorf("core: drain journal sync: %w", err)
		}
	}
	e.lg.Info("engine drained", "waited", st.Waited)
	return st, nil
}

// DrainState snapshots the state a drained engine hands to its
// successors — the live-engine equivalent of replaying its journal:
// device membership, the query catalog with stopped flags, and any
// pending intents a bounded Drain could not flush (empty after a full
// flush). The record types are the WAL's, so cluster.Adopt consumes
// both crash handoffs and live drains identically.
func (e *Engine) DrainState() ([]wal.DeviceRecord, []wal.SnapshotQuery, []wal.IntentRecord) {
	var devices []wal.DeviceRecord
	for _, d := range e.layer.Devices() {
		devices = append(devices, deviceRecordOf(*d))
	}
	var queries []wal.SnapshotQuery
	e.mu.Lock()
	for _, q := range e.queries {
		q.mu.Lock()
		queries = append(queries, wal.SnapshotQuery{
			QueryRecord: wal.QueryRecord{
				ID: q.ID, Name: q.Name, SQL: q.sel.String(), EpochNS: int64(q.Epoch),
			},
			Stopped: q.stopped,
		})
		q.mu.Unlock()
	}
	e.mu.Unlock()
	sort.Slice(queries, func(i, j int) bool { return queries[i].ID < queries[j].ID })
	var pending []wal.IntentRecord
	if e.glue != nil {
		e.glue.mu.Lock()
		for _, ir := range e.glue.pending {
			pending = append(pending, *ir)
		}
		e.glue.mu.Unlock()
		sort.Slice(pending, func(i, j int) bool { return pending[i].RequestID < pending[j].RequestID })
	}
	return devices, queries, pending
}
