package core

import (
	"errors"
	"testing"
	"testing/quick"

	"aorta/internal/comm"
	"aorta/internal/sqlparse"
)

// parseWhere extracts the WHERE expression from a canned query.
func parseWhere(t *testing.T, cond string) sqlparse.Expr {
	t.Helper()
	stmt, err := sqlparse.Parse("SELECT x FROM t WHERE " + cond)
	if err != nil {
		t.Fatalf("parse %q: %v", cond, err)
	}
	return stmt.(*sqlparse.Select).Where
}

func testEnv() *evalEnv {
	return &evalEnv{
		row: Row{
			"s": comm.Tuple{"id": "mote-1", "accel_x": 750.0, "temp": 21.5, "label": "door"},
			"c": comm.Tuple{"id": "camera-1", "zoom": 2.0},
		},
		bools: map[string]BoolFunc{
			"always": func([]any) (bool, error) { return true, nil },
			"iszero": func(args []any) (bool, error) {
				v, _ := toFloat(args[0])
				return v == 0, nil
			},
		},
	}
}

func TestEvalComparisons(t *testing.T) {
	env := testEnv()
	tests := []struct {
		cond string
		want bool
	}{
		{"s.accel_x > 500", true},
		{"s.accel_x > 800", false},
		{"s.accel_x >= 750", true},
		{"s.accel_x < 750", false},
		{"s.accel_x <= 750", true},
		{"s.accel_x = 750", true},
		{"s.accel_x != 750", false},
		{"s.temp > 20 AND s.temp < 22", true},
		{"s.temp > 25 OR c.zoom = 2", true},
		{"NOT s.temp > 25", true},
		{"s.label = \"door\"", true},
		{"s.label != \"window\"", true},
		{"s.label < \"elephant\"", true},
		{"s.id = c.id", false},
		{"always()", true},
		{"iszero(s.accel_x)", false},
		{"iszero(0)", true},
		{"NOT always() OR s.accel_x > 0", true},
	}
	for _, tt := range tests {
		t.Run(tt.cond, func(t *testing.T) {
			got, err := env.evalBool(parseWhere(t, tt.cond))
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("%s = %v, want %v", tt.cond, got, tt.want)
			}
		})
	}
}

func TestEvalErrors(t *testing.T) {
	env := testEnv()
	tests := []string{
		"s.missing > 1",          // unknown column
		"z.temp > 1",             // unknown alias
		"mystery(s.temp)",        // unknown function
		"s.label > 5",            // string vs number
		"s.temp AND s.temp > 1",  // non-boolean operand
		"accel_x > 1 AND id = 1", // ambiguous unqualified id (both tables)
	}
	for _, cond := range tests {
		t.Run(cond, func(t *testing.T) {
			if _, err := env.evalBool(parseWhere(t, cond)); err == nil {
				t.Errorf("%s evaluated without error", cond)
			}
		})
	}
}

func TestEvalUnqualifiedResolution(t *testing.T) {
	env := testEnv()
	// temp exists only in s.
	got, err := env.evalBool(parseWhere(t, "temp > 20"))
	if err != nil || !got {
		t.Fatalf("temp > 20 = %v, %v", got, err)
	}
}

func TestEvalShortCircuit(t *testing.T) {
	env := testEnv()
	env.bools["boom"] = func([]any) (bool, error) {
		t.Fatal("right operand evaluated despite short circuit")
		return false, nil
	}
	got, err := env.evalBool(parseWhere(t, "s.temp > 100 AND boom()"))
	if err != nil || got {
		t.Fatalf("AND short circuit = %v, %v", got, err)
	}
	got, err = env.evalBool(parseWhere(t, "s.temp > 0 OR boom()"))
	if err != nil || !got {
		t.Fatalf("OR short circuit = %v, %v", got, err)
	}
}

func TestCompareBooleans(t *testing.T) {
	if ok, err := compare("=", true, true); err != nil || !ok {
		t.Errorf("true = true → %v, %v", ok, err)
	}
	if ok, err := compare("!=", true, false); err != nil || !ok {
		t.Errorf("true != false → %v, %v", ok, err)
	}
	if _, err := compare("<", true, false); err == nil {
		t.Error("boolean < accepted")
	}
}

func TestToFloatWidths(t *testing.T) {
	tests := []struct {
		in   any
		want float64
		ok   bool
	}{
		{3.5, 3.5, true},
		{float32(2), 2, true},
		{int(7), 7, true},
		{int32(8), 8, true},
		{int64(9), 9, true},
		{"x", 0, false},
		{nil, 0, false},
		{true, 0, false},
	}
	for _, tt := range tests {
		got, ok := toFloat(tt.in)
		if ok != tt.ok || (ok && got != tt.want) {
			t.Errorf("toFloat(%v) = %v, %v", tt.in, got, ok)
		}
	}
}

// TestQuickNumericCompareConsistency: compare() agrees with Go's float
// ordering for every operator.
func TestQuickNumericCompareConsistency(t *testing.T) {
	ops := map[string]func(a, b float64) bool{
		"=":  func(a, b float64) bool { return a == b },
		"!=": func(a, b float64) bool { return a != b },
		"<":  func(a, b float64) bool { return a < b },
		"<=": func(a, b float64) bool { return a <= b },
		">":  func(a, b float64) bool { return a > b },
		">=": func(a, b float64) bool { return a >= b },
	}
	f := func(a, b float64) bool {
		for op, want := range ops {
			got, err := compare(op, a, b)
			if err != nil || got != want(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClassifyFailureKinds(t *testing.T) {
	tests := []struct {
		err  error
		want FailureKind
	}{
		{nil, FailNone},
		{ErrBlurred, FailBlurred},
		{ErrWrongPosition, FailWrongPosition},
		{ErrStale, FailStale},
		{errNoCandidates, FailNoDevice},
		{comm.ErrTimeout, FailConnect},
		{comm.ErrUnreachable, FailConnect},
		{comm.ErrUnknownDevice, FailConnect},
		{errors.New("unrelated failure"), FailOther},
	}
	for _, tt := range tests {
		if got := classifyFailure(tt.err); got != tt.want {
			t.Errorf("classifyFailure(%v) = %v, want %v", tt.err, got, tt.want)
		}
	}
}
