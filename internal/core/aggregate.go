package core

import (
	"fmt"
	"math"
	"strings"

	"aorta/internal/comm"
	"aorta/internal/scanshare"
	"aorta/internal/sqlparse"
)

// Aggregate functions usable in the select list: COUNT (rows or non-null
// values), SUM, AVG, MIN, MAX over numeric expressions. A query whose
// select list contains an aggregate must be all-aggregate (no GROUP BY
// support) and may not embed actions — it is the TinyDB-style data-
// collection side of the declarative interface, complementing the paper's
// action-embedded queries.
var aggregateFuncs = map[string]bool{
	"count": true,
	"sum":   true,
	"avg":   true,
	"min":   true,
	"max":   true,
}

// aggItem is one compiled aggregate of the select list.
type aggItem struct {
	fn  string
	arg sqlparse.Expr // nil for count(*)
	key string        // output column name
}

// isAggregateCall reports whether a call is an aggregate invocation.
func isAggregateCall(c *sqlparse.Call) bool {
	return aggregateFuncs[strings.ToLower(c.Func)]
}

// compileAggregate builds an aggItem from a call.
func compileAggregate(c *sqlparse.Call) (*aggItem, error) {
	fn := strings.ToLower(c.Func)
	if len(c.Args) != 1 {
		return nil, fmt.Errorf("core: %s() takes exactly one argument", fn)
	}
	item := &aggItem{fn: fn, key: c.String()}
	if _, star := c.Args[0].(*sqlparse.Star); star {
		if fn != "count" {
			return nil, fmt.Errorf("core: %s(*) is not valid; only count(*)", fn)
		}
		return item, nil
	}
	item.arg = c.Args[0]
	return item, nil
}

// aggState accumulates one aggregate across the passing rows.
type aggState struct {
	item  *aggItem
	count int64
	sum   float64
	min   float64
	max   float64
}

// add folds one row into the accumulator.
func (st *aggState) add(env *evalEnv) error {
	if st.item.arg == nil { // count(*)
		st.count++
		return nil
	}
	v, err := env.evalExpr(st.item.arg)
	if err != nil {
		return err
	}
	return st.addValue(v)
}

// addValue folds one already-evaluated argument value.
func (st *aggState) addValue(v any) error {
	if v == nil {
		return nil // NULLs don't participate
	}
	if st.item.fn == "count" {
		st.count++
		return nil
	}
	f, ok := toFloat(v)
	if !ok {
		return fmt.Errorf("core: %s() argument %s is %T, not numeric", st.item.fn, st.item.arg, v)
	}
	st.fold(f)
	return nil
}

// fold accumulates one numeric value.
func (st *aggState) fold(f float64) {
	if st.count == 0 {
		st.min, st.max = f, f
	} else {
		st.min = math.Min(st.min, f)
		st.max = math.Max(st.max, f)
	}
	st.count++
	st.sum += f
}

// result produces the aggregate's output value; empty inputs yield 0 for
// count/sum and nil for avg/min/max.
func (st *aggState) result() any {
	switch st.item.fn {
	case "count":
		return float64(st.count)
	case "sum":
		return st.sum
	case "avg":
		if st.count == 0 {
			return nil
		}
		return st.sum / float64(st.count)
	case "min":
		if st.count == 0 {
			return nil
		}
		return st.min
	case "max":
		if st.count == 0 {
			return nil
		}
		return st.max
	default:
		return nil
	}
}

// evalAggregatesColumnar is the vectorized aggregation path for
// single-table queries without GROUP BY: the compiled filter and the
// aggregate folds run straight over the scan batch's columns, with no
// tuple materialization and no Row maps. Returns ok=false when an
// aggregate argument is not a plain column of the batch — the caller then
// takes the generic materializing path, whose semantics this one must
// match exactly (same NULL skipping, same non-numeric error).
func evalAggregatesColumnar(q *Query, view scanshare.TableView, cw *compiledWhere, fr *frame) ([]map[string]any, bool, error) {
	type aggCol struct {
		st  *aggState
		col *comm.Col // nil for count(*)
		fs  []float64 // typed fast path when the column is float-kinded
	}
	acs := make([]aggCol, len(q.aggItems))
	for i, item := range q.aggItems {
		acs[i] = aggCol{st: &aggState{item: item}}
		if item.arg == nil {
			continue
		}
		ref, isRef := item.arg.(*sqlparse.ColumnRef)
		if !isRef {
			return nil, false, nil
		}
		if view.Batch != nil {
			col := view.Batch.ColByName(ref.Column)
			if col == nil {
				// The interpreter would error per-row on a missing column;
				// keep that behaviour on the generic path.
				return nil, false, nil
			}
			acs[i].col = col
			acs[i].fs = col.Floats()
		}
	}

	for p, np := 0, view.Len(); p < np; p++ {
		r := view.RowIndex(p)
		if cw != nil {
			fr.rows[0] = r
			ok, err := cw.eval(fr)
			if err != nil {
				return nil, true, err
			}
			if !ok {
				continue
			}
		}
		for i := range acs {
			ac := &acs[i]
			switch {
			case ac.col == nil: // count(*)
				ac.st.count++
			case ac.fs != nil:
				ac.st.fold(ac.fs[r])
			default:
				if err := ac.st.addValue(ac.col.Value(r)); err != nil {
					return nil, true, err
				}
			}
		}
	}

	row := make(map[string]any, len(acs))
	for i := range acs {
		row[acs[i].st.item.key] = acs[i].st.result()
	}
	return []map[string]any{row}, true, nil
}

// evalAggregates folds every passing row into the query's aggregates,
// partitioned by the GROUP BY columns when present, and returns one
// result row per group (a single row, even over zero inputs, without
// GROUP BY).
func evalAggregates(q *Query, rows []Row, bools map[string]BoolFunc) ([]map[string]any, error) {
	env := &evalEnv{bools: bools}

	type group struct {
		keyVals []any
		states  []*aggState
	}
	newGroup := func(keyVals []any) *group {
		g := &group{keyVals: keyVals, states: make([]*aggState, len(q.aggItems))}
		for i, item := range q.aggItems {
			g.states[i] = &aggState{item: item}
		}
		return g
	}

	groups := make(map[string]*group)
	var order []string
	for _, row := range rows {
		env.row = row
		var key string
		var keyVals []any
		for _, ref := range q.groupBy {
			v, err := env.evalExpr(ref)
			if err != nil {
				return nil, err
			}
			keyVals = append(keyVals, v)
			key += fmt.Sprintf("%v\x00", v)
		}
		g, ok := groups[key]
		if !ok {
			g = newGroup(keyVals)
			groups[key] = g
			order = append(order, key)
		}
		for _, st := range g.states {
			if err := st.add(env); err != nil {
				return nil, err
			}
		}
	}
	// Without GROUP BY an empty input still yields one row of empty
	// aggregates (count = 0, avg = nil).
	if len(q.groupBy) == 0 && len(groups) == 0 {
		groups[""] = newGroup(nil)
		order = append(order, "")
	}

	var out []map[string]any
	for _, key := range order {
		g := groups[key]
		row := make(map[string]any, len(g.states)+len(q.groupBy))
		for i, ref := range q.groupBy {
			row[ref.String()] = g.keyVals[i]
		}
		for _, st := range g.states {
			row[st.item.key] = st.result()
		}
		out = append(out, row)
	}
	return out, nil
}
