package core

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// This file is the fail-operational vocabulary: the typed errors that
// fault containment converts panics and storage faults into, so callers
// (frontdoor, aortad, tests) can react by kind instead of crashing or
// string-matching. DESIGN.md "Failure taxonomy" enumerates how these map
// to wire-level error codes.

// ErrPanic marks an error that began life as a panic inside per-query
// evaluation or action execution and was contained at a recover()
// boundary. Never retryable: re-running the same poisoned input would
// panic again.
var ErrPanic = errors.New("core: evaluation panicked")

// ErrDegraded rejects a mutating statement while the engine is in
// journal-degraded (read-only) mode: the WAL stopped accepting writes
// (full disk, I/O error), so nothing that must be durable may be
// accepted. Continuous queries keep streaming; the mode clears once a
// journal probe succeeds.
var ErrDegraded = errors.New("core: journal degraded, engine is read-only")

// ErrQuarantined rejects START AQ for a query the engine auto-stopped
// after repeated panics. The quarantine reason stays visible in SHOW
// QUERIES; DROP AQ is the only exit.
var ErrQuarantined = errors.New("core: query is quarantined")

// PanicError carries the recovered panic value and its stack. It unwraps
// to ErrPanic so classification and retry logic match by sentinel while
// logs keep the full trace.
type PanicError struct {
	Value any
	Stack []byte
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("%v: %v", ErrPanic, p.Value)
}

func (p *PanicError) Unwrap() error { return ErrPanic }

// containPanic is the shared recover() boundary body: call as
//
//	defer func() { e.containPanic(recover(), &err, "query evaluation", q.Name) }()
//
// inside any function whose panic must become a typed error instead of
// unwinding into the daemon's runtime. A nil recovered value is a no-op;
// otherwise *err is replaced with a *PanicError, the panic is counted,
// and the full stack is logged once here (callers surface only the
// value).
func (e *Engine) containPanic(v any, err *error, in, name string) {
	if v == nil {
		return
	}
	pe := &PanicError{Value: v, Stack: debug.Stack()}
	*err = pe
	e.metrics.noteEvalPanic()
	e.lg.Error("panic contained", "in", in, "name", name, "panic", v,
		"stack", string(pe.Stack))
}
