package core

// Differential testing of the compiled WHERE path: the compiled closures
// must agree with the interpreted evalExpr reference on every value AND on
// every error's exact text, across random expression trees and random
// (including mixed-type, demoted, and column-missing) batches.

import (
	"fmt"
	"testing"

	"aorta/internal/comm"
	"aorta/internal/scanshare"
	"aorta/internal/sqlparse"
)

// fuzzPoint is a structured value neither comparable numerically nor
// lexically — it drives the "cannot compare" error paths.
type fuzzPoint struct{ X, Y float64 }

// exprGen derives a random-but-deterministic expression tree and batch
// contents from a fuzz byte stream.
type exprGen struct {
	data []byte
	pos  int
}

func (g *exprGen) next() byte {
	if g.pos >= len(g.data) {
		return 0
	}
	b := g.data[g.pos]
	g.pos++
	return b
}

var fuzzOps = []string{"=", "!=", "<", "<=", ">", ">="}

// fuzzRefs are the column references the generator draws from. The last
// entries are deliberately ambiguous or unknown: they make compileWhere
// bail to the interpreted path, which the fuzz driver then skips.
var fuzzRefs = []*sqlparse.ColumnRef{
	{Qualifier: "s", Column: "accel_x"},
	{Qualifier: "s", Column: "temp"},
	{Qualifier: "s", Column: "id"},
	{Qualifier: "s", Column: "loc"},
	{Qualifier: "c", Column: "ip"},
	{Qualifier: "c", Column: "id"},
	{Column: "accel_x"}, // unqualified, unique owner s
	{Column: "ip"},      // unqualified, unique owner c
	{Column: "temp"},
	{Column: "id"},   // ambiguous: both tables carry id
	{Column: "nope"}, // no owner
}

func (g *exprGen) genVal(depth int) sqlparse.Expr {
	b := g.next()
	if depth <= 0 {
		if b%2 == 0 {
			return &sqlparse.Literal{Value: float64(g.next() % 16)}
		}
		return fuzzRefs[int(g.next())%len(fuzzRefs)]
	}
	switch b % 10 {
	case 0, 1:
		return &sqlparse.Literal{Value: float64(g.next()%32) - 8}
	case 2:
		return &sqlparse.Literal{Value: fmt.Sprintf("mote-%d", g.next()%6)}
	case 3:
		return &sqlparse.Literal{Value: g.next()%2 == 0}
	case 4, 5, 6, 7:
		return fuzzRefs[int(g.next())%len(fuzzRefs)]
	case 8:
		fn := "near"
		if g.next()%4 == 0 {
			fn = "broken"
		}
		return &sqlparse.Call{Func: fn, Args: []sqlparse.Expr{
			g.genVal(depth - 1), g.genVal(depth - 1),
		}}
	default:
		return g.genBool(depth - 1)
	}
}

func (g *exprGen) genBool(depth int) sqlparse.Expr {
	b := g.next()
	if depth <= 0 {
		return &sqlparse.Compare{
			Op:    fuzzOps[int(g.next())%len(fuzzOps)],
			Left:  g.genVal(0),
			Right: g.genVal(0),
		}
	}
	switch b % 8 {
	case 0:
		return &sqlparse.Logic{Op: "AND", Left: g.genBool(depth - 1), Right: g.genBool(depth - 1)}
	case 1:
		return &sqlparse.Logic{Op: "OR", Left: g.genBool(depth - 1), Right: g.genBool(depth - 1)}
	case 2:
		return &sqlparse.Not{Inner: g.genBool(depth - 1)}
	case 3, 4, 5:
		return &sqlparse.Compare{
			Op:    fuzzOps[int(g.next())%len(fuzzOps)],
			Left:  g.genVal(depth - 1),
			Right: g.genVal(depth - 1),
		}
	case 6:
		return &sqlparse.Call{Func: "near", Args: []sqlparse.Expr{
			g.genVal(depth - 1), g.genVal(depth - 1),
		}}
	default:
		// A value in boolean position: exercises the "is %T, not boolean"
		// error path on both evaluators.
		return g.genVal(depth - 1)
	}
}

// genSBatch builds the s table's batch: accel_x mostly floats (sometimes a
// string, demoting the column), temp fully mixed, loc structured or nil.
// One gate drops the temp column from the schema entirely, exercising the
// unknown-column errors.
func (g *exprGen) genSBatch() (*comm.Batch, []string) {
	attrs := []string{"id", "accel_x", "temp", "loc"}
	names := attrs
	if g.next()%5 == 0 {
		names = []string{"id", "accel_x", "loc"} // temp missing from the scan
	}
	kinds := make([]comm.Kind, len(names))
	for i, n := range names {
		switch n {
		case "id":
			kinds[i] = comm.KindString
		case "accel_x":
			kinds[i] = comm.KindFloat
		default:
			kinds[i] = comm.KindAny
		}
	}
	b := comm.NewBatch(comm.NewSchema(names, kinds))
	rows := 1 + int(g.next()%3)
	for r := 0; r < rows; r++ {
		vals := make([]any, len(names))
		for i, n := range names {
			switch n {
			case "id":
				vals[i] = fmt.Sprintf("mote-%d", g.next()%6)
			case "accel_x":
				if g.next()%7 == 0 {
					vals[i] = fmt.Sprintf("bad-%d", g.next()%3) // demotes the column
				} else {
					vals[i] = float64(g.next() % 32)
				}
			case "temp":
				switch g.next() % 5 {
				case 0:
					vals[i] = nil
				case 1:
					vals[i] = fmt.Sprintf("mote-%d", g.next()%6)
				case 2:
					vals[i] = g.next()%2 == 0
				default:
					vals[i] = float64(g.next() % 32)
				}
			case "loc":
				if g.next()%2 == 0 {
					vals[i] = nil
				} else {
					vals[i] = fuzzPoint{X: float64(g.next() % 8), Y: float64(g.next() % 8)}
				}
			}
		}
		b.Append(vals)
	}
	return b, attrs
}

func (g *exprGen) genCBatch() (*comm.Batch, []string) {
	attrs := []string{"id", "ip"}
	b := comm.NewBatch(comm.NewSchema(attrs, []comm.Kind{comm.KindString, comm.KindString}))
	rows := 1 + int(g.next()%2)
	for r := 0; r < rows; r++ {
		b.Append([]any{
			fmt.Sprintf("cam-%d", g.next()%4),
			fmt.Sprintf("10.0.0.%d", g.next()%8),
		})
	}
	return b, attrs
}

func fuzzBools() map[string]BoolFunc {
	return map[string]BoolFunc{
		"near": func(args []any) (bool, error) {
			var acc float64
			for _, a := range args {
				if f, ok := toFloat(a); ok {
					acc += f
				}
				if s, ok := a.(string); ok {
					acc += float64(len(s))
				}
			}
			return int(acc)%2 == 0, nil
		},
		"broken": func([]any) (bool, error) {
			return false, fmt.Errorf("core: broken() always fails")
		},
	}
}

// fuzzQuery is the two-table query shape the generator's references bind
// against.
func fuzzQuery(where sqlparse.Expr) *Query {
	return &Query{
		sel: &sqlparse.Select{Where: where},
		tables: []boundTable{
			{alias: "s", deviceType: "sensor", attrs: []string{"id", "accel_x", "temp", "loc"}},
			{alias: "c", deviceType: "camera", attrs: []string{"id", "ip"}},
		},
	}
}

// diffCompiledEval compares the compiled and interpreted evaluators over
// every join combination of the two batches, failing on any divergence in
// value or error text. Returns false when the clause is not compilable.
func diffCompiledEval(t *testing.T, where sqlparse.Expr, sb, cb *comm.Batch, sAttrs, cAttrs []string) bool {
	t.Helper()
	bools := fuzzBools()
	q := fuzzQuery(where)
	cw, err := compileWhere(q, bools)
	if err != nil {
		return false // interpreted fallback; nothing to diff
	}

	views := []scanshare.TableView{
		{Batch: sb, Attrs: sAttrs},
		{Batch: cb, Attrs: cAttrs},
	}
	fr := cw.newFrame(2)
	cw.bind(fr, []*comm.Batch{sb, cb})

	env := &evalEnv{bools: bools}
	for i := 0; i < views[0].Len(); i++ {
		for j := 0; j < views[1].Len(); j++ {
			fr.rows[0], fr.rows[1] = views[0].RowIndex(i), views[1].RowIndex(j)
			gotV, gotErr := cw.eval(fr)

			env.row = Row{"s": views[0].Row(i), "c": views[1].Row(j)}
			wantV, wantErr := env.evalBool(where)

			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("WHERE %s row (%d,%d):\n  compiled err    = %v\n  interpreted err = %v",
					where, i, j, gotErr, wantErr)
			}
			if gotErr != nil {
				if gotErr.Error() != wantErr.Error() {
					t.Fatalf("WHERE %s row (%d,%d): error text diverged:\n  compiled    = %q\n  interpreted = %q",
						where, i, j, gotErr.Error(), wantErr.Error())
				}
				continue
			}
			if gotV != wantV {
				t.Fatalf("WHERE %s row (%d,%d): compiled = %v, interpreted = %v",
					where, i, j, gotV, wantV)
			}
		}
	}
	return true
}

// FuzzCompiledEval is the equivalence proof behind the compiled WHERE
// path: random clauses over random batches must evaluate identically —
// same booleans, same error strings — under both evaluators.
func FuzzCompiledEval(f *testing.F) {
	f.Add([]byte{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{255, 254, 253, 7, 7, 7, 100, 50, 25, 12, 6, 3})
	f.Add([]byte{8, 16, 24, 32, 40, 48, 56, 64, 72, 80, 88, 96})
	f.Add([]byte("differential columnar predicates"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g := &exprGen{data: data}
		where := g.genBool(3)
		sb, sAttrs := g.genSBatch()
		cb, cAttrs := g.genCBatch()
		defer sb.Release()
		defer cb.Release()
		diffCompiledEval(t, where, sb, cb, sAttrs, cAttrs)
	})
}

// TestCompiledEvalSeeds pins a set of handwritten clauses through the same
// differential harness, so the equivalence properties hold in plain `go
// test` runs without the fuzzer.
func TestCompiledEvalSeeds(t *testing.T) {
	ref := func(q, c string) *sqlparse.ColumnRef { return &sqlparse.ColumnRef{Qualifier: q, Column: c} }
	lit := func(v any) *sqlparse.Literal { return &sqlparse.Literal{Value: v} }
	cmp := func(op string, l, r sqlparse.Expr) sqlparse.Expr { return &sqlparse.Compare{Op: op, Left: l, Right: r} }

	clauses := []sqlparse.Expr{
		// Typed fast paths, both orientations.
		cmp(">", ref("s", "accel_x"), lit(float64(10))),
		cmp("<=", lit(float64(5)), ref("", "accel_x")),
		cmp("=", ref("c", "ip"), lit("10.0.0.3")),
		cmp("<", lit("cam-1"), ref("c", "id")),
		// Mixed/demoted columns through the shared compare path.
		cmp("!=", ref("s", "temp"), lit(float64(7))),
		cmp(">=", ref("s", "temp"), lit("mote-2")),
		// Structured and nil values: error paths.
		cmp("=", ref("s", "loc"), lit(float64(0))),
		// Constant folds, including a folded error.
		cmp("<", lit(float64(1)), lit(float64(2))),
		cmp("=", lit(true), lit("x")),
		// Logic trees with short circuits and NOT.
		&sqlparse.Logic{Op: "AND",
			Left:  cmp(">", ref("s", "accel_x"), lit(float64(3))),
			Right: cmp("=", ref("c", "id"), lit("cam-0"))},
		&sqlparse.Logic{Op: "OR",
			Left:  cmp("=", ref("s", "id"), lit("mote-1")),
			Right: &sqlparse.Not{Inner: cmp("=", ref("s", "loc"), lit(float64(1)))}},
		// Functions, including one that always errors.
		&sqlparse.Call{Func: "near", Args: []sqlparse.Expr{ref("s", "accel_x"), ref("c", "ip")}},
		&sqlparse.Call{Func: "broken", Args: []sqlparse.Expr{ref("s", "id")}},
		// Non-boolean in boolean position.
		ref("s", "accel_x"),
		&sqlparse.Logic{Op: "AND", Left: lit(true), Right: ref("s", "id")},
	}

	compiled := 0
	for seed := byte(0); seed < 8; seed++ {
		g := &exprGen{data: []byte{seed, byte(seed * 31), byte(seed * 7), 5, 9, 2, 6, seed, 1, 4, 1, 5, 9}}
		sb, sAttrs := g.genSBatch()
		cb, cAttrs := g.genCBatch()
		for _, where := range clauses {
			if diffCompiledEval(t, where, sb, cb, sAttrs, cAttrs) {
				compiled++
			}
		}
		sb.Release()
		cb.Release()
	}
	if compiled == 0 {
		t.Fatal("no seed clause compiled; the differential harness exercised nothing")
	}
}

// TestCompileWhereFallback verifies the shapes the compiler must refuse —
// ambiguous unqualified columns, unknown columns, unknown aliases — so the
// interpreted reference path keeps serving them.
func TestCompileWhereFallback(t *testing.T) {
	cases := []sqlparse.Expr{
		&sqlparse.Compare{Op: "=", Left: &sqlparse.ColumnRef{Column: "id"}, Right: &sqlparse.Literal{Value: "x"}},
		&sqlparse.Compare{Op: "=", Left: &sqlparse.ColumnRef{Column: "nope"}, Right: &sqlparse.Literal{Value: "x"}},
		&sqlparse.Compare{Op: "=", Left: &sqlparse.ColumnRef{Qualifier: "z", Column: "id"}, Right: &sqlparse.Literal{Value: "x"}},
		&sqlparse.Compare{Op: "=", Left: &sqlparse.ColumnRef{Qualifier: "s", Column: "ip"}, Right: &sqlparse.Literal{Value: "x"}},
	}
	for _, where := range cases {
		if cw, err := compileWhere(fuzzQuery(where), nil); err == nil || cw != nil {
			t.Errorf("WHERE %s compiled; want interpreted fallback", where)
		}
	}
}

// BenchmarkPredicateCompile compares the two WHERE evaluation paths over a
// 50-row scan: before materializes a row map and walks the AST per row
// (the interpreted reference), after runs the compiled closures
// positionally over the batch columns.
func BenchmarkPredicateCompile(b *testing.B) {
	ref := func(q, c string) *sqlparse.ColumnRef { return &sqlparse.ColumnRef{Qualifier: q, Column: c} }
	where := &sqlparse.Logic{Op: "AND",
		Left:  &sqlparse.Compare{Op: ">", Left: ref("s", "accel_x"), Right: &sqlparse.Literal{Value: float64(10)}},
		Right: &sqlparse.Compare{Op: "!=", Left: ref("s", "id"), Right: &sqlparse.Literal{Value: "mote-3"}},
	}
	q := &Query{
		sel:    &sqlparse.Select{Where: where},
		tables: []boundTable{{alias: "s", deviceType: "sensor", attrs: []string{"id", "accel_x"}}},
	}
	cw, err := compileWhere(q, nil)
	if err != nil {
		b.Fatal(err)
	}

	const rows = 50
	batch := comm.NewBatch(comm.NewSchema(
		[]string{"id", "accel_x"}, []comm.Kind{comm.KindString, comm.KindFloat}))
	for i := 0; i < rows; i++ {
		batch.Append([]any{fmt.Sprintf("mote-%d", i%8), float64(i)})
	}
	view := scanshare.TableView{Batch: batch, Attrs: []string{"id", "accel_x"}}

	b.Run("before", func(b *testing.B) {
		env := &evalEnv{}
		for i := 0; i < b.N; i++ {
			for p := 0; p < rows; p++ {
				env.row = Row{"s": view.Row(p)}
				if _, err := env.evalBool(where); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("after", func(b *testing.B) {
		fr := cw.newFrame(1)
		cw.bind(fr, []*comm.Batch{batch})
		for i := 0; i < b.N; i++ {
			for p := 0; p < rows; p++ {
				fr.rows[0] = p
				if _, err := cw.eval(fr); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
