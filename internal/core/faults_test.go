package core_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"aorta/internal/core"
	"aorta/internal/lab"
	"aorta/internal/wal"
)

// A WHERE-clause function that panics must become a contained per-query
// error, and at QuarantineAfter panics the query must be auto-stopped
// with a recorded reason — not crash the process, not keep grinding.
func TestPanicQuarantinesQuery(t *testing.T) {
	l := newLab(t, lab.Config{Engine: core.Config{QuarantineAfter: 2}})
	eng := l.Engine
	eng.RegisterBoolFunc("boom", func(args []any) (bool, error) {
		panic("kaboom: poisoned predicate")
	})

	ctx := context.Background()
	if _, err := eng.Exec(ctx, `CREATE AQ poison AS SELECT s.id FROM sensor s WHERE boom() EVERY "1s"`); err != nil {
		t.Fatal(err)
	}

	ok := waitFor(t, 10*time.Second, func() bool {
		info, _ := eng.QueryInfo("poison")
		return info.Quarantined
	})
	info, _ := eng.QueryInfo("poison")
	if !ok {
		t.Fatalf("query not quarantined; info=%+v metrics=%+v", info, eng.Metrics())
	}
	if info.Running {
		t.Errorf("quarantined query still running: %+v", info)
	}
	if info.Panics < 2 {
		t.Errorf("info.Panics = %d, want >= 2", info.Panics)
	}
	if info.Reason == "" {
		t.Error("quarantine reason not recorded")
	}

	m := eng.Metrics()
	if m.EvalPanics < 2 || m.QuarantinedQueries != 1 {
		t.Errorf("metrics EvalPanics=%d QuarantinedQueries=%d, want >=2 and 1", m.EvalPanics, m.QuarantinedQueries)
	}

	// START AQ must refuse the poisoned query by kind.
	if _, err := eng.Exec(ctx, "START AQ poison"); !errors.Is(err, core.ErrQuarantined) {
		t.Fatalf("START AQ err = %v, want ErrQuarantined", err)
	}
	// DROP AQ remains the exit.
	if _, err := eng.Exec(ctx, "DROP AQ poison"); err != nil {
		t.Fatalf("DROP AQ after quarantine: %v", err)
	}
}

// An action handler that panics must yield a FailPanic outcome for its
// request (terminal, no retries) instead of stranding the executor.
func TestActionPanicBecomesFailPanicOutcome(t *testing.T) {
	l := newLab(t, lab.Config{})
	eng := l.Engine

	prof, ok := eng.Registry().Action("photo")
	if !ok {
		t.Fatal("no photo profile")
	}
	err := eng.RegisterUserAction(&core.ActionDef{
		Name:    "kapow",
		Profile: prof,
		Fn: func(ctx context.Context, actx *core.ActionContext, args []any) (any, error) {
			panic("kapow: handler bug")
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	sql := `CREATE AQ pq AS SELECT kapow(c.ip) FROM sensor s, camera c
		WHERE s.accel_x > 500 AND coverage(c.id, s.loc) EVERY "2s"`
	if _, err := eng.Exec(context.Background(), sql); err != nil {
		t.Fatal(err)
	}
	l.StimulateMote(2, 900, 3*time.Second)

	var panicked *core.Outcome
	waitFor(t, 10*time.Second, func() bool {
		for _, o := range eng.Outcomes() {
			if o.Failure == core.FailPanic {
				panicked = o
				return true
			}
		}
		return false
	})
	if panicked == nil {
		t.Fatalf("no FailPanic outcome; outcomes=%+v", eng.Outcomes())
	}
	if !errors.Is(panicked.Err, core.ErrPanic) {
		t.Errorf("outcome err = %v, want ErrPanic", panicked.Err)
	}
	if panicked.Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (panics are terminal)", panicked.Attempts)
	}
}

// Journal write faults must flip the engine read-only: mutating
// statements refused with ErrDegraded while continuous queries keep
// running, and a successful journal probe exits the mode.
func TestJournalFaultEntersAndExitsDegradedMode(t *testing.T) {
	j, err := wal.Open(t.TempDir(), wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	l := newLab(t, lab.Config{Engine: core.Config{Journal: j}})
	eng := l.Engine
	ctx := context.Background()

	if _, err := eng.Exec(ctx, `CREATE AQ streamer AS SELECT s.id FROM sensor s WHERE s.accel_x > 100000 EVERY "1s"`); err != nil {
		t.Fatal(err)
	}

	// Every journal write — appends and the degraded probe's sync — now
	// fails, as if the disk under the journal filled up.
	j.InjectFaults(100, 100, nil)
	if _, err := eng.Exec(ctx, `CREATE AQ second AS SELECT s.id FROM sensor s EVERY "1s"`); err != nil {
		// The statement that trips the first failed append may itself
		// succeed (the append is logged-and-swallowed); only subsequent
		// mutations see ErrDegraded. Either way the mode must now be set.
		t.Logf("mutation during fault injection: %v", err)
	}
	if !eng.Degraded() {
		t.Fatal("engine not degraded after journal append fault")
	}
	if _, err := eng.Exec(ctx, `CREATE AQ third AS SELECT s.id FROM sensor s EVERY "1s"`); !errors.Is(err, core.ErrDegraded) {
		t.Fatalf("mutating statement in degraded mode: err = %v, want ErrDegraded", err)
	}
	// Reads and the running continuous query are unaffected.
	if _, err := eng.Exec(ctx, "SHOW QUERIES"); err != nil {
		t.Fatalf("SHOW QUERIES in degraded mode: %v", err)
	}
	if info, _ := eng.QueryInfo("streamer"); !info.Running {
		t.Fatalf("continuous query stopped by degraded mode: %+v", info)
	}
	m := eng.Metrics()
	if !m.Degraded || m.DegradedEntries != 1 {
		t.Fatalf("metrics = %+v, want Degraded with one entry", m)
	}
	if st, ok := eng.JournalStats(); !ok || st.AppendErrors == 0 {
		t.Fatalf("journal stats = %+v ok=%v, want AppendErrors > 0", st, ok)
	}

	// Disk recovers: the next mutation's probe must clear the mode and
	// the statement must go through.
	j.InjectFaults(0, 0, nil)
	if _, err := eng.Exec(ctx, `CREATE AQ fourth AS SELECT s.id FROM sensor s EVERY "1s"`); err != nil {
		t.Fatalf("mutating statement after recovery: %v", err)
	}
	if eng.Degraded() {
		t.Fatal("engine still degraded after successful probe")
	}
	if m := eng.Metrics(); m.DegradedExits != 1 {
		t.Fatalf("metrics = %+v, want one degraded exit", m)
	}
}
