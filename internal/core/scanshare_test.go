package core_test

// Engine-level tests of the shared scan fabric integration: queries with
// compatible epochs ride one coalesced device scan, SHOW SCANS reports the
// sharing, and the SHOW listings are deterministically ordered.

import (
	"context"
	"sort"
	"strings"
	"testing"
	"time"

	"aorta/internal/lab"
)

// TestScanFabricSharing registers three sensor queries with compatible
// epochs and checks that they share one scan group: the fabric samples the
// sensor table once per epoch no matter how many queries subscribe.
func TestScanFabricSharing(t *testing.T) {
	l := newLab(t, lab.Config{})
	eng := l.Engine
	ctx := context.Background()

	for _, sql := range []string{
		`CREATE AQ fast AS SELECT s.id FROM sensor s WHERE s.accel_x > 500 EVERY "1s"`,
		`CREATE AQ slowA AS SELECT s.id FROM sensor s WHERE s.accel_x > 600 EVERY "2s"`,
		`CREATE AQ slowB AS SELECT s.temp FROM sensor s WHERE s.temp > 100 EVERY "2s"`,
	} {
		if _, err := eng.Exec(ctx, sql); err != nil {
			t.Fatal(err)
		}
	}

	// All three subscriptions align into the 1s cohort (2s is a multiple),
	// sharing a single sensor scan.
	if !waitFor(t, 5*time.Second, func() bool {
		sharing := eng.ScanSharing()
		return len(sharing) == 1 && sharing[0].Queries == 3
	}) {
		t.Fatalf("scan sharing = %+v, want one sensor group with 3 queries", eng.ScanSharing())
	}
	si := eng.ScanSharing()[0]
	if si.DeviceType != "sensor" || si.Epoch != time.Second {
		t.Errorf("share group = %+v, want sensor every 1s", si)
	}

	res, err := eng.Exec(ctx, "SHOW SCANS")
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "scans" || len(res.Names) != 1 {
		t.Fatalf("SHOW SCANS = %+v", res)
	}
	if !strings.Contains(res.Names[0], "sensor every 1s: 3 queries") {
		t.Errorf("SHOW SCANS line = %q", res.Names[0])
	}

	// Let epochs elapse: one type scan per epoch — never one per query —
	// and the avoided scans are counted.
	if !waitFor(t, 5*time.Second, func() bool {
		m := eng.ScanMetrics()
		return m.Epochs >= 4 && m.ScansCoalesced > 0
	}) {
		t.Fatalf("fabric metrics = %+v", eng.ScanMetrics())
	}
	m := eng.ScanMetrics()
	// One scan per epoch, never one per query. (A tick increments Epochs
	// just before scanning, so a snapshot may catch one scan in flight.)
	if m.TypeScans > m.Epochs || m.TypeScans < m.Epochs-1 {
		t.Errorf("TypeScans = %d over %d epochs with 3 queries, want one scan per epoch",
			m.TypeScans, m.Epochs)
	}
	if m.IndexProbes == 0 {
		t.Error("predicate index never probed")
	}

	// Dropping a query releases its share; the group shrinks.
	if _, err := eng.Exec(ctx, "DROP AQ slowA"); err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, 5*time.Second, func() bool {
		sharing := eng.ScanSharing()
		return len(sharing) == 1 && sharing[0].Queries == 2
	}) {
		t.Fatalf("scan sharing after DROP = %+v, want 2 queries", eng.ScanSharing())
	}
}

// TestPredicateRoutingEndToEnd: with an indexable threshold predicate, a
// stimulated mote's tuples reach the query and fire its action, exactly as
// before the fabric — routing is an early filter, not a semantic change.
func TestPredicateRoutingEndToEnd(t *testing.T) {
	l := newLab(t, lab.Config{})
	eng := l.Engine
	if _, err := eng.Exec(context.Background(), snapshotSQL); err != nil {
		t.Fatal(err)
	}
	l.StimulateMote(2, 900, 3*time.Second)
	if !waitFor(t, 5*time.Second, func() bool { return eng.Metrics().Requests >= 1 }) {
		t.Fatalf("no action requests after stimulus; fabric=%+v", eng.ScanMetrics())
	}
	m := eng.ScanMetrics()
	if m.IndexHits == 0 {
		t.Errorf("stimulus fired the action without any index hit: %+v", m)
	}
	// The camera table has no indexable predicates — its tuples flow
	// through the residual path.
	if m.ResidualHits == 0 {
		t.Errorf("camera residual subscription never delivered: %+v", m)
	}
}

// TestShowOrderingDeterministic asserts the SHOW listings come back in a
// stable order: queries by registration ID, devices sorted by ID.
func TestShowOrderingDeterministic(t *testing.T) {
	l := newLab(t, lab.Config{})
	eng := l.Engine
	ctx := context.Background()

	// Register in non-alphabetical name order so map iteration order and
	// name order disagree with ID order.
	for _, name := range []string{"zeta", "alpha", "mid"} {
		sql := `CREATE AQ ` + name + ` AS SELECT s.id FROM sensor s WHERE s.temp > 100 EVERY "5s"`
		if _, err := eng.Exec(ctx, sql); err != nil {
			t.Fatal(err)
		}
	}

	wantNames := []string{"zeta", "alpha", "mid"} // ID order
	for round := 0; round < 5; round++ {
		res, err := eng.Exec(ctx, "SHOW QUERIES")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Queries) != len(wantNames) {
			t.Fatalf("SHOW QUERIES returned %d entries", len(res.Queries))
		}
		for i, info := range res.Queries {
			if info.Name != wantNames[i] {
				t.Fatalf("round %d: queries out of ID order: got %q at %d, want %q",
					round, info.Name, i, wantNames[i])
			}
			if i > 0 && res.Queries[i-1].ID >= info.ID {
				t.Fatalf("round %d: IDs not ascending: %d then %d", round, res.Queries[i-1].ID, info.ID)
			}
		}
	}

	for round := 0; round < 5; round++ {
		res, err := eng.Exec(ctx, "SHOW DEVICES")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Names) == 0 {
			t.Fatal("SHOW DEVICES returned nothing")
		}
		if !sort.StringsAreSorted(res.Names) {
			t.Fatalf("round %d: SHOW DEVICES not sorted:\n%s", round, strings.Join(res.Names, "\n"))
		}
	}
}
