package core_test

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"aorta/internal/core"
	"aorta/internal/lab"
	"aorta/internal/netsim"
)

// syncBuffer guards concurrent handler writes.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestEngineLogging: the engine emits structured events for query
// lifecycle and action failures.
func TestEngineLogging(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	l, err := lab.New(lab.Config{Engine: core.Config{Logger: logger}})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ctx := context.Background()
	if err := l.Engine.Start(ctx); err != nil {
		t.Fatal(err)
	}

	if _, err := l.Engine.Exec(ctx, snapshotSQL); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "query registered") {
		t.Errorf("missing registration log:\n%s", buf.String())
	}

	// Down every camera: the resulting failures must be logged.
	l.Network.SetLink("camera-1", netsim.LinkConfig{Down: true})
	l.Network.SetLink("camera-2", netsim.LinkConfig{Down: true})
	l.StimulateMote(0, 900, 10*time.Second)
	waitFor(t, 8*time.Second, func() bool {
		return strings.Contains(buf.String(), "action failed")
	})
	out := buf.String()
	if !strings.Contains(out, "action failed") {
		t.Errorf("missing failure log:\n%s", out)
	}
	if !strings.Contains(out, "probe excluded candidates") {
		t.Errorf("missing probe exclusion log:\n%s", out)
	}

	if _, err := l.Engine.Exec(ctx, "DROP AQ snapshot"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "query dropped") {
		t.Errorf("missing drop log:\n%s", buf.String())
	}
}

// TestEngineStopLogsDrainOnce: Stop drains the transport pool and logs
// it exactly once, even when Stop is called again (e.g. a deferred
// Stop after an explicit shutdown).
func TestEngineStopLogsDrainOnce(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	l, err := lab.New(lab.Config{Engine: core.Config{Logger: logger}})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Engine.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	l.Engine.Stop()
	l.Engine.Stop()
	if got := strings.Count(buf.String(), "transport pool drained"); got != 1 {
		t.Errorf("drain logged %d times, want 1:\n%s", got, buf.String())
	}
}
