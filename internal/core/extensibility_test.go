package core_test

// The paper's §3 design goal: "make the communication layer easily
// extensible for new types of devices in the future." This test adds a
// whole new device type (an RFID reader) to a running system — catalog,
// atomic costs and action profile from XML, the emulator served over the
// simulated network — and drives it from SQL, without modifying the
// engine, the communication layer, or any built-in.

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"aorta/internal/comm"
	"aorta/internal/core"
	"aorta/internal/device"
	"aorta/internal/device/rfid"
	"aorta/internal/geo"
	"aorta/internal/netsim"
	"aorta/internal/profile"
	"aorta/internal/vclock"
)

func TestNewDeviceTypeEndToEnd(t *testing.T) {
	clk := vclock.NewScaled(100)
	network := netsim.NewNetwork(clk, 1)

	// Extend the registry with the new type before the engine starts.
	reg, err := profile.DefaultRegistry()
	if err != nil {
		t.Fatal(err)
	}
	cat, err := profile.ParseCatalog([]byte(rfid.CatalogXML))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterCatalog(cat); err != nil {
		t.Fatal(err)
	}
	costs, err := profile.ParseAtomicCosts([]byte(rfid.CostsXML))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterCosts(costs); err != nil {
		t.Fatal(err)
	}

	eng, err := core.New(core.Config{Clock: clk, Dialer: network, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}

	// Serve two readers on the simulated network.
	readers := make([]*rfid.Reader, 2)
	for i, id := range []string{"rfid-1", "rfid-2"} {
		r := rfid.New(id, geo.Point{X: float64(i * 5)}, clk)
		readers[i] = r
		lis, err := network.Listen(id)
		if err != nil {
			t.Fatal(err)
		}
		srv := device.Serve(lis, r)
		t.Cleanup(func() { srv.Close() })
		if err := eng.RegisterDevice(comm.DeviceInfo{
			ID: id, Type: "rfid", Addr: id,
			Static: map[string]any{"loc": r.Location()},
		}, geo.Mount{}); err != nil {
			t.Fatal(err)
		}
	}

	// Register the scantag action: profile from the extension XML, a Go
	// implementation driving the device through the uniform layer.
	ap, err := profile.ParseAction([]byte(rfid.ScanTagProfileXML))
	if err != nil {
		t.Fatal(err)
	}
	scanned := make(chan []string, 8)
	if err := eng.RegisterUserAction(&core.ActionDef{
		Name:    "scantag",
		Profile: ap,
		Fn: func(ctx context.Context, actx *core.ActionContext, _ []any) (any, error) {
			raw, err := actx.Engine.Layer().Exec(ctx, actx.DeviceID, "scan", nil)
			if err != nil {
				return nil, err
			}
			var res rfid.ScanResult
			if err := json.Unmarshal(raw, &res); err != nil {
				return nil, err
			}
			scanned <- res.Tags
			return &res, nil
		},
	}); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	if err := eng.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	// Ad-hoc scan of the new virtual table.
	res, err := eng.Exec(ctx, `SELECT r.id, r.tags_in_range FROM rfid r`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for _, row := range res.Rows {
		if row["r.tags_in_range"].(float64) != 0 {
			t.Errorf("row = %v", row)
		}
	}

	// A continuous query on the new type with the new action embedded.
	if _, err := eng.Exec(ctx, `CREATE AQ assets AS
		SELECT scantag(r.id)
		FROM rfid r
		WHERE r.tags_in_range > 0
		EVERY "2s"`); err != nil {
		t.Fatal(err)
	}

	// A tagged asset arrives at reader 2.
	readers[1].PlaceTag("asset-42", "forklift")
	select {
	case tags := <-scanned:
		if len(tags) != 1 || tags[0] != "asset-42" {
			t.Errorf("scanned = %v", tags)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("scantag never fired; metrics=%+v", eng.Metrics())
	}

	// SHOW DEVICES includes the new type.
	show, err := eng.Exec(ctx, "SHOW DEVICES")
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, n := range show.Names {
		if len(n) >= 4 && n[:4] == "rfid" {
			found++
		}
	}
	if found != 2 {
		t.Errorf("SHOW DEVICES rfid entries = %d: %v", found, show.Names)
	}
}
