package core_test

import (
	"context"
	"math"
	"testing"

	"aorta/internal/lab"
	"aorta/internal/netsim"
)

func TestAggregateCountStar(t *testing.T) {
	l := newLab(t, lab.Config{})
	res, err := l.Engine.Exec(context.Background(), `SELECT count(*) FROM sensor s`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if got := res.Rows[0]["count(*)"]; got != 10.0 {
		t.Errorf("count(*) = %v, want 10", got)
	}
}

func TestAggregateStats(t *testing.T) {
	l := newLab(t, lab.Config{})
	res, err := l.Engine.Exec(context.Background(),
		`SELECT avg(s.temp), min(s.temp), max(s.temp), sum(s.temp), count(s.temp) FROM sensor s`)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	avg := row["avg(s.temp)"].(float64)
	min := row["min(s.temp)"].(float64)
	max := row["max(s.temp)"].(float64)
	sum := row["sum(s.temp)"].(float64)
	count := row["count(s.temp)"].(float64)
	if count != 10 {
		t.Errorf("count = %v", count)
	}
	if min > avg || avg > max {
		t.Errorf("ordering violated: min=%v avg=%v max=%v", min, avg, max)
	}
	if math.Abs(sum/count-avg) > 1e-9 {
		t.Errorf("avg (%v) != sum/count (%v)", avg, sum/count)
	}
	// Motes read ≈22°C ± noise.
	if avg < 20 || avg > 24 {
		t.Errorf("avg temp = %v, want ≈22", avg)
	}
}

func TestAggregateWithWhere(t *testing.T) {
	l := newLab(t, lab.Config{})
	res, err := l.Engine.Exec(context.Background(),
		`SELECT count(*) FROM sensor s WHERE s.temp > 1000`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0]["count(*)"]; got != 0.0 {
		t.Errorf("count over empty set = %v", got)
	}
}

func TestAggregateEmptyAvgIsNull(t *testing.T) {
	l := newLab(t, lab.Config{})
	res, err := l.Engine.Exec(context.Background(),
		`SELECT avg(s.temp) FROM sensor s WHERE s.temp > 1000`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0]["avg(s.temp)"]; got != nil {
		t.Errorf("avg over empty set = %v, want nil", got)
	}
}

func TestAggregateSkipsUnreachable(t *testing.T) {
	l := newLab(t, lab.Config{})
	l.Network.SetLink("mote-1", netsim.LinkConfig{Down: true})
	// Counting a sensory attribute forces live acquisition, so the downed
	// mote contributes no tuple (network data independence). A static-only
	// count(*) would still answer 10 from the registry.
	res, err := l.Engine.Exec(context.Background(), `SELECT count(s.temp) FROM sensor s`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0]["count(s.temp)"]; got != 9.0 {
		t.Errorf("count with one mote down = %v, want 9", got)
	}
}

func TestAggregateErrors(t *testing.T) {
	l := newLab(t, lab.Config{})
	ctx := context.Background()
	tests := []struct {
		name string
		sql  string
	}{
		{"mixed with column", `SELECT count(*), s.temp FROM sensor s`},
		{"mixed with action", `SELECT count(*), photo(c.ip, s.loc, "d") FROM sensor s, camera c`},
		{"avg of star", `SELECT avg(*) FROM sensor s`},
		{"two args", `SELECT avg(s.temp, s.light) FROM sensor s`},
		{"non-numeric", `SELECT sum(s.id) FROM sensor s`},
		{"unknown column", `SELECT avg(s.altitude) FROM sensor s`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := l.Engine.Exec(ctx, tt.sql); err == nil {
				t.Errorf("Exec(%q) succeeded", tt.sql)
			}
		})
	}
}

func TestAggregateExplain(t *testing.T) {
	l := newLab(t, lab.Config{})
	res, err := l.Engine.Exec(context.Background(), `EXPLAIN SELECT avg(s.temp) FROM sensor s EVERY "5s"`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, line := range res.Names {
		if line == "  aggregate avg(s.temp)" {
			found = true
		}
	}
	if !found {
		t.Errorf("plan missing aggregate line: %v", res.Names)
	}
}

func TestGroupByDepth(t *testing.T) {
	l := newLab(t, lab.Config{})
	// The default lab assigns depths 1,2,3 cyclically over 10 motes:
	// depth 1 ×4, depth 2 ×3, depth 3 ×3.
	res, err := l.Engine.Exec(context.Background(),
		`SELECT s.depth, count(*) FROM sensor s GROUP BY s.depth`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %v", res.Rows)
	}
	byDepth := map[float64]float64{}
	for _, row := range res.Rows {
		d, _ := row["s.depth"].(int)
		if d == 0 {
			if f, ok := row["s.depth"].(float64); ok {
				d = int(f)
			}
		}
		byDepth[float64(d)] = row["count(*)"].(float64)
	}
	if byDepth[1] != 4 || byDepth[2] != 3 || byDepth[3] != 3 {
		t.Errorf("counts by depth = %v, want 1:4 2:3 3:3", byDepth)
	}
}

func TestGroupByWithStats(t *testing.T) {
	l := newLab(t, lab.Config{})
	res, err := l.Engine.Exec(context.Background(),
		`SELECT s.depth, avg(s.temp), count(s.temp) FROM sensor s GROUP BY s.depth`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %v", res.Rows)
	}
	for _, row := range res.Rows {
		avg, ok := row["avg(s.temp)"].(float64)
		if !ok || avg < 20 || avg > 24 {
			t.Errorf("group %v avg = %v", row["s.depth"], row["avg(s.temp)"])
		}
	}
}

func TestGroupByErrors(t *testing.T) {
	l := newLab(t, lab.Config{})
	ctx := context.Background()
	tests := []struct {
		name string
		sql  string
	}{
		{"group without aggregates", `SELECT s.id FROM sensor s GROUP BY s.id`},
		{"non-grouped column", `SELECT s.id, count(*) FROM sensor s GROUP BY s.depth`},
		{"unknown group column", `SELECT count(*) FROM sensor s GROUP BY s.altitude`},
		{"dangling group by", `SELECT count(*) FROM sensor s GROUP`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := l.Engine.Exec(ctx, tt.sql); err == nil {
				t.Errorf("Exec(%q) succeeded", tt.sql)
			}
		})
	}
}

func TestGroupBySelectedColumnAllowed(t *testing.T) {
	l := newLab(t, lab.Config{})
	res, err := l.Engine.Exec(context.Background(),
		`SELECT s.depth, max(s.battery) FROM sensor s GROUP BY s.depth`)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if _, ok := row["s.depth"]; !ok {
			t.Errorf("row missing group column: %v", row)
		}
	}
}
