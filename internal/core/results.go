package core

import (
	"errors"
	"sync"
	"time"

	"aorta/internal/comm"
)

// FailureKind classifies action failures for the §6.2 study.
type FailureKind int

// Failure kinds.
const (
	FailNone FailureKind = iota
	FailConnect
	FailBlurred
	FailWrongPosition
	FailStale
	FailOther
)

// String implements fmt.Stringer.
func (k FailureKind) String() string {
	switch k {
	case FailNone:
		return "ok"
	case FailConnect:
		return "connect/timeout"
	case FailBlurred:
		return "blurred"
	case FailWrongPosition:
		return "wrong-position"
	case FailStale:
		return "stale"
	default:
		return "other"
	}
}

// classifyFailure maps an action error to its failure kind.
func classifyFailure(err error) FailureKind {
	switch {
	case err == nil:
		return FailNone
	case errors.Is(err, ErrBlurred):
		return FailBlurred
	case errors.Is(err, ErrWrongPosition):
		return FailWrongPosition
	case errors.Is(err, ErrStale):
		return FailStale
	case errors.Is(err, comm.ErrTimeout), errors.Is(err, comm.ErrUnknownDevice),
		errors.Is(err, comm.ErrUnreachable), errors.Is(err, errNoCandidates):
		return FailConnect
	default:
		var ne interface{ Timeout() bool }
		if errors.As(err, &ne) && ne.Timeout() {
			return FailConnect
		}
		return FailOther
	}
}

// Outcome records the completion of one action request.
type Outcome struct {
	RequestID int64
	QueryID   int
	Query     string
	Action    string
	DeviceID  string
	EventKey  string
	// Latency is event-to-completion time on the engine clock.
	Latency time.Duration
	Result  any
	Err     error
	Failure FailureKind
}

// OK reports whether the action succeeded.
func (o *Outcome) OK() bool { return o.Failure == FailNone }

// EngineMetrics aggregates engine activity.
type EngineMetrics struct {
	mu        sync.Mutex
	requests  int64
	successes int64
	failures  map[FailureKind]int64
	latencies time.Duration
}

func newEngineMetrics() *EngineMetrics {
	return &EngineMetrics{failures: make(map[FailureKind]int64)}
}

func (m *EngineMetrics) record(o *Outcome) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests++
	if o.OK() {
		m.successes++
	} else {
		m.failures[o.Failure]++
	}
	m.latencies += o.Latency
}

// Snapshot is a point-in-time copy of the metrics.
type MetricsSnapshot struct {
	Requests  int64
	Successes int64
	Failures  map[FailureKind]int64
	// FailureRate is failed/total (0 when no requests).
	FailureRate float64
	// MeanLatency is the mean event-to-completion latency.
	MeanLatency time.Duration
}

// Snapshot returns a copy of the current counters.
func (m *EngineMetrics) Snapshot() MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := MetricsSnapshot{
		Requests:  m.requests,
		Successes: m.successes,
		Failures:  make(map[FailureKind]int64, len(m.failures)),
	}
	var failed int64
	for k, v := range m.failures {
		snap.Failures[k] = v
		failed += v
	}
	if m.requests > 0 {
		snap.FailureRate = float64(failed) / float64(m.requests)
		snap.MeanLatency = m.latencies / time.Duration(m.requests)
	}
	return snap
}

// outcomeLog keeps a bounded in-memory history of outcomes and fans them
// out to subscribers.
type outcomeLog struct {
	mu       sync.Mutex
	outcomes []*Outcome
	subs     []chan *Outcome
}

const maxOutcomes = 100000

func (l *outcomeLog) add(o *Outcome) {
	l.mu.Lock()
	if len(l.outcomes) >= maxOutcomes {
		copy(l.outcomes, l.outcomes[1:])
		l.outcomes = l.outcomes[:len(l.outcomes)-1]
	}
	l.outcomes = append(l.outcomes, o)
	subs := append([]chan *Outcome(nil), l.subs...)
	l.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- o:
		default: // slow subscriber: drop rather than stall the executor
		}
	}
}

func (l *outcomeLog) all() []*Outcome {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*Outcome, len(l.outcomes))
	copy(out, l.outcomes)
	return out
}

func (l *outcomeLog) subscribe(buf int) chan *Outcome {
	ch := make(chan *Outcome, buf)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.subs = append(l.subs, ch)
	return ch
}
