package core

import (
	"context"
	"errors"
	"sync"
	"time"

	"aorta/internal/comm"
	"aorta/internal/devsync"
)

// FailureKind classifies action failures for the §6.2 study.
type FailureKind int

// Failure kinds.
const (
	FailNone FailureKind = iota
	FailConnect
	FailBlurred
	FailWrongPosition
	FailStale
	FailOther
	// FailRetried marks a request that went through failover retries and
	// still ended on a retryable (transient) failure: the attempt budget or
	// the candidate set ran out before any device answered. Semantic
	// failures (blurred, wrong-position) and deadline expiries keep their
	// own kinds even after retries.
	FailRetried
	// FailNoDevice marks a request whose coverage was truly empty: every
	// candidate device was unavailable (Down, unreachable or excluded)
	// before any execution attempt could be made. Under device churn this
	// is the graceful-degradation floor — queries keep running with fewer
	// candidates and only report FailNoDevice when nobody is left.
	FailNoDevice
	// FailExpired marks a journaled intent whose deadline passed while the
	// engine was down: recovery closes it with this outcome instead of
	// firing a stale action. Always terminal; never retried.
	FailExpired
	// FailPanic marks an action whose handler panicked and was contained
	// at the executor's recover() boundary. Terminal: the same input
	// would panic again, so retrying only burns the attempt budget.
	FailPanic
)

// String implements fmt.Stringer.
func (k FailureKind) String() string {
	switch k {
	case FailNone:
		return "ok"
	case FailConnect:
		return "connect/timeout"
	case FailBlurred:
		return "blurred"
	case FailWrongPosition:
		return "wrong-position"
	case FailStale:
		return "stale"
	case FailRetried:
		return "retried-exhausted"
	case FailNoDevice:
		return "no-device"
	case FailExpired:
		return "expired"
	case FailPanic:
		return "panic"
	default:
		return "other"
	}
}

// MarshalText renders the kind by name, so JSON consumers (aortad's
// \metrics response) see readable failure-breakdown keys instead of enum
// ordinals.
func (k FailureKind) MarshalText() ([]byte, error) {
	return []byte(k.String()), nil
}

// UnmarshalText parses a kind name produced by MarshalText; unknown names
// decode as FailOther so old clients survive new kinds.
func (k *FailureKind) UnmarshalText(text []byte) error {
	for kind := FailNone; kind <= FailPanic; kind++ {
		if kind.String() == string(text) {
			*k = kind
			return nil
		}
	}
	*k = FailOther
	return nil
}

// classifyFailure maps an action error to its failure kind.
func classifyFailure(err error) FailureKind {
	switch {
	case err == nil:
		return FailNone
	case errors.Is(err, ErrPanic):
		return FailPanic
	case errors.Is(err, ErrBlurred):
		return FailBlurred
	case errors.Is(err, ErrWrongPosition):
		return FailWrongPosition
	case errors.Is(err, ErrExpired):
		return FailExpired
	case errors.Is(err, ErrStale), errors.Is(err, ErrShutdown):
		return FailStale
	case errors.Is(err, errNoCandidates):
		return FailNoDevice
	case errors.Is(err, comm.ErrTimeout), errors.Is(err, comm.ErrUnknownDevice),
		errors.Is(err, comm.ErrUnreachable):
		return FailConnect
	default:
		var ne interface{ Timeout() bool }
		if errors.As(err, &ne) && ne.Timeout() {
			return FailConnect
		}
		return FailOther
	}
}

// classifyOutcome is the retry-aware taxonomy: a request that was
// re-dispatched at least once and still failed with a retryable error
// reports FailRetried, so the §6.2-style studies can tell "transient
// failure that failover could not absorb" from "first-attempt failure".
func classifyOutcome(err error, attempts int, retryable bool) FailureKind {
	if err != nil && attempts > 1 && (retryable || errors.Is(err, errNoCandidates)) {
		return FailRetried
	}
	return classifyFailure(err)
}

// retryableFailure reports whether an attempt's failure class justifies
// re-dispatching the request on another candidate device: transient
// transport failures (connect/timeout/backoff), lock-lease loss mid-action
// and device-reported busy. Semantic failures (blurred, wrong-position,
// not-coverable), staleness, shutdown and context cancellation are
// terminal — repeating them cannot change the cause.
func retryableFailure(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return false
	case errors.Is(err, ErrStale), errors.Is(err, ErrShutdown), errors.Is(err, ErrExpired),
		errors.Is(err, errNoCandidates):
		return false
	case errors.Is(err, ErrBlurred), errors.Is(err, ErrWrongPosition), errors.Is(err, ErrNotCoverable):
		return false
	case errors.Is(err, ErrPanic):
		return false // poisoned input: repeating it would panic again
	case comm.Retryable(err):
		return true
	case errors.Is(err, devsync.ErrNotLocked):
		return true // lock lease lost mid-action: the result is untrusted
	case errors.Is(err, ErrDeviceBusy):
		return true
	default:
		return false
	}
}

// Outcome records the completion of one action request.
type Outcome struct {
	RequestID int64
	QueryID   int
	Query     string
	Action    string
	DeviceID  string
	EventKey  string
	// Deadline is the request's staleness deadline (zero if none). With
	// Query and EventKey it reconstructs the request's journal dedup key
	// (IntentDedupKey), which is how observers match outcomes to durable
	// intents across restarts.
	Deadline time.Time
	// Latency is event-to-completion time on the engine clock.
	Latency time.Duration
	Result  any
	Err     error
	Failure FailureKind
	// Attempts is how many execution attempts the request consumed; values
	// above 1 mean failover re-dispatched it after a transient failure.
	// Zero means the request never reached a device (no candidates, or
	// drained at shutdown).
	Attempts int
}

// OK reports whether the action succeeded.
func (o *Outcome) OK() bool { return o.Failure == FailNone }

// EngineMetrics aggregates engine activity.
type EngineMetrics struct {
	mu              sync.Mutex
	requests        int64
	successes       int64
	failures        map[FailureKind]int64
	latencies       time.Duration
	retries         int64
	dropped         int64
	outcomesDropped int64
	evalPanics      int64
	quarantined     int64
	degradedEntries int64
	degradedExits   int64
}

func newEngineMetrics() *EngineMetrics {
	return &EngineMetrics{failures: make(map[FailureKind]int64)}
}

func (m *EngineMetrics) record(o *Outcome) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests++
	if o.OK() {
		m.successes++
	} else {
		m.failures[o.Failure]++
	}
	if o.Attempts > 1 {
		m.retries += int64(o.Attempts - 1)
	}
	if errors.Is(o.Err, ErrShutdown) {
		m.dropped++
	}
	m.latencies += o.Latency
}

// noteOutcomesDropped counts outcome deliveries lost to slow subscribers.
func (m *EngineMetrics) noteOutcomesDropped(n int) {
	if n == 0 {
		return
	}
	m.mu.Lock()
	m.outcomesDropped += int64(n)
	m.mu.Unlock()
}

// noteEvalPanic counts a panic contained during per-query evaluation.
func (m *EngineMetrics) noteEvalPanic() {
	m.mu.Lock()
	m.evalPanics++
	m.mu.Unlock()
}

// noteQuarantine counts a query auto-stopped after repeated panics.
func (m *EngineMetrics) noteQuarantine() {
	m.mu.Lock()
	m.quarantined++
	m.mu.Unlock()
}

// noteDegraded counts a transition into (entered) or out of journal-
// degraded mode.
func (m *EngineMetrics) noteDegraded(entered bool) {
	m.mu.Lock()
	if entered {
		m.degradedEntries++
	} else {
		m.degradedExits++
	}
	m.mu.Unlock()
}

// Snapshot is a point-in-time copy of the metrics.
type MetricsSnapshot struct {
	Requests  int64
	Successes int64
	Failures  map[FailureKind]int64
	// FailureRate is failed/total (0 when no requests).
	FailureRate float64
	// MeanLatency is the mean event-to-completion latency.
	MeanLatency time.Duration
	// Retries counts failover re-dispatches: execution attempts beyond the
	// first, summed over all requests.
	Retries int64
	// Dropped counts requests drained at engine shutdown (they still
	// produce an Outcome, failed with ErrShutdown).
	Dropped int64
	// OutcomesDropped counts outcome deliveries lost because a
	// SubscribeOutcomes channel was full — the hub never blocks the
	// executor on a slow consumer; it sheds instead and counts here.
	OutcomesDropped int64
	// EvalPanics counts panics contained at per-query evaluation
	// boundaries (compiled predicates, aggregates, action handlers).
	EvalPanics int64
	// QuarantinedQueries counts queries auto-stopped after panicking
	// QuarantineAfter times.
	QuarantinedQueries int64
	// Degraded reports whether the engine is currently in journal-
	// degraded (read-only) mode; DegradedEntries/DegradedExits count the
	// transitions.
	Degraded        bool
	DegradedEntries int64
	DegradedExits   int64
}

// Snapshot returns a copy of the current counters.
func (m *EngineMetrics) Snapshot() MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := MetricsSnapshot{
		Requests:           m.requests,
		Successes:          m.successes,
		Failures:           make(map[FailureKind]int64, len(m.failures)),
		Retries:            m.retries,
		Dropped:            m.dropped,
		OutcomesDropped:    m.outcomesDropped,
		EvalPanics:         m.evalPanics,
		QuarantinedQueries: m.quarantined,
		DegradedEntries:    m.degradedEntries,
		DegradedExits:      m.degradedExits,
	}
	var failed int64
	for k, v := range m.failures {
		snap.Failures[k] = v
		failed += v
	}
	if m.requests > 0 {
		snap.FailureRate = float64(failed) / float64(m.requests)
		snap.MeanLatency = m.latencies / time.Duration(m.requests)
	}
	return snap
}

// outcomeLog keeps a bounded in-memory history of outcomes and fans them
// out to subscribers.
type outcomeLog struct {
	mu       sync.Mutex
	outcomes []*Outcome
	subs     []chan *Outcome
}

const maxOutcomes = 100000

// add records the outcome and fans it out. It returns how many subscriber
// deliveries were dropped because a channel was full — the hub never
// blocks the executor on a slow consumer.
func (l *outcomeLog) add(o *Outcome) int {
	l.mu.Lock()
	if len(l.outcomes) >= maxOutcomes {
		copy(l.outcomes, l.outcomes[1:])
		l.outcomes = l.outcomes[:len(l.outcomes)-1]
	}
	l.outcomes = append(l.outcomes, o)
	subs := append([]chan *Outcome(nil), l.subs...)
	l.mu.Unlock()
	dropped := 0
	for _, ch := range subs {
		select {
		case ch <- o:
		default: // slow subscriber: drop rather than stall the executor
			dropped++
		}
	}
	return dropped
}

func (l *outcomeLog) all() []*Outcome {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*Outcome, len(l.outcomes))
	copy(out, l.outcomes)
	return out
}

func (l *outcomeLog) subscribe(buf int) chan *Outcome {
	ch := make(chan *Outcome, buf)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.subs = append(l.subs, ch)
	return ch
}
