package core_test

// Engine-level lease test: with Config.LockLease set, a hung action
// cannot pin its device — the lease expires and later requests proceed.

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"aorta/internal/core"
	"aorta/internal/lab"
	"aorta/internal/profile"
)

func TestLockLeaseUnblocksHungAction(t *testing.T) {
	l, err := lab.New(lab.Config{
		Motes: 2,
		Engine: core.Config{
			LockLease:           10 * time.Second, // virtual
			ScheduleBusyDevices: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ctx := context.Background()

	// A user action that hangs forever on its first invocation.
	reg, err := profile.DefaultRegistry()
	if err != nil {
		t.Fatal(err)
	}
	blink, _ := reg.Action("blink")
	invocations := make(chan int, 16)
	hang := make(chan struct{})
	var calls atomic.Int64
	if err := l.Engine.RegisterUserAction(&core.ActionDef{
		Name:    "maybehang",
		Profile: blink,
		Fn: func(ctx context.Context, actx *core.ActionContext, _ []any) (any, error) {
			n := int(calls.Add(1))
			invocations <- n
			if n == 1 {
				<-hang // first call never returns until the test ends
				return nil, ctx.Err()
			}
			return "done", nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	defer close(hang)

	if err := l.Engine.Start(ctx); err != nil {
		t.Fatal(err)
	}
	// Only mote-1 matches, so every request targets the same device and
	// must queue on its lock.
	if _, err := l.Engine.Exec(ctx, `CREATE AQ hq AS
		SELECT maybehang(s.id) FROM sensor s
		WHERE s.accel_x > 500 AND s.id = "mote-1" EVERY "3s"`); err != nil {
		t.Fatal(err)
	}
	l.StimulateMote(0, 900, 2*time.Minute)

	// First invocation hangs holding the lease; the second can only run
	// if the 10-virtual-second lease expires.
	select {
	case <-invocations:
	case <-time.After(5 * time.Second):
		t.Fatal("first invocation never started")
	}
	select {
	case n := <-invocations:
		if n != 2 {
			t.Fatalf("unexpected invocation %d", n)
		}
	case <-time.After(8 * time.Second):
		t.Fatal("second invocation never ran; lease did not expire")
	}
	if st := l.Engine.Locks().Stats("mote-1"); st.Expirations == 0 {
		t.Error("no lease expirations recorded")
	}
}
