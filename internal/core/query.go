package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"aorta/internal/comm"
	"aorta/internal/match"
	"aorta/internal/scanshare"
	"aorta/internal/sqlparse"
)

// Query is one registered action-embedded continuous query.
type Query struct {
	ID    int
	Name  string
	Epoch time.Duration

	sel         *sqlparse.Select
	tables      []boundTable
	actionItems []*actionItem
	aggItems    []*aggItem
	groupBy     []*sqlparse.ColumnRef
	projItems   []sqlparse.Expr
	// where is the WHERE clause compiled into flat closures over column
	// accessors; nil when the clause is absent or has a shape the compiler
	// does not handle (the interpreted evalExpr then filters instead).
	where *compiledWhere

	mu      sync.Mutex
	running bool
	// stopped marks a STOP AQ'd query: it stays in the catalog (and in
	// journal snapshots) but is not launched until START AQ clears it —
	// including across an engine restart.
	stopped   bool
	cancel    context.CancelFunc
	evals     int64
	evalErrs  int64
	lastError error
	// panics counts evaluation panics contained by the engine's recover()
	// boundary; at Config.QuarantineAfter the query is quarantined:
	// auto-stopped with quarReason recorded, refused by START AQ.
	panics      int64
	quarantined bool
	quarReason  string
}

// boundTable is one FROM entry bound to a device type with the attribute
// set its scans need.
type boundTable struct {
	alias      string
	deviceType string
	attrs      []string
	// preds are the WHERE clause's indexable conjuncts anchored on this
	// table. The scan fabric's predicate index routes only tuples
	// satisfying them to the query; the full WHERE still runs on whatever
	// arrives, so routing is purely an early filter.
	preds []match.Predicate
}

// actionItem is one action call in the select list.
type actionItem struct {
	def *ActionDef
	// call's arguments get re-evaluated per selected candidate.
	call *sqlparse.Call
	// deviceAlias is the FROM alias whose table matches the action's
	// device type — its tuples are the candidate devices.
	deviceAlias string
}

// Info summarizes a query for SHOW QUERIES.
type Info struct {
	ID      int
	Name    string
	Running bool
	Epoch   time.Duration
	SQL     string
	Evals   int64
	Errors  int64
	// Panics counts evaluation panics contained for this query;
	// Quarantined marks a query auto-stopped at the panic threshold, with
	// Reason recording why.
	Panics      int64
	Quarantined bool
	Reason      string
}

// Info returns a snapshot of the query's state.
func (q *Query) Info() Info {
	q.mu.Lock()
	defer q.mu.Unlock()
	return Info{
		ID: q.ID, Name: q.Name, Running: q.running, Epoch: q.Epoch,
		SQL: q.sel.String(), Evals: q.evals, Errors: q.evalErrs,
		Panics: q.panics, Quarantined: q.quarantined, Reason: q.quarReason,
	}
}

// compileQuery binds a parsed SELECT against the engine's catalogs and
// action registry.
func (e *Engine) compileQuery(name string, sel *sqlparse.Select) (*Query, error) {
	q := &Query{Name: name, sel: sel, Epoch: sel.Every}
	if q.Epoch <= 0 {
		q.Epoch = e.cfg.DefaultEpoch
	}

	aliases := make(map[string]string, len(sel.From)) // alias → device type
	for _, ref := range sel.From {
		if _, ok := e.reg.Catalog(ref.Table); !ok {
			return nil, fmt.Errorf("core: unknown device table %q", ref.Table)
		}
		alias := ref.Name()
		if _, dup := aliases[alias]; dup {
			return nil, fmt.Errorf("core: duplicate table alias %q", alias)
		}
		aliases[alias] = ref.Table
	}

	// Column requirements per alias, seeded with id.
	needs := make(map[string]map[string]bool, len(aliases))
	for alias := range aliases {
		needs[alias] = map[string]bool{"id": true}
	}
	var collectErr error
	collect := func(ex sqlparse.Expr) {
		walkExprs(ex, func(node sqlparse.Expr) {
			ref, ok := node.(*sqlparse.ColumnRef)
			if !ok || collectErr != nil {
				return
			}
			if ref.Qualifier != "" {
				if _, ok := aliases[ref.Qualifier]; !ok {
					collectErr = fmt.Errorf("core: unknown alias %q in %s", ref.Qualifier, ref)
					return
				}
				if err := e.checkAttr(aliases[ref.Qualifier], ref.Column); err != nil {
					collectErr = err
					return
				}
				needs[ref.Qualifier][ref.Column] = true
				return
			}
			// Unqualified: resolve to the unique table having the column.
			var owners []string
			for alias, table := range aliases {
				if e.checkAttr(table, ref.Column) == nil {
					owners = append(owners, alias)
				}
			}
			switch len(owners) {
			case 0:
				collectErr = fmt.Errorf("core: no table has column %q", ref.Column)
			case 1:
				needs[owners[0]][ref.Column] = true
			default:
				collectErr = fmt.Errorf("core: ambiguous column %q", ref.Column)
			}
		})
	}

	if sel.Where != nil {
		collect(sel.Where)
		// WHERE function calls must be registered boolean functions.
		walkExprs(sel.Where, func(node sqlparse.Expr) {
			if call, ok := node.(*sqlparse.Call); ok && collectErr == nil {
				if _, ok := e.boolFuncs[call.Func]; !ok {
					collectErr = fmt.Errorf("core: unknown boolean function %q in WHERE", call.Func)
				}
			}
		})
	}

	for _, item := range sel.Items {
		switch it := item.(type) {
		case *sqlparse.Star:
			q.projItems = append(q.projItems, it)
			for alias, table := range aliases {
				cat, _ := e.reg.Catalog(table)
				for _, a := range cat.Attributes {
					needs[alias][a.Name] = true
				}
			}
		case *sqlparse.Call:
			if isAggregateCall(it) {
				agg, err := compileAggregate(it)
				if err != nil {
					return nil, err
				}
				if agg.arg != nil {
					collect(agg.arg)
				}
				q.aggItems = append(q.aggItems, agg)
				continue
			}
			def, isAction := e.actions[it.Func]
			if !isAction {
				if _, isBool := e.boolFuncs[it.Func]; isBool {
					q.projItems = append(q.projItems, it)
					collect(it)
					continue
				}
				return nil, fmt.Errorf("core: %q is neither a registered action nor a function", it.Func)
			}
			// Bind the action to the alias whose table matches its device
			// type.
			var devAlias string
			for alias, table := range aliases {
				if table == def.Profile.DeviceType {
					if devAlias != "" {
						return nil, fmt.Errorf("core: action %q is ambiguous: two %s tables in FROM", it.Func, table)
					}
					devAlias = alias
				}
			}
			if devAlias == "" {
				return nil, fmt.Errorf("core: action %q needs a %q table in FROM", it.Func, def.Profile.DeviceType)
			}
			q.actionItems = append(q.actionItems, &actionItem{def: def, call: it, deviceAlias: devAlias})
			collect(it)
		default:
			q.projItems = append(q.projItems, item)
			collect(item)
		}
	}
	if len(sel.GroupBy) > 0 {
		if len(q.aggItems) == 0 {
			return nil, fmt.Errorf("core: GROUP BY requires aggregate select items")
		}
		for _, g := range sel.GroupBy {
			collect(g)
			q.groupBy = append(q.groupBy, g)
		}
	}
	if collectErr != nil {
		return nil, collectErr
	}
	if len(q.aggItems) > 0 {
		if len(q.actionItems) > 0 {
			return nil, fmt.Errorf("core: aggregates cannot be mixed with actions")
		}
		// Plain columns are only allowed when they are grouping columns.
		for _, item := range q.projItems {
			ref, ok := item.(*sqlparse.ColumnRef)
			if !ok || !inGroupBy(q.groupBy, ref) {
				return nil, fmt.Errorf("core: select item %s must be an aggregate or a GROUP BY column", item)
			}
		}
	}

	for _, ref := range sel.From {
		alias := ref.Name()
		attrs := make([]string, 0, len(needs[alias]))
		for a := range needs[alias] {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		bt := boundTable{alias: alias, deviceType: ref.Table, attrs: attrs}
		if sel.Where != nil {
			bt.preds = match.Extract(sel.Where, ownsRef(aliases, alias, e))
		}
		q.tables = append(q.tables, bt)
	}
	if sel.Where != nil {
		// Best effort: a clause the compiler cannot flatten leaves q.where
		// nil and the interpreted reference evaluator filters instead.
		q.where, _ = compileWhere(q, e.boolFuncs)
	}
	return q, nil
}

// ownsRef reports whether a column reference resolves to the given alias,
// using the same resolution rule as compileQuery's collect: a qualified
// reference belongs to its qualifier; an unqualified one to the unique
// table having the column.
func ownsRef(aliases map[string]string, alias string, e *Engine) func(ref *sqlparse.ColumnRef) bool {
	return func(ref *sqlparse.ColumnRef) bool {
		if ref.Qualifier != "" {
			return ref.Qualifier == alias
		}
		var owner string
		owners := 0
		for a, table := range aliases {
			if e.checkAttr(table, ref.Column) == nil {
				owner = a
				owners++
			}
		}
		return owners == 1 && owner == alias
	}
}

// checkAttr verifies the attribute exists in the device type's catalog.
func (e *Engine) checkAttr(deviceType, attr string) error {
	cat, ok := e.reg.Catalog(deviceType)
	if !ok {
		return fmt.Errorf("core: unknown device table %q", deviceType)
	}
	if _, ok := cat.Attr(attr); !ok {
		return fmt.Errorf("core: table %q has no attribute %q", deviceType, attr)
	}
	return nil
}

// inGroupBy reports whether ref names one of the grouping columns.
func inGroupBy(groupBy []*sqlparse.ColumnRef, ref *sqlparse.ColumnRef) bool {
	for _, g := range groupBy {
		if g.Qualifier == ref.Qualifier && g.Column == ref.Column {
			return true
		}
	}
	return false
}

// walkExprs visits every node of an expression tree.
func walkExprs(e sqlparse.Expr, fn func(sqlparse.Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch ex := e.(type) {
	case *sqlparse.Call:
		for _, a := range ex.Args {
			walkExprs(a, fn)
		}
	case *sqlparse.Compare:
		walkExprs(ex.Left, fn)
		walkExprs(ex.Right, fn)
	case *sqlparse.Logic:
		walkExprs(ex.Left, fn)
		walkExprs(ex.Right, fn)
	case *sqlparse.Not:
		walkExprs(ex.Inner, fn)
	}
}

// evalOnce performs one evaluation epoch: scan, join, filter, and either
// emit action requests or produce projected rows. Ad-hoc statements use
// this direct path; continuous queries receive their scans from the shared
// fabric and enter at evalScanned.
func (e *Engine) evalOnce(ctx context.Context, q *Query) ([]map[string]any, error) {
	// Scan every table into a columnar batch. Unreachable devices simply
	// produce no row.
	views := make(map[string]scanshare.TableView, len(q.tables))
	defer func() {
		for _, v := range views {
			v.Batch.Release()
		}
	}()
	for _, bt := range q.tables {
		b, _, err := e.layer.ScanBatch(ctx, bt.deviceType, bt.attrs)
		if err != nil {
			return nil, err
		}
		views[bt.alias] = scanshare.TableView{Batch: b, Attrs: bt.attrs}
	}
	return e.safeEvalScanned(q, views)
}

// safeEvalScanned is evalScanned behind the engine's panic-containment
// boundary: a panic anywhere in join/filter/aggregate evaluation
// (compiled predicates, user boolean functions, argument binding) becomes
// a typed *PanicError for this query instead of unwinding into the
// daemon's runtime.
func (e *Engine) safeEvalScanned(q *Query, tables map[string]scanshare.TableView) (rows []map[string]any, err error) {
	defer func() { e.containPanic(recover(), &err, "query evaluation", q.Name) }()
	return e.evalScanned(q, tables)
}

// evalScanned runs the post-scan half of an epoch over the epoch's table
// views: join, filter, and either emit action requests or produce
// projected rows. Filtering runs the compiled WHERE positionally over the
// shared columnar batches; row-map tuples are materialized only for the
// combinations that pass (memoized per table row, since a passing row of
// one table can appear in many join combinations).
func (e *Engine) evalScanned(q *Query, tables map[string]scanshare.TableView) ([]map[string]any, error) {
	n := len(q.tables)
	views := make([]scanshare.TableView, n)
	batches := make([]*comm.Batch, n)
	for i, bt := range q.tables {
		views[i] = tables[bt.alias]
		batches[i] = views[i].Batch
	}

	cw := q.where
	var fr *frame
	if cw != nil {
		fr = cw.newFrame(n)
		cw.bind(fr, batches)
	}

	// Vectorized fast path: single-table aggregates without GROUP BY fold
	// straight off the column slices, no tuple materialization at all.
	if len(q.aggItems) > 0 && n == 1 && len(q.groupBy) == 0 &&
		(q.sel.Where == nil || cw != nil) {
		if out, ok, err := evalAggregatesColumnar(q, views[0], cw, fr); ok {
			return out, err
		}
	}

	// memo caches materialized tuples per (table, view position): one
	// table row joins into many combinations but materializes once.
	memo := make([]map[int]comm.Tuple, n)
	tupleAt := func(tbl, pos int) comm.Tuple {
		m := memo[tbl]
		if m == nil {
			m = make(map[int]comm.Tuple)
			memo[tbl] = m
		}
		t, ok := m[pos]
		if !ok {
			t = views[tbl].Row(pos)
			m[pos] = t
		}
		return t
	}

	// Cartesian product with WHERE filtering over row positions.
	env := &evalEnv{bools: e.boolFuncs}
	pos := make([]int, n)
	rowAt := func() Row {
		row := make(Row, n)
		for t := 0; t < n; t++ {
			row[q.tables[t].alias] = tupleAt(t, pos[t])
		}
		return row
	}
	var passing []Row
	var joinErr error
	var build func(i int)
	build = func(i int) {
		if joinErr != nil {
			return
		}
		if i == n {
			var row Row
			if q.sel.Where != nil {
				var ok bool
				var err error
				if cw != nil {
					ok, err = cw.eval(fr)
				} else {
					row = rowAt()
					env.row = row
					ok, err = env.evalBool(q.sel.Where)
				}
				if err != nil {
					joinErr = err
					return
				}
				if !ok {
					return
				}
			}
			if row == nil {
				row = rowAt()
			}
			passing = append(passing, row)
			return
		}
		v := views[i]
		for p := 0; p < v.Len(); p++ {
			pos[i] = p
			if fr != nil {
				fr.rows[i] = v.RowIndex(p)
			}
			build(i + 1)
		}
	}
	build(0)
	if joinErr != nil {
		return nil, joinErr
	}

	// Aggregate queries reduce the passing rows to one result row per
	// group (one row total without GROUP BY).
	if len(q.aggItems) > 0 {
		return evalAggregates(q, passing, e.boolFuncs)
	}

	// Action items: group by event and submit requests to the shared
	// operators.
	for _, item := range q.actionItems {
		e.emitRequests(q, item, passing)
	}

	// Projections for ad-hoc queries and reporting.
	if len(q.projItems) == 0 {
		return nil, nil
	}
	var rows []map[string]any
	for _, row := range passing {
		env.row = row
		out := make(map[string]any)
		for _, item := range q.projItems {
			if _, ok := item.(*sqlparse.Star); ok {
				for alias, t := range row {
					for k, v := range t {
						out[alias+"."+k] = v
					}
				}
				continue
			}
			v, err := env.evalExpr(item)
			if err != nil {
				return nil, err
			}
			out[item.String()] = v
		}
		rows = append(rows, out)
	}
	return rows, nil
}

// emitRequests groups the passing rows of one action item by event and
// submits one ActionRequest per event to the action's shared operator.
func (e *Engine) emitRequests(q *Query, item *actionItem, rows []Row) {
	type group struct {
		rep        Row
		candidates []CandidateDevice
		seen       map[string]bool
	}
	groups := make(map[string]*group)
	var orderedKeys []string
	for _, row := range rows {
		// Event key: ids of every non-device alias.
		var parts []string
		for _, bt := range q.tables {
			if bt.alias == item.deviceAlias {
				continue
			}
			id, _ := row[bt.alias]["id"].(string)
			parts = append(parts, bt.alias+"="+id)
		}
		key := strings.Join(parts, ",")
		g, ok := groups[key]
		if !ok {
			g = &group{rep: row, seen: make(map[string]bool)}
			groups[key] = g
			orderedKeys = append(orderedKeys, key)
		}
		devTuple := row[item.deviceAlias]
		devID, _ := devTuple["id"].(string)
		if devID == "" || g.seen[devID] {
			continue
		}
		g.seen[devID] = true
		g.candidates = append(g.candidates, CandidateDevice{ID: devID, Tuple: devTuple})
	}

	now := e.clk.Now()
	for _, key := range orderedKeys {
		g := groups[key]
		req := &ActionRequest{
			ID:         e.nextRequestID(),
			QueryID:    q.ID,
			Query:      q.Name,
			Action:     item.def.Name,
			EventKey:   key,
			Candidates: g.candidates,
			CreatedAt:  now,
		}
		if e.cfg.StaleAfter > 0 {
			req.Deadline = now.Add(e.cfg.StaleAfter)
		}
		rep := g.rep
		call := item.call
		devAlias := item.deviceAlias
		candByID := make(map[string]comm.Tuple, len(g.candidates))
		for _, c := range g.candidates {
			candByID[c.ID] = c.Tuple
		}
		req.bind = func(deviceID string) ([]any, error) {
			row := make(Row, len(rep))
			for k, v := range rep {
				row[k] = v
			}
			if t, ok := candByID[deviceID]; ok {
				row[devAlias] = t
			}
			env := &evalEnv{row: row, bools: e.boolFuncs}
			args := make([]any, len(call.Args))
			for i, a := range call.Args {
				v, err := env.evalExpr(a)
				if err != nil {
					return nil, err
				}
				args[i] = v
			}
			return args, nil
		}
		if item.def.TargetExtractor != nil && len(g.candidates) > 0 {
			if args, err := req.bind(g.candidates[0].ID); err == nil {
				req.Target = item.def.TargetExtractor(args)
			}
		}
		e.operatorFor(item.def).submit(req)
	}
}

// acquireEvalSlot blocks until an evaluation slot frees up (the
// Config.EvalWorkers admission gate) or the query's context is cancelled.
// Without a cap it admits immediately.
func (e *Engine) acquireEvalSlot(ctx context.Context) (release func(), ok bool) {
	if e.evalSem == nil {
		return func() {}, true
	}
	select {
	case <-ctx.Done():
		return nil, false
	case e.evalSem <- struct{}{}:
		return func() { <-e.evalSem }, true
	}
}

// runQuery is the continuous-query loop. Instead of scanning on its own
// timer, the query subscribes its table needs to the shared scan fabric:
// the fabric samples each device type once per epoch for every subscriber
// together and routes back only the tuples passing the query's indexable
// predicates. Each delivered batch runs the post-scan half of the epoch
// (join, full WHERE, actions/aggregates).
func (e *Engine) runQuery(ctx context.Context, q *Query) {
	defer e.wg.Done()
	specs := make([]scanshare.TableSpec, len(q.tables))
	for i, bt := range q.tables {
		specs[i] = scanshare.TableSpec{
			Alias:      bt.alias,
			DeviceType: bt.deviceType,
			Attrs:      bt.attrs,
			Preds:      bt.preds,
		}
	}
	sub := e.fabric.Subscribe(q.Epoch, specs)
	defer sub.Close()
	for {
		var batch scanshare.Batch
		select {
		case <-ctx.Done():
			return
		case batch = <-sub.C:
		}
		err := batch.Err
		if err == nil {
			release, ok := e.acquireEvalSlot(ctx)
			if !ok {
				batch.Release()
				return
			}
			_, err = e.safeEvalScanned(q, batch.Tables)
			release()
		}
		batch.Release()
		quarantine := false
		q.mu.Lock()
		q.evals++
		if err != nil && ctx.Err() == nil {
			q.evalErrs++
			q.lastError = err
			if errors.Is(err, ErrPanic) {
				q.panics++
				if e.cfg.QuarantineAfter > 0 && q.panics >= int64(e.cfg.QuarantineAfter) && !q.quarantined {
					quarantine = true
				}
			}
		}
		q.mu.Unlock()
		if quarantine {
			// A poison query: the same input panics every epoch. Stop it
			// here — its own loop — rather than letting it grind on; the
			// cancel below also makes this loop's next select return.
			e.quarantineQuery(q, err)
			return
		}
	}
}
