package core_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"aorta/internal/core"
	"aorta/internal/lab"
	"aorta/internal/netsim"
)

// newLab builds a default lab and starts its engine.
func newLab(t *testing.T, cfg lab.Config) *lab.Lab {
	t.Helper()
	l, err := lab.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	if err := l.Engine.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	return l
}

// waitFor polls cond for up to wallTimeout.
func waitFor(t *testing.T, wallTimeout time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(wallTimeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

const snapshotSQL = `CREATE AQ snapshot AS
	SELECT photo(c.ip, s.loc, "photos/admin")
	FROM sensor s, camera c
	WHERE s.accel_x > 500 AND coverage(c.id, s.loc)
	EVERY "2s"`

func TestEngineRequiresDialer(t *testing.T) {
	if _, err := core.New(core.Config{}); err == nil {
		t.Fatal("engine built without a dialer")
	}
}

// TestSnapshotQueryEndToEnd runs the paper's Figure 1 query against the
// simulated lab: stimulating a mote must produce a clean photo of its
// location on a covering camera.
func TestSnapshotQueryEndToEnd(t *testing.T) {
	l := newLab(t, lab.Config{})
	eng := l.Engine

	res, err := eng.Exec(context.Background(), snapshotSQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "ok" || !strings.Contains(res.Message, "snapshot") {
		t.Fatalf("result = %+v", res)
	}

	// Push the "door": mote-3 reads accel_x ≈ 900 for 3 virtual seconds.
	l.StimulateMote(2, 900, 3*time.Second)

	ok := waitFor(t, 5*time.Second, func() bool {
		return eng.Metrics().Requests >= 1
	})
	if !ok {
		t.Fatalf("no action requests after stimulus; metrics=%+v", eng.Metrics())
	}
	waitFor(t, 5*time.Second, func() bool {
		return len(eng.Photos()) >= 1
	})

	photos := eng.Photos()
	if len(photos) == 0 {
		outs := eng.Outcomes()
		for _, o := range outs {
			t.Logf("outcome: %+v err=%v", o, o.Err)
		}
		t.Fatal("no photos stored")
	}
	p := photos[0]
	if p.Directory != "photos/admin" {
		t.Errorf("photo directory = %q", p.Directory)
	}
	if p.Photo.Blurred {
		t.Error("photo blurred without contention")
	}
	covering := l.CoveredBy(2)
	found := false
	for _, id := range covering {
		if id == p.DeviceID {
			found = true
		}
	}
	if !found {
		t.Errorf("photo taken by %s, not a covering camera %v", p.DeviceID, covering)
	}

	// The outcome log records a success with sensible latency.
	var okOutcome *core.Outcome
	for _, o := range eng.Outcomes() {
		if o.OK() {
			okOutcome = o
		}
	}
	if okOutcome == nil {
		t.Fatal("no successful outcome recorded")
	}
	if okOutcome.Latency <= 0 {
		t.Errorf("latency = %v", okOutcome.Latency)
	}
	if okOutcome.Action != "photo" || okOutcome.Query != "snapshot" {
		t.Errorf("outcome = %+v", okOutcome)
	}
}

// TestNoEventNoAction: without stimulus the predicate never fires.
func TestNoEventNoAction(t *testing.T) {
	l := newLab(t, lab.Config{})
	if _, err := l.Engine.Exec(context.Background(), snapshotSQL); err != nil {
		t.Fatal(err)
	}
	// Give several epochs of virtual time.
	time.Sleep(100 * time.Millisecond) // 10 virtual seconds at 100×
	if m := l.Engine.Metrics(); m.Requests != 0 {
		t.Fatalf("requests = %d without any stimulus", m.Requests)
	}
}

// TestSharedActionOperator: two queries embedding photo() share one
// operator (paper §2.3's group optimization).
func TestSharedActionOperator(t *testing.T) {
	l := newLab(t, lab.Config{})
	eng := l.Engine
	ctx := context.Background()
	q1 := `CREATE AQ snapA AS SELECT photo(c.ip, s.loc, "a") FROM sensor s, camera c WHERE s.accel_x > 500 AND coverage(c.id, s.loc) EVERY "2s"`
	q2 := `CREATE AQ snapB AS SELECT photo(c.ip, s.loc, "b") FROM sensor s, camera c WHERE s.accel_x > 400 AND coverage(c.id, s.loc) EVERY "2s"`
	if _, err := eng.Exec(ctx, q1); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(ctx, q2); err != nil {
		t.Fatal(err)
	}
	l.StimulateMote(0, 900, 30*time.Second)
	if !waitFor(t, 10*time.Second, func() bool { return eng.Metrics().Requests >= 2 }) {
		t.Fatalf("metrics = %+v", eng.Metrics())
	}
	if got := eng.OperatorSharing()["photo"]; got != 2 {
		t.Errorf("photo operator shared by %d queries, want 2", got)
	}
}

func TestAdHocProjection(t *testing.T) {
	l := newLab(t, lab.Config{})
	res, err := l.Engine.Exec(context.Background(),
		`SELECT s.id, s.temp FROM sensor s WHERE s.temp > 15`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if _, ok := row["s.id"]; !ok {
			t.Fatalf("row missing s.id: %v", row)
		}
		if _, ok := row["s.temp"]; !ok {
			t.Fatalf("row missing s.temp: %v", row)
		}
	}
}

func TestAdHocStar(t *testing.T) {
	l := newLab(t, lab.Config{})
	res, err := l.Engine.Exec(context.Background(), `SELECT * FROM phone p`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0]["p.number"] == nil || res.Rows[0]["p.owner"] == nil {
		t.Errorf("star row = %v", res.Rows[0])
	}
}

func TestAdHocUnqualifiedColumns(t *testing.T) {
	l := newLab(t, lab.Config{})
	res, err := l.Engine.Exec(context.Background(), `SELECT temp FROM sensor WHERE temp > -100`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestCompileErrors(t *testing.T) {
	l := newLab(t, lab.Config{})
	ctx := context.Background()
	tests := []struct {
		name string
		sql  string
	}{
		{"unknown table", `SELECT x FROM drone`},
		{"unknown column", `SELECT s.altitude FROM sensor s`},
		{"unknown qualified alias", `SELECT z.temp FROM sensor s`},
		{"unknown where function", `SELECT s.temp FROM sensor s WHERE visible(s.id)`},
		{"action without device table", `SELECT photo(s.id, s.loc, "d") FROM sensor s`},
		{"unknown call", `SELECT launch(s.id) FROM sensor s`},
		{"ambiguous column", `SELECT id FROM sensor s, camera c`},
		{"duplicate alias", `SELECT s.temp FROM sensor s, camera s`},
		{"ambiguous device table", `SELECT photo(a.ip, a.loc, "d") FROM camera a, camera b, sensor s`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := l.Engine.Exec(ctx, tt.sql); err == nil {
				t.Errorf("Exec(%q) succeeded", tt.sql)
			}
		})
	}
}

func TestShowAndLifecycle(t *testing.T) {
	l := newLab(t, lab.Config{})
	eng := l.Engine
	ctx := context.Background()
	if _, err := eng.Exec(ctx, snapshotSQL); err != nil {
		t.Fatal(err)
	}

	res, err := eng.Exec(ctx, "SHOW QUERIES")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) != 1 || res.Queries[0].Name != "snapshot" || !res.Queries[0].Running {
		t.Fatalf("queries = %+v", res.Queries)
	}

	res, err = eng.Exec(ctx, "SHOW ACTIONS")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(res.Names, ",")
	for _, want := range []string{"photo", "beep", "blink", "sendphoto", "notify"} {
		if !strings.Contains(joined, want) {
			t.Errorf("SHOW ACTIONS missing %q: %v", want, res.Names)
		}
	}

	res, err = eng.Exec(ctx, "SHOW DEVICES")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 13 { // 2 cameras + 10 motes + 1 phone
		t.Errorf("SHOW DEVICES = %d entries", len(res.Names))
	}

	if _, err := eng.Exec(ctx, "STOP AQ snapshot"); err != nil {
		t.Fatal(err)
	}
	info, _ := eng.QueryInfo("snapshot")
	if info.Running {
		t.Error("query still running after STOP")
	}
	if _, err := eng.Exec(ctx, "START AQ snapshot"); err != nil {
		t.Fatal(err)
	}
	info, _ = eng.QueryInfo("snapshot")
	if !info.Running {
		t.Error("query not running after START")
	}
	if _, err := eng.Exec(ctx, "DROP AQ snapshot"); err != nil {
		t.Fatal(err)
	}
	if _, ok := eng.QueryInfo("snapshot"); ok {
		t.Error("query still present after DROP")
	}
	if _, err := eng.Exec(ctx, "DROP AQ snapshot"); err == nil {
		t.Error("second DROP succeeded")
	}
	if _, err := eng.Exec(ctx, "STOP AQ ghost"); err == nil {
		t.Error("STOP of unknown query succeeded")
	}
}

func TestDuplicateQueryName(t *testing.T) {
	l := newLab(t, lab.Config{})
	ctx := context.Background()
	if _, err := l.Engine.Exec(ctx, snapshotSQL); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Engine.Exec(ctx, snapshotSQL); err == nil {
		t.Error("duplicate CREATE AQ succeeded")
	}
}

// TestCreateUserAction registers a user-defined action via the paper's
// CREATE ACTION syntax (bound to a Go function instead of a DLL) and uses
// it in a query.
func TestCreateUserAction(t *testing.T) {
	l := newLab(t, lab.Config{})
	eng := l.Engine
	ctx := context.Background()

	called := make(chan []any, 10)
	eng.RegisterLibrary("lib/users/alert.dll", func(_ context.Context, actx *core.ActionContext, args []any) (any, error) {
		called <- args
		return "alerted", nil
	})
	// The profile is referenced from the registry (notify's profile) since
	// there is no XML file on disk in this test.
	if _, err := eng.Exec(ctx, `CREATE ACTION alert(String phone_no, String text)
		AS "lib/users/alert.dll" PROFILE "registry:notify"`); err != nil {
		t.Fatal(err)
	}

	if _, err := eng.Exec(ctx, `CREATE AQ alarm AS
		SELECT alert(p.number, "motion!")
		FROM sensor s, phone p
		WHERE s.accel_x > 500
		EVERY "2s"`); err != nil {
		t.Fatal(err)
	}
	l.StimulateMote(5, 800, 3*time.Second)
	select {
	case args := <-called:
		if num, ok := args[0].(string); !ok || !strings.HasPrefix(num, "+852555") {
			t.Errorf("args = %v", args)
		}
		if args[1] != "motion!" {
			t.Errorf("args = %v", args)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("user action never invoked; metrics=%+v", eng.Metrics())
	}
}

func TestCreateActionUnknownLibrary(t *testing.T) {
	l := newLab(t, lab.Config{})
	if _, err := l.Engine.Exec(context.Background(),
		`CREATE ACTION x() AS "lib/none.dll" PROFILE "registry:notify"`); err == nil {
		t.Error("CREATE ACTION with unbound library succeeded")
	}
}

func TestCreateActionUnknownProfile(t *testing.T) {
	l := newLab(t, lab.Config{})
	l.Engine.RegisterLibrary("lib/x.dll", func(context.Context, *core.ActionContext, []any) (any, error) {
		return nil, nil
	})
	if _, err := l.Engine.Exec(context.Background(),
		`CREATE ACTION x() AS "lib/x.dll" PROFILE "registry:nonexistent"`); err == nil {
		t.Error("CREATE ACTION with unknown registry profile succeeded")
	}
}

// TestAllCandidatesUnavailable: when every covering camera is down the
// request fails promptly — as no-device once probing empties the
// candidate set — instead of hanging (paper §4).
func TestAllCandidatesUnavailable(t *testing.T) {
	l := newLab(t, lab.Config{})
	eng := l.Engine
	l.Network.SetLink("camera-1", netsim.LinkConfig{Down: true})
	l.Network.SetLink("camera-2", netsim.LinkConfig{Down: true})
	if _, err := eng.Exec(context.Background(), snapshotSQL); err != nil {
		t.Fatal(err)
	}
	l.StimulateMote(1, 900, 3*time.Second)
	if !waitFor(t, 5*time.Second, func() bool { return eng.Metrics().Requests >= 1 }) {
		t.Fatalf("no requests recorded; metrics=%+v", eng.Metrics())
	}
	m := eng.Metrics()
	if m.Successes != 0 {
		t.Errorf("successes = %d with every camera down", m.Successes)
	}
	if m.Failures[core.FailNoDevice]+m.Failures[core.FailConnect] == 0 {
		t.Errorf("failures = %+v, want no-device or connect failures", m.Failures)
	}
}

// TestStaleRequests: a tiny staleness budget fails requests before they
// execute.
func TestStaleRequests(t *testing.T) {
	l := newLab(t, lab.Config{Engine: core.Config{StaleAfter: time.Nanosecond}})
	eng := l.Engine
	if _, err := eng.Exec(context.Background(), snapshotSQL); err != nil {
		t.Fatal(err)
	}
	l.StimulateMote(4, 900, 3*time.Second)
	if !waitFor(t, 5*time.Second, func() bool { return eng.Metrics().Requests >= 1 }) {
		t.Fatal("no requests recorded")
	}
	m := eng.Metrics()
	if m.Failures[core.FailStale] == 0 {
		t.Errorf("failures = %+v, want stale failures", m.Failures)
	}
}

// TestInterferenceWithoutLocking is the §6.2 mechanism in miniature: many
// queries photographing different spots on few cameras, locking disabled,
// must corrupt photos; with locking (default) the same workload is clean.
func TestInterferenceWithoutLocking(t *testing.T) {
	run := func(disable bool) (failRate float64, requests int64) {
		l, err := lab.New(lab.Config{
			Motes: 6,
			Engine: core.Config{
				DisableLocking:       disable,
				InterferenceAblation: disable,
				ScheduleBusyDevices:  true,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		if err := l.Engine.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		// Six queries, one per mote, all firing in the same epochs.
		for i := 0; i < 6; i++ {
			sql := `CREATE AQ q` + string(rune('a'+i)) + ` AS
				SELECT photo(c.ip, s.loc, "d")
				FROM sensor s, camera c
				WHERE s.accel_x > 500 AND s.id = "mote-` + string(rune('1'+i)) + `" AND coverage(c.id, s.loc)
				EVERY "2s"`
			if _, err := l.Engine.Exec(ctx, sql); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 6; i++ {
			l.StimulateMote(i, 900, 6*time.Second)
		}
		waitFor(t, 10*time.Second, func() bool { return l.Engine.Metrics().Requests >= 6 })
		// Let in-flight actions finish.
		time.Sleep(150 * time.Millisecond)
		m := l.Engine.Metrics()
		return m.FailureRate, m.Requests
	}

	lockedRate, lockedReqs := run(false)
	unlockedRate, unlockedReqs := run(true)
	if lockedReqs == 0 || unlockedReqs == 0 {
		t.Fatalf("requests: locked=%d unlocked=%d", lockedReqs, unlockedReqs)
	}
	if lockedRate > 0.15 {
		t.Errorf("locked failure rate = %.0f%%, want near zero", lockedRate*100)
	}
	if unlockedRate < 0.3 {
		t.Errorf("unlocked failure rate = %.0f%%, want high (interference)", unlockedRate*100)
	}
	if unlockedRate <= lockedRate {
		t.Errorf("unlocked (%.2f) not worse than locked (%.2f)", unlockedRate, lockedRate)
	}
}

// TestOutcomeSubscription delivers outcomes to subscribers.
func TestOutcomeSubscription(t *testing.T) {
	l := newLab(t, lab.Config{})
	eng := l.Engine
	sub := eng.SubscribeOutcomes(16)
	if _, err := eng.Exec(context.Background(), snapshotSQL); err != nil {
		t.Fatal(err)
	}
	l.StimulateMote(7, 900, 3*time.Second)
	select {
	case o := <-sub:
		if o.Action != "photo" {
			t.Errorf("outcome = %+v", o)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no outcome delivered to subscriber")
	}
}

// TestBoolFuncsDirect exercises coverage() and near() through SQL.
func TestBoolFuncsDirect(t *testing.T) {
	l := newLab(t, lab.Config{})
	ctx := context.Background()
	// Every camera covers some mote, so the join is non-empty.
	res, err := l.Engine.Exec(ctx,
		`SELECT c.id FROM camera c, sensor s WHERE coverage(c.id, s.loc)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Error("coverage() join empty")
	}
	res, err = l.Engine.Exec(ctx,
		`SELECT s.id FROM sensor s, camera c WHERE near(s.loc, c.loc, 0.001)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("near() with 1mm radius returned %d rows", len(res.Rows))
	}
}

func TestEngineDoubleStart(t *testing.T) {
	l, err := lab.New(lab.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Engine.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := l.Engine.Start(context.Background()); err == nil {
		t.Error("second Start succeeded")
	}
}

func TestParseErrorSurfaced(t *testing.T) {
	l := newLab(t, lab.Config{})
	if _, err := l.Engine.Exec(context.Background(), "SELEKT foo"); err == nil {
		t.Error("garbage SQL accepted")
	}
}

func TestExplainPlan(t *testing.T) {
	l := newLab(t, lab.Config{})
	res, err := l.Engine.Exec(context.Background(),
		`EXPLAIN SELECT photo(c.ip, s.loc, "d") FROM sensor s, camera c WHERE s.accel_x > 500 AND coverage(c.id, s.loc) EVERY "2s"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "plan" {
		t.Fatalf("kind = %q", res.Kind)
	}
	plan := strings.Join(res.Names, "\n")
	for _, want := range []string{
		"continuous query (epoch 2s)",
		"scan sensor as s",
		"(10 devices registered, routed on accel_x > 500)",
		"scan camera as c",
		"(2 devices registered)",
		"filter",
		"action photo on camera table (alias c)",
		"scheduler SRFAE",
		"exclusive lock",
	} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
	// EXPLAIN must not execute anything.
	if m := l.Engine.Metrics(); m.Requests != 0 {
		t.Errorf("EXPLAIN triggered %d requests", m.Requests)
	}
}
