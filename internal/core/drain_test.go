package core_test

import (
	"context"
	"errors"
	"testing"

	"aorta/internal/core"
	"aorta/internal/lab"
)

// TestDrainGatesPlacements: a draining engine keeps serving reads and
// running queries but refuses new placements with the typed
// ErrDraining; CancelDrain restores normal service.
func TestDrainGatesPlacements(t *testing.T) {
	l := newLab(t, lab.Config{})
	eng := l.Engine
	ctx := context.Background()

	if _, err := eng.Exec(ctx, snapshotSQL); err != nil {
		t.Fatal(err)
	}

	st, err := eng.Drain(ctx)
	if err != nil {
		t.Fatalf("Drain on an idle engine: %v", err)
	}
	if st.PendingAtEntry != 0 || st.InFlightAtEntry != 0 {
		t.Errorf("idle drain stats = %+v, want nothing to flush", st)
	}
	if !eng.Draining() {
		t.Fatal("engine not in drain mode after Drain")
	}

	// New placements are refused, typed.
	_, err = eng.Exec(ctx, `CREATE AQ late AS SELECT s.accel_x FROM sensor s EVERY "2s"`)
	if !errors.Is(err, core.ErrDraining) {
		t.Fatalf("CREATE AQ while draining = %v, want ErrDraining", err)
	}

	// Reads and lifecycle statements keep flowing.
	if res, err := eng.Exec(ctx, "SHOW QUERIES"); err != nil {
		t.Fatalf("SHOW QUERIES while draining: %v", err)
	} else if res.Kind != "queries" || len(res.Queries) != 1 {
		t.Fatalf("SHOW QUERIES while draining = %+v", res)
	}
	if _, err := eng.Exec(ctx, "STOP AQ snapshot"); err != nil {
		t.Fatalf("STOP AQ while draining: %v", err)
	}

	// DrainState is the handoff picture: the catalog with stopped flags.
	devices, queries, pending := eng.DrainState()
	if len(devices) == 0 {
		t.Error("DrainState lost the device membership")
	}
	if len(queries) != 1 || queries[0].Name != "snapshot" || !queries[0].Stopped {
		t.Errorf("DrainState queries = %+v, want the stopped snapshot query", queries)
	}
	if len(pending) != 0 {
		t.Errorf("DrainState pending = %+v after a full flush", pending)
	}

	// CancelDrain is the abort path: placements work again.
	eng.CancelDrain()
	if eng.Draining() {
		t.Fatal("engine still draining after CancelDrain")
	}
	if _, err := eng.Exec(ctx, `CREATE AQ late AS SELECT s.accel_x FROM sensor s EVERY "2s"`); err != nil {
		t.Fatalf("CREATE AQ after CancelDrain: %v", err)
	}
}
