// Package core implements Aorta's action-oriented query processing engine
// (paper §2): compilation and continuous evaluation of action-embedded
// queries, cost-based device-selection optimization, shared action
// operators with request batching and scheduling, and execution of actions
// on devices through the communication layer under the device
// synchronization mechanisms.
package core

import (
	"errors"
	"fmt"

	"aorta/internal/comm"
	"aorta/internal/sqlparse"
)

// Row is the evaluation context of one joined row: table alias → tuple.
type Row map[string]comm.Tuple

// BoolFunc is a system- or user-provided boolean function usable in WHERE
// clauses, like the paper's coverage(camera_id, location).
type BoolFunc func(args []any) (bool, error)

// evalEnv carries what expression evaluation needs.
type evalEnv struct {
	row   Row
	bools map[string]BoolFunc
}

// errUnknownColumn reports unresolvable column references.
var errUnknownColumn = errors.New("core: unknown column")

// evalExpr evaluates an expression against a row. Results are float64,
// string, bool, or structured values (points, orientations) passed
// through from tuples.
func (env *evalEnv) evalExpr(e sqlparse.Expr) (any, error) {
	switch ex := e.(type) {
	case *sqlparse.Literal:
		return ex.Value, nil
	case *sqlparse.ColumnRef:
		return env.lookupColumn(ex)
	case *sqlparse.Call:
		fn, ok := env.bools[ex.Func]
		if !ok {
			return nil, fmt.Errorf("core: unknown function %q in expression", ex.Func)
		}
		args := make([]any, len(ex.Args))
		for i, a := range ex.Args {
			v, err := env.evalExpr(a)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return fn(args)
	case *sqlparse.Compare:
		l, err := env.evalExpr(ex.Left)
		if err != nil {
			return nil, err
		}
		r, err := env.evalExpr(ex.Right)
		if err != nil {
			return nil, err
		}
		return compare(ex.Op, l, r)
	case *sqlparse.Logic:
		l, err := env.evalBool(ex.Left)
		if err != nil {
			return nil, err
		}
		// Short-circuit.
		if ex.Op == "AND" && !l {
			return false, nil
		}
		if ex.Op == "OR" && l {
			return true, nil
		}
		return env.evalBool(ex.Right)
	case *sqlparse.Not:
		v, err := env.evalBool(ex.Inner)
		if err != nil {
			return nil, err
		}
		return !v, nil
	case *sqlparse.Star:
		return nil, errors.New("core: * is not valid in this position")
	default:
		return nil, fmt.Errorf("core: unsupported expression %T", e)
	}
}

// evalBool evaluates an expression that must produce a boolean.
func (env *evalEnv) evalBool(e sqlparse.Expr) (bool, error) {
	v, err := env.evalExpr(e)
	if err != nil {
		return false, err
	}
	b, ok := v.(bool)
	if !ok {
		return false, fmt.Errorf("core: expression %s is %T, not boolean", e, v)
	}
	return b, nil
}

// lookupColumn resolves a (possibly unqualified) column reference.
func (env *evalEnv) lookupColumn(ref *sqlparse.ColumnRef) (any, error) {
	if ref.Qualifier != "" {
		t, ok := env.row[ref.Qualifier]
		if !ok {
			return nil, fmt.Errorf("%w: alias %q not in scope", errUnknownColumn, ref.Qualifier)
		}
		v, ok := t[ref.Column]
		if !ok {
			return nil, fmt.Errorf("%w: %s.%s", errUnknownColumn, ref.Qualifier, ref.Column)
		}
		return v, nil
	}
	var found any
	matches := 0
	for _, t := range env.row {
		if v, ok := t[ref.Column]; ok {
			found = v
			matches++
		}
	}
	switch matches {
	case 0:
		return nil, fmt.Errorf("%w: %s", errUnknownColumn, ref.Column)
	case 1:
		return found, nil
	default:
		return nil, fmt.Errorf("core: ambiguous column %q", ref.Column)
	}
}

// compare applies a comparison operator. Numbers compare numerically
// (ints widen to float64), strings lexically, booleans by equality only.
func compare(op string, l, r any) (bool, error) {
	lf, lok := toFloat(l)
	rf, rok := toFloat(r)
	if lok && rok {
		switch op {
		case "=":
			return lf == rf, nil
		case "!=":
			return lf != rf, nil
		case "<":
			return lf < rf, nil
		case "<=":
			return lf <= rf, nil
		case ">":
			return lf > rf, nil
		case ">=":
			return lf >= rf, nil
		}
	}
	if ls, ok := l.(string); ok {
		if rs, ok := r.(string); ok {
			switch op {
			case "=":
				return ls == rs, nil
			case "!=":
				return ls != rs, nil
			case "<":
				return ls < rs, nil
			case "<=":
				return ls <= rs, nil
			case ">":
				return ls > rs, nil
			case ">=":
				return ls >= rs, nil
			}
		}
	}
	if lb, ok := l.(bool); ok {
		if rb, ok := r.(bool); ok {
			switch op {
			case "=":
				return lb == rb, nil
			case "!=":
				return lb != rb, nil
			}
		}
	}
	return false, fmt.Errorf("core: cannot compare %T %s %T", l, op, r)
}

// toFloat widens any numeric value to float64.
func toFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case float32:
		return float64(n), true
	case int:
		return float64(n), true
	case int32:
		return float64(n), true
	case int64:
		return float64(n), true
	default:
		return 0, false
	}
}
