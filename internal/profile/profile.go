// Package profile implements Aorta's profile system (paper §2.3, §3.1).
//
// Three XML document kinds are defined:
//
//   - device catalogs: the attributes a device type supports, each marked
//     sensory (acquired live from the device) or non-sensory (static);
//   - atomic operation costs (atomic_operation_cost.xml): the estimated
//     cost of every atomic operation a device type can perform, either a
//     fixed duration or a rate for status-dependent operations such as
//     moving a camera head;
//   - action profiles: the high-level semantics of an action — its
//     composition as sequential and/or parallel atomic operations, whether
//     it needs exclusive access to the device, and how it changes the
//     device's physical status.
//
// The cost model folds an action profile against a device type's atomic
// operation costs and the device's current physical status to estimate the
// execution time of the action — the core of the optimizer's cost-based
// device selection and of all five scheduling algorithms.
package profile

import (
	"encoding/xml"
	"errors"
	"fmt"
	"os"
	"strings"
	"time"
)

// AttrDef describes one attribute of a device catalog.
type AttrDef struct {
	Name string `xml:"name,attr"`
	// Type is the value type: "float", "int", "string", "point" or
	// "orientation".
	Type string `xml:"type,attr"`
	// Sensory attributes are acquired from the device at scan time;
	// non-sensory attributes are static catalog data (paper §3.2).
	Sensory bool   `xml:"sensory,attr"`
	Unit    string `xml:"unit,attr,omitempty"`
	Doc     string `xml:",chardata"`
}

// Catalog is a device catalog: the virtual-table schema for one device
// type.
type Catalog struct {
	XMLName    xml.Name  `xml:"catalog"`
	DeviceType string    `xml:"device_type,attr"`
	Attributes []AttrDef `xml:"attribute"`
}

// Attr returns the definition of the named attribute.
func (c *Catalog) Attr(name string) (AttrDef, bool) {
	for _, a := range c.Attributes {
		if a.Name == name {
			return a, true
		}
	}
	return AttrDef{}, false
}

// SensoryAttrs returns the names of all sensory attributes.
func (c *Catalog) SensoryAttrs() []string {
	var out []string
	for _, a := range c.Attributes {
		if a.Sensory {
			out = append(out, a.Name)
		}
	}
	return out
}

// OpCost is the estimated cost of one atomic operation on a device type.
// Cost = Fixed + amount/Rate, where amount is a status-dependent quantity
// (e.g. degrees of head movement) supplied at estimation time. Operations
// with Rate == 0 are constant-cost.
type OpCost struct {
	Name string `xml:"name,attr"`
	// FixedMS is the constant part of the cost, in milliseconds.
	FixedMS float64 `xml:"fixed_ms,attr"`
	// RateUnitsPerSec is the processing rate for status-dependent
	// operations (e.g. 68 °/s for a camera pan motor). Zero means the
	// operation is constant-cost.
	RateUnitsPerSec float64 `xml:"rate_units_per_sec,attr,omitempty"`
}

// AtomicCosts is the atomic_operation_cost.xml document for a device type.
type AtomicCosts struct {
	XMLName    xml.Name `xml:"atomic_operation_costs"`
	DeviceType string   `xml:"device_type,attr"`
	Ops        []OpCost `xml:"operation"`
}

// Op returns the cost entry for the named operation.
func (a *AtomicCosts) Op(name string) (OpCost, bool) {
	for _, op := range a.Ops {
		if op.Name == name {
			return op, true
		}
	}
	return OpCost{}, false
}

// StepKind discriminates profile step nodes.
type StepKind int

// Step kinds: a leaf atomic operation, a sequential group, or a parallel
// group.
const (
	StepOp StepKind = iota + 1
	StepSeq
	StepPar
)

// Step is one node of an action profile's composition tree.
type Step struct {
	Kind StepKind
	// Op is the atomic operation name (leaf steps only).
	Op string
	// AmountParam names the status parameter that scales a rate-based
	// operation (leaf steps only), e.g. "pan_delta".
	AmountParam string
	// Arg is a fixed argument recorded for documentation (e.g. photo
	// size).
	Arg      string
	Children []*Step
}

// xmlStep is the on-disk form of Step; the element name carries the kind.
type xmlStep struct {
	XMLName xml.Name
	Name    string    `xml:"name,attr"`
	Amount  string    `xml:"amount,attr"`
	Arg     string    `xml:"arg,attr"`
	Steps   []xmlStep `xml:",any"`
}

func (s xmlStep) toStep() (*Step, error) {
	switch s.XMLName.Local {
	case "op":
		if s.Name == "" {
			return nil, errors.New("profile: <op> element missing name attribute")
		}
		return &Step{Kind: StepOp, Op: s.Name, AmountParam: s.Amount, Arg: s.Arg}, nil
	case "seq", "par":
		kind := StepSeq
		if s.XMLName.Local == "par" {
			kind = StepPar
		}
		st := &Step{Kind: kind}
		for _, c := range s.Steps {
			child, err := c.toStep()
			if err != nil {
				return nil, err
			}
			st.Children = append(st.Children, child)
		}
		if len(st.Children) == 0 {
			return nil, fmt.Errorf("profile: empty <%s> group", s.XMLName.Local)
		}
		return st, nil
	default:
		return nil, fmt.Errorf("profile: unknown profile element <%s>", s.XMLName.Local)
	}
}

func (s *Step) toXML() xmlStep {
	switch s.Kind {
	case StepOp:
		return xmlStep{XMLName: xml.Name{Local: "op"}, Name: s.Op, Amount: s.AmountParam, Arg: s.Arg}
	case StepPar:
		out := xmlStep{XMLName: xml.Name{Local: "par"}}
		for _, c := range s.Children {
			out.Steps = append(out.Steps, c.toXML())
		}
		return out
	default:
		out := xmlStep{XMLName: xml.Name{Local: "seq"}}
		for _, c := range s.Children {
			out.Steps = append(out.Steps, c.toXML())
		}
		return out
	}
}

// ActionProfile is the registered profile of an action (paper §2.2): which
// device type it runs on, whether it requires the device lock, how it
// changes physical status, and its composition tree.
type ActionProfile struct {
	Name       string
	DeviceType string
	// Exclusive actions must hold the device lock for their whole
	// execution (paper §4's locking mechanism applies to these).
	Exclusive bool
	// StatusEffect names how the action changes device physical status;
	// the device driver interprets it (e.g. "head_moves_to_target").
	StatusEffect string
	// Root is the composition tree.
	Root *Step
}

type xmlAction struct {
	XMLName      xml.Name  `xml:"action"`
	Name         string    `xml:"name,attr"`
	DeviceType   string    `xml:"device_type,attr"`
	Exclusive    bool      `xml:"exclusive,attr"`
	StatusEffect string    `xml:"status_effect,attr"`
	Steps        []xmlStep `xml:",any"`
}

// ParseAction parses an action profile XML document.
func ParseAction(data []byte) (*ActionProfile, error) {
	var xa xmlAction
	if err := xml.Unmarshal(data, &xa); err != nil {
		return nil, fmt.Errorf("profile: parse action profile: %w", err)
	}
	if xa.Name == "" {
		return nil, errors.New("profile: action profile missing name")
	}
	if len(xa.Steps) != 1 {
		return nil, fmt.Errorf("profile: action %q must have exactly one root step, has %d", xa.Name, len(xa.Steps))
	}
	root, err := xa.Steps[0].toStep()
	if err != nil {
		return nil, err
	}
	return &ActionProfile{
		Name:         xa.Name,
		DeviceType:   xa.DeviceType,
		Exclusive:    xa.Exclusive,
		StatusEffect: xa.StatusEffect,
		Root:         root,
	}, nil
}

// Marshal renders the profile back to XML.
func (p *ActionProfile) Marshal() ([]byte, error) {
	xa := xmlAction{
		Name:         p.Name,
		DeviceType:   p.DeviceType,
		Exclusive:    p.Exclusive,
		StatusEffect: p.StatusEffect,
	}
	if p.Root != nil {
		xa.Steps = []xmlStep{p.Root.toXML()}
	}
	out, err := xml.MarshalIndent(&xa, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("profile: marshal action profile: %w", err)
	}
	return out, nil
}

// ParseCatalog parses a device catalog XML document.
func ParseCatalog(data []byte) (*Catalog, error) {
	var c Catalog
	if err := xml.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("profile: parse catalog: %w", err)
	}
	if c.DeviceType == "" {
		return nil, errors.New("profile: catalog missing device_type")
	}
	return &c, nil
}

// ParseAtomicCosts parses an atomic_operation_cost.xml document.
func ParseAtomicCosts(data []byte) (*AtomicCosts, error) {
	var a AtomicCosts
	if err := xml.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("profile: parse atomic costs: %w", err)
	}
	if a.DeviceType == "" {
		return nil, errors.New("profile: atomic costs missing device_type")
	}
	return &a, nil
}

// Marshal renders the cost table as an atomic_operation_cost.xml
// document.
func (a *AtomicCosts) Marshal() ([]byte, error) {
	out, err := xml.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("profile: marshal atomic costs: %w", err)
	}
	return out, nil
}

// Marshal renders the catalog as XML.
func (c *Catalog) Marshal() ([]byte, error) {
	out, err := xml.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("profile: marshal catalog: %w", err)
	}
	return out, nil
}

// LoadActionFile reads and parses an action profile from path.
func LoadActionFile(path string) (*ActionProfile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	return ParseAction(data)
}

// Params carries the status-dependent quantities for one cost estimation,
// keyed by AmountParam name (e.g. "pan_delta" → 135 degrees).
type Params map[string]float64

// EstimateCost evaluates the profile's composition tree against the device
// type's atomic operation costs: sequential groups sum, parallel groups
// take the maximum (the motors run concurrently), and rate-based leaves
// charge amount/rate.
func (p *ActionProfile) EstimateCost(costs *AtomicCosts, params Params) (time.Duration, error) {
	if p.Root == nil {
		return 0, fmt.Errorf("profile: action %q has no composition tree", p.Name)
	}
	ms, err := stepCost(p.Root, costs, params)
	if err != nil {
		return 0, fmt.Errorf("profile: estimate %q: %w", p.Name, err)
	}
	return time.Duration(ms * float64(time.Millisecond)), nil
}

func stepCost(s *Step, costs *AtomicCosts, params Params) (float64, error) {
	switch s.Kind {
	case StepOp:
		oc, ok := costs.Op(s.Op)
		if !ok {
			return 0, fmt.Errorf("no atomic cost for operation %q on %s", s.Op, costs.DeviceType)
		}
		ms := oc.FixedMS
		if oc.RateUnitsPerSec > 0 {
			amount, ok := params[s.AmountParam]
			if s.AmountParam == "" {
				return 0, fmt.Errorf("operation %q is rate-based but profile names no amount parameter", s.Op)
			}
			if !ok {
				return 0, fmt.Errorf("missing status parameter %q for operation %q", s.AmountParam, s.Op)
			}
			ms += amount / oc.RateUnitsPerSec * 1000
		}
		return ms, nil
	case StepSeq:
		var sum float64
		for _, c := range s.Children {
			ms, err := stepCost(c, costs, params)
			if err != nil {
				return 0, err
			}
			sum += ms
		}
		return sum, nil
	case StepPar:
		var max float64
		for _, c := range s.Children {
			ms, err := stepCost(c, costs, params)
			if err != nil {
				return 0, err
			}
			if ms > max {
				max = ms
			}
		}
		return max, nil
	default:
		return 0, fmt.Errorf("unknown step kind %d", s.Kind)
	}
}

// Ops returns the names of all atomic operations referenced by the profile,
// in composition order.
func (p *ActionProfile) Ops() []string {
	var out []string
	var walk func(*Step)
	walk = func(s *Step) {
		if s == nil {
			return
		}
		if s.Kind == StepOp {
			out = append(out, s.Op)
			return
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(p.Root)
	return out
}

// Validate checks the profile against a device type's atomic costs: every
// referenced operation must exist and every rate-based operation must name
// an amount parameter.
func (p *ActionProfile) Validate(costs *AtomicCosts) error {
	if p.DeviceType != costs.DeviceType {
		return fmt.Errorf("profile: action %q targets %q but costs are for %q", p.Name, p.DeviceType, costs.DeviceType)
	}
	var errs []string
	var walk func(*Step)
	walk = func(s *Step) {
		if s == nil {
			return
		}
		if s.Kind == StepOp {
			oc, ok := costs.Op(s.Op)
			if !ok {
				errs = append(errs, fmt.Sprintf("unknown operation %q", s.Op))
				return
			}
			if oc.RateUnitsPerSec > 0 && s.AmountParam == "" {
				errs = append(errs, fmt.Sprintf("rate-based operation %q missing amount parameter", s.Op))
			}
			return
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(p.Root)
	if len(errs) > 0 {
		return fmt.Errorf("profile: action %q invalid: %s", p.Name, strings.Join(errs, "; "))
	}
	return nil
}
