package profile

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func defaultReg(t *testing.T) *Registry {
	t.Helper()
	r, err := DefaultRegistry()
	if err != nil {
		t.Fatalf("DefaultRegistry: %v", err)
	}
	return r
}

func TestDefaultRegistryContents(t *testing.T) {
	r := defaultReg(t)
	types := r.DeviceTypes()
	sort.Strings(types)
	if want := []string{"camera", "phone", "sensor"}; strings.Join(types, ",") != strings.Join(want, ",") {
		t.Errorf("DeviceTypes = %v, want %v", types, want)
	}
	actions := r.Actions()
	sort.Strings(actions)
	if want := "beep,blink,notify,photo,sendphoto"; strings.Join(actions, ",") != want {
		t.Errorf("Actions = %v, want %v", actions, want)
	}
}

func TestCatalogAttrLookup(t *testing.T) {
	r := defaultReg(t)
	cat, ok := r.Catalog(DeviceSensor)
	if !ok {
		t.Fatal("sensor catalog missing")
	}
	a, ok := cat.Attr("accel_x")
	if !ok {
		t.Fatal("accel_x not in sensor catalog")
	}
	if !a.Sensory {
		t.Error("accel_x should be sensory")
	}
	loc, ok := cat.Attr("loc")
	if !ok || loc.Sensory {
		t.Error("loc should be a non-sensory attribute")
	}
	if _, ok := cat.Attr("nope"); ok {
		t.Error("Attr returned ok for missing attribute")
	}
}

func TestSensoryAttrs(t *testing.T) {
	r := defaultReg(t)
	cat, _ := r.Catalog(DeviceCamera)
	got := cat.SensoryAttrs()
	for _, name := range got {
		if name == "id" || name == "ip" || name == "loc" {
			t.Errorf("non-sensory attribute %q in SensoryAttrs", name)
		}
	}
	if len(got) == 0 {
		t.Error("camera has no sensory attributes")
	}
}

// TestPhotoCostEnvelope verifies the paper's published cost interval for
// the photo() action on an AXIS-2130-like camera: [0.36, 5.36] seconds.
func TestPhotoCostEnvelope(t *testing.T) {
	r := defaultReg(t)
	photo, _ := r.Action(ActionPhoto)
	costs, _ := r.Costs(DeviceCamera)

	min, err := photo.EstimateCost(costs, Params{"pan_delta": 0, "tilt_delta": 0, "zoom_delta": 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := min.Seconds(); math.Abs(got-0.36) > 1e-9 {
		t.Errorf("min photo cost = %vs, want 0.36s", got)
	}

	max, err := photo.EstimateCost(costs, Params{"pan_delta": 340, "tilt_delta": 90, "zoom_delta": 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := max.Seconds(); math.Abs(got-5.36) > 1e-9 {
		t.Errorf("max photo cost = %vs, want 5.36s", got)
	}
}

func TestParallelGroupTakesMax(t *testing.T) {
	r := defaultReg(t)
	photo, _ := r.Action(ActionPhoto)
	costs, _ := r.Costs(DeviceCamera)
	// tilt 90° at 45°/s = 2s dominates pan 34° at 68°/s = 0.5s.
	c, err := photo.EstimateCost(costs, Params{"pan_delta": 34, "tilt_delta": 90, "zoom_delta": 0})
	if err != nil {
		t.Fatal(err)
	}
	want := 360*time.Millisecond + 2*time.Second
	if c != want {
		t.Errorf("cost = %v, want %v", c, want)
	}
}

func TestCostMonotoneInMovement(t *testing.T) {
	r := defaultReg(t)
	photo, _ := r.Action(ActionPhoto)
	costs, _ := r.Costs(DeviceCamera)
	f := func(p1, p2 float64) bool {
		p1, p2 = math.Abs(math.Mod(p1, 340)), math.Abs(math.Mod(p2, 340))
		if math.IsNaN(p1) || math.IsNaN(p2) {
			return true
		}
		lo, hi := math.Min(p1, p2), math.Max(p1, p2)
		cLo, err1 := photo.EstimateCost(costs, Params{"pan_delta": lo, "tilt_delta": 0, "zoom_delta": 0})
		cHi, err2 := photo.EstimateCost(costs, Params{"pan_delta": hi, "tilt_delta": 0, "zoom_delta": 0})
		return err1 == nil && err2 == nil && cLo <= cHi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEstimateMissingParam(t *testing.T) {
	r := defaultReg(t)
	photo, _ := r.Action(ActionPhoto)
	costs, _ := r.Costs(DeviceCamera)
	if _, err := photo.EstimateCost(costs, Params{"pan_delta": 10}); err == nil {
		t.Fatal("expected error for missing tilt_delta/zoom_delta")
	}
}

func TestMoteConnectCostScalesWithDepth(t *testing.T) {
	r := defaultReg(t)
	beep, _ := r.Action(ActionBeep)
	costs, _ := r.Costs(DeviceSensor)
	c1, err := beep.EstimateCost(costs, Params{"depth": 1})
	if err != nil {
		t.Fatal(err)
	}
	c3, err := beep.EstimateCost(costs, Params{"depth": 3})
	if err != nil {
		t.Fatal(err)
	}
	if c3 <= c1 {
		t.Errorf("connect cost at depth 3 (%v) not greater than depth 1 (%v)", c3, c1)
	}
}

func TestSendPhotoCostScalesWithSize(t *testing.T) {
	r := defaultReg(t)
	sp, _ := r.Action(ActionSendPhoto)
	costs, _ := r.Costs(DevicePhone)
	small, _ := sp.EstimateCost(costs, Params{"size_kb": 10})
	big, _ := sp.EstimateCost(costs, Params{"size_kb": 200})
	if big <= small {
		t.Errorf("MMS cost for 200KB (%v) not greater than 10KB (%v)", big, small)
	}
}

func TestActionProfileRoundTrip(t *testing.T) {
	r := defaultReg(t)
	photo, _ := r.Action(ActionPhoto)
	data, err := photo.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseAction(data)
	if err != nil {
		t.Fatalf("reparse marshalled profile: %v", err)
	}
	if back.Name != photo.Name || back.DeviceType != photo.DeviceType ||
		back.Exclusive != photo.Exclusive || back.StatusEffect != photo.StatusEffect {
		t.Errorf("round trip header mismatch: %+v vs %+v", back, photo)
	}
	if strings.Join(back.Ops(), ",") != strings.Join(photo.Ops(), ",") {
		t.Errorf("ops = %v, want %v", back.Ops(), photo.Ops())
	}
	costs, _ := r.Costs(DeviceCamera)
	p := Params{"pan_delta": 100, "tilt_delta": 20, "zoom_delta": 1}
	c1, _ := photo.EstimateCost(costs, p)
	c2, _ := back.EstimateCost(costs, p)
	if c1 != c2 {
		t.Errorf("cost after round trip %v, want %v", c2, c1)
	}
}

func TestOpsOrder(t *testing.T) {
	r := defaultReg(t)
	photo, _ := r.Action(ActionPhoto)
	want := []string{"connect", "pan", "tilt", "zoom", "capture_medium", "store"}
	got := photo.Ops()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("Ops = %v, want %v", got, want)
	}
}

func TestParseActionErrors(t *testing.T) {
	tests := []struct {
		name string
		xml  string
	}{
		{"not xml", "garbage <"},
		{"missing name", `<action device_type="camera"><seq><op name="x"/></seq></action>`},
		{"no root step", `<action name="a" device_type="camera"></action>`},
		{"two root steps", `<action name="a"><op name="x"/><op name="y"/></action>`},
		{"op without name", `<action name="a"><seq><op/></seq></action>`},
		{"empty seq", `<action name="a"><seq></seq></action>`},
		{"unknown element", `<action name="a"><loop><op name="x"/></loop></action>`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseAction([]byte(tt.xml)); err == nil {
				t.Errorf("ParseAction accepted %q", tt.xml)
			}
		})
	}
}

func TestParseCatalogErrors(t *testing.T) {
	if _, err := ParseCatalog([]byte("<catalog></catalog>")); err == nil {
		t.Error("catalog without device_type accepted")
	}
	if _, err := ParseCatalog([]byte("nope<")); err == nil {
		t.Error("garbage catalog accepted")
	}
}

func TestParseAtomicCostsErrors(t *testing.T) {
	if _, err := ParseAtomicCosts([]byte("<atomic_operation_costs/>")); err == nil {
		t.Error("costs without device_type accepted")
	}
}

func TestValidateCatchesUnknownOp(t *testing.T) {
	ap, err := ParseAction([]byte(`<action name="bad" device_type="camera"><seq><op name="fly"/></seq></action>`))
	if err != nil {
		t.Fatal(err)
	}
	r := defaultReg(t)
	costs, _ := r.Costs(DeviceCamera)
	if err := ap.Validate(costs); err == nil {
		t.Error("Validate accepted unknown operation")
	}
}

func TestValidateCatchesMissingAmount(t *testing.T) {
	ap, err := ParseAction([]byte(`<action name="bad" device_type="camera"><seq><op name="pan"/></seq></action>`))
	if err != nil {
		t.Fatal(err)
	}
	r := defaultReg(t)
	costs, _ := r.Costs(DeviceCamera)
	if err := ap.Validate(costs); err == nil {
		t.Error("Validate accepted rate-based op without amount parameter")
	}
}

func TestValidateWrongDeviceType(t *testing.T) {
	r := defaultReg(t)
	photo, _ := r.Action(ActionPhoto)
	costs, _ := r.Costs(DevicePhone)
	if err := photo.Validate(costs); err == nil {
		t.Error("Validate accepted mismatched device type")
	}
}

func TestRegistryDuplicateRejection(t *testing.T) {
	r := defaultReg(t)
	cat, _ := r.Catalog(DeviceCamera)
	if err := r.RegisterCatalog(cat); err == nil {
		t.Error("duplicate catalog accepted")
	}
	costs, _ := r.Costs(DeviceCamera)
	if err := r.RegisterCosts(costs); err == nil {
		t.Error("duplicate costs accepted")
	}
	photo, _ := r.Action(ActionPhoto)
	if err := r.RegisterAction(photo); err == nil {
		t.Error("duplicate action accepted — CREATE ACTION must fail on collision")
	}
}

func TestRegisterUserAction(t *testing.T) {
	r := defaultReg(t)
	ap, err := ParseAction([]byte(`<action name="buzz" device_type="sensor" exclusive="true"><seq><op name="connect" amount="depth"/><op name="beep"/><op name="blink"/></seq></action>`))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterAction(ap); err != nil {
		t.Fatalf("RegisterAction: %v", err)
	}
	got, ok := r.Action("buzz")
	if !ok || got.Name != "buzz" {
		t.Fatal("registered action not retrievable")
	}
}

func TestRegistryMissingLookups(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Catalog("x"); ok {
		t.Error("empty registry returned a catalog")
	}
	if _, ok := r.Costs("x"); ok {
		t.Error("empty registry returned costs")
	}
	if _, ok := r.Action("x"); ok {
		t.Error("empty registry returned an action")
	}
}

func BenchmarkEstimatePhotoCost(b *testing.B) {
	r, err := DefaultRegistry()
	if err != nil {
		b.Fatal(err)
	}
	photo, _ := r.Action(ActionPhoto)
	costs, _ := r.Costs(DeviceCamera)
	params := Params{"pan_delta": 120, "tilt_delta": 30, "zoom_delta": 1.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := photo.EstimateCost(costs, params); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseActionProfile(b *testing.B) {
	r, err := DefaultRegistry()
	if err != nil {
		b.Fatal(err)
	}
	photo, _ := r.Action(ActionPhoto)
	data, err := photo.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseAction(data); err != nil {
			b.Fatal(err)
		}
	}
}
