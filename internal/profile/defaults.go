package profile

import (
	"embed"
	"fmt"
)

//go:embed data/*.xml
var defaultsFS embed.FS

// Built-in device type names.
const (
	DeviceCamera = "camera"
	DeviceSensor = "sensor"
	DevicePhone  = "phone"
)

// Built-in action names (the system-provided action library of paper §2.2).
const (
	ActionPhoto     = "photo"
	ActionBeep      = "beep"
	ActionBlink     = "blink"
	ActionSendPhoto = "sendphoto"
	ActionNotify    = "notify"
)

// Registry holds every catalog, atomic-cost table and action profile known
// to one Aorta instance. It is populated at startup (not concurrency-safe
// during registration; reads after startup are safe because the maps are
// never mutated again).
type Registry struct {
	catalogs map[string]*Catalog
	costs    map[string]*AtomicCosts
	actions  map[string]*ActionProfile
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		catalogs: make(map[string]*Catalog),
		costs:    make(map[string]*AtomicCosts),
		actions:  make(map[string]*ActionProfile),
	}
}

// DefaultRegistry returns a registry pre-loaded with the built-in device
// types (camera, sensor, phone) and the system action library (photo, beep,
// blink, sendphoto, notify).
func DefaultRegistry() (*Registry, error) {
	r := NewRegistry()
	for _, name := range []string{"camera", "mote", "phone"} {
		cat, err := loadEmbedded(name + "_catalog.xml")
		if err != nil {
			return nil, err
		}
		c, err := ParseCatalog(cat)
		if err != nil {
			return nil, err
		}
		if err := r.RegisterCatalog(c); err != nil {
			return nil, err
		}
		costRaw, err := loadEmbedded(name + "_costs.xml")
		if err != nil {
			return nil, err
		}
		ac, err := ParseAtomicCosts(costRaw)
		if err != nil {
			return nil, err
		}
		if err := r.RegisterCosts(ac); err != nil {
			return nil, err
		}
	}
	for _, name := range []string{"photo", "beep", "blink", "sendphoto", "notify"} {
		raw, err := loadEmbedded("action_" + name + ".xml")
		if err != nil {
			return nil, err
		}
		ap, err := ParseAction(raw)
		if err != nil {
			return nil, err
		}
		if err := r.RegisterAction(ap); err != nil {
			return nil, err
		}
	}
	return r, nil
}

func loadEmbedded(name string) ([]byte, error) {
	data, err := defaultsFS.ReadFile("data/" + name)
	if err != nil {
		return nil, fmt.Errorf("profile: embedded %s: %w", name, err)
	}
	return data, nil
}

// RegisterCatalog adds a device catalog; duplicate device types are
// rejected.
func (r *Registry) RegisterCatalog(c *Catalog) error {
	if _, dup := r.catalogs[c.DeviceType]; dup {
		return fmt.Errorf("profile: catalog for %q already registered", c.DeviceType)
	}
	r.catalogs[c.DeviceType] = c
	return nil
}

// RegisterCosts adds an atomic cost table; duplicates are rejected.
func (r *Registry) RegisterCosts(a *AtomicCosts) error {
	if _, dup := r.costs[a.DeviceType]; dup {
		return fmt.Errorf("profile: atomic costs for %q already registered", a.DeviceType)
	}
	r.costs[a.DeviceType] = a
	return nil
}

// RegisterAction adds an action profile, validating it against the device
// type's atomic costs when those are known. Duplicates are rejected — the
// paper's CREATE ACTION fails on name collision.
func (r *Registry) RegisterAction(p *ActionProfile) error {
	if _, dup := r.actions[p.Name]; dup {
		return fmt.Errorf("profile: action %q already registered", p.Name)
	}
	if costs, ok := r.costs[p.DeviceType]; ok {
		if err := p.Validate(costs); err != nil {
			return err
		}
	}
	r.actions[p.Name] = p
	return nil
}

// Catalog returns the catalog for a device type.
func (r *Registry) Catalog(deviceType string) (*Catalog, bool) {
	c, ok := r.catalogs[deviceType]
	return c, ok
}

// Costs returns the atomic cost table for a device type.
func (r *Registry) Costs(deviceType string) (*AtomicCosts, bool) {
	a, ok := r.costs[deviceType]
	return a, ok
}

// Action returns the profile of the named action.
func (r *Registry) Action(name string) (*ActionProfile, bool) {
	p, ok := r.actions[name]
	return p, ok
}

// Actions returns the names of all registered actions.
func (r *Registry) Actions() []string {
	out := make([]string, 0, len(r.actions))
	for name := range r.actions {
		out = append(out, name)
	}
	return out
}

// DeviceTypes returns the names of all registered device types.
func (r *Registry) DeviceTypes() []string {
	out := make([]string, 0, len(r.catalogs))
	for name := range r.catalogs {
		out = append(out, name)
	}
	return out
}
