// Package sched implements Aorta's action workload scheduling (paper §5).
//
// # Problem
//
// Given n action requests r1..rn, m devices d1..dm, a candidate device set
// Di ⊆ D per request and a weight per (ri, dj) pair equal to the cost of
// servicing ri on dj, produce a schedule minimizing the makespan of R.
// Costs are sequence-dependent: servicing a request changes the device's
// physical status (a camera's head position) and hence the cost of every
// subsequent request on it. The problem reduces to makespan minimization
// on unrelated parallel machines with sequence-dependent setup times and
// machine eligibility restrictions, which is NP-hard.
//
// # Algorithms
//
// Five algorithms are provided, matching the paper's evaluation:
//
//   - LERFA+SRFE (Algorithm 1, SAP): Least Eligible Request First
//     Assignment, then per-device Shortest Request First Execution;
//   - SRFAE (Algorithm 2, CAP): Shortest Request First Assignment and
//     Execution over a balanced binary search tree of (request, device)
//     pairs;
//   - LS: classic greedy List Scheduling (CAP baseline);
//   - SA: simulated annealing in the style of Anagnostopoulos & Rabadi
//     (SAP baseline);
//   - RANDOM: uniform random assignment (baseline).
//
// An exact branch-and-bound solver is included for small instances.
//
// # Virtual-time accounting
//
// The paper measured scheduling time on a 1.5 GHz notebook; raw wall clock
// on modern hardware would shrink that component ~50× and destroy the
// Figure 5/6 breakdowns. Scheduling cost is therefore accounted in virtual
// time: one charge per candidate probe and one per cost-model evaluation
// (see Accounting). Service time is simulated deterministically from the
// sequence-dependent cost model, so results are machine-independent.
package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// DeviceID identifies a device within a scheduling problem.
type DeviceID string

// Status is a device's physical status as seen by the cost model (for
// cameras, the head orientation). It is opaque to the algorithms.
type Status any

// Request is one action request: a query asking for an action execution
// with instantiated parameters (paper §5's definition).
type Request struct {
	// ID is unique within the problem.
	ID int
	// QueryID identifies the continuous query that issued the request.
	QueryID int
	// Action is the action name (e.g. "photo").
	Action string
	// Target carries the instantiated parameters the cost model needs
	// (for photo: the aim orientation).
	Target any
	// Candidates is the eligible device set Di.
	Candidates []DeviceID
}

// Eligible reports whether d is in the request's candidate set.
func (r *Request) Eligible(d DeviceID) bool {
	for _, c := range r.Candidates {
		if c == d {
			return true
		}
	}
	return false
}

// Estimator is the cost model: the estimated cost of servicing req on dev
// whose current physical status is st, and the device's status after the
// action.
type Estimator interface {
	Estimate(req *Request, dev DeviceID, st Status) (cost time.Duration, next Status)
}

// Problem is one scheduling instance.
type Problem struct {
	Requests []*Request
	Devices  []DeviceID
	// Initial maps each device to its physical status at scheduling time
	// (obtained by the probing mechanism).
	Initial map[DeviceID]Status

	est   Estimator
	evals int64
}

// NewProblem builds a problem over the given estimator.
func NewProblem(reqs []*Request, devs []DeviceID, initial map[DeviceID]Status, est Estimator) *Problem {
	return &Problem{Requests: reqs, Devices: devs, Initial: initial, est: est}
}

// Estimate runs the cost model and counts the evaluation for virtual-time
// accounting.
func (p *Problem) Estimate(req *Request, dev DeviceID, st Status) (time.Duration, Status) {
	p.evals++
	return p.est.Estimate(req, dev, st)
}

// ChargeEvals adds extra cost-model evaluations to the accounting counter;
// used by algorithms whose bookkeeping performs comparable per-pair work
// without calling the estimator (e.g. SA's feasibility repair scans).
func (p *Problem) ChargeEvals(n int64) { p.evals += n }

// Evals returns the number of cost-model evaluations so far.
func (p *Problem) Evals() int64 { return p.evals }

// ResetEvals zeroes the evaluation counter.
func (p *Problem) ResetEvals() { p.evals = 0 }

// Validate checks basic well-formedness: every request has a non-empty
// candidate set drawn from the problem's devices.
func (p *Problem) Validate() error {
	if len(p.Requests) == 0 {
		return errors.New("sched: no requests")
	}
	if len(p.Devices) == 0 {
		return errors.New("sched: no devices")
	}
	known := make(map[DeviceID]bool, len(p.Devices))
	for _, d := range p.Devices {
		if known[d] {
			return fmt.Errorf("sched: duplicate device %q", d)
		}
		known[d] = true
	}
	seen := make(map[int]bool, len(p.Requests))
	for _, r := range p.Requests {
		if seen[r.ID] {
			return fmt.Errorf("sched: duplicate request ID %d", r.ID)
		}
		seen[r.ID] = true
		if len(r.Candidates) == 0 {
			return fmt.Errorf("sched: request %d has no candidate devices", r.ID)
		}
		for _, c := range r.Candidates {
			if !known[c] {
				return fmt.Errorf("sched: request %d names unknown candidate %q", r.ID, c)
			}
		}
	}
	return nil
}

// Assignment is a complete schedule: the service order of requests on each
// device.
type Assignment struct {
	Order map[DeviceID][]*Request
}

// NewAssignment returns an empty assignment over the problem's devices.
func NewAssignment(p *Problem) *Assignment {
	return &Assignment{Order: make(map[DeviceID][]*Request, len(p.Devices))}
}

// Append schedules req as the last request of dev.
func (a *Assignment) Append(dev DeviceID, req *Request) {
	a.Order[dev] = append(a.Order[dev], req)
}

// Validate checks that the assignment services every request exactly once
// on an eligible device.
func (a *Assignment) Validate(p *Problem) error {
	seen := make(map[int]bool, len(p.Requests))
	for dev, reqs := range a.Order {
		for _, r := range reqs {
			if seen[r.ID] {
				return fmt.Errorf("sched: request %d scheduled twice", r.ID)
			}
			seen[r.ID] = true
			if !r.Eligible(dev) {
				return fmt.Errorf("sched: request %d scheduled on ineligible device %q", r.ID, dev)
			}
		}
	}
	for _, r := range p.Requests {
		if !seen[r.ID] {
			return fmt.Errorf("sched: request %d never scheduled", r.ID)
		}
	}
	return nil
}

// Algorithm is one scheduling algorithm. Schedule must not mutate the
// problem other than through Estimate (which counts evaluations).
type Algorithm interface {
	Name() string
	Schedule(p *Problem, rng *rand.Rand) (*Assignment, error)
}

// Accounting holds the virtual-time charges for scheduling cost; see
// DESIGN.md §5 for the calibration against the paper's Figure 5.
type Accounting struct {
	// ProbeCharge is the virtual cost of probing one candidate device
	// (several message round trips on the device network).
	ProbeCharge time.Duration
	// EvalCharge is the virtual cost of one cost-model evaluation on the
	// paper's 1.5 GHz notebook.
	EvalCharge time.Duration
}

// DefaultAccounting reproduces the paper's Figure 5 scheduling-time floor:
// ten camera probes at 16 ms ≈ 0.16 s.
func DefaultAccounting() Accounting {
	return Accounting{
		ProbeCharge: 16 * time.Millisecond,
		EvalCharge:  25 * time.Microsecond,
	}
}

// DeviceTimeline is the simulated service history of one device.
type DeviceTimeline struct {
	Device DeviceID
	// Completion is the device's total busy time servicing its queue.
	Completion time.Duration
	// PerRequest records each request's actual service cost in order.
	PerRequest []time.Duration
}

// Result is the outcome of running one algorithm on one problem.
type Result struct {
	Algorithm string
	// SchedulingTime is the virtual-time cost of probing + running the
	// algorithm.
	SchedulingTime time.Duration
	// ServiceTime is the simulated service makespan: the maximum device
	// completion time.
	ServiceTime time.Duration
	// Makespan = SchedulingTime + ServiceTime, the quantity the paper's
	// figures report.
	Makespan time.Duration
	// Evals is the number of cost-model evaluations the algorithm
	// performed.
	Evals int64
	// Probes is the number of candidate probes charged.
	Probes int
	// Timelines has one entry per device with assigned work.
	Timelines []DeviceTimeline
	// Assignment is the schedule that produced these numbers.
	Assignment *Assignment
}

// Simulate plays an assignment against the cost model: each device
// services its queue in order, its status chaining through the sequence.
// It returns the per-device timelines and the service makespan.
func Simulate(p *Problem, a *Assignment) ([]DeviceTimeline, time.Duration, error) {
	if err := a.Validate(p); err != nil {
		return nil, 0, err
	}
	var makespan time.Duration
	var timelines []DeviceTimeline
	for _, dev := range p.Devices {
		reqs := a.Order[dev]
		if len(reqs) == 0 {
			continue
		}
		tl := DeviceTimeline{Device: dev, PerRequest: make([]time.Duration, 0, len(reqs))}
		st := p.Initial[dev]
		for _, r := range reqs {
			// Service simulation replays the cost model as ground truth;
			// these are not scheduling-time evaluations, so bypass the
			// accounting counter.
			cost, next := p.est.Estimate(r, dev, st)
			st = next
			tl.Completion += cost
			tl.PerRequest = append(tl.PerRequest, cost)
		}
		if tl.Completion > makespan {
			makespan = tl.Completion
		}
		timelines = append(timelines, tl)
	}
	sort.Slice(timelines, func(i, j int) bool { return timelines[i].Device < timelines[j].Device })
	return timelines, makespan, nil
}

// Run executes one algorithm on the problem with virtual-time accounting
// and returns the paper-style result. rng drives any randomized decisions
// in the algorithm; acct converts probes and evaluations into scheduling
// time.
func Run(alg Algorithm, p *Problem, rng *rand.Rand, acct Accounting) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p.ResetEvals()
	assignment, err := alg.Schedule(p, rng)
	if err != nil {
		return nil, fmt.Errorf("sched: %s: %w", alg.Name(), err)
	}
	evals := p.Evals()
	probes := len(p.Devices)
	schedTime := time.Duration(probes)*acct.ProbeCharge + time.Duration(evals)*acct.EvalCharge

	timelines, service, err := Simulate(p, assignment)
	if err != nil {
		return nil, fmt.Errorf("sched: %s produced invalid schedule: %w", alg.Name(), err)
	}
	return &Result{
		Algorithm:      alg.Name(),
		SchedulingTime: schedTime,
		ServiceTime:    service,
		Makespan:       schedTime + service,
		Evals:          evals,
		Probes:         probes,
		Timelines:      timelines,
		Assignment:     assignment,
	}, nil
}
