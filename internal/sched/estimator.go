package sched

import (
	"time"

	"aorta/internal/device/camera"
	"aorta/internal/geo"
)

// PTZEstimator is the cost model for photo() actions on AXIS-2130-like
// cameras: head-movement time (slowest axis dominates) plus the fixed
// connect + capture + store overhead. With the default constants a
// photo() costs between 0.36 s (no movement) and 5.36 s (full 340° pan),
// the paper's published interval.
//
// Status values are geo.Orientation (the head position); request targets
// must be geo.Orientation as well.
type PTZEstimator struct {
	// Fixed is the movement-independent cost (connect + capture_medium +
	// store). Defaults to 360 ms when zero.
	Fixed time.Duration
}

var _ Estimator = (*PTZEstimator)(nil)

// DefaultFixedCost is connect (50 ms) + capture_medium (280 ms) + store
// (30 ms); see internal/profile/data/camera_costs.xml.
const DefaultFixedCost = 360 * time.Millisecond

// Estimate implements Estimator.
func (e *PTZEstimator) Estimate(req *Request, _ DeviceID, st Status) (time.Duration, Status) {
	fixed := e.Fixed
	if fixed == 0 {
		fixed = DefaultFixedCost
	}
	from, _ := st.(geo.Orientation)
	to, ok := req.Target.(geo.Orientation)
	if !ok {
		// A request without a PTZ target needs no head movement.
		return fixed, st
	}
	return camera.MoveTime(from, to) + fixed, to
}

// StaticEstimator is a table-driven cost model with no sequence
// dependence: the weight of (request, device) is fixed. It exists for unit
// tests and for the ablation that shows LERFA/SRFAE lose their edge
// without status chaining (DESIGN.md §3).
type StaticEstimator struct {
	// Costs maps request ID → device → cost. Missing entries fall back to
	// Default.
	Costs   map[int]map[DeviceID]time.Duration
	Default time.Duration
}

var _ Estimator = (*StaticEstimator)(nil)

// Estimate implements Estimator.
func (e *StaticEstimator) Estimate(req *Request, dev DeviceID, st Status) (time.Duration, Status) {
	if byDev, ok := e.Costs[req.ID]; ok {
		if c, ok := byDev[dev]; ok {
			return c, st
		}
	}
	return e.Default, st
}
