package sched

import (
	"math"
	"math/rand"
	"time"
)

// SA is a simulated annealing scheduler in the style of Anagnostopoulos &
// Rabadi's algorithm for unrelated parallel machines with
// sequence-dependent setup times and machine eligibility restrictions —
// the paper's SAP baseline.
//
// The solution space is the set of complete per-device service sequences;
// neighbourhood moves either transfer one request to a random position on
// another eligible device or swap two requests between devices. SA finds
// near-optimal service schedules (in the paper it found the optimum) but
// performs orders of magnitude more cost-model evaluations than the
// greedy heuristics, which is exactly the Figure 5 trade-off.
//
// When the problem has machine eligibility restrictions (any request with
// a proper candidate subset), every accepted move additionally pays a
// feasibility/repair scan over all n·m (request, device) pairs. This
// models the scheduling-time blow-up the paper observed for SA under
// skewed workloads (Figure 6); see DESIGN.md §5.
type SA struct {
	Config SAConfig
}

// SAConfig tunes the annealing schedule. Zero values select defaults.
type SAConfig struct {
	// InitTempFactor scales the initial temperature relative to the
	// initial solution's makespan (default 0.3).
	InitTempFactor float64
	// Alpha is the geometric cooling factor (default 0.95).
	Alpha float64
	// MovesPerTemp is the number of neighbourhood moves per temperature
	// level (default 8·n).
	MovesPerTemp int
	// MinTempRatio stops annealing when T falls below MinTempRatio·T0
	// (default 1e-3).
	MinTempRatio float64
}

var _ Algorithm = (*SA)(nil)

// Name implements Algorithm.
func (*SA) Name() string { return "SA" }

func (s *SA) config(n int) SAConfig {
	cfg := s.Config
	if cfg.InitTempFactor == 0 {
		cfg.InitTempFactor = 0.3
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.95
	}
	if cfg.MovesPerTemp == 0 {
		cfg.MovesPerTemp = 8 * n
	}
	if cfg.MinTempRatio == 0 {
		cfg.MinTempRatio = 1e-3
	}
	return cfg
}

// saState is a mutable solution: per-device sequences plus cached
// per-device completion times.
type saState struct {
	p          *Problem
	seq        map[DeviceID][]*Request
	completion map[DeviceID]time.Duration
}

func newSAState(p *Problem, a *Assignment) *saState {
	st := &saState{
		p:          p,
		seq:        make(map[DeviceID][]*Request, len(p.Devices)),
		completion: make(map[DeviceID]time.Duration, len(p.Devices)),
	}
	for _, d := range p.Devices {
		st.seq[d] = append([]*Request(nil), a.Order[d]...)
		st.completion[d] = st.evalDevice(d)
	}
	return st
}

// evalDevice recomputes one device's completion by chaining the cost
// model through its sequence. Each request costs one accounted
// evaluation.
func (st *saState) evalDevice(d DeviceID) time.Duration {
	var total time.Duration
	s := st.p.Initial[d]
	for _, r := range st.seq[d] {
		cost, next := st.p.Estimate(r, d, s)
		total += cost
		s = next
	}
	return total
}

func (st *saState) makespan() time.Duration {
	var max time.Duration
	for _, d := range st.p.Devices {
		if c := st.completion[d]; c > max {
			max = c
		}
	}
	return max
}

func (st *saState) clone() *saState {
	out := &saState{
		p:          st.p,
		seq:        make(map[DeviceID][]*Request, len(st.seq)),
		completion: make(map[DeviceID]time.Duration, len(st.completion)),
	}
	for d, s := range st.seq {
		out.seq[d] = append([]*Request(nil), s...)
	}
	for d, c := range st.completion {
		out.completion[d] = c
	}
	return out
}

// locate finds the device and index of a request.
func (st *saState) locate(id int) (DeviceID, int) {
	for d, s := range st.seq {
		for i, r := range s {
			if r.ID == id {
				return d, i
			}
		}
	}
	return "", -1
}

// Schedule implements Algorithm.
func (s *SA) Schedule(p *Problem, rng *rand.Rand) (*Assignment, error) {
	n := len(p.Requests)
	cfg := s.config(n)

	// Initial solution: list scheduling.
	initial, err := (LS{}).Schedule(p, rng)
	if err != nil {
		return nil, err
	}
	cur := newSAState(p, initial)
	curSpan := cur.makespan()
	best := cur.clone()
	bestSpan := curSpan

	restricted := hasEligibilityRestrictions(p)
	repairCharge := int64(n * len(p.Devices))

	t0 := cfg.InitTempFactor * float64(curSpan)
	if t0 <= 0 {
		t0 = float64(time.Second)
	}
	for temp := t0; temp > cfg.MinTempRatio*t0; temp *= cfg.Alpha {
		for move := 0; move < cfg.MovesPerTemp; move++ {
			next, ok := s.neighbour(cur, rng)
			if !ok {
				continue
			}
			nextSpan := next.makespan()
			delta := float64(nextSpan - curSpan)
			if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
				cur, curSpan = next, nextSpan
				if restricted {
					// Feasibility/repair scan over all pairs (see type
					// comment and DESIGN.md §5).
					p.ChargeEvals(repairCharge)
				}
				if curSpan < bestSpan {
					best, bestSpan = cur.clone(), curSpan
				}
			}
		}
	}

	out := NewAssignment(p)
	for _, d := range p.Devices {
		for _, r := range best.seq[d] {
			out.Append(d, r)
		}
	}
	return out, nil
}

// neighbour produces a random feasible neighbour of cur, or ok=false when
// the sampled move is degenerate. Only the affected devices are
// re-evaluated.
func (s *SA) neighbour(cur *saState, rng *rand.Rand) (*saState, bool) {
	p := cur.p
	r := p.Requests[rng.Intn(len(p.Requests))]
	if rng.Intn(2) == 0 || len(p.Requests) < 2 {
		// Transfer r to a random position on a random eligible device.
		if len(r.Candidates) < 2 {
			return nil, false
		}
		fromDev, idx := cur.locate(r.ID)
		toDev := r.Candidates[rng.Intn(len(r.Candidates))]
		if toDev == fromDev {
			return nil, false
		}
		next := cur.clone()
		next.seq[fromDev] = append(next.seq[fromDev][:idx], next.seq[fromDev][idx+1:]...)
		pos := 0
		if len(next.seq[toDev]) > 0 {
			pos = rng.Intn(len(next.seq[toDev]) + 1)
		}
		tail := append([]*Request(nil), next.seq[toDev][pos:]...)
		next.seq[toDev] = append(append(next.seq[toDev][:pos], r), tail...)
		next.completion[fromDev] = next.evalDevice(fromDev)
		next.completion[toDev] = next.evalDevice(toDev)
		return next, true
	}
	// Swap r with another request; each must be eligible on the other's
	// device.
	other := p.Requests[rng.Intn(len(p.Requests))]
	if other.ID == r.ID {
		return nil, false
	}
	d1, i1 := cur.locate(r.ID)
	d2, i2 := cur.locate(other.ID)
	if !r.Eligible(d2) || !other.Eligible(d1) {
		return nil, false
	}
	next := cur.clone()
	next.seq[d1][i1] = other
	next.seq[d2][i2] = r
	next.completion[d1] = next.evalDevice(d1)
	if d2 != d1 {
		next.completion[d2] = next.evalDevice(d2)
	}
	return next, true
}

// hasEligibilityRestrictions reports whether any request's candidate set
// is a proper subset of the devices.
func hasEligibilityRestrictions(p *Problem) bool {
	for _, r := range p.Requests {
		if len(r.Candidates) < len(p.Devices) {
			return true
		}
	}
	return false
}
