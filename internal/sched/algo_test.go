package sched

import (
	"testing"
	"time"
)

// TestSRFAEPaperWalkthrough follows Algorithm 2 on a hand-checked
// instance. Static costs:
//
//	      d1   d2
//	r1    1s   5s
//	r2    2s   4s
//	r3    9s   3s
//
// Extraction order: (r1,d1,1s) → assign r1→d1, r2's d1 key becomes
// 2+1=3s, r3's d1 key becomes 9+1=10s. Next min is (r2,d1,3s) → assign
// r2→d1, r3's d1 key becomes 9+3=12s. Next min is (r3,d2,3s) → r3→d2.
func TestSRFAEPaperWalkthrough(t *testing.T) {
	costs := map[int]map[DeviceID]time.Duration{
		1: {"d1": 1 * time.Second, "d2": 5 * time.Second},
		2: {"d1": 2 * time.Second, "d2": 4 * time.Second},
		3: {"d1": 9 * time.Second, "d2": 3 * time.Second},
	}
	reqs := []*Request{
		{ID: 1, Candidates: []DeviceID{"d1", "d2"}},
		{ID: 2, Candidates: []DeviceID{"d1", "d2"}},
		{ID: 3, Candidates: []DeviceID{"d1", "d2"}},
	}
	p := NewProblem(reqs, []DeviceID{"d1", "d2"}, nil, &StaticEstimator{Costs: costs})
	a, err := SRFAE{}.Schedule(p, rng())
	if err != nil {
		t.Fatal(err)
	}
	d1 := ids(a.Order["d1"])
	d2 := ids(a.Order["d2"])
	if len(d1) != 2 || d1[0] != 1 || d1[1] != 2 {
		t.Errorf("d1 order = %v, want [1 2]", d1)
	}
	if len(d2) != 1 || d2[0] != 3 {
		t.Errorf("d2 order = %v, want [3]", d2)
	}
	_, span, err := Simulate(p, a)
	if err != nil {
		t.Fatal(err)
	}
	if span != 3*time.Second {
		t.Errorf("makespan = %v, want 3s", span)
	}
}

// TestLERFAProcessesLeastEligibleFirst: a request with one candidate must
// claim its device before wider requests are balanced.
func TestLERFAProcessesLeastEligibleFirst(t *testing.T) {
	// r1 can only run on d1 and is expensive there; r2/r3 are cheap
	// anywhere. If r1 were assigned last, the E-heuristic would already
	// have loaded d1 with the cheap ones.
	costs := map[int]map[DeviceID]time.Duration{
		1: {"d1": 5 * time.Second},
		2: {"d1": 1 * time.Second, "d2": 1 * time.Second},
		3: {"d1": 1 * time.Second, "d2": 1 * time.Second},
	}
	reqs := []*Request{
		{ID: 1, Candidates: []DeviceID{"d1"}},
		{ID: 2, Candidates: []DeviceID{"d1", "d2"}},
		{ID: 3, Candidates: []DeviceID{"d1", "d2"}},
	}
	p := NewProblem(reqs, []DeviceID{"d1", "d2"}, nil, &StaticEstimator{Costs: costs})
	a, err := LERFASRFE{}.Schedule(p, rng())
	if err != nil {
		t.Fatal(err)
	}
	// d1 must carry only r1 (5s); both cheap requests go to d2 (2s).
	if got := ids(a.Order["d1"]); len(got) != 1 || got[0] != 1 {
		t.Errorf("d1 = %v, want [1]", got)
	}
	if got := a.Order["d2"]; len(got) != 2 {
		t.Errorf("d2 = %v, want both cheap requests", ids(got))
	}
}

// TestSimulateRejectsForeignAssignment: a schedule that skips a request
// fails validation inside Simulate.
func TestSimulateRejectsForeignAssignment(t *testing.T) {
	p := twoDeviceProblem()
	a := NewAssignment(p)
	a.Append("d1", p.Requests[0])
	if _, _, err := Simulate(p, a); err == nil {
		t.Fatal("incomplete assignment simulated")
	}
}

// TestRunWithInvalidProblem surfaces validation errors.
func TestRunWithInvalidProblem(t *testing.T) {
	p := NewProblem(nil, nil, nil, &StaticEstimator{})
	if _, err := Run(LS{}, p, rng(), DefaultAccounting()); err == nil {
		t.Fatal("Run accepted an empty problem")
	}
}

// TestSAConfigDefaults pins the annealing defaults.
func TestSAConfigDefaults(t *testing.T) {
	var sa SA
	cfg := sa.config(20)
	if cfg.InitTempFactor != 0.3 || cfg.Alpha != 0.95 || cfg.MovesPerTemp != 160 || cfg.MinTempRatio != 1e-3 {
		t.Errorf("defaults = %+v", cfg)
	}
	custom := SA{Config: SAConfig{Alpha: 0.8, MovesPerTemp: 5}}
	cfg = custom.config(20)
	if cfg.Alpha != 0.8 || cfg.MovesPerTemp != 5 || cfg.InitTempFactor != 0.3 {
		t.Errorf("merged = %+v", cfg)
	}
}
