package sched

import (
	"math/rand"
	"time"
)

// LS is the classic greedy List Scheduling algorithm (a CAP baseline):
// whenever a machine becomes idle, it schedules any eligible job that has
// not yet been scheduled on the machine — in list order, ignoring costs.
// The event-driven idle loop is simulated against the cost model so the
// resulting per-device sequences match a live execution.
type LS struct{}

var _ Algorithm = (*LS)(nil)

// Name implements Algorithm.
func (LS) Name() string { return "LS" }

// Schedule implements Algorithm.
func (LS) Schedule(p *Problem, _ *rand.Rand) (*Assignment, error) {
	out := NewAssignment(p)
	type devState struct {
		freeAt time.Duration
		status Status
	}
	states := make(map[DeviceID]*devState, len(p.Devices))
	for _, d := range p.Devices {
		states[d] = &devState{status: p.Initial[d]}
	}
	scheduled := make(map[int]bool, len(p.Requests))
	remaining := len(p.Requests)

	for remaining > 0 {
		// Find the earliest-idle device that still has an eligible
		// unscheduled job; ties break by device order.
		var bestDev DeviceID
		var bestReq *Request
		var bestFree time.Duration
		found := false
		for _, d := range p.Devices {
			st := states[d]
			if found && st.freeAt >= bestFree {
				continue
			}
			// First unscheduled job in list order eligible on d.
			for _, r := range p.Requests {
				if scheduled[r.ID] || !r.Eligible(d) {
					continue
				}
				bestDev, bestReq, bestFree, found = d, r, st.freeAt, true
				break
			}
		}
		if !found {
			// Cannot happen on a validated problem; guard anyway.
			break
		}
		st := states[bestDev]
		cost, next := p.Estimate(bestReq, bestDev, st.status)
		st.freeAt += cost
		st.status = next
		out.Append(bestDev, bestReq)
		scheduled[bestReq.ID] = true
		remaining--
	}
	return out, nil
}
