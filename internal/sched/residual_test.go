package sched

import (
	"testing"
	"time"
)

type flatEst struct{}

func (flatEst) Estimate(*Request, DeviceID, Status) (time.Duration, Status) {
	return time.Second, nil
}

func residualFixture() (*Problem, []*Request) {
	r1 := &Request{ID: 1, Candidates: []DeviceID{"a", "b"}}
	r2 := &Request{ID: 2, Candidates: []DeviceID{"a"}}
	r3 := &Request{ID: 3, Candidates: []DeviceID{"b", "c"}}
	p := NewProblem(
		[]*Request{r1, r2, r3},
		[]DeviceID{"a", "b", "c"},
		map[DeviceID]Status{"a": "sa", "b": "sb", "c": "sc"},
		flatEst{},
	)
	return p, []*Request{r1, r2, r3}
}

func TestResidualFiltersPerRequest(t *testing.T) {
	p, reqs := residualFixture()
	// r1 failed on "a", r2 failed on "a" (its only candidate), r3 is fine.
	failed := map[int]DeviceID{1: "a", 2: "a"}
	res, starved := Residual(p, reqs, func(r *Request, d DeviceID) bool {
		return failed[r.ID] == d
	})
	if res == nil {
		t.Fatal("nil residual")
	}
	if len(starved) != 1 || starved[0].ID != 2 {
		t.Fatalf("starved = %v, want exactly request 2", starved)
	}
	if len(res.Requests) != 2 {
		t.Fatalf("residual has %d requests, want 2", len(res.Requests))
	}
	// r1 lost "a" but keeps "b"; exclusion is per-request so r3 keeps all.
	for _, r := range res.Requests {
		switch r.ID {
		case 1:
			if len(r.Candidates) != 1 || r.Candidates[0] != "b" {
				t.Errorf("request 1 candidates = %v, want [b]", r.Candidates)
			}
		case 3:
			if len(r.Candidates) != 2 {
				t.Errorf("request 3 candidates = %v, want both survivors", r.Candidates)
			}
		}
	}
	// Device "a" is gone from the device list; statuses are reused.
	for _, d := range res.Devices {
		if d == "a" {
			t.Error("excluded-for-everyone device a still in residual device list")
		}
	}
	if res.Initial["b"] != "sb" || res.Initial["c"] != "sc" {
		t.Errorf("probed statuses not reused: %v", res.Initial)
	}
	if err := res.Validate(); err != nil {
		t.Errorf("residual invalid: %v", err)
	}
}

func TestResidualCloneLeavesOriginalIntact(t *testing.T) {
	p, reqs := residualFixture()
	res, _ := Residual(p, reqs[:1], func(_ *Request, d DeviceID) bool { return d == "a" })
	if res == nil {
		t.Fatal("nil residual")
	}
	if len(reqs[0].Candidates) != 2 {
		t.Errorf("original request mutated: candidates = %v", reqs[0].Candidates)
	}
	if len(p.Devices) != 3 {
		t.Errorf("original problem mutated: devices = %v", p.Devices)
	}
}

func TestResidualAllStarved(t *testing.T) {
	p, reqs := residualFixture()
	res, starved := Residual(p, reqs, func(*Request, DeviceID) bool { return true })
	if res != nil {
		t.Errorf("residual = %+v, want nil when nothing survives", res)
	}
	if len(starved) != 3 {
		t.Errorf("starved %d requests, want all 3", len(starved))
	}
}

func TestResidualEmptyInputs(t *testing.T) {
	p, reqs := residualFixture()
	if res, starved := Residual(nil, reqs, nil); res != nil || starved != nil {
		t.Error("nil problem must yield nothing")
	}
	if res, starved := Residual(p, nil, nil); res != nil || starved != nil {
		t.Error("empty retry set must yield nothing")
	}
}
