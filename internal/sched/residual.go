package sched

// Residual builds the scheduling problem of a failover retry round: the
// surviving requests are re-scheduled over their remaining candidate
// devices, reusing the statuses the probing mechanism collected for the
// original round — a retry must not pay a second probe round trip per
// device. excluded reports devices no longer eligible for a given
// request (typically the ones whose execution attempt for that request
// already failed); they are removed from the request's candidate set.
// Exclusion is per-request, not global: a device that transiently failed
// one request stays a legitimate candidate for every other, so one flaky
// dial cannot starve a whole batch. Devices excluded from every
// surviving request drop out of the problem's device list.
//
// Requests whose candidate set becomes empty cannot be retried; they are
// returned in starved for the caller to fail explicitly. The residual
// problem is nil when no request survives. Request values are cloned —
// the previous problem and its assignment stay valid.
func Residual(prev *Problem, retry []*Request, excluded func(*Request, DeviceID) bool) (residual *Problem, starved []*Request) {
	if prev == nil || len(retry) == 0 {
		return nil, nil
	}
	devSet := make(map[DeviceID]bool)
	var reqs []*Request
	for _, r := range retry {
		var cands []DeviceID
		for _, c := range r.Candidates {
			if excluded != nil && excluded(r, c) {
				continue
			}
			cands = append(cands, c)
			devSet[c] = true
		}
		if len(cands) == 0 {
			starved = append(starved, r)
			continue
		}
		clone := *r
		clone.Candidates = cands
		reqs = append(reqs, &clone)
	}
	if len(reqs) == 0 {
		return nil, starved
	}
	// Keep the previous problem's device order for determinism.
	var devices []DeviceID
	initial := make(map[DeviceID]Status, len(devSet))
	for _, d := range prev.Devices {
		if devSet[d] {
			devices = append(devices, d)
			initial[d] = prev.Initial[d]
		}
	}
	return NewProblem(reqs, devices, initial, prev.est), starved
}
