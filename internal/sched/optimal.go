package sched

import (
	"fmt"
	"math/rand"
	"time"
)

// Optimal is an exact solver for small instances. The paper notes that the
// optimal 0/1 MIP formulation "is too computationally expensive to be
// feasible" even for tiny inputs (1.5 hours at n=4, m=8 on a 1 GHz CPU in
// Anagnostopoulos & Rabadi's experiments); this solver exists to measure
// the optimality gap of the heuristics on instances it can finish
// (roughly n ≤ 9), not to be used online.
//
// It enumerates every assignment of requests to candidate devices
// (pruning partial assignments that already exceed the incumbent
// makespan) and, for each device's assigned set, finds the optimal
// service order by permutation search over the sequence-dependent costs.
type Optimal struct {
	// MaxRequests guards against accidental exponential runs (default 9).
	MaxRequests int
}

var _ Algorithm = (*Optimal)(nil)

// Name implements Algorithm.
func (*Optimal) Name() string { return "OPT" }

type optSolver struct {
	p        *Problem
	bestSpan time.Duration
	bestSeq  map[DeviceID][]*Request
	assign   []DeviceID // device per request index
}

// Schedule implements Algorithm.
func (o *Optimal) Schedule(p *Problem, rng *rand.Rand) (*Assignment, error) {
	limit := o.MaxRequests
	if limit == 0 {
		limit = 9
	}
	if len(p.Requests) > limit {
		return nil, fmt.Errorf("sched: optimal solver limited to %d requests, got %d", limit, len(p.Requests))
	}

	// Seed the incumbent with a greedy solution for effective pruning.
	seedAssign, err := (SRFAE{}).Schedule(p, rng)
	if err != nil {
		return nil, err
	}
	_, seedSpan, err := Simulate(p, seedAssign)
	if err != nil {
		return nil, err
	}

	s := &optSolver{
		p:        p,
		bestSpan: seedSpan,
		bestSeq:  copySeq(seedAssign.Order),
		assign:   make([]DeviceID, len(p.Requests)),
	}
	s.enumerate(0)

	out := NewAssignment(p)
	for _, d := range p.Devices {
		for _, r := range s.bestSeq[d] {
			out.Append(d, r)
		}
	}
	return out, nil
}

func copySeq(in map[DeviceID][]*Request) map[DeviceID][]*Request {
	out := make(map[DeviceID][]*Request, len(in))
	for d, s := range in {
		out[d] = append([]*Request(nil), s...)
	}
	return out
}

// enumerate assigns request i to each of its candidates in turn; complete
// assignments are sequenced optimally per device.
func (s *optSolver) enumerate(i int) {
	if i == len(s.p.Requests) {
		s.evaluate()
		return
	}
	for _, d := range s.p.Requests[i].Candidates {
		s.assign[i] = d
		s.enumerate(i + 1)
	}
}

// evaluate computes the best achievable makespan of the current complete
// assignment by optimally ordering each device's set, and updates the
// incumbent.
func (s *optSolver) evaluate() {
	perDevice := make(map[DeviceID][]*Request)
	for i, d := range s.assign {
		perDevice[d] = append(perDevice[d], s.p.Requests[i])
	}
	var span time.Duration
	ordered := make(map[DeviceID][]*Request, len(perDevice))
	for d, reqs := range perDevice {
		best, c := s.bestOrder(d, reqs)
		ordered[d] = best
		if c > span {
			span = c
		}
		if span >= s.bestSpan {
			return // prune: some device already exceeds the incumbent
		}
	}
	if span < s.bestSpan {
		s.bestSpan = span
		s.bestSeq = ordered
	}
}

// bestOrder finds the minimum-completion service order of reqs on d by
// recursive permutation search with chained status.
func (s *optSolver) bestOrder(d DeviceID, reqs []*Request) ([]*Request, time.Duration) {
	best := make([]*Request, len(reqs))
	bestCost := time.Duration(1<<63 - 1)
	cur := make([]*Request, 0, len(reqs))
	used := make([]bool, len(reqs))

	var rec func(st Status, acc time.Duration)
	rec = func(st Status, acc time.Duration) {
		if acc >= bestCost {
			return
		}
		if len(cur) == len(reqs) {
			bestCost = acc
			copy(best, cur)
			return
		}
		for i, r := range reqs {
			if used[i] {
				continue
			}
			cost, next := s.p.Estimate(r, d, st)
			used[i] = true
			cur = append(cur, r)
			rec(next, acc+cost)
			cur = cur[:len(cur)-1]
			used[i] = false
		}
	}
	rec(s.p.Initial[d], 0)
	return best, bestCost
}
