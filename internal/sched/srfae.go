package sched

import (
	"math/rand"
	"time"

	"aorta/internal/rbtree"
)

// SRFAE is the paper's Algorithm 2 (Shortest Request First Assignment and
// Execution), a CAP (concurrent assignment and processing) greedy
// heuristic.
//
// Every (request, candidate device) pair is a node in a balanced binary
// search tree keyed by the pair's weight (lines 1-3). Each round extracts
// the minimum-key node, assigns that request to that device and services
// or queues it there (lines 7-15); then the keys of every unserviced
// request eligible on the device are updated to C_lj + w — the estimated
// cost after the newly assigned request, plus the device's accumulated
// completion key (lines 16-20), so keys are estimated completion times.
type SRFAE struct{}

var _ Algorithm = (*SRFAE)(nil)

// Name implements Algorithm.
func (SRFAE) Name() string { return "SRFAE" }

// pairNode is one (request, device) node; the tree order is
// (weight, request ID, device) so weights may collide.
type pairNode struct {
	weight time.Duration
	req    *Request
	dev    DeviceID
}

func pairLess(a, b pairNode) bool {
	if a.weight != b.weight {
		return a.weight < b.weight
	}
	if a.req.ID != b.req.ID {
		return a.req.ID < b.req.ID
	}
	return a.dev < b.dev
}

// Schedule implements Algorithm.
func (SRFAE) Schedule(p *Problem, _ *rand.Rand) (*Assignment, error) {
	tree := rbtree.New(pairLess)
	// Current key per (request ID, device), needed to delete/update nodes.
	keys := make(map[int]map[DeviceID]time.Duration, len(p.Requests))
	// The device's projected status after its assigned chain.
	status := make(map[DeviceID]Status, len(p.Devices))
	for _, d := range p.Devices {
		status[d] = p.Initial[d]
	}

	// Lines 1-3: one node per (ri, dj), keyed by the pair's weight under
	// the device's probed status.
	for _, r := range p.Requests {
		keys[r.ID] = make(map[DeviceID]time.Duration, len(r.Candidates))
		for _, d := range r.Candidates {
			cost, _ := p.Estimate(r, d, status[d])
			keys[r.ID][d] = cost
			tree.Insert(pairNode{weight: cost, req: r, dev: d})
		}
	}

	out := NewAssignment(p)
	serviced := make(map[int]bool, len(p.Requests))

	// Lines 7-20: extract-min until the tree is empty.
	for tree.Len() > 0 {
		node, _ := tree.DeleteMin()
		ri, dj, w := node.req, node.dev, node.weight

		// Lines 9-15: assign ri to dj (FIFO queue on the device) and mark
		// it serviced; remove its remaining pair nodes.
		out.Append(dj, ri)
		serviced[ri.ID] = true
		for dev, key := range keys[ri.ID] {
			if dev == dj {
				continue
			}
			tree.Delete(pairNode{weight: key, req: ri, dev: dev})
		}
		delete(keys, ri.ID)

		// The device's physical status advances past ri.
		_, next := p.Estimate(ri, dj, status[dj])
		status[dj] = next

		// Lines 16-20: recalculate the key of every unserviced request
		// that dj could service, reflecting dj's new status and workload.
		for _, rl := range p.Requests {
			if serviced[rl.ID] || !rl.Eligible(dj) {
				continue
			}
			oldKey := keys[rl.ID][dj]
			tree.Delete(pairNode{weight: oldKey, req: rl, dev: dj})
			cost, _ := p.Estimate(rl, dj, status[dj])
			newKey := cost + w
			keys[rl.ID][dj] = newKey
			tree.Insert(pairNode{weight: newKey, req: rl, dev: dj})
		}
	}
	return out, nil
}
