package sched

import "math/rand"

// Random is the paper's RANDOM baseline: every request is assigned to a
// uniformly random candidate device; each device services its queue in
// arrival order. No cost-model evaluations are performed, so its
// scheduling time is the probe floor alone.
type Random struct{}

var _ Algorithm = (*Random)(nil)

// Name implements Algorithm.
func (Random) Name() string { return "RANDOM" }

// Schedule implements Algorithm.
func (Random) Schedule(p *Problem, rng *rand.Rand) (*Assignment, error) {
	out := NewAssignment(p)
	for _, r := range p.Requests {
		dev := r.Candidates[rng.Intn(len(r.Candidates))]
		out.Append(dev, r)
	}
	return out, nil
}
