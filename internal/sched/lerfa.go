package sched

import (
	"math/rand"
	"sort"
	"time"
)

// LERFASRFE is the paper's Algorithm 1, a SAP (sequential assignment and
// processing) heuristic with two greedy sub-components:
//
//   - LERFA (Least Eligible Request First Assignment, Algorithm 1.1):
//     requests are assigned in ascending order of candidate-set size (ties
//     broken randomly); each goes to the candidate device that minimizes
//     the device's assigned workload W plus the request's estimated cost
//     there;
//   - SRFE (Shortest Request First Execution, Algorithm 1.2): each device
//     services its assigned set shortest-request-first, re-estimating the
//     remaining requests against its updated physical status after every
//     execution.
type LERFASRFE struct{}

var _ Algorithm = (*LERFASRFE)(nil)

// Name implements Algorithm.
func (LERFASRFE) Name() string { return "LERFA+SRFE" }

// Schedule implements Algorithm.
func (LERFASRFE) Schedule(p *Problem, rng *rand.Rand) (*Assignment, error) {
	assigned := lerfa(p, rng)
	out := NewAssignment(p)
	for _, dev := range p.Devices {
		reqs := assigned[dev]
		if len(reqs) == 0 {
			continue
		}
		for _, r := range srfe(p, dev, reqs) {
			out.Append(dev, r)
		}
	}
	return out, nil
}

// lerfa performs Algorithm 1.1: least-eligible-request-first assignment.
// It returns the per-device assigned sets (unordered; SRFE orders them).
func lerfa(p *Problem, rng *rand.Rand) map[DeviceID][]*Request {
	// W_j: assigned workload per device (line 1-2).
	workload := make(map[DeviceID]time.Duration, len(p.Devices))
	// The device's projected physical status after its assigned chain;
	// used so later estimates reflect earlier assignments.
	status := make(map[DeviceID]Status, len(p.Devices))
	for _, d := range p.Devices {
		workload[d] = 0
		status[d] = p.Initial[d]
	}

	// Group requests by candidate-set size; random order within a group
	// (the paper assigns ties "in a random order").
	byEligibility := make(map[int][]*Request)
	maxSize := 0
	for _, r := range p.Requests {
		n := len(r.Candidates)
		byEligibility[n] = append(byEligibility[n], r)
		if n > maxSize {
			maxSize = n
		}
	}

	assigned := make(map[DeviceID][]*Request, len(p.Devices))
	// Lines 3-12: i = 1, 2, ... while there are unassigned requests.
	for i := 1; i <= maxSize; i++ {
		group := byEligibility[i]
		if len(group) == 0 {
			continue
		}
		rng.Shuffle(len(group), func(a, b int) { group[a], group[b] = group[b], group[a] })
		for _, r := range group {
			// Lines 6-8: E_k = W_k + C_rk over the candidates.
			var best DeviceID
			var bestE time.Duration
			var bestCost time.Duration
			var bestNext Status
			first := true
			for _, dk := range r.Candidates {
				cost, next := p.Estimate(r, dk, status[dk])
				e := workload[dk] + cost
				if first || e < bestE {
					first = false
					best, bestE, bestCost, bestNext = dk, e, cost, next
				}
			}
			// Lines 9-11: assign to the least-E device and grow its
			// workload by the cost there.
			assigned[best] = append(assigned[best], r)
			workload[best] += bestCost
			status[best] = bestNext
		}
	}
	return assigned
}

// srfe performs Algorithm 1.2 for a single device: repeatedly service the
// remaining request with the least estimated cost at this moment, updating
// the device's physical status after each execution.
func srfe(p *Problem, dev DeviceID, reqs []*Request) []*Request {
	remaining := make([]*Request, len(reqs))
	copy(remaining, reqs)
	// Deterministic scan order for equal costs.
	sort.Slice(remaining, func(i, j int) bool { return remaining[i].ID < remaining[j].ID })

	order := make([]*Request, 0, len(remaining))
	st := p.Initial[dev]
	for len(remaining) > 0 {
		bestIdx := -1
		var bestCost time.Duration
		var bestNext Status
		for i, r := range remaining {
			cost, next := p.Estimate(r, dev, st)
			if bestIdx < 0 || cost < bestCost {
				bestIdx, bestCost, bestNext = i, cost, next
			}
		}
		order = append(order, remaining[bestIdx])
		st = bestNext
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return order
}
