package sched

import (
	"math/rand"
	"testing"
	"time"

	"aorta/internal/geo"
)

// twoDeviceProblem builds a tiny static-cost instance with a known optimal
// schedule.
func twoDeviceProblem() *Problem {
	// r1: 4s on d1, 1s on d2; r2: 2s on d1, 3s on d2; r3: 1s on d1 only.
	costs := map[int]map[DeviceID]time.Duration{
		1: {"d1": 4 * time.Second, "d2": 1 * time.Second},
		2: {"d1": 2 * time.Second, "d2": 3 * time.Second},
		3: {"d1": 1 * time.Second},
	}
	reqs := []*Request{
		{ID: 1, Candidates: []DeviceID{"d1", "d2"}},
		{ID: 2, Candidates: []DeviceID{"d1", "d2"}},
		{ID: 3, Candidates: []DeviceID{"d1"}},
	}
	return NewProblem(reqs, []DeviceID{"d1", "d2"}, map[DeviceID]Status{}, &StaticEstimator{Costs: costs})
}

func rng() *rand.Rand { return rand.New(rand.NewSource(1)) }

func TestProblemValidate(t *testing.T) {
	p := twoDeviceProblem()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := NewProblem(nil, []DeviceID{"d1"}, nil, &StaticEstimator{})
	if err := bad.Validate(); err == nil {
		t.Error("empty request set accepted")
	}
	bad2 := NewProblem([]*Request{{ID: 1}}, []DeviceID{"d1"}, nil, &StaticEstimator{})
	if err := bad2.Validate(); err == nil {
		t.Error("request without candidates accepted")
	}
	bad3 := NewProblem(
		[]*Request{{ID: 1, Candidates: []DeviceID{"dX"}}},
		[]DeviceID{"d1"}, nil, &StaticEstimator{})
	if err := bad3.Validate(); err == nil {
		t.Error("unknown candidate accepted")
	}
	bad4 := NewProblem(
		[]*Request{{ID: 1, Candidates: []DeviceID{"d1"}}, {ID: 1, Candidates: []DeviceID{"d1"}}},
		[]DeviceID{"d1"}, nil, &StaticEstimator{})
	if err := bad4.Validate(); err == nil {
		t.Error("duplicate request IDs accepted")
	}
	bad5 := NewProblem(
		[]*Request{{ID: 1, Candidates: []DeviceID{"d1"}}},
		[]DeviceID{"d1", "d1"}, nil, &StaticEstimator{})
	if err := bad5.Validate(); err == nil {
		t.Error("duplicate devices accepted")
	}
}

func TestAssignmentValidate(t *testing.T) {
	p := twoDeviceProblem()
	a := NewAssignment(p)
	a.Append("d1", p.Requests[1])
	a.Append("d1", p.Requests[2])
	if err := a.Validate(p); err == nil {
		t.Error("incomplete assignment accepted")
	}
	a.Append("d2", p.Requests[0])
	if err := a.Validate(p); err != nil {
		t.Errorf("complete assignment rejected: %v", err)
	}
	// Ineligible placement.
	b := NewAssignment(p)
	b.Append("d2", p.Requests[2]) // r3 only eligible on d1
	b.Append("d1", p.Requests[0])
	b.Append("d1", p.Requests[1])
	if err := b.Validate(p); err == nil {
		t.Error("ineligible placement accepted")
	}
	// Duplicate placement.
	c := NewAssignment(p)
	c.Append("d1", p.Requests[0])
	c.Append("d2", p.Requests[0])
	if err := c.Validate(p); err == nil {
		t.Error("duplicate placement accepted")
	}
}

func TestSimulateStaticCosts(t *testing.T) {
	p := twoDeviceProblem()
	a := NewAssignment(p)
	a.Append("d2", p.Requests[0]) // 1s
	a.Append("d1", p.Requests[1]) // 2s
	a.Append("d1", p.Requests[2]) // 1s
	timelines, span, err := Simulate(p, a)
	if err != nil {
		t.Fatal(err)
	}
	if span != 3*time.Second {
		t.Errorf("makespan = %v, want 3s", span)
	}
	if len(timelines) != 2 {
		t.Fatalf("timelines = %+v", timelines)
	}
	if timelines[0].Device != "d1" || timelines[0].Completion != 3*time.Second {
		t.Errorf("d1 timeline = %+v", timelines[0])
	}
	if timelines[1].Completion != time.Second {
		t.Errorf("d2 timeline = %+v", timelines[1])
	}
}

// allAlgorithms returns the five paper algorithms.
func allAlgorithms() []Algorithm {
	return []Algorithm{LERFASRFE{}, SRFAE{}, LS{}, &SA{}, Random{}}
}

func TestAllAlgorithmsProduceValidSchedules(t *testing.T) {
	for _, alg := range allAlgorithms() {
		t.Run(alg.Name(), func(t *testing.T) {
			p := twoDeviceProblem()
			a, err := alg.Schedule(p, rng())
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Validate(p); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunAccountsSchedulingTime(t *testing.T) {
	p := twoDeviceProblem()
	acct := Accounting{ProbeCharge: 10 * time.Millisecond, EvalCharge: time.Millisecond}
	res, err := Run(Random{}, p, rng(), acct)
	if err != nil {
		t.Fatal(err)
	}
	// RANDOM performs no cost evaluations: scheduling time is the probe
	// floor alone (2 devices × 10ms).
	if res.Evals != 0 {
		t.Errorf("RANDOM evals = %d, want 0", res.Evals)
	}
	if res.SchedulingTime != 20*time.Millisecond {
		t.Errorf("scheduling time = %v, want 20ms", res.SchedulingTime)
	}
	if res.Makespan != res.SchedulingTime+res.ServiceTime {
		t.Error("makespan != scheduling + service")
	}

	res2, err := Run(LERFASRFE{}, p, rng(), acct)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Evals == 0 {
		t.Error("LERFA+SRFE performed no cost evaluations")
	}
	if res2.SchedulingTime <= 20*time.Millisecond {
		t.Error("LERFA+SRFE scheduling time does not include evaluations")
	}
}

func TestLERFAAssignsLeastEligibleFirst(t *testing.T) {
	// r3 (only d1) must be placed first; then r2 and r1 balance.
	p := twoDeviceProblem()
	a, err := LERFASRFE{}.Schedule(p, rng())
	if err != nil {
		t.Fatal(err)
	}
	// r3 must be on d1.
	foundR3 := false
	for _, r := range a.Order["d1"] {
		if r.ID == 3 {
			foundR3 = true
		}
	}
	if !foundR3 {
		t.Fatal("r3 not scheduled on its only candidate d1")
	}
	_, span, err := Simulate(p, a)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal here: d1 ← r3 (1s) + r2 (2s) = 3s; d2 ← r1 (1s). Makespan 3s.
	if span != 3*time.Second {
		t.Errorf("LERFA+SRFE makespan = %v, want optimal 3s", span)
	}
}

func TestSRFEOrdersShortestFirstWithChaining(t *testing.T) {
	// One device, sequence-dependent: the greedy chain should pick the
	// nearest target each time.
	est := &PTZEstimator{}
	reqs := []*Request{
		{ID: 1, Target: geo.Orientation{Pan: 100, Zoom: 1}, Candidates: []DeviceID{"d1"}},
		{ID: 2, Target: geo.Orientation{Pan: 10, Zoom: 1}, Candidates: []DeviceID{"d1"}},
		{ID: 3, Target: geo.Orientation{Pan: 50, Zoom: 1}, Candidates: []DeviceID{"d1"}},
	}
	p := NewProblem(reqs, []DeviceID{"d1"}, map[DeviceID]Status{"d1": geo.Orientation{Pan: 0, Zoom: 1}}, est)
	a, err := LERFASRFE{}.Schedule(p, rng())
	if err != nil {
		t.Fatal(err)
	}
	order := a.Order["d1"]
	if order[0].ID != 2 || order[1].ID != 3 || order[2].ID != 1 {
		ids := []int{order[0].ID, order[1].ID, order[2].ID}
		t.Errorf("SRFE order = %v, want [2 3 1] (nearest-target chaining)", ids)
	}
}

func TestSRFAEOptimalOnTinyInstance(t *testing.T) {
	p := twoDeviceProblem()
	a, err := SRFAE{}.Schedule(p, rng())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(p); err != nil {
		t.Fatal(err)
	}
	_, span, err := Simulate(p, a)
	if err != nil {
		t.Fatal(err)
	}
	if span != 3*time.Second {
		t.Errorf("SRFAE makespan = %v, want 3s", span)
	}
}

func TestLSSchedulesEagerly(t *testing.T) {
	p := twoDeviceProblem()
	a, err := LS{}.Schedule(p, rng())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(p); err != nil {
		t.Fatal(err)
	}
	// LS in list order: r1→d1 (first idle device), r2→d2, r3 waits for d1
	// (only candidate). Sequences: d1=[r1,r3], d2=[r2].
	if got := a.Order["d1"]; len(got) != 2 || got[0].ID != 1 || got[1].ID != 3 {
		t.Errorf("d1 order = %v", ids(got))
	}
	if got := a.Order["d2"]; len(got) != 1 || got[0].ID != 2 {
		t.Errorf("d2 order = %v", ids(got))
	}
}

func TestRandomRespectsEligibility(t *testing.T) {
	p := twoDeviceProblem()
	for seed := int64(0); seed < 20; seed++ {
		a, err := Random{}.Schedule(p, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Validate(p); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestSADoesNotWorsenInitialSolution(t *testing.T) {
	p := twoDeviceProblem()
	lsA, _ := LS{}.Schedule(p, rng())
	_, lsSpan, _ := Simulate(p, lsA)
	sa := &SA{}
	a, err := sa.Schedule(p, rng())
	if err != nil {
		t.Fatal(err)
	}
	_, saSpan, err := Simulate(p, a)
	if err != nil {
		t.Fatal(err)
	}
	if saSpan > lsSpan {
		t.Errorf("SA makespan %v worse than its LS seed %v", saSpan, lsSpan)
	}
}

func TestSAFindsOptimumOnTinyInstance(t *testing.T) {
	p := twoDeviceProblem()
	a, err := (&SA{}).Schedule(p, rng())
	if err != nil {
		t.Fatal(err)
	}
	_, span, err := Simulate(p, a)
	if err != nil {
		t.Fatal(err)
	}
	if span != 3*time.Second {
		t.Errorf("SA makespan = %v, want optimal 3s", span)
	}
}

func TestSAChargesRepairScanOnlyWhenRestricted(t *testing.T) {
	// Unrestricted problem: no repair charges.
	est := &StaticEstimator{Default: time.Second}
	reqs := []*Request{
		{ID: 1, Candidates: []DeviceID{"d1", "d2"}},
		{ID: 2, Candidates: []DeviceID{"d1", "d2"}},
	}
	p := NewProblem(reqs, []DeviceID{"d1", "d2"}, nil, est)
	if hasEligibilityRestrictions(p) {
		t.Fatal("unrestricted problem reported restricted")
	}
	reqs2 := []*Request{
		{ID: 1, Candidates: []DeviceID{"d1"}},
		{ID: 2, Candidates: []DeviceID{"d1", "d2"}},
	}
	p2 := NewProblem(reqs2, []DeviceID{"d1", "d2"}, nil, est)
	if !hasEligibilityRestrictions(p2) {
		t.Fatal("restricted problem not detected")
	}
}

func TestOptimalSolvesTinyInstance(t *testing.T) {
	p := twoDeviceProblem()
	a, err := (&Optimal{}).Schedule(p, rng())
	if err != nil {
		t.Fatal(err)
	}
	_, span, err := Simulate(p, a)
	if err != nil {
		t.Fatal(err)
	}
	if span != 3*time.Second {
		t.Errorf("OPT makespan = %v, want 3s", span)
	}
}

func TestOptimalRejectsLargeInstances(t *testing.T) {
	reqs := make([]*Request, 12)
	for i := range reqs {
		reqs[i] = &Request{ID: i + 1, Candidates: []DeviceID{"d1"}}
	}
	p := NewProblem(reqs, []DeviceID{"d1"}, nil, &StaticEstimator{Default: time.Second})
	if _, err := (&Optimal{}).Schedule(p, rng()); err == nil {
		t.Error("optimal solver accepted 12 requests")
	}
}

func TestOptimalRespectsSequenceDependence(t *testing.T) {
	// Single device, three targets on a line: optimal order is monotone,
	// not the static shortest-first.
	est := &PTZEstimator{}
	reqs := []*Request{
		{ID: 1, Target: geo.Orientation{Pan: -100, Zoom: 1}, Candidates: []DeviceID{"d1"}},
		{ID: 2, Target: geo.Orientation{Pan: 160, Zoom: 1}, Candidates: []DeviceID{"d1"}},
		{ID: 3, Target: geo.Orientation{Pan: -160, Zoom: 1}, Candidates: []DeviceID{"d1"}},
	}
	p := NewProblem(reqs, []DeviceID{"d1"}, map[DeviceID]Status{"d1": geo.Orientation{Pan: -90, Zoom: 1}}, est)
	a, err := (&Optimal{}).Schedule(p, rng())
	if err != nil {
		t.Fatal(err)
	}
	order := ids(a.Order["d1"])
	// Starting at -90: going -100 → -160 → 160 total pan = 10+60+320 = 390.
	// Alternative -100 → 160 → -160 = 10+260+320 = 590. Monotone sweep wins.
	if order[0] != 1 || order[1] != 3 || order[2] != 2 {
		t.Errorf("optimal order = %v, want [1 3 2]", order)
	}
}

func TestPTZEstimatorEnvelope(t *testing.T) {
	est := &PTZEstimator{}
	req := &Request{ID: 1, Target: geo.Orientation{Pan: 170, Zoom: 1}}
	cost, next := est.Estimate(req, "d1", geo.Orientation{Pan: -170, Zoom: 1})
	if cost != 5*time.Second+DefaultFixedCost {
		t.Errorf("full-pan cost = %v, want 5.36s", cost)
	}
	if next.(geo.Orientation).Pan != 170 {
		t.Errorf("status after = %+v", next)
	}
	// No movement: fixed cost only.
	cost2, _ := est.Estimate(req, "d1", geo.Orientation{Pan: 170, Zoom: 1})
	if cost2 != DefaultFixedCost {
		t.Errorf("no-move cost = %v, want 0.36s", cost2)
	}
}

func TestPTZEstimatorNoTarget(t *testing.T) {
	est := &PTZEstimator{}
	cost, st := est.Estimate(&Request{ID: 1}, "d1", geo.Orientation{Pan: 30, Zoom: 1})
	if cost != DefaultFixedCost {
		t.Errorf("cost = %v", cost)
	}
	if st.(geo.Orientation).Pan != 30 {
		t.Error("status changed without a target")
	}
}

func TestEvalCounting(t *testing.T) {
	p := twoDeviceProblem()
	p.ResetEvals()
	p.Estimate(p.Requests[0], "d1", nil)
	p.Estimate(p.Requests[0], "d2", nil)
	if p.Evals() != 2 {
		t.Errorf("evals = %d, want 2", p.Evals())
	}
	p.ChargeEvals(10)
	if p.Evals() != 12 {
		t.Errorf("evals after charge = %d, want 12", p.Evals())
	}
	p.ResetEvals()
	if p.Evals() != 0 {
		t.Error("ResetEvals did not zero the counter")
	}
}

func ids(reqs []*Request) []int {
	out := make([]int, len(reqs))
	for i, r := range reqs {
		out[i] = r.ID
	}
	return out
}
