package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		msg  Message
	}{
		{"probe", Message{Type: TypeProbe, Seq: 1, Device: "camera-1"}},
		{"read", Message{Type: TypeRead, Seq: 2, Device: "mote-3", Payload: MustPayload(&ReadReq{Attr: "accel_x"})}},
		{"exec", Message{Type: TypeExec, Seq: 99, Device: "camera-2", Payload: MustPayload(&ExecReq{Op: "pan", Args: MustPayload(map[string]float64{"deg": 42})})}},
		{"error", NewError(7, "phone-1", CodeUnreachable, "out of coverage")},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteFrame(&buf, &tt.msg); err != nil {
				t.Fatalf("WriteFrame: %v", err)
			}
			got, err := ReadFrame(&buf)
			if err != nil {
				t.Fatalf("ReadFrame: %v", err)
			}
			if got.Type != tt.msg.Type || got.Seq != tt.msg.Seq || got.Device != tt.msg.Device {
				t.Errorf("round trip = %+v, want %+v", got, tt.msg)
			}
			if !bytes.Equal(got.Payload, tt.msg.Payload) {
				t.Errorf("payload = %s, want %s", got.Payload, tt.msg.Payload)
			}
		})
	}
}

func TestMultipleFramesSequential(t *testing.T) {
	var buf bytes.Buffer
	for i := uint64(0); i < 10; i++ {
		m := Message{Type: TypeProbe, Seq: i}
		if err := WriteFrame(&buf, &m); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 10; i++ {
		m, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if m.Seq != i {
			t.Fatalf("frame %d has seq %d", i, m.Seq)
		}
	}
}

func TestReadFrameEOFIsErrClosed(t *testing.T) {
	_, err := ReadFrame(bytes.NewReader(nil))
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestReadFrameTruncatedHeader(t *testing.T) {
	_, err := ReadFrame(bytes.NewReader([]byte{0, 0}))
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed for truncated header", err)
	}
}

func TestReadFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	buf.Write(hdr[:])
	buf.WriteString("short")
	_, err := ReadFrame(&buf)
	if !errors.Is(err, ErrFrameTruncated) {
		t.Fatalf("err = %v, want ErrFrameTruncated", err)
	}
	// Mid-body death is not a clean hangup: the two conditions must stay
	// distinguishable for callers classifying peer failures.
	if errors.Is(err, ErrClosed) {
		t.Fatalf("truncated body also matches ErrClosed: %v", err)
	}
	if !strings.Contains(err.Error(), "100") {
		t.Fatalf("truncation error does not name the promised size: %v", err)
	}
}

func TestReadFrameBodyNeverStarts(t *testing.T) {
	// A complete header followed by EOF is still a truncated frame, not a
	// clean close: the peer committed to a body it never sent.
	_, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 8}))
	if !errors.Is(err, ErrFrameTruncated) {
		t.Fatalf("err = %v, want ErrFrameTruncated", err)
	}
}

func TestReadFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrameSize+1)
	buf.Write(hdr[:])
	_, err := ReadFrame(&buf)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	if !strings.Contains(err.Error(), "1048577") {
		t.Fatalf("oversize error does not name the offending size: %v", err)
	}
}

func TestWriteFrameTooLarge(t *testing.T) {
	m := Message{Type: TypeExec, Payload: MustPayload(strings.Repeat("x", MaxFrameSize))}
	if err := WriteFrame(io.Discard, &m); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameGarbageJSON(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 4)
	buf.Write(hdr[:])
	buf.WriteString("{{{{")
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("expected unmarshal error")
	}
}

func TestDecodePayload(t *testing.T) {
	m := Message{Type: TypeReadAck, Payload: MustPayload(&ReadAck{Attr: "temp", Value: MustPayload(23.5)})}
	var ack ReadAck
	if err := DecodePayload(&m, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Attr != "temp" {
		t.Errorf("attr = %q", ack.Attr)
	}
	var v float64
	if err := DecodePayload(&Message{Payload: ack.Value}, &v); err != nil {
		t.Fatal(err)
	}
	if v != 23.5 {
		t.Errorf("value = %v, want 23.5", v)
	}
}

func TestDecodePayloadError(t *testing.T) {
	m := Message{Type: TypeReadAck, Payload: []byte("not-json")}
	var ack ReadAck
	if err := DecodePayload(&m, &ack); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestErrorPayloadErr(t *testing.T) {
	e := ErrorPayload{Code: CodeBusy, Message: "camera moving"}
	if got := e.Err().Error(); !strings.Contains(got, CodeBusy) || !strings.Contains(got, "camera moving") {
		t.Errorf("Err() = %q", got)
	}
}

func TestTypeString(t *testing.T) {
	tests := []struct {
		typ  Type
		want string
	}{
		{TypeProbe, "PROBE"}, {TypeProbeAck, "PROBE_ACK"},
		{TypeRead, "READ"}, {TypeReadAck, "READ_ACK"},
		{TypeExec, "EXEC"}, {TypeExecAck, "EXEC_ACK"},
		{TypeError, "ERROR"}, {Type(42), "Type(42)"},
	}
	for _, tt := range tests {
		if got := tt.typ.String(); got != tt.want {
			t.Errorf("Type(%d).String() = %q, want %q", tt.typ, got, tt.want)
		}
	}
}

func TestQuickRoundTripArbitraryPayload(t *testing.T) {
	f := func(seq uint64, device string, payload []byte) bool {
		m := Message{Type: TypeExecAck, Seq: seq, Device: device, Payload: MustPayload(payload)}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, &m); err != nil {
			// Only oversized frames may fail.
			return len(payload) > MaxFrameSize/2
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		return got.Seq == seq && got.Device == device && bytes.Equal(got.Payload, m.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
