// Package wire defines the Aorta device wire protocol.
//
// The uniform data communication layer (paper §3) talks to every device —
// camera, mote, or phone — through the same message vocabulary: PROBE to
// check availability and fetch physical status, READ to acquire an
// attribute value, and EXEC to run an atomic operation. Messages are
// length-prefixed JSON frames so heterogeneous emulators and real drivers
// can interoperate over any stream transport.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Type identifies the kind of a message.
type Type int

// Message types. PROBE/READ/EXEC are requests from the engine; the Ack
// variants are device responses; TypeError is a device-side failure
// response.
const (
	TypeProbe Type = iota + 1
	TypeProbeAck
	TypeRead
	TypeReadAck
	TypeExec
	TypeExecAck
	TypeError
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeProbe:
		return "PROBE"
	case TypeProbeAck:
		return "PROBE_ACK"
	case TypeRead:
		return "READ"
	case TypeReadAck:
		return "READ_ACK"
	case TypeExec:
		return "EXEC"
	case TypeExecAck:
		return "EXEC_ACK"
	case TypeError:
		return "ERROR"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// MaxFrameSize bounds a single frame (1 MiB covers the largest photo the
// camera emulator produces).
const MaxFrameSize = 1 << 20

// Message is a single protocol frame.
type Message struct {
	Type    Type            `json:"type"`
	Seq     uint64          `json:"seq"`
	Device  string          `json:"device,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// ProbeAck is the payload of a TypeProbeAck message.
type ProbeAck struct {
	DeviceType string          `json:"device_type"`
	DeviceID   string          `json:"device_id"`
	Busy       bool            `json:"busy"`
	Status     json.RawMessage `json:"status,omitempty"`
}

// ReadReq is the payload of a TypeRead message.
type ReadReq struct {
	Attr string `json:"attr"`
}

// ReadAck is the payload of a TypeReadAck message.
type ReadAck struct {
	Attr  string          `json:"attr"`
	Value json.RawMessage `json:"value"`
}

// ExecReq is the payload of a TypeExec message: run one atomic operation.
type ExecReq struct {
	Op   string          `json:"op"`
	Args json.RawMessage `json:"args,omitempty"`
}

// ExecAck is the payload of a TypeExecAck message.
type ExecAck struct {
	Op     string          `json:"op"`
	Result json.RawMessage `json:"result,omitempty"`
}

// ErrorPayload is the payload of a TypeError message.
type ErrorPayload struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error codes used in ErrorPayload.Code.
const (
	CodeBusy        = "busy"
	CodeUnknownOp   = "unknown_op"
	CodeUnknownAttr = "unknown_attr"
	CodeBadRequest  = "bad_request"
	CodeInternal    = "internal"
	CodeUnreachable = "unreachable"
)

// DeviceError converts an ErrorPayload into a Go error.
func (e *ErrorPayload) Err() error {
	return fmt.Errorf("device error %s: %s", e.Code, e.Message)
}

// Errors returned by the codec.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrameSize")
	ErrClosed        = errors.New("wire: connection closed")
	// ErrFrameTruncated: the stream ended partway through a frame body —
	// the header promised more bytes than arrived. Distinct from ErrClosed
	// (clean close at a frame boundary) because it means the peer died or
	// the link was severed mid-message; callers treat it as evidence of a
	// failed exchange, not an orderly hangup.
	ErrFrameTruncated = errors.New("wire: frame truncated mid-body")
)

// MustPayload marshals v into a payload, panicking on marshal failure —
// payload types in this package always marshal.
func MustPayload(v any) json.RawMessage {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("wire: marshal payload: %v", err))
	}
	return b
}

// DecodePayload unmarshals a message payload into out.
func DecodePayload(m *Message, out any) error {
	if err := json.Unmarshal(m.Payload, out); err != nil {
		return fmt.Errorf("wire: decode %s payload: %w", m.Type, err)
	}
	return nil
}

// NewError builds a TypeError response to request seq.
func NewError(seq uint64, device, code, msg string) Message {
	return Message{
		Type:    TypeError,
		Seq:     seq,
		Device:  device,
		Payload: MustPayload(&ErrorPayload{Code: code, Message: msg}),
	}
}

// WriteFrame writes one length-prefixed message to w.
func WriteFrame(w io.Writer, m *Message) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("wire: marshal frame: %w", err)
	}
	if len(body) > MaxFrameSize {
		return fmt.Errorf("%w: %d-byte frame (max %d)", ErrFrameTooLarge, len(body), MaxFrameSize)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write frame header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("wire: write frame body: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed message from r.
func ReadFrame(r io.Reader) (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("wire: read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		// Reject before allocating: a corrupt or hostile header must not
		// size a buffer.
		return nil, fmt.Errorf("%w: %d-byte frame (max %d)", ErrFrameTooLarge, n, MaxFrameSize)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: header promised %d bytes", ErrFrameTruncated, n)
		}
		return nil, fmt.Errorf("wire: read frame body: %w", err)
	}
	var m Message
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("wire: unmarshal frame: %w", err)
	}
	return &m, nil
}
