package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadFrame: arbitrary bytes must never panic the codec, and every
// frame it accepts must re-encode to something it accepts again.
func FuzzReadFrame(f *testing.F) {
	// Seed with a valid frame and assorted corruption.
	var buf bytes.Buffer
	msg := Message{Type: TypeExec, Seq: 7, Device: "camera-1", Payload: MustPayload(&ExecReq{Op: "move"})}
	if err := WriteFrame(&buf, &msg); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'x'})
	f.Add([]byte{0, 0, 0, 2, '{', '}'})
	// Truncated mid-body: header promises 100 bytes, only 3 arrive.
	f.Add([]byte{0, 0, 0, 100, 'a', 'b', 'c'})
	// Header alone, body never starts.
	f.Add([]byte{0, 0, 0, 8})
	// Oversized: header one past MaxFrameSize; must be rejected before any
	// body allocation.
	oversize := make([]byte, 4)
	binary.BigEndian.PutUint32(oversize, MaxFrameSize+1)
	f.Add(oversize)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, m); err != nil {
			t.Fatalf("accepted frame fails to re-encode: %v", err)
		}
		m2, err := ReadFrame(&out)
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if m2.Type != m.Type || m2.Seq != m.Seq || m2.Device != m.Device {
			t.Fatalf("round trip changed header: %+v vs %+v", m2, m)
		}
	})
}
