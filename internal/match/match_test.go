package match

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"aorta/internal/sqlparse"
)

func subIDs(subs []Sub) []int {
	out := make([]int, len(subs))
	for i, s := range subs {
		out[i] = s.ID
	}
	return out
}

func TestRangeRouting(t *testing.T) {
	x := NewIndex()
	x.Insert(Sub{ID: 1, Tag: "s"}, []Predicate{{Attr: "accel", Op: OpGT, Value: 500.0}})
	x.Insert(Sub{ID: 2, Tag: "s"}, []Predicate{{Attr: "accel", Op: OpGT, Value: 700.0}})
	x.Insert(Sub{ID: 3, Tag: "s"}, []Predicate{{Attr: "accel", Op: OpLE, Value: 100.0}})

	tests := []struct {
		accel float64
		want  []int
	}{
		{900, []int{1, 2}},
		{600, []int{1}},
		{700, []int{1}}, // strict: 700 > 700 is false
		{100, []int{3}}, // non-strict: 100 <= 100
		{50, []int{3}},
		{300, nil},
	}
	for _, tt := range tests {
		got := subIDs(x.Match(map[string]any{"accel": tt.accel}))
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("Match(accel=%v) = %v, want %v", tt.accel, got, tt.want)
		}
	}
}

func TestEqualityAndConjunction(t *testing.T) {
	x := NewIndex()
	// Sub 1 wants mote-3 above 500; sub 2 any mote above 500; sub 3 is
	// residual (no indexable conjunct).
	x.Insert(Sub{ID: 1}, []Predicate{
		{Attr: "id", Op: OpEQ, Value: "mote-3"},
		{Attr: "accel", Op: OpGT, Value: 500.0},
	})
	x.Insert(Sub{ID: 2}, []Predicate{{Attr: "accel", Op: OpGT, Value: 500.0}})
	x.Insert(Sub{ID: 3}, nil)

	got := subIDs(x.Match(map[string]any{"id": "mote-3", "accel": 900.0}))
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("full match = %v", got)
	}
	got = subIDs(x.Match(map[string]any{"id": "mote-7", "accel": 900.0}))
	if !reflect.DeepEqual(got, []int{2, 3}) {
		t.Errorf("wrong mote = %v", got)
	}
	got = subIDs(x.Match(map[string]any{"id": "mote-3", "accel": 100.0}))
	if !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("low accel = %v", got)
	}
}

func TestNumericEqualityNormalizesInts(t *testing.T) {
	x := NewIndex()
	x.Insert(Sub{ID: 1}, []Predicate{{Attr: "depth", Op: OpEQ, Value: 2.0}})
	if got := subIDs(x.Match(map[string]any{"depth": int(2)})); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("int probe = %v", got)
	}
	if got := x.Match(map[string]any{"depth": "2"}); len(got) != 0 {
		t.Errorf("string probe matched numeric equality: %v", got)
	}
}

func TestMissingAndMismatchedValues(t *testing.T) {
	x := NewIndex()
	x.Insert(Sub{ID: 1}, []Predicate{{Attr: "accel", Op: OpGT, Value: 0.0}})
	if got := x.Match(map[string]any{}); len(got) != 0 {
		t.Errorf("missing attr matched: %v", got)
	}
	if got := x.Match(map[string]any{"accel": nil}); len(got) != 0 {
		t.Errorf("nil attr matched: %v", got)
	}
	if got := x.Match(map[string]any{"accel": "fast"}); len(got) != 0 {
		t.Errorf("string value matched numeric predicate: %v", got)
	}
}

func TestRemove(t *testing.T) {
	x := NewIndex()
	for i := 1; i <= 5; i++ {
		x.Insert(Sub{ID: i}, []Predicate{{Attr: "a", Op: OpGT, Value: float64(i * 10)}})
	}
	x.Insert(Sub{ID: 6}, nil) // residual
	x.Remove(Sub{ID: 3})
	x.Remove(Sub{ID: 6})
	x.Remove(Sub{ID: 99}) // unknown: no-op
	got := subIDs(x.Match(map[string]any{"a": 100.0}))
	if !reflect.DeepEqual(got, []int{1, 2, 4, 5}) {
		t.Errorf("after remove = %v", got)
	}
	if x.Len() != 4 {
		t.Errorf("Len = %d", x.Len())
	}
	for i := 1; i <= 5; i++ {
		x.Remove(Sub{ID: i})
	}
	if len(x.attrs) != 0 {
		t.Errorf("attr indexes leak after removing every sub: %d", len(x.attrs))
	}
}

func TestInsertReplaces(t *testing.T) {
	x := NewIndex()
	x.Insert(Sub{ID: 1}, []Predicate{{Attr: "a", Op: OpGT, Value: 10.0}})
	x.Insert(Sub{ID: 1}, []Predicate{{Attr: "a", Op: OpLT, Value: 5.0}})
	if got := x.Match(map[string]any{"a": 20.0}); len(got) != 0 {
		t.Errorf("stale predicate survived replacement: %v", got)
	}
	if got := subIDs(x.Match(map[string]any{"a": 1.0})); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("replacement predicate not matching: %v", got)
	}
}

func TestStats(t *testing.T) {
	x := NewIndex()
	x.Insert(Sub{ID: 1}, []Predicate{{Attr: "a", Op: OpGT, Value: 10.0}})
	x.Insert(Sub{ID: 2}, nil)
	x.Match(map[string]any{"a": 20.0})
	x.Match(map[string]any{"a": 0.0})
	s := x.Stats()
	if s.Subs != 2 || s.Residual != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.Probes != 2 || s.Hits != 1 || s.ResidualHits != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestExtract(t *testing.T) {
	owns := func(ref *sqlparse.ColumnRef) bool { return ref.Qualifier == "s" }
	parse := func(sql string) sqlparse.Expr {
		t.Helper()
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		return stmt.(*sqlparse.Select).Where
	}

	tests := []struct {
		where string
		want  []Predicate
	}{
		{
			`SELECT s.id FROM sensor s WHERE s.accel_x > 500`,
			[]Predicate{{Attr: "accel_x", Op: OpGT, Value: 500.0}},
		},
		{
			`SELECT s.id FROM sensor s WHERE 500 < s.accel_x`,
			[]Predicate{{Attr: "accel_x", Op: OpGT, Value: 500.0}},
		},
		{
			`SELECT s.id FROM sensor s WHERE s.accel_x > 500 AND s.id = "mote-3" AND coverage(c.id, s.loc)`,
			[]Predicate{
				{Attr: "accel_x", Op: OpGT, Value: 500.0},
				{Attr: "id", Op: OpEQ, Value: "mote-3"},
			},
		},
		{
			// Inside OR nothing is extractable; the other AND conjunct is.
			`SELECT s.id FROM sensor s WHERE (s.temp > 30 OR s.accel_x > 500) AND s.depth <= 2`,
			[]Predicate{{Attr: "depth", Op: OpLE, Value: 2.0}},
		},
		{
			// NOT blocks extraction; != is not indexable; column-to-column
			// comparisons are not indexable.
			`SELECT s.id FROM sensor s, camera c WHERE NOT s.temp > 30 AND s.id != "x" AND s.temp > c.pan`,
			nil,
		},
		{
			// Other table's columns are not owned.
			`SELECT s.id FROM sensor s, camera c WHERE c.pan > 10 AND s.temp >= 5`,
			[]Predicate{{Attr: "temp", Op: OpGE, Value: 5.0}},
		},
	}
	for _, tt := range tests {
		got := Extract(parse(tt.where), owns)
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("Extract(%q) = %v, want %v", tt.where, got, tt.want)
		}
	}
}

// randomIndex populates an index with nSubs random subscriptions drawn
// from rng, returning it for comparison probes.
func randomIndex(rng *rand.Rand, nSubs int) *Index {
	attrs := []string{"a", "b", "c", "d"}
	ops := []string{OpEQ, OpLT, OpLE, OpGT, OpGE}
	x := NewIndex()
	for i := 0; i < nSubs; i++ {
		n := rng.Intn(4) // 0 conjuncts → residual
		preds := make([]Predicate, 0, n)
		for j := 0; j < n; j++ {
			p := Predicate{Attr: attrs[rng.Intn(len(attrs))], Op: ops[rng.Intn(len(ops))]}
			if p.Op == OpEQ && rng.Intn(2) == 0 {
				p.Value = fmt.Sprintf("v%d", rng.Intn(5))
			} else {
				// Coarse values make collisions (and exact boundary hits) common.
				p.Value = float64(rng.Intn(21) - 10)
			}
			preds = append(preds, p)
		}
		x.Insert(Sub{ID: i, Tag: "t"}, preds)
	}
	return x
}

func randomTuple(rng *rand.Rand) map[string]any {
	attrs := []string{"a", "b", "c", "d"}
	t := make(map[string]any)
	for _, a := range attrs {
		switch rng.Intn(5) {
		case 0: // missing
		case 1:
			t[a] = fmt.Sprintf("v%d", rng.Intn(5))
		case 2:
			t[a] = rng.Intn(21) - 10 // int, exercising numeric widening
		default:
			t[a] = float64(rng.Intn(21) - 10)
		}
	}
	return t
}

// TestMatchEquivalenceRandomized cross-checks Match against BruteMatch
// over many random indexes and tuples, with churn (removals) in between.
func TestMatchEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 50; round++ {
		x := randomIndex(rng, 40)
		// Churn: remove a third of the subscriptions.
		for i := 0; i < 40; i += 3 {
			x.Remove(Sub{ID: i, Tag: "t"})
		}
		for probe := 0; probe < 40; probe++ {
			tuple := randomTuple(rng)
			got := x.Match(tuple)
			want := x.BruteMatch(tuple)
			if len(want) == 0 {
				want = []Sub{}
			}
			if len(got) == 0 {
				got = []Sub{}
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d: Match = %v, BruteMatch = %v, tuple = %v", round, got, want, tuple)
			}
		}
	}
}

// FuzzIndexEquivalence drives the index with fuzzer-chosen subscriptions
// and tuples and requires Match ≡ BruteMatch: the sublinear routing result
// must equal brute-force linear evaluation exactly.
func FuzzIndexEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(20))
	f.Add(int64(42), uint8(50), uint8(5))
	f.Add(int64(2005), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, nSubs, nProbes uint8) {
		rng := rand.New(rand.NewSource(seed))
		x := randomIndex(rng, int(nSubs))
		for i := 0; i < int(nSubs); i += 2 {
			if rng.Intn(2) == 0 {
				x.Remove(Sub{ID: i, Tag: "t"})
			}
		}
		for probe := 0; probe < int(nProbes); probe++ {
			tuple := randomTuple(rng)
			got := x.Match(tuple)
			want := x.BruteMatch(tuple)
			if len(got) != len(want) {
				t.Fatalf("Match = %v, BruteMatch = %v, tuple = %v", got, want, tuple)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("Match = %v, BruteMatch = %v, tuple = %v", got, want, tuple)
				}
			}
		}
	})
}

// benchIndex builds a Q-subscription index shaped like the qscale study:
// threshold predicates over one attribute plus an equality attribute.
func benchIndex(q int) *Index {
	x := NewIndex()
	for i := 0; i < q; i++ {
		x.Insert(Sub{ID: i}, []Predicate{
			{Attr: "accel_x", Op: OpGT, Value: float64(100 + (i%90)*10)},
			{Attr: "id", Op: OpEQ, Value: fmt.Sprintf("mote-%d", i%16+1)},
		})
	}
	return x
}

func benchTuple(i int) map[string]any {
	return map[string]any{
		"accel_x": float64(i%1000) + 0.5,
		"id":      fmt.Sprintf("mote-%d", i%16+1),
	}
}

func BenchmarkMatch1000(b *testing.B) {
	x := benchIndex(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Match(benchTuple(i))
	}
}

func BenchmarkBruteMatch1000(b *testing.B) {
	x := benchIndex(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.BruteMatch(benchTuple(i))
	}
}

func BenchmarkInsertRemove(b *testing.B) {
	x := benchIndex(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := Sub{ID: 100000 + i%64}
		x.Insert(s, []Predicate{{Attr: "accel_x", Op: OpGT, Value: float64(i % 997)}})
		x.Remove(s)
	}
}
