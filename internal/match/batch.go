package match

// Columnar routing: MatchBatch probes a whole scan batch through the index
// at once. Attribute→column resolution happens once per batch instead of
// one map lookup per tuple per attribute, numeric probes walk contiguous
// []float64 slices without boxing, and the result is a row selection per
// subscription instead of a []Sub per tuple.

import (
	"slices"
	"sort"

	"aorta/internal/comm"
)

// Selection is the set of batch rows routed to one subscription. Rows is
// ascending; nil Rows means every row of the batch (a residual
// subscription, which matches unconditionally).
type Selection struct {
	Sub  Sub
	Rows []int32
}

// matchScratch is MatchBatch's pooled working memory: the flat
// conjunct-tally plane (always all-zero at rest), the dirtied tally slots,
// and the completed (id, row) hits packed as id<<32|row so they sort with
// the scalar sort fast path.
type matchScratch struct {
	counts []uint16
	dirty  []int32
	hits   []uint64
}

// MatchBatch routes every row of a batch: it returns one Selection per
// subscription that matched at least one row, plus every residual
// subscription, sorted for determinism. Equivalent to calling Match on
// each materialized row, but probes columns positionally.
//
// Satisfied-conjunct tallies live in one flat scratch array indexed by the
// subscription's dense id × row — a bump is an array increment, no map
// traffic on the hot path. A (sub, row) pair is recorded the moment its
// tally reaches the subscription's conjunct count, so emission work is
// proportional to actual deliveries, not to the id space. The scratch is
// pooled across calls and cleaned by rewinding only the dirtied slots.
//
// An empty batch returns nil: no rows, no deliveries.
func (x *Index) MatchBatch(b *comm.Batch) []Selection {
	n := b.Len()
	if n == 0 {
		return nil
	}
	x.mu.RLock()
	defer x.mu.RUnlock()
	x.probes.Add(int64(n))

	sc := x.getScratch(len(x.byID) * n)
	counts := sc.counts
	bump := func(id int32, row int) {
		idx := int(id)*n + row
		v := counts[idx] + 1
		counts[idx] = v
		if v == 1 {
			sc.dirty = append(sc.dirty, int32(idx))
		}
		if v == x.needByID[id] {
			sc.hits = append(sc.hits, uint64(uint32(id))<<32|uint64(uint32(row)))
		}
	}

	for attr, ai := range x.attrs {
		col := b.ColByName(attr)
		if col == nil {
			continue // attribute absent from this batch: no conjunct satisfied
		}
		switch col.Kind() {
		case comm.KindFloat:
			fs := col.Floats()
			for row, f := range fs {
				ai.probeNum(f, row, bump)
			}
		case comm.KindString:
			for row, s := range col.Strings() {
				for _, e := range ai.eq[eqKey{str: s, isStr: true}] {
					bump(e.id, row)
				}
			}
		default:
			// Demoted or structured column: per-row boxed probing with
			// Match's exact nil/type semantics.
			for row := 0; row < n; row++ {
				v := col.Value(row)
				if v == nil {
					continue
				}
				if f, isNum := toFloat(v); isNum {
					ai.probeNum(f, row, bump)
				} else if s, isStr := v.(string); isStr {
					for _, e := range ai.eq[eqKey{str: s, isStr: true}] {
						bump(e.id, row)
					}
				}
			}
		}
	}

	// Group the completed hits into per-subscription row selections: the
	// packed keys sort by (id, row), every group subslices one shared
	// backing array.
	hits := sc.hits
	slices.Sort(hits)
	out := make([]Selection, 0, len(x.residual))
	rowsBuf := make([]int32, len(hits))
	for i := range hits {
		rowsBuf[i] = int32(uint32(hits[i]))
	}
	for i := 0; i < len(hits); {
		id := int32(hits[i] >> 32)
		j := i
		for j < len(hits) && int32(hits[j]>>32) == id {
			j++
		}
		out = append(out, Selection{Sub: x.byID[id], Rows: rowsBuf[i:j:j]})
		i = j
	}
	x.hits.Add(int64(len(hits)))
	for sub := range x.residual {
		out = append(out, Selection{Sub: sub}) // nil Rows: all rows
	}
	x.resHits.Add(int64(len(x.residual)) * int64(n))
	sort.Slice(out, func(i, j int) bool { return subLess(out[i].Sub, out[j].Sub) })

	x.putScratch(sc)
	return out
}

// getScratch returns pooled working memory with an all-zero tally plane of
// at least the given size.
func (x *Index) getScratch(size int) *matchScratch {
	sc, _ := x.scratch.Get().(*matchScratch)
	if sc == nil {
		sc = &matchScratch{}
	}
	if cap(sc.counts) < size {
		sc.counts = make([]uint16, size)
	} else {
		sc.counts = sc.counts[:size]
	}
	return sc
}

// putScratch rewinds the dirtied tally slots and recycles the scratch.
func (x *Index) putScratch(sc *matchScratch) {
	for _, idx := range sc.dirty {
		sc.counts[idx] = 0
	}
	sc.dirty = sc.dirty[:0]
	sc.hits = sc.hits[:0]
	x.scratch.Put(sc)
}

// probeNum probes one numeric value through an attribute's boundary trees
// and equality buckets, bumping each satisfied conjunct's subscription id.
func (ai *attrIndex) probeNum(f float64, row int, bump func(int32, int)) {
	// Lower bounds: prefix of ascending (c, non-strict-first) order.
	ai.lower.InOrder(func(e boundEntry) bool {
		if e.c > f || (e.c == f && e.strict) {
			return false
		}
		bump(e.id, row)
		return true
	})
	// Upper bounds: prefix of descending (c, non-strict-first) order.
	ai.upper.InOrder(func(e boundEntry) bool {
		if e.c < f || (e.c == f && e.strict) {
			return false
		}
		bump(e.id, row)
		return true
	})
	for _, e := range ai.eq[eqKey{num: f}] {
		bump(e.id, row)
	}
}
