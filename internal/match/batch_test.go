package match

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"aorta/internal/comm"
)

// selEqualsPerRowMatch checks MatchBatch against Match row by row: for
// every row, the set of subs whose selection covers that row must equal
// Match's answer on the materialized tuple.
func selEqualsPerRowMatch(t *testing.T, x *Index, b *comm.Batch) {
	t.Helper()
	sels := x.MatchBatch(b)
	perRow := make([]map[Sub]bool, b.Len())
	for i := range perRow {
		perRow[i] = make(map[Sub]bool)
	}
	for _, sel := range sels {
		if sel.Rows == nil {
			for i := 0; i < b.Len(); i++ {
				perRow[i][sel.Sub] = true
			}
			continue
		}
		for _, r := range sel.Rows {
			perRow[r][sel.Sub] = true
		}
	}
	for i := 0; i < b.Len(); i++ {
		want := x.Match(b.Row(i))
		got := make([]Sub, 0, len(perRow[i]))
		for s := range perRow[i] {
			got = append(got, s)
		}
		sortSubs(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("row %d: MatchBatch subs %v, Match %v", i, got, want)
		}
	}
}

func sortSubs(subs []Sub) {
	for i := 1; i < len(subs); i++ {
		for j := i; j > 0 && subLess(subs[j], subs[j-1]); j-- {
			subs[j], subs[j-1] = subs[j-1], subs[j]
		}
	}
}

func TestMatchBatchEquivalence(t *testing.T) {
	x := NewIndex()
	x.Insert(Sub{ID: 1, Tag: "s"}, []Predicate{{Attr: "accel", Op: OpGT, Value: 500.0}})
	x.Insert(Sub{ID: 2, Tag: "s"}, []Predicate{
		{Attr: "accel", Op: OpGT, Value: 300.0},
		{Attr: "id", Op: OpEQ, Value: "mote-2"},
	})
	x.Insert(Sub{ID: 3, Tag: "s"}, []Predicate{{Attr: "accel", Op: OpLE, Value: 200.0}})
	x.Insert(Sub{ID: 4, Tag: "s"}, nil) // residual

	b := comm.BatchFromTuples([]string{"id", "accel"}, []comm.Tuple{
		{"id": "mote-0", "accel": 100.0},
		{"id": "mote-1", "accel": 600.0},
		{"id": "mote-2", "accel": 400.0},
		{"id": "mote-3", "accel": 200.0},
	})
	defer b.Release()
	selEqualsPerRowMatch(t, x, b)
}

func TestMatchBatchEmptyAndMissingColumn(t *testing.T) {
	x := NewIndex()
	x.Insert(Sub{ID: 1, Tag: "s"}, []Predicate{{Attr: "accel", Op: OpGT, Value: 0.0}})

	empty := comm.BatchFromTuples([]string{"id", "accel"}, nil)
	defer empty.Release()
	if sels := x.MatchBatch(empty); sels != nil {
		t.Fatalf("empty batch routed %v", sels)
	}

	// The indexed attribute is absent from the batch: no sub matches, but
	// residual subs still get everything.
	x.Insert(Sub{ID: 2, Tag: "s"}, nil)
	noCol := comm.BatchFromTuples([]string{"id"}, []comm.Tuple{{"id": "a"}, {"id": "b"}})
	defer noCol.Release()
	sels := x.MatchBatch(noCol)
	if len(sels) != 1 || sels[0].Sub.ID != 2 || sels[0].Rows != nil {
		t.Fatalf("missing-column routing = %v", sels)
	}
	selEqualsPerRowMatch(t, x, noCol)
}

func TestMatchBatchDemotedColumn(t *testing.T) {
	x := NewIndex()
	x.Insert(Sub{ID: 1, Tag: "s"}, []Predicate{{Attr: "v", Op: OpGE, Value: 10.0}})
	x.Insert(Sub{ID: 2, Tag: "s"}, []Predicate{{Attr: "v", Op: OpEQ, Value: "high"}})

	// Mixed float/string/nil values force the column to KindAny.
	b := comm.BatchFromTuples([]string{"id", "v"}, []comm.Tuple{
		{"id": "a", "v": 15.0},
		{"id": "b", "v": "high"},
		{"id": "c", "v": nil},
		{"id": "d", "v": 5.0},
	})
	defer b.Release()
	if b.ColByName("v").Kind() != comm.KindAny {
		t.Fatal("v column did not demote")
	}
	selEqualsPerRowMatch(t, x, b)
}

func TestMatchBatchStatsEquivalence(t *testing.T) {
	mk := func() *Index {
		x := NewIndex()
		x.Insert(Sub{ID: 1, Tag: "s"}, []Predicate{{Attr: "accel", Op: OpGT, Value: 500.0}})
		x.Insert(Sub{ID: 2, Tag: "s"}, nil)
		return x
	}
	tuples := []comm.Tuple{
		{"id": "a", "accel": 700.0},
		{"id": "b", "accel": 100.0},
		{"id": "c", "accel": 900.0},
	}

	perRow := mk()
	for _, tp := range tuples {
		perRow.Match(tp)
	}
	batched := mk()
	b := comm.BatchFromTuples([]string{"id", "accel"}, tuples)
	defer b.Release()
	batched.MatchBatch(b)

	if got, want := batched.Stats(), perRow.Stats(); got != want {
		t.Fatalf("batched stats %+v, per-row %+v", got, want)
	}
}

func FuzzMatchBatchEquivalence(f *testing.F) {
	f.Add(int64(1), 8, 16)
	f.Add(int64(7), 20, 3)
	f.Fuzz(func(t *testing.T, seed int64, nSubs, nRows int) {
		if nSubs < 0 || nSubs > 64 || nRows < 0 || nRows > 64 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		x := NewIndex()
		attrs := []string{"a", "b", "c"}
		ops := []string{OpEQ, OpLT, OpLE, OpGT, OpGE}
		for i := 0; i < nSubs; i++ {
			var preds []Predicate
			for j := rng.Intn(4); j > 0; j-- {
				p := Predicate{Attr: attrs[rng.Intn(len(attrs))], Op: ops[rng.Intn(len(ops))]}
				if rng.Intn(4) == 0 {
					p.Op = OpEQ
					p.Value = fmt.Sprintf("s%d", rng.Intn(4))
				} else {
					p.Value = float64(rng.Intn(10))
				}
				preds = append(preds, p)
			}
			x.Insert(Sub{ID: i, Tag: "t"}, preds)
		}
		var tuples []comm.Tuple
		for i := 0; i < nRows; i++ {
			tp := comm.Tuple{"id": fmt.Sprintf("d%d", i)}
			for _, a := range attrs {
				switch rng.Intn(4) {
				case 0:
					tp[a] = float64(rng.Intn(10))
				case 1:
					tp[a] = fmt.Sprintf("s%d", rng.Intn(4))
				case 2:
					tp[a] = nil
				case 3:
					// absent
				}
			}
			tuples = append(tuples, tp)
		}
		b := comm.BatchFromTuples([]string{"id", "a", "b", "c"}, tuples)
		defer b.Release()
		selEqualsPerRowMatch(t, x, b)
	})
}

// BenchmarkRoutePath compares the two event-to-query routing paths over
// one epoch-sized scan (50 devices) against a 1000-subscription index:
// before is the row-map path (one Match per materialized tuple), after is
// one MatchBatch probe over the columnar batch.
func BenchmarkRoutePath(b *testing.B) {
	x := benchIndex(1000)
	const rows = 50
	tuples := make([]map[string]any, rows)
	for i := range tuples {
		tuples[i] = benchTuple(i)
	}
	batch := comm.NewBatch(comm.NewSchema(
		[]string{"accel_x", "id"}, []comm.Kind{comm.KindFloat, comm.KindString}))
	for i := 0; i < rows; i++ {
		batch.Append([]any{tuples[i]["accel_x"], tuples[i]["id"]})
	}

	b.Run("before", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, t := range tuples {
				x.Match(t)
			}
		}
	})
	b.Run("after", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			x.MatchBatch(batch)
		}
	})
}
