package match

import (
	"reflect"
	"testing"

	"aorta/internal/sqlparse"
)

// TestExtractEdgeCases pins the conservative boundaries of conjunct
// extraction: negated subtrees contribute nothing, duplicate-attribute
// conjuncts all survive, and non-constant comparisons are left to the full
// WHERE evaluation.
func TestExtractEdgeCases(t *testing.T) {
	owns := func(ref *sqlparse.ColumnRef) bool {
		return ref.Qualifier == "s" || ref.Qualifier == ""
	}
	parse := func(sql string) sqlparse.Expr {
		t.Helper()
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		return stmt.(*sqlparse.Select).Where
	}

	tests := []struct {
		name  string
		where string
		want  []Predicate
	}{
		{
			// NOT flips truth: a conjunct under NOT must not be indexed,
			// but its AND-siblings outside the NOT still are.
			"not over conjunct",
			`SELECT s.id FROM sensor s WHERE NOT (s.accel_x > 500) AND s.temp < 30`,
			[]Predicate{{Attr: "temp", Op: OpLT, Value: 30.0}},
		},
		{
			// NOT over a whole AND subtree suppresses both conjuncts.
			"not over and subtree",
			`SELECT s.id FROM sensor s WHERE NOT (s.accel_x > 500 AND s.temp < 30)`,
			nil,
		},
		{
			// Duplicate-attribute conjuncts each become a predicate: the
			// counting algorithm needs the full conjunct multiset, a > 100
			// alone must not satisfy a sub that also requires a > 500.
			"duplicate attribute conjuncts",
			`SELECT s.id FROM sensor s WHERE s.accel_x > 100 AND s.accel_x > 500 AND s.accel_x <= 900`,
			[]Predicate{
				{Attr: "accel_x", Op: OpGT, Value: 100.0},
				{Attr: "accel_x", Op: OpGT, Value: 500.0},
				{Attr: "accel_x", Op: OpLE, Value: 900.0},
			},
		},
		{
			// Column-to-column and literal-to-literal comparisons have no
			// (column, constant) anchor and stay out of the index.
			"non-constant comparisons",
			`SELECT s.id FROM sensor s WHERE s.accel_x > s.accel_y AND 1 < 2 AND s.temp >= 10`,
			[]Predicate{{Attr: "temp", Op: OpGE, Value: 10.0}},
		},
		{
			// != has no prefix property in either tree and is skipped.
			"not-equal skipped",
			`SELECT s.id FROM sensor s WHERE s.depth != 3 AND s.depth <= 9`,
			[]Predicate{{Attr: "depth", Op: OpLE, Value: 9.0}},
		},
		{
			// String ordering comparisons are not indexable; string
			// equality is.
			"string operators",
			`SELECT s.id FROM sensor s WHERE s.id > "mote-1" AND s.id = "mote-4"`,
			[]Predicate{{Attr: "id", Op: OpEQ, Value: "mote-4"}},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Extract(parse(tt.where), owns)
			if !reflect.DeepEqual(got, tt.want) {
				t.Fatalf("Extract(%s) = %v, want %v", tt.where, got, tt.want)
			}
		})
	}
}
