// Package match implements the predicate index that routes scanned tuples
// to subscribed queries in sublinear time.
//
// With N queries registered over the same device table, evaluating every
// query's WHERE clause against every tuple costs O(N) per tuple — linear in
// query count, the opposite of the scaling the ROADMAP asks for. The index
// decomposes each query's WHERE clause into AND-connected conjuncts and
// indexes the ones it can:
//
//   - numeric one-sided comparisons (attr > c, attr >= c, attr < c,
//     attr <= c) in two ordered boundary trees per attribute (built on
//     internal/rbtree), where the set of satisfied conjuncts for a probe
//     value is a prefix of the tree order — O(log n + hits) per probe;
//   - equality conjuncts (attr = c, numeric or string) in hash buckets —
//     O(1) per probe;
//   - everything else (boolean functions, OR trees, !=, cross-table
//     comparisons) stays out of the index and is re-checked by the full
//     WHERE evaluation downstream.
//
// A subscription matches a tuple when every one of its indexed conjuncts is
// satisfied (counting algorithm: tally satisfied conjuncts per subscription,
// compare against the subscription's conjunct count). Subscriptions with no
// indexable conjunct at all are residual: they match every tuple and rely
// entirely on the downstream WHERE. The index is therefore conservative —
// it may deliver a tuple the full WHERE later rejects, but it never
// withholds one the WHERE would accept.
//
// Value semantics: numeric conjuncts match only numeric tuple values
// (ints widen to float64), string equality matches only strings; a missing,
// nil or type-mismatched value does not satisfy the conjunct. That is the
// exact contract Predicate.Eval implements, and the fuzz test holds Match to
// it against brute-force linear evaluation.
package match

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"aorta/internal/rbtree"
)

// Op is a comparison operator of an indexable predicate.
const (
	OpEQ = "="
	OpLT = "<"
	OpLE = "<="
	OpGT = ">"
	OpGE = ">="
)

// Predicate is one indexable conjunct: attr OP value. Value is float64 for
// the ordered operators; OpEQ additionally accepts string.
type Predicate struct {
	Attr  string
	Op    string
	Value any
}

// String implements fmt.Stringer.
func (p Predicate) String() string { return fmt.Sprintf("%s %s %v", p.Attr, p.Op, p.Value) }

// Eval reports whether a tuple value satisfies the predicate — the ground
// truth the index reproduces. Missing (nil) and type-mismatched values do
// not satisfy.
func (p Predicate) Eval(v any) bool {
	if s, ok := p.Value.(string); ok {
		if p.Op != OpEQ {
			return false // non-equality string predicates are not indexable
		}
		vs, ok := v.(string)
		return ok && vs == s
	}
	c, ok := toFloat(p.Value)
	if !ok {
		return false
	}
	f, ok := toFloat(v)
	if !ok {
		return false
	}
	switch p.Op {
	case OpEQ:
		return f == c
	case OpLT:
		return f < c
	case OpLE:
		return f <= c
	case OpGT:
		return f > c
	case OpGE:
		return f >= c
	default:
		return false
	}
}

// indexable reports whether the predicate can live in the index.
func (p Predicate) indexable() bool {
	if _, isStr := p.Value.(string); isStr {
		return p.Op == OpEQ
	}
	if _, isNum := toFloat(p.Value); !isNum {
		return false
	}
	switch p.Op {
	case OpEQ, OpLT, OpLE, OpGT, OpGE:
		return true
	}
	return false
}

// Sub identifies one subscription: a (query, table-alias) pair in the
// engine, but the index is agnostic to what the two fields mean.
type Sub struct {
	ID  int
	Tag string
}

func subLess(a, b Sub) bool {
	if a.ID != b.ID {
		return a.ID < b.ID
	}
	return a.Tag < b.Tag
}

// boundEntry is one one-sided numeric conjunct in a boundary tree.
type boundEntry struct {
	c      float64
	strict bool // > / < rather than >= / <=
	sub    Sub
	cid    int   // conjunct index within the subscription, for duplicates
	id     int32 // the subscription's dense id, for MatchBatch tallying
}

// lowerLess orders a lower-bound tree (x > c, x >= c) so that for any probe
// value f the satisfied entries are exactly a prefix: ascending by c, and at
// equal c the non-strict (>=) entries first, since x >= c still matches at
// x == c while x > c no longer does.
func lowerLess(a, b boundEntry) bool {
	if a.c != b.c {
		return a.c < b.c
	}
	return entryTiebreak(a, b)
}

// upperLess orders an upper-bound tree (x < c, x <= c) descending by c with
// non-strict first at equal c, giving the same prefix property from the
// other side.
func upperLess(a, b boundEntry) bool {
	if a.c != b.c {
		return a.c > b.c
	}
	return entryTiebreak(a, b)
}

func entryTiebreak(a, b boundEntry) bool {
	if a.strict != b.strict {
		return !a.strict // non-strict sorts first at equal c
	}
	if a.sub.ID != b.sub.ID {
		return a.sub.ID < b.sub.ID
	}
	if a.sub.Tag != b.sub.Tag {
		return a.sub.Tag < b.sub.Tag
	}
	return a.cid < b.cid
}

// eqKey buckets equality conjuncts; numeric values are normalized to
// float64 so 500 and 500.0 share a bucket.
type eqKey struct {
	str   string
	num   float64
	isStr bool
}

type eqEntry struct {
	sub Sub
	cid int
	id  int32
}

// attrIndex holds every indexed conjunct anchored on one attribute.
type attrIndex struct {
	lower *rbtree.Tree[boundEntry]
	upper *rbtree.Tree[boundEntry]
	eq    map[eqKey][]eqEntry
}

func newAttrIndex() *attrIndex {
	return &attrIndex{
		lower: rbtree.New(lowerLess),
		upper: rbtree.New(upperLess),
		eq:    make(map[eqKey][]eqEntry),
	}
}

func (ai *attrIndex) empty() bool {
	return ai.lower.Len() == 0 && ai.upper.Len() == 0 && len(ai.eq) == 0
}

// subInfo records what one subscription contributed.
type subInfo struct {
	preds   []Predicate // all predicates, indexable or not (for BruteMatch)
	indexed int         // count of indexed conjuncts; 0 means residual
	id      int32       // dense id for MatchBatch's flat tally arrays
}

// Index routes tuples to the subscriptions whose indexed conjuncts they
// satisfy. Safe for concurrent use: Match takes a read lock, so routing from
// many scan loops proceeds in parallel.
type Index struct {
	mu       sync.RWMutex
	subs     map[Sub]*subInfo
	attrs    map[string]*attrIndex
	residual map[Sub]struct{}

	// Dense subscription numbering for MatchBatch: byID maps a
	// subscription's id back to its Sub, needByID caches its indexed
	// conjunct count. Freed ids are recycled so the dense range stays
	// compact under churn.
	byID     []Sub
	needByID []uint16
	freeIDs  []int32

	// scratch pools MatchBatch's flat tally arrays (*[]uint16); every
	// pooled array is all-zero.
	scratch sync.Pool

	// Routing counters are atomics: Match runs under the read lock so
	// concurrent probes may update them simultaneously.
	probes  atomic.Int64 // tuples probed
	hits    atomic.Int64 // indexed (non-residual) deliveries
	resHits atomic.Int64 // residual deliveries
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		subs:     make(map[Sub]*subInfo),
		attrs:    make(map[string]*attrIndex),
		residual: make(map[Sub]struct{}),
	}
}

// Len returns the number of subscriptions.
func (x *Index) Len() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.subs)
}

// Insert registers a subscription under its predicate conjuncts. Predicates
// that are not indexable are kept for BruteMatch but contribute nothing to
// routing; a subscription with no indexable predicate is residual and
// matches every tuple. Inserting an existing Sub replaces it.
func (x *Index) Insert(s Sub, preds []Predicate) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if _, dup := x.subs[s]; dup {
		x.removeLocked(s)
	}
	info := &subInfo{preds: preds}
	if k := len(x.freeIDs); k > 0 {
		info.id = x.freeIDs[k-1]
		x.freeIDs = x.freeIDs[:k-1]
		x.byID[info.id] = s
	} else {
		info.id = int32(len(x.byID))
		x.byID = append(x.byID, s)
		x.needByID = append(x.needByID, 0)
	}
	for cid, p := range preds {
		if !p.indexable() {
			continue
		}
		info.indexed++
		ai := x.attrs[p.Attr]
		if ai == nil {
			ai = newAttrIndex()
			x.attrs[p.Attr] = ai
		}
		if p.Op == OpEQ {
			k := eqKeyOf(p.Value)
			ai.eq[k] = append(ai.eq[k], eqEntry{sub: s, cid: cid, id: info.id})
			continue
		}
		c, _ := toFloat(p.Value)
		e := boundEntry{c: c, strict: p.Op == OpGT || p.Op == OpLT, sub: s, cid: cid, id: info.id}
		if p.Op == OpGT || p.Op == OpGE {
			ai.lower.Insert(e)
		} else {
			ai.upper.Insert(e)
		}
	}
	x.needByID[info.id] = uint16(info.indexed)
	if info.indexed == 0 {
		x.residual[s] = struct{}{}
	}
	x.subs[s] = info
}

// Remove drops a subscription and every conjunct it contributed.
func (x *Index) Remove(s Sub) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.removeLocked(s)
}

func (x *Index) removeLocked(s Sub) {
	info, ok := x.subs[s]
	if !ok {
		return
	}
	delete(x.subs, s)
	delete(x.residual, s)
	x.byID[info.id] = Sub{}
	x.needByID[info.id] = 0
	x.freeIDs = append(x.freeIDs, info.id)
	for cid, p := range info.preds {
		if !p.indexable() {
			continue
		}
		ai := x.attrs[p.Attr]
		if ai == nil {
			continue
		}
		if p.Op == OpEQ {
			k := eqKeyOf(p.Value)
			entries := ai.eq[k]
			for i, e := range entries {
				if e.sub == s && e.cid == cid {
					ai.eq[k] = append(entries[:i], entries[i+1:]...)
					break
				}
			}
			if len(ai.eq[k]) == 0 {
				delete(ai.eq, k)
			}
		} else {
			c, _ := toFloat(p.Value)
			e := boundEntry{c: c, strict: p.Op == OpGT || p.Op == OpLT, sub: s, cid: cid, id: info.id}
			if p.Op == OpGT || p.Op == OpGE {
				ai.lower.Delete(e)
			} else {
				ai.upper.Delete(e)
			}
		}
		if ai.empty() {
			delete(x.attrs, p.Attr)
		}
	}
}

// Match returns every subscription whose indexed conjuncts are all
// satisfied by the tuple, plus every residual subscription, sorted for
// determinism. The boundary trees make each probe O(log n + hits) per
// attribute instead of O(subscriptions).
func (x *Index) Match(tuple map[string]any) []Sub {
	x.mu.RLock()
	defer x.mu.RUnlock()
	x.probes.Add(1)
	counts := make(map[Sub]int)
	for attr, ai := range x.attrs {
		v, ok := tuple[attr]
		if !ok || v == nil {
			continue
		}
		if f, isNum := toFloat(v); isNum {
			// Lower bounds: prefix of ascending (c, non-strict-first) order.
			ai.lower.InOrder(func(e boundEntry) bool {
				if e.c > f || (e.c == f && e.strict) {
					return false
				}
				counts[e.sub]++
				return true
			})
			// Upper bounds: prefix of descending (c, non-strict-first) order.
			ai.upper.InOrder(func(e boundEntry) bool {
				if e.c < f || (e.c == f && e.strict) {
					return false
				}
				counts[e.sub]++
				return true
			})
			for _, e := range ai.eq[eqKey{num: f}] {
				counts[e.sub]++
			}
		} else if s, isStr := v.(string); isStr {
			for _, e := range ai.eq[eqKey{str: s, isStr: true}] {
				counts[e.sub]++
			}
		}
	}
	out := make([]Sub, 0, len(counts)+len(x.residual))
	for sub, n := range counts {
		if n == x.subs[sub].indexed {
			out = append(out, sub)
		}
	}
	x.hits.Add(int64(len(out)))
	for sub := range x.residual {
		out = append(out, sub)
	}
	x.resHits.Add(int64(len(x.residual)))
	sort.Slice(out, func(i, j int) bool { return subLess(out[i], out[j]) })
	return out
}

// BruteMatch evaluates every subscription's full predicate list linearly —
// the O(subscriptions) baseline Match must agree with. A subscription
// matches when all its indexable predicates evaluate true; non-indexable
// predicates are skipped, exactly as the index skips them.
func (x *Index) BruteMatch(tuple map[string]any) []Sub {
	x.mu.RLock()
	defer x.mu.RUnlock()
	var out []Sub
	for sub, info := range x.subs {
		ok := true
		for _, p := range info.preds {
			if !p.indexable() {
				continue
			}
			if !p.Eval(tuple[p.Attr]) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, sub)
		}
	}
	sort.Slice(out, func(i, j int) bool { return subLess(out[i], out[j]) })
	return out
}

// Stats is a point-in-time snapshot of routing activity.
type Stats struct {
	// Subs and Residual are the current subscription counts.
	Subs     int
	Residual int
	// Probes is how many tuples were routed; Hits and ResidualHits split
	// the resulting deliveries into index-qualified and
	// residual-by-construction.
	Probes       int64
	Hits         int64
	ResidualHits int64
}

// Stats returns current routing counters.
func (x *Index) Stats() Stats {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return Stats{
		Subs:         len(x.subs),
		Residual:     len(x.residual),
		Probes:       x.probes.Load(),
		Hits:         x.hits.Load(),
		ResidualHits: x.resHits.Load(),
	}
}

func eqKeyOf(v any) eqKey {
	if s, ok := v.(string); ok {
		return eqKey{str: s, isStr: true}
	}
	f, _ := toFloat(v)
	return eqKey{num: f}
}

// toFloat widens any numeric value to float64.
func toFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case float32:
		return float64(n), true
	case int:
		return float64(n), true
	case int32:
		return float64(n), true
	case int64:
		return float64(n), true
	default:
		return 0, false
	}
}
