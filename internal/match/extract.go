package match

import (
	"aorta/internal/sqlparse"
)

// Extract pulls the indexable conjuncts anchored on one table out of a
// WHERE clause. owns reports whether a column reference resolves to that
// table (the caller knows the query's alias bindings; the index does not).
//
// The clause is decomposed at top-level ANDs only: inside an OR or NOT the
// truth of one comparison no longer implies anything about the whole
// clause, so those subtrees contribute nothing. Each AND conjunct of the
// form <column> <op> <literal> (either side order) with an owned column
// and a literal of the right type becomes a Predicate; everything else —
// boolean function calls, column-to-column comparisons, != — is left for
// the full WHERE evaluation downstream.
//
// The returned predicates are conservative by construction: a tuple that
// fails one of them cannot satisfy the full WHERE clause, because the
// conjunct appears un-negated on every path through the AND tree.
func Extract(where sqlparse.Expr, owns func(ref *sqlparse.ColumnRef) bool) []Predicate {
	var out []Predicate
	var walk func(e sqlparse.Expr)
	walk = func(e sqlparse.Expr) {
		switch ex := e.(type) {
		case *sqlparse.Logic:
			if ex.Op == "AND" {
				walk(ex.Left)
				walk(ex.Right)
			}
		case *sqlparse.Compare:
			if p, ok := fromCompare(ex, owns); ok {
				out = append(out, p)
			}
		}
	}
	walk(where)
	return out
}

// fromCompare converts one comparison conjunct into a predicate when it
// anchors an owned column against a literal.
func fromCompare(c *sqlparse.Compare, owns func(ref *sqlparse.ColumnRef) bool) (Predicate, bool) {
	ref, okRef := c.Left.(*sqlparse.ColumnRef)
	lit, okLit := c.Right.(*sqlparse.Literal)
	op := c.Op
	if !okRef || !okLit {
		// Try the flipped orientation: literal OP column.
		ref, okRef = c.Right.(*sqlparse.ColumnRef)
		lit, okLit = c.Left.(*sqlparse.Literal)
		if !okRef || !okLit {
			return Predicate{}, false
		}
		op = flipOp(op)
	}
	if op == "" || !owns(ref) {
		return Predicate{}, false
	}
	p := Predicate{Attr: ref.Column, Op: op, Value: lit.Value}
	if !p.indexable() {
		return Predicate{}, false
	}
	return p, true
}

// flipOp mirrors an operator across its operands: 5 < x becomes x > 5.
// Unsupported operators map to "".
func flipOp(op string) string {
	switch op {
	case OpEQ:
		return OpEQ
	case OpLT:
		return OpGT
	case OpLE:
		return OpGE
	case OpGT:
		return OpLT
	case OpGE:
		return OpLE
	default:
		return ""
	}
}
