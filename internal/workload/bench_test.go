package workload

import (
	"math/rand"
	"testing"

	"aorta/internal/sched"
)

// TestDeterministicGivenSeed: the full scheduling pipeline is
// reproducible for every algorithm.
func TestDeterministicGivenSeed(t *testing.T) {
	algs := []sched.Algorithm{
		sched.LERFASRFE{}, sched.SRFAE{}, sched.LS{}, &sched.SA{}, sched.Random{},
	}
	for _, alg := range algs {
		res1 := mustRun(t, alg, 99)
		res2 := mustRun(t, alg, 99)
		if res1.Makespan != res2.Makespan || res1.Evals != res2.Evals {
			t.Errorf("%s: same seed gave %v/%d then %v/%d",
				alg.Name(), res1.Makespan, res1.Evals, res2.Makespan, res2.Evals)
		}
	}
}

// TestSAMoreEvalsThanGreedy quantifies the Figure 5 trade-off at the
// evaluation-count level.
func TestSAMoreEvalsThanGreedy(t *testing.T) {
	greedy := mustRun(t, sched.SRFAE{}, 5)
	sa := mustRun(t, &sched.SA{}, 5)
	if sa.Evals < 50*greedy.Evals {
		t.Errorf("SA evals (%d) not dominating greedy evals (%d)", sa.Evals, greedy.Evals)
	}
}

func mustRun(t *testing.T, alg sched.Algorithm, seed int64) *sched.Result {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p := Uniform(15, 5, rng)
	res, err := sched.Run(alg, p, rng, sched.DefaultAccounting())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Wall-clock scheduling cost per algorithm on the paper's n=20, m=10
// uniform workload.
func BenchmarkLERFASRFE20x10(b *testing.B) { benchAlgorithm(b, sched.LERFASRFE{}) }
func BenchmarkSRFAE20x10(b *testing.B)     { benchAlgorithm(b, sched.SRFAE{}) }
func BenchmarkLS20x10(b *testing.B)        { benchAlgorithm(b, sched.LS{}) }
func BenchmarkSA20x10(b *testing.B)        { benchAlgorithm(b, &sched.SA{}) }
func BenchmarkRandom20x10(b *testing.B)    { benchAlgorithm(b, sched.Random{}) }

func benchAlgorithm(b *testing.B, alg sched.Algorithm) {
	r := rand.New(rand.NewSource(1))
	p := Uniform(20, 10, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alg.Schedule(p, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulate20x10(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	p := Uniform(20, 10, r)
	a, err := sched.SRFAE{}.Schedule(p, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sched.Simulate(p, a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUniformGeneration(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		Uniform(20, 10, r)
	}
}
