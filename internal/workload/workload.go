// Package workload generates the synthetic action workloads of the
// paper's §6.3 simulation studies.
//
// A workload is a scheduling problem over simulated AXIS-2130 cameras:
// every request is a photo() action aimed at a random PTZ target, every
// camera starts at a random head position, and the sequence-dependent cost
// of a request on a camera is head-movement time plus the fixed photo
// overhead — landing in the paper's [0.36 s, 5.36 s] interval.
//
// Uniform workloads make every camera a candidate for every request;
// skewed workloads restrict half the requests to a random camera subset
// whose relative size is the skewness (paper §6.3, Figure 6).
package workload

import (
	"fmt"
	"math/rand"

	"aorta/internal/geo"
	"aorta/internal/sched"
)

// randOrientation draws a uniformly random PTZ head position.
func randOrientation(rng *rand.Rand) geo.Orientation {
	return geo.Orientation{
		Pan:  rng.Float64()*340 - 170,
		Tilt: rng.Float64() * 90,
		Zoom: 1 + rng.Float64()*3,
	}
}

// CameraIDs returns m device IDs named camera-1..camera-m.
func CameraIDs(m int) []sched.DeviceID {
	out := make([]sched.DeviceID, m)
	for i := range out {
		out[i] = sched.DeviceID(fmt.Sprintf("camera-%d", i+1))
	}
	return out
}

// Uniform builds a uniform workload: n photo() requests, m cameras, every
// camera a candidate for every request.
func Uniform(n, m int, rng *rand.Rand) *sched.Problem {
	devs := CameraIDs(m)
	initial := make(map[sched.DeviceID]sched.Status, m)
	for _, d := range devs {
		initial[d] = randOrientation(rng)
	}
	reqs := make([]*sched.Request, n)
	for i := range reqs {
		reqs[i] = &sched.Request{
			ID:         i + 1,
			QueryID:    i + 1,
			Action:     "photo",
			Target:     randOrientation(rng),
			Candidates: append([]sched.DeviceID(nil), devs...),
		}
	}
	return sched.NewProblem(reqs, devs, initial, &sched.PTZEstimator{})
}

// Skewed builds a skewed workload: half of the n requests keep all m
// cameras as candidates; the other half are each restricted to a random
// subset of ⌈skew·m⌉ cameras. skew must be in (0, 1].
func Skewed(n, m int, skew float64, rng *rand.Rand) (*sched.Problem, error) {
	if skew <= 0 || skew > 1 {
		return nil, fmt.Errorf("workload: skewness %v outside (0, 1]", skew)
	}
	p := Uniform(n, m, rng)
	subsetSize := int(skew*float64(m) + 0.5)
	if subsetSize < 1 {
		subsetSize = 1
	}
	for i, r := range p.Requests {
		if i%2 == 0 {
			continue // half the requests stay unrestricted
		}
		perm := rng.Perm(m)
		subset := make([]sched.DeviceID, subsetSize)
		for j := 0; j < subsetSize; j++ {
			subset[j] = p.Devices[perm[j]]
		}
		r.Candidates = subset
	}
	return p, nil
}

// PeriodicQuery describes one continuous query of the §6.2 empirical
// study: every Period, take a photo of the target location.
type PeriodicQuery struct {
	QueryID int
	// Target is the mote location to photograph.
	Target geo.Point
}

// Monitoring builds the §6.2 empirical workload description: one periodic
// photo query per mote location. The engine-level experiment harness
// turns these into live action-embedded queries.
func Monitoring(locations []geo.Point) []PeriodicQuery {
	out := make([]PeriodicQuery, len(locations))
	for i, loc := range locations {
		out[i] = PeriodicQuery{QueryID: i + 1, Target: loc}
	}
	return out
}
