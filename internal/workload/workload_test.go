package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"aorta/internal/geo"
	"aorta/internal/sched"
)

func TestCameraIDs(t *testing.T) {
	ids := CameraIDs(3)
	if len(ids) != 3 || ids[0] != "camera-1" || ids[2] != "camera-3" {
		t.Fatalf("ids = %v", ids)
	}
}

func TestUniformWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := Uniform(20, 10, rng)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Requests) != 20 || len(p.Devices) != 10 {
		t.Fatalf("sizes = %d, %d", len(p.Requests), len(p.Devices))
	}
	for _, r := range p.Requests {
		if len(r.Candidates) != 10 {
			t.Errorf("request %d has %d candidates, want all 10", r.ID, len(r.Candidates))
		}
		o, ok := r.Target.(geo.Orientation)
		if !ok {
			t.Fatalf("request %d target type %T", r.ID, r.Target)
		}
		if o.Pan < -170 || o.Pan > 170 || o.Tilt < 0 || o.Tilt > 90 || o.Zoom < 1 || o.Zoom > 4 {
			t.Errorf("target out of PTZ envelope: %+v", o)
		}
	}
	for _, d := range p.Devices {
		if _, ok := p.Initial[d].(geo.Orientation); !ok {
			t.Errorf("device %s has no initial head position", d)
		}
	}
}

// TestUniformCostEnvelope: every (request, device) weight lies in the
// paper's [0.36, 5.36] second interval.
func TestUniformCostEnvelope(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := Uniform(30, 10, rng)
	lo := 360 * time.Millisecond
	hi := 5360 * time.Millisecond
	for _, r := range p.Requests {
		for _, d := range r.Candidates {
			cost, _ := p.Estimate(r, d, p.Initial[d])
			if cost < lo || cost > hi {
				t.Fatalf("cost(%d, %s) = %v outside [%v, %v]", r.ID, d, cost, lo, hi)
			}
		}
	}
}

func TestSkewedValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, bad := range []float64{0, -0.5, 1.5} {
		if _, err := Skewed(20, 10, bad, rng); err == nil {
			t.Errorf("Skewed accepted skewness %v", bad)
		}
	}
}

func TestSkewedStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p, err := Skewed(20, 10, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	full, restricted := 0, 0
	for _, r := range p.Requests {
		switch len(r.Candidates) {
		case 10:
			full++
		case 2: // ⌈0.2·10⌉
			restricted++
		default:
			t.Errorf("request %d has %d candidates", r.ID, len(r.Candidates))
		}
	}
	if full != 10 || restricted != 10 {
		t.Errorf("full=%d restricted=%d, want 10/10", full, restricted)
	}
}

func TestSkewedSubsetSizeRounding(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p, err := Skewed(10, 10, 0.34, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range p.Requests {
		if n := len(r.Candidates); n != 10 && n != 3 {
			t.Errorf("candidates = %d, want 10 or 3", n)
		}
	}
}

func TestSkewedMinimumOneCandidate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p, err := Skewed(8, 3, 0.01, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range p.Requests {
		if len(r.Candidates) < 1 {
			t.Fatal("request with empty candidate set")
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	p1 := Uniform(10, 5, rand.New(rand.NewSource(42)))
	p2 := Uniform(10, 5, rand.New(rand.NewSource(42)))
	for i := range p1.Requests {
		t1 := p1.Requests[i].Target.(geo.Orientation)
		t2 := p2.Requests[i].Target.(geo.Orientation)
		if t1 != t2 {
			t.Fatalf("request %d differs across same-seed generations", i)
		}
	}
}

func TestMonitoring(t *testing.T) {
	locs := []geo.Point{{X: 1}, {X: 2}, {X: 3}}
	qs := Monitoring(locs)
	if len(qs) != 3 {
		t.Fatalf("queries = %d", len(qs))
	}
	for i, q := range qs {
		if q.QueryID != i+1 || q.Target != locs[i] {
			t.Errorf("query %d = %+v", i, q)
		}
	}
}

// TestQuickAllAlgorithmsValidOnRandomWorkloads is the cross-package
// property test: every algorithm produces a valid schedule on arbitrary
// uniform and skewed workloads.
func TestQuickAllAlgorithmsValidOnRandomWorkloads(t *testing.T) {
	algs := []sched.Algorithm{sched.LERFASRFE{}, sched.SRFAE{}, sched.LS{}, sched.Random{}}
	f := func(seed int64, nRaw, mRaw uint8, skewRaw uint8) bool {
		n := int(nRaw%25) + 1
		m := int(mRaw%8) + 1
		rng := rand.New(rand.NewSource(seed))
		var p *sched.Problem
		if skewRaw%2 == 0 {
			p = Uniform(n, m, rng)
		} else {
			skew := 0.1 + float64(skewRaw%9)/10
			var err error
			p, err = Skewed(n, m, skew, rng)
			if err != nil {
				return false
			}
		}
		for _, alg := range algs {
			a, err := alg.Schedule(p, rng)
			if err != nil {
				return false
			}
			if err := a.Validate(p); err != nil {
				return false
			}
			if _, _, err := sched.Simulate(p, a); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickHeuristicsNeverBeatOptimal: on tiny instances the exact solver
// lower-bounds every heuristic.
func TestQuickHeuristicsNeverBeatOptimal(t *testing.T) {
	algs := []sched.Algorithm{sched.LERFASRFE{}, sched.SRFAE{}, sched.LS{}, sched.Random{}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Uniform(5, 3, rng)
		optA, err := (&sched.Optimal{}).Schedule(p, rng)
		if err != nil {
			return false
		}
		_, opt, err := sched.Simulate(p, optA)
		if err != nil {
			return false
		}
		for _, alg := range algs {
			a, err := alg.Schedule(p, rng)
			if err != nil {
				return false
			}
			_, span, err := sched.Simulate(p, a)
			if err != nil {
				return false
			}
			if span < opt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
