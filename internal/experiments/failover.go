package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"aorta/internal/core"
	"aorta/internal/lab"
	"aorta/internal/netsim"
)

// FailoverConfig controls the failure-aware execution study: the §6.2
// empirical setup (photo queries on the two-camera lab) with transient
// dial failures injected on the camera links, run once with failover
// disabled (MaxAttempts 1, the paper's one-shot execution) and once with
// candidate failover enabled.
type FailoverConfig struct {
	// Minutes is the virtual duration of each run.
	Minutes int
	// Queries is the number of photo queries, one per mote.
	Queries int
	// Cameras is the camera count. The default two-camera lab places
	// every mote inside both view envelopes, so each request has two
	// candidates and failover always has somewhere to go.
	Cameras int
	// ClockScale speeds up the runs.
	ClockScale float64
	// DialFailProb is the per-dial failure probability on camera links —
	// the transient unreachability the retry machinery absorbs.
	DialFailProb float64
	// MaxAttempts is the attempt budget of the failover run.
	MaxAttempts int
	// Seed drives fault randomness.
	Seed int64
}

// DefaultFailoverConfig sizes the study so the binomial noise on the
// failure-rate reduction stays well under the effect size.
func DefaultFailoverConfig() FailoverConfig {
	return FailoverConfig{
		Minutes:      20,
		Queries:      10,
		Cameras:      2,
		ClockScale:   150,
		DialFailProb: 0.2,
		MaxAttempts:  core.DefaultMaxAttempts,
		Seed:         2005,
	}
}

// FailoverRun is the outcome of one run of the study.
type FailoverRun struct {
	// MaxAttempts is the per-request attempt budget of this run.
	MaxAttempts int
	Requests    int64
	Successes   int64
	FailureRate float64
	Failures    map[core.FailureKind]int64
	// Retries is the number of failover re-dispatches performed.
	Retries int64
	// Outcomes is the number of recorded outcomes; the no-lost-outcome
	// guarantee makes it equal Requests.
	Outcomes int64
}

// FailoverStudy measures what candidate failover buys under transient
// device unreachability. Probing is disabled and the transport pool is
// bypassed so every action execution dials its camera fresh, exposing it
// to DialFailProb — the post-probe failure window that probing (paper §4)
// cannot cover. Without failover a dial failure is a lost action; with it
// the request is re-scheduled on the surviving camera, so only requests
// whose every candidate fails are lost (≈ DialFailProb² with two
// cameras, a >50% failure-rate reduction at any DialFailProb < 1).
func FailoverStudy(cfg FailoverConfig) (without, with *FailoverRun, err error) {
	without, err = runFailover(cfg, 1)
	if err != nil {
		return nil, nil, err
	}
	maxAttempts := cfg.MaxAttempts
	if maxAttempts <= 1 {
		maxAttempts = core.DefaultMaxAttempts
	}
	with, err = runFailover(cfg, maxAttempts)
	if err != nil {
		return nil, nil, err
	}
	return without, with, nil
}

func runFailover(cfg FailoverConfig, maxAttempts int) (*FailoverRun, error) {
	ecfg := core.Config{
		MaxAttempts: maxAttempts,
		// Probing covers pre-scheduling failures; this study isolates the
		// post-probe window, so every injected fault lands at execute time.
		DisableProbing: true,
		// Bypass the transport pool: each photo action dials its camera
		// fresh and samples DialFailProb. (Camera scans read only static
		// attributes and never dial.)
		PoolMaxSessions: -1,
		// No dial-failure cache: dials stay independent trials, keeping
		// the run's statistics clean.
		DialBackoff: -1,
		// Same reason for the failure detector and breaker: injected dial
		// failures are Bernoulli trials, not device death, and must not
		// trigger gating that would correlate later attempts.
		DisableLiveness:  true,
		BreakerThreshold: -1,
		// Same rationale as the sync study: at high clock scales the
		// default batch window is below goroutine-scheduling jitter.
		BatchWindow: 2 * time.Second,
	}

	l, err := lab.New(lab.Config{
		Cameras:    cfg.Cameras,
		Motes:      cfg.Queries,
		ClockScale: cfg.ClockScale,
		Seed:       cfg.Seed,
		CameraLink: netsim.LinkConfig{DialFailProb: cfg.DialFailProb},
		Engine:     ecfg,
	})
	if err != nil {
		return nil, err
	}
	defer l.Close()

	ctx := context.Background()
	if err := l.Engine.Start(ctx); err != nil {
		return nil, err
	}
	for i := 1; i <= cfg.Queries; i++ {
		sql := fmt.Sprintf(`CREATE AQ fail%d AS
			SELECT photo(c.ip, s.loc, "photos/failover")
			FROM sensor s, camera c
			WHERE s.accel_x > 500 AND s.id = "mote-%d" AND coverage(c.id, s.loc)
			EVERY "60s"`, i, i)
		if _, err := l.Engine.Exec(ctx, sql); err != nil {
			return nil, err
		}
	}
	total := time.Duration(cfg.Minutes)*time.Minute + 2*time.Minute
	for i := 0; i < cfg.Queries; i++ {
		l.StimulateMote(i, 900, total)
	}

	wall := time.Duration(float64(time.Duration(cfg.Minutes)*time.Minute+30*time.Second) / cfg.ClockScale)
	time.Sleep(wall)
	expected := int64(cfg.Queries * (cfg.Minutes - 1))
	deadline := time.Now().Add(5 * wall)
	for time.Now().Before(deadline) && l.Engine.Metrics().Requests < expected {
		time.Sleep(wall / 10)
	}
	l.Engine.Stop()

	m := l.Engine.Metrics()
	return &FailoverRun{
		MaxAttempts: maxAttempts,
		Requests:    m.Requests,
		Successes:   m.Successes,
		FailureRate: m.FailureRate,
		Failures:    m.Failures,
		Retries:     m.Retries,
		Outcomes:    int64(len(l.Engine.Outcomes())),
	}, nil
}

// PrintFailoverStudy renders the comparison.
func PrintFailoverStudy(w io.Writer, without, with *FailoverRun) {
	fmt.Fprintln(w, "Failure-aware execution — transient camera faults, 2-camera lab")
	fmt.Fprintf(w, "%-26s%10s%10s%12s%9s  %s\n", "Configuration", "Requests", "Failed", "FailRate", "Retries", "Breakdown")
	for _, r := range []*FailoverRun{without, with} {
		name := "failover off (1 attempt)"
		if r.MaxAttempts > 1 {
			name = fmt.Sprintf("failover on (%d attempts)", r.MaxAttempts)
		}
		failed := r.Requests - r.Successes
		fmt.Fprintf(w, "%-26s%10d%10d%11.0f%%%9d  %v\n",
			name, r.Requests, failed, r.FailureRate*100, r.Retries, formatFailures(r.Failures))
	}
	if without.FailureRate > 0 {
		fmt.Fprintf(w, "failure-rate reduction: %.0f%%\n",
			(1-with.FailureRate/without.FailureRate)*100)
	}
}
