package experiments

import (
	"strings"
	"testing"
)

// TestChurnStudy kills and revives cameras mid-workload and checks the
// failure detector's contract: faults are detected and re-admitted, no
// request loses its outcome, Down devices leave the schedule promptly,
// and the success rate beats the detector-off baseline.
func TestChurnStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("virtual-minutes experiment")
	}
	cfg := DefaultChurnConfig()
	cfg.Minutes = 12
	if raceEnabled {
		cfg.ClockScale = 25
		cfg.Minutes = 8
	}
	baseline, withDetector, err := ChurnStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	minReqs := int64(cfg.Queries * (cfg.Minutes - 2))
	if baseline.Requests < minReqs || withDetector.Requests < minReqs {
		t.Fatalf("runs under-delivered: baseline=%d with=%d, want ≥%d",
			baseline.Requests, withDetector.Requests, minReqs)
	}

	// No lost outcomes under churn: every request the metrics counted is
	// in the log, in both runs.
	if baseline.Outcomes != baseline.Requests {
		t.Errorf("baseline run: %d outcomes for %d requests", baseline.Outcomes, baseline.Requests)
	}
	if withDetector.Outcomes != withDetector.Requests {
		t.Errorf("detector run: %d outcomes for %d requests", withDetector.Outcomes, withDetector.Requests)
	}

	if baseline.FailureRate == 0 {
		t.Fatal("churn produced no baseline failures; study is vacuous")
	}
	if len(withDetector.Detections) != 2 {
		t.Fatalf("detections = %d, want 2 (one per killed camera)", len(withDetector.Detections))
	}
	for _, d := range withDetector.Detections {
		if !d.Detected {
			t.Errorf("%s: kill never detected", d.Device)
			continue
		}
		if !d.Readmitted {
			t.Errorf("%s: revival never re-admitted", d.Device)
		}
		// Re-admission rides the active prober; Down devices are probed
		// every third cycle, so the bound is 3 probe intervals plus one
		// for in-flight jitter.
		if d.Readmitted && d.ReadmitLatency > 4*cfg.ProbeInterval {
			t.Errorf("%s: readmit latency %v, want ≤ %v", d.Device, d.ReadmitLatency, 4*cfg.ProbeInterval)
		}
	}
	if withDetector.SchedulingViolations != 0 {
		t.Errorf("post-detection scheduling violations = %d, want 0", withDetector.SchedulingViolations)
	}
	if withDetector.FailureRate >= baseline.FailureRate {
		t.Errorf("detector did not improve the failure rate: %.1f%% → %.1f%%",
			baseline.FailureRate*100, withDetector.FailureRate*100)
	}
	if withDetector.DoomedDispatches >= baseline.DoomedDispatches {
		t.Errorf("doomed dispatches not reduced: %d → %d",
			baseline.DoomedDispatches, withDetector.DoomedDispatches)
	}

	var sb strings.Builder
	PrintChurnStudy(&sb, baseline, withDetector)
	for _, want := range []string{"detector on", "detected in", "readmitted in", "reduction"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("table missing %q:\n%s", want, sb.String())
		}
	}
}
