package experiments

import (
	"strings"
	"testing"

	"aorta/internal/core"
)

// TestFailoverStudy checks what candidate failover buys under transient
// camera unreachability: with two candidate cameras and per-dial failure
// probability p, one-shot execution loses ≈p of the actions while
// failover loses only ≈p² — a reduction of 1−p, far above 50%.
func TestFailoverStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("virtual-minutes experiment")
	}
	cfg := DefaultFailoverConfig()
	cfg.Minutes = 12
	if raceEnabled {
		// The race detector slows execution ~10-20x; keep the virtual
		// workload deliverable at the cost of wider binomial noise.
		cfg.ClockScale = 25
		cfg.Minutes = 8
	}
	without, with, err := FailoverStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	minReqs := int64(cfg.Queries * (cfg.Minutes - 2))
	if without.Requests < minReqs || with.Requests < minReqs {
		t.Fatalf("runs under-delivered: without=%d with=%d, want ≥%d",
			without.Requests, with.Requests, minReqs)
	}

	// No lost outcomes: every request the metrics counted is in the log.
	if without.Outcomes != without.Requests {
		t.Errorf("failover-off run: %d outcomes for %d requests", without.Outcomes, without.Requests)
	}
	if with.Outcomes != with.Requests {
		t.Errorf("failover-on run: %d outcomes for %d requests", with.Outcomes, with.Requests)
	}

	if without.FailureRate == 0 {
		t.Fatal("fault injection produced no failures; study is vacuous")
	}
	if with.Retries == 0 {
		t.Error("failover run performed no retries; faults never reached the retry machinery")
	}
	reduction := 1 - with.FailureRate/without.FailureRate
	if reduction < 0.5 {
		t.Errorf("failover reduced the failure rate by only %.0f%% (%.1f%% → %.1f%%), want ≥50%%",
			reduction*100, without.FailureRate*100, with.FailureRate*100)
	}
	// The surviving failures of the failover run are the ones whose every
	// candidate failed — the retry-aware taxonomy marks them.
	if with.Requests-with.Successes > 0 && with.Failures[core.FailRetried] == 0 {
		t.Logf("failover run failures: %v (no FailRetried — all terminal-by-kind)", with.Failures)
	}

	var sb strings.Builder
	PrintFailoverStudy(&sb, without, with)
	if !strings.Contains(sb.String(), "failover on") || !strings.Contains(sb.String(), "reduction") {
		t.Errorf("table missing rows:\n%s", sb.String())
	}
}
