// Package experiments regenerates every table and figure of the paper's
// evaluation (§6). Each experiment returns structured rows and can print
// a paper-style table; cmd/aortabench exposes them on the command line and
// the repository-root benchmarks run them under go test -bench.
//
// Experiment index (see DESIGN.md §4 for the full mapping):
//
//   - Fig4: makespan vs number of requests, uniform workload;
//   - Fig5: scheduling/service time breakdown at 20 requests;
//   - Fig6: makespan vs workload skewness;
//   - Ratio: the §6.3 observation that uniform-workload performance
//     depends only on #requests/#devices;
//   - CostModel: the §2.3 claim that the cost model is accurate;
//   - OptimalGap: the §5.2 discussion of optimal-vs-heuristic cost;
//   - SyncStudy (sync.go): the §6.2 device-synchronization study.
package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"aorta/internal/sched"
	"aorta/internal/stats"
	"aorta/internal/workload"
)

// Config controls the scheduler experiments.
type Config struct {
	// Runs is the number of independent runs averaged per point (the
	// paper used 10).
	Runs int
	// Cameras is the device count m (the paper used 10).
	Cameras int
	// Seed makes runs reproducible.
	Seed int64
	// Accounting converts probes/evaluations into scheduling time.
	Accounting sched.Accounting
}

// DefaultConfig mirrors the paper's setup.
func DefaultConfig() Config {
	return Config{Runs: 10, Cameras: 10, Seed: 2005, Accounting: sched.DefaultAccounting()}
}

// Algorithms returns the five algorithms in the paper's presentation
// order.
func Algorithms() []sched.Algorithm {
	return []sched.Algorithm{
		sched.LERFASRFE{},
		sched.SRFAE{},
		sched.LS{},
		&sched.SA{},
		sched.Random{},
	}
}

// AlgoStats aggregates one algorithm's results over the independent runs.
type AlgoStats struct {
	Algorithm      string
	Makespan       float64 // mean seconds
	MakespanStd    float64
	SchedulingTime float64 // mean seconds
	ServiceTime    float64 // mean seconds
	Evals          float64 // mean cost-model evaluations
}

// measure runs one algorithm over `runs` independently generated problems.
func measure(alg sched.Algorithm, gen func(rng *rand.Rand) *sched.Problem, cfg Config) (AlgoStats, error) {
	var makespans, scheds, services []float64
	var evals float64
	for run := 0; run < cfg.Runs; run++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(run)*7919))
		p := gen(rng)
		res, err := sched.Run(alg, p, rng, cfg.Accounting)
		if err != nil {
			return AlgoStats{}, fmt.Errorf("experiments: %s run %d: %w", alg.Name(), run, err)
		}
		makespans = append(makespans, res.Makespan.Seconds())
		scheds = append(scheds, res.SchedulingTime.Seconds())
		services = append(services, res.ServiceTime.Seconds())
		evals += float64(res.Evals)
	}
	return AlgoStats{
		Algorithm:      alg.Name(),
		Makespan:       stats.Mean(makespans),
		MakespanStd:    stats.StdDev(makespans),
		SchedulingTime: stats.Mean(scheds),
		ServiceTime:    stats.Mean(services),
		Evals:          evals / float64(cfg.Runs),
	}, nil
}

// Fig4Point is one x-axis position of Figure 4.
type Fig4Point struct {
	Requests int
	Algos    []AlgoStats
}

// Fig4 reproduces Figure 4: makespan of the five algorithms under uniform
// workloads of 10, 20 and 30 requests on cfg.Cameras cameras.
func Fig4(cfg Config) ([]Fig4Point, error) {
	var out []Fig4Point
	for _, n := range []int{10, 20, 30} {
		point := Fig4Point{Requests: n}
		for _, alg := range Algorithms() {
			st, err := measure(alg, func(rng *rand.Rand) *sched.Problem {
				return workload.Uniform(n, cfg.Cameras, rng)
			}, cfg)
			if err != nil {
				return nil, err
			}
			point.Algos = append(point.Algos, st)
		}
		out = append(out, point)
	}
	return out, nil
}

// Fig5 reproduces Figure 5: the scheduling-time/service-time breakdown of
// the five algorithms at 20 requests.
func Fig5(cfg Config) ([]AlgoStats, error) {
	var out []AlgoStats
	for _, alg := range Algorithms() {
		st, err := measure(alg, func(rng *rand.Rand) *sched.Problem {
			return workload.Uniform(20, cfg.Cameras, rng)
		}, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

// Fig6Point is one skewness position of Figure 6.
type Fig6Point struct {
	Skew  float64
	Algos []AlgoStats
}

// Fig6 reproduces Figure 6: makespan of the five algorithms with 20
// requests on cfg.Cameras cameras while the workload skewness varies over
// 0.2, 0.3 and 0.4.
func Fig6(cfg Config) ([]Fig6Point, error) {
	var out []Fig6Point
	for _, skew := range []float64{0.2, 0.3, 0.4} {
		point := Fig6Point{Skew: skew}
		for _, alg := range Algorithms() {
			skew := skew
			st, err := measure(alg, func(rng *rand.Rand) *sched.Problem {
				p, err := workload.Skewed(20, cfg.Cameras, skew, rng)
				if err != nil {
					panic(err) // skew values above are always valid
				}
				return p
			}, cfg)
			if err != nil {
				return nil, err
			}
			point.Algos = append(point.Algos, st)
		}
		out = append(out, point)
	}
	return out, nil
}

// RatioPoint is one (n, m) combination of the ratio experiment.
type RatioPoint struct {
	Requests, Cameras int
	Algos             []AlgoStats
}

// Ratio reproduces the §6.3 prose observation: with uniform workloads the
// performance of the four non-RANDOM algorithms depends only on
// #requests/#devices. It sweeps (n, m) pairs sharing the ratio 2.
func Ratio(cfg Config) ([]RatioPoint, error) {
	var out []RatioPoint
	for _, m := range []int{5, 10, 20} {
		n := 2 * m
		point := RatioPoint{Requests: n, Cameras: m}
		for _, alg := range Algorithms() {
			st, err := measure(alg, func(rng *rand.Rand) *sched.Problem {
				return workload.Uniform(n, m, rng)
			}, cfg)
			if err != nil {
				return nil, err
			}
			point.Algos = append(point.Algos, st)
		}
		out = append(out, point)
	}
	return out, nil
}

// GapRow is one instance size of the optimal-gap experiment.
type GapRow struct {
	Requests, Cameras int
	// Optimal is the exact service makespan (seconds).
	Optimal float64
	// Heuristics maps algorithm name → mean service makespan (seconds).
	Heuristics map[string]float64
	// OptimalWall is the exact solver's mean wall-clock time — the
	// paper's point that exact solving is infeasible online.
	OptimalWall time.Duration
}

// OptimalGap quantifies the §5.2 trade-off: the heuristics are near
// optimal while the exact solver's cost explodes with instance size.
func OptimalGap(cfg Config) ([]GapRow, error) {
	heuristics := []sched.Algorithm{sched.LERFASRFE{}, sched.SRFAE{}, sched.LS{}, &sched.SA{}}
	var out []GapRow
	for _, n := range []int{4, 6, 8} {
		const m = 3
		row := GapRow{Requests: n, Cameras: m, Heuristics: make(map[string]float64)}
		var optSpans, wall []float64
		sums := make(map[string]float64)
		for run := 0; run < cfg.Runs; run++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(run)*104729))
			p := workload.Uniform(n, m, rng)

			start := time.Now()
			optA, err := (&sched.Optimal{}).Schedule(p, rng)
			if err != nil {
				return nil, err
			}
			wall = append(wall, time.Since(start).Seconds())
			_, optSpan, err := sched.Simulate(p, optA)
			if err != nil {
				return nil, err
			}
			optSpans = append(optSpans, optSpan.Seconds())

			for _, alg := range heuristics {
				a, err := alg.Schedule(p, rng)
				if err != nil {
					return nil, err
				}
				_, span, err := sched.Simulate(p, a)
				if err != nil {
					return nil, err
				}
				sums[alg.Name()] += span.Seconds()
			}
		}
		row.Optimal = stats.Mean(optSpans)
		row.OptimalWall = time.Duration(stats.Mean(wall) * float64(time.Second))
		for name, sum := range sums {
			row.Heuristics[name] = sum / float64(cfg.Runs)
		}
		out = append(out, row)
	}
	return out, nil
}
