package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"aorta/internal/core"
	"aorta/internal/lab"
	"aorta/internal/netsim"
	"aorta/internal/wal"
)

// ChaosConfig controls the fail-operational chaos study: one engine
// process drives a photo workload on the simulated lab while the study
// injects every fault class the engine claims to contain — a poisoned
// query that panics on evaluation, WAL append/sync faults, camera
// kill/revive churn, and slow camera links. The study asserts the
// fail-operational invariants from the outside: the process never dies,
// the poisoned query is quarantined, degraded mode is entered and
// exited, and the journal closes with no intent left outcome-less.
type ChaosConfig struct {
	// Queries is the number of healthy photo queries, one per mote. A
	// poisoned query rides alongside them.
	Queries int
	// Cameras is the camera count; churn kills and revives them in turn.
	Cameras int
	// ClockScale speeds up virtual time.
	ClockScale float64
	// Seed drives device randomness.
	Seed int64
	// QuarantineAfter is the engine's panic threshold for the poisoned
	// query.
	QuarantineAfter int
	// ChurnRounds is the number of camera kill/revive cycles run under
	// the live workload.
	ChurnRounds int
	// LinkDelay and LinkJitter degrade every camera link (virtual time):
	// the "slow links" fault class, on for the whole study.
	LinkDelay  time.Duration
	LinkJitter time.Duration
	// StaleAfter is the virtual deadline attached to every action intent.
	StaleAfter time.Duration
	// Dir is the journal directory; empty means a fresh temp dir.
	Dir string
}

// DefaultChaosConfig sizes the study per the robustness acceptance bar:
// all fault classes in one process, small enough to run under -race in
// CI.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{
		Queries:         4,
		Cameras:         2,
		ClockScale:      150,
		Seed:            2008,
		QuarantineAfter: 2,
		ChurnRounds:     3,
		LinkDelay:       200 * time.Millisecond,
		LinkJitter:      100 * time.Millisecond,
		StaleAfter:      5 * time.Minute,
	}
}

// ChaosResult aggregates the study's observations and invariant checks.
type ChaosResult struct {
	// PanicsContained is the engine's contained-evaluation-panic count;
	// QuarantinedQueries how many queries were auto-stopped for it.
	PanicsContained    int64
	QuarantinedQueries int64
	// QuarantineReason is the recorded reason on the poisoned query.
	QuarantineReason string
	// StartRefused reports that START AQ on the quarantined query was
	// refused with the typed error.
	StartRefused bool

	// DegradedEntries/DegradedExits count journal-degraded transitions;
	// MutationsRefused counts mutating statements refused with
	// ErrDegraded while the WAL faults were live.
	DegradedEntries  int64
	DegradedExits    int64
	MutationsRefused int
	// StreamedWhileDegraded reports that continuous queries kept
	// evaluating during the degraded window.
	StreamedWhileDegraded bool
	// WalAppendErrors/WalSyncErrors are the journal's failure counters
	// after the study (injected faults included).
	WalAppendErrors int64
	WalSyncErrors   int64

	// Kills/Revives count camera churn events.
	Kills, Revives int
	// Outcomes and Successes count action completions observed across
	// the study; IntentsObserved distinct dedup keys.
	Outcomes        int
	Successes       int
	IntentsObserved int
	// LostOutcomes is the number of journaled intents with no journaled
	// outcome after the clean shutdown. The invariant demands 0.
	LostOutcomes int

	// Violations lists every fail-operational invariant the study saw
	// broken; empty means the engine held its contract under all fault
	// classes at once.
	Violations []string
}

// ChaosStudy runs the mixed-fault workload and audits the
// fail-operational invariants.
func ChaosStudy(cfg ChaosConfig) (*ChaosResult, error) {
	dir := cfg.Dir
	if dir == "" {
		d, err := os.MkdirTemp("", "aorta-chaos-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(d)
		dir = d
	}
	j, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return nil, err
	}
	l, err := lab.New(lab.Config{
		Cameras:    cfg.Cameras,
		Motes:      cfg.Queries,
		ClockScale: cfg.ClockScale,
		Seed:       cfg.Seed,
		// Slow links are on for the entire study.
		CameraLink: netsim.LinkConfig{
			PropagationDelay: cfg.LinkDelay,
			Jitter:           cfg.LinkJitter,
		},
		Engine: core.Config{
			// One attempt and no availability machinery, as in the crash
			// study: chaos isolates containment semantics, not failover.
			MaxAttempts:      1,
			DisableProbing:   true,
			DialBackoff:      -1,
			BreakerThreshold: -1,
			DisableLiveness:  true,
			BatchWindow:      crashRecBatchWindow,
			StaleAfter:       cfg.StaleAfter,
			QuarantineAfter:  cfg.QuarantineAfter,
			Journal:          j,
		},
	})
	if err != nil {
		j.Crash()
		return nil, err
	}
	defer l.Close()
	eng := l.Engine

	res := &ChaosResult{}
	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}

	// The poisoned predicate: every evaluation of the poisoned query
	// panics inside the engine's containment boundary.
	eng.RegisterBoolFunc("chaos_panic", func(args []any) (bool, error) {
		panic("chaos: poisoned predicate")
	})

	// Outcome observer, as in the crash study.
	var (
		obsMu     sync.Mutex
		observed  = map[string]bool{}
		successes int
		outcomes  int
	)
	outcomeCh := eng.SubscribeOutcomes(8192)
	obsDone := make(chan struct{})
	var obsWG sync.WaitGroup
	obsWG.Add(1)
	go func() {
		defer obsWG.Done()
		record := func(o *core.Outcome) {
			key := core.IntentDedupKey(o.Query, o.EventKey, o.Deadline)
			obsMu.Lock()
			observed[key] = true
			outcomes++
			if o.OK() {
				successes++
			}
			obsMu.Unlock()
		}
		for {
			select {
			case o := <-outcomeCh:
				record(o)
			case <-obsDone:
				for {
					select {
					case o := <-outcomeCh:
						record(o)
					default:
						return
					}
				}
			}
		}
	}()

	ctx := context.Background()
	virtualEpoch := 60 * time.Second
	epochWall := time.Duration(float64(virtualEpoch) / cfg.ClockScale)

	if _, err := eng.Recover(ctx); err != nil {
		return nil, fmt.Errorf("recover: %w", err)
	}
	if err := eng.Start(ctx); err != nil {
		return nil, fmt.Errorf("start: %w", err)
	}

	for i := 1; i <= cfg.Queries; i++ {
		sql := fmt.Sprintf(`CREATE AQ chaos%d AS
			SELECT photo(c.ip, s.loc, "photos/chaos")
			FROM sensor s, camera c
			WHERE s.accel_x > 500 AND s.id = "mote-%d" AND coverage(c.id, s.loc)
			EVERY "60s"`, i, i)
		if _, err := eng.Exec(ctx, sql); err != nil {
			return nil, fmt.Errorf("create chaos%d: %w", i, err)
		}
	}
	if _, err := eng.Exec(ctx,
		`CREATE AQ poison AS SELECT s.id FROM sensor s WHERE chaos_panic() EVERY "60s"`); err != nil {
		return nil, fmt.Errorf("create poison: %w", err)
	}

	// Fault class 1: evaluation panics. Wait for the quarantine to fire.
	deadline := time.Now().Add(60*epochWall + 5*time.Second)
	for time.Now().Before(deadline) {
		if info, ok := eng.QueryInfo("poison"); ok && info.Quarantined {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if info, ok := eng.QueryInfo("poison"); ok && info.Quarantined {
		res.QuarantineReason = info.Reason
	} else {
		violate("poisoned query was not quarantined (info=%+v)", info)
	}
	if _, err := eng.Exec(ctx, "START AQ poison"); errors.Is(err, core.ErrQuarantined) {
		res.StartRefused = true
	} else {
		violate("START AQ poison: err=%v, want ErrQuarantined", err)
	}

	// Fault class 2: the disk under the journal fails. Every append and
	// sync errors until cleared; the first mutating statement trips the
	// engine into degraded mode, later ones are refused typed.
	evalsBefore := queryEvals(eng, "chaos1")
	j.InjectFaults(1<<20, 1<<20, nil)
	if _, err := eng.Exec(ctx, "STOP AQ chaos1"); err != nil {
		violate("STOP AQ chaos1 under WAL fault: %v (gate should pass before the append fails)", err)
	}
	if !eng.Degraded() {
		violate("engine not degraded after journal append fault")
	}
	for i := 0; i < 3; i++ {
		if _, err := eng.Exec(ctx, "START AQ chaos1"); errors.Is(err, core.ErrDegraded) {
			res.MutationsRefused++
		}
	}
	if res.MutationsRefused == 0 {
		violate("no mutation refused with ErrDegraded while WAL faults live")
	}
	// Reads and streaming must survive degraded mode.
	if _, err := eng.Exec(ctx, "SHOW QUERIES"); err != nil {
		violate("SHOW QUERIES failed in degraded mode: %v", err)
	}
	streamBy := time.Now().Add(30*epochWall + 5*time.Second)
	for time.Now().Before(streamBy) {
		if queryEvals(eng, "chaos2") > evalsBefore {
			res.StreamedWhileDegraded = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !res.StreamedWhileDegraded {
		violate("continuous queries stopped evaluating in degraded mode")
	}
	// The disk heals: the next mutating statement re-probes, exits
	// degraded mode, and succeeds.
	j.InjectFaults(0, 0, nil)
	if _, err := eng.Exec(ctx, "START AQ chaos1"); err != nil {
		violate("START AQ chaos1 after WAL heal: %v", err)
	}
	if eng.Degraded() {
		violate("engine still degraded after successful journal write")
	}

	// Fault classes 3+4: camera churn under the live workload, over the
	// always-slow links. Outcomes must keep landing and every journaled
	// intent must close.
	stimDur := time.Duration(cfg.ChurnRounds+4) * 20 * virtualEpoch
	for i := 0; i < cfg.Queries; i++ {
		l.StimulateMote(i, 900, stimDur)
	}
	for round := 0; round < cfg.ChurnRounds; round++ {
		id := fmt.Sprintf("camera-%d", round%cfg.Cameras+1)
		l.Kill(id)
		res.Kills++
		time.Sleep(2 * epochWall)
		l.Revive(id)
		res.Revives++
		time.Sleep(2 * epochWall)
	}
	successBy := time.Now().Add(40*epochWall + 5*time.Second)
	for time.Now().Before(successBy) {
		obsMu.Lock()
		n := successes
		obsMu.Unlock()
		if n >= cfg.Queries {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Stop the queries first so no fresh epoch can mint an intent behind
	// the quiesce check, then drain and shut down cleanly.
	for i := 1; i <= cfg.Queries; i++ {
		if _, err := eng.Exec(ctx, fmt.Sprintf("STOP AQ chaos%d", i)); err != nil {
			violate("STOP AQ chaos%d at shutdown: %v", i, err)
		}
	}
	quiesceBy := time.Now().Add(40*epochWall + 10*time.Second)
	for time.Now().Before(quiesceBy) {
		if eng.JournalPending() == 0 && eng.InFlight() == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	m := eng.Metrics()
	res.PanicsContained = m.EvalPanics
	res.QuarantinedQueries = m.QuarantinedQueries
	res.DegradedEntries = m.DegradedEntries
	res.DegradedExits = m.DegradedExits
	if ws, ok := eng.JournalStats(); ok {
		res.WalAppendErrors = ws.AppendErrors
		res.WalSyncErrors = ws.SyncErrors
	}
	if res.PanicsContained < int64(cfg.QuarantineAfter) {
		violate("contained panics = %d, want >= %d", res.PanicsContained, cfg.QuarantineAfter)
	}
	if res.QuarantinedQueries < 1 {
		violate("quarantined queries = %d, want >= 1", res.QuarantinedQueries)
	}
	if res.DegradedEntries < 1 || res.DegradedExits < 1 {
		violate("degraded entries/exits = %d/%d, want >= 1 each",
			res.DegradedEntries, res.DegradedExits)
	}

	eng.Stop()
	if err := j.Close(); err != nil {
		return nil, fmt.Errorf("close journal: %w", err)
	}
	close(obsDone)
	obsWG.Wait()
	obsMu.Lock()
	res.Outcomes = outcomes
	res.Successes = successes
	res.IntentsObserved = len(observed)
	obsMu.Unlock()
	if res.Successes < cfg.Queries {
		violate("successes = %d, want >= %d (one per healthy query)", res.Successes, cfg.Queries)
	}

	// Post-mortem: replay the journal and count intents with no outcome.
	pm, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return nil, fmt.Errorf("post-mortem open: %w", err)
	}
	defer pm.Close()
	pending := map[string]bool{}
	err = pm.Replay(func(rec wal.Record) error {
		switch rec.Kind {
		case wal.KindSnapshot:
			var snap wal.Snapshot
			if err := rec.Decode(&snap); err != nil {
				return err
			}
			pending = map[string]bool{}
			for _, ir := range snap.Pending {
				pending[ir.DedupKey] = true
			}
		case wal.KindIntent:
			var ir wal.IntentRecord
			if err := rec.Decode(&ir); err != nil {
				return err
			}
			pending[ir.DedupKey] = true
		case wal.KindOutcome:
			var or wal.OutcomeRecord
			if err := rec.Decode(&or); err != nil {
				return err
			}
			delete(pending, or.DedupKey)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("post-mortem replay: %w", err)
	}
	res.LostOutcomes = len(pending)
	if res.LostOutcomes != 0 {
		violate("lost outcomes = %d, want 0", res.LostOutcomes)
	}
	return res, nil
}

// queryEvals reads a query's evaluation counter, 0 if unknown.
func queryEvals(eng *core.Engine, name string) int64 {
	if info, ok := eng.QueryInfo(name); ok {
		return info.Evals
	}
	return 0
}

// PrintChaosStudy renders the fault classes, observations, and the
// invariant verdicts.
func PrintChaosStudy(w io.Writer, cfg ChaosConfig, res *ChaosResult) {
	fmt.Fprintf(w, "Chaos — %d photo queries + 1 poisoned, %d cameras, links +%v±%v, %d churn rounds, one process\n",
		cfg.Queries, cfg.Cameras, cfg.LinkDelay, cfg.LinkJitter, cfg.ChurnRounds)
	fmt.Fprintf(w, "panic containment:  %d panics contained, %d query quarantined (reason: %s), START refused: %v\n",
		res.PanicsContained, res.QuarantinedQueries, res.QuarantineReason, res.StartRefused)
	fmt.Fprintf(w, "journal faults:     degraded entered %d / exited %d, %d mutations refused typed, streamed while degraded: %v\n",
		res.DegradedEntries, res.DegradedExits, res.MutationsRefused, res.StreamedWhileDegraded)
	fmt.Fprintf(w, "                    wal append errors %d, sync errors %d\n",
		res.WalAppendErrors, res.WalSyncErrors)
	fmt.Fprintf(w, "device churn:       %d kills, %d revives\n", res.Kills, res.Revives)
	fmt.Fprintf(w, "workload:           %d outcomes (%d ok) over %d intents, lost outcomes: %d (want 0)\n",
		res.Outcomes, res.Successes, res.IntentsObserved, res.LostOutcomes)
	if len(res.Violations) == 0 {
		fmt.Fprintf(w, "invariants:         all held (process alive, quarantine fired, degraded entered+exited, no lost outcomes)\n")
		return
	}
	fmt.Fprintf(w, "invariants VIOLATED (%d):\n", len(res.Violations))
	for _, v := range res.Violations {
		fmt.Fprintf(w, "  - %s\n", v)
	}
}
