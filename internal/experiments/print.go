package experiments

import (
	"fmt"
	"io"
)

// PrintFig4 renders the Figure 4 series as a paper-style table.
func PrintFig4(w io.Writer, points []Fig4Point) {
	fmt.Fprintln(w, "Figure 4 — Makespan vs #requests (uniform workload, 10 cameras, seconds)")
	fmt.Fprintf(w, "%-12s", "#Requests")
	for _, st := range points[0].Algos {
		fmt.Fprintf(w, "%12s", st.Algorithm)
	}
	fmt.Fprintln(w)
	for _, pt := range points {
		fmt.Fprintf(w, "%-12d", pt.Requests)
		for _, st := range pt.Algos {
			fmt.Fprintf(w, "%12.2f", st.Makespan)
		}
		fmt.Fprintln(w)
	}
}

// PrintFig5 renders the Figure 5 time breakdown.
func PrintFig5(w io.Writer, rows []AlgoStats) {
	fmt.Fprintln(w, "Figure 5 — Time breakdown, 20 requests on 10 cameras (seconds)")
	fmt.Fprintf(w, "%-12s%14s%14s%14s%12s\n", "Algorithm", "SchedTime", "ServiceTime", "Makespan", "Evals")
	for _, st := range rows {
		fmt.Fprintf(w, "%-12s%14.2f%14.2f%14.2f%12.0f\n",
			st.Algorithm, st.SchedulingTime, st.ServiceTime, st.Makespan, st.Evals)
	}
}

// PrintFig6 renders the Figure 6 series.
func PrintFig6(w io.Writer, points []Fig6Point) {
	fmt.Fprintln(w, "Figure 6 — Makespan vs workload skewness (20 requests, 10 cameras, seconds)")
	fmt.Fprintf(w, "%-12s", "Skewness")
	for _, st := range points[0].Algos {
		fmt.Fprintf(w, "%12s", st.Algorithm)
	}
	fmt.Fprintln(w)
	for _, pt := range points {
		fmt.Fprintf(w, "%-12.1f", pt.Skew)
		for _, st := range pt.Algos {
			fmt.Fprintf(w, "%12.2f", st.Makespan)
		}
		fmt.Fprintln(w)
	}
}

// PrintRatio renders the requests/devices-ratio experiment.
func PrintRatio(w io.Writer, points []RatioPoint) {
	fmt.Fprintln(w, "§6.3 — Uniform workloads at fixed #requests/#devices = 2 (makespan, seconds)")
	fmt.Fprintf(w, "%-14s", "(n, m)")
	for _, st := range points[0].Algos {
		fmt.Fprintf(w, "%12s", st.Algorithm)
	}
	fmt.Fprintln(w)
	for _, pt := range points {
		fmt.Fprintf(w, "(%3d, %3d)    ", pt.Requests, pt.Cameras)
		for _, st := range pt.Algos {
			fmt.Fprintf(w, "%12.2f", st.Makespan)
		}
		fmt.Fprintln(w)
	}
}

// PrintOptimalGap renders the optimal-gap experiment.
func PrintOptimalGap(w io.Writer, rows []GapRow) {
	fmt.Fprintln(w, "§5.2 — Exact solver vs heuristics (service makespan, seconds)")
	fmt.Fprintf(w, "%-10s%10s%14s%14s%10s%10s%12s\n",
		"(n, m)", "OPT", "LERFA+SRFE", "SRFAE", "LS", "SA", "OPT wall")
	for _, r := range rows {
		fmt.Fprintf(w, "(%2d, %2d)  %10.2f%14.2f%14.2f%10.2f%10.2f%12s\n",
			r.Requests, r.Cameras, r.Optimal,
			r.Heuristics["LERFA+SRFE"], r.Heuristics["SRFAE"],
			r.Heuristics["LS"], r.Heuristics["SA"], r.OptimalWall.Round(1e6))
	}
}

// PrintCostModel renders the cost-model validation summary.
func PrintCostModel(w io.Writer, s *CostModelSummary) {
	fmt.Fprintln(w, "§2.3 — Cost model validation: estimated vs emulator-measured photo() cost")
	fmt.Fprintf(w, "trials=%d  mean relative error=%.1f%%  max=%.1f%%\n",
		len(s.Trials), s.MeanRelError*100, s.MaxRelError*100)
	show := len(s.Trials)
	if show > 5 {
		show = 5
	}
	for _, tr := range s.Trials[:show] {
		fmt.Fprintf(w, "  est=%6.2fs measured=%6.2fs err=%4.1f%%\n",
			tr.Estimated.Seconds(), tr.Measured.Seconds(), tr.RelError*100)
	}
}
