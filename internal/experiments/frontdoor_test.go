package experiments

import (
	"testing"
	"time"
)

// TestFrontdoorStudySmall runs a scaled-down study and checks the
// structural invariants: every statement completes, nothing errors or
// sheds, and pipelining beats serial when round trips dominate service
// time.
func TestFrontdoorStudySmall(t *testing.T) {
	cfg := FrontdoorConfig{
		Clients:    8,
		Statements: 8,
		Window:     4,
		Workers:    16,
		PropDelay:  200 * time.Millisecond,
		Jitter:     50 * time.Millisecond,
		Service:    10 * time.Millisecond,
		ClockScale: 200,
		Seed:       1,
	}
	if raceEnabled {
		cfg.Clients = 4
		cfg.ClockScale = 100
	}
	serial, pipelined, err := FrontdoorStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Clients * cfg.Statements
	for _, r := range []FrontdoorResult{serial, pipelined} {
		if r.Statements != want {
			t.Fatalf("%s completed %d statements, want %d", r.Mode, r.Statements, want)
		}
		if r.Errors != 0 || r.Shed != 0 {
			t.Fatalf("%s errors=%d shed=%d, want 0", r.Mode, r.Errors, r.Shed)
		}
		if r.Throughput <= 0 || r.P50 <= 0 {
			t.Fatalf("%s degenerate measurements: %+v", r.Mode, r)
		}
	}
	// With a 200ms one-way delay and 10ms service, a window of 4 must
	// overlap round trips. Demand a conservative 1.5× here (the full
	// study's acceptance bar is 3×; small configs are noisier).
	if sp := FrontdoorSpeedup(serial, pipelined); sp < 1.5 {
		t.Fatalf("pipelined speedup %.2f×, want >= 1.5×\nserial: %+v\npipelined: %+v",
			sp, serial, pipelined)
	}
	// Serial p50 must be at least one full round trip.
	if serial.P50 < 2*cfg.PropDelay {
		t.Fatalf("serial p50 %v below one round trip (%v)", serial.P50, 2*cfg.PropDelay)
	}
}
