package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"aorta/internal/sched"
	"aorta/internal/stats"
	"aorta/internal/workload"
)

// AblationRow compares one algorithm's service makespan when it plans
// with the full sequence-dependent cost model vs a static (frozen at
// probe time) cost model. Execution always follows the true
// sequence-dependent physics, so the difference isolates the value of
// status chaining in the planner.
type AblationRow struct {
	Algorithm string
	// Chaining is the mean service makespan (s) planning with the
	// sequence-dependent estimator.
	Chaining float64
	// Static is the mean service makespan (s) planning with frozen
	// per-pair costs.
	Static float64
	// Penalty is Static/Chaining.
	Penalty float64
}

// frozenEstimator serves costs computed from each device's *initial*
// status and never advances status — the classic unrelated-machines view
// without sequence dependence.
type frozenEstimator struct {
	inner   sched.Estimator
	initial map[sched.DeviceID]sched.Status
}

var _ sched.Estimator = (*frozenEstimator)(nil)

// Estimate implements sched.Estimator.
func (f *frozenEstimator) Estimate(req *sched.Request, dev sched.DeviceID, st sched.Status) (time.Duration, sched.Status) {
	cost, _ := f.inner.Estimate(req, dev, f.initial[dev])
	return cost, st
}

// AblationSequenceDependence runs the DESIGN.md §3 ablation: the paper's
// §5.1 argument is that sequence-dependent action execution time is the
// problem's defining feature; planning while ignoring it (static costs)
// should cost the cost-aware heuristics much of their edge.
func AblationSequenceDependence(cfg Config) ([]AblationRow, error) {
	algs := []sched.Algorithm{sched.LERFASRFE{}, sched.SRFAE{}, sched.LS{}}
	var out []AblationRow
	for _, alg := range algs {
		var chaining, static []float64
		for run := 0; run < cfg.Runs; run++ {
			seed := cfg.Seed + int64(run)*6151
			// Plan and execute with the true model.
			rng := rand.New(rand.NewSource(seed))
			p := workload.Uniform(20, cfg.Cameras, rng)
			a, err := alg.Schedule(p, rng)
			if err != nil {
				return nil, err
			}
			_, span, err := sched.Simulate(p, a)
			if err != nil {
				return nil, err
			}
			chaining = append(chaining, span.Seconds())

			// Plan with frozen costs on an identical instance, execute
			// with the true model.
			rng2 := rand.New(rand.NewSource(seed))
			p2 := workload.Uniform(20, cfg.Cameras, rng2)
			frozen := sched.NewProblem(p2.Requests, p2.Devices, p2.Initial,
				&frozenEstimator{inner: &sched.PTZEstimator{}, initial: p2.Initial})
			a2, err := alg.Schedule(frozen, rand.New(rand.NewSource(seed)))
			if err != nil {
				return nil, err
			}
			_, span2, err := sched.Simulate(p2, a2)
			if err != nil {
				return nil, err
			}
			static = append(static, span2.Seconds())
		}
		row := AblationRow{
			Algorithm: alg.Name(),
			Chaining:  stats.Mean(chaining),
			Static:    stats.Mean(static),
		}
		if row.Chaining > 0 {
			row.Penalty = row.Static / row.Chaining
		}
		out = append(out, row)
	}
	return out, nil
}

// PrintAblation renders the sequence-dependence ablation.
func PrintAblation(w io.Writer, rows []AblationRow) {
	fmt.Fprintln(w, "Ablation — planning with vs without sequence-dependent costs (service makespan, s)")
	fmt.Fprintf(w, "%-12s%14s%14s%12s\n", "Algorithm", "Chaining", "Static", "Penalty")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s%14.2f%14.2f%11.2fx\n", r.Algorithm, r.Chaining, r.Static, r.Penalty)
	}
}

// ScalePoint is one size of the scalability sweep.
type ScalePoint struct {
	Requests, Cameras int
	// Makespans maps algorithm → mean makespan (s).
	Makespans map[string]float64
	// Wall maps algorithm → mean wall-clock scheduling time. This is the
	// real computational cost on the host, relevant to the paper's
	// future-work question of scheduling "a large number of heterogeneous
	// devices".
	Wall map[string]time.Duration
}

// Scalability sweeps the greedy algorithms (SA excluded: its annealing
// budget is quadratic) up to hundreds of requests and devices.
func Scalability(cfg Config) ([]ScalePoint, error) {
	algs := []sched.Algorithm{sched.LERFASRFE{}, sched.SRFAE{}, sched.LS{}, sched.Random{}}
	sizes := []struct{ n, m int }{{50, 25}, {100, 50}, {200, 100}, {400, 100}}
	var out []ScalePoint
	for _, size := range sizes {
		pt := ScalePoint{
			Requests:  size.n,
			Cameras:   size.m,
			Makespans: make(map[string]float64),
			Wall:      make(map[string]time.Duration),
		}
		for _, alg := range algs {
			var spans []float64
			var wall time.Duration
			for run := 0; run < cfg.Runs; run++ {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(run)*27644437))
				p := workload.Uniform(size.n, size.m, rng)
				start := time.Now()
				a, err := alg.Schedule(p, rng)
				if err != nil {
					return nil, err
				}
				wall += time.Since(start)
				_, span, err := sched.Simulate(p, a)
				if err != nil {
					return nil, err
				}
				spans = append(spans, span.Seconds())
			}
			pt.Makespans[alg.Name()] = stats.Mean(spans)
			pt.Wall[alg.Name()] = wall / time.Duration(cfg.Runs)
		}
		out = append(out, pt)
	}
	return out, nil
}

// PrintScalability renders the scalability sweep.
func PrintScalability(w io.Writer, points []ScalePoint) {
	fmt.Fprintln(w, "Scalability — greedy algorithms at large n, m (service makespan s / wall-clock scheduling)")
	fmt.Fprintf(w, "%-14s", "(n, m)")
	names := []string{"LERFA+SRFE", "SRFAE", "LS", "RANDOM"}
	for _, n := range names {
		fmt.Fprintf(w, "%22s", n)
	}
	fmt.Fprintln(w)
	for _, pt := range points {
		fmt.Fprintf(w, "(%4d,%4d)   ", pt.Requests, pt.Cameras)
		for _, n := range names {
			fmt.Fprintf(w, "%12.2fs %7s", pt.Makespans[n], pt.Wall[n].Round(time.Millisecond))
		}
		fmt.Fprintln(w)
	}
}
