package experiments

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"aorta/internal/cluster"
	"aorta/internal/comm"
	"aorta/internal/core"
	"aorta/internal/device"
	"aorta/internal/device/mote"
	"aorta/internal/device/phone"
	"aorta/internal/frontdoor"
	"aorta/internal/geo"
	"aorta/internal/netsim"
	"aorta/internal/profile"
	"aorta/internal/vclock"
	"aorta/internal/wal"
)

// ClusterConfig controls the sharded-cluster study. Two phases:
//
// Throughput: for each shard count, the device farm is partitioned by
// the cluster shard map (motes pinned round-robin, so ownership is even
// and the measurement isolates capacity, not hash luck), one continuous
// query per mote is created THROUGH the fan-out router (so id-pruning
// places each query on its mote's owner shard), and a synthetic
// per-evaluation cost plus a bounded per-engine eval-worker pool make
// CQ evaluation the bottleneck. Per-shard capacity is
// EvalWorkers/EvalCost regardless of demand, so aggregate evaluation
// throughput must scale linearly with shard count until demand
// (one evaluation per query per epoch) is met.
//
// Handoff: a journaled 4-shard cluster runs notify-action queries, one
// shard is killed with journaled intents still open (its WAL severed
// without sync, as in the crash study), and the departed shard's
// journal is replayed into handoff sets adopted by the survivors. The
// study audits zero loss from the outside: every victim query must run
// on a survivor, and every outcome-less victim intent must reach a
// journaled outcome in some survivor's WAL.
type ClusterConfig struct {
	// ShardCounts are the cluster sizes the throughput phase sweeps.
	ShardCounts []int
	// Motes is the global device-farm size; queries are one per mote.
	Motes int
	// EvalWorkers bounds concurrent CQ evaluations per engine — the
	// per-shard capacity the cluster multiplies.
	EvalWorkers int
	// EvalCost is the synthetic wall-clock cost the cluster_slow()
	// predicate charges per evaluation epoch, making evaluation CPU the
	// bottleneck resource. (The scan fabric's predicate index already
	// narrows each id-pinned query to one tuple per epoch, so the cost
	// is charged once per evaluation, not per device.)
	EvalCost time.Duration
	// Warmup and Window are the wall-clock settle and measurement
	// durations per shard count.
	Warmup, Window time.Duration
	// ClockScale speeds up virtual time.
	ClockScale float64
	// Seed drives device randomness.
	Seed int64
	// HandoffShards and HandoffMotes size the kill-one-shard phase.
	HandoffShards int
	HandoffMotes  int
	// StaleAfter is the virtual deadline attached to action intents in
	// the handoff phase.
	StaleAfter time.Duration
	// MinScaling is the aggregate throughput factor demanded from the
	// first to the 4-shard point (the acceptance bar: >= 3x).
	MinScaling float64
}

// DefaultClusterConfig sizes the study so both the 1- and 4-shard
// points are eval-capacity-bound: at clock scale 150 an epoch is 0.4s
// of wall clock, so one shard completes at most
// EvalWorkers*0.4s/EvalCost = 5.3 evaluations per virtual minute
// against a demand of 32, and four shards complete ~21.3 — a 4x
// capacity ratio against the 3x acceptance bar.
func DefaultClusterConfig() ClusterConfig {
	return ClusterConfig{
		ShardCounts:   []int{1, 2, 4, 8},
		Motes:         32,
		EvalWorkers:   4,
		EvalCost:      300 * time.Millisecond,
		Warmup:        time.Second,
		Window:        3 * time.Second,
		ClockScale:    150,
		Seed:          2013,
		HandoffShards: 4,
		HandoffMotes:  8,
		StaleAfter:    10 * time.Minute,
		MinScaling:    3,
	}
}

// ClusterPoint is one shard count's throughput measurement.
type ClusterPoint struct {
	Shards int
	// QueriesPerShard is the catalog size per shard after routed CREATEs;
	// the sum must equal Motes (id-pruning placed each query exactly once).
	QueriesPerShard []int
	// PerShard is each shard's CQ evaluation throughput in evaluations
	// per virtual minute (one epoch = 60 virtual seconds, so the
	// unsaturated ideal is 1.0 per query).
	PerShard []float64
	// Aggregate sums PerShard.
	Aggregate float64
}

// ClusterResult aggregates both phases.
type ClusterResult struct {
	Points []ClusterPoint
	// ScalingX is Aggregate at 4 shards over Aggregate at 1 shard (or
	// last over first when the sweep is custom).
	ScalingX float64

	// Handoff phase.
	Victim         string
	VictimMotes    int
	VictimQueries  int
	PendingAtKill  int
	DevicesAdopted int
	QueriesAdopted int
	IntentsAdopted int
	IntentsClosed  int
	// LostOutcomes counts victim intents (journaled, outcome-less at the
	// kill) with no journaled outcome in any survivor WAL; LostQueries
	// counts victim queries running on no survivor. Both must be 0.
	LostOutcomes int
	LostQueries  int

	// Violations lists every broken invariant; empty means the cluster
	// held its contract.
	Violations []string
}

// clusterShard is one engine instance of a study cluster.
type clusterShard struct {
	id      string
	eng     *core.Engine
	journal *wal.Journal
	dir     string
	door    *frontdoor.Door
	doorLis net.Listener
	motes   []string

	// connMu guards the door's accepted connections, tracked so the
	// selfheal study can sever them: closing the listener and the door
	// stops NEW work, but the router's persistent pipelined connection
	// stays up — a kill or partition must cut it explicitly.
	connMu    sync.Mutex
	doorConns []net.Conn
}

// severConns cuts every accepted front-door connection — the
// router-visible part of a crash or partition.
func (s *clusterShard) severConns() {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	for _, c := range s.doorConns {
		c.Close()
	}
	s.doorConns = nil
}

// clusterTrial is one fully wired cluster: a shared simulated network,
// globally named devices partitioned across shard engines, a front door
// per shard, and the fan-out router in front.
type clusterTrial struct {
	clk     *vclock.Scaled
	network *netsim.Network
	smap    *cluster.Map
	shards  []*clusterShard
	router  *cluster.Router
	servers []*device.Server
	motes   map[string]*mote.Mote

	// Self-heal accounting: what the router's automatic handoff and the
	// DRAIN SHARD path moved, accumulated by the hooks buildClusterTrial
	// wires into a health-enabled router.
	healMu  sync.Mutex
	adopted cluster.AdoptStats
	drains  []cluster.DrainReport
}

func (t *clusterTrial) shard(id string) *clusterShard {
	for _, s := range t.shards {
		if s.id == id {
			return s
		}
	}
	return nil
}

func (t *clusterTrial) close() {
	if t.router != nil {
		t.router.Close()
	}
	for _, s := range t.shards {
		if s.doorLis != nil {
			s.doorLis.Close()
		}
		if s.door != nil {
			s.door.Close()
		}
		if s.eng != nil {
			s.eng.Stop()
		}
		if s.journal != nil {
			s.journal.Close()
		}
		if s.dir != "" {
			os.RemoveAll(s.dir)
		}
	}
	for _, srv := range t.servers {
		srv.Close()
	}
}

// serveDoor (re)starts a shard's front door on the simulated network —
// initial wiring and the flap phase's revival both go through it.
func (t *clusterTrial) serveDoor(ctx context.Context, s *clusterShard) error {
	s.door = frontdoor.New(frontdoor.Config{Clock: vclock.Real{}})
	lis, err := t.network.Listen("fd-" + s.id)
	if err != nil {
		return err
	}
	s.doorLis = lis
	exec := cluster.ShardExec(s.eng, s.door)
	go func(door *frontdoor.Door, lis net.Listener) {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			s.connMu.Lock()
			s.doorConns = append(s.doorConns, conn)
			s.connMu.Unlock()
			go door.Serve(ctx, conn, exec)
		}
	}(s.door, lis)
	return nil
}

// autoHandoff is the HandoffFunc buildClusterTrial wires into a
// health-enabled router: replay the (dead) victim's journal into
// handoff sets and adopt them into the surviving engines — exactly the
// operator sequence of the cluster study's handoff phase, run by the
// router's own auto-retire loop instead.
func (t *clusterTrial) autoHandoff(ctx context.Context, victim string, owner func(deviceID string) string) (cluster.AdoptStats, error) {
	var total cluster.AdoptStats
	s := t.shard(victim)
	if s == nil || s.dir == "" {
		return total, fmt.Errorf("no journal dir for shard %q", victim)
	}
	sets, err := cluster.PlanHandoff(s.dir, owner)
	if err != nil {
		return total, err
	}
	for shard, set := range sets {
		dst := t.shard(shard)
		if dst == nil {
			return total, fmt.Errorf("handoff set for unknown shard %q", shard)
		}
		st, err := cluster.Adopt(ctx, dst.eng, set)
		if err != nil {
			return total, fmt.Errorf("adopt into %s: %w", shard, err)
		}
		total.Devices += st.Devices
		total.Queries += st.Queries
		total.IntentsAdopted += st.IntentsAdopted
		total.IntentsClosed += st.IntentsClosed
	}
	t.healMu.Lock()
	t.adopted.Devices += total.Devices
	t.adopted.Queries += total.Queries
	t.adopted.IntentsAdopted += total.IntentsAdopted
	t.adopted.IntentsClosed += total.IntentsClosed
	t.healMu.Unlock()
	return total, nil
}

// buildClusterTrial wires n shards over one simulated network: motes
// mote-1..mote-nMotes are served once and registered with their owner
// shard; with phones, phone-i is pinned to shard-i so every shard can
// execute notify actions locally. journaled gives each shard its own
// WAL directory (the handoff phase's raw material). A non-nil health
// config arms the router's shard failure detector; its Clock defaults
// to the trial's scaled clock and its Handoff/Drainer hooks (unless
// pre-set) to PlanHandoff+Adopt and EngineDrainer over the trial's
// engines, with what moved accumulated on the trial for the audits.
func buildClusterTrial(cfg ClusterConfig, n, nMotes int, phones, journaled bool, health *cluster.HealthConfig) (*clusterTrial, error) {
	clk := vclock.NewScaled(cfg.ClockScale)
	network := netsim.NewNetwork(clk, cfg.Seed)
	t := &clusterTrial{clk: clk, network: network, motes: map[string]*mote.Mote{}}

	ids := make([]string, n)
	infos := make([]cluster.ShardInfo, n)
	pins := map[string]string{}
	for i := 0; i < n; i++ {
		ids[i] = fmt.Sprintf("shard-%d", i+1)
		infos[i] = cluster.ShardInfo{ID: ids[i], Addr: "fd-" + ids[i]}
		if phones {
			pins[fmt.Sprintf("phone-%d", i+1)] = ids[i]
		}
	}
	// Pin motes round-robin: the study measures capacity scaling, so
	// ownership must be even by construction. Hash-based placement and
	// its stability have their own tests in internal/cluster.
	for k := 1; k <= nMotes; k++ {
		pins[fmt.Sprintf("mote-%d", k)] = ids[(k-1)%n]
	}
	smap, err := cluster.NewMap(ids, pins)
	if err != nil {
		return nil, err
	}
	t.smap = smap

	serve := func(id string, m device.Model) error {
		lis, err := network.Listen(id)
		if err != nil {
			return err
		}
		t.servers = append(t.servers, device.Serve(lis, m))
		return nil
	}
	entries := make([]cluster.DeviceEntry, 0, nMotes+n)
	for k := 1; k <= nMotes; k++ {
		id := fmt.Sprintf("mote-%d", k)
		m := mote.New(id, geo.Point{X: float64(k), Y: 1}, clk, mote.Config{Depth: 1, Seed: cfg.Seed + int64(k)})
		if err := serve(id, m); err != nil {
			t.close()
			return nil, err
		}
		t.motes[id] = m
		entries = append(entries, cluster.DeviceEntry{ID: id, Type: profile.DeviceSensor})
	}
	if phones {
		for i := 1; i <= n; i++ {
			id := fmt.Sprintf("phone-%d", i)
			p := phone.New(id, fmt.Sprintf("+8525550%02d", i), fmt.Sprintf("manager-%d", i), clk)
			if err := serve(id, p); err != nil {
				t.close()
				return nil, err
			}
			entries = append(entries, cluster.DeviceEntry{ID: id, Type: profile.DevicePhone})
		}
	}

	ctx := context.Background()
	for i, id := range ids {
		s := &clusterShard{id: id}
		t.shards = append(t.shards, s)
		ecfg := core.Config{
			Clock:  clk,
			Dialer: network,
			// One attempt and no availability machinery, as in the crash and
			// chaos studies: the cluster phases isolate partitioned-capacity
			// and handoff semantics from failover and probing.
			MaxAttempts:      1,
			DisableProbing:   true,
			DialBackoff:      -1,
			BreakerThreshold: -1,
			DisableLiveness:  true,
			BatchWindow:      crashRecBatchWindow,
			StaleAfter:       cfg.StaleAfter,
			EvalWorkers:      cfg.EvalWorkers,
		}
		if journaled {
			dir, err := os.MkdirTemp("", "aorta-cluster-*")
			if err != nil {
				t.close()
				return nil, err
			}
			s.dir = dir
			j, err := wal.Open(dir, wal.Options{})
			if err != nil {
				t.close()
				return nil, err
			}
			s.journal = j
			ecfg.Journal = j
		}
		eng, err := core.New(ecfg)
		if err != nil {
			t.close()
			return nil, err
		}
		s.eng = eng
		// The synthetic evaluation cost: each delivered tuple charges
		// EvalCost of wall-clock "CPU" inside the eval-worker slot (one
		// tuple per evaluation for the study's id-pinned queries).
		cost := cfg.EvalCost
		eng.RegisterBoolFunc("cluster_slow", func(args []any) (bool, error) {
			time.Sleep(cost)
			return true, nil
		})
		for k := 1; k <= nMotes; k++ {
			mid := fmt.Sprintf("mote-%d", k)
			if smap.Owner(mid) != id {
				continue
			}
			s.motes = append(s.motes, mid)
			if err := eng.RegisterDevice(comm.DeviceInfo{
				ID: mid, Type: profile.DeviceSensor, Addr: mid,
				Static: map[string]any{"loc": geo.Point{X: float64(k), Y: 1}, "depth": 1},
			}, geo.Mount{}); err != nil {
				t.close()
				return nil, err
			}
		}
		if phones {
			pid := fmt.Sprintf("phone-%d", i+1)
			if err := eng.RegisterDevice(comm.DeviceInfo{
				ID: pid, Type: profile.DevicePhone, Addr: pid,
				Static: map[string]any{"number": fmt.Sprintf("+8525550%02d", i+1), "owner": fmt.Sprintf("manager-%d", i+1)},
			}, geo.Mount{}); err != nil {
				t.close()
				return nil, err
			}
		}
		if journaled {
			if _, err := eng.Recover(ctx); err != nil {
				t.close()
				return nil, err
			}
		}
		if err := eng.Start(ctx); err != nil {
			t.close()
			return nil, err
		}
		// The shard's front door: the router speaks the real line protocol
		// to it, exactly as aortad -shard serves it.
		if err := t.serveDoor(ctx, s); err != nil {
			t.close()
			return nil, err
		}
	}

	rcfg := cluster.RouterConfig{Shards: infos, Pins: pins, Dialer: network}
	if health != nil {
		hcfg := *health
		if hcfg.Clock == nil {
			hcfg.Clock = clk
		}
		if hcfg.Handoff == nil {
			hcfg.Handoff = t.autoHandoff
		}
		if hcfg.Drainer == nil {
			base := cluster.EngineDrainer(func(shardID string) *core.Engine {
				if s := t.shard(shardID); s != nil {
					return s.eng
				}
				return nil
			})
			hcfg.Drainer = func(ctx context.Context, victim string, owner func(deviceID string) string) (cluster.DrainReport, error) {
				rep, err := base(ctx, victim, owner)
				if err == nil {
					t.healMu.Lock()
					t.drains = append(t.drains, rep)
					t.healMu.Unlock()
				}
				return rep, err
			}
		}
		rcfg.Health = hcfg
	}
	rt, err := cluster.NewRouter(rcfg)
	if err != nil {
		t.close()
		return nil, err
	}
	rt.SetDevices(entries)
	t.router = rt
	return t, nil
}

// routeStatement runs one statement through the router and fails loudly
// on any non-OK response.
func routeStatement(ctx context.Context, rt *cluster.Router, stmt string) error {
	switch resp := rt.Exec(ctx, "", stmt).(type) {
	case *cluster.Response:
		if !resp.OK {
			return fmt.Errorf("route %q: %s (%s)", stmt, resp.Error, resp.Code)
		}
		return nil
	case *frontdoor.ErrorResponse:
		return fmt.Errorf("route %q: %s", stmt, resp.Error)
	default:
		return fmt.Errorf("route %q: unexpected response %T", stmt, resp)
	}
}

// shardEvals sums evaluation counters over a shard's catalog.
func shardEvals(eng *core.Engine) (int64, int, error) {
	res, err := eng.Exec(context.Background(), "SHOW QUERIES")
	if err != nil {
		return 0, 0, err
	}
	var total int64
	for _, q := range res.Queries {
		total += q.Evals
	}
	return total, len(res.Queries), nil
}

// ClusterStudy runs the throughput sweep and the kill-one-shard handoff,
// auditing the scaling bar and the zero-loss contract.
func ClusterStudy(cfg ClusterConfig) (*ClusterResult, error) {
	res := &ClusterResult{}
	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}
	ctx := context.Background()

	// Phase 1: throughput sweep.
	for _, n := range cfg.ShardCounts {
		t, err := buildClusterTrial(cfg, n, cfg.Motes, false, false, nil)
		if err != nil {
			return nil, fmt.Errorf("cluster trial %d shards: %w", n, err)
		}
		for k := 1; k <= cfg.Motes; k++ {
			stmt := fmt.Sprintf(
				`CREATE AQ cq%d AS SELECT m.accel_x FROM sensor m WHERE cluster_slow() AND m.id = "mote-%d" EVERY "60s"`, k, k)
			if err := routeStatement(ctx, t.router, stmt); err != nil {
				t.close()
				return nil, err
			}
		}
		point := ClusterPoint{Shards: n}
		placed := 0
		for _, s := range t.shards {
			_, count, err := shardEvals(s.eng)
			if err != nil {
				t.close()
				return nil, err
			}
			point.QueriesPerShard = append(point.QueriesPerShard, count)
			placed += count
		}
		if placed != cfg.Motes {
			violate("%d shards: %d queries placed for %d motes (id-pruning must place each exactly once)", n, placed, cfg.Motes)
		}
		time.Sleep(cfg.Warmup)
		before := make([]int64, len(t.shards))
		for i, s := range t.shards {
			if before[i], _, err = shardEvals(s.eng); err != nil {
				t.close()
				return nil, err
			}
		}
		time.Sleep(cfg.Window)
		// Evaluations per virtual minute: one 60s-epoch per query is 1.0.
		vminutes := cfg.Window.Seconds() * cfg.ClockScale / 60
		for i, s := range t.shards {
			after, _, err := shardEvals(s.eng)
			if err != nil {
				t.close()
				return nil, err
			}
			tput := float64(after-before[i]) / vminutes
			point.PerShard = append(point.PerShard, tput)
			point.Aggregate += tput
		}
		res.Points = append(res.Points, point)
		t.close()
	}
	if len(res.Points) > 1 {
		first, at4 := res.Points[0].Aggregate, res.Points[len(res.Points)-1].Aggregate
		for _, p := range res.Points {
			if p.Shards == 4 {
				at4 = p.Aggregate
			}
		}
		if first > 0 {
			res.ScalingX = at4 / first
		}
		if res.ScalingX < cfg.MinScaling {
			violate("aggregate throughput scaled %.2fx from %d to 4 shards, want >= %.1fx",
				res.ScalingX, res.Points[0].Shards, cfg.MinScaling)
		}
	}

	// Phase 2: kill-one-shard handoff.
	if err := clusterHandoffPhase(ctx, cfg, res, violate); err != nil {
		return nil, err
	}
	return res, nil
}

// clusterHandoffPhase kills the busiest shard of a journaled cluster
// mid-workload and audits the handoff's zero-loss contract.
func clusterHandoffPhase(ctx context.Context, cfg ClusterConfig, res *ClusterResult, violate func(string, ...any)) error {
	t, err := buildClusterTrial(cfg, cfg.HandoffShards, cfg.HandoffMotes, true, true, nil)
	if err != nil {
		return fmt.Errorf("cluster handoff trial: %w", err)
	}
	defer t.close()

	virtualEpoch := 60 * time.Second
	epochWall := time.Duration(float64(virtualEpoch) / cfg.ClockScale)

	for k := 1; k <= cfg.HandoffMotes; k++ {
		stmt := fmt.Sprintf(
			`CREATE AQ alert%d AS SELECT notify(p.number, "shard alert %d") FROM sensor m, phone p WHERE m.accel_x > 500 AND m.id = "mote-%d" EVERY "60s"`, k, k, k)
		if err := routeStatement(ctx, t.router, stmt); err != nil {
			return err
		}
	}

	// Victim: the shard owning the most motes, so the handoff moves real
	// state. Slowing its phone's link holds outcomes open long enough for
	// the kill to land with journaled, outcome-less intents.
	var victim *clusterShard
	for _, s := range t.shards {
		if victim == nil || len(s.motes) > len(victim.motes) {
			victim = s
		}
	}
	res.Victim = victim.id
	res.VictimMotes = len(victim.motes)
	victimPhone := ""
	for i, s := range t.shards {
		if s == victim {
			victimPhone = fmt.Sprintf("phone-%d", i+1)
		}
	}
	t.network.SetLink(victimPhone, netsim.LinkConfig{PropagationDelay: 2 * virtualEpoch})

	stimDur := 60 * virtualEpoch
	for _, mid := range victim.motes {
		t.motes[mid].Stimulate("x", 900, stimDur)
	}

	killBy := time.Now().Add(30*epochWall + 5*time.Second)
	for time.Now().Before(killBy) {
		if n := victim.eng.JournalPending(); n > 0 {
			res.PendingAtKill = n
			break
		}
		time.Sleep(time.Millisecond)
	}
	if res.PendingAtKill == 0 {
		violate("victim was never caught with journaled pending intents; the kill is vacuous")
	}

	// The kill: sever the WAL without sync, stop the engine, close its
	// front door, retire it from the router.
	victim.journal.Crash()
	victim.eng.Stop()
	victim.doorLis.Close()
	victim.door.Close()
	if err := t.router.Retire(victim.id); err != nil {
		return fmt.Errorf("retire %s: %w", victim.id, err)
	}
	// The phone's slow link served its purpose; heal it so adopted
	// intents complete promptly on the survivors.
	t.network.SetLink(victimPhone, netsim.LinkConfig{})

	var survivorIDs []string
	survivors := map[string]*clusterShard{}
	for _, s := range t.shards {
		if s != victim {
			survivorIDs = append(survivorIDs, s.id)
			survivors[s.id] = s
		}
	}
	smap2, err := t.smap.WithShards(survivorIDs)
	if err != nil {
		return err
	}
	sets, err := cluster.PlanHandoff(victim.dir, smap2.Owner)
	if err != nil {
		return fmt.Errorf("plan handoff: %w", err)
	}

	victimPending := map[string]bool{}
	victimQueries := map[string]bool{}
	for _, set := range sets {
		for _, ir := range set.Intents {
			victimPending[ir.DedupKey] = true
		}
		for _, sq := range set.Queries {
			victimQueries[sq.Name] = true
		}
	}
	res.VictimQueries = len(victimQueries)

	for shard, set := range sets {
		s := survivors[shard]
		if s == nil {
			return fmt.Errorf("handoff set for unknown shard %s", shard)
		}
		st, err := cluster.Adopt(ctx, s.eng, set)
		if err != nil {
			return fmt.Errorf("adopt into %s: %w", shard, err)
		}
		res.DevicesAdopted += st.Devices
		res.QueriesAdopted += st.Queries
		res.IntentsAdopted += st.IntentsAdopted
		res.IntentsClosed += st.IntentsClosed
	}
	if res.IntentsAdopted+res.IntentsClosed == 0 && res.PendingAtKill > 0 {
		violate("pending intents at kill (%d) but none adopted or closed", res.PendingAtKill)
	}

	// Every victim query must now run on at least one survivor.
	for name := range victimQueries {
		found := false
		for _, s := range survivors {
			if _, ok := s.eng.QueryInfo(name); ok {
				found = true
				break
			}
		}
		if !found {
			res.LostQueries++
		}
	}
	if res.LostQueries > 0 {
		violate("lost queries = %d, want 0", res.LostQueries)
	}

	// Quiesce the survivors, shut them down cleanly, then audit their
	// journals: every transplanted intent must have a journaled outcome.
	quiesceBy := time.Now().Add(60*epochWall + 10*time.Second)
	for time.Now().Before(quiesceBy) {
		idle := true
		for _, s := range survivors {
			if s.eng.JournalPending() != 0 || s.eng.InFlight() != 0 {
				idle = false
				break
			}
		}
		if idle {
			break
		}
		time.Sleep(time.Millisecond)
	}
	outcomes := map[string]bool{}
	for _, s := range survivors {
		s.eng.Stop()
		if err := s.journal.Close(); err != nil {
			return fmt.Errorf("close %s journal: %w", s.id, err)
		}
		pm, err := wal.Open(s.dir, wal.Options{})
		if err != nil {
			return fmt.Errorf("post-mortem open %s: %w", s.id, err)
		}
		err = pm.Replay(func(rec wal.Record) error {
			if rec.Kind != wal.KindOutcome {
				return nil
			}
			var or wal.OutcomeRecord
			if err := rec.Decode(&or); err != nil {
				return err
			}
			outcomes[or.DedupKey] = true
			return nil
		})
		pm.Close()
		if err != nil {
			return fmt.Errorf("post-mortem replay %s: %w", s.id, err)
		}
	}
	lost := make([]string, 0)
	for key := range victimPending {
		if !outcomes[key] {
			lost = append(lost, key)
		}
	}
	sort.Strings(lost)
	res.LostOutcomes = len(lost)
	if res.LostOutcomes > 0 {
		violate("lost outcomes = %d, want 0 (first: %s)", res.LostOutcomes, lost[0])
	}
	return nil
}

// PrintClusterStudy renders the scaling table and the handoff audit.
func PrintClusterStudy(w io.Writer, cfg ClusterConfig, res *ClusterResult) {
	fmt.Fprintf(w, "Cluster — %d motes, 1 CQ each, %d eval workers/shard, %v/eval cost (epoch 60s virtual)\n",
		cfg.Motes, cfg.EvalWorkers, cfg.EvalCost)
	fmt.Fprintf(w, "%-8s%10s%14s  %s\n", "Shards", "Queries", "Aggregate", "Per-shard evals/vmin")
	for _, p := range res.Points {
		per := make([]string, len(p.PerShard))
		for i, v := range p.PerShard {
			per[i] = fmt.Sprintf("%.1f", v)
		}
		fmt.Fprintf(w, "%-8d%10d%14.1f  %v\n", p.Shards, sum(p.QueriesPerShard), p.Aggregate, per)
	}
	fmt.Fprintf(w, "scaling 1→4 shards: %.2fx (want >= %.1fx)\n", res.ScalingX, cfg.MinScaling)
	fmt.Fprintf(w, "handoff: killed %s (%d motes, %d queries, %d pending intents) → adopted %d devices, %d queries, %d intents (%d closed)\n",
		res.Victim, res.VictimMotes, res.VictimQueries, res.PendingAtKill,
		res.DevicesAdopted, res.QueriesAdopted, res.IntentsAdopted, res.IntentsClosed)
	fmt.Fprintf(w, "lost outcomes: %d (want 0), lost queries: %d (want 0)\n", res.LostOutcomes, res.LostQueries)
	if len(res.Violations) == 0 {
		fmt.Fprintf(w, "invariants: all held (pruned placement, >= %.1fx scaling, zero-loss handoff)\n", cfg.MinScaling)
		return
	}
	fmt.Fprintf(w, "invariants VIOLATED (%d):\n", len(res.Violations))
	for _, v := range res.Violations {
		fmt.Fprintf(w, "  - %s\n", v)
	}
}

func sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
