package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestLatencyShape(t *testing.T) {
	cfg := LatencyConfig{ArrivalsPerSec: 2, Duration: 2 * time.Minute, Seed: 2005}
	rows, err := Latency(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]LatencyRow{}
	for _, r := range rows {
		byName[r.Algorithm] = r
		if r.Requests < 100 {
			t.Errorf("%s processed only %d requests", r.Algorithm, r.Requests)
		}
		if r.P50 <= 0 || r.P95 < r.P50 || r.Max < r.P95 {
			t.Errorf("%s latency quantiles inconsistent: %+v", r.Algorithm, r)
		}
	}
	// The cost-aware heuristics must deliver lower tail latency than
	// RANDOM under the same load.
	for _, name := range []string{"LERFA+SRFE", "SRFAE"} {
		if byName[name].P95 >= byName["RANDOM"].P95 {
			t.Errorf("%s P95 (%.2f) not better than RANDOM (%.2f)",
				name, byName[name].P95, byName["RANDOM"].P95)
		}
	}

	var sb strings.Builder
	PrintLatency(&sb, cfg, rows)
	if !strings.Contains(sb.String(), "P95") {
		t.Errorf("table missing header:\n%s", sb.String())
	}
}

func TestLatencyDeterministic(t *testing.T) {
	cfg := LatencyConfig{ArrivalsPerSec: 1, Duration: time.Minute, Seed: 7}
	r1, err := Latency(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Latency(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Errorf("run differs: %+v vs %+v", r1[i], r2[i])
		}
	}
}

func TestLatencyHigherLoadHigherLatency(t *testing.T) {
	low, err := Latency(LatencyConfig{ArrivalsPerSec: 1, Duration: 2 * time.Minute, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	high, err := Latency(LatencyConfig{ArrivalsPerSec: 4, Duration: 2 * time.Minute, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range low {
		if high[i].P95 < low[i].P95 {
			t.Errorf("%s: P95 fell from %.2f to %.2f as load quadrupled",
				low[i].Algorithm, low[i].P95, high[i].P95)
		}
	}
}
