package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"aorta/internal/core"
	"aorta/internal/lab"
	"aorta/internal/liveness"
)

// ChurnConfig controls the device-churn study: photo queries on the
// two-camera lab while cameras are killed and revived mid-workload, run
// once with the failure detector disabled (the ablation baseline) and
// once with it on, so the detector's contribution — fast detection,
// Down-device exclusion, automatic re-expansion — is measured directly.
type ChurnConfig struct {
	// Minutes is the virtual duration of each run.
	Minutes int
	// Queries is the number of photo queries, one per mote.
	Queries int
	// Cameras is the camera count; the default two-camera lab puts every
	// mote inside both view envelopes, so one camera can die and the
	// other still covers everything.
	Cameras int
	// ClockScale speeds up the runs.
	ClockScale float64
	// ProbeInterval is the active health-probe interval of the
	// with-detector run.
	ProbeInterval time.Duration
	// Seed drives device randomness.
	Seed int64
}

// DefaultChurnConfig sizes the study so each outage spans several query
// epochs: enough doomed dispatches for the baseline failure rate to be
// far above its binomial noise.
func DefaultChurnConfig() ChurnConfig {
	return ChurnConfig{
		Minutes:       20,
		Queries:       8,
		Cameras:       2,
		ClockScale:    150,
		ProbeInterval: 2 * time.Second,
		Seed:          2005,
	}
}

// churnFault is one kill/revive pair, as fractions of the run length.
type churnFault struct {
	device string
	killAt float64
	backAt float64
	// virtual clock times recorded when the fault was injected.
	killedAt  time.Time
	revivedAt time.Time
}

// ChurnDetection is the detector's measured reaction to one fault.
type ChurnDetection struct {
	Device string
	// Detected reports whether a Down transition followed the kill;
	// DetectLatency is kill → Down on the virtual clock.
	Detected      bool
	DetectLatency time.Duration
	// Readmitted reports whether an Up transition followed the revival;
	// ReadmitLatency is revive → Up.
	Readmitted     bool
	ReadmitLatency time.Duration
}

// ChurnRun is the outcome of one run of the study.
type ChurnRun struct {
	// Liveness reports whether the failure detector was enabled.
	Liveness    bool
	Requests    int64
	Successes   int64
	FailureRate float64
	Failures    map[core.FailureKind]int64
	// Outcomes is the recorded outcome count; the no-lost-outcome
	// guarantee makes it equal Requests even while devices die mid-batch.
	Outcomes int64
	// DoomedDispatches counts requests that were dispatched to a device
	// and failed at the transport (connect/timeout) — the wasted work the
	// detector's scheduling filter exists to remove.
	DoomedDispatches int64
	// DialFailures is the transport layer's failed-dial counter (includes
	// the active prober's dials in the with-detector run).
	DialFailures int64
	// Detections holds per-fault detector reactions (with-detector run
	// only).
	Detections []ChurnDetection
	// SchedulingViolations counts outcomes executed on a device between
	// its Down transition (plus one batch window of in-flight slack) and
	// its revival — scheduled work that ignored the detector. Expect 0.
	SchedulingViolations int
}

// churnBatchWindow matches the sync/failover studies: at high clock
// scales the default batch window is below goroutine-scheduling jitter.
const churnBatchWindow = 2 * time.Second

// ChurnStudy kills and revives cameras mid-workload and measures what
// the failure detector buys. Probing is disabled and the attempt budget
// is 1, so neither pre-dispatch probing nor failover masks the detector's
// contribution: without it, every request scheduled onto a dead camera is
// a lost action; with it, the dead camera leaves the candidate set within
// a few failures and every request lands on the survivor.
func ChurnStudy(cfg ChurnConfig) (baseline, withDetector *ChurnRun, err error) {
	baseline, err = runChurn(cfg, false)
	if err != nil {
		return nil, nil, err
	}
	withDetector, err = runChurn(cfg, true)
	if err != nil {
		return nil, nil, err
	}
	return baseline, withDetector, nil
}

func runChurn(cfg ChurnConfig, withDetector bool) (*ChurnRun, error) {
	ecfg := core.Config{
		// One attempt: failover would absorb the very failures under study.
		MaxAttempts: 1,
		// No pre-dispatch probing: the detector is the only availability
		// filter, so the comparison isolates it.
		DisableProbing: true,
		// No dial-failure cache and no breaker: they overlap the detector's
		// gating, and the ablation must change exactly one variable.
		DialBackoff:      -1,
		BreakerThreshold: -1,
		BatchWindow:      churnBatchWindow,
		DisableLiveness:  !withDetector,
	}
	if withDetector {
		ecfg.LivenessProbeInterval = cfg.ProbeInterval
	}

	l, err := lab.New(lab.Config{
		Cameras:    cfg.Cameras,
		Motes:      cfg.Queries,
		ClockScale: cfg.ClockScale,
		Seed:       cfg.Seed,
		Engine:     ecfg,
	})
	if err != nil {
		return nil, err
	}
	defer l.Close()

	// Stamp every outcome with its arrival time on the virtual clock, so
	// post-detection scheduling violations are checkable afterwards.
	type stamped struct {
		device string
		at     time.Time
	}
	var stampMu sync.Mutex
	var stamps []stamped
	outcomeCh := l.Engine.SubscribeOutcomes(8192)
	stampDone := make(chan struct{})
	var stampWG sync.WaitGroup
	stampWG.Add(1)
	go func() {
		defer stampWG.Done()
		record := func(o *core.Outcome) {
			stampMu.Lock()
			stamps = append(stamps, stamped{o.DeviceID, l.Clock.Now()})
			stampMu.Unlock()
		}
		for {
			select {
			case o := <-outcomeCh:
				record(o)
			case <-stampDone:
				for { // the hub never closes subscriber channels: drain and go
					select {
					case o := <-outcomeCh:
						record(o)
					default:
						return
					}
				}
			}
		}
	}()

	ctx := context.Background()
	if err := l.Engine.Start(ctx); err != nil {
		return nil, err
	}
	for i := 1; i <= cfg.Queries; i++ {
		sql := fmt.Sprintf(`CREATE AQ churn%d AS
			SELECT photo(c.ip, s.loc, "photos/churn")
			FROM sensor s, camera c
			WHERE s.accel_x > 500 AND s.id = "mote-%d" AND coverage(c.id, s.loc)
			EVERY "60s"`, i, i)
		if _, err := l.Engine.Exec(ctx, sql); err != nil {
			return nil, err
		}
	}
	total := time.Duration(cfg.Minutes)*time.Minute + 2*time.Minute
	for i := 0; i < cfg.Queries; i++ {
		l.StimulateMote(i, 900, total)
	}

	// The churn schedule: camera-1 dies at 25% and rejoins at 50%;
	// camera-2 dies at 60% and rejoins at 80%. One camera is always up.
	faults := []*churnFault{
		{device: "camera-1", killAt: 0.25, backAt: 0.50},
		{device: "camera-2", killAt: 0.60, backAt: 0.80},
	}
	virtual := time.Duration(cfg.Minutes) * time.Minute
	wallOf := func(frac float64) time.Duration {
		return time.Duration(frac * float64(virtual) / cfg.ClockScale)
	}
	type churnStep struct {
		frac float64
		f    *churnFault
		kill bool
	}
	var steps []churnStep
	for _, f := range faults {
		steps = append(steps, churnStep{f.killAt, f, true}, churnStep{f.backAt, f, false})
	}
	sort.Slice(steps, func(i, j int) bool { return steps[i].frac < steps[j].frac })

	start := time.Now()
	sleepUntil := func(frac float64) {
		if d := wallOf(frac) - time.Since(start); d > 0 {
			time.Sleep(d)
		}
	}
	for _, st := range steps {
		sleepUntil(st.frac)
		if st.kill {
			st.f.killedAt = l.Clock.Now()
			l.Kill(st.f.device)
		} else {
			st.f.revivedAt = l.Clock.Now()
			l.Revive(st.f.device)
		}
	}

	wall := time.Duration(float64(virtual+30*time.Second) / cfg.ClockScale)
	sleepUntil(1.0)
	time.Sleep(wall / 4)
	expected := int64(cfg.Queries * (cfg.Minutes - 1))
	deadline := time.Now().Add(5 * wall)
	for time.Now().Before(deadline) && l.Engine.Metrics().Requests < expected {
		time.Sleep(wall / 10)
	}

	var events []liveness.Event
	if det := l.Engine.Liveness(); det != nil {
		events = det.Events()
	}
	l.Engine.Stop()
	close(stampDone)
	stampWG.Wait()

	m := l.Engine.Metrics()
	run := &ChurnRun{
		Liveness:         withDetector,
		Requests:         m.Requests,
		Successes:        m.Successes,
		FailureRate:      m.FailureRate,
		Failures:         m.Failures,
		Outcomes:         int64(len(l.Engine.Outcomes())),
		DoomedDispatches: m.Failures[core.FailConnect] + m.Failures[core.FailRetried],
		DialFailures:     l.Engine.CommMetrics().DialFailures,
	}
	if !withDetector {
		return run, nil
	}

	firstTransition := func(device string, to liveness.State, after time.Time) (time.Time, bool) {
		for _, ev := range events {
			if ev.Device == device && ev.To == to && !ev.At.Before(after) {
				return ev.At, true
			}
		}
		return time.Time{}, false
	}
	for _, f := range faults {
		det := ChurnDetection{Device: f.device}
		if at, ok := firstTransition(f.device, liveness.Down, f.killedAt); ok {
			det.Detected = true
			det.DetectLatency = at.Sub(f.killedAt)
			// Scheduling violations: outcomes executed on the device after
			// detection (plus one batch window for in-flight requests) and
			// before its revival.
			cutoff := at.Add(2 * churnBatchWindow)
			stampMu.Lock()
			for _, s := range stamps {
				if s.device == f.device && s.at.After(cutoff) && s.at.Before(f.revivedAt) {
					run.SchedulingViolations++
				}
			}
			stampMu.Unlock()
		}
		if at, ok := firstTransition(f.device, liveness.Up, f.revivedAt); ok {
			det.Readmitted = true
			det.ReadmitLatency = at.Sub(f.revivedAt)
		}
		run.Detections = append(run.Detections, det)
	}
	return run, nil
}

// PrintChurnStudy renders the comparison.
func PrintChurnStudy(w io.Writer, baseline, withDetector *ChurnRun) {
	fmt.Fprintln(w, "Device churn — cameras killed/revived mid-workload, 2-camera lab")
	fmt.Fprintf(w, "%-22s%10s%10s%12s%10s%10s  %s\n",
		"Configuration", "Requests", "Failed", "FailRate", "Doomed", "Outcomes", "Breakdown")
	for _, r := range []*ChurnRun{baseline, withDetector} {
		name := "detector off"
		if r.Liveness {
			name = "detector on"
		}
		failed := r.Requests - r.Successes
		fmt.Fprintf(w, "%-22s%10d%10d%11.0f%%%10d%10d  %v\n",
			name, r.Requests, failed, r.FailureRate*100, r.DoomedDispatches,
			r.Outcomes, formatFailures(r.Failures))
	}
	for _, d := range withDetector.Detections {
		detect, readmit := "not detected", "not readmitted"
		if d.Detected {
			detect = fmt.Sprintf("detected in %v", d.DetectLatency.Round(100*time.Millisecond))
		}
		if d.Readmitted {
			readmit = fmt.Sprintf("readmitted in %v", d.ReadmitLatency.Round(100*time.Millisecond))
		}
		fmt.Fprintf(w, "%s: %s, %s\n", d.Device, detect, readmit)
	}
	fmt.Fprintf(w, "post-detection scheduling violations: %d (want 0)\n", withDetector.SchedulingViolations)
	if baseline.FailureRate > 0 {
		fmt.Fprintf(w, "failure-rate reduction: %.0f%%\n",
			(1-withDetector.FailureRate/baseline.FailureRate)*100)
	}
}
