package experiments

import (
	"strings"
	"testing"
)

// TestAblationSequenceDependence: planning with static costs must cost
// the cost-aware heuristics a real penalty, while LS (which ignores costs
// entirely) is unaffected by construction.
func TestAblationSequenceDependence(t *testing.T) {
	cfg := fastConfig()
	rows, err := AblationSequenceDependence(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Algorithm] = r
	}
	for _, name := range []string{"LERFA+SRFE", "SRFAE"} {
		r := byName[name]
		if r.Penalty < 1.1 {
			t.Errorf("%s: static-cost planning penalty %.2fx; expected noticeable degradation", name, r.Penalty)
		}
	}
	// LS never consults costs for its choices, so its plans coincide.
	ls := byName["LS"]
	if ls.Penalty > 1.3 {
		t.Errorf("LS penalty %.2fx; LS should be largely insensitive to the estimator", ls.Penalty)
	}
	// The ablated heuristics must still not be worse than LS with
	// chaining — they degrade, they don't collapse.
	if byName["SRFAE"].Static <= 0 {
		t.Error("missing static measurement")
	}

	var sb strings.Builder
	PrintAblation(&sb, rows)
	if !strings.Contains(sb.String(), "Penalty") {
		t.Errorf("table missing:\n%s", sb.String())
	}
}

func TestScalability(t *testing.T) {
	cfg := fastConfig()
	cfg.Runs = 2
	points, err := Scalability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	for _, pt := range points {
		// At n/m = 2 the greedy heuristics stay in a narrow makespan band
		// even at 400 requests.
		if pt.Makespans["SRFAE"] <= 0 {
			t.Errorf("(n=%d) missing SRFAE result", pt.Requests)
		}
		if pt.Makespans["SRFAE"] >= pt.Makespans["RANDOM"] {
			t.Errorf("(n=%d) SRFAE (%.2f) not better than RANDOM (%.2f)",
				pt.Requests, pt.Makespans["SRFAE"], pt.Makespans["RANDOM"])
		}
	}
	// Wall-clock scheduling cost must stay sane at the largest size
	// (real-time requirement, paper §5.1).
	last := points[len(points)-1]
	for name, w := range last.Wall {
		if w.Seconds() > 5 {
			t.Errorf("%s wall scheduling time %v at n=400; not usable online", name, w)
		}
	}

	var sb strings.Builder
	PrintScalability(&sb, points)
	if !strings.Contains(sb.String(), "( 400, 100)") {
		t.Errorf("table missing sizes:\n%s", sb.String())
	}
}
