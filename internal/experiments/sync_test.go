package experiments

import (
	"strings"
	"testing"

	"aorta/internal/core"
)

// TestSyncStudyShape reproduces the §6.2 findings at reduced duration:
// without device synchronization most actions fail (paper: >50%); with it
// the failure rate drops to around 10% (paper: ≈10%).
func TestSyncStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("virtual-minutes experiment")
	}
	cfg := DefaultSyncConfig()
	cfg.Minutes = 4
	// Moderate scale: `go test ./...` runs packages in parallel, so the
	// engine must keep up with virtual time even on a loaded machine.
	cfg.ClockScale = 100
	if raceEnabled {
		// The race detector slows execution ~10-20x; keep the virtual
		// workload deliverable.
		cfg.ClockScale = 25
	}
	with, without, err := SyncStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if with.Requests < int64(cfg.Queries*(cfg.Minutes-1)) {
		t.Fatalf("with-sync run produced only %d requests", with.Requests)
	}
	if without.Requests < int64(cfg.Queries*(cfg.Minutes-1)) {
		t.Fatalf("without-sync run produced only %d requests", without.Requests)
	}
	if without.FailureRate < 0.5 {
		t.Errorf("without sync: failure rate %.0f%%, paper reports >50%%", without.FailureRate*100)
	}
	if with.FailureRate > 0.25 {
		t.Errorf("with sync: failure rate %.0f%%, paper reports ≈10%%", with.FailureRate*100)
	}
	if with.FailureRate >= without.FailureRate {
		t.Error("synchronization did not reduce the failure rate")
	}
	// Interference failures (blurred/wrong-position) must essentially
	// disappear under locking.
	interferenceWith := with.Failures[core.FailBlurred] + with.Failures[core.FailWrongPosition]
	if float64(interferenceWith) > 0.05*float64(with.Requests) {
		t.Errorf("with sync: %d interference failures of %d requests", interferenceWith, with.Requests)
	}

	var sb strings.Builder
	PrintSyncStudy(&sb, with, without)
	if !strings.Contains(sb.String(), "without sync") {
		t.Errorf("table missing rows:\n%s", sb.String())
	}
}
