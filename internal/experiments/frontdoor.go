package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"aorta/internal/frontdoor"
	"aorta/internal/netsim"
	"aorta/internal/vclock"
)

// FrontdoorConfig sizes the front-door pipelining study: many concurrent
// clients issuing statements over high-latency simulated links, serial
// (bare lines, one outstanding statement) versus pipelined (tagged
// "#<id>" lines, a window of statements in flight). The study runs the
// real frontdoor.Door and the real line framing; only statement
// execution is synthetic — a fixed virtual-time service sleep — because
// under a scaled clock real CPU work would dominate virtual elapsed time
// and hide the protocol effect being measured.
type FrontdoorConfig struct {
	// Clients is the concurrent connection count.
	Clients int
	// Statements is how many statements each client issues.
	Statements int
	// Window is the pipelined mode's per-connection in-flight cap.
	Window int
	// Workers sizes the door's shared pool.
	Workers int
	// PropDelay is the link's one-way propagation delay (virtual time);
	// Jitter widens it uniformly.
	PropDelay time.Duration
	Jitter    time.Duration
	// Service is the synthetic per-statement execution time (virtual).
	Service time.Duration
	// ClockScale speeds up virtual time.
	ClockScale float64
	// Seed drives link jitter.
	Seed int64
}

// DefaultFrontdoorConfig exercises the acceptance point: 100+ concurrent
// clients over lossy-latency links, where serial clients spend almost
// all their time waiting on round trips.
func DefaultFrontdoorConfig() FrontdoorConfig {
	return FrontdoorConfig{
		Clients:    120,
		Statements: 24,
		Window:     8,
		Workers:    64,
		PropDelay:  300 * time.Millisecond,
		Jitter:     100 * time.Millisecond,
		Service:    20 * time.Millisecond,
		ClockScale: 100,
		Seed:       2005,
	}
}

// FrontdoorResult is one mode's aggregate measurements, in virtual time.
type FrontdoorResult struct {
	Mode       string        // "serial" or "pipelined"
	Statements int           // completed statements across all clients
	Errors     int           // non-OK frames (should be 0)
	Elapsed    time.Duration // virtual wall time for the whole run
	Throughput float64       // statements per virtual second
	// P50/P99/P999 are per-statement send→response latencies.
	P50, P99, P999 time.Duration
	// Shed is the door's overload-rejection count (0 in this study: the
	// pool queue is sized to the offered load).
	Shed int64
}

// Speedup is pipelined throughput over serial throughput.
func FrontdoorSpeedup(serial, pipelined FrontdoorResult) float64 {
	if serial.Throughput <= 0 {
		return 0
	}
	return pipelined.Throughput / serial.Throughput
}

// FrontdoorStudy runs the serial and pipelined modes over identical
// simulated networks and returns both results.
func FrontdoorStudy(cfg FrontdoorConfig) (serial, pipelined FrontdoorResult, err error) {
	serial, err = runFrontdoorMode(cfg, false)
	if err != nil {
		return
	}
	pipelined, err = runFrontdoorMode(cfg, true)
	return
}

// fdFrame is the response frame the study's synthetic executor returns
// and its clients decode.
type fdFrame struct {
	ID string `json:"id,omitempty"`
	OK bool   `json:"ok"`
}

func runFrontdoorMode(cfg FrontdoorConfig, pipelined bool) (FrontdoorResult, error) {
	clk := vclock.NewScaled(cfg.ClockScale)
	network := netsim.NewNetwork(clk, cfg.Seed)
	const addr = "aortad"
	lis, err := network.Listen(addr)
	if err != nil {
		return FrontdoorResult{}, err
	}
	defer lis.Close()
	network.SetLink(addr, netsim.LinkConfig{
		PropagationDelay: cfg.PropDelay,
		Jitter:           cfg.Jitter,
	})

	door := frontdoor.New(frontdoor.Config{
		Workers: cfg.Workers,
		// Queue sized to the offered load: this study measures pipelining,
		// not shedding, so nothing should be rejected.
		Queue:  cfg.Clients*cfg.Window + 64,
		Window: cfg.Window,
		Clock:  clk,
	})
	exec := func(ctx context.Context, id, stmt string) any {
		clk.Sleep(cfg.Service)
		return fdFrame{ID: id, OK: true}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var serveWG sync.WaitGroup
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			serveWG.Add(1)
			go func() {
				defer serveWG.Done()
				door.Serve(ctx, conn, exec)
			}()
		}
	}()

	// Each client connects up front so dial latency is outside the
	// measured window, then issues its statements at the mode's window.
	conns := make([]net.Conn, cfg.Clients)
	for i := range conns {
		c, err := network.Dial(ctx, addr)
		if err != nil {
			return FrontdoorResult{}, err
		}
		defer c.Close()
		conns[i] = c
	}

	window := 1
	if pipelined {
		window = cfg.Window
	}
	type clientOut struct {
		lats []time.Duration
		errs int
		err  error
	}
	outs := make([]clientOut, cfg.Clients)
	start := clk.Now()
	var wg sync.WaitGroup
	for i, conn := range conns {
		wg.Add(1)
		go func(i int, conn net.Conn) {
			defer wg.Done()
			lats, errs, err := fdClient(clk, conn, cfg.Statements, window, pipelined)
			outs[i] = clientOut{lats: lats, errs: errs, err: err}
		}(i, conn)
	}
	wg.Wait()
	elapsed := clk.Now().Sub(start)

	for _, c := range conns {
		c.Close()
	}
	lis.Close()
	serveWG.Wait()
	door.Close()

	var all []time.Duration
	res := FrontdoorResult{Mode: "serial", Elapsed: elapsed}
	if pipelined {
		res.Mode = "pipelined"
	}
	for _, o := range outs {
		if o.err != nil {
			return res, o.err
		}
		all = append(all, o.lats...)
		res.Statements += len(o.lats)
		res.Errors += o.errs
	}
	if elapsed > 0 {
		res.Throughput = float64(res.Statements) / elapsed.Seconds()
	}
	res.P50, res.P99, res.P999 = percentiles(all)
	res.Shed = door.Metrics().Shed
	return res, nil
}

// fdClient issues n statements over conn with up to window in flight,
// returning each statement's send→response virtual latency. In serial
// mode statements are bare lines; pipelined they carry "#s<i>" tags.
func fdClient(clk vclock.Clock, conn net.Conn, n, window int, tagged bool) ([]time.Duration, int, error) {
	sent := make([]time.Time, n)
	lats := make([]time.Duration, 0, n)
	errs := 0

	dec := json.NewDecoder(conn)
	recv := func() error {
		var f fdFrame
		if err := dec.Decode(&f); err != nil {
			return err
		}
		idx := len(lats)
		if tagged {
			if _, err := fmt.Sscanf(f.ID, "s%d", &idx); err != nil {
				return fmt.Errorf("bad response id %q: %w", f.ID, err)
			}
		}
		lats = append(lats, clk.Now().Sub(sent[idx]))
		if !f.OK {
			errs++
		}
		return nil
	}

	inFlight := 0
	for i := 0; i < n; i++ {
		for inFlight >= window {
			if err := recv(); err != nil {
				return nil, errs, err
			}
			inFlight--
		}
		line := fmt.Sprintf("SELECT %d\n", i)
		if tagged {
			line = fmt.Sprintf("#s%d SELECT %d\n", i, i)
		}
		sent[i] = clk.Now()
		if _, err := conn.Write([]byte(line)); err != nil {
			return nil, errs, err
		}
		inFlight++
	}
	for inFlight > 0 {
		if err := recv(); err != nil {
			return nil, errs, err
		}
		inFlight--
	}
	return lats, errs, nil
}

// percentiles returns p50/p99/p999 of lats.
func percentiles(lats []time.Duration) (p50, p99, p999 time.Duration) {
	if len(lats) == 0 {
		return
	}
	sorted := make([]time.Duration, len(lats))
	copy(sorted, lats)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	return at(0.50), at(0.99), at(0.999)
}

// PrintFrontdoorStudy renders both modes and the speedup.
func PrintFrontdoorStudy(w io.Writer, cfg FrontdoorConfig, serial, pipelined FrontdoorResult) {
	fmt.Fprintf(w, "Front door — %d clients × %d statements, %v one-way propagation (+%v jitter), %v service, window %d (virtual time)\n",
		cfg.Clients, cfg.Statements, cfg.PropDelay, cfg.Jitter, cfg.Service, cfg.Window)
	fmt.Fprintf(w, "%-11s%12s%14s%12s%12s%12s%8s%8s\n",
		"Mode", "Statements", "Stmts/sec", "p50", "p99", "p999", "Errors", "Shed")
	for _, r := range []FrontdoorResult{serial, pipelined} {
		fmt.Fprintf(w, "%-11s%12d%14.1f%12s%12s%12s%8d%8d\n",
			r.Mode, r.Statements, r.Throughput,
			r.P50.Round(time.Millisecond), r.P99.Round(time.Millisecond),
			r.P999.Round(time.Millisecond), r.Errors, r.Shed)
	}
	fmt.Fprintf(w, "pipelined/serial throughput: %.1f×\n", FrontdoorSpeedup(serial, pipelined))
}
