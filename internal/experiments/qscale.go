package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"aorta/internal/comm"
	"aorta/internal/match"
	"aorta/internal/scanshare"
	"aorta/internal/vclock"
)

// QScaleConfig controls the query-scaling study: how sampling and routing
// cost grow with the number of registered queries. The shared scan fabric
// should hold per-epoch device scans at O(D) — independent of Q — while
// the predicate index keeps per-tuple routing cost sublinear in Q.
type QScaleConfig struct {
	// Queries are the Q values to measure.
	Queries []int
	// Devices is D, the device count behind the scanned table.
	Devices int
	// Epochs is how many fabric epochs each configuration runs.
	Epochs int
	// Probes is how many tuples are routed when timing the index against
	// the brute-force linear scan.
	Probes int
	// Seed drives predicate and tuple randomness.
	Seed int64
}

// DefaultQScaleConfig measures the paper-motivating range: from a single
// query to a thousand queries sharing one device population.
func DefaultQScaleConfig() QScaleConfig {
	return QScaleConfig{
		Queries: []int{1, 10, 100, 1000},
		Devices: 50,
		Epochs:  20,
		Probes:  2000,
		Seed:    2005,
	}
}

// QScalePoint is one Q configuration's measurements.
type QScalePoint struct {
	Queries int
	// FabricScans is how many device-type scans the fabric issued over the
	// run's epochs; NaiveScans is what per-query sampling loops would have
	// issued (Q scans per epoch). ScansCoalesced is the fabric's own count
	// of avoided scans.
	FabricScans    int64
	NaiveScans     int64
	ScansCoalesced int64
	// TuplesFanned counts tuple deliveries into per-query batches across
	// the run — the routing volume behind the per-tuple timings.
	TuplesFanned int64
	// RowNsPerTuple times the pre-columnar routing path: one index Match
	// per row-map tuple. ColNsPerTuple is the current path: MatchBatch
	// over epoch-sized columnar batches, amortized per tuple.
	// BruteNsPerTuple is the brute-force linear baseline over all Q
	// subscriptions.
	RowNsPerTuple   float64
	ColNsPerTuple   float64
	BruteNsPerTuple float64
}

// ColSpeedup is the columnar routing path's per-tuple speedup over the
// row-map path — the ROADMAP's tuples/sec criterion.
func (p QScalePoint) ColSpeedup() float64 {
	if p.ColNsPerTuple <= 0 {
		return 0
	}
	return p.RowNsPerTuple / p.ColNsPerTuple
}

// QScaleStudy measures scan coalescing and routing cost at each Q.
func QScaleStudy(cfg QScaleConfig) ([]QScalePoint, error) {
	var out []QScalePoint
	for _, q := range cfg.Queries {
		p, err := runQScale(cfg, q)
		if err != nil {
			return nil, err
		}
		out = append(out, *p)
	}
	return out, nil
}

// qscalePreds builds query i's predicates: an alert threshold plus, for
// every other query, an equality pin to one device — the mixed
// range/equality workload the index serves in practice. Thresholds sit in
// the alert band (400–1000 mg) the way real trigger queries do; most
// sampled tuples are quiescent and satisfy none of them, which is exactly
// the selectivity the index exploits.
func qscalePreds(rng *rand.Rand, i, devices int) []match.Predicate {
	preds := []match.Predicate{
		{Attr: "accel_x", Op: match.OpGT, Value: float64(400 + rng.Intn(600))},
	}
	if i%2 == 1 {
		preds = append(preds, match.Predicate{
			Attr: "id", Op: match.OpEQ, Value: fmt.Sprintf("mote-%d", rng.Intn(devices)),
		})
	}
	return preds
}

// qscaleReading samples one accelerometer value: quiescent noise most of
// the time, with rare event-scale spikes.
func qscaleReading(rng *rand.Rand) float64 {
	if rng.Intn(20) == 0 { // 5% events
		return float64(rng.Intn(1000))
	}
	return float64(rng.Intn(100))
}

func runQScale(cfg QScaleConfig, q int) (*QScalePoint, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(q)))

	// Part 1: the fabric on a manual clock over a synthetic device table.
	// Q subscriptions share the epoch; per-epoch scan count must stay 1.
	clk := vclock.NewManual(time.Unix(1_000_000, 0))
	schema := comm.NewSchema([]string{"id", "accel_x"}, []comm.Kind{comm.KindString, comm.KindFloat})
	fabric := scanshare.New(clk, func(context.Context, string, []string) (*comm.Batch, error) {
		b := comm.NewBatch(schema)
		for i := 0; i < cfg.Devices; i++ {
			b.Append([]any{fmt.Sprintf("mote-%d", i), qscaleReading(rng)})
		}
		return b, nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	subs := make([]*scanshare.Subscription, q)
	for i := range subs {
		subs[i] = fabric.Subscribe(time.Second, []scanshare.TableSpec{{
			Alias: "s", DeviceType: "sensor", Attrs: []string{"id", "accel_x"},
			Preds: qscalePreds(rng, i, cfg.Devices),
		}})
	}
	fabric.Start(ctx)
	for e := 1; e <= cfg.Epochs; e++ {
		if err := awaitQScale(func() bool { return clk.Waiters() >= 1 }); err != nil {
			return nil, fmt.Errorf("qscale Q=%d epoch %d: %w (cohort loop never parked)", q, e, err)
		}
		clk.Advance(time.Second)
		if err := awaitQScale(func() bool { return fabric.Metrics().Epochs >= int64(e) }); err != nil {
			return nil, fmt.Errorf("qscale Q=%d epoch %d: %w (tick never completed)", q, e, err)
		}
	}
	fabric.Stop()
	for _, s := range subs {
		s.Close()
	}
	fm := fabric.Metrics()

	p := &QScalePoint{
		Queries:        q,
		FabricScans:    fm.TypeScans,
		NaiveScans:     int64(q) * int64(cfg.Epochs),
		ScansCoalesced: fm.ScansCoalesced,
		TuplesFanned:   fm.TuplesFanned,
	}

	// Part 2: per-tuple routing cost over the same predicate population —
	// the row-map path (one Match per tuple, pre-columnar main), the
	// columnar path (MatchBatch over epoch-sized batches) and the
	// brute-force linear baseline.
	idx := match.NewIndex()
	for i := 0; i < q; i++ {
		idx.Insert(match.Sub{ID: i}, qscalePreds(rng, i, cfg.Devices))
	}
	probes := make([]map[string]any, cfg.Probes)
	for i := range probes {
		probes[i] = map[string]any{
			"id":      fmt.Sprintf("mote-%d", rng.Intn(cfg.Devices)),
			"accel_x": qscaleReading(rng),
		}
	}
	// The same tuples chunked into epoch-sized (D-row) columnar batches.
	var routeBatches []*comm.Batch
	batched := 0
	for at := 0; at+cfg.Devices <= len(probes); at += cfg.Devices {
		b := comm.NewBatch(schema)
		for _, t := range probes[at : at+cfg.Devices] {
			b.Append([]any{t["id"], t["accel_x"]})
		}
		routeBatches = append(routeBatches, b)
		batched += cfg.Devices
	}

	// Each routing path is timed after a full collection so one section's
	// garbage (notably part 1's fabric run) is not charged to the next.
	runtime.GC()
	start := time.Now()
	for _, t := range probes {
		idx.Match(t)
	}
	p.RowNsPerTuple = float64(time.Since(start).Nanoseconds()) / float64(cfg.Probes)

	runtime.GC()
	start = time.Now()
	for _, b := range routeBatches {
		idx.MatchBatch(b)
	}
	if batched > 0 {
		p.ColNsPerTuple = float64(time.Since(start).Nanoseconds()) / float64(batched)
	}
	for _, b := range routeBatches {
		b.Release()
	}

	runtime.GC()
	start = time.Now()
	for _, t := range probes {
		idx.BruteMatch(t)
	}
	p.BruteNsPerTuple = float64(time.Since(start).Nanoseconds()) / float64(cfg.Probes)
	return p, nil
}

// awaitQScale polls cond with a wall-clock deadline.
func awaitQScale(cond func() bool) error {
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out")
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// PrintQScaleStudy renders the scaling table.
func PrintQScaleStudy(w io.Writer, cfg QScaleConfig, points []QScalePoint) {
	fmt.Fprintf(w, "Query scaling — shared scan fabric + predicate index (D=%d devices, %d epochs, %d routed tuples)\n",
		cfg.Devices, cfg.Epochs, cfg.Probes)
	fmt.Fprintf(w, "%8s%15s%14s%12s%12s%12s%12s%14s%9s\n",
		"Q", "fabric scans", "naive scans", "coalesced", "fanned", "row ns/tup", "col ns/tup", "brute ns/tup", "speedup")
	for _, p := range points {
		fmt.Fprintf(w, "%8d%15d%14d%12d%12d%12.0f%12.0f%14.0f%8.1fx\n",
			p.Queries, p.FabricScans, p.NaiveScans, p.ScansCoalesced,
			p.TuplesFanned, p.RowNsPerTuple, p.ColNsPerTuple, p.BruteNsPerTuple, p.ColSpeedup())
	}
	fmt.Fprintln(w, "fabric scans stay at one per epoch regardless of Q; naive = Q scans per epoch.")
	fmt.Fprintln(w, "speedup = row-map routing vs columnar MatchBatch routing, per tuple.")
}
