package experiments

import (
	"strings"
	"testing"

	"aorta/internal/sched"
)

// fastConfig keeps experiment tests quick while preserving the shapes.
func fastConfig() Config {
	return Config{Runs: 6, Cameras: 10, Seed: 2005, Accounting: sched.DefaultAccounting()}
}

func algoByName(stats []AlgoStats, name string) AlgoStats {
	for _, st := range stats {
		if st.Algorithm == name {
			return st
		}
	}
	return AlgoStats{}
}

// TestFig4Shape asserts the paper's qualitative Figure 4 findings: the two
// proposed algorithms beat LS and RANDOM, RANDOM is far worse, makespans
// grow with n, and the proposed algorithms grow sub-linearly while LS
// grows roughly linearly.
func TestFig4Shape(t *testing.T) {
	points, err := Fig4(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d, want 3", len(points))
	}
	for _, pt := range points {
		lerfa := algoByName(pt.Algos, "LERFA+SRFE")
		srfae := algoByName(pt.Algos, "SRFAE")
		ls := algoByName(pt.Algos, "LS")
		random := algoByName(pt.Algos, "RANDOM")

		if lerfa.Makespan >= ls.Makespan {
			t.Errorf("n=%d: LERFA+SRFE (%.2f) not better than LS (%.2f)", pt.Requests, lerfa.Makespan, ls.Makespan)
		}
		if srfae.Makespan >= ls.Makespan {
			t.Errorf("n=%d: SRFAE (%.2f) not better than LS (%.2f)", pt.Requests, srfae.Makespan, ls.Makespan)
		}
		if random.Makespan <= ls.Makespan {
			t.Errorf("n=%d: RANDOM (%.2f) not worse than LS (%.2f)", pt.Requests, random.Makespan, ls.Makespan)
		}
	}
	// Makespans increase with the number of requests (RANDOM is too noisy
	// for a strict monotonicity assertion at this run count).
	for _, name := range []string{"LERFA+SRFE", "SRFAE", "LS"} {
		prev := 0.0
		for _, pt := range points {
			cur := algoByName(pt.Algos, name).Makespan
			if cur <= prev {
				t.Errorf("%s: makespan not increasing (%v at n=%d)", name, cur, pt.Requests)
			}
			prev = cur
		}
	}
	// The paper's scaling claim, in its robust form: adding requests costs
	// the proposed algorithms clearly less than it costs LS (their curves
	// flatten, LS stays near-linear).
	for _, name := range []string{"LERFA+SRFE", "SRFAE"} {
		ourSlope := algoByName(points[2].Algos, name).ServiceTime -
			algoByName(points[0].Algos, name).ServiceTime
		lsSlope := algoByName(points[2].Algos, "LS").ServiceTime -
			algoByName(points[0].Algos, "LS").ServiceTime
		if ourSlope >= lsSlope {
			t.Errorf("%s: +%.2fs from 10→30 requests, not flatter than LS +%.2fs", name, ourSlope, lsSlope)
		}
	}
}

// TestFig5Shape asserts the breakdown findings: scheduling time is the
// probe floor (≈0.16s) for everything except SA, SA's scheduling time
// dominates (paper: 2.49s), SA's service time is the best, RANDOM's
// service time is the worst.
func TestFig5Shape(t *testing.T) {
	rows, err := Fig5(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	sa := algoByName(rows, "SA")
	random := algoByName(rows, "RANDOM")
	for _, name := range []string{"LERFA+SRFE", "SRFAE", "LS", "RANDOM"} {
		st := algoByName(rows, name)
		if st.SchedulingTime < 0.15 || st.SchedulingTime > 0.30 {
			t.Errorf("%s scheduling time %.3fs outside the probe-floor band [0.15, 0.30]", name, st.SchedulingTime)
		}
	}
	if sa.SchedulingTime < 1.0 {
		t.Errorf("SA scheduling time %.2fs; paper reports it dominating (~2.5s)", sa.SchedulingTime)
	}
	for _, name := range []string{"LERFA+SRFE", "SRFAE", "LS", "RANDOM"} {
		if st := algoByName(rows, name); sa.ServiceTime > st.ServiceTime {
			t.Errorf("SA service %.2f worse than %s %.2f; SA should be near-optimal", sa.ServiceTime, name, st.ServiceTime)
		}
	}
	for _, name := range []string{"LERFA+SRFE", "SRFAE", "LS", "SA"} {
		if st := algoByName(rows, name); random.ServiceTime < st.ServiceTime {
			t.Errorf("RANDOM service %.2f better than %s %.2f", random.ServiceTime, name, st.ServiceTime)
		}
	}
	if random.Evals != 0 {
		t.Errorf("RANDOM evals = %v, want 0", random.Evals)
	}
}

// TestFig6Shape asserts: SA is the worst at every skewness (scheduling
// time explodes under eligibility restrictions) and the proposed
// algorithms' makespans decrease as skewness increases.
func TestFig6Shape(t *testing.T) {
	points, err := Fig6(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for _, pt := range points {
		sa := algoByName(pt.Algos, "SA")
		for _, name := range []string{"LERFA+SRFE", "SRFAE", "LS", "RANDOM"} {
			if st := algoByName(pt.Algos, name); sa.Makespan <= st.Makespan {
				t.Errorf("skew %.1f: SA (%.2f) not worst vs %s (%.2f)", pt.Skew, sa.Makespan, name, st.Makespan)
			}
		}
		if sa.SchedulingTime < sa.ServiceTime {
			t.Errorf("skew %.1f: SA scheduling time (%.2f) does not dominate service (%.2f)", pt.Skew, sa.SchedulingTime, sa.ServiceTime)
		}
		lerfa := algoByName(pt.Algos, "LERFA+SRFE")
		ls := algoByName(pt.Algos, "LS")
		if lerfa.Makespan >= ls.Makespan {
			t.Errorf("skew %.1f: LERFA+SRFE (%.2f) not better than LS (%.2f)", pt.Skew, lerfa.Makespan, ls.Makespan)
		}
	}
	// Decreasing makespan with skewness for the proposed algorithms.
	for _, name := range []string{"LERFA+SRFE", "SRFAE"} {
		first := algoByName(points[0].Algos, name).Makespan
		last := algoByName(points[2].Algos, name).Makespan
		if last >= first {
			t.Errorf("%s: makespan did not decrease with skewness (%.2f → %.2f)", name, first, last)
		}
	}
}

// TestRatioShape asserts the §6.3 observation: with a fixed
// requests/devices ratio, the non-RANDOM algorithms' service times stay in
// a narrow band as the absolute size scales 4×.
func TestRatioShape(t *testing.T) {
	points, err := Ratio(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"LERFA+SRFE", "SRFAE", "LS"} {
		small := algoByName(points[0].Algos, name).ServiceTime
		large := algoByName(points[2].Algos, name).ServiceTime
		ratio := large / small
		if ratio > 1.8 || ratio < 0.55 {
			t.Errorf("%s: service time changed %.2fx from (10,5) to (40,20); should be ~flat at fixed ratio", name, ratio)
		}
	}
}

func TestOptimalGapShape(t *testing.T) {
	cfg := fastConfig()
	cfg.Runs = 2
	rows, err := OptimalGap(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		for name, span := range r.Heuristics {
			if span < r.Optimal-1e-9 {
				t.Errorf("(n=%d) heuristic %s (%.2f) beat the exact optimum (%.2f)", r.Requests, name, span, r.Optimal)
			}
			if span > 2*r.Optimal {
				t.Errorf("(n=%d) heuristic %s (%.2f) more than 2x the optimum (%.2f)", r.Requests, name, span, r.Optimal)
			}
		}
	}
	// Exact solving cost explodes with n.
	if rows[2].OptimalWall <= rows[0].OptimalWall {
		t.Logf("optimal wall times: %v vs %v (pruning can flatten growth on small instances)", rows[0].OptimalWall, rows[2].OptimalWall)
	}
}

func TestCostModelAccuracy(t *testing.T) {
	s, err := CostModel(10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Trials) != 10 {
		t.Fatalf("trials = %d", len(s.Trials))
	}
	// "Reasonably accurate": mean relative error under 10%.
	if s.MeanRelError > 0.10 {
		t.Errorf("mean relative error %.1f%% exceeds 10%%", s.MeanRelError*100)
	}
	for _, tr := range s.Trials {
		if tr.Measured <= 0 || tr.Estimated <= 0 {
			t.Errorf("non-positive cost in trial %+v", tr)
		}
	}
}

func TestPrintersProduceTables(t *testing.T) {
	cfg := fastConfig()
	cfg.Runs = 1

	var sb strings.Builder
	f4, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	PrintFig4(&sb, f4)
	if !strings.Contains(sb.String(), "LERFA+SRFE") || !strings.Contains(sb.String(), "Figure 4") {
		t.Errorf("Fig4 table missing content:\n%s", sb.String())
	}

	sb.Reset()
	f5, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	PrintFig5(&sb, f5)
	if !strings.Contains(sb.String(), "SchedTime") {
		t.Errorf("Fig5 table missing breakdown header:\n%s", sb.String())
	}

	sb.Reset()
	f6, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	PrintFig6(&sb, f6)
	if !strings.Contains(sb.String(), "0.2") {
		t.Errorf("Fig6 table missing skew values:\n%s", sb.String())
	}

	sb.Reset()
	ratio, err := Ratio(cfg)
	if err != nil {
		t.Fatal(err)
	}
	PrintRatio(&sb, ratio)
	if !strings.Contains(sb.String(), "( 10,   5)") {
		t.Errorf("Ratio table missing sizes:\n%s", sb.String())
	}

	sb.Reset()
	cm, err := CostModel(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	PrintCostModel(&sb, cm)
	if !strings.Contains(sb.String(), "relative error") {
		t.Errorf("CostModel summary missing:\n%s", sb.String())
	}

	sb.Reset()
	gap, err := OptimalGap(Config{Runs: 1, Cameras: 3, Seed: 1, Accounting: sched.DefaultAccounting()})
	if err != nil {
		t.Fatal(err)
	}
	PrintOptimalGap(&sb, gap)
	if !strings.Contains(sb.String(), "OPT") {
		t.Errorf("OptimalGap table missing:\n%s", sb.String())
	}
}
