package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aorta/internal/cluster"
	"aorta/internal/liveness"
	"aorta/internal/netsim"
	"aorta/internal/wal"
)

// SelfhealConfig controls the self-healing cluster study: a journaled,
// health-enabled cluster (active probes, auto-retire, wired handoff and
// drainer) is subjected to the three membership transitions the router
// must survive without operator help while continuous queries stream:
//
// Kill: one shard is crashed mid-workload with journaled, outcome-less
// intents open. The router's failure detector must notice (bounded
// detection latency), auto-retire the shard after the grace window, and
// run the handoff itself — with the same zero-loss contract the
// operator-driven cluster study audits from the outside.
//
// Flap: one shard goes dark briefly and comes back within the grace
// window. The detector must see it Down and Up again, and the
// auto-retire loop must NOT amputate it: zero false-positive
// retirements.
//
// Drain: DRAIN SHARD retires a healthy shard cooperatively while
// statements are in flight through the router. Every concurrent
// statement must be answered (none dropped), and every query the victim
// ran must continue on a survivor.
type SelfhealConfig struct {
	// Shards and Motes size the cluster; one streaming CQ per mote.
	Shards int
	Motes  int
	// EvalWorkers bounds concurrent CQ evaluations per engine.
	EvalWorkers int
	// ClockScale speeds up virtual time (probes, grace windows, epochs).
	ClockScale float64
	// Seed drives device randomness.
	Seed int64
	// StaleAfter is the virtual deadline attached to action intents.
	StaleAfter time.Duration

	// ProbeInterval/ProbeTimeout drive the router's \ping probes
	// (virtual time).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// SuspectAfter/DownAfter are the detector's consecutive-failure
	// thresholds.
	SuspectAfter int
	DownAfter    int
	// GraceWindow is how long Down must persist before auto-retire; the
	// flap outage resolves well inside it by construction.
	GraceWindow time.Duration
	// Quorum is the reachable-membership fraction auto-retire requires.
	Quorum float64

	// MaxDetect bounds kill→auto-retire latency in virtual time. Nominal
	// is DownAfter*ProbeInterval + GraceWindow; the bound leaves room for
	// scheduling jitter, which the scaled clock amplifies.
	MaxDetect time.Duration
	// DrainStatements is how many concurrent statements are held in
	// flight through the router while the drain runs.
	DrainStatements int
}

// DefaultSelfhealConfig mirrors the cluster study's scale: 4 shards,
// 32 streaming CQs, clock scale 150 (one 60s epoch = 0.4s wall). At
// these settings detection nominally lands at DownAfter*ProbeInterval =
// 15s virtual and auto-retire at +60s grace — 0.5s wall — against a
// 300s virtual acceptance bound.
func DefaultSelfhealConfig() SelfhealConfig {
	return SelfhealConfig{
		Shards:          4,
		Motes:           32,
		EvalWorkers:     4,
		ClockScale:      150,
		Seed:            2013,
		StaleAfter:      10 * time.Minute,
		ProbeInterval:   5 * time.Second,
		ProbeTimeout:    2 * time.Second,
		SuspectAfter:    1,
		DownAfter:       3,
		GraceWindow:     60 * time.Second,
		Quorum:          0.5,
		MaxDetect:       300 * time.Second,
		DrainStatements: 16,
	}
}

// SelfhealResult aggregates the three phases' audits.
type SelfhealResult struct {
	// Kill phase.
	KillVictim    string
	PendingAtKill int
	// DetectLatency is kill → auto-retired in virtual time.
	DetectLatency    time.Duration
	KillAdopted      cluster.AdoptStats
	KillLostOutcomes int
	KillLostQueries  int

	// Flap phase.
	FlapVictim       string
	FlapDowned       bool
	FlapRecovered    bool
	FlapFalseRetires int

	// Drain phase.
	DrainVictim      string
	DrainMoved       cluster.DrainReport
	DrainStatements  int
	DrainDropped     int
	DrainLostQueries int

	// Violations lists every broken invariant; empty means the cluster
	// healed itself within contract.
	Violations []string
}

// clusterConfig adapts the selfheal knobs onto the shared trial builder.
func (cfg SelfhealConfig) clusterConfig() ClusterConfig {
	ccfg := DefaultClusterConfig()
	ccfg.ClockScale = cfg.ClockScale
	ccfg.Seed = cfg.Seed
	ccfg.EvalWorkers = cfg.EvalWorkers
	ccfg.StaleAfter = cfg.StaleAfter
	return ccfg
}

// healthConfig is the router health apparatus under study: probes on,
// detector thresholds from the config, auto-retire as requested. Clock,
// Handoff and Drainer are wired by buildClusterTrial.
func (cfg SelfhealConfig) healthConfig(autoRetire bool) *cluster.HealthConfig {
	return &cluster.HealthConfig{
		SuspectAfter:  cfg.SuspectAfter,
		DownAfter:     cfg.DownAfter,
		ProbeInterval: cfg.ProbeInterval,
		ProbeTimeout:  cfg.ProbeTimeout,
		AutoRetire:    autoRetire,
		GraceWindow:   cfg.GraceWindow,
		Quorum:        cfg.Quorum,
	}
}

// waitMembershipEvent polls the router's membership journal for the
// first event matching shard and action, bounded by a wall deadline.
func waitMembershipEvent(rt *cluster.Router, shard, action string, deadline time.Time) (cluster.MembershipEvent, bool) {
	for time.Now().Before(deadline) {
		for _, ev := range rt.MembershipEvents() {
			if ev.Shard == shard && ev.Action == action {
				return ev, true
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cluster.MembershipEvent{}, false
}

// SelfhealStudy runs the kill, flap and drain phases and audits the
// self-healing contract.
func SelfhealStudy(cfg SelfhealConfig) (*SelfhealResult, error) {
	res := &SelfhealResult{}
	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}
	if err := selfhealKillPhase(cfg, res, violate); err != nil {
		return nil, fmt.Errorf("kill phase: %w", err)
	}
	if err := selfhealFlapPhase(cfg, res, violate); err != nil {
		return nil, fmt.Errorf("flap phase: %w", err)
	}
	if err := selfhealDrainPhase(cfg, res, violate); err != nil {
		return nil, fmt.Errorf("drain phase: %w", err)
	}
	return res, nil
}

// selfhealKillPhase crashes the busiest shard of a journaled cluster
// with pending intents open and lets the router heal on its own: detect,
// auto-retire after the grace window, hand off. The audit is the
// cluster study's, minus the operator.
func selfhealKillPhase(cfg SelfhealConfig, res *SelfhealResult, violate func(string, ...any)) error {
	ccfg := cfg.clusterConfig()
	t, err := buildClusterTrial(ccfg, cfg.Shards, cfg.Motes, true, true, cfg.healthConfig(true))
	if err != nil {
		return err
	}
	defer t.close()
	ctx := context.Background()

	virtualEpoch := 60 * time.Second
	epochWall := time.Duration(float64(virtualEpoch) / cfg.ClockScale)

	for k := 1; k <= cfg.Motes; k++ {
		stmt := fmt.Sprintf(
			`CREATE AQ heal%d AS SELECT notify(p.number, "selfheal alert %d") FROM sensor m, phone p WHERE m.accel_x > 500 AND m.id = "mote-%d" EVERY "60s"`, k, k, k)
		if err := routeStatement(ctx, t.router, stmt); err != nil {
			return err
		}
	}

	// Victim: the shard owning the most motes. Its phone link is slowed
	// so the kill lands with journaled, outcome-less intents — the state
	// the automatic handoff must not lose.
	var victim *clusterShard
	victimPhone := ""
	for i, s := range t.shards {
		if victim == nil || len(s.motes) > len(victim.motes) {
			victim = s
			victimPhone = fmt.Sprintf("phone-%d", i+1)
		}
	}
	res.KillVictim = victim.id
	t.network.SetLink(victimPhone, netsim.LinkConfig{PropagationDelay: 2 * virtualEpoch})
	for _, mid := range victim.motes {
		t.motes[mid].Stimulate("x", 900, 60*virtualEpoch)
	}

	killBy := time.Now().Add(30*epochWall + 5*time.Second)
	for time.Now().Before(killBy) {
		if n := victim.eng.JournalPending(); n > 0 {
			res.PendingAtKill = n
			break
		}
		time.Sleep(time.Millisecond)
	}
	if res.PendingAtKill == 0 {
		violate("kill: victim was never caught with journaled pending intents; the kill is vacuous")
	}

	// The kill: sever the WAL without sync, stop the engine, close the
	// front door — and do NOT tell the router. Detection is its job.
	killAt := t.clk.Now()
	victim.journal.Crash()
	victim.eng.Stop()
	victim.doorLis.Close()
	victim.door.Close()
	victim.severConns()

	retired, ok := waitMembershipEvent(t.router, victim.id, "auto-retired", time.Now().Add(30*time.Second))
	if !ok {
		violate("kill: shard %s was never auto-retired (events: %v)", victim.id, t.router.MembershipEvents())
		return nil
	}
	res.DetectLatency = retired.At.Sub(killAt)
	if res.DetectLatency > cfg.MaxDetect {
		violate("kill: detection latency %v exceeds bound %v", res.DetectLatency, cfg.MaxDetect)
	}
	if _, ok := waitMembershipEvent(t.router, victim.id, "handoff", time.Now().Add(30*time.Second)); !ok {
		violate("kill: auto-retire of %s ran no successful handoff (events: %v)", victim.id, t.router.MembershipEvents())
		return nil
	}
	// The slow phone link served its purpose; heal it so adopted intents
	// complete promptly on the survivors.
	t.network.SetLink(victimPhone, netsim.LinkConfig{})
	t.healMu.Lock()
	res.KillAdopted = t.adopted
	t.healMu.Unlock()

	// Enumerate what the victim owed from its journal (the handoff's own
	// source of truth), then audit the survivors from the outside.
	sets, err := cluster.PlanHandoff(victim.dir, t.router.Map().Owner)
	if err != nil {
		return fmt.Errorf("post-mortem plan: %w", err)
	}
	victimPending := map[string]bool{}
	victimQueries := map[string]bool{}
	for _, set := range sets {
		for _, ir := range set.Intents {
			victimPending[ir.DedupKey] = true
		}
		for _, sq := range set.Queries {
			victimQueries[sq.Name] = true
		}
	}

	survivors := []*clusterShard{}
	for _, s := range t.shards {
		if s != victim {
			survivors = append(survivors, s)
		}
	}
	for name := range victimQueries {
		found := false
		for _, s := range survivors {
			if _, ok := s.eng.QueryInfo(name); ok {
				found = true
				break
			}
		}
		if !found {
			res.KillLostQueries++
		}
	}
	if res.KillLostQueries > 0 {
		violate("kill: lost queries = %d, want 0", res.KillLostQueries)
	}

	quiesceBy := time.Now().Add(60*epochWall + 10*time.Second)
	for time.Now().Before(quiesceBy) {
		idle := true
		for _, s := range survivors {
			if s.eng.JournalPending() != 0 || s.eng.InFlight() != 0 {
				idle = false
				break
			}
		}
		if idle {
			break
		}
		time.Sleep(time.Millisecond)
	}
	outcomes := map[string]bool{}
	for _, s := range survivors {
		s.eng.Stop()
		if err := s.journal.Close(); err != nil {
			return fmt.Errorf("close %s journal: %w", s.id, err)
		}
		pm, err := wal.Open(s.dir, wal.Options{})
		if err != nil {
			return fmt.Errorf("post-mortem open %s: %w", s.id, err)
		}
		err = pm.Replay(func(rec wal.Record) error {
			if rec.Kind != wal.KindOutcome {
				return nil
			}
			var or wal.OutcomeRecord
			if err := rec.Decode(&or); err != nil {
				return err
			}
			outcomes[or.DedupKey] = true
			return nil
		})
		pm.Close()
		if err != nil {
			return fmt.Errorf("post-mortem replay %s: %w", s.id, err)
		}
	}
	lost := make([]string, 0)
	for key := range victimPending {
		if !outcomes[key] {
			lost = append(lost, key)
		}
	}
	sort.Strings(lost)
	res.KillLostOutcomes = len(lost)
	if res.KillLostOutcomes > 0 {
		violate("kill: lost outcomes = %d, want 0 (first: %s)", res.KillLostOutcomes, lost[0])
	}
	// A healthy shard auto-retired alongside the victim would be masked
	// by the victim's own success; sweep the whole journal.
	for _, ev := range t.router.MembershipEvents() {
		if ev.Action == "auto-retired" && ev.Shard != victim.id {
			violate("kill: healthy shard %s was auto-retired (%s)", ev.Shard, ev.Reason)
		}
	}
	return nil
}

// selfhealFlapPhase takes one shard dark just long enough for the
// detector to call it Down, revives it inside the grace window, and
// asserts the auto-retire loop held its fire.
func selfhealFlapPhase(cfg SelfhealConfig, res *SelfhealResult, violate func(string, ...any)) error {
	ccfg := cfg.clusterConfig()
	t, err := buildClusterTrial(ccfg, cfg.Shards, cfg.Motes, false, false, cfg.healthConfig(true))
	if err != nil {
		return err
	}
	defer t.close()
	ctx := context.Background()

	for k := 1; k <= cfg.Motes; k++ {
		stmt := fmt.Sprintf(
			`CREATE AQ flap%d AS SELECT m.accel_x FROM sensor m WHERE m.id = "mote-%d" EVERY "60s"`, k, k)
		if err := routeStatement(ctx, t.router, stmt); err != nil {
			return err
		}
	}

	flap := t.shards[0]
	res.FlapVictim = flap.id
	// The blip: take the link down (refusing redials), sever the serving
	// door and its live connections. The engine keeps running — only the
	// router's view goes dark.
	t.network.SetLink("fd-"+flap.id, netsim.LinkConfig{Down: true})
	flap.doorLis.Close()
	flap.door.Close()
	flap.severConns()

	down, ok := waitMembershipEvent(t.router, flap.id, "down", time.Now().Add(30*time.Second))
	if !ok {
		violate("flap: shard %s going dark was never detected", flap.id)
		return nil
	}
	res.FlapDowned = true

	// Revive well inside the grace window (detection took DownAfter
	// probes; redial backoff adds a few more intervals before the next
	// real dial).
	t.network.SetLink("fd-"+flap.id, netsim.LinkConfig{})
	if err := t.serveDoor(ctx, flap); err != nil {
		return fmt.Errorf("revive %s: %w", flap.id, err)
	}
	upBy := time.Now().Add(30 * time.Second)
	for time.Now().Before(upBy) {
		if h := t.router.Health(); h != nil && h.Shards[flap.id].State == liveness.Up {
			res.FlapRecovered = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !res.FlapRecovered {
		violate("flap: shard %s never recovered to Up after revival", flap.id)
	}

	// Outlive the grace timer (it was armed at the Down transition),
	// then audit: the revived shard must still be a member.
	settleUntil := down.At.Add(cfg.GraceWindow + 3*cfg.ProbeInterval)
	settleBy := time.Now().Add(30 * time.Second)
	for time.Now().Before(settleBy) && t.clk.Now().Before(settleUntil) {
		time.Sleep(2 * time.Millisecond)
	}
	for _, ev := range t.router.MembershipEvents() {
		if ev.Action == "auto-retired" || ev.Action == "retired" {
			res.FlapFalseRetires++
			violate("flap: shard %s was retired despite recovering within the grace window (%s)", ev.Shard, ev.Reason)
		}
	}
	return nil
}

// selfhealDrainPhase drains a healthy shard through the router's DRAIN
// SHARD statement while statements are in flight, and audits the
// cooperative contract: drain succeeds, nothing in flight is dropped,
// and every victim query continues on a survivor.
func selfhealDrainPhase(cfg SelfhealConfig, res *SelfhealResult, violate func(string, ...any)) error {
	ccfg := cfg.clusterConfig()
	// Auto-retire stays off here: the drain is an operator action and
	// must not race a grace timer in the audit.
	t, err := buildClusterTrial(ccfg, cfg.Shards, cfg.Motes, true, true, cfg.healthConfig(false))
	if err != nil {
		return err
	}
	defer t.close()
	ctx := context.Background()

	for k := 1; k <= cfg.Motes; k++ {
		stmt := fmt.Sprintf(
			`CREATE AQ drain%d AS SELECT m.accel_x FROM sensor m WHERE m.id = "mote-%d" EVERY "60s"`, k, k)
		if err := routeStatement(ctx, t.router, stmt); err != nil {
			return err
		}
	}

	var victim *clusterShard
	for _, s := range t.shards {
		if victim == nil || len(s.motes) > len(victim.motes) {
			victim = s
		}
	}
	res.DrainVictim = victim.id
	qres, err := victim.eng.Exec(ctx, "SHOW QUERIES")
	if err != nil {
		return fmt.Errorf("victim catalog: %w", err)
	}
	victimQueries := make([]string, 0, len(qres.Queries))
	for _, q := range qres.Queries {
		victimQueries = append(victimQueries, q.Name)
	}

	// Hold a pipeline of broadcast statements in flight across the
	// membership change. Every one must come back typed — partial is
	// fine (the victim leaves mid-broadcast), silence is not.
	res.DrainStatements = cfg.DrainStatements
	var dropped atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < cfg.DrainStatements; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Stagger so statements land before, during and after the drain.
			time.Sleep(time.Duration(i) * 2 * time.Millisecond)
			sctx, cancel := context.WithTimeout(ctx, 30*time.Second)
			defer cancel()
			switch t.router.Exec(sctx, fmt.Sprintf("d%d", i), "SHOW DEVICES").(type) {
			case *cluster.Response:
			default:
				dropped.Add(1)
			}
		}(i)
	}

	switch resp := t.router.Exec(ctx, "", "DRAIN SHARD "+victim.id).(type) {
	case *cluster.Response:
		if !resp.OK {
			violate("drain: DRAIN SHARD %s failed: %s (%s)", victim.id, resp.Error, resp.Code)
		}
	default:
		violate("drain: DRAIN SHARD %s returned unexpected response type %T", victim.id, resp)
	}
	wg.Wait()
	res.DrainDropped = int(dropped.Load())
	if res.DrainDropped > 0 {
		violate("drain: %d of %d in-flight statements dropped, want 0", res.DrainDropped, cfg.DrainStatements)
	}

	t.healMu.Lock()
	if len(t.drains) > 0 {
		res.DrainMoved = t.drains[0]
	}
	t.healMu.Unlock()
	if res.DrainMoved.Devices < len(victim.motes) {
		violate("drain: moved %d devices, want at least the victim's %d motes", res.DrainMoved.Devices, len(victim.motes))
	}

	for _, name := range victimQueries {
		found := false
		for _, s := range t.shards {
			if s == victim {
				continue
			}
			if _, ok := s.eng.QueryInfo(name); ok {
				found = true
				break
			}
		}
		if !found {
			res.DrainLostQueries++
		}
	}
	if res.DrainLostQueries > 0 {
		violate("drain: lost queries = %d, want 0", res.DrainLostQueries)
	}
	return nil
}

// PrintSelfhealStudy renders the three phases' audits.
func PrintSelfhealStudy(w io.Writer, cfg SelfhealConfig, res *SelfhealResult) {
	fmt.Fprintf(w, "Self-heal — %d shards, %d streaming CQs, probes every %v, grace %v, quorum %.0f%%\n",
		cfg.Shards, cfg.Motes, cfg.ProbeInterval, cfg.GraceWindow, cfg.Quorum*100)
	fmt.Fprintf(w, "kill:  crashed %s with %d pending intents → auto-retired in %v virtual (bound %v)\n",
		res.KillVictim, res.PendingAtKill, res.DetectLatency.Round(time.Millisecond), cfg.MaxDetect)
	fmt.Fprintf(w, "       handoff adopted %d devices, %d queries, %d intents (%d closed); lost outcomes %d, lost queries %d (want 0/0)\n",
		res.KillAdopted.Devices, res.KillAdopted.Queries, res.KillAdopted.IntentsAdopted, res.KillAdopted.IntentsClosed,
		res.KillLostOutcomes, res.KillLostQueries)
	fmt.Fprintf(w, "flap:  %s downed=%v recovered=%v false retirements %d (want 0)\n",
		res.FlapVictim, res.FlapDowned, res.FlapRecovered, res.FlapFalseRetires)
	fmt.Fprintf(w, "drain: %s moved %d devices, %d queries, %d intents (flushed %d); %d/%d statements answered, lost queries %d (want 0)\n",
		res.DrainVictim, res.DrainMoved.Devices, res.DrainMoved.Queries, res.DrainMoved.Intents, res.DrainMoved.FlushedIntents,
		res.DrainStatements-res.DrainDropped, res.DrainStatements, res.DrainLostQueries)
	if len(res.Violations) == 0 {
		fmt.Fprintf(w, "invariants: all held (bounded detection, zero-loss auto-handoff, no false retirements, lossless drain)\n")
		return
	}
	fmt.Fprintf(w, "invariants VIOLATED (%d):\n", len(res.Violations))
	for _, v := range res.Violations {
		fmt.Fprintf(w, "  - %s\n", v)
	}
}
