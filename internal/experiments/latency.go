package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"aorta/internal/geo"
	"aorta/internal/sched"
	"aorta/internal/stats"
	"aorta/internal/workload"
)

// LatencyConfig controls the continuous-arrival study.
type LatencyConfig struct {
	// Cameras is the device count (default 10).
	Cameras int
	// ArrivalsPerSec is the Poisson arrival rate of photo requests.
	ArrivalsPerSec float64
	// Duration is the simulated observation window (default 120 s).
	Duration time.Duration
	// BatchWindow groups arrivals before scheduling, like the engine's
	// shared action operator (default 100 ms).
	BatchWindow time.Duration
	// Seed drives arrivals and targets.
	Seed int64
}

func (c LatencyConfig) withDefaults() LatencyConfig {
	if c.Cameras <= 0 {
		c.Cameras = 10
	}
	if c.ArrivalsPerSec <= 0 {
		c.ArrivalsPerSec = 2
	}
	if c.Duration <= 0 {
		c.Duration = 120 * time.Second
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 100 * time.Millisecond
	}
	return c
}

// LatencyRow is one algorithm's latency distribution under continuous
// arrivals.
type LatencyRow struct {
	Algorithm string
	Requests  int
	// P50, P95 and Max are event-to-completion latencies in seconds.
	P50, P95, Max float64
	// MeanQueue is the average number of requests waiting or in service.
	MeanQueue float64
}

// Latency runs the §5.1 real-time study the paper's batch experiments
// approximate: photo requests arrive continuously (Poisson), the shared
// operator batches them every BatchWindow, the algorithm under test
// schedules each batch onto the cameras, and each camera works through
// its queue with sequence-dependent service times. Reported latencies are
// event-to-completion.
func Latency(cfg LatencyConfig) ([]LatencyRow, error) {
	cfg = cfg.withDefaults()
	algs := []sched.Algorithm{sched.LERFASRFE{}, sched.SRFAE{}, sched.LS{}, sched.Random{}}
	var out []LatencyRow
	for _, alg := range algs {
		row, err := latencyRun(alg, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// latencyRun simulates one algorithm under the arrival process.
func latencyRun(alg sched.Algorithm, cfg LatencyConfig) (LatencyRow, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	devices := workload.CameraIDs(cfg.Cameras)
	estimator := &sched.PTZEstimator{}

	// Per-device execution state.
	availAt := make(map[sched.DeviceID]float64, cfg.Cameras) // seconds
	status := make(map[sched.DeviceID]sched.Status, cfg.Cameras)
	for _, d := range devices {
		status[d] = geo.Orientation{
			Pan:  rng.Float64()*340 - 170,
			Tilt: rng.Float64() * 90,
			Zoom: 1 + rng.Float64()*3,
		}
	}

	// Poisson arrivals.
	type arrival struct {
		at  float64 // seconds
		req *sched.Request
	}
	var arrivals []arrival
	t := 0.0
	id := 0
	horizon := cfg.Duration.Seconds()
	for {
		t += rng.ExpFloat64() / cfg.ArrivalsPerSec
		if t >= horizon {
			break
		}
		id++
		arrivals = append(arrivals, arrival{at: t, req: &sched.Request{
			ID:     id,
			Action: "photo",
			Target: geo.Orientation{
				Pan:  rng.Float64()*340 - 170,
				Tilt: rng.Float64() * 90,
				Zoom: 1 + rng.Float64()*3,
			},
			Candidates: append([]sched.DeviceID(nil), devices...),
		}})
	}
	if len(arrivals) == 0 {
		return LatencyRow{Algorithm: alg.Name()}, nil
	}

	var latencies []float64
	var queueIntegral float64
	window := cfg.BatchWindow.Seconds()

	// Process fixed batch windows, like the shared action operator.
	i := 0
	for batchStart := 0.0; i < len(arrivals); batchStart += window {
		batchEnd := batchStart + window
		var batch []*sched.Request
		byID := make(map[int]float64)
		for i < len(arrivals) && arrivals[i].at < batchEnd {
			batch = append(batch, arrivals[i].req)
			byID[arrivals[i].req.ID] = arrivals[i].at
			i++
		}
		if len(batch) == 0 {
			continue
		}
		// Probe-time busy exclusion, as in the engine's shared operator:
		// devices still working through earlier batches are not
		// candidates (unless everything is busy).
		var free []sched.DeviceID
		for _, d := range devices {
			if availAt[d] <= batchEnd {
				free = append(free, d)
			}
		}
		if len(free) == 0 {
			free = devices
		}
		for _, r := range batch {
			r.Candidates = append([]sched.DeviceID(nil), free...)
		}
		p := sched.NewProblem(batch, free, snapshotStatus(status), estimator)
		a, err := alg.Schedule(p, rng)
		if err != nil {
			return LatencyRow{}, err
		}
		// Execute: each device appends the batch's sequence to its queue.
		for _, d := range devices {
			for _, r := range a.Order[sched.DeviceID(d)] {
				start := math.Max(batchEnd, availAt[d])
				cost, next := estimator.Estimate(r, d, status[d])
				complete := start + cost.Seconds()
				availAt[d] = complete
				status[d] = next
				latencies = append(latencies, complete-byID[r.ID])
				queueIntegral += complete - byID[r.ID]
			}
		}
	}

	span := horizon
	for _, d := range devices {
		if availAt[d] > span {
			span = availAt[d]
		}
	}
	return LatencyRow{
		Algorithm: alg.Name(),
		Requests:  len(latencies),
		P50:       stats.Percentile(latencies, 50),
		P95:       stats.Percentile(latencies, 95),
		Max:       stats.Percentile(latencies, 100),
		MeanQueue: queueIntegral / span, // Little's law: L = λ·W over the span
	}, nil
}

// snapshotStatus copies the status map so scheduling-time estimates do not
// disturb execution state.
func snapshotStatus(in map[sched.DeviceID]sched.Status) map[sched.DeviceID]sched.Status {
	out := make(map[sched.DeviceID]sched.Status, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// PrintLatency renders the continuous-arrival study.
func PrintLatency(w io.Writer, cfg LatencyConfig, rows []LatencyRow) {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "Continuous arrivals — %.1f photo req/s on %d cameras for %s (latency, seconds)\n",
		cfg.ArrivalsPerSec, cfg.Cameras, cfg.Duration)
	fmt.Fprintf(w, "%-12s%10s%10s%10s%10s%12s\n", "Algorithm", "Requests", "P50", "P95", "Max", "MeanQueue")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s%10d%10.2f%10.2f%10.2f%12.2f\n",
			r.Algorithm, r.Requests, r.P50, r.P95, r.Max, r.MeanQueue)
	}
}
