//go:build race

package experiments

// raceEnabled reports whether the race detector is instrumenting this
// build; timing-sensitive experiments slow their virtual clocks to
// compensate for the ~10-20x execution overhead.
const raceEnabled = true
