package experiments

import (
	"strings"
	"testing"
)

// TestQScaleStudySmall runs a miniature query-scaling study and checks its
// central claims: fabric scans are one per epoch at every Q, the naive
// baseline scales with Q, and the coalescing arithmetic adds up.
func TestQScaleStudySmall(t *testing.T) {
	cfg := QScaleConfig{
		Queries: []int{1, 4},
		Devices: 5,
		Epochs:  3,
		Probes:  50,
		Seed:    7,
	}
	points, err := QScaleStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	for _, p := range points {
		if p.FabricScans != int64(cfg.Epochs) {
			t.Errorf("Q=%d: fabric issued %d scans over %d epochs, want one per epoch",
				p.Queries, p.FabricScans, cfg.Epochs)
		}
		if p.NaiveScans != int64(p.Queries*cfg.Epochs) {
			t.Errorf("Q=%d: naive scans = %d, want %d", p.Queries, p.NaiveScans, p.Queries*cfg.Epochs)
		}
		if p.ScansCoalesced != int64((p.Queries-1)*cfg.Epochs) {
			t.Errorf("Q=%d: coalesced = %d, want %d", p.Queries, p.ScansCoalesced, (p.Queries-1)*cfg.Epochs)
		}
		if p.RowNsPerTuple <= 0 || p.ColNsPerTuple <= 0 || p.BruteNsPerTuple <= 0 {
			t.Errorf("Q=%d: non-positive timings: %+v", p.Queries, p)
		}
	}

	var sb strings.Builder
	PrintQScaleStudy(&sb, cfg, points)
	for _, want := range []string{"Query scaling", "fabric scans", "speedup"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("table missing %q:\n%s", want, sb.String())
		}
	}
}
