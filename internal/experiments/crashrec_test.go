package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestCrashRecStudy kills the engine mid-dispatch across several lives of
// one journal and checks the durability contract: the catalog comes back
// every life, no journaled intent is left without an outcome, stale
// intents expire instead of firing late, and duplicate executions are
// counted rather than lost.
func TestCrashRecStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("virtual-minutes experiment")
	}
	cfg := DefaultCrashRecConfig()
	if raceEnabled {
		cfg.ClockScale = 50
		cfg.StaleAfter = 2 * time.Minute
	}
	res, err := CrashRecStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if got := len(res.Lives); got != cfg.Cycles {
		t.Fatalf("lives = %d, want %d", got, cfg.Cycles)
	}
	// The durability guarantees: nothing lost, ever.
	if res.LostOutcomes != 0 {
		t.Errorf("lost outcomes = %d, want 0", res.LostOutcomes)
	}
	if res.LostQueries != 0 {
		t.Errorf("lost queries = %d, want 0", res.LostQueries)
	}
	for _, life := range res.Lives {
		if life.Queries != cfg.Queries {
			t.Errorf("life %d recovered %d queries, want %d", life.Life, life.Queries, cfg.Queries)
		}
	}
	// Crashes interrupted real work: at least one life had to re-dispatch
	// or expire a recovered intent.
	if res.Redispatched+res.Expired == 0 {
		t.Error("no recovered intents re-dispatched or expired; crashes interrupted nothing")
	}
	// Lives after the first replay a journal that is never empty — at
	// minimum the query catalog.
	for _, life := range res.Lives[1:] {
		if life.Recovery.Replayed == 0 {
			t.Errorf("life %d replayed no records", life.Life)
		}
	}
	if res.IntentsObserved == 0 {
		t.Fatal("study observed no intents; vacuous")
	}

	var sb strings.Builder
	PrintCrashRecStudy(&sb, cfg, res)
	for _, want := range []string{"lost outcomes: 0", "lost queries: 0", "crash", "clean close"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("table missing %q:\n%s", want, sb.String())
		}
	}
}
