package experiments

import (
	"io"
	"testing"
	"time"
)

// TestClusterStudySmoke runs a reduced sweep (1 and 4 shards) plus the
// kill-one-shard handoff and fails on any violated invariant: pruned
// query placement, aggregate throughput scaling, and the zero-loss
// handoff audit.
func TestClusterStudySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster study needs wall-clock windows; skipped in -short")
	}
	cfg := DefaultClusterConfig()
	cfg.ShardCounts = []int{1, 4}
	// Keep the default mote count: scaling headroom comes from a single
	// shard being eval-capacity-bound, which needs the full scan width.
	cfg.Warmup = 500 * time.Millisecond
	cfg.Window = 1500 * time.Millisecond
	cfg.HandoffMotes = 6

	res, err := ClusterStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	PrintClusterStudy(io.Discard, cfg, res)
	if t.Failed() {
		PrintClusterStudy(testWriter{t}, cfg, res)
	}
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}
