package experiments

import (
	"io"
	"testing"
)

// The chaos study must hold every fail-operational invariant with all
// fault classes injected into one engine process.
func TestChaosStudySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos study is wall-clock bound")
	}
	cfg := DefaultChaosConfig()
	cfg.ChurnRounds = 2
	res, err := ChaosStudy(cfg)
	if err != nil {
		t.Fatalf("ChaosStudy: %v", err)
	}
	for _, v := range res.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	if res.PanicsContained < int64(cfg.QuarantineAfter) || res.QuarantinedQueries != 1 {
		t.Errorf("panics=%d quarantined=%d, want >=%d and 1",
			res.PanicsContained, res.QuarantinedQueries, cfg.QuarantineAfter)
	}
	if res.DegradedEntries < 1 || res.DegradedExits < 1 {
		t.Errorf("degraded entries/exits = %d/%d, want >=1 each", res.DegradedEntries, res.DegradedExits)
	}
	if res.LostOutcomes != 0 {
		t.Errorf("lost outcomes = %d, want 0", res.LostOutcomes)
	}
	PrintChaosStudy(io.Discard, cfg, res)
}
