package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"aorta/internal/core"
	"aorta/internal/lab"
	"aorta/internal/netsim"
)

// SyncConfig controls the §6.2 device-synchronization study.
type SyncConfig struct {
	// Minutes is the virtual duration of each run (the paper observed a
	// continuously running deployment; 10 gives 100 requests).
	Minutes int
	// Queries is the number of photo queries, one per mote (paper: 10).
	Queries int
	// Cameras is the camera count (paper: 2).
	Cameras int
	// ClockScale speeds up the runs (default 100×).
	ClockScale float64
	// DialFailProb models the real testbed's flaky camera connections —
	// the source of the paper's residual ~10% failures even with
	// synchronization ("zero action failure ... seems to be extremely
	// rare").
	DialFailProb float64
	// Seed drives fault randomness.
	Seed int64
}

// DefaultSyncConfig mirrors the paper's setup.
func DefaultSyncConfig() SyncConfig {
	return SyncConfig{
		Minutes:      10,
		Queries:      10,
		Cameras:      2,
		ClockScale:   100,
		DialFailProb: 0.08,
		Seed:         2005,
	}
}

// SyncRun is the outcome of one run of the study.
type SyncRun struct {
	Synchronized bool
	Requests     int64
	Successes    int64
	FailureRate  float64
	// Failures breaks failures down by kind (connect/timeout, blurred,
	// wrong-position — the paper's observed modes).
	Failures map[core.FailureKind]int64
}

// SyncStudy reproduces the §6.2 empirical study: Queries continuous
// photo() queries, one per mote location, each firing every minute on
// Cameras cameras — once with Aorta's device synchronization (locking +
// probing) and once without. The paper reports >50% action failures
// without synchronization and ≈10% with.
func SyncStudy(cfg SyncConfig) (with, without *SyncRun, err error) {
	with, err = runSync(cfg, true)
	if err != nil {
		return nil, nil, err
	}
	without, err = runSync(cfg, false)
	if err != nil {
		return nil, nil, err
	}
	return with, without, nil
}

func runSync(cfg SyncConfig, synchronized bool) (*SyncRun, error) {
	ecfg := core.Config{}
	if !synchronized {
		ecfg.DisableLocking = true
		ecfg.DisableProbing = true
		// The paper's unsynchronized system had no serialization at all:
		// concurrent requests drove the cameras simultaneously. The engine
		// now runs device sequences in order even without locks, so the
		// ablation flag restores the §6.2 interference behavior.
		ecfg.InterferenceAblation = true
	}
	// The paper's system had no failover: each request fired once on its
	// scheduled camera. Keep the study faithful on both sides.
	ecfg.MaxAttempts = 1
	// Busy-state exclusion is part of probing; with probing on, a camera
	// still serving the previous batch is skipped rather than corrupted.
	ecfg.ScheduleBusyDevices = !synchronized
	// All queries fire on the same minute tick, so their requests belong
	// to one batch. At high clock scales the default 100ms batch window
	// shrinks to ~1ms of wall time — below goroutine-scheduling jitter —
	// and the batch fragments, keeping cameras busy into the next probe.
	// A 2-second window is still tiny against the 60s epoch but immune to
	// wall-clock noise.
	ecfg.BatchWindow = 2 * time.Second

	l, err := lab.New(lab.Config{
		Cameras:    cfg.Cameras,
		Motes:      cfg.Queries,
		ClockScale: cfg.ClockScale,
		Seed:       cfg.Seed,
		CameraLink: netsim.LinkConfig{DialFailProb: cfg.DialFailProb},
		Engine:     ecfg,
	})
	if err != nil {
		return nil, err
	}
	defer l.Close()

	ctx := context.Background()
	if err := l.Engine.Start(ctx); err != nil {
		return nil, err
	}

	// One query per mote: "a photo of Mote i's location was required to be
	// taken by the i-th query every minute".
	for i := 1; i <= cfg.Queries; i++ {
		sql := fmt.Sprintf(`CREATE AQ snap%d AS
			SELECT photo(c.ip, s.loc, "photos/sync")
			FROM sensor s, camera c
			WHERE s.accel_x > 500 AND s.id = "mote-%d" AND coverage(c.id, s.loc)
			EVERY "60s"`, i, i)
		if _, err := l.Engine.Exec(ctx, sql); err != nil {
			return nil, err
		}
	}
	// Continuous events for the whole run.
	total := time.Duration(cfg.Minutes)*time.Minute + 2*time.Minute
	for i := 0; i < cfg.Queries; i++ {
		l.StimulateMote(i, 900, total)
	}

	// Let the virtual minutes elapse (plus slack for the last batch). The
	// scaled clock still advances in wall time, so on heavily loaded or
	// instrumented hosts (e.g. under the race detector) the nominal sleep
	// may under-deliver epochs; poll for the expected request count with a
	// generous extra budget before giving up.
	wall := time.Duration(float64(time.Duration(cfg.Minutes)*time.Minute+30*time.Second) / cfg.ClockScale)
	time.Sleep(wall)
	expected := int64(cfg.Queries * (cfg.Minutes - 1))
	deadline := time.Now().Add(5 * wall)
	for time.Now().Before(deadline) && l.Engine.Metrics().Requests < expected {
		time.Sleep(wall / 10)
	}
	l.Engine.Stop()

	m := l.Engine.Metrics()
	return &SyncRun{
		Synchronized: synchronized,
		Requests:     m.Requests,
		Successes:    m.Successes,
		FailureRate:  m.FailureRate,
		Failures:     m.Failures,
	}, nil
}

// PrintSyncStudy renders the §6.2 comparison.
func PrintSyncStudy(w io.Writer, with, without *SyncRun) {
	fmt.Fprintln(w, "§6.2 — Effects of device synchronization (10 photo queries/min, 2 cameras)")
	fmt.Fprintf(w, "%-22s%10s%10s%12s  %s\n", "Configuration", "Requests", "Failed", "FailRate", "Breakdown")
	for _, r := range []*SyncRun{without, with} {
		name := "with sync"
		if !r.Synchronized {
			name = "without sync"
		}
		failed := r.Requests - r.Successes
		fmt.Fprintf(w, "%-22s%10d%10d%11.0f%%  %v\n",
			name, r.Requests, failed, r.FailureRate*100, formatFailures(r.Failures))
	}
	fmt.Fprintln(w, "paper: >50% failures without synchronization, ≈10% with")
}

func formatFailures(m map[core.FailureKind]int64) string {
	if len(m) == 0 {
		return "none"
	}
	out := ""
	for _, k := range []core.FailureKind{core.FailConnect, core.FailBlurred, core.FailWrongPosition, core.FailStale, core.FailRetried, core.FailNoDevice, core.FailOther} {
		if n := m[k]; n > 0 {
			if out != "" {
				out += " "
			}
			out += fmt.Sprintf("%s=%d", k, n)
		}
	}
	return out
}
