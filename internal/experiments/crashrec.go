package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"aorta/internal/core"
	"aorta/internal/lab"
	"aorta/internal/wal"
)

// CrashRecConfig controls the crash fault-injection study: photo queries
// on the simulated lab while the engine process is repeatedly "killed"
// (its journal severed without sync, Crash) and restarted over the same
// journal directory. The device farm survives every crash — only the
// engine dies — so recovery is measured against a live, answering world.
type CrashRecConfig struct {
	// Cycles is the number of engine lives. Every life but the last ends
	// in a crash with work in flight; the last shuts down cleanly.
	Cycles int
	// Queries is the number of photo queries, one per mote.
	Queries int
	// Cameras is the camera count.
	Cameras int
	// ClockScale speeds up virtual time.
	ClockScale float64
	// Seed drives device randomness.
	Seed int64
	// SegmentBytes is the journal rotation threshold; the default is small
	// enough that compaction (snapshot + old-segment deletion) happens
	// mid-study, so replay-from-snapshot is exercised, not just replay
	// -from-genesis.
	SegmentBytes int64
	// StaleAfter is the virtual deadline attached to every action intent.
	// Before the last life the study idles past it, so that life recovers
	// only stale intents and must close them FailExpired instead of
	// firing late actions.
	StaleAfter time.Duration
	// Dir is the journal directory; empty means a fresh temp dir.
	Dir string
}

// DefaultCrashRecConfig sizes the study per the durability acceptance
// bar: five kill/restart cycles, each interrupting live dispatch work.
func DefaultCrashRecConfig() CrashRecConfig {
	return CrashRecConfig{
		Cycles:       5,
		Queries:      6,
		Cameras:      2,
		ClockScale:   150,
		Seed:         2005,
		SegmentBytes: 64 << 10,
		StaleAfter:   5 * time.Minute,
	}
}

// CrashRecLife is one engine life: what it recovered at birth and how it
// ended.
type CrashRecLife struct {
	Life     int
	Recovery core.RecoveryStats
	// Queries is the catalog size after recovery; every life must see the
	// full set without any client re-issuing statements.
	Queries int
	// Outcomes and Successes count completions observed during this life
	// (including FailExpired closures from recovery itself).
	Outcomes  int
	Successes int
	// PendingAtCrash is the journal-pending intent count sampled just
	// before the journal was severed (0 for the clean final life).
	PendingAtCrash int
	// Crashed distinguishes a severed journal from the final clean close.
	Crashed bool
	// ExpiryGap marks a life entered after idling past StaleAfter, so its
	// recovered intents were all stale.
	ExpiryGap bool
}

// CrashRecResult aggregates the study.
type CrashRecResult struct {
	Lives []CrashRecLife
	// IntentsObserved is the number of distinct intent dedup keys whose
	// outcomes the study saw across all lives.
	IntentsObserved int
	// Redispatched and Expired total the per-life recovery counters.
	Redispatched int
	Expired      int
	// DuplicateExecutions counts successful executions beyond the first
	// per dedup key: the at-least-once cost paid when a crash lands
	// between execution and the outcome record. Reported, never lost.
	DuplicateExecutions int
	// LostOutcomes is the number of journaled intents with no journaled
	// outcome after the final clean shutdown — the post-mortem replay of
	// the journal itself. The durability guarantee demands 0.
	LostOutcomes int
	// LostQueries counts lives that recovered fewer queries than created.
	// The guarantee demands 0.
	LostQueries int
	// Compactions, JournalBytes and JournalSegments describe the journal
	// after the final shutdown.
	Compactions     int64
	JournalBytes    int64
	JournalSegments int
}

// crashRecBatchWindow matches the churn study: at high clock scales the
// default batch window is below goroutine-scheduling jitter.
const crashRecBatchWindow = 2 * time.Second

// CrashRecStudy runs the crash/restart cycles and verifies the journal's
// contract from the outside: catalog recovered every life, interrupted
// intents re-dispatched or expired, no journaled intent left without an
// outcome, duplicates counted rather than silently absorbed.
func CrashRecStudy(cfg CrashRecConfig) (*CrashRecResult, error) {
	dir := cfg.Dir
	if dir == "" {
		d, err := os.MkdirTemp("", "aorta-crashrec-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(d)
		dir = d
	}
	wopts := wal.Options{SegmentBytes: cfg.SegmentBytes}
	ecfg := func(j *wal.Journal) core.Config {
		return core.Config{
			// One attempt and no availability machinery: the study isolates
			// the journal's recovery semantics from failover and probing.
			MaxAttempts:      1,
			DisableProbing:   true,
			DialBackoff:      -1,
			BreakerThreshold: -1,
			DisableLiveness:  true,
			BatchWindow:      crashRecBatchWindow,
			StaleAfter:       cfg.StaleAfter,
			Journal:          j,
		}
	}

	j, err := wal.Open(dir, wopts)
	if err != nil {
		return nil, err
	}
	l, err := lab.New(lab.Config{
		Cameras:    cfg.Cameras,
		Motes:      cfg.Queries,
		ClockScale: cfg.ClockScale,
		Seed:       cfg.Seed,
		Engine:     ecfg(j),
	})
	if err != nil {
		j.Crash()
		return nil, err
	}
	defer l.Close()

	// Cross-life observer state: the experiment survives every "crash", so
	// it can see duplicate executions the engine itself cannot.
	var (
		obsMu     sync.Mutex
		successes = map[string]int{} // dedup key → successful executions
		observed  = map[string]bool{}
	)

	res := &CrashRecResult{}
	ctx := context.Background()
	virtualEpoch := 60 * time.Second
	epochWall := time.Duration(float64(virtualEpoch) / cfg.ClockScale)
	stimDur := time.Duration(cfg.Cycles+2) * 10 * virtualEpoch

	for life := 1; life <= cfg.Cycles; life++ {
		eng := l.Engine
		rec := CrashRecLife{Life: life}

		// Subscribe before Recover so the FailExpired closures recovery
		// journals are observed too.
		outcomeCh := eng.SubscribeOutcomes(8192)
		var lifeOutcomes, lifeSuccesses int
		var obsWG sync.WaitGroup
		obsDone := make(chan struct{})
		obsWG.Add(1)
		go func() {
			defer obsWG.Done()
			record := func(o *core.Outcome) {
				key := core.IntentDedupKey(o.Query, o.EventKey, o.Deadline)
				obsMu.Lock()
				observed[key] = true
				lifeOutcomes++
				if o.OK() {
					successes[key]++
					lifeSuccesses++
				}
				obsMu.Unlock()
			}
			for {
				select {
				case o := <-outcomeCh:
					record(o)
				case <-obsDone:
					for {
						select {
						case o := <-outcomeCh:
							record(o)
						default:
							return
						}
					}
				}
			}
		}()

		stats, err := eng.Recover(ctx)
		if err != nil {
			return nil, fmt.Errorf("life %d: recover: %w", life, err)
		}
		rec.Recovery = stats
		res.Redispatched += stats.Redispatched
		res.Expired += stats.Expired
		if err := eng.Start(ctx); err != nil {
			return nil, fmt.Errorf("life %d: start: %w", life, err)
		}

		if life == 1 {
			for i := 1; i <= cfg.Queries; i++ {
				sql := fmt.Sprintf(`CREATE AQ crash%d AS
					SELECT photo(c.ip, s.loc, "photos/crashrec")
					FROM sensor s, camera c
					WHERE s.accel_x > 500 AND s.id = "mote-%d" AND coverage(c.id, s.loc)
					EVERY "60s"`, i, i)
				if _, err := eng.Exec(ctx, sql); err != nil {
					return nil, fmt.Errorf("life 1: %w", err)
				}
			}
		}
		result, err := eng.Exec(ctx, "SHOW QUERIES")
		if err != nil {
			return nil, fmt.Errorf("life %d: show queries: %w", life, err)
		}
		rec.Queries = len(result.Queries)
		if rec.Queries < cfg.Queries {
			res.LostQueries++
		}

		for i := 0; i < cfg.Queries; i++ {
			l.StimulateMote(i, 900, stimDur)
		}

		// Let the life do real work: wait for at least one epoch's worth of
		// fresh successes, so a crash always interrupts a warm engine.
		waitUntil := time.Now().Add(20*epochWall + 2*time.Second)
		for time.Now().Before(waitUntil) {
			obsMu.Lock()
			n := lifeSuccesses
			obsMu.Unlock()
			if n >= cfg.Queries {
				break
			}
			time.Sleep(time.Millisecond)
		}

		if life < cfg.Cycles {
			// Catch the engine with journaled intents whose outcomes have
			// not landed, then sever the journal without sync — the kill.
			crashBy := time.Now().Add(5*epochWall + 2*time.Second)
			for time.Now().Before(crashBy) {
				if n := eng.JournalPending(); n > 0 {
					rec.PendingAtCrash = n
					break
				}
				time.Sleep(200 * time.Microsecond)
			}
			res.Compactions += j.Stats().Compactions
			j.Crash()
			rec.Crashed = true
			eng.Stop()
		} else {
			// Final life: quiesce, then shut down cleanly.
			quiesceBy := time.Now().Add(20*epochWall + 5*time.Second)
			for time.Now().Before(quiesceBy) {
				if eng.JournalPending() == 0 && eng.InFlight() == 0 {
					break
				}
				time.Sleep(time.Millisecond)
			}
			eng.Stop()
			res.Compactions += j.Stats().Compactions
			if err := j.Close(); err != nil {
				return nil, fmt.Errorf("life %d: close journal: %w", life, err)
			}
		}
		close(obsDone)
		obsWG.Wait()
		rec.Outcomes = lifeOutcomes
		rec.Successes = lifeSuccesses
		res.Lives = append(res.Lives, rec)

		if life < cfg.Cycles {
			if life == cfg.Cycles-1 {
				// Idle past every pending intent's deadline so the last
				// life exercises the FailExpired path.
				res.Lives[len(res.Lives)-1].ExpiryGap = true
				time.Sleep(time.Duration(1.5 * float64(cfg.StaleAfter) / cfg.ClockScale))
			}
			j, err = wal.Open(dir, wopts)
			if err != nil {
				return nil, fmt.Errorf("life %d: reopen journal: %w", life+1, err)
			}
			if _, err := l.NewEngine(ecfg(j)); err != nil {
				j.Crash()
				return nil, fmt.Errorf("life %d: new engine: %w", life+1, err)
			}
		}
	}

	// Post-mortem: replay the journal the way the next life would and
	// count intents that never got an outcome. After a clean shutdown the
	// durability contract demands zero.
	pm, err := wal.Open(dir, wopts)
	if err != nil {
		return nil, fmt.Errorf("post-mortem open: %w", err)
	}
	defer pm.Close()
	pending := map[string]bool{}
	err = pm.Replay(func(rec wal.Record) error {
		switch rec.Kind {
		case wal.KindSnapshot:
			var snap wal.Snapshot
			if err := rec.Decode(&snap); err != nil {
				return err
			}
			pending = map[string]bool{}
			for _, ir := range snap.Pending {
				pending[ir.DedupKey] = true
			}
		case wal.KindIntent:
			var ir wal.IntentRecord
			if err := rec.Decode(&ir); err != nil {
				return err
			}
			pending[ir.DedupKey] = true
		case wal.KindOutcome:
			var or wal.OutcomeRecord
			if err := rec.Decode(&or); err != nil {
				return err
			}
			delete(pending, or.DedupKey)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("post-mortem replay: %w", err)
	}
	res.LostOutcomes = len(pending)
	st := pm.Stats()
	res.JournalBytes = st.Bytes
	res.JournalSegments = st.Segments

	obsMu.Lock()
	res.IntentsObserved = len(observed)
	for _, n := range successes {
		if n > 1 {
			res.DuplicateExecutions += n - 1
		}
	}
	obsMu.Unlock()
	sort.Slice(res.Lives, func(i, k int) bool { return res.Lives[i].Life < res.Lives[k].Life })
	return res, nil
}

// PrintCrashRecStudy renders the per-life table and the totals.
func PrintCrashRecStudy(w io.Writer, cfg CrashRecConfig, res *CrashRecResult) {
	fmt.Fprintf(w, "Crash recovery — %d engine lives over one journal (%d queries, StaleAfter %v virtual)\n",
		cfg.Cycles, cfg.Queries, cfg.StaleAfter)
	fmt.Fprintf(w, "%-5s%9s%9s%9s%9s%10s%10s%11s%12s  %s\n",
		"Life", "Replayed", "Queries", "Redisp", "Expired", "Outcomes", "Pending", "Replay", "Journal", "End")
	for _, life := range res.Lives {
		end := "clean close"
		if life.Crashed {
			end = "crash"
			if life.ExpiryGap {
				end = "crash + idle past deadline"
			}
		}
		fmt.Fprintf(w, "%-5d%9d%9d%9d%9d%10d%10d%11s%12s  %s\n",
			life.Life, life.Recovery.Replayed, life.Queries,
			life.Recovery.Redispatched, life.Recovery.Expired,
			life.Outcomes, life.PendingAtCrash,
			life.Recovery.ReplayLatency.Round(100*time.Microsecond),
			formatBytes(life.Recovery.JournalBytes), end)
	}
	fmt.Fprintf(w, "intents observed: %d, re-dispatched: %d, expired: %d, duplicate executions: %d\n",
		res.IntentsObserved, res.Redispatched, res.Expired, res.DuplicateExecutions)
	fmt.Fprintf(w, "lost outcomes: %d (want 0), lost queries: %d (want 0)\n",
		res.LostOutcomes, res.LostQueries)
	fmt.Fprintf(w, "final journal: %s in %d segment(s)\n",
		formatBytes(res.JournalBytes), res.JournalSegments)
}

// formatBytes renders a byte count compactly.
func formatBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
