package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"time"

	"aorta/internal/device/camera"
	"aorta/internal/geo"
	"aorta/internal/profile"
	"aorta/internal/stats"
	"aorta/internal/vclock"
)

// CostModelRow is one trial of the cost-model validation: a photo()
// action from a random head position to a random target, cost estimated
// by the action profile vs measured on the live camera emulator.
type CostModelRow struct {
	From, To  geo.Orientation
	Estimated time.Duration
	Measured  time.Duration
	// RelError is |measured-estimated| / measured.
	RelError float64
}

// CostModelSummary aggregates the validation trials.
type CostModelSummary struct {
	Trials       []CostModelRow
	MeanRelError float64
	MaxRelError  float64
}

// CostModel reproduces the §2.3 prose claim that the profile-driven cost
// model is "reasonably accurate": it estimates photo() costs with
// profile.EstimateCost and measures the same actions end to end on the
// camera emulator under a scaled clock.
func CostModel(trials int, seed int64) (*CostModelSummary, error) {
	reg, err := profile.DefaultRegistry()
	if err != nil {
		return nil, err
	}
	photo, _ := reg.Action(profile.ActionPhoto)
	costs, _ := reg.Costs(profile.DeviceCamera)

	// A modest scale keeps per-sleep wall overhead (≈0.1 ms) small
	// relative to measured durations (0.31 s+ virtual).
	clk := vclock.NewScaled(50)
	cam := camera.New("camera-1", geo.DefaultMount(geo.Point{Z: 3}, 0), clk)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(seed))

	summary := &CostModelSummary{}
	var relErrs []float64
	for i := 0; i < trials; i++ {
		from := geo.Orientation{Pan: rng.Float64()*340 - 170, Tilt: rng.Float64() * 90, Zoom: 1 + rng.Float64()*3}
		to := geo.Orientation{Pan: rng.Float64()*340 - 170, Tilt: rng.Float64() * 90, Zoom: 1 + rng.Float64()*3}
		cam.SetHead(from)

		pan, tilt := geo.AngularDist(from, to)
		est, err := photo.EstimateCost(costs, profile.Params{
			"pan_delta":  pan,
			"tilt_delta": tilt,
			"zoom_delta": math.Abs(from.Zoom - to.Zoom),
		})
		if err != nil {
			return nil, err
		}

		start := clk.Now()
		moveArgs, _ := json.Marshal(camera.MoveArgs{Pan: to.Pan, Tilt: to.Tilt, Zoom: to.Zoom})
		if _, err := cam.Exec(ctx, "move", moveArgs); err != nil {
			return nil, fmt.Errorf("experiments: costmodel move: %w", err)
		}
		if _, err := cam.Exec(ctx, "capture", nil); err != nil {
			return nil, fmt.Errorf("experiments: costmodel capture: %w", err)
		}
		if _, err := cam.Exec(ctx, "store", nil); err != nil {
			return nil, fmt.Errorf("experiments: costmodel store: %w", err)
		}
		// The emulator path does not dial a network connection, so
		// exclude the profile's connect charge from the comparison.
		connectCost, _ := costs.Op("connect")
		measured := clk.Since(start) + time.Duration(connectCost.FixedMS*float64(time.Millisecond))

		rel := math.Abs(measured.Seconds()-est.Seconds()) / measured.Seconds()
		relErrs = append(relErrs, rel)
		summary.Trials = append(summary.Trials, CostModelRow{
			From: from, To: to, Estimated: est, Measured: measured, RelError: rel,
		})
	}
	summary.MeanRelError = stats.Mean(relErrs)
	summary.MaxRelError = stats.Percentile(relErrs, 100)
	return summary, nil
}
