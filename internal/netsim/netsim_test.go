package netsim

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"aorta/internal/vclock"
)

func newNet() *Network {
	return NewNetwork(vclock.Real{}, 1)
}

// echoServe accepts one connection and echoes everything back.
func echoServe(t *testing.T, l net.Listener, wg *sync.WaitGroup) {
	t.Helper()
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		_, _ = io.Copy(conn, conn)
	}()
}

func TestDialAndExchange(t *testing.T) {
	n := newNet()
	l, err := n.Listen("camera-1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var wg sync.WaitGroup
	echoServe(t, l, &wg)

	conn, err := n.Dial(context.Background(), "camera-1")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello aorta")
	go func() {
		_, _ = conn.Write(msg)
	}()
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(msg) {
		t.Fatalf("echoed %q, want %q", buf, msg)
	}
	conn.Close()
	wg.Wait()
}

func TestDialNoListener(t *testing.T) {
	n := newNet()
	_, err := n.Dial(context.Background(), "ghost")
	if !errors.Is(err, ErrNoListener) {
		t.Fatalf("err = %v, want ErrNoListener", err)
	}
}

func TestDuplicateListen(t *testing.T) {
	n := newNet()
	l, err := n.Listen("mote-1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := n.Listen("mote-1"); err == nil {
		t.Fatal("duplicate Listen succeeded")
	}
}

func TestListenAfterClose(t *testing.T) {
	n := newNet()
	l, err := n.Listen("mote-1")
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := n.Listen("mote-1")
	if err != nil {
		t.Fatalf("Listen after Close: %v", err)
	}
	l2.Close()
}

func TestAcceptAfterCloseReturnsErrClosed(t *testing.T) {
	n := newNet()
	l, _ := n.Listen("mote-1")
	l.Close()
	if _, err := l.Accept(); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("err = %v, want net.ErrClosed", err)
	}
}

func TestLinkDown(t *testing.T) {
	n := newNet()
	l, _ := n.Listen("phone-1")
	defer l.Close()
	n.SetLink("phone-1", LinkConfig{Down: true})
	if _, err := n.Dial(context.Background(), "phone-1"); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("err = %v, want ErrLinkDown", err)
	}
	n.SetLink("phone-1", LinkConfig{})
	var wg sync.WaitGroup
	echoServe(t, l, &wg)
	conn, err := n.Dial(context.Background(), "phone-1")
	if err != nil {
		t.Fatalf("dial after link restored: %v", err)
	}
	conn.Close()
	wg.Wait()
}

func TestBlackholeRespectsContext(t *testing.T) {
	n := newNet()
	l, _ := n.Listen("mote-2")
	defer l.Close()
	n.SetLink("mote-2", LinkConfig{Blackhole: true})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := n.Dial(ctx, "mote-2")
	if err == nil {
		t.Fatal("blackhole dial succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("blackhole dial did not return promptly after deadline")
	}
}

func TestDialFailProbAlwaysFails(t *testing.T) {
	n := newNet()
	l, _ := n.Listen("mote-3")
	defer l.Close()
	n.SetLink("mote-3", LinkConfig{DialFailProb: 1.0})
	for i := 0; i < 5; i++ {
		if _, err := n.Dial(context.Background(), "mote-3"); !errors.Is(err, ErrDialFailed) {
			t.Fatalf("dial %d: err = %v, want ErrDialFailed", i, err)
		}
	}
}

func TestDialFailProbStatistical(t *testing.T) {
	n := newNet()
	l, _ := n.Listen("mote-4")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // persistent acceptor
		defer wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()
	n.SetLink("mote-4", LinkConfig{DialFailProb: 0.5})
	fails := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		conn, err := n.Dial(context.Background(), "mote-4")
		if err != nil {
			fails++
			continue
		}
		conn.Close()
	}
	l.Close()
	wg.Wait()
	if fails < trials/4 || fails > trials*3/4 {
		t.Fatalf("fails = %d of %d with p=0.5; outside [25%%, 75%%]", fails, trials)
	}
}

func TestDialLatencyApplied(t *testing.T) {
	n := newNet()
	l, _ := n.Listen("camera-2")
	defer l.Close()
	var wg sync.WaitGroup
	echoServe(t, l, &wg)
	n.SetLink("camera-2", LinkConfig{Latency: 30 * time.Millisecond})
	start := time.Now()
	conn, err := n.Dial(context.Background(), "camera-2")
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("dial took %v, want >= ~30ms latency", elapsed)
	}
	conn.Close()
	wg.Wait()
}

func TestDialLatencyScaledClock(t *testing.T) {
	// With a 1000x clock, a 10s link latency should cost ~10ms wall time.
	n := NewNetwork(vclock.NewScaled(1000), 1)
	l, _ := n.Listen("camera-3")
	defer l.Close()
	var wg sync.WaitGroup
	echoServe(t, l, &wg)
	n.SetLink("camera-3", LinkConfig{Latency: 10 * time.Second})
	start := time.Now()
	conn, err := n.Dial(context.Background(), "camera-3")
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("dial took %v wall time; scaled clock not applied", elapsed)
	}
	conn.Close()
	wg.Wait()
}

func TestConnDeadline(t *testing.T) {
	n := newNet()
	l, _ := n.Listen("camera-4")
	defer l.Close()
	wg := sync.WaitGroup{}
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := l.Accept()
		if err != nil {
			return
		}
		// Hold the connection open without writing.
		time.Sleep(100 * time.Millisecond)
		conn.Close()
	}()
	conn, err := n.Dial(context.Background(), "camera-4")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.SetReadDeadline(time.Now().Add(10 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	_, err = conn.Read(buf)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("read err = %v, want timeout", err)
	}
	wg.Wait()
}

// discardServe accepts one connection and drains it until EOF, reporting
// how many bytes arrived on done.
func discardServe(t *testing.T, l net.Listener, done chan<- int64) {
	t.Helper()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			done <- -1
			return
		}
		defer conn.Close()
		n, _ := io.Copy(io.Discard, conn)
		done <- n
	}()
}

func TestResetAfterBytes(t *testing.T) {
	n := newNet()
	l, _ := n.Listen("mote-5")
	defer l.Close()
	done := make(chan int64, 1)
	discardServe(t, l, done)
	n.SetLink("mote-5", LinkConfig{ResetAfterBytes: 8})

	conn, err := n.Dial(context.Background(), "mote-5")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// The budget is checked before each write, so the first write delivers
	// even though it lands exactly on the limit.
	if _, err := conn.Write(make([]byte, 8)); err != nil {
		t.Fatalf("write within budget: %v", err)
	}
	if _, err := conn.Write([]byte{'x'}); !errors.Is(err, ErrConnReset) {
		t.Fatalf("write past budget: err = %v, want ErrConnReset", err)
	}
	// The reset severed the transport, not just the one write.
	if _, err := conn.Write([]byte{'x'}); err == nil {
		t.Fatal("write after reset succeeded")
	}
	if got := <-done; got != 8 {
		t.Fatalf("peer received %d bytes, want 8", got)
	}
}

func TestWriteErrProbAlwaysFails(t *testing.T) {
	n := newNet()
	l, _ := n.Listen("mote-6")
	defer l.Close()
	done := make(chan int64, 1)
	discardServe(t, l, done)
	n.SetLink("mote-6", LinkConfig{WriteErrProb: 1.0})

	conn, err := n.Dial(context.Background(), "mote-6")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("doomed")); !errors.Is(err, ErrConnReset) {
		t.Fatalf("err = %v, want ErrConnReset", err)
	}
	if got := <-done; got != 0 {
		t.Fatalf("peer received %d bytes, want 0", got)
	}
}

// TestWriteErrProbConcurrent exercises the shared fault RNG from many
// connections at once; run with -race it proves roll() serialises access.
func TestWriteErrProbConcurrent(t *testing.T) {
	n := newNet()
	l, _ := n.Listen("mote-7")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // persistent drain acceptor
		defer wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				_, _ = io.Copy(io.Discard, conn)
			}()
		}
	}()
	n.SetLink("mote-7", LinkConfig{WriteErrProb: 0.5})

	const conns = 16
	resets := make(chan int, conns)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := n.Dial(context.Background(), "mote-7")
			if err != nil {
				resets <- 0
				return
			}
			defer conn.Close()
			for w := 0; w < 20; w++ {
				if _, err := conn.Write([]byte("ping")); err != nil {
					resets <- 1
					return
				}
			}
			resets <- 0
		}()
	}
	total := 0
	for i := 0; i < conns; i++ {
		total += <-resets
	}
	l.Close()
	wg.Wait()
	// With p=0.5 per write and 20 writes per conn, every conn resetting is
	// a near certainty; a handful is all the assertion needs.
	if total < conns/2 {
		t.Fatalf("only %d of %d connections saw an injected reset", total, conns)
	}
}

func TestTCPDialer(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	defer l.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := l.Accept()
		if err != nil {
			return
		}
		conn.Close()
	}()
	d := &TCP{Timeout: time.Second}
	conn, err := d.Dial(context.Background(), l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	wg.Wait()
}

func TestAddrStrings(t *testing.T) {
	n := newNet()
	l, _ := n.Listen("camera-9")
	defer l.Close()
	if l.Addr().String() != "camera-9" {
		t.Errorf("Addr = %q", l.Addr().String())
	}
	if l.Addr().Network() != "aorta-sim" {
		t.Errorf("Network = %q", l.Addr().Network())
	}
}

// Propagation delay must not occupy the sender: many writes complete
// immediately and all deliver, in order, once the delay elapses.
func TestPropagationDelayNonBlocking(t *testing.T) {
	clk := vclock.NewManual(time.Unix(0, 0))
	n := NewNetwork(clk, 1)
	l, err := n.Listen("dev")
	if err != nil {
		t.Fatal(err)
	}
	n.SetLink("dev", LinkConfig{PropagationDelay: time.Second})

	var got []byte
	var mu sync.Mutex
	received := make(chan struct{}, 16)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 64)
		for {
			k, err := conn.Read(buf)
			if k > 0 {
				mu.Lock()
				got = append(got, buf[:k]...)
				mu.Unlock()
				received <- struct{}{}
			}
			if err != nil {
				return
			}
		}
	}()

	// Dial sleeps the propagation delay on the manual clock; drive it.
	dialDone := make(chan net.Conn, 1)
	go func() {
		conn, err := n.Dial(context.Background(), "dev")
		if err != nil {
			t.Error(err)
			dialDone <- nil
			return
		}
		dialDone <- conn
	}()
	awaitWaiters(t, clk, 1)
	clk.Advance(time.Second)
	conn := <-dialDone
	if conn == nil {
		t.FailNow()
	}
	defer conn.Close()

	// Three writes complete without any clock advancement: the sender is
	// not occupied by the delay.
	for _, s := range []string{"aa", "bb", "cc"} {
		if _, err := conn.Write([]byte(s)); err != nil {
			t.Fatalf("write %q: %v", s, err)
		}
	}
	select {
	case <-received:
		t.Fatal("bytes arrived before the propagation delay elapsed")
	case <-time.After(20 * time.Millisecond):
	}

	// Advance past the due time: everything arrives, in write order.
	awaitWaiters(t, clk, 1) // the pump parked on the first chunk
	clk.Advance(2 * time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		s := string(got)
		mu.Unlock()
		if s == "aabbcc" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("delivered %q, want %q", s, "aabbcc")
		}
		time.Sleep(time.Millisecond)
	}
	conn.Close()
	wg.Wait()
}

// awaitWaiters polls until at least k goroutines are parked on the
// manual clock.
func awaitWaiters(t *testing.T, clk *vclock.Manual, k int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for clk.Waiters() < k {
		if time.Now().After(deadline) {
			t.Fatalf("only %d clock waiters", clk.Waiters())
		}
		time.Sleep(time.Millisecond)
	}
}

// Closing a connection with queued propagation chunks terminates the
// pump and fails subsequent writes.
func TestPropagationDelayCloseDropsQueue(t *testing.T) {
	clk := vclock.NewManual(time.Unix(0, 0))
	n := NewNetwork(clk, 1)
	l, err := n.Listen("dev")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := l.Accept()
		if err == nil {
			defer conn.Close()
			_, _ = io.Copy(io.Discard, conn)
		}
	}()
	dialDone := make(chan net.Conn, 1)
	go func() {
		conn, _ := n.Dial(context.Background(), "dev")
		dialDone <- conn
	}()
	conn := <-dialDone
	if conn == nil {
		t.Fatal("dial failed")
	}
	n.SetLink("dev", LinkConfig{PropagationDelay: time.Hour})
	if _, err := conn.Write([]byte("queued")); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if _, err := conn.Write([]byte("after close")); err == nil {
		t.Fatal("write succeeded on a closed delayed connection")
	}
	wg.Wait()
}
