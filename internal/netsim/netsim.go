// Package netsim provides the stream transports that connect the Aorta
// communication layer to devices.
//
// Two implementations are provided behind one Dialer interface: TCP for
// real deployments (cmd/aortad, cmd/devfarm) and an in-memory simulated
// network with configurable per-link latency, dial-failure probability,
// outright down links and black holes (dials that hang until the caller's
// timeout fires — how an unresponsive mote looks to the prober, paper §4).
package netsim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"aorta/internal/vclock"
)

// Dialer opens stream connections to device addresses.
type Dialer interface {
	Dial(ctx context.Context, addr string) (net.Conn, error)
}

// Errors returned by the simulated network.
var (
	ErrNoListener = errors.New("netsim: no listener at address")
	ErrLinkDown   = errors.New("netsim: link is down")
	ErrDialFailed = errors.New("netsim: dial failed (injected)")
	// ErrConnReset is returned by writes on a connection severed mid-stream
	// by ResetAfterBytes or WriteErrProb — how a device crash mid-exchange
	// looks to the engine: the dial succeeded, then the stream died.
	ErrConnReset = errors.New("netsim: connection reset (injected)")
)

// TCP dials real TCP connections.
type TCP struct {
	// Timeout bounds connection establishment when the context has no
	// earlier deadline. Zero means no transport-level timeout.
	Timeout time.Duration
}

var _ Dialer = (*TCP)(nil)

// Dial implements Dialer.
func (t *TCP) Dial(ctx context.Context, addr string) (net.Conn, error) {
	d := net.Dialer{Timeout: t.Timeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netsim: dial tcp %s: %w", addr, err)
	}
	return conn, nil
}

// LinkConfig describes the simulated properties of one device link.
type LinkConfig struct {
	// Latency is added to connection establishment and to every write.
	Latency time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter).
	Jitter time.Duration
	// DialFailProb is the probability that a dial fails immediately —
	// models the lossy radio channel of the motes.
	DialFailProb float64
	// Down refuses all dials, as if the device left the network.
	Down bool
	// Blackhole makes dials hang until the caller's context expires, as an
	// unresponsive device does. The prober's TIMEOUT handling is tested
	// against this.
	Blackhole bool
	// ResetAfterBytes severs a connection mid-stream: once a conn has
	// written this many bytes, its next write closes the transport and
	// returns ErrConnReset. The budget is per connection and per direction,
	// and checked before each write, so one write may overshoot it. Zero
	// disables.
	ResetAfterBytes int64
	// WriteErrProb is the per-write probability that the write fails with
	// ErrConnReset and closes the transport — a lossy stream rather than a
	// byte-counted one.
	WriteErrProb float64
	// PropagationDelay models long-haul latency without occupying the
	// sender: writes return immediately and the bytes are delivered after
	// the delay by a per-connection pump, so many frames can be in flight
	// at once. Latency, by contrast, blocks the writer for the duration —
	// a serialization/bandwidth model. When PropagationDelay is set,
	// Jitter widens the propagation delay instead of the occupancy
	// latency. Delivery order is preserved per connection.
	PropagationDelay time.Duration
}

// Network is an in-memory network of listeners with per-link fault
// injection. It is safe for concurrent use.
type Network struct {
	clk vclock.Clock

	mu        sync.Mutex
	rng       *rand.Rand
	listeners map[string]*memListener
	links     map[string]LinkConfig
}

var _ Dialer = (*Network)(nil)

// NewNetwork returns an empty simulated network. Random fault decisions are
// drawn from seed so tests are reproducible; time-based behaviour (latency)
// uses clk.
func NewNetwork(clk vclock.Clock, seed int64) *Network {
	return &Network{
		clk:       clk,
		rng:       rand.New(rand.NewSource(seed)),
		listeners: make(map[string]*memListener),
		links:     make(map[string]LinkConfig),
	}
}

// SetLink configures fault injection for addr. It may be called at any
// time; existing connections are unaffected.
func (n *Network) SetLink(addr string, cfg LinkConfig) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[addr] = cfg
}

// Link returns the current configuration for addr.
func (n *Network) Link(addr string) LinkConfig {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.links[addr]
}

// Listen registers a listener at addr.
func (n *Network) Listen(addr string) (net.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.listeners[addr]; dup {
		return nil, fmt.Errorf("netsim: address %s already in use", addr)
	}
	l := &memListener{
		net:    n,
		addr:   addr,
		accept: make(chan net.Conn),
		done:   make(chan struct{}),
	}
	n.listeners[addr] = l
	return l, nil
}

// Dial implements Dialer.
func (n *Network) Dial(ctx context.Context, addr string) (net.Conn, error) {
	n.mu.Lock()
	cfg := n.links[addr]
	l := n.listeners[addr]
	var roll float64
	if cfg.DialFailProb > 0 {
		roll = n.rng.Float64()
	}
	n.mu.Unlock()

	if cfg.Blackhole {
		<-ctx.Done()
		return nil, fmt.Errorf("netsim: dial %s: %w", addr, ctx.Err())
	}
	if cfg.Down {
		return nil, fmt.Errorf("netsim: dial %s: %w", addr, ErrLinkDown)
	}
	if cfg.DialFailProb > 0 && roll < cfg.DialFailProb {
		return nil, fmt.Errorf("netsim: dial %s: %w", addr, ErrDialFailed)
	}
	if d := n.linkDelay(cfg) + cfg.PropagationDelay; d > 0 {
		if err := vclock.SleepCtx(ctx, n.clk, d); err != nil {
			return nil, fmt.Errorf("netsim: dial %s: %w", addr, err)
		}
	}
	if l == nil {
		return nil, fmt.Errorf("netsim: dial %s: %w", addr, ErrNoListener)
	}

	client, server := net.Pipe()
	wrapped := newLatConn(server, n, addr)
	select {
	case l.accept <- wrapped:
		return newLatConn(client, n, addr), nil
	case <-l.done:
		client.Close()
		server.Close()
		return nil, fmt.Errorf("netsim: dial %s: %w", addr, ErrNoListener)
	case <-ctx.Done():
		client.Close()
		server.Close()
		return nil, fmt.Errorf("netsim: dial %s: %w", addr, ctx.Err())
	}
}

// roll draws one uniform [0,1) sample under the network lock, so
// concurrent connections share the seeded source without racing it.
func (n *Network) roll() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rng.Float64()
}

func (n *Network) linkDelay(cfg LinkConfig) time.Duration {
	d := cfg.Latency
	if cfg.Jitter > 0 {
		n.mu.Lock()
		d += time.Duration(n.rng.Int63n(int64(cfg.Jitter)))
		n.mu.Unlock()
	}
	return d
}

func (n *Network) removeListener(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.listeners, addr)
}

// memListener implements net.Listener over the simulated network.
type memListener struct {
	net    *Network
	addr   string
	accept chan net.Conn

	closeOnce sync.Once
	done      chan struct{}
}

var _ net.Listener = (*memListener)(nil)

// Accept implements net.Listener.
func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener.
func (l *memListener) Close() error {
	l.closeOnce.Do(func() {
		close(l.done)
		l.net.removeListener(l.addr)
	})
	return nil
}

// Addr implements net.Listener.
func (l *memListener) Addr() net.Addr { return memAddr(l.addr) }

type memAddr string

func (a memAddr) Network() string { return "aorta-sim" }
func (a memAddr) String() string  { return string(a) }

// latConn injects the link's current write latency and mid-stream faults
// into an in-memory connection.
type latConn struct {
	net.Conn
	net  *Network
	addr string
	// written counts bytes this conn has delivered, for ResetAfterBytes.
	written atomic.Int64

	closeOnce sync.Once
	done      chan struct{}

	// Propagation-delay pump state: a single goroutine delivering queued
	// chunks after their due time, preserving write order.
	pumpMu   sync.Mutex
	pump     chan delayedChunk
	asyncErr error
}

func newLatConn(conn net.Conn, n *Network, addr string) *latConn {
	return &latConn{Conn: conn, net: n, addr: addr, done: make(chan struct{})}
}

// delayedChunk is one in-flight write awaiting propagation delivery.
type delayedChunk struct {
	data []byte
	due  time.Time
}

// Write delays by the link latency before delivering, modelling one-way
// network delay, and injects mid-stream resets per the link's current
// configuration. With PropagationDelay configured the write returns
// immediately and delivery happens asynchronously after the delay.
func (c *latConn) Write(p []byte) (int, error) {
	cfg := c.net.Link(c.addr)
	if cfg.ResetAfterBytes > 0 && c.written.Load() >= cfg.ResetAfterBytes {
		c.Conn.Close()
		return 0, fmt.Errorf("netsim: write %s: %w", c.addr, ErrConnReset)
	}
	if cfg.WriteErrProb > 0 && c.net.roll() < cfg.WriteErrProb {
		c.Conn.Close()
		return 0, fmt.Errorf("netsim: write %s: %w", c.addr, ErrConnReset)
	}
	if cfg.PropagationDelay > 0 || c.hasPump() {
		return c.writeDelayed(p, cfg)
	}
	if d := c.net.linkDelay(cfg); d > 0 {
		c.net.clk.Sleep(d)
	}
	n, err := c.Conn.Write(p)
	c.written.Add(int64(n))
	return n, err
}

func (c *latConn) hasPump() bool {
	c.pumpMu.Lock()
	defer c.pumpMu.Unlock()
	return c.pump != nil
}

// writeDelayed queues p for delivery PropagationDelay (+ jitter) from
// now. Latency, if also set, still blocks the writer first — the
// serialization half of the physical model. Once a pump exists every
// write routes through it, so delivery order survives a mid-connection
// link reconfiguration. A pump delivery failure is surfaced on the next
// write.
func (c *latConn) writeDelayed(p []byte, cfg LinkConfig) (int, error) {
	if cfg.Latency > 0 {
		c.net.clk.Sleep(cfg.Latency)
	}
	c.pumpMu.Lock()
	if err := c.asyncErr; err != nil {
		c.pumpMu.Unlock()
		return 0, err
	}
	ch := c.pump
	if ch == nil {
		ch = make(chan delayedChunk, 256)
		c.pump = ch
		go c.runPump(ch)
	}
	c.pumpMu.Unlock()

	delay := cfg.PropagationDelay
	if cfg.Jitter > 0 {
		c.net.mu.Lock()
		delay += time.Duration(c.net.rng.Int63n(int64(cfg.Jitter)))
		c.net.mu.Unlock()
	}
	chunk := delayedChunk{
		data: append([]byte(nil), p...),
		due:  c.net.clk.Now().Add(delay),
	}
	// Refuse closed connections before racing the (buffered) queue send.
	select {
	case <-c.done:
		return 0, net.ErrClosed
	default:
	}
	select {
	case ch <- chunk:
		c.written.Add(int64(len(p)))
		return len(p), nil
	case <-c.done:
		return 0, net.ErrClosed
	}
}

// runPump delivers queued chunks in order once their due time passes.
func (c *latConn) runPump(ch chan delayedChunk) {
	for {
		select {
		case chunk := <-ch:
			if d := chunk.due.Sub(c.net.clk.Now()); d > 0 {
				c.net.clk.Sleep(d)
			}
			if _, err := c.Conn.Write(chunk.data); err != nil {
				c.pumpMu.Lock()
				if c.asyncErr == nil {
					c.asyncErr = err
				}
				c.pumpMu.Unlock()
				return
			}
		case <-c.done:
			return
		}
	}
}

// Close severs the connection and stops the propagation pump; queued
// undelivered chunks are dropped, as a real network drops in-flight
// packets when the path dies.
func (c *latConn) Close() error {
	c.closeOnce.Do(func() { close(c.done) })
	return c.Conn.Close()
}

// LocalAddr implements net.Conn.
func (c *latConn) LocalAddr() net.Addr { return memAddr(c.addr) }

// RemoteAddr implements net.Conn.
func (c *latConn) RemoteAddr() net.Addr { return memAddr(c.addr) }
