package camera

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"aorta/internal/device"
	"aorta/internal/geo"
	"aorta/internal/vclock"
)

func newCam(clk vclock.Clock) *Camera {
	return New("camera-1", geo.DefaultMount(geo.Point{Z: 3}, 0), clk)
}

func TestMoveTimeEnvelope(t *testing.T) {
	zero := geo.Orientation{Zoom: 1}
	if got := MoveTime(zero, zero); got != 0 {
		t.Errorf("MoveTime to same position = %v, want 0", got)
	}
	// Full 340° pan at 68°/s = 5s — the paper's upper bound.
	full := MoveTime(geo.Orientation{Pan: -170, Zoom: 1}, geo.Orientation{Pan: 170, Zoom: 1})
	if full != 5*time.Second {
		t.Errorf("full pan MoveTime = %v, want 5s", full)
	}
	// Tilt-dominated move: 90° at 45°/s = 2s.
	tiltMove := MoveTime(geo.Orientation{Zoom: 1}, geo.Orientation{Tilt: 90, Zoom: 1})
	if tiltMove != 2*time.Second {
		t.Errorf("full tilt MoveTime = %v, want 2s", tiltMove)
	}
}

func TestMoveTimeSlowestAxisDominates(t *testing.T) {
	// pan 68° = 1s; tilt 90° = 2s → 2s total.
	got := MoveTime(geo.Orientation{Zoom: 1}, geo.Orientation{Pan: 68, Tilt: 90, Zoom: 1})
	if got != 2*time.Second {
		t.Errorf("MoveTime = %v, want 2s (tilt axis dominates)", got)
	}
}

func TestCaptureTime(t *testing.T) {
	if CaptureTime("small") != CaptureSmall || CaptureTime("large") != CaptureLarge ||
		CaptureTime("medium") != CaptureMedium || CaptureTime("") != CaptureMedium {
		t.Error("CaptureTime mapping wrong")
	}
}

func TestPhotoActionCostEnvelope(t *testing.T) {
	// End-to-end cost of move+capture+store on the emulator matches the
	// paper's service-time interval minus the 50ms connect charge:
	// [0.31, 5.31] here, [0.36, 5.36] with connect.
	min := 0*time.Second + CaptureMedium + StoreTime
	if min != 310*time.Millisecond {
		t.Fatalf("min emulator time = %v", min)
	}
	max := 5*time.Second + CaptureMedium + StoreTime
	if max != 5310*time.Millisecond {
		t.Fatalf("max emulator time = %v", max)
	}
}

func TestExecMoveReachesTarget(t *testing.T) {
	clk := vclock.NewScaled(2000)
	cam := newCam(clk)
	args, _ := json.Marshal(MoveArgs{Pan: 90, Tilt: 45, Zoom: 2})
	res, err := cam.Exec(context.Background(), "move", args)
	if err != nil {
		t.Fatal(err)
	}
	mr, ok := res.(*MoveResult)
	if !ok {
		t.Fatalf("result type %T", res)
	}
	if mr.Preempted {
		t.Error("solo move reported preempted")
	}
	head := cam.Head()
	if head.Pan != 90 || head.Tilt != 45 || head.Zoom != 2 {
		t.Errorf("head after move = %v", head)
	}
}

func TestExecCaptureCleanPhoto(t *testing.T) {
	clk := vclock.NewScaled(2000)
	cam := newCam(clk)
	res, err := cam.Exec(context.Background(), "capture", nil)
	if err != nil {
		t.Fatal(err)
	}
	p := res.(*Photo)
	if p.Blurred {
		t.Error("undisturbed capture was blurred")
	}
	if p.Size != "medium" || p.SizeKB != 40 {
		t.Errorf("default capture = %s/%dKB, want medium/40KB", p.Size, p.SizeKB)
	}
	if cam.PhotosTaken() != 1 {
		t.Errorf("PhotosTaken = %d", cam.PhotosTaken())
	}
}

func TestCaptureSizeAliases(t *testing.T) {
	clk := vclock.NewScaled(5000)
	cam := newCam(clk)
	for op, want := range map[string]string{
		"capture_small":  "small",
		"capture_medium": "medium",
		"capture_large":  "large",
	} {
		res, err := cam.Exec(context.Background(), op, nil)
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if got := res.(*Photo).Size; got != want {
			t.Errorf("%s produced %q photo", op, got)
		}
	}
}

func TestExecStore(t *testing.T) {
	clk := vclock.NewScaled(5000)
	cam := newCam(clk)
	res, err := cam.Exec(context.Background(), "store", nil)
	if err != nil {
		t.Fatal(err)
	}
	m := res.(map[string]any)
	if m["stored"] != 1 {
		t.Errorf("store result = %v", m)
	}
}

func TestExecUnknownOp(t *testing.T) {
	cam := newCam(vclock.Real{})
	_, err := cam.Exec(context.Background(), "fly", nil)
	if !errors.Is(err, device.ErrUnknownOp) {
		t.Fatalf("err = %v, want ErrUnknownOp", err)
	}
}

func TestReadAttrs(t *testing.T) {
	cam := newCam(vclock.Real{})
	cam.SetHead(geo.Orientation{Pan: 10, Tilt: 20, Zoom: 1.5})
	tests := []struct {
		attr string
		want any
	}{
		{"id", "camera-1"},
		{"pan", 10.0},
		{"tilt", 20.0},
		{"zoom", 1.5},
		{"busy", 0},
		{"photos_taken", 0},
	}
	for _, tt := range tests {
		got, err := cam.ReadAttr(tt.attr)
		if err != nil {
			t.Fatalf("ReadAttr(%s): %v", tt.attr, err)
		}
		if got != tt.want {
			t.Errorf("ReadAttr(%s) = %v, want %v", tt.attr, got, tt.want)
		}
	}
	if _, err := cam.ReadAttr("nope"); !errors.Is(err, device.ErrUnknownAttr) {
		t.Errorf("unknown attr err = %v", err)
	}
}

func TestStatusJSON(t *testing.T) {
	cam := newCam(vclock.Real{})
	cam.SetHead(geo.Orientation{Pan: -45, Tilt: 30, Zoom: 2})
	var st Status
	if err := json.Unmarshal(cam.Status(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Head.Pan != -45 || st.Head.Tilt != 30 || st.Busy {
		t.Errorf("status = %+v", st)
	}
}

func TestBusyDuringMove(t *testing.T) {
	clk := vclock.NewScaled(100)
	cam := newCam(clk)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		args, _ := json.Marshal(MoveArgs{Pan: 170, Zoom: 1}) // 2.5s virtual = 25ms wall
		_, _ = cam.Exec(context.Background(), "move", args)
	}()
	// Poll until the move registers.
	busySeen := false
	for i := 0; i < 200; i++ {
		if cam.Busy() {
			busySeen = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	if !busySeen {
		t.Error("camera never reported busy during a 2.5s move")
	}
	if cam.Busy() {
		t.Error("camera still busy after move completed")
	}
}

// TestInterferenceMoveDuringMove reproduces the paper's §4 observation: a
// second photo() redirects the head before the first completes.
func TestInterferenceMoveDuringMove(t *testing.T) {
	clk := vclock.NewScaled(100)
	cam := newCam(clk)
	ctx := context.Background()

	var wg sync.WaitGroup
	var res1 *MoveResult
	wg.Add(1)
	go func() {
		defer wg.Done()
		args, _ := json.Marshal(MoveArgs{Pan: 170, Zoom: 1}) // 2.5s virtual
		r, err := cam.Exec(ctx, "move", args)
		if err == nil {
			res1 = r.(*MoveResult)
		}
	}()
	// Wait until the first move is in flight, then preempt it.
	for i := 0; i < 200 && !cam.Busy(); i++ {
		time.Sleep(time.Millisecond)
	}
	args2, _ := json.Marshal(MoveArgs{Pan: -170, Zoom: 1})
	if _, err := cam.Exec(ctx, "move", args2); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if res1 == nil {
		t.Fatal("first move failed")
	}
	if !res1.Preempted {
		t.Error("first move not marked preempted")
	}
	if math.Abs(res1.Reached.Pan-170) < 1 {
		t.Error("first move claims to have reached its target despite preemption")
	}
	preempted, _ := cam.Interference()
	if preempted != 1 {
		t.Errorf("preemptedMoves = %d, want 1", preempted)
	}
	// The head must end at the second target.
	if head := cam.Head(); math.Abs(head.Pan-(-170)) > 1 {
		t.Errorf("final head pan = %v, want -170", head.Pan)
	}
}

// TestInterferenceMoveDuringCapture: movement overlapping an exposure
// blurs the photo.
func TestInterferenceMoveDuringCapture(t *testing.T) {
	clk := vclock.NewScaled(100)
	cam := newCam(clk)
	ctx := context.Background()

	var wg sync.WaitGroup
	var photo *Photo
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, err := cam.Exec(ctx, "capture", wire("large")) // 550ms virtual
		if err == nil {
			photo = res.(*Photo)
		}
	}()
	for i := 0; i < 200 && !cam.Busy(); i++ {
		time.Sleep(time.Millisecond)
	}
	args, _ := json.Marshal(MoveArgs{Pan: 100, Zoom: 1})
	if _, err := cam.Exec(ctx, "move", args); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if photo == nil {
		t.Fatal("capture failed")
	}
	if !photo.Blurred {
		t.Error("photo taken during head movement was not blurred")
	}
	_, blurred := cam.Interference()
	if blurred != 1 {
		t.Errorf("blurredPhotos = %d, want 1", blurred)
	}
}

func TestOverlappingCapturesBlur(t *testing.T) {
	clk := vclock.NewScaled(100)
	cam := newCam(clk)
	ctx := context.Background()

	var wg sync.WaitGroup
	photos := make([]*Photo, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := cam.Exec(ctx, "capture", wire("large"))
			if err == nil {
				photos[i] = res.(*Photo)
			}
		}(i)
	}
	wg.Wait()
	if photos[0] == nil || photos[1] == nil {
		t.Fatal("captures failed")
	}
	if !photos[0].Blurred && !photos[1].Blurred {
		t.Error("neither of two overlapping captures was blurred")
	}
}

func TestSequentialPhotosClean(t *testing.T) {
	// Without interference, back-to-back photo actions are all clean —
	// what engine-side locking buys us.
	clk := vclock.NewScaled(1000)
	cam := newCam(clk)
	ctx := context.Background()
	targets := []float64{30, -60, 120, 0}
	for _, pan := range targets {
		args, _ := json.Marshal(MoveArgs{Pan: pan, Zoom: 1})
		if _, err := cam.Exec(ctx, "move", args); err != nil {
			t.Fatal(err)
		}
		res, err := cam.Exec(ctx, "capture", nil)
		if err != nil {
			t.Fatal(err)
		}
		p := res.(*Photo)
		if p.Blurred {
			t.Errorf("sequential photo at pan %v blurred", pan)
		}
		if math.Abs(p.At.Pan-pan) > 0.5 {
			t.Errorf("photo at pan %v, requested %v", p.At.Pan, pan)
		}
	}
	if _, blurred := cam.Interference(); blurred != 0 {
		t.Errorf("blurred = %d after sequential use", blurred)
	}
}

func TestMoveCancelledByContext(t *testing.T) {
	clk := vclock.NewScaled(10) // slow: 2.5s virtual = 250ms wall
	cam := newCam(clk)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		args, _ := json.Marshal(MoveArgs{Pan: 170, Zoom: 1})
		_, err := cam.Exec(ctx, "move", args)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled move returned nil error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled move did not return")
	}
}

func TestBadArgs(t *testing.T) {
	cam := newCam(vclock.Real{})
	if _, err := cam.Exec(context.Background(), "move", json.RawMessage(`{`)); err == nil {
		t.Error("bad move args accepted")
	}
	if _, err := cam.Exec(context.Background(), "capture", json.RawMessage(`[`)); err == nil {
		t.Error("bad capture args accepted")
	}
}

func wire(size string) json.RawMessage {
	b, err := json.Marshal(CaptureArgs{Size: size})
	if err != nil {
		panic(err)
	}
	return b
}

func BenchmarkMoveTime(b *testing.B) {
	from := geo.Orientation{Pan: -120, Tilt: 10, Zoom: 1}
	to := geo.Orientation{Pan: 80, Tilt: 60, Zoom: 3}
	for i := 0; i < b.N; i++ {
		MoveTime(from, to)
	}
}

func BenchmarkStatusSnapshot(b *testing.B) {
	cam := newCam(vclock.Real{})
	for i := 0; i < b.N; i++ {
		cam.Status()
	}
}
