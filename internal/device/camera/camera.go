// Package camera emulates an AXIS-2130-like PTZ network camera.
//
// The emulator reproduces the physical behaviour the paper's evaluation
// depends on:
//
//   - head movement takes real (clock) time, driven per-axis by motor
//     speeds, so a photo() action's cost is sequence-dependent — it depends
//     on where the previous action left the head (paper §2.3);
//   - the published cost envelope holds: a photo() action (connect + move +
//     medium capture + store) costs 0.36 s with no movement up to 5.36 s for
//     a full 340° pan (paper §6.3);
//   - overlapping commands are *accepted*, exactly like the real camera's
//     HTTP interface, and corrupt the result: a move issued during another
//     move redirects the head mid-flight, and any movement overlapping a
//     capture blurs the photo or leaves it pointing at the wrong position
//     (paper §4). Engine-side locking is what prevents this.
package camera

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"time"

	"aorta/internal/device"
	"aorta/internal/geo"
	"aorta/internal/vclock"
)

// Motor and capture timing. These constants place photo() exactly in the
// paper's [0.36 s, 5.36 s] interval; see internal/profile/data/camera_costs.xml
// for the matching cost-model entries.
const (
	PanSpeedDegPerSec  = 68
	TiltSpeedDegPerSec = 45
	ZoomUnitsPerSec    = 6

	CaptureSmall  = 150 * time.Millisecond
	CaptureMedium = 280 * time.Millisecond
	CaptureLarge  = 550 * time.Millisecond
	StoreTime     = 30 * time.Millisecond
)

// MoveTime returns the head-movement duration between two orientations:
// the motors run concurrently, so the slowest axis dominates.
func MoveTime(from, to geo.Orientation) time.Duration {
	pan, tilt := geo.AngularDist(from, to)
	zoom := math.Abs(from.Zoom - to.Zoom)
	sec := math.Max(pan/PanSpeedDegPerSec, tilt/TiltSpeedDegPerSec)
	sec = math.Max(sec, zoom/ZoomUnitsPerSec)
	return time.Duration(sec * float64(time.Second))
}

// CaptureTime returns the capture duration for a photo size ("small",
// "medium" or "large"; anything else is treated as medium).
func CaptureTime(size string) time.Duration {
	switch size {
	case "small":
		return CaptureSmall
	case "large":
		return CaptureLarge
	default:
		return CaptureMedium
	}
}

// Status is the camera's physical status as reported to probes: the current
// head position and busy state. The optimizer's cost model feeds the head
// position into its movement-time estimate.
type Status struct {
	Head        geo.Orientation `json:"head"`
	Busy        bool            `json:"busy"`
	PhotosTaken int             `json:"photos_taken"`
}

// Photo is the result of a capture operation.
type Photo struct {
	ID int `json:"id"`
	// At is the head orientation when the exposure finished — compare with
	// the requested aim to detect wrong-position photos.
	At      geo.Orientation `json:"at"`
	Blurred bool            `json:"blurred"`
	SizeKB  int             `json:"size_kb"`
	Size    string          `json:"size"`
	TakenAt time.Time       `json:"taken_at"`
}

// MoveArgs are the arguments of the "move" operation.
type MoveArgs struct {
	Pan  float64 `json:"pan"`
	Tilt float64 `json:"tilt"`
	Zoom float64 `json:"zoom"`
}

// CaptureArgs are the arguments of the capture operations.
type CaptureArgs struct {
	Size string `json:"size"`
}

// MoveResult is returned by the "move" operation.
type MoveResult struct {
	// Reached is the actual head position when this move's motor time
	// elapsed. If another move preempted this one, Reached differs from
	// the requested target.
	Reached geo.Orientation `json:"reached"`
	// Preempted reports whether another command redirected the head while
	// this move was in flight.
	Preempted bool `json:"preempted"`
}

type movement struct {
	from, to  geo.Orientation
	start     time.Time
	dur       time.Duration
	preempted bool
}

// Camera is the emulated device. It implements device.Model.
type Camera struct {
	id    string
	mount geo.Mount
	clk   vclock.Clock

	mu          sync.Mutex
	head        geo.Orientation
	move        *movement // in-flight movement, nil when the head is still
	captures    int       // in-flight capture count
	photosTaken int
	photoSeq    int
	stores      int
	// interference counters, exposed for the §6.2 study
	preemptedMoves int
	blurredPhotos  int
}

var _ device.Model = (*Camera)(nil)

// New returns a camera with the given ID and mount, with the head at rest
// pointing at pan 0, tilt 0, zoom 1.
func New(id string, mount geo.Mount, clk vclock.Clock) *Camera {
	return &Camera{
		id:    id,
		mount: mount,
		clk:   clk,
		head:  geo.Orientation{Zoom: 1},
	}
}

// Type implements device.Model.
func (c *Camera) Type() string { return "camera" }

// ID implements device.Model.
func (c *Camera) ID() string { return c.id }

// Mount returns the camera's mount geometry.
func (c *Camera) Mount() geo.Mount { return c.mount }

// headAt returns the head position at time now, interpolating through any
// in-flight movement. Caller must hold c.mu.
func (c *Camera) headAt(now time.Time) geo.Orientation {
	if c.move == nil {
		return c.head
	}
	elapsed := now.Sub(c.move.start)
	if elapsed >= c.move.dur {
		return c.move.to
	}
	frac := float64(elapsed) / float64(c.move.dur)
	return geo.LerpOrientation(c.move.from, c.move.to, frac)
}

// Head returns the current head position.
func (c *Camera) Head() geo.Orientation {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.headAt(c.clk.Now())
}

// Busy implements device.Model.
func (c *Camera) Busy() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.busyLocked(c.clk.Now())
}

func (c *Camera) busyLocked(now time.Time) bool {
	if c.captures > 0 {
		return true
	}
	if c.move != nil && now.Sub(c.move.start) < c.move.dur {
		return true
	}
	return false
}

// Status implements device.Model.
func (c *Camera) Status() json.RawMessage {
	c.mu.Lock()
	now := c.clk.Now()
	st := Status{
		Head:        c.headAt(now),
		Busy:        c.busyLocked(now),
		PhotosTaken: c.photosTaken,
	}
	c.mu.Unlock()
	b, err := json.Marshal(&st)
	if err != nil {
		// Status contains only numbers; marshalling cannot fail.
		panic(fmt.Sprintf("camera: marshal status: %v", err))
	}
	return b
}

// ReadAttr implements device.Model.
func (c *Camera) ReadAttr(name string) (any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clk.Now()
	switch name {
	case "id":
		return c.id, nil
	case "ip":
		return c.id, nil // the farm uses device IDs as network addresses
	case "loc":
		return c.mount.Position, nil
	case "pan":
		return c.headAt(now).Pan, nil
	case "tilt":
		return c.headAt(now).Tilt, nil
	case "zoom":
		return c.headAt(now).Zoom, nil
	case "busy":
		if c.busyLocked(now) {
			return 1, nil
		}
		return 0, nil
	case "photos_taken":
		return c.photosTaken, nil
	default:
		return nil, fmt.Errorf("%w: camera has no attribute %q", device.ErrUnknownAttr, name)
	}
}

// Exec implements device.Model. Supported operations: "move", "capture"
// (plus the profile-level aliases capture_small/capture_medium/
// capture_large) and "store".
func (c *Camera) Exec(ctx context.Context, op string, args json.RawMessage) (any, error) {
	switch op {
	case "move":
		var ma MoveArgs
		if len(args) > 0 {
			if err := json.Unmarshal(args, &ma); err != nil {
				return nil, fmt.Errorf("camera: bad move args: %w", err)
			}
		}
		return c.doMove(ctx, geo.Orientation{Pan: ma.Pan, Tilt: ma.Tilt, Zoom: ma.Zoom})
	case "capture", "capture_small", "capture_medium", "capture_large":
		var ca CaptureArgs
		if len(args) > 0 {
			if err := json.Unmarshal(args, &ca); err != nil {
				return nil, fmt.Errorf("camera: bad capture args: %w", err)
			}
		}
		if ca.Size == "" {
			switch op {
			case "capture_small":
				ca.Size = "small"
			case "capture_large":
				ca.Size = "large"
			default:
				ca.Size = "medium"
			}
		}
		return c.doCapture(ctx, ca.Size)
	case "store":
		return c.doStore(ctx)
	default:
		return nil, fmt.Errorf("%w: camera cannot %q", device.ErrUnknownOp, op)
	}
}

// doMove starts moving the head toward target. If a movement is already in
// flight the new command preempts it from the head's *current* interpolated
// position — the second query's photo() redirecting the first, as observed
// on the real cameras.
func (c *Camera) doMove(ctx context.Context, target geo.Orientation) (*MoveResult, error) {
	c.mu.Lock()
	now := c.clk.Now()
	from := c.headAt(now)
	if c.move != nil && now.Sub(c.move.start) < c.move.dur {
		c.move.preempted = true
		c.preemptedMoves++
	}
	dur := MoveTime(from, target)
	mv := &movement{from: from, to: target, start: now, dur: dur}
	c.move = mv
	c.mu.Unlock()

	if err := vclock.SleepCtx(ctx, c.clk, dur); err != nil {
		return nil, fmt.Errorf("camera: move interrupted: %w", err)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	endNow := c.clk.Now()
	reached := c.headAt(endNow)
	preempted := mv.preempted
	if c.move == mv && endNow.Sub(mv.start) >= mv.dur {
		// Our movement finished without being preempted; settle the head.
		c.head = mv.to
		c.move = nil
		reached = mv.to
	}
	return &MoveResult{Reached: reached, Preempted: preempted}, nil
}

// doCapture exposes a photo. Any head movement overlapping the exposure
// blurs the photo; the recorded orientation is wherever the head was when
// the exposure finished.
func (c *Camera) doCapture(ctx context.Context, size string) (*Photo, error) {
	dur := CaptureTime(size)
	c.mu.Lock()
	now := c.clk.Now()
	start := now
	overlappingCapture := c.captures > 0
	c.captures++
	c.mu.Unlock()

	if err := vclock.SleepCtx(ctx, c.clk, dur); err != nil {
		c.mu.Lock()
		c.captures--
		c.mu.Unlock()
		return nil, fmt.Errorf("camera: capture interrupted: %w", err)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	end := c.clk.Now()
	c.captures--
	c.photosTaken++
	c.photoSeq++

	// Blur: the head moved during the exposure window, or two exposures
	// overlapped.
	blurred := overlappingCapture || c.captures > 0
	if c.move != nil {
		moveEnd := c.move.start.Add(c.move.dur)
		if c.move.start.Before(end) && moveEnd.After(start) {
			blurred = true
		}
	}
	if blurred {
		c.blurredPhotos++
	}

	sizeKB := 40
	switch size {
	case "small":
		sizeKB = 12
	case "large":
		sizeKB = 120
	}
	return &Photo{
		ID:      c.photoSeq,
		At:      c.headAt(end),
		Blurred: blurred,
		SizeKB:  sizeKB,
		Size:    size,
		TakenAt: end,
	}, nil
}

func (c *Camera) doStore(ctx context.Context) (map[string]any, error) {
	if err := vclock.SleepCtx(ctx, c.clk, StoreTime); err != nil {
		return nil, fmt.Errorf("camera: store interrupted: %w", err)
	}
	c.mu.Lock()
	c.stores++
	n := c.stores
	c.mu.Unlock()
	return map[string]any{"stored": n}, nil
}

// Interference reports how many moves were preempted and how many photos
// were blurred over the camera's lifetime — the observable damage that
// device synchronization exists to prevent (paper §6.2).
func (c *Camera) Interference() (preemptedMoves, blurredPhotos int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.preemptedMoves, c.blurredPhotos
}

// PhotosTaken returns the lifetime photo count.
func (c *Camera) PhotosTaken() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.photosTaken
}

// SetHead forces the head position; used by tests and by workload
// generators that need a known starting state.
func (c *Camera) SetHead(o geo.Orientation) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.head = o
	c.move = nil
}
