package mote

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"testing"
	"time"

	"aorta/internal/device"
	"aorta/internal/geo"
	"aorta/internal/vclock"
)

func newMote(clk vclock.Clock) *Mote {
	return New("mote-1", geo.Point{X: 2, Y: 3}, clk, Config{Depth: 2, Seed: 42})
}

func TestIdentity(t *testing.T) {
	m := newMote(vclock.Real{})
	if m.Type() != "sensor" || m.ID() != "mote-1" {
		t.Errorf("identity = %s/%s", m.Type(), m.ID())
	}
	if m.Location() != (geo.Point{X: 2, Y: 3}) {
		t.Errorf("Location = %v", m.Location())
	}
	if m.Depth() != 2 {
		t.Errorf("Depth = %d", m.Depth())
	}
}

func TestConfigDefaults(t *testing.T) {
	m := New("m", geo.Point{}, vclock.Real{}, Config{})
	if m.Depth() != 1 {
		t.Errorf("default depth = %d, want 1", m.Depth())
	}
	tmp, err := m.ReadAttr("temp")
	if err != nil {
		t.Fatal(err)
	}
	if v := tmp.(float64); v < 20 || v > 24 {
		t.Errorf("default temp = %v, want ≈22", v)
	}
}

func TestAccelQuiescentThenStimulated(t *testing.T) {
	clk := vclock.NewManual(time.Unix(0, 0))
	m := New("m", geo.Point{}, clk, Config{Seed: 7})
	v, err := m.ReadAttr("accel_x")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v.(float64)) > 10 {
		t.Errorf("quiescent accel_x = %v, want near 0", v)
	}

	m.Stimulate("x", 800, time.Minute)
	v, _ = m.ReadAttr("accel_x")
	if v.(float64) < 500 {
		t.Errorf("stimulated accel_x = %v, want > 500 (the snapshot query threshold)", v)
	}
	// The y axis stays quiet.
	vy, _ := m.ReadAttr("accel_y")
	if math.Abs(vy.(float64)) > 10 {
		t.Errorf("accel_y = %v during x stimulus", vy)
	}

	// After the window expires the reading returns to rest.
	clk.Advance(2 * time.Minute)
	v, _ = m.ReadAttr("accel_x")
	if math.Abs(v.(float64)) > 10 {
		t.Errorf("accel_x = %v after stimulus expired", v)
	}
}

func TestReadAllCatalogAttrs(t *testing.T) {
	m := newMote(vclock.Real{})
	for _, attr := range []string{"id", "loc", "depth", "accel_x", "accel_y", "temp", "light", "battery"} {
		if _, err := m.ReadAttr(attr); err != nil {
			t.Errorf("ReadAttr(%s): %v", attr, err)
		}
	}
	if _, err := m.ReadAttr("humidity"); !errors.Is(err, device.ErrUnknownAttr) {
		t.Errorf("unknown attr err = %v", err)
	}
}

func TestBatteryDecays(t *testing.T) {
	clk := vclock.NewManual(time.Unix(0, 0))
	m := New("m", geo.Point{}, clk, Config{})
	b0, _ := m.ReadAttr("battery")
	clk.Advance(10 * time.Hour)
	b1, _ := m.ReadAttr("battery")
	if b1.(float64) >= b0.(float64) {
		t.Errorf("battery did not decay: %v → %v", b0, b1)
	}
	clk.Advance(10000 * time.Hour)
	b2, _ := m.ReadAttr("battery")
	if b2.(float64) < 2.2 {
		t.Errorf("battery fell below floor: %v", b2)
	}
}

func TestBeepAndBlink(t *testing.T) {
	clk := vclock.NewScaled(1000)
	m := New("m", geo.Point{}, clk, Config{})
	if _, err := m.Exec(context.Background(), "beep", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exec(context.Background(), "blink", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exec(context.Background(), "blink", nil); err != nil {
		t.Fatal(err)
	}
	beeps, blinks := m.Counters()
	if beeps != 1 || blinks != 2 {
		t.Errorf("counters = %d beeps, %d blinks", beeps, blinks)
	}
}

func TestExecUnknownOp(t *testing.T) {
	m := newMote(vclock.Real{})
	if _, err := m.Exec(context.Background(), "explode", nil); !errors.Is(err, device.ErrUnknownOp) {
		t.Fatalf("err = %v, want ErrUnknownOp", err)
	}
}

func TestExecCancellation(t *testing.T) {
	clk := vclock.NewScaled(10)
	m := New("m", geo.Point{}, clk, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Exec(ctx, "beep", nil); err == nil {
		t.Fatal("cancelled beep returned nil error")
	}
	if m.Busy() {
		t.Error("mote still busy after cancelled op")
	}
}

func TestStatusJSON(t *testing.T) {
	m := newMote(vclock.Real{})
	var st Status
	if err := json.Unmarshal(m.Status(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Depth != 2 || st.Busy || st.Battery < 2.2 {
		t.Errorf("status = %+v", st)
	}
}
