// Package mote emulates a Berkeley-MICA2-like sensor mote with an
// MTS310CA-style sensor board: two-axis accelerometer, temperature, light
// and battery attributes, and beep/blink atomic operations.
//
// Physical-world events (the "someone pushes the door" of the paper's
// snapshot query) are injected with Stimulate, which raises the
// accelerometer readings for a window of time. The mote's radio-level
// unreliability (packet loss, multi-hop delay) is modelled at the link
// layer (internal/netsim); its routing depth is part of the catalog and
// feeds the connect-cost estimate.
package mote

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"aorta/internal/device"
	"aorta/internal/geo"
	"aorta/internal/vclock"
)

// Durations of the mote's atomic operations; mirrored in
// internal/profile/data/mote_costs.xml.
const (
	BeepTime   = 200 * time.Millisecond
	BlinkTime  = 100 * time.Millisecond
	SampleTime = 10 * time.Millisecond
)

// Status is the mote's physical status as reported to probes.
type Status struct {
	Battery float64 `json:"battery"`
	Depth   int     `json:"depth"`
	Busy    bool    `json:"busy"`
}

// Mote is the emulated sensor device. It implements device.Model.
type Mote struct {
	id    string
	loc   geo.Point
	depth int
	clk   vclock.Clock

	mu      sync.Mutex
	rng     *rand.Rand
	started time.Time
	baseTmp float64
	baseLux float64
	busy    int
	beeps   int
	blinks  int
	// stimulus is the active accelerometer excitation, if any.
	stimMag   float64
	stimUntil time.Time
	stimAxis  string
}

var _ device.Model = (*Mote)(nil)

// Config holds optional mote parameters.
type Config struct {
	// Depth is the multi-hop routing depth (≥1).
	Depth int
	// BaseTemp and BaseLight center the ambient readings.
	BaseTemp, BaseLight float64
	// Seed drives the reading noise.
	Seed int64
}

// New returns a mote with the given ID at loc.
func New(id string, loc geo.Point, clk vclock.Clock, cfg Config) *Mote {
	if cfg.Depth < 1 {
		cfg.Depth = 1
	}
	if cfg.BaseTemp == 0 {
		cfg.BaseTemp = 22
	}
	if cfg.BaseLight == 0 {
		cfg.BaseLight = 300
	}
	return &Mote{
		id:      id,
		loc:     loc,
		depth:   cfg.Depth,
		clk:     clk,
		rng:     rand.New(rand.NewSource(cfg.Seed + 1)),
		started: clk.Now(),
		baseTmp: cfg.BaseTemp,
		baseLux: cfg.BaseLight,
	}
}

// Type implements device.Model.
func (m *Mote) Type() string { return "sensor" }

// ID implements device.Model.
func (m *Mote) ID() string { return m.id }

// Location returns the mote's fixed deployment position.
func (m *Mote) Location() geo.Point { return m.loc }

// Depth returns the mote's multi-hop routing depth.
func (m *Mote) Depth() int { return m.depth }

// Stimulate injects a physical event: the named accelerometer axis
// ("x" or "y") reads approximately magnitude (in mg) for the next dur of
// clock time. It models the door-push / object-movement events that
// trigger the paper's snapshot query.
func (m *Mote) Stimulate(axis string, magnitude float64, dur time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stimAxis = axis
	m.stimMag = magnitude
	m.stimUntil = m.clk.Now().Add(dur)
}

// Busy implements device.Model.
func (m *Mote) Busy() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.busy > 0
}

// battery decays linearly from 3.0V at ~0.01V per hour of uptime.
func (m *Mote) battery(now time.Time) float64 {
	hours := now.Sub(m.started).Hours()
	return math.Max(2.2, 3.0-0.01*hours)
}

// Status implements device.Model.
func (m *Mote) Status() json.RawMessage {
	m.mu.Lock()
	st := Status{
		Battery: m.battery(m.clk.Now()),
		Depth:   m.depth,
		Busy:    m.busy > 0,
	}
	m.mu.Unlock()
	b, err := json.Marshal(&st)
	if err != nil {
		panic(fmt.Sprintf("mote: marshal status: %v", err))
	}
	return b
}

// ReadAttr implements device.Model. Sensory attributes include mild
// per-read noise, as real sensor boards do.
func (m *Mote) ReadAttr(name string) (any, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.clk.Now()
	noise := func(scale float64) float64 { return (m.rng.Float64() - 0.5) * 2 * scale }
	switch name {
	case "id":
		return m.id, nil
	case "loc":
		return m.loc, nil
	case "depth":
		return m.depth, nil
	case "accel_x":
		return m.accel("x", now) + noise(5), nil
	case "accel_y":
		return m.accel("y", now) + noise(5), nil
	case "temp":
		return m.baseTmp + noise(0.5), nil
	case "light":
		return math.Max(0, m.baseLux+noise(20)), nil
	case "battery":
		return m.battery(now), nil
	default:
		return nil, fmt.Errorf("%w: mote has no attribute %q", device.ErrUnknownAttr, name)
	}
}

// accel returns the stimulated magnitude while a stimulus window is open.
// Caller must hold m.mu.
func (m *Mote) accel(axis string, now time.Time) float64 {
	if m.stimAxis == axis && now.Before(m.stimUntil) {
		return m.stimMag
	}
	return 0
}

// Exec implements device.Model. Supported operations: "beep", "blink",
// "sample".
func (m *Mote) Exec(ctx context.Context, op string, _ json.RawMessage) (any, error) {
	var dur time.Duration
	switch op {
	case "beep":
		dur = BeepTime
	case "blink":
		dur = BlinkTime
	case "sample":
		dur = SampleTime
	default:
		return nil, fmt.Errorf("%w: mote cannot %q", device.ErrUnknownOp, op)
	}
	m.mu.Lock()
	m.busy++
	m.mu.Unlock()
	err := vclock.SleepCtx(ctx, m.clk, dur)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.busy--
	if err != nil {
		return nil, fmt.Errorf("mote: %s interrupted: %w", op, err)
	}
	switch op {
	case "beep":
		m.beeps++
		return map[string]any{"beeps": m.beeps}, nil
	case "blink":
		m.blinks++
		return map[string]any{"blinks": m.blinks}, nil
	default:
		return map[string]any{"sampled": true}, nil
	}
}

// Counters returns the lifetime beep and blink counts.
func (m *Mote) Counters() (beeps, blinks int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.beeps, m.blinks
}
