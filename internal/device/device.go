// Package device defines the device-emulator side of Aorta: the Model
// interface every emulated device implements and a Server that exposes a
// model over the wire protocol.
//
// The emulators deliberately model the *physical* behaviour of the paper's
// testbed hardware, including its failure modes: a camera accepts
// overlapping commands and corrupts the resulting photos (the motivation
// for engine-side locking, paper §4), a mote's radio is lossy, a phone can
// leave coverage. Correctness is the engine's job, not the device's.
package device

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"aorta/internal/wire"
)

// Model is one emulated physical device.
//
// Implementations must be safe for concurrent use: the whole point of the
// emulators is that concurrent operations are *possible* and have
// physically realistic (often undesirable) consequences.
type Model interface {
	// Type returns the device type ("camera", "sensor", "phone").
	Type() string
	// ID returns the device identifier unique within the farm.
	ID() string
	// ReadAttr acquires the current value of a sensory attribute, or
	// returns the static value of a non-sensory one.
	ReadAttr(name string) (any, error)
	// Exec performs one atomic operation, blocking (on the device's clock)
	// for its physical duration.
	Exec(ctx context.Context, op string, args json.RawMessage) (any, error)
	// Status returns the device's current physical status, JSON-encoded.
	Status() json.RawMessage
	// Busy reports whether the device is currently executing an
	// operation.
	Busy() bool
}

// ErrUnknownAttr is returned by ReadAttr for attributes the device does not
// support.
var ErrUnknownAttr = errors.New("device: unknown attribute")

// ErrUnknownOp is returned by Exec for operations the device does not
// support.
var ErrUnknownOp = errors.New("device: unknown operation")

// Server exposes a Model over a net.Listener speaking the wire protocol.
type Server struct {
	model Model
	l     net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// Serve starts serving model on l until Close is called. It returns
// immediately; request handling happens on background goroutines that
// Close waits for.
func Serve(l net.Listener, model Model) *Server {
	s := &Server{model: model, l: l, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address.
func (s *Server) Addr() string { return s.l.Addr().String() }

// Model returns the served device model.
func (s *Server) Model() Model { return s.model }

// Close stops the listener, closes open connections and waits for all
// handler goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.l.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

func (s *Server) forget(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer s.forget(conn)
	defer conn.Close()
	// Serialize responses: concurrent EXECs on separate goroutines may
	// finish out of order.
	var writeMu sync.Mutex
	var handlers sync.WaitGroup
	defer handlers.Wait()
	for {
		msg, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		// EXEC blocks for the operation's physical duration, and the
		// engine may pipeline requests, so each request is handled on its
		// own goroutine — exactly how the real camera's HTTP interface
		// accepted overlapping commands.
		handlers.Add(1)
		go func(msg *wire.Message) {
			defer handlers.Done()
			resp := s.dispatch(msg)
			writeMu.Lock()
			defer writeMu.Unlock()
			_ = wire.WriteFrame(conn, &resp)
		}(msg)
	}
}

func (s *Server) dispatch(msg *wire.Message) wire.Message {
	switch msg.Type {
	case wire.TypeProbe:
		return wire.Message{
			Type:   wire.TypeProbeAck,
			Seq:    msg.Seq,
			Device: s.model.ID(),
			Payload: wire.MustPayload(&wire.ProbeAck{
				DeviceType: s.model.Type(),
				DeviceID:   s.model.ID(),
				Busy:       s.model.Busy(),
				Status:     s.model.Status(),
			}),
		}
	case wire.TypeRead:
		var req wire.ReadReq
		if err := wire.DecodePayload(msg, &req); err != nil {
			return wire.NewError(msg.Seq, s.model.ID(), wire.CodeBadRequest, err.Error())
		}
		val, err := s.model.ReadAttr(req.Attr)
		if err != nil {
			code := wire.CodeInternal
			if errors.Is(err, ErrUnknownAttr) {
				code = wire.CodeUnknownAttr
			}
			return wire.NewError(msg.Seq, s.model.ID(), code, err.Error())
		}
		raw, err := json.Marshal(val)
		if err != nil {
			return wire.NewError(msg.Seq, s.model.ID(), wire.CodeInternal, fmt.Sprintf("marshal attr %s: %v", req.Attr, err))
		}
		return wire.Message{
			Type:    wire.TypeReadAck,
			Seq:     msg.Seq,
			Device:  s.model.ID(),
			Payload: wire.MustPayload(&wire.ReadAck{Attr: req.Attr, Value: raw}),
		}
	case wire.TypeExec:
		var req wire.ExecReq
		if err := wire.DecodePayload(msg, &req); err != nil {
			return wire.NewError(msg.Seq, s.model.ID(), wire.CodeBadRequest, err.Error())
		}
		res, err := s.model.Exec(context.Background(), req.Op, req.Args)
		if err != nil {
			code := wire.CodeInternal
			if errors.Is(err, ErrUnknownOp) {
				code = wire.CodeUnknownOp
			}
			return wire.NewError(msg.Seq, s.model.ID(), code, err.Error())
		}
		raw, err := json.Marshal(res)
		if err != nil {
			return wire.NewError(msg.Seq, s.model.ID(), wire.CodeInternal, fmt.Sprintf("marshal result of %s: %v", req.Op, err))
		}
		return wire.Message{
			Type:    wire.TypeExecAck,
			Seq:     msg.Seq,
			Device:  s.model.ID(),
			Payload: wire.MustPayload(&wire.ExecAck{Op: req.Op, Result: raw}),
		}
	default:
		return wire.NewError(msg.Seq, s.model.ID(), wire.CodeBadRequest, fmt.Sprintf("unexpected message type %s", msg.Type))
	}
}
