package device_test

import (
	"context"
	"encoding/json"
	"sync"
	"testing"

	"aorta/internal/device"
	"aorta/internal/device/camera"
	"aorta/internal/geo"
	"aorta/internal/netsim"
	"aorta/internal/vclock"
	"aorta/internal/wire"
)

// startCamera serves a camera model on an in-memory network and returns a
// dial function plus cleanup.
func startCamera(t *testing.T) (*camera.Camera, *netsim.Network) {
	t.Helper()
	clk := vclock.NewScaled(2000)
	net := netsim.NewNetwork(clk, 1)
	cam := camera.New("camera-1", geo.DefaultMount(geo.Point{Z: 3}, 0), clk)
	l, err := net.Listen("camera-1")
	if err != nil {
		t.Fatal(err)
	}
	srv := device.Serve(l, cam)
	t.Cleanup(func() { srv.Close() })
	return cam, net
}

func roundTrip(t *testing.T, net *netsim.Network, msg wire.Message) *wire.Message {
	t.Helper()
	conn, err := net.Dial(context.Background(), "camera-1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, &msg); err != nil {
		t.Fatal(err)
	}
	resp, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestProbeOverWire(t *testing.T) {
	_, network := startCamera(t)
	resp := roundTrip(t, network, wire.Message{Type: wire.TypeProbe, Seq: 1, Device: "camera-1"})
	if resp.Type != wire.TypeProbeAck {
		t.Fatalf("resp type = %v", resp.Type)
	}
	var ack wire.ProbeAck
	if err := wire.DecodePayload(resp, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.DeviceType != "camera" || ack.DeviceID != "camera-1" || ack.Busy {
		t.Errorf("probe ack = %+v", ack)
	}
	var st camera.Status
	if err := json.Unmarshal(ack.Status, &st); err != nil {
		t.Fatal(err)
	}
	if st.Head.Zoom != 1 {
		t.Errorf("status head = %+v", st.Head)
	}
}

func TestReadOverWire(t *testing.T) {
	_, network := startCamera(t)
	resp := roundTrip(t, network, wire.Message{
		Type: wire.TypeRead, Seq: 2, Device: "camera-1",
		Payload: wire.MustPayload(&wire.ReadReq{Attr: "pan"}),
	})
	if resp.Type != wire.TypeReadAck {
		t.Fatalf("resp = %+v", resp)
	}
	var ack wire.ReadAck
	if err := wire.DecodePayload(resp, &ack); err != nil {
		t.Fatal(err)
	}
	var pan float64
	if err := json.Unmarshal(ack.Value, &pan); err != nil {
		t.Fatal(err)
	}
	if pan != 0 {
		t.Errorf("pan = %v", pan)
	}
}

func TestReadUnknownAttrOverWire(t *testing.T) {
	_, network := startCamera(t)
	resp := roundTrip(t, network, wire.Message{
		Type: wire.TypeRead, Seq: 3,
		Payload: wire.MustPayload(&wire.ReadReq{Attr: "nonsense"}),
	})
	if resp.Type != wire.TypeError {
		t.Fatalf("resp type = %v, want ERROR", resp.Type)
	}
	var ep wire.ErrorPayload
	if err := wire.DecodePayload(resp, &ep); err != nil {
		t.Fatal(err)
	}
	if ep.Code != wire.CodeUnknownAttr {
		t.Errorf("code = %q, want %q", ep.Code, wire.CodeUnknownAttr)
	}
}

func TestExecOverWire(t *testing.T) {
	cam, network := startCamera(t)
	resp := roundTrip(t, network, wire.Message{
		Type: wire.TypeExec, Seq: 4,
		Payload: wire.MustPayload(&wire.ExecReq{
			Op:   "move",
			Args: wire.MustPayload(&camera.MoveArgs{Pan: 45, Zoom: 1}),
		}),
	})
	if resp.Type != wire.TypeExecAck {
		t.Fatalf("resp = %+v", resp)
	}
	var ack wire.ExecAck
	if err := wire.DecodePayload(resp, &ack); err != nil {
		t.Fatal(err)
	}
	var mr camera.MoveResult
	if err := json.Unmarshal(ack.Result, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Reached.Pan != 45 {
		t.Errorf("reached pan = %v", mr.Reached.Pan)
	}
	if cam.Head().Pan != 45 {
		t.Errorf("camera head pan = %v", cam.Head().Pan)
	}
}

func TestExecUnknownOpOverWire(t *testing.T) {
	_, network := startCamera(t)
	resp := roundTrip(t, network, wire.Message{
		Type: wire.TypeExec, Seq: 5,
		Payload: wire.MustPayload(&wire.ExecReq{Op: "levitate"}),
	})
	if resp.Type != wire.TypeError {
		t.Fatalf("resp type = %v", resp.Type)
	}
	var ep wire.ErrorPayload
	if err := wire.DecodePayload(resp, &ep); err != nil {
		t.Fatal(err)
	}
	if ep.Code != wire.CodeUnknownOp {
		t.Errorf("code = %q", ep.Code)
	}
}

func TestBadMessageTypeOverWire(t *testing.T) {
	_, network := startCamera(t)
	resp := roundTrip(t, network, wire.Message{Type: wire.TypeProbeAck, Seq: 6})
	if resp.Type != wire.TypeError {
		t.Fatalf("resp type = %v", resp.Type)
	}
}

// TestPipelinedRequestsOneConnection verifies the server handles multiple
// in-flight requests on one connection — the property that makes device
// interference physically possible.
func TestPipelinedRequestsOneConnection(t *testing.T) {
	_, network := startCamera(t)
	conn, err := network.Dial(context.Background(), "camera-1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// A slow move and a fast probe, pipelined. The probe answer must not
	// wait for the move.
	move := wire.Message{
		Type: wire.TypeExec, Seq: 10,
		Payload: wire.MustPayload(&wire.ExecReq{
			Op:   "move",
			Args: wire.MustPayload(&camera.MoveArgs{Pan: 170, Zoom: 1}),
		}),
	}
	probe := wire.Message{Type: wire.TypeProbe, Seq: 11}
	if err := wire.WriteFrame(conn, &move); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, &probe); err != nil {
		t.Fatal(err)
	}
	first, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if first.Seq != 11 {
		t.Fatalf("first response seq = %d, want the probe (11) before the slow move", first.Seq)
	}
	var ack wire.ProbeAck
	if err := wire.DecodePayload(first, &ack); err != nil {
		t.Fatal(err)
	}
	if !ack.Busy {
		t.Error("probe during move did not report busy")
	}
	second, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if second.Seq != 10 || second.Type != wire.TypeExecAck {
		t.Fatalf("second response = %+v", second)
	}
}

func TestConcurrentConnections(t *testing.T) {
	_, network := startCamera(t)
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(seq uint64) {
			defer wg.Done()
			conn, err := network.Dial(context.Background(), "camera-1")
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			msg := wire.Message{Type: wire.TypeProbe, Seq: seq}
			if err := wire.WriteFrame(conn, &msg); err != nil {
				errs <- err
				return
			}
			resp, err := wire.ReadFrame(conn)
			if err != nil {
				errs <- err
				return
			}
			if resp.Seq != seq {
				errs <- &mismatchError{want: seq, got: resp.Seq}
			}
		}(uint64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type mismatchError struct{ want, got uint64 }

func (e *mismatchError) Error() string { return "seq mismatch" }

func TestServerCloseIdempotent(t *testing.T) {
	clk := vclock.NewScaled(2000)
	network := netsim.NewNetwork(clk, 1)
	cam := camera.New("camera-x", geo.DefaultMount(geo.Point{Z: 3}, 0), clk)
	l, err := network.Listen("camera-x")
	if err != nil {
		t.Fatal(err)
	}
	srv := device.Serve(l, cam)
	if srv.Addr() != "camera-x" {
		t.Errorf("Addr = %q", srv.Addr())
	}
	if srv.Model() != cam {
		t.Error("Model() mismatch")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := network.Dial(context.Background(), "camera-x"); err == nil {
		t.Error("dial succeeded after server close")
	}
}
