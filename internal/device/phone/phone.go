// Package phone emulates an MMS-capable cell phone: the delivery target of
// the paper's sendphoto() user-defined action.
//
// A phone can move out of coverage (its owner "moves into an area that is
// out of the coverage of the service provider", paper §4); while out of
// coverage every operation fails with ErrNoCoverage, which the prober
// surfaces as unavailability.
package phone

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"aorta/internal/device"
	"aorta/internal/vclock"
)

// Operation timing; mirrored in internal/profile/data/phone_costs.xml.
const (
	SendSMSTime = 1500 * time.Millisecond
	MMSFixed    = 800 * time.Millisecond
	MMSKBPerSec = 40.0
	RingTime    = 2 * time.Second
)

// ErrNoCoverage is returned for any operation while the phone is
// unreachable.
var ErrNoCoverage = errors.New("phone: out of coverage")

// Message is one delivered SMS or MMS.
type Message struct {
	Kind       string    `json:"kind"` // "sms" or "mms"
	Text       string    `json:"text,omitempty"`
	PhotoPath  string    `json:"photo_path,omitempty"`
	SizeKB     int       `json:"size_kb,omitempty"`
	ReceivedAt time.Time `json:"received_at"`
}

// SMSArgs are the arguments of the "send_sms" operation.
type SMSArgs struct {
	Text string `json:"text"`
}

// MMSArgs are the arguments of the "send_mms" operation.
type MMSArgs struct {
	PhotoPath string `json:"photo_path"`
	SizeKB    int    `json:"size_kb"`
	Text      string `json:"text,omitempty"`
}

// Status is the phone's physical status as reported to probes.
type Status struct {
	InCoverage bool `json:"in_coverage"`
	InboxCount int  `json:"inbox_count"`
	Busy       bool `json:"busy"`
}

// Phone is the emulated device. It implements device.Model.
type Phone struct {
	id     string
	number string
	owner  string
	clk    vclock.Clock

	mu       sync.Mutex
	covered  bool
	busy     int
	inbox    []Message
	rings    int
	delivery int // lifetime delivered messages
}

var _ device.Model = (*Phone)(nil)

// New returns an in-coverage phone.
func New(id, number, owner string, clk vclock.Clock) *Phone {
	return &Phone{id: id, number: number, owner: owner, clk: clk, covered: true}
}

// Type implements device.Model.
func (p *Phone) Type() string { return "phone" }

// ID implements device.Model.
func (p *Phone) ID() string { return p.id }

// Number returns the subscriber number.
func (p *Phone) Number() string { return p.number }

// SetCoverage moves the phone in or out of network coverage.
func (p *Phone) SetCoverage(in bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.covered = in
}

// InCoverage reports whether the phone is reachable.
func (p *Phone) InCoverage() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.covered
}

// Inbox returns a copy of all delivered messages.
func (p *Phone) Inbox() []Message {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Message, len(p.inbox))
	copy(out, p.inbox)
	return out
}

// Busy implements device.Model.
func (p *Phone) Busy() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.busy > 0
}

// Status implements device.Model.
func (p *Phone) Status() json.RawMessage {
	p.mu.Lock()
	st := Status{InCoverage: p.covered, InboxCount: len(p.inbox), Busy: p.busy > 0}
	p.mu.Unlock()
	b, err := json.Marshal(&st)
	if err != nil {
		panic(fmt.Sprintf("phone: marshal status: %v", err))
	}
	return b
}

// ReadAttr implements device.Model.
func (p *Phone) ReadAttr(name string) (any, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch name {
	case "id":
		return p.id, nil
	case "number":
		return p.number, nil
	case "owner":
		return p.owner, nil
	case "battery":
		return 3.7, nil
	case "in_coverage":
		if p.covered {
			return 1, nil
		}
		return 0, nil
	case "inbox_count":
		return len(p.inbox), nil
	default:
		return nil, fmt.Errorf("%w: phone has no attribute %q", device.ErrUnknownAttr, name)
	}
}

// Exec implements device.Model. Supported operations: "send_sms",
// "send_mms", "ring".
func (p *Phone) Exec(ctx context.Context, op string, args json.RawMessage) (any, error) {
	if !p.InCoverage() {
		return nil, ErrNoCoverage
	}
	switch op {
	case "send_sms":
		var sa SMSArgs
		if len(args) > 0 {
			if err := json.Unmarshal(args, &sa); err != nil {
				return nil, fmt.Errorf("phone: bad send_sms args: %w", err)
			}
		}
		if err := p.block(ctx, SendSMSTime); err != nil {
			return nil, err
		}
		return p.deliver(Message{Kind: "sms", Text: sa.Text})
	case "send_mms":
		var ma MMSArgs
		if len(args) > 0 {
			if err := json.Unmarshal(args, &ma); err != nil {
				return nil, fmt.Errorf("phone: bad send_mms args: %w", err)
			}
		}
		if ma.SizeKB <= 0 {
			ma.SizeKB = 40
		}
		dur := MMSFixed + time.Duration(float64(ma.SizeKB)/MMSKBPerSec*float64(time.Second))
		if err := p.block(ctx, dur); err != nil {
			return nil, err
		}
		return p.deliver(Message{Kind: "mms", Text: ma.Text, PhotoPath: ma.PhotoPath, SizeKB: ma.SizeKB})
	case "ring":
		if err := p.block(ctx, RingTime); err != nil {
			return nil, err
		}
		p.mu.Lock()
		p.rings++
		n := p.rings
		p.mu.Unlock()
		return map[string]any{"rings": n}, nil
	default:
		return nil, fmt.Errorf("%w: phone cannot %q", device.ErrUnknownOp, op)
	}
}

// block holds the phone busy for dur of clock time.
func (p *Phone) block(ctx context.Context, dur time.Duration) error {
	p.mu.Lock()
	p.busy++
	p.mu.Unlock()
	err := vclock.SleepCtx(ctx, p.clk, dur)
	p.mu.Lock()
	p.busy--
	p.mu.Unlock()
	if err != nil {
		return fmt.Errorf("phone: operation interrupted: %w", err)
	}
	return nil
}

// deliver appends to the inbox unless coverage was lost mid-transfer.
func (p *Phone) deliver(msg Message) (any, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.covered {
		return nil, ErrNoCoverage
	}
	msg.ReceivedAt = p.clk.Now()
	p.inbox = append(p.inbox, msg)
	p.delivery++
	return map[string]any{"delivered": p.delivery}, nil
}
