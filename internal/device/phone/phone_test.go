package phone

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"aorta/internal/device"
	"aorta/internal/vclock"
)

func newPhone() *Phone {
	return New("phone-1", "+852555001", "manager", vclock.NewScaled(1000))
}

func TestIdentity(t *testing.T) {
	p := newPhone()
	if p.Type() != "phone" || p.ID() != "phone-1" || p.Number() != "+852555001" {
		t.Errorf("identity = %s/%s/%s", p.Type(), p.ID(), p.Number())
	}
	if !p.InCoverage() {
		t.Error("new phone out of coverage")
	}
}

func TestSendSMS(t *testing.T) {
	p := newPhone()
	args, _ := json.Marshal(SMSArgs{Text: "motion detected"})
	if _, err := p.Exec(context.Background(), "send_sms", args); err != nil {
		t.Fatal(err)
	}
	inbox := p.Inbox()
	if len(inbox) != 1 || inbox[0].Kind != "sms" || inbox[0].Text != "motion detected" {
		t.Fatalf("inbox = %+v", inbox)
	}
}

func TestSendMMSWithPhoto(t *testing.T) {
	p := newPhone()
	args, _ := json.Marshal(MMSArgs{PhotoPath: "photos/admin/1.jpg", SizeKB: 40})
	if _, err := p.Exec(context.Background(), "send_mms", args); err != nil {
		t.Fatal(err)
	}
	inbox := p.Inbox()
	if len(inbox) != 1 || inbox[0].Kind != "mms" || inbox[0].PhotoPath != "photos/admin/1.jpg" || inbox[0].SizeKB != 40 {
		t.Fatalf("inbox = %+v", inbox)
	}
}

func TestMMSDefaultSize(t *testing.T) {
	p := newPhone()
	if _, err := p.Exec(context.Background(), "send_mms", nil); err != nil {
		t.Fatal(err)
	}
	if got := p.Inbox()[0].SizeKB; got != 40 {
		t.Errorf("default MMS size = %d, want 40", got)
	}
}

func TestRing(t *testing.T) {
	p := newPhone()
	res, err := p.Exec(context.Background(), "ring", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.(map[string]any)["rings"] != 1 {
		t.Errorf("ring result = %v", res)
	}
}

func TestOutOfCoverageFailsEverything(t *testing.T) {
	p := newPhone()
	p.SetCoverage(false)
	for _, op := range []string{"send_sms", "send_mms", "ring"} {
		if _, err := p.Exec(context.Background(), op, nil); !errors.Is(err, ErrNoCoverage) {
			t.Errorf("%s err = %v, want ErrNoCoverage", op, err)
		}
	}
	if len(p.Inbox()) != 0 {
		t.Error("message delivered while out of coverage")
	}
	p.SetCoverage(true)
	if _, err := p.Exec(context.Background(), "send_sms", nil); err != nil {
		t.Errorf("send after coverage restored: %v", err)
	}
}

func TestCoverageLostMidTransfer(t *testing.T) {
	// Coverage drops while the MMS is in flight: delivery must fail.
	clk := vclock.NewScaled(100)
	p := New("phone-2", "+852555002", "guard", clk)
	done := make(chan error, 1)
	go func() {
		args, _ := json.Marshal(MMSArgs{SizeKB: 400}) // 10.8s virtual
		_, err := p.Exec(context.Background(), "send_mms", args)
		done <- err
	}()
	// Drop coverage while the transfer is in flight.
	for i := 0; i < 1000 && !p.Busy(); i++ {
	}
	p.SetCoverage(false)
	if err := <-done; !errors.Is(err, ErrNoCoverage) {
		t.Fatalf("mid-transfer err = %v, want ErrNoCoverage", err)
	}
	if len(p.Inbox()) != 0 {
		t.Error("message delivered despite coverage loss")
	}
}

func TestReadAttrs(t *testing.T) {
	p := newPhone()
	tests := []struct {
		attr string
		want any
	}{
		{"id", "phone-1"},
		{"number", "+852555001"},
		{"owner", "manager"},
		{"in_coverage", 1},
		{"inbox_count", 0},
	}
	for _, tt := range tests {
		got, err := p.ReadAttr(tt.attr)
		if err != nil {
			t.Fatalf("ReadAttr(%s): %v", tt.attr, err)
		}
		if got != tt.want {
			t.Errorf("ReadAttr(%s) = %v, want %v", tt.attr, got, tt.want)
		}
	}
	if _, err := p.ReadAttr("imei"); !errors.Is(err, device.ErrUnknownAttr) {
		t.Errorf("unknown attr err = %v", err)
	}
}

func TestInboxCountTracksDeliveries(t *testing.T) {
	p := newPhone()
	for i := 0; i < 3; i++ {
		if _, err := p.Exec(context.Background(), "send_sms", nil); err != nil {
			t.Fatal(err)
		}
	}
	n, _ := p.ReadAttr("inbox_count")
	if n != 3 {
		t.Errorf("inbox_count = %v, want 3", n)
	}
}

func TestStatusJSON(t *testing.T) {
	p := newPhone()
	var st Status
	if err := json.Unmarshal(p.Status(), &st); err != nil {
		t.Fatal(err)
	}
	if !st.InCoverage || st.InboxCount != 0 || st.Busy {
		t.Errorf("status = %+v", st)
	}
}

func TestUnknownOp(t *testing.T) {
	p := newPhone()
	if _, err := p.Exec(context.Background(), "teleport", nil); !errors.Is(err, device.ErrUnknownOp) {
		t.Fatalf("err = %v, want ErrUnknownOp", err)
	}
}

func TestBadArgs(t *testing.T) {
	p := newPhone()
	if _, err := p.Exec(context.Background(), "send_sms", json.RawMessage("{")); err == nil {
		t.Error("bad sms args accepted")
	}
	if _, err := p.Exec(context.Background(), "send_mms", json.RawMessage("[")); err == nil {
		t.Error("bad mms args accepted")
	}
}

func TestInboxIsACopy(t *testing.T) {
	p := newPhone()
	if _, err := p.Exec(context.Background(), "send_sms", nil); err != nil {
		t.Fatal(err)
	}
	inbox := p.Inbox()
	inbox[0].Text = "tampered"
	if p.Inbox()[0].Text == "tampered" {
		t.Error("Inbox returned a live reference, not a copy")
	}
}
