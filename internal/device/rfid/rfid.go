// Package rfid emulates an RFID reader — the paper's future-work item of
// "extending the uniform data communication layer to support new types of
// devices", and the device class its related-work section singles out
// (Römer et al.'s smart identification frameworks).
//
// The reader is a *new* device type added without touching the engine or
// the communication layer: its catalog, atomic operation costs and action
// profile are plain XML registered at runtime (see the extensibility test
// in this package and the engine-level one in internal/core).
package rfid

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"aorta/internal/device"
	"aorta/internal/geo"
	"aorta/internal/vclock"
)

// Operation timing, mirrored in the catalog XML in this package.
const (
	ScanTime     = 300 * time.Millisecond
	WriteTagTime = 500 * time.Millisecond
)

// CatalogXML is the device catalog for the rfid type, registrable with
// profile.ParseCatalog.
const CatalogXML = `<catalog device_type="rfid">
  <attribute name="id" type="string" sensory="false">device identifier</attribute>
  <attribute name="loc" type="point" sensory="false" unit="m">reader position</attribute>
  <attribute name="tags_in_range" type="int" sensory="true">tags currently in the read field</attribute>
  <attribute name="last_tag" type="string" sensory="true">most recently scanned tag</attribute>
  <attribute name="scans" type="int" sensory="true">lifetime scan count</attribute>
</catalog>`

// CostsXML is the atomic_operation_cost.xml document for the rfid type.
const CostsXML = `<atomic_operation_costs device_type="rfid">
  <operation name="connect" fixed_ms="30"/>
  <operation name="scan" fixed_ms="300"/>
  <operation name="write_tag" fixed_ms="500"/>
</atomic_operation_costs>`

// ScanTagProfileXML is the action profile of the scantag() action.
const ScanTagProfileXML = `<action name="scantag" device_type="rfid" exclusive="true">
  <seq>
    <op name="connect"/>
    <op name="scan"/>
  </seq>
</action>`

// ScanResult is the result of a "scan" operation.
type ScanResult struct {
	Tags []string `json:"tags"`
}

// WriteArgs are the arguments of the "write_tag" operation.
type WriteArgs struct {
	Tag  string `json:"tag"`
	Data string `json:"data"`
}

// Status is the reader's physical status as reported to probes.
type Status struct {
	TagsInRange int  `json:"tags_in_range"`
	Busy        bool `json:"busy"`
}

// Reader is the emulated RFID reader. It implements device.Model.
type Reader struct {
	id  string
	loc geo.Point
	clk vclock.Clock

	mu      sync.Mutex
	tags    map[string]string // tag ID → data
	lastTag string
	scans   int
	busy    int
}

var _ device.Model = (*Reader)(nil)

// New returns a reader at loc with an empty field.
func New(id string, loc geo.Point, clk vclock.Clock) *Reader {
	return &Reader{id: id, loc: loc, clk: clk, tags: make(map[string]string)}
}

// Type implements device.Model.
func (r *Reader) Type() string { return "rfid" }

// ID implements device.Model.
func (r *Reader) ID() string { return r.id }

// Location returns the reader position.
func (r *Reader) Location() geo.Point { return r.loc }

// PlaceTag puts a tag into the read field — the physical world moving a
// tagged object near the reader.
func (r *Reader) PlaceTag(tag, data string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tags[tag] = data
}

// RemoveTag takes a tag out of the field.
func (r *Reader) RemoveTag(tag string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.tags, tag)
}

// Busy implements device.Model.
func (r *Reader) Busy() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.busy > 0
}

// Status implements device.Model.
func (r *Reader) Status() json.RawMessage {
	r.mu.Lock()
	st := Status{TagsInRange: len(r.tags), Busy: r.busy > 0}
	r.mu.Unlock()
	b, err := json.Marshal(&st)
	if err != nil {
		panic(fmt.Sprintf("rfid: marshal status: %v", err))
	}
	return b
}

// ReadAttr implements device.Model.
func (r *Reader) ReadAttr(name string) (any, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch name {
	case "id":
		return r.id, nil
	case "loc":
		return r.loc, nil
	case "tags_in_range":
		return len(r.tags), nil
	case "last_tag":
		return r.lastTag, nil
	case "scans":
		return r.scans, nil
	default:
		return nil, fmt.Errorf("%w: rfid reader has no attribute %q", device.ErrUnknownAttr, name)
	}
}

// Exec implements device.Model. Supported operations: "scan",
// "write_tag".
func (r *Reader) Exec(ctx context.Context, op string, args json.RawMessage) (any, error) {
	switch op {
	case "scan":
		if err := r.block(ctx, ScanTime); err != nil {
			return nil, err
		}
		r.mu.Lock()
		defer r.mu.Unlock()
		tags := make([]string, 0, len(r.tags))
		for t := range r.tags {
			tags = append(tags, t)
		}
		sort.Strings(tags)
		r.scans++
		if len(tags) > 0 {
			r.lastTag = tags[len(tags)-1]
		}
		return &ScanResult{Tags: tags}, nil
	case "write_tag":
		var wa WriteArgs
		if len(args) > 0 {
			if err := json.Unmarshal(args, &wa); err != nil {
				return nil, fmt.Errorf("rfid: bad write_tag args: %w", err)
			}
		}
		if err := r.block(ctx, WriteTagTime); err != nil {
			return nil, err
		}
		r.mu.Lock()
		defer r.mu.Unlock()
		if _, ok := r.tags[wa.Tag]; !ok {
			return nil, fmt.Errorf("rfid: tag %q not in range", wa.Tag)
		}
		r.tags[wa.Tag] = wa.Data
		return map[string]any{"written": wa.Tag}, nil
	default:
		return nil, fmt.Errorf("%w: rfid reader cannot %q", device.ErrUnknownOp, op)
	}
}

// TagData returns the data stored on a tag in range.
func (r *Reader) TagData(tag string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.tags[tag]
	return d, ok
}

func (r *Reader) block(ctx context.Context, dur time.Duration) error {
	r.mu.Lock()
	r.busy++
	r.mu.Unlock()
	err := vclock.SleepCtx(ctx, r.clk, dur)
	r.mu.Lock()
	r.busy--
	r.mu.Unlock()
	if err != nil {
		return fmt.Errorf("rfid: operation interrupted: %w", err)
	}
	return nil
}
