package rfid

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"aorta/internal/device"
	"aorta/internal/geo"
	"aorta/internal/profile"
	"aorta/internal/vclock"
)

func newReader() *Reader {
	return New("rfid-1", geo.Point{X: 1, Y: 2}, vclock.NewScaled(1000))
}

func TestIdentity(t *testing.T) {
	r := newReader()
	if r.Type() != "rfid" || r.ID() != "rfid-1" {
		t.Errorf("identity = %s/%s", r.Type(), r.ID())
	}
	if r.Location() != (geo.Point{X: 1, Y: 2}) {
		t.Errorf("loc = %v", r.Location())
	}
}

func TestScanEmptyField(t *testing.T) {
	r := newReader()
	res, err := r.Exec(context.Background(), "scan", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.(*ScanResult); len(got.Tags) != 0 {
		t.Errorf("tags = %v", got.Tags)
	}
}

func TestPlaceScanRemove(t *testing.T) {
	r := newReader()
	r.PlaceTag("tag-b", "beta")
	r.PlaceTag("tag-a", "alpha")
	res, err := r.Exec(context.Background(), "scan", nil)
	if err != nil {
		t.Fatal(err)
	}
	tags := res.(*ScanResult).Tags
	if len(tags) != 2 || tags[0] != "tag-a" || tags[1] != "tag-b" {
		t.Fatalf("tags = %v", tags)
	}
	if v, _ := r.ReadAttr("last_tag"); v != "tag-b" {
		t.Errorf("last_tag = %v", v)
	}
	if v, _ := r.ReadAttr("scans"); v != 1 {
		t.Errorf("scans = %v", v)
	}
	r.RemoveTag("tag-a")
	if v, _ := r.ReadAttr("tags_in_range"); v != 1 {
		t.Errorf("tags_in_range = %v", v)
	}
}

func TestWriteTag(t *testing.T) {
	r := newReader()
	r.PlaceTag("tag-1", "old")
	args, _ := json.Marshal(WriteArgs{Tag: "tag-1", Data: "new"})
	if _, err := r.Exec(context.Background(), "write_tag", args); err != nil {
		t.Fatal(err)
	}
	if d, ok := r.TagData("tag-1"); !ok || d != "new" {
		t.Errorf("tag data = %q, %v", d, ok)
	}
}

func TestWriteTagOutOfRange(t *testing.T) {
	r := newReader()
	args, _ := json.Marshal(WriteArgs{Tag: "ghost", Data: "x"})
	if _, err := r.Exec(context.Background(), "write_tag", args); err == nil {
		t.Fatal("write to out-of-range tag succeeded")
	}
}

func TestUnknownOpAndAttr(t *testing.T) {
	r := newReader()
	if _, err := r.Exec(context.Background(), "levitate", nil); !errors.Is(err, device.ErrUnknownOp) {
		t.Errorf("err = %v", err)
	}
	if _, err := r.ReadAttr("altitude"); !errors.Is(err, device.ErrUnknownAttr) {
		t.Errorf("err = %v", err)
	}
}

func TestStatusJSON(t *testing.T) {
	r := newReader()
	r.PlaceTag("t", "d")
	var st Status
	if err := json.Unmarshal(r.Status(), &st); err != nil {
		t.Fatal(err)
	}
	if st.TagsInRange != 1 || st.Busy {
		t.Errorf("status = %+v", st)
	}
}

// TestXMLDocumentsParse: the extension's catalog, costs and action
// profile are valid documents that validate against each other.
func TestXMLDocumentsParse(t *testing.T) {
	cat, err := profile.ParseCatalog([]byte(CatalogXML))
	if err != nil {
		t.Fatal(err)
	}
	if cat.DeviceType != "rfid" {
		t.Errorf("device type = %q", cat.DeviceType)
	}
	if a, ok := cat.Attr("tags_in_range"); !ok || !a.Sensory {
		t.Error("tags_in_range missing or not sensory")
	}
	costs, err := profile.ParseAtomicCosts([]byte(CostsXML))
	if err != nil {
		t.Fatal(err)
	}
	ap, err := profile.ParseAction([]byte(ScanTagProfileXML))
	if err != nil {
		t.Fatal(err)
	}
	if err := ap.Validate(costs); err != nil {
		t.Fatal(err)
	}
	cost, err := ap.EstimateCost(costs, profile.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if cost.Milliseconds() != 330 { // connect 30 + scan 300
		t.Errorf("scantag cost = %v, want 330ms", cost)
	}
}

// TestRegisterAsNewDeviceType: the full extensibility flow of paper §3 —
// a brand-new device type joins the registry without code changes to the
// communication layer.
func TestRegisterAsNewDeviceType(t *testing.T) {
	reg, err := profile.DefaultRegistry()
	if err != nil {
		t.Fatal(err)
	}
	cat, _ := profile.ParseCatalog([]byte(CatalogXML))
	if err := reg.RegisterCatalog(cat); err != nil {
		t.Fatal(err)
	}
	costs, _ := profile.ParseAtomicCosts([]byte(CostsXML))
	if err := reg.RegisterCosts(costs); err != nil {
		t.Fatal(err)
	}
	ap, _ := profile.ParseAction([]byte(ScanTagProfileXML))
	if err := reg.RegisterAction(ap); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Catalog("rfid"); !ok {
		t.Error("rfid catalog not registered")
	}
	if _, ok := reg.Action("scantag"); !ok {
		t.Error("scantag action not registered")
	}
}
