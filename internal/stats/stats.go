// Package stats provides the small statistics helpers the experiment
// harness uses to aggregate independent runs.
package stats

import (
	"math"
	"sort"
	"time"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 when len < 2).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using
// nearest-rank on a sorted copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// MeanDuration returns the mean of durations.
func MeanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// Seconds converts durations to float seconds.
func Seconds(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}
