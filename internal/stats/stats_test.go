package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"several", []float64{1, 2, 3, 4}, 2.5},
		{"negative", []float64{-2, 2}, 0},
	}
	for _, tt := range tests {
		if got := Mean(tt.in); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("%s: Mean = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("StdDev of single = %v", got)
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.138) > 0.01 {
		t.Errorf("StdDev = %v, want ≈2.138", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	tests := []struct{ p, want float64 }{
		{0, 1}, {50, 5}, {90, 9}, {100, 10},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); got != tt.want {
			t.Errorf("P%v = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("P50 of empty = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestMeanDuration(t *testing.T) {
	if got := MeanDuration(nil); got != 0 {
		t.Errorf("mean of empty = %v", got)
	}
	got := MeanDuration([]time.Duration{time.Second, 3 * time.Second})
	if got != 2*time.Second {
		t.Errorf("MeanDuration = %v", got)
	}
}

func TestSeconds(t *testing.T) {
	got := Seconds([]time.Duration{500 * time.Millisecond, 2 * time.Second})
	if got[0] != 0.5 || got[1] != 2 {
		t.Errorf("Seconds = %v", got)
	}
}

func TestQuickMeanBounds(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true
			}
		}
		if len(xs) == 0 {
			return Mean(xs) == 0
		}
		m := Mean(xs)
		min, max := xs[0], xs[0]
		for _, x := range xs {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		return m >= min-1e-6 && m <= max+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
