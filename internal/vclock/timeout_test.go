package vclock

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestWithTimeoutFires(t *testing.T) {
	clk := NewScaled(1000)
	ctx, cancel := WithTimeout(context.Background(), clk, 2*time.Second)
	defer cancel()
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("timeout never fired (2 virtual seconds at 1000x)")
	}
	if cause := context.Cause(ctx); !errors.Is(cause, context.DeadlineExceeded) {
		t.Errorf("cause = %v, want DeadlineExceeded", cause)
	}
}

func TestWithTimeoutCancelledEarly(t *testing.T) {
	clk := NewManual(time.Unix(0, 0))
	ctx, cancel := WithTimeout(context.Background(), clk, time.Hour)
	select {
	case <-ctx.Done():
		t.Fatal("done before cancel")
	default:
	}
	cancel()
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("cancel did not end the context")
	}
	if cause := context.Cause(ctx); !errors.Is(cause, context.Canceled) {
		t.Errorf("cause = %v, want Canceled", cause)
	}
	// Idempotent cancel.
	cancel()
}

func TestWithTimeoutParentCancellation(t *testing.T) {
	clk := NewManual(time.Unix(0, 0))
	parent, parentCancel := context.WithCancel(context.Background())
	ctx, cancel := WithTimeout(parent, clk, time.Hour)
	defer cancel()
	parentCancel()
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("parent cancellation not propagated")
	}
}

func TestWithTimeoutManualClock(t *testing.T) {
	clk := NewManual(time.Unix(0, 0))
	ctx, cancel := WithTimeout(context.Background(), clk, 10*time.Second)
	defer cancel()
	// Wait for the timer goroutine to register its waiter.
	for i := 0; i < 1000 && clk.Waiters() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	clk.Advance(9 * time.Second)
	select {
	case <-ctx.Done():
		t.Fatal("fired before the deadline")
	case <-time.After(20 * time.Millisecond):
	}
	clk.Advance(2 * time.Second)
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("never fired after Advance past deadline")
	}
}
