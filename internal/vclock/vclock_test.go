package vclock

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestRealNowMonotone(t *testing.T) {
	c := Real{}
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("Now went backwards: %v then %v", a, b)
	}
}

func TestRealSince(t *testing.T) {
	c := Real{}
	start := c.Now()
	if d := c.Since(start); d < 0 {
		t.Fatalf("Since returned negative duration %v", d)
	}
}

func TestScaledNowAdvancesFaster(t *testing.T) {
	c := NewScaled(1000)
	start := c.Now()
	time.Sleep(5 * time.Millisecond)
	elapsed := c.Since(start)
	if elapsed < 2*time.Second {
		t.Fatalf("scaled clock advanced only %v in 5ms of wall time at 1000x", elapsed)
	}
}

func TestScaledSleepIsShortened(t *testing.T) {
	c := NewScaled(1000)
	wall := time.Now()
	c.Sleep(1 * time.Second) // should take ~1ms of wall time
	if real := time.Since(wall); real > 500*time.Millisecond {
		t.Fatalf("scaled sleep of 1s took %v wall time at 1000x", real)
	}
}

func TestScaledSleepZeroReturnsImmediately(t *testing.T) {
	c := NewScaled(10)
	done := make(chan struct{})
	go func() {
		c.Sleep(0)
		c.Sleep(-time.Second)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep(0) blocked")
	}
}

func TestScaledAfterFires(t *testing.T) {
	c := NewScaled(1000)
	select {
	case <-c.After(time.Second):
	case <-time.After(2 * time.Second):
		t.Fatal("After(1s) at 1000x did not fire within 2s wall time")
	}
}

func TestScaledFactor(t *testing.T) {
	if got := NewScaled(42).Factor(); got != 42 {
		t.Fatalf("Factor() = %v, want 42", got)
	}
}

func TestNewScaledPanicsOnNonPositive(t *testing.T) {
	for _, f := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewScaled(%v) did not panic", f)
				}
			}()
			NewScaled(f)
		}()
	}
}

func TestManualNowFixedUntilAdvance(t *testing.T) {
	start := time.Date(2005, 6, 1, 0, 0, 0, 0, time.UTC)
	c := NewManual(start)
	if !c.Now().Equal(start) {
		t.Fatalf("Now() = %v, want %v", c.Now(), start)
	}
	c.Advance(time.Minute)
	if want := start.Add(time.Minute); !c.Now().Equal(want) {
		t.Fatalf("Now() after Advance = %v, want %v", c.Now(), want)
	}
}

func TestManualAfterFiresOnAdvance(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	ch := c.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before Advance")
	default:
	}
	c.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired too early")
	default:
	}
	c.Advance(time.Second)
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("After did not fire after full Advance")
	}
}

func TestManualAfterNonPositiveFiresImmediately(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	select {
	case <-c.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestManualSleepWakesSleeper(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Sleep(5 * time.Second)
	}()
	// Wait for the sleeper to register.
	for i := 0; i < 1000 && c.Waiters() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if c.Waiters() != 1 {
		t.Fatal("sleeper never registered")
	}
	c.Advance(5 * time.Second)
	wg.Wait()
}

func TestManualConcurrentWaiters(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	const n = 20
	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.Sleep(time.Duration(i) * time.Second)
		}(i)
	}
	for i := 0; i < 1000 && c.Waiters() < n; i++ {
		time.Sleep(time.Millisecond)
	}
	c.Advance(time.Duration(n) * time.Second)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("not all sleepers woke; %d still waiting", c.Waiters())
	}
}

func TestSleepCtxCancelled(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- SleepCtx(ctx, c, time.Hour) }()
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("SleepCtx returned %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("SleepCtx did not return after cancel")
	}
}

func TestSleepCtxCompletes(t *testing.T) {
	c := NewScaled(100000)
	if err := SleepCtx(context.Background(), c, time.Second); err != nil {
		t.Fatalf("SleepCtx returned %v, want nil", err)
	}
}

func TestSleepCtxZeroDuration(t *testing.T) {
	if err := SleepCtx(context.Background(), Real{}, 0); err != nil {
		t.Fatalf("SleepCtx(0) = %v, want nil", err)
	}
}
