// Package vclock provides the clock abstraction used throughout Aorta.
//
// All time-dependent code in the engine, the communication layer and the
// device emulators reads time through a Clock so that empirical studies can
// run against a scaled clock (a "10-minute" workload finishes in seconds)
// and unit tests can run against a fully manual clock.
package vclock

import (
	"context"
	"sync"
	"time"
)

// Clock is the minimal time source Aorta components depend on.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks the calling goroutine for d of this clock's time.
	Sleep(d time.Duration)
	// After returns a channel that delivers the clock's time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
	// Since returns the time elapsed since t on this clock.
	Since(t time.Time) time.Duration
}

// Real is the wall clock.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// Scaled is a wall clock that runs factor times faster than real time.
// Durations slept or waited on are divided by the factor; Now advances
// factor times faster than the wall clock. A factor of 60 runs a
// one-minute workload in one second.
type Scaled struct {
	factor float64
	epoch  time.Time // wall-clock epoch
	base   time.Time // virtual epoch
}

var _ Clock = (*Scaled)(nil)

// NewScaled returns a clock that runs factor times faster than wall time.
// factor must be positive; NewScaled panics otherwise because a
// non-positive scale is a programming error, not a runtime condition.
func NewScaled(factor float64) *Scaled {
	if factor <= 0 {
		panic("vclock: scale factor must be positive")
	}
	now := time.Now()
	return &Scaled{factor: factor, epoch: now, base: now}
}

// Factor returns the speed-up factor of the clock.
func (s *Scaled) Factor() float64 { return s.factor }

// Now implements Clock.
func (s *Scaled) Now() time.Time {
	elapsed := time.Since(s.epoch)
	return s.base.Add(time.Duration(float64(elapsed) * s.factor))
}

// Sleep implements Clock.
func (s *Scaled) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	time.Sleep(s.real(d))
}

// After implements Clock.
func (s *Scaled) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	timer := time.AfterFunc(s.real(d), func() {
		ch <- s.Now()
	})
	_ = timer
	return ch
}

// Since implements Clock.
func (s *Scaled) Since(t time.Time) time.Duration { return s.Now().Sub(t) }

func (s *Scaled) real(d time.Duration) time.Duration {
	rd := time.Duration(float64(d) / s.factor)
	if rd <= 0 && d > 0 {
		rd = time.Nanosecond
	}
	return rd
}

// Manual is a test clock whose time only moves when Advance is called.
// It is safe for concurrent use.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*manualWaiter
}

type manualWaiter struct {
	at time.Time
	ch chan time.Time
}

var _ Clock = (*Manual)(nil)

// NewManual returns a manual clock starting at start.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start}
}

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Sleep implements Clock. It blocks until Advance moves the clock past the
// deadline.
func (m *Manual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-m.After(d)
}

// After implements Clock.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	ch := make(chan time.Time, 1)
	at := m.now.Add(d)
	if d <= 0 {
		ch <- m.now
		return ch
	}
	m.waiters = append(m.waiters, &manualWaiter{at: at, ch: ch})
	return ch
}

// Since implements Clock.
func (m *Manual) Since(t time.Time) time.Duration { return m.Now().Sub(t) }

// Advance moves the clock forward by d, waking every waiter whose deadline
// has passed.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	m.now = m.now.Add(d)
	now := m.now
	remaining := m.waiters[:0]
	var fired []*manualWaiter
	for _, w := range m.waiters {
		if !w.at.After(now) {
			fired = append(fired, w)
		} else {
			remaining = append(remaining, w)
		}
	}
	m.waiters = remaining
	m.mu.Unlock()
	for _, w := range fired {
		w.ch <- now
	}
}

// Waiters reports the number of goroutines currently blocked on the clock.
func (m *Manual) Waiters() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.waiters)
}

// WithTimeout returns a context that is cancelled after d of clk's time.
// Unlike context.WithTimeout it honours scaled and manual clocks, so a
// "2-second" device timeout expires after 2 virtual seconds.
// The returned context's Err is context.Canceled either way; use
// context.Cause to distinguish a timeout (context.DeadlineExceeded) from
// caller cancellation.
func WithTimeout(ctx context.Context, clk Clock, d time.Duration) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancelCause(ctx)
	stop := make(chan struct{})
	var once sync.Once
	go func() {
		select {
		case <-clk.After(d):
			cancel(context.DeadlineExceeded)
		case <-stop:
		case <-ctx.Done():
		}
	}()
	return ctx, func() {
		once.Do(func() { close(stop) })
		cancel(context.Canceled)
	}
}

// SleepCtx sleeps on clk for d but returns early with ctx.Err() if the
// context is cancelled first. It returns nil when the full duration
// elapsed.
func SleepCtx(ctx context.Context, clk Clock, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-clk.After(d):
		return nil
	}
}
