// Package wal implements the engine's write-ahead journal: the durable
// backing for the query catalog, device membership and in-flight action
// intents, so a crashed daemon restarts into the state it committed to
// rather than an empty engine.
//
// The journal is a directory of numbered segment files. Every record is a
// CRC32-framed JSON envelope; appends go to the newest segment, and when
// it outgrows Options.SegmentBytes the journal rotates: a new segment is
// started with a full state snapshot (asked from the owner through
// SetSnapshotFunc) as its first record, and the older segments are
// deleted — compaction keeps replay time proportional to live state, not
// to history. On open, a torn final record (the classic mid-write crash)
// is detected by its checksum and truncated away; corruption anywhere
// else is an error, never silently skipped.
//
// A lock file guards the directory so two daemons can never interleave
// writes into one journal.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Errors returned by the journal.
var (
	// ErrLocked: another process holds the data directory's lock.
	ErrLocked = errors.New("wal: data directory locked by another process")
	// ErrClosed: the journal was closed (or crashed) and cannot accept
	// further operations.
	ErrClosed = errors.New("wal: journal closed")
	// ErrCorrupt: a record failed its checksum somewhere other than the
	// tail of the final segment, where truncation would lose committed
	// history.
	ErrCorrupt = errors.New("wal: corrupt record")
)

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append — the default: an acknowledged
	// catalog mutation or intent survives an immediate power cut.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most once per Options.SyncEvery of wall time;
	// a crash may lose the records appended since the last sync.
	SyncInterval
	// SyncNever leaves flushing to the OS page cache (Close still syncs).
	// Process crashes lose nothing — only power loss does.
	SyncNever
)

// Defaults.
const (
	DefaultSegmentBytes = int64(4 << 20)
	DefaultSyncEvery    = 100 * time.Millisecond

	segmentSuffix = ".wal"
	lockFileName  = "LOCK"
	// headerSize frames each record: 4-byte big-endian length + 4-byte
	// CRC32-Castagnoli of the body.
	headerSize = 8
	// maxRecordSize bounds a single record so a corrupt length prefix
	// cannot force a huge allocation during replay.
	maxRecordSize = 16 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a journal. Zero values select defaults.
type Options struct {
	// SegmentBytes is the rotation threshold of the active segment.
	SegmentBytes int64
	// Sync is the fsync policy for appends.
	Sync SyncPolicy
	// SyncEvery is the SyncInterval period.
	SyncEvery time.Duration
}

func (o Options) resolve() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = DefaultSyncEvery
	}
	return o
}

// Stats is a point-in-time view of the journal's counters.
type Stats struct {
	// Segments is the live segment-file count.
	Segments int
	// ActiveSegment is the sequence number of the append segment.
	ActiveSegment uint64
	// Bytes is the total size of all live segments.
	Bytes int64
	// Appends counts records appended this session.
	Appends int64
	// Syncs counts fsync calls this session.
	Syncs int64
	// Compactions counts snapshot rotations that deleted older segments.
	Compactions int64
	// AppendErrors and SyncErrors count failed appends and fsyncs this
	// session (injected faults included). A non-zero value is the early
	// warning the engine's degraded mode fires on.
	AppendErrors int64
	SyncErrors   int64
	// TornTailBytes is how many bytes of torn final record were truncated
	// away when the journal was opened.
	TornTailBytes int64
}

// Journal is a segmented, checksummed write-ahead log over one directory.
// It is safe for concurrent use.
type Journal struct {
	dir  string
	opts Options
	lock *dirLock

	mu         sync.Mutex
	active     *os.File
	activeSeq  uint64
	activeSize int64
	closed     bool
	lastSync   time.Time
	snapshotFn func() ([]byte, error)
	stats      Stats

	// failAppends/failSyncs make the next N appends/fsyncs fail with the
	// injected error — the disk-fault hook for degraded-mode tests and the
	// chaos study (ENOSPC, I/O errors). Guarded by mu.
	failAppends int
	failSyncs   int
	failErr     error
}

// Open opens (creating if necessary) the journal in dir and acquires its
// exclusive lock; a directory already locked by a live process returns
// ErrLocked. A torn final record left by a crash is truncated away here,
// so the journal always reopens ending on a record boundary.
func Open(dir string, opts Options) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	lock, err := acquireDirLock(filepath.Join(dir, lockFileName))
	if err != nil {
		return nil, err
	}
	j := &Journal{dir: dir, opts: opts.resolve(), lock: lock}
	if err := j.openSegments(); err != nil {
		lock.release()
		return nil, err
	}
	return j, nil
}

// openSegments finds the existing segment chain, truncates any torn tail
// off the final segment and opens it for appending (creating segment 1
// for an empty directory).
func (j *Journal) openSegments() error {
	segs, err := j.listSegments()
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		return j.createSegment(1)
	}
	last := segs[len(segs)-1]
	path := j.segmentPath(last)
	validLen, invalid, err := forEachRecord(path, func(Record) error { return nil })
	if err != nil {
		return err
	}
	if invalid != nil {
		info, err := os.Stat(path)
		if err != nil {
			return fmt.Errorf("wal: stat %s: %w", path, err)
		}
		j.stats.TornTailBytes = info.Size() - validLen
		if err := os.Truncate(path, validLen); err != nil {
			return fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	j.active = f
	j.activeSeq = last
	j.activeSize = validLen
	return nil
}

// SetSnapshotFunc installs the compaction source: at every rotation fn is
// asked for a full-state snapshot, which becomes the first record of the
// new segment, and all older segments are deleted. Without it rotation
// still happens but history accumulates.
func (j *Journal) SetSnapshotFunc(fn func() ([]byte, error)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.snapshotFn = fn
}

// Append writes one record, syncs it per the policy and rotates the
// segment past the size threshold.
func (j *Journal) Append(rec Record) error {
	body, err := rec.marshal()
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if err := j.appendLocked(body); err != nil {
		return err
	}
	if err := j.maybeSyncLocked(); err != nil {
		return err
	}
	if j.activeSize >= j.opts.SegmentBytes {
		return j.rotateLocked()
	}
	return nil
}

// appendLocked frames and writes one marshaled record body.
func (j *Journal) appendLocked(body []byte) error {
	if len(body) > maxRecordSize {
		return fmt.Errorf("wal: record of %d bytes exceeds the %d-byte limit", len(body), maxRecordSize)
	}
	if j.failAppends > 0 {
		j.failAppends--
		j.stats.AppendErrors++
		return fmt.Errorf("wal: append: %w", j.injectedErr())
	}
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(body, crcTable))
	if _, err := j.active.Write(hdr[:]); err != nil {
		j.stats.AppendErrors++
		return fmt.Errorf("wal: append: %w", err)
	}
	if _, err := j.active.Write(body); err != nil {
		j.stats.AppendErrors++
		return fmt.Errorf("wal: append: %w", err)
	}
	j.activeSize += int64(headerSize + len(body))
	j.stats.Appends++
	return nil
}

func (j *Journal) maybeSyncLocked() error {
	switch j.opts.Sync {
	case SyncAlways:
		return j.syncLocked()
	case SyncInterval:
		// Wall time, deliberately: the fsync budget is a property of the
		// host's disk, not of any virtual clock the engine runs on.
		if time.Since(j.lastSync) >= j.opts.SyncEvery {
			return j.syncLocked()
		}
	}
	return nil
}

func (j *Journal) syncLocked() error {
	if j.failSyncs > 0 {
		j.failSyncs--
		j.stats.SyncErrors++
		return fmt.Errorf("wal: sync: %w", j.injectedErr())
	}
	if err := j.active.Sync(); err != nil {
		j.stats.SyncErrors++
		return fmt.Errorf("wal: sync: %w", err)
	}
	j.stats.Syncs++
	j.lastSync = time.Now()
	return nil
}

// ErrNoSpace is the default injected fault: what a full disk under the
// journal directory looks like.
var ErrNoSpace = errors.New("wal: no space left on device")

// InjectFaults makes the next appends appends and syncs fsyncs fail with
// err (ErrNoSpace when err is nil) instead of touching the disk. The
// fault-injection hook behind the WAL degraded-mode tests and the chaos
// study: a journal whose disk fills must degrade durability, flip the
// engine read-only, and recover once writes succeed again. Passing 0, 0
// clears any armed faults.
func (j *Journal) InjectFaults(appends, syncs int, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err == nil {
		err = ErrNoSpace
	}
	j.failAppends = appends
	j.failSyncs = syncs
	j.failErr = err
}

func (j *Journal) injectedErr() error {
	if j.failErr != nil {
		return j.failErr
	}
	return ErrNoSpace
}

// rotateLocked starts the next segment. With a snapshot source installed
// the new segment opens with a full-state snapshot and every older
// segment is deleted (compaction); otherwise the chain just grows.
func (j *Journal) rotateLocked() error {
	var snap []byte
	if j.snapshotFn != nil {
		var err error
		snap, err = j.snapshotFn()
		if err != nil {
			// A failed snapshot must not lose history: keep appending to the
			// old chain and let a later rotation try again.
			return fmt.Errorf("wal: snapshot for compaction: %w", err)
		}
	}
	if err := j.syncLocked(); err != nil {
		return err
	}
	if err := j.active.Close(); err != nil {
		return fmt.Errorf("wal: close segment: %w", err)
	}
	prev := j.activeSeq
	if err := j.createSegment(prev + 1); err != nil {
		return err
	}
	if snap != nil {
		body, err := Record{Kind: KindSnapshot, Data: snap}.marshal()
		if err != nil {
			return err
		}
		if err := j.appendLocked(body); err != nil {
			return err
		}
		// The snapshot must be durable before the history it replaces goes.
		if err := j.syncLocked(); err != nil {
			return err
		}
		segs, err := j.listSegments()
		if err != nil {
			return err
		}
		for _, seq := range segs {
			if seq < j.activeSeq {
				if err := os.Remove(j.segmentPath(seq)); err != nil {
					return fmt.Errorf("wal: compact: %w", err)
				}
			}
		}
		j.stats.Compactions++
	}
	return nil
}

func (j *Journal) createSegment(seq uint64) error {
	f, err := os.OpenFile(j.segmentPath(seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	j.active = f
	j.activeSeq = seq
	j.activeSize = 0
	return nil
}

// Compact forces a rotation now, folding all state into one fresh
// snapshot segment. Requires a snapshot source.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.snapshotFn == nil {
		return errors.New("wal: Compact needs SetSnapshotFunc")
	}
	return j.rotateLocked()
}

// Sync flushes the active segment to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	return j.syncLocked()
}

// Close syncs, closes the active segment and releases the directory
// lock. It is idempotent.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	err := j.active.Sync()
	if cerr := j.active.Close(); err == nil {
		err = cerr
	}
	j.lock.release()
	if err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}

// Crash severs the journal without syncing, the way a killed process
// does: file descriptors and the lock just vanish; whatever the OS has
// already accepted survives, everything else is the crash's business.
// Fault-injection hook for the recovery tests and the crashrec study.
func (j *Journal) Crash() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.closed = true
	_ = j.active.Close()
	j.lock.release()
}

// Stats returns the journal's counters. Bytes and Segments are computed
// from the live segment files.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := j.stats
	s.ActiveSegment = j.activeSeq
	segs, err := j.listSegments()
	if err != nil {
		return s
	}
	s.Segments = len(segs)
	for _, seq := range segs {
		if info, err := os.Stat(j.segmentPath(seq)); err == nil {
			s.Bytes += info.Size()
		}
	}
	return s
}

// Dir returns the journal's data directory.
func (j *Journal) Dir() string { return j.dir }

// Replay streams every committed record, oldest first, into fn. It starts
// at the most recent segment that opens with a snapshot (everything older
// is superseded); an invalid record in the final segment ends the stream
// — that is the torn tail Open truncates — while one in any earlier
// segment is ErrCorrupt. A non-nil error from fn aborts the replay.
//
// Replay may be called while the journal is open for appending; it reads
// the segment files independently.
func (j *Journal) Replay(fn func(Record) error) error {
	j.mu.Lock()
	segs, err := j.listSegments()
	j.mu.Unlock()
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		return nil
	}
	start := 0
	for i := len(segs) - 1; i > 0; i-- {
		leads, err := leadsWithSnapshot(j.segmentPath(segs[i]))
		if err != nil {
			return err
		}
		if leads {
			start = i
			break
		}
	}
	for i := start; i < len(segs); i++ {
		path := j.segmentPath(segs[i])
		_, invalid, err := forEachRecord(path, fn)
		if err != nil {
			return err
		}
		if invalid != nil && i != len(segs)-1 {
			return fmt.Errorf("%w: %s: %v", ErrCorrupt, filepath.Base(path), invalid)
		}
	}
	return nil
}

// leadsWithSnapshot reports whether the segment's first record is a
// snapshot.
func leadsWithSnapshot(path string) (bool, error) {
	var kind Kind
	found := false
	stop := errors.New("stop")
	_, _, err := forEachRecord(path, func(rec Record) error {
		kind = rec.Kind
		found = true
		return stop
	})
	if err != nil && !errors.Is(err, stop) {
		return false, err
	}
	return found && kind == KindSnapshot, nil
}

// forEachRecord streams the valid prefix of one segment file into fn. It
// returns the byte length of that prefix and, when the file ends
// mid-record or fails a checksum, a non-nil invalid describing where.
// Errors from fn abort the scan and are returned as err.
func forEachRecord(path string, fn func(Record) error) (validLen int64, invalid error, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	defer f.Close()
	r := &countingReader{r: f}
	for {
		var hdr [headerSize]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return validLen, nil, nil // clean record boundary
			}
			return validLen, fmt.Errorf("partial header at offset %d", validLen), nil
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		if n > maxRecordSize {
			return validLen, fmt.Errorf("implausible record length %d at offset %d", n, validLen), nil
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			return validLen, fmt.Errorf("partial body at offset %d", validLen), nil
		}
		if got, want := crc32.Checksum(body, crcTable), binary.BigEndian.Uint32(hdr[4:8]); got != want {
			return validLen, fmt.Errorf("checksum mismatch at offset %d", validLen), nil
		}
		var rec Record
		if uerr := rec.unmarshal(body); uerr != nil {
			return validLen, fmt.Errorf("undecodable record at offset %d: %v", validLen, uerr), nil
		}
		if ferr := fn(rec); ferr != nil {
			return validLen, nil, ferr
		}
		validLen = r.n
	}
}

// countingReader tracks how many bytes have been consumed.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (j *Journal) segmentPath(seq uint64) string {
	return filepath.Join(j.dir, fmt.Sprintf("%08d%s", seq, segmentSuffix))
}

// listSegments returns the live segment sequence numbers, ascending.
func (j *Journal) listSegments() ([]uint64, error) {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list segments: %w", err)
	}
	var segs []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(name, segmentSuffix), 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, seq)
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a] < segs[b] })
	return segs, nil
}
