package wal

import (
	"encoding/json"
	"fmt"

	"aorta/internal/geo"
)

// Kind identifies what a journal record describes.
type Kind uint8

// Record kinds. Catalog mutations (device membership and query lifecycle)
// replay into engine state; Intent/Outcome pairs carry the at-least-once
// action guarantee: an intent with no outcome at replay time is work the
// crash interrupted.
const (
	KindSnapshot Kind = iota + 1
	KindRegisterDevice
	KindUnregisterDevice
	KindCreateQuery
	KindDropQuery
	KindStopQuery
	KindStartQuery
	KindIntent
	KindOutcome
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindSnapshot:
		return "snapshot"
	case KindRegisterDevice:
		return "register-device"
	case KindUnregisterDevice:
		return "unregister-device"
	case KindCreateQuery:
		return "create-query"
	case KindDropQuery:
		return "drop-query"
	case KindStopQuery:
		return "stop-query"
	case KindStartQuery:
		return "start-query"
	case KindIntent:
		return "intent"
	case KindOutcome:
		return "outcome"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Record is one journal entry: a kind tag and its JSON payload.
type Record struct {
	Kind Kind            `json:"k"`
	Data json.RawMessage `json:"d,omitempty"`
}

// NewRecord builds a record from a typed payload.
func NewRecord(kind Kind, payload any) (Record, error) {
	data, err := json.Marshal(payload)
	if err != nil {
		return Record{}, fmt.Errorf("wal: marshal %s payload: %w", kind, err)
	}
	return Record{Kind: kind, Data: data}, nil
}

// Decode unmarshals the record's payload into out.
func (r Record) Decode(out any) error {
	if err := json.Unmarshal(r.Data, out); err != nil {
		return fmt.Errorf("wal: decode %s payload: %w", r.Kind, err)
	}
	return nil
}

func (r Record) marshal() ([]byte, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("wal: marshal record: %w", err)
	}
	return b, nil
}

func (r *Record) unmarshal(b []byte) error { return json.Unmarshal(b, r) }

// DeviceRecord journals one device registration (or, with only ID set,
// an unregistration). The PTZ mount rides as a typed field rather than
// inside Static, so replay restores it with its concrete type intact.
type DeviceRecord struct {
	ID     string         `json:"id"`
	Type   string         `json:"type,omitempty"`
	Addr   string         `json:"addr,omitempty"`
	Static map[string]any `json:"static,omitempty"`
	Mount  *geo.Mount     `json:"mount,omitempty"`
}

// QueryRecord journals one CREATE AQ. The query is stored as its SQL
// rendering — the parser guarantees parse→render→parse stability — plus
// the resolved epoch, so a change of the engine's default epoch across a
// restart cannot silently retime an old query.
type QueryRecord struct {
	ID      int    `json:"id"`
	Name    string `json:"name"`
	SQL     string `json:"sql"`
	EpochNS int64  `json:"epoch_ns"`
}

// QueryRefRecord journals DROP/STOP/START AQ by name.
type QueryRefRecord struct {
	Name string `json:"name"`
}

// CandidateRecord is one eligible device of a journaled intent, with the
// tuple that qualified it.
type CandidateRecord struct {
	ID    string         `json:"id"`
	Tuple map[string]any `json:"tuple,omitempty"`
}

// IntentRecord journals one action request before execution. The dedup
// key (query name + trigger-tuple hash + deadline) identifies the logical
// action across crashes: recovery re-dispatches an intent only while no
// outcome record carries its key. Args holds the action's argument list
// pre-bound per candidate device, evaluated at intent-write time — the
// closure that bound them does not survive a restart, the values do.
type IntentRecord struct {
	DedupKey   string            `json:"dedup_key"`
	RequestID  int64             `json:"request_id"`
	QueryID    int               `json:"query_id"`
	Query      string            `json:"query"`
	Action     string            `json:"action"`
	EventKey   string            `json:"event_key,omitempty"`
	CreatedNS  int64             `json:"created_ns"`
	DeadlineNS int64             `json:"deadline_ns,omitempty"`
	Candidates []CandidateRecord `json:"candidates,omitempty"`
	Args       map[string][]any  `json:"args,omitempty"`
}

// OutcomeRecord journals the completion of a journaled intent, keyed by
// the same dedup key. Its presence is what suppresses duplicate
// re-dispatch after a crash.
type OutcomeRecord struct {
	DedupKey  string `json:"dedup_key"`
	RequestID int64  `json:"request_id"`
	DeviceID  string `json:"device_id,omitempty"`
	Failure   string `json:"failure"`
	Err       string `json:"err,omitempty"`
	Attempts  int    `json:"attempts"`
	LatencyNS int64  `json:"latency_ns"`
}

// SnapshotQuery is one catalog entry inside a snapshot.
type SnapshotQuery struct {
	QueryRecord
	// Stopped preserves STOP AQ across restarts: a stopped query replays
	// into the catalog but is not started.
	Stopped bool `json:"stopped,omitempty"`
}

// Snapshot is the full engine state written at compaction: replaying it
// is equivalent to replaying the entire history it replaced.
type Snapshot struct {
	NextQueryID   int             `json:"next_query_id"`
	NextRequestID int64           `json:"next_request_id"`
	Devices       []DeviceRecord  `json:"devices,omitempty"`
	Queries       []SnapshotQuery `json:"queries,omitempty"`
	// Pending holds the intents that had no outcome at snapshot time; they
	// carry the at-least-once guarantee across compaction.
	Pending []IntentRecord `json:"pending,omitempty"`
}
