//go:build unix

package wal

import (
	"fmt"
	"os"
	"syscall"
)

// dirLock is an advisory flock on the journal directory's LOCK file. The
// kernel releases it automatically when the process dies, so a crashed
// daemon never leaves a stale lock behind.
type dirLock struct {
	f *os.File
}

func acquireDirLock(path string) (*dirLock, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		if err == syscall.EWOULDBLOCK {
			return nil, fmt.Errorf("%w (%s)", ErrLocked, path)
		}
		return nil, fmt.Errorf("wal: flock: %w", err)
	}
	return &dirLock{f: f}, nil
}

func (l *dirLock) release() {
	if l == nil || l.f == nil {
		return
	}
	_ = syscall.Flock(int(l.f.Fd()), syscall.LOCK_UN)
	_ = l.f.Close()
	l.f = nil
}
