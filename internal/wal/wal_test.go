package wal

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

type testPayload struct {
	N int    `json:"n"`
	S string `json:"s,omitempty"`
}

func mustAppend(t *testing.T, j *Journal, kind Kind, payload any) {
	t.Helper()
	rec, err := NewRecord(kind, payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec); err != nil {
		t.Fatal(err)
	}
}

func replayAll(t *testing.T, j *Journal) []Record {
	t.Helper()
	var out []Record
	if err := j.Replay(func(rec Record) error {
		out = append(out, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		mustAppend(t, j, KindIntent, &testPayload{N: i, S: "record"})
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recs := replayAll(t, j2)
	if len(recs) != 10 {
		t.Fatalf("replayed %d records, want 10", len(recs))
	}
	for i, rec := range recs {
		if rec.Kind != KindIntent {
			t.Fatalf("record %d kind = %v", i, rec.Kind)
		}
		var p testPayload
		if err := rec.Decode(&p); err != nil {
			t.Fatal(err)
		}
		if p.N != i || p.S != "record" {
			t.Fatalf("record %d payload = %+v", i, p)
		}
	}
	if got := j2.Stats().TornTailBytes; got != 0 {
		t.Fatalf("TornTailBytes = %d on a clean journal", got)
	}
}

// A crash mid-write leaves a torn final record; reopening must truncate
// it away without error and replay everything before it.
func TestTornTailTruncatedOnOpen(t *testing.T) {
	for name, tail := range map[string][]byte{
		"partial-header": {0x00, 0x00},
		"partial-body":   {0x00, 0x00, 0x00, 0x40, 0xde, 0xad, 0xbe, 0xef, 'x', 'y'},
		"bad-checksum":   {0x00, 0x00, 0x00, 0x02, 0xde, 0xad, 0xbe, 0xef, '{', '}'},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			j, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				mustAppend(t, j, KindCreateQuery, &testPayload{N: i})
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}

			seg := filepath.Join(dir, "00000001.wal")
			f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tail); err != nil {
				t.Fatal(err)
			}
			f.Close()

			j2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("open with torn tail: %v", err)
			}
			defer j2.Close()
			if got := j2.Stats().TornTailBytes; got != int64(len(tail)) {
				t.Errorf("TornTailBytes = %d, want %d", got, len(tail))
			}
			if recs := replayAll(t, j2); len(recs) != 3 {
				t.Fatalf("replayed %d records after truncation, want 3", len(recs))
			}
			// The journal must keep accepting appends after truncation.
			mustAppend(t, j2, KindOutcome, &testPayload{N: 99})
			if recs := replayAll(t, j2); len(recs) != 4 {
				t.Fatalf("replayed %d records after post-truncation append, want 4", len(recs))
			}
		})
	}
}

// Corruption in a non-final segment is committed history going bad — it
// must surface as ErrCorrupt, never be skipped.
func TestMidChainCorruptionIsError(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentBytes: 256}) // tiny: force rotation
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		mustAppend(t, j, KindIntent, &testPayload{N: i, S: "padding-padding-padding"})
	}
	if got := j.Stats().Segments; got < 2 {
		t.Fatalf("segments = %d, want >= 2 (rotation did not happen)", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte in the first segment.
	seg := filepath.Join(dir, "00000001.wal")
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	b[headerSize+2] ^= 0xff
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err) // only the final segment is truncate-on-open
	}
	defer j2.Close()
	err = j2.Replay(func(Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay over corrupt mid-chain segment = %v, want ErrCorrupt", err)
	}
}

// Rotation with a snapshot source compacts: older segments are deleted
// and replay starts from the snapshot.
func TestRotationCompactsIntoSnapshot(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	state := 0
	j.SetSnapshotFunc(func() ([]byte, error) {
		return json.Marshal(&testPayload{N: state, S: "snapshot"})
	})
	for i := 0; i < 50; i++ {
		state = i
		mustAppend(t, j, KindIntent, &testPayload{N: i, S: "fill-fill-fill-fill-fill"})
	}
	st := j.Stats()
	if st.Compactions == 0 {
		t.Fatal("no compactions despite tiny segments")
	}
	if st.Segments != 1 {
		t.Fatalf("segments = %d after compaction, want 1", st.Segments)
	}
	recs := replayAll(t, j)
	if len(recs) == 0 || recs[0].Kind != KindSnapshot {
		t.Fatalf("replay does not start with a snapshot: %+v", recs)
	}
	var snap testPayload
	if err := recs[0].Decode(&snap); err != nil {
		t.Fatal(err)
	}
	// Every record after the snapshot must be newer than the state the
	// snapshot captured.
	for _, rec := range recs[1:] {
		var p testPayload
		if err := rec.Decode(&p); err != nil {
			t.Fatal(err)
		}
		if p.N < snap.N {
			t.Fatalf("record %d predates snapshot state %d", p.N, snap.N)
		}
	}
}

func TestCompactForcesSnapshotNow(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	mustAppend(t, j, KindCreateQuery, &testPayload{N: 1})
	if err := j.Compact(); err == nil {
		t.Fatal("Compact without a snapshot source must fail")
	}
	j.SetSnapshotFunc(func() ([]byte, error) { return json.Marshal(&testPayload{N: 7}) })
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	recs := replayAll(t, j)
	if len(recs) != 1 || recs[0].Kind != KindSnapshot {
		t.Fatalf("after Compact replay = %+v, want one snapshot", recs)
	}
}

func TestSyncPolicies(t *testing.T) {
	always, err := Open(t.TempDir(), Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer always.Close()
	never, err := Open(t.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer never.Close()
	for i := 0; i < 20; i++ {
		mustAppend(t, always, KindIntent, &testPayload{N: i})
		mustAppend(t, never, KindIntent, &testPayload{N: i})
	}
	if got := always.Stats().Syncs; got < 20 {
		t.Errorf("SyncAlways synced %d times for 20 appends", got)
	}
	if got := never.Stats().Syncs; got != 0 {
		t.Errorf("SyncNever synced %d times before Close", got)
	}
}

// The directory lock: a second Open must refuse with ErrLocked while the
// first holds the journal; Close and Crash both release it.
func TestDirectoryLock(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open = %v, want ErrLocked", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	j2.Crash()
	j3, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after Crash: %v", err)
	}
	j3.Close()
}

// After Crash every operation fails with ErrClosed — the process is gone.
func TestCrashSeversJournal(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, KindIntent, &testPayload{N: 1})
	j.Crash()
	rec, _ := NewRecord(KindIntent, &testPayload{N: 2})
	if err := j.Append(rec); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Crash = %v, want ErrClosed", err)
	}
	if err := j.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after Crash = %v, want ErrClosed", err)
	}
	// The appended record survived the crash (process death, not power
	// loss: the OS already had the bytes).
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if recs := replayAll(t, j2); len(recs) != 1 {
		t.Fatalf("replayed %d records after crash, want 1", len(recs))
	}
}

// Replay must be callable mid-session (the engine recovers, then keeps
// appending to the same journal).
func TestReplayWhileOpen(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	mustAppend(t, j, KindCreateQuery, &testPayload{N: 1})
	if recs := replayAll(t, j); len(recs) != 1 {
		t.Fatalf("replayed %d, want 1", len(recs))
	}
	mustAppend(t, j, KindDropQuery, &testPayload{N: 2})
	if recs := replayAll(t, j); len(recs) != 2 {
		t.Fatalf("replayed %d, want 2", len(recs))
	}
}

// Injected disk faults must fail the arranged number of operations,
// count into AppendErrors/SyncErrors, and then clear — with the journal
// fully usable afterward. This is the hook the engine's degraded mode
// and the chaos study stand on.
func TestInjectedFaultsCountAndClear(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	j.InjectFaults(2, 0, nil)
	for i := 0; i < 2; i++ {
		rec, err := NewRecord(KindIntent, &testPayload{N: i})
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Append(rec); !errors.Is(err, ErrNoSpace) {
			t.Fatalf("append %d under injection: err = %v, want ErrNoSpace", i, err)
		}
	}
	mustAppend(t, j, KindIntent, &testPayload{N: 2})

	custom := errors.New("wal_test: scribble")
	j.InjectFaults(0, 1, custom)
	if err := j.Sync(); !errors.Is(err, custom) {
		t.Fatalf("sync under injection: err = %v, want %v", err, custom)
	}
	if err := j.Sync(); err != nil {
		t.Fatalf("sync after injection cleared: %v", err)
	}

	st := j.Stats()
	if st.AppendErrors != 2 {
		t.Fatalf("AppendErrors = %d, want 2", st.AppendErrors)
	}
	if st.SyncErrors != 1 {
		t.Fatalf("SyncErrors = %d, want 1", st.SyncErrors)
	}

	// Nothing from the failed appends may survive on disk.
	recs := replayAll(t, j)
	if len(recs) != 1 {
		t.Fatalf("replayed %d records, want 1 (failed appends must not land)", len(recs))
	}
}
