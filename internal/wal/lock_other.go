//go:build !unix

package wal

import (
	"fmt"
	"os"
)

// dirLock without flock: exclusive creation of the LOCK file stands in.
// Unlike the flock variant a crashed process leaves the file behind;
// non-unix hosts must clear it by hand after a crash.
type dirLock struct {
	path string
}

func acquireDirLock(path string) (*dirLock, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return nil, fmt.Errorf("%w (%s)", ErrLocked, path)
		}
		return nil, fmt.Errorf("wal: create lock file: %w", err)
	}
	f.Close()
	return &dirLock{path: path}, nil
}

func (l *dirLock) release() {
	if l == nil || l.path == "" {
		return
	}
	_ = os.Remove(l.path)
	l.path = ""
}
