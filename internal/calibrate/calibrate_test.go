package calibrate

import (
	"context"
	"math"
	"testing"

	"aorta/internal/device/camera"
	"aorta/internal/lab"
	"aorta/internal/profile"
)

// newLab builds a small lab with a slow-enough clock that measured
// durations dominate scheduling jitter.
func newLab(t *testing.T) *lab.Lab {
	t.Helper()
	scale := 50.0
	if raceEnabled {
		// Race instrumentation inflates per-request wall overhead; slow
		// the clock so measured durations still dominate it.
		scale = 10
	}
	l, err := lab.New(lab.Config{Motes: 2, ClockScale: scale})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	return l
}

// TestCameraCalibration: measured motor rates and capture costs must land
// near the emulator's ground truth.
func TestCameraCalibration(t *testing.T) {
	l := newLab(t)
	cfg := Config{Clock: l.Clock, Trials: 2}
	costs, err := Camera(context.Background(), l.Engine.Layer(), "camera-1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if costs.DeviceType != profile.DeviceCamera {
		t.Errorf("device type = %q", costs.DeviceType)
	}

	within := func(name string, got, want, tolFrac float64) {
		t.Helper()
		if math.Abs(got-want) > want*tolFrac {
			t.Errorf("%s = %.1f, want %.1f ± %.0f%%", name, got, want, tolFrac*100)
		}
	}
	pan, ok := costs.Op("pan")
	if !ok {
		t.Fatal("pan missing")
	}
	within("pan rate", pan.RateUnitsPerSec, camera.PanSpeedDegPerSec, 0.15)
	tilt, _ := costs.Op("tilt")
	within("tilt rate", tilt.RateUnitsPerSec, camera.TiltSpeedDegPerSec, 0.15)
	zoom, _ := costs.Op("zoom")
	within("zoom rate", zoom.RateUnitsPerSec, camera.ZoomUnitsPerSec, 0.15)

	med, _ := costs.Op("capture_medium")
	within("capture_medium", med.FixedMS, float64(camera.CaptureMedium.Milliseconds()), 0.25)
	small, _ := costs.Op("capture_small")
	large, _ := costs.Op("capture_large")
	if !(small.FixedMS < med.FixedMS && med.FixedMS < large.FixedMS) {
		t.Errorf("capture cost ordering violated: %v / %v / %v", small.FixedMS, med.FixedMS, large.FixedMS)
	}
	// store is so short (30ms) that the wire round trip dominates the
	// measurement; just bound it.
	st, _ := costs.Op("store")
	if st.FixedMS < float64(camera.StoreTime.Milliseconds()) || st.FixedMS > 150 {
		t.Errorf("store = %.1fms, want within [30, 150]", st.FixedMS)
	}
}

// TestCalibratedTableValidatesPhotoProfile: the measured table slots
// straight into the cost model.
func TestCalibratedTableValidatesPhotoProfile(t *testing.T) {
	l := newLab(t)
	costs, err := Camera(context.Background(), l.Engine.Layer(), "camera-2", Config{Clock: l.Clock})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := profile.DefaultRegistry()
	if err != nil {
		t.Fatal(err)
	}
	photo, _ := reg.Action(profile.ActionPhoto)
	if err := photo.Validate(costs); err != nil {
		t.Fatalf("photo profile does not validate against calibrated table: %v", err)
	}
	est, err := photo.EstimateCost(costs, profile.Params{"pan_delta": 170, "tilt_delta": 45, "zoom_delta": 1})
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth: 170/68 = 2.5s movement + 0.36s fixed ≈ 2.86s.
	if est.Seconds() < 2.3 || est.Seconds() > 3.6 {
		t.Errorf("estimated photo cost from calibrated table = %v, want ≈2.86s", est)
	}
}

// TestCalibrationRoundTripsThroughXML: measured table → XML → parse.
func TestCalibrationRoundTripsThroughXML(t *testing.T) {
	l := newLab(t)
	costs, err := Fixed(context.Background(), l.Engine.Layer(), "mote-1", profile.DeviceSensor,
		[]string{"beep", "blink", "sample"}, Config{Clock: l.Clock, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	data, err := costs.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := profile.ParseAtomicCosts(data)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, data)
	}
	if back.DeviceType != profile.DeviceSensor || len(back.Ops) != 4 {
		t.Errorf("round trip = %+v", back)
	}
	beep, ok := back.Op("beep")
	if !ok {
		t.Fatal("beep missing")
	}
	// Emulator ground truth 200ms; allow generous jitter at 50× scale.
	if beep.FixedMS < 150 || beep.FixedMS > 350 {
		t.Errorf("beep cost = %.1fms, want ≈200ms", beep.FixedMS)
	}
}

func TestCalibrationRequiresClock(t *testing.T) {
	l := newLab(t)
	if _, err := Camera(context.Background(), l.Engine.Layer(), "camera-1", Config{}); err == nil {
		t.Error("Camera accepted missing clock")
	}
	if _, err := Fixed(context.Background(), l.Engine.Layer(), "mote-1", "sensor", nil, Config{}); err == nil {
		t.Error("Fixed accepted missing clock")
	}
}

func TestCalibrationUnknownDevice(t *testing.T) {
	l := newLab(t)
	if _, err := Camera(context.Background(), l.Engine.Layer(), "ghost", Config{Clock: l.Clock}); err == nil {
		t.Error("calibration of unknown device succeeded")
	}
}
