// Package calibrate implements the paper's "homegrown programs" (§3.1):
// utilities that measure the cost of every atomic operation on a live
// device and produce the atomic_operation_cost.xml table the optimizer's
// cost model consumes. The cost metric is the paper's — the time required
// to finish the operation, on the system clock.
//
// For a camera, the rate-based head-motor operations are measured by
// commanding single-axis sweeps of known angular distance; fixed-cost
// operations everywhere are measured as the mean of repeated executions.
package calibrate

import (
	"context"
	"fmt"
	"time"

	"aorta/internal/comm"
	"aorta/internal/device/camera"
	"aorta/internal/profile"
	"aorta/internal/stats"
	"aorta/internal/vclock"
)

// Config controls a calibration run.
type Config struct {
	// Trials is how many times each fixed-cost operation is repeated
	// (default 3).
	Trials int
	// Clock measures elapsed time (must be the layer's clock).
	Clock vclock.Clock
}

func (c Config) trials() int {
	if c.Trials <= 0 {
		return 3
	}
	return c.Trials
}

// measureExec times one atomic operation on an open session.
func measureExec(ctx context.Context, clk vclock.Clock, sess *comm.Session, op string, args any) (time.Duration, error) {
	start := clk.Now()
	if _, err := sess.Exec(ctx, op, args); err != nil {
		return 0, fmt.Errorf("calibrate: %s: %w", op, err)
	}
	return clk.Since(start), nil
}

// measureFixed repeats an operation and returns the mean duration.
func measureFixed(ctx context.Context, cfg Config, sess *comm.Session, op string, args any) (time.Duration, error) {
	var samples []time.Duration
	for i := 0; i < cfg.trials(); i++ {
		d, err := measureExec(ctx, cfg.Clock, sess, op, args)
		if err != nil {
			return 0, err
		}
		samples = append(samples, d)
	}
	return stats.MeanDuration(samples), nil
}

// Camera measures an AXIS-2130-like camera: connect time, per-size
// capture and store costs, and the pan/tilt/zoom motor rates.
func Camera(ctx context.Context, layer *comm.Layer, id string, cfg Config) (*profile.AtomicCosts, error) {
	if cfg.Clock == nil {
		return nil, fmt.Errorf("calibrate: Config.Clock is required")
	}
	// Calibration sweeps run up to several seconds — far beyond the
	// normal probe TIMEOUT; raise it for the run and restore after.
	restore := raiseTimeout(layer, profile.DeviceCamera)
	defer restore()

	// Connect cost: dial round trip.
	start := cfg.Clock.Now()
	sess, err := layer.Connect(ctx, id)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	connectCost := cfg.Clock.Since(start)

	out := &profile.AtomicCosts{DeviceType: profile.DeviceCamera}
	add := func(name string, fixedMS, rate float64) {
		out.Ops = append(out.Ops, profile.OpCost{Name: name, FixedMS: fixedMS, RateUnitsPerSec: rate})
	}
	add("connect", float64(connectCost.Milliseconds()), 0)

	// Motor rates: single-axis sweeps of known distance. Home first so
	// the sweep distance is exact.
	home := func() error {
		_, err := sess.Exec(ctx, "move", &camera.MoveArgs{Pan: 0, Tilt: 0, Zoom: 1})
		return err
	}
	sweep := func(args camera.MoveArgs, distance float64) (float64, error) {
		if err := home(); err != nil {
			return 0, err
		}
		d, err := measureExec(ctx, cfg.Clock, sess, "move", &args)
		if err != nil {
			return 0, err
		}
		if d <= 0 {
			return 0, fmt.Errorf("calibrate: zero-duration sweep")
		}
		return distance / d.Seconds(), nil
	}
	panRate, err := sweep(camera.MoveArgs{Pan: 136, Tilt: 0, Zoom: 1}, 136)
	if err != nil {
		return nil, err
	}
	add("pan", 0, panRate)
	tiltRate, err := sweep(camera.MoveArgs{Pan: 0, Tilt: 81, Zoom: 1}, 81)
	if err != nil {
		return nil, err
	}
	add("tilt", 0, tiltRate)
	zoomRate, err := sweep(camera.MoveArgs{Pan: 0, Tilt: 0, Zoom: 3.4}, 2.4)
	if err != nil {
		return nil, err
	}
	add("zoom", 0, zoomRate)

	// Captures and store are fixed-cost.
	for _, size := range []string{"small", "medium", "large"} {
		d, err := measureFixed(ctx, cfg, sess, "capture", &camera.CaptureArgs{Size: size})
		if err != nil {
			return nil, err
		}
		add("capture_"+size, msOf(d), 0)
	}
	d, err := measureFixed(ctx, cfg, sess, "store", nil)
	if err != nil {
		return nil, err
	}
	add("store", msOf(d), 0)
	return out, nil
}

// Fixed measures a set of fixed-cost operations on any device type,
// returning one table row per operation.
func Fixed(ctx context.Context, layer *comm.Layer, id, deviceType string, ops []string, cfg Config) (*profile.AtomicCosts, error) {
	if cfg.Clock == nil {
		return nil, fmt.Errorf("calibrate: Config.Clock is required")
	}
	restore := raiseTimeout(layer, deviceType)
	defer restore()

	start := cfg.Clock.Now()
	sess, err := layer.Connect(ctx, id)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	connectCost := cfg.Clock.Since(start)

	out := &profile.AtomicCosts{DeviceType: deviceType}
	out.Ops = append(out.Ops, profile.OpCost{Name: "connect", FixedMS: msOf(connectCost)})
	for _, op := range ops {
		d, err := measureFixed(ctx, cfg, sess, op, nil)
		if err != nil {
			return nil, err
		}
		out.Ops = append(out.Ops, profile.OpCost{Name: op, FixedMS: msOf(d)})
	}
	return out, nil
}

// raiseTimeout lifts a device type's TIMEOUT to cover calibration sweeps
// and returns a restore function.
func raiseTimeout(layer *comm.Layer, deviceType string) func() {
	old := layer.Timeout(deviceType)
	layer.SetTimeout(deviceType, 30*time.Second)
	return func() { layer.SetTimeout(deviceType, old) }
}

func msOf(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
