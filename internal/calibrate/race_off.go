//go:build !race

package calibrate

// raceEnabled reports whether the race detector is instrumenting this
// build.
const raceEnabled = false
