//go:build race

package calibrate

// raceEnabled reports whether the race detector is instrumenting this
// build; calibration tests slow their clocks to keep measurement overhead
// proportionally small.
const raceEnabled = true
