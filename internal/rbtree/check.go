package rbtree

import (
	"errors"
	"fmt"
)

// CheckInvariants verifies every red-black tree invariant and the BST
// ordering property, returning a descriptive error on the first violation.
// It exists for tests (including property-based tests) and costs O(n).
func (t *Tree[T]) CheckInvariants() error {
	if t.root == nil {
		if t.size != 0 {
			return fmt.Errorf("rbtree: empty tree reports size %d", t.size)
		}
		return nil
	}
	if t.root.col != black {
		return errors.New("rbtree: root is not black")
	}
	if t.root.parent != nil {
		return errors.New("rbtree: root has a parent")
	}
	count := 0
	if _, err := t.check(t.root, &count); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rbtree: counted %d nodes but size is %d", count, t.size)
	}
	// BST order: strictly ascending in-order traversal.
	var prev *T
	ok := true
	t.InOrder(func(v T) bool {
		if prev != nil && !t.less(*prev, v) {
			ok = false
			return false
		}
		p := v
		prev = &p
		return true
	})
	if !ok {
		return errors.New("rbtree: in-order traversal is not strictly ascending")
	}
	return nil
}

// check returns the black-height of the subtree rooted at n.
func (t *Tree[T]) check(n *node[T], count *int) (int, error) {
	if n == nil {
		return 1, nil
	}
	*count++
	if n.left != nil && n.left.parent != n {
		return 0, errors.New("rbtree: broken parent pointer (left child)")
	}
	if n.right != nil && n.right.parent != n {
		return 0, errors.New("rbtree: broken parent pointer (right child)")
	}
	if n.col == red {
		if nodeColor(n.left) == red || nodeColor(n.right) == red {
			return 0, errors.New("rbtree: red node has a red child")
		}
	}
	lh, err := t.check(n.left, count)
	if err != nil {
		return 0, err
	}
	rh, err := t.check(n.right, count)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, fmt.Errorf("rbtree: black-height mismatch (%d vs %d)", lh, rh)
	}
	if n.col == black {
		lh++
	}
	return lh, nil
}

// Height returns the height of the tree (0 for an empty tree); exported for
// balance assertions in tests.
func (t *Tree[T]) Height() int { return height(t.root) }

func height[T any](n *node[T]) int {
	if n == nil {
		return 0
	}
	l, r := height(n.left), height(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}
