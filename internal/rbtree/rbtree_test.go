package rbtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intTree() *Tree[int] {
	return New(func(a, b int) bool { return a < b })
}

func TestEmptyTree(t *testing.T) {
	tr := intTree()
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
	if _, ok := tr.Min(); ok {
		t.Error("Min on empty tree returned ok")
	}
	if _, ok := tr.Max(); ok {
		t.Error("Max on empty tree returned ok")
	}
	if _, ok := tr.DeleteMin(); ok {
		t.Error("DeleteMin on empty tree returned ok")
	}
	if tr.Delete(5) {
		t.Error("Delete on empty tree returned true")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestInsertAndOrder(t *testing.T) {
	tr := intTree()
	in := []int{5, 3, 9, 1, 7, 2, 8, 6, 4, 0}
	for _, v := range in {
		if !tr.Insert(v) {
			t.Fatalf("Insert(%d) reported duplicate", v)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after Insert(%d): %v", v, err)
		}
	}
	want := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	got := tr.Items()
	if len(got) != len(want) {
		t.Fatalf("Items() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Items()[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestInsertDuplicateReplaces(t *testing.T) {
	type kv struct {
		k int
		v string
	}
	tr := New(func(a, b kv) bool { return a.k < b.k })
	tr.Insert(kv{1, "old"})
	if tr.Insert(kv{1, "new"}) {
		t.Fatal("duplicate insert returned true")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	got, ok := tr.Get(kv{k: 1})
	if !ok || got.v != "new" {
		t.Fatalf("Get = %+v, %v; want value replaced", got, ok)
	}
}

func TestMinMax(t *testing.T) {
	tr := intTree()
	for _, v := range []int{42, 17, 99, 3, 64} {
		tr.Insert(v)
	}
	if mn, _ := tr.Min(); mn != 3 {
		t.Errorf("Min = %d, want 3", mn)
	}
	if mx, _ := tr.Max(); mx != 99 {
		t.Errorf("Max = %d, want 99", mx)
	}
}

func TestDeleteMinDrainsAscending(t *testing.T) {
	tr := intTree()
	r := rand.New(rand.NewSource(1))
	const n = 500
	for i := 0; i < n; i++ {
		tr.Insert(r.Intn(1 << 30))
	}
	prev := math.MinInt
	count := 0
	for {
		v, ok := tr.DeleteMin()
		if !ok {
			break
		}
		count++
		if v < prev {
			t.Fatalf("DeleteMin out of order: %d after %d", v, prev)
		}
		prev = v
		if count%50 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d DeleteMin: %v", count, err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after drain, want 0", tr.Len())
	}
}

func TestDeleteSpecific(t *testing.T) {
	tr := intTree()
	for i := 0; i < 100; i++ {
		tr.Insert(i)
	}
	for _, v := range []int{50, 0, 99, 33, 66} {
		if !tr.Delete(v) {
			t.Fatalf("Delete(%d) = false", v)
		}
		if tr.Contains(v) {
			t.Fatalf("tree still contains %d after delete", v)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after Delete(%d): %v", v, err)
		}
	}
	if tr.Len() != 95 {
		t.Fatalf("Len = %d, want 95", tr.Len())
	}
	if tr.Delete(50) {
		t.Error("second Delete(50) returned true")
	}
}

func TestGetAndContains(t *testing.T) {
	tr := intTree()
	tr.Insert(7)
	if v, ok := tr.Get(7); !ok || v != 7 {
		t.Errorf("Get(7) = %d, %v", v, ok)
	}
	if _, ok := tr.Get(8); ok {
		t.Error("Get(8) found missing item")
	}
	if !tr.Contains(7) || tr.Contains(8) {
		t.Error("Contains wrong")
	}
}

func TestInOrderEarlyStop(t *testing.T) {
	tr := intTree()
	for i := 0; i < 10; i++ {
		tr.Insert(i)
	}
	var seen []int
	tr.InOrder(func(v int) bool {
		seen = append(seen, v)
		return v < 4
	})
	if len(seen) != 5 {
		t.Fatalf("visited %v, want stop after 5 elements 0..4", seen)
	}
}

func TestRandomMixedOperationsKeepInvariants(t *testing.T) {
	tr := intTree()
	r := rand.New(rand.NewSource(7))
	present := map[int]bool{}
	for op := 0; op < 3000; op++ {
		v := r.Intn(300)
		switch r.Intn(3) {
		case 0:
			tr.Insert(v)
			present[v] = true
		case 1:
			got := tr.Delete(v)
			if got != present[v] {
				t.Fatalf("Delete(%d) = %v, want %v", v, got, present[v])
			}
			delete(present, v)
		case 2:
			if got := tr.Contains(v); got != present[v] {
				t.Fatalf("Contains(%d) = %v, want %v", v, got, present[v])
			}
		}
		if op%200 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			if tr.Len() != len(present) {
				t.Fatalf("op %d: Len = %d, want %d", op, tr.Len(), len(present))
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHeightLogarithmic(t *testing.T) {
	tr := intTree()
	const n = 4096
	for i := 0; i < n; i++ {
		tr.Insert(i) // adversarial ascending order
	}
	// A red-black tree's height is at most 2·log2(n+1).
	maxH := int(2 * math.Log2(float64(n+1)))
	if h := tr.Height(); h > maxH {
		t.Fatalf("height %d exceeds red-black bound %d for n=%d", h, maxH, n)
	}
}

func TestQuickSortedItemsMatchSort(t *testing.T) {
	f := func(vals []int16) bool {
		tr := intTree()
		uniq := map[int]bool{}
		for _, v := range vals {
			tr.Insert(int(v))
			uniq[int(v)] = true
		}
		if tr.Len() != len(uniq) {
			return false
		}
		want := make([]int, 0, len(uniq))
		for v := range uniq {
			want = append(want, v)
		}
		sort.Ints(want)
		got := tr.Items()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickDeleteHalf(t *testing.T) {
	f := func(vals []uint8) bool {
		tr := intTree()
		for _, v := range vals {
			tr.Insert(int(v))
		}
		for i, v := range vals {
			if i%2 == 0 {
				tr.Delete(int(v))
			}
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	vals := make([]int, b.N)
	for i := range vals {
		vals[i] = r.Int()
	}
	b.ResetTimer()
	tr := intTree()
	for i := 0; i < b.N; i++ {
		tr.Insert(vals[i])
	}
}

func BenchmarkDeleteMin(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	tr := intTree()
	for i := 0; i < b.N; i++ {
		tr.Insert(r.Int())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.DeleteMin()
	}
}
