package rbtree

import (
	"math/rand"
	"sort"
	"testing"
)

// boundKey mirrors the predicate index's boundary-tree entries: a numeric
// bound with a strictness flag and a (sub, conjunct) tiebreaker, ordered so
// the satisfied entries for any probe value form a prefix of the in-order
// traversal. This test drives the tree with that workload — many duplicate
// bounds, interleaved inserts and deletes — and checks both the red-black
// invariants and the prefix-traversal results against a sorted slice.
type boundKey struct {
	c      float64
	strict bool
	sub    int
	cid    int
}

func boundLess(a, b boundKey) bool {
	if a.c != b.c {
		return a.c < b.c
	}
	if a.strict != b.strict {
		return !a.strict
	}
	if a.sub != b.sub {
		return a.sub < b.sub
	}
	return a.cid < b.cid
}

// TestMatchWorkloadInvariants runs randomized insert/delete rounds shaped
// like predicate-index churn (coarse duplicate-heavy bounds) and verifies
// the tree with CheckInvariants after every batch.
func TestMatchWorkloadInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2005))
	tr := New(boundLess)
	live := make(map[boundKey]bool)

	randKey := func() boundKey {
		return boundKey{
			c:      float64(rng.Intn(40) - 20), // heavy duplication across subs
			strict: rng.Intn(2) == 0,
			sub:    rng.Intn(200),
			cid:    rng.Intn(3),
		}
	}

	for round := 0; round < 200; round++ {
		// A burst of inserts (queries registering)...
		for i := 0; i < 25; i++ {
			k := randKey()
			inserted := tr.Insert(k)
			if inserted == live[k] {
				t.Fatalf("Insert(%+v) returned %v but liveness was %v", k, inserted, live[k])
			}
			live[k] = true
		}
		// ...then a burst of deletes (queries dropping), targeting a mix of
		// present and absent keys.
		for i := 0; i < 20; i++ {
			k := randKey()
			deleted := tr.Delete(k)
			if deleted != live[k] {
				t.Fatalf("Delete(%+v) returned %v but liveness was %v", k, deleted, live[k])
			}
			delete(live, k)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if tr.Len() != len(live) {
			t.Fatalf("round %d: Len = %d, want %d", round, tr.Len(), len(live))
		}
	}

	// Balance: height must stay within the red-black bound of
	// 2·log2(n+1).
	n := tr.Len()
	if n > 0 {
		bound := 2
		for m := n + 1; m > 1; m /= 2 {
			bound += 2
		}
		if h := tr.Height(); h > bound {
			t.Errorf("height %d exceeds red-black bound %d for %d nodes", h, bound, n)
		}
	}
}

// TestMatchWorkloadPrefixScan checks the property the predicate index
// depends on: for a probe value f, traversing in order and stopping at the
// first unsatisfied entry visits exactly the satisfied set.
func TestMatchWorkloadPrefixScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := New(boundLess)
	var keys []boundKey
	for i := 0; i < 500; i++ {
		k := boundKey{
			c:      float64(rng.Intn(30)),
			strict: rng.Intn(2) == 0,
			sub:    i,
		}
		tr.Insert(k)
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return boundLess(keys[i], keys[j]) })

	for probe := 0; probe < 50; probe++ {
		f := float64(rng.Intn(32) - 1)
		// satisfied: lower-bound semantics, entry matches when c < f, or
		// c == f for non-strict entries.
		var want []boundKey
		for _, k := range keys {
			if k.c < f || (k.c == f && !k.strict) {
				want = append(want, k)
			}
		}
		var got []boundKey
		tr.InOrder(func(k boundKey) bool {
			if k.c > f || (k.c == f && k.strict) {
				return false
			}
			got = append(got, k)
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("probe %v: prefix scan found %d entries, want %d", f, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("probe %v: entry %d = %+v, want %+v", f, i, got[i], want[i])
			}
		}
	}
}
