// Package rbtree implements a generic red-black tree.
//
// Algorithm 2 of the paper (SRFAE) requires "a balanced binary search tree
// T" holding one node per (request, device) pair, keyed by the pair's
// weight, with extract-min, delete and key-update operations. This package
// is that substrate. It is also used by the discrete-event simulator's
// ordered indexes.
//
// The tree stores items of any type under a caller-supplied strict total
// order. Items that compare equal under the order are considered the same
// item, so callers must fold a unique tiebreaker into the comparison when
// duplicate keys are possible (SRFAE uses (weight, request, device)).
package rbtree

type color bool

const (
	red   color = false
	black color = true
)

type node[T any] struct {
	col                 color
	left, right, parent *node[T]
	val                 T
}

// Tree is a red-black tree ordered by the less function supplied at
// construction. The zero value is not usable; call New.
type Tree[T any] struct {
	root *node[T]
	less func(a, b T) bool
	size int
}

// New returns an empty tree ordered by less, which must be a strict total
// order over all items the caller will insert.
func New[T any](less func(a, b T) bool) *Tree[T] {
	return &Tree[T]{less: less}
}

// Len returns the number of items in the tree.
func (t *Tree[T]) Len() int { return t.size }

// Insert adds item to the tree. Inserting an item that compares equal to an
// existing item replaces the stored value and returns false; otherwise it
// returns true.
func (t *Tree[T]) Insert(item T) bool {
	var parent *node[T]
	cur := t.root
	for cur != nil {
		parent = cur
		switch {
		case t.less(item, cur.val):
			cur = cur.left
		case t.less(cur.val, item):
			cur = cur.right
		default:
			cur.val = item
			return false
		}
	}
	n := &node[T]{val: item, parent: parent, col: red}
	switch {
	case parent == nil:
		t.root = n
	case t.less(item, parent.val):
		parent.left = n
	default:
		parent.right = n
	}
	t.size++
	t.insertFixup(n)
	return true
}

// Min returns the least item and true, or the zero value and false when the
// tree is empty.
func (t *Tree[T]) Min() (T, bool) {
	if t.root == nil {
		var zero T
		return zero, false
	}
	return minNode(t.root).val, true
}

// Max returns the greatest item and true, or the zero value and false when
// the tree is empty.
func (t *Tree[T]) Max() (T, bool) {
	if t.root == nil {
		var zero T
		return zero, false
	}
	n := t.root
	for n.right != nil {
		n = n.right
	}
	return n.val, true
}

// DeleteMin removes and returns the least item. The second return value is
// false when the tree is empty.
func (t *Tree[T]) DeleteMin() (T, bool) {
	if t.root == nil {
		var zero T
		return zero, false
	}
	n := minNode(t.root)
	val := n.val
	t.deleteNode(n)
	return val, true
}

// Delete removes the item comparing equal to item and returns true, or
// returns false when no such item exists.
func (t *Tree[T]) Delete(item T) bool {
	n := t.find(item)
	if n == nil {
		return false
	}
	t.deleteNode(n)
	return true
}

// Get returns the stored item comparing equal to item.
func (t *Tree[T]) Get(item T) (T, bool) {
	n := t.find(item)
	if n == nil {
		var zero T
		return zero, false
	}
	return n.val, true
}

// Contains reports whether an item comparing equal to item is present.
func (t *Tree[T]) Contains(item T) bool { return t.find(item) != nil }

// InOrder calls fn on every item in ascending order until fn returns false.
func (t *Tree[T]) InOrder(fn func(T) bool) {
	inOrder(t.root, fn)
}

// Items returns all items in ascending order.
func (t *Tree[T]) Items() []T {
	out := make([]T, 0, t.size)
	t.InOrder(func(v T) bool {
		out = append(out, v)
		return true
	})
	return out
}

func inOrder[T any](n *node[T], fn func(T) bool) bool {
	if n == nil {
		return true
	}
	if !inOrder(n.left, fn) {
		return false
	}
	if !fn(n.val) {
		return false
	}
	return inOrder(n.right, fn)
}

func (t *Tree[T]) find(item T) *node[T] {
	cur := t.root
	for cur != nil {
		switch {
		case t.less(item, cur.val):
			cur = cur.left
		case t.less(cur.val, item):
			cur = cur.right
		default:
			return cur
		}
	}
	return nil
}

func minNode[T any](n *node[T]) *node[T] {
	for n.left != nil {
		n = n.left
	}
	return n
}

func (t *Tree[T]) rotateLeft(x *node[T]) {
	y := x.right
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *Tree[T]) rotateRight(x *node[T]) {
	y := x.left
	x.left = y.right
	if y.right != nil {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

func (t *Tree[T]) insertFixup(z *node[T]) {
	for z.parent != nil && z.parent.col == red {
		gp := z.parent.parent
		if z.parent == gp.left {
			uncle := gp.right
			if uncle != nil && uncle.col == red {
				z.parent.col = black
				uncle.col = black
				gp.col = red
				z = gp
				continue
			}
			if z == z.parent.right {
				z = z.parent
				t.rotateLeft(z)
			}
			z.parent.col = black
			gp.col = red
			t.rotateRight(gp)
		} else {
			uncle := gp.left
			if uncle != nil && uncle.col == red {
				z.parent.col = black
				uncle.col = black
				gp.col = red
				z = gp
				continue
			}
			if z == z.parent.left {
				z = z.parent
				t.rotateRight(z)
			}
			z.parent.col = black
			gp.col = red
			t.rotateLeft(gp)
		}
	}
	t.root.col = black
}

// deleteNode removes n using the CLRS algorithm with a sentinel-free
// fixup that tracks the parent of the (possibly nil) replacement.
func (t *Tree[T]) deleteNode(z *node[T]) {
	t.size--
	y := z
	yOriginal := y.col
	var x *node[T]
	var xParent *node[T]
	switch {
	case z.left == nil:
		x = z.right
		xParent = z.parent
		t.transplant(z, z.right)
	case z.right == nil:
		x = z.left
		xParent = z.parent
		t.transplant(z, z.left)
	default:
		y = minNode(z.right)
		yOriginal = y.col
		x = y.right
		if y.parent == z {
			xParent = y
		} else {
			xParent = y.parent
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.col = z.col
	}
	if yOriginal == black {
		t.deleteFixup(x, xParent)
	}
}

func (t *Tree[T]) transplant(u, v *node[T]) {
	switch {
	case u.parent == nil:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	if v != nil {
		v.parent = u.parent
	}
}

func nodeColor[T any](n *node[T]) color {
	if n == nil {
		return black
	}
	return n.col
}

func (t *Tree[T]) deleteFixup(x *node[T], parent *node[T]) {
	for x != t.root && nodeColor(x) == black {
		if parent == nil {
			break
		}
		if x == parent.left {
			w := parent.right
			if nodeColor(w) == red {
				w.col = black
				parent.col = red
				t.rotateLeft(parent)
				w = parent.right
			}
			if nodeColor(w.left) == black && nodeColor(w.right) == black {
				w.col = red
				x = parent
				parent = x.parent
			} else {
				if nodeColor(w.right) == black {
					if w.left != nil {
						w.left.col = black
					}
					w.col = red
					t.rotateRight(w)
					w = parent.right
				}
				w.col = parent.col
				parent.col = black
				if w.right != nil {
					w.right.col = black
				}
				t.rotateLeft(parent)
				x = t.root
				parent = nil
			}
		} else {
			w := parent.left
			if nodeColor(w) == red {
				w.col = black
				parent.col = red
				t.rotateRight(parent)
				w = parent.left
			}
			if nodeColor(w.right) == black && nodeColor(w.left) == black {
				w.col = red
				x = parent
				parent = x.parent
			} else {
				if nodeColor(w.left) == black {
					if w.right != nil {
						w.right.col = black
					}
					w.col = red
					t.rotateLeft(w)
					w = parent.left
				}
				w.col = parent.col
				parent.col = black
				if w.left != nil {
					w.left.col = black
				}
				t.rotateRight(parent)
				x = t.root
				parent = nil
			}
		}
	}
	if x != nil {
		x.col = black
	}
}
