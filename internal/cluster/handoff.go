package cluster

import (
	"context"
	"fmt"
	"sort"

	"aorta/internal/comm"
	"aorta/internal/core"
	"aorta/internal/geo"
	"aorta/internal/wal"
)

// HandoffSet is the slice of a departed shard's journaled state destined
// for one surviving shard: the devices it now owns, the continuous
// queries that must run wherever those devices landed, and the pending
// action intents (journaled, no outcome yet) whose candidate devices it
// received.
type HandoffSet struct {
	Shard   string
	Devices []wal.DeviceRecord
	Queries []wal.SnapshotQuery
	Intents []wal.IntentRecord
}

// PlanHandoff replays a departed shard's write-ahead journal — the same
// post-mortem walk the crash-recovery study performs — and partitions the
// resulting state among new owners. owner maps a device id to its
// surviving shard (typically Map.Owner after WithShards removed the
// departed member).
//
// Devices go to their new owner. Queries go to every set: a continuous
// query evaluated over the departed shard's local devices, and those
// devices may scatter across several survivors — each must evaluate it
// over its inherited slice (applying a query a shard already runs is a
// skipped duplicate, so over-delivery is harmless). Pending intents
// follow their first candidate device; their dedup keys make adoption
// idempotent and let the post-handoff audit prove zero loss.
//
// The journal directory must be unlocked (the departed shard's process
// closed it, or crashed — the lock dies with the process).
func PlanHandoff(journalDir string, owner func(deviceID string) string) (map[string]*HandoffSet, error) {
	j, err := wal.Open(journalDir, wal.Options{})
	if err != nil {
		return nil, fmt.Errorf("cluster: open departed journal: %w", err)
	}
	defer j.Close()

	devices := make(map[string]wal.DeviceRecord)
	queries := make(map[string]wal.SnapshotQuery)
	pending := make(map[string]wal.IntentRecord)
	err = j.Replay(func(rec wal.Record) error {
		switch rec.Kind {
		case wal.KindSnapshot:
			var snap wal.Snapshot
			if err := rec.Decode(&snap); err != nil {
				return err
			}
			// A snapshot is the full state at compaction time: replace,
			// don't merge.
			devices = make(map[string]wal.DeviceRecord, len(snap.Devices))
			queries = make(map[string]wal.SnapshotQuery, len(snap.Queries))
			pending = make(map[string]wal.IntentRecord, len(snap.Pending))
			for _, dr := range snap.Devices {
				devices[dr.ID] = dr
			}
			for _, sq := range snap.Queries {
				queries[sq.Name] = sq
			}
			for _, ir := range snap.Pending {
				pending[ir.DedupKey] = ir
			}
		case wal.KindRegisterDevice:
			var dr wal.DeviceRecord
			if err := rec.Decode(&dr); err != nil {
				return err
			}
			devices[dr.ID] = dr
		case wal.KindUnregisterDevice:
			var dr wal.DeviceRecord
			if err := rec.Decode(&dr); err != nil {
				return err
			}
			delete(devices, dr.ID)
		case wal.KindCreateQuery:
			var qr wal.QueryRecord
			if err := rec.Decode(&qr); err != nil {
				return err
			}
			queries[qr.Name] = wal.SnapshotQuery{QueryRecord: qr}
		case wal.KindDropQuery:
			var ref wal.QueryRefRecord
			if err := rec.Decode(&ref); err != nil {
				return err
			}
			delete(queries, ref.Name)
		case wal.KindStopQuery, wal.KindStartQuery:
			var ref wal.QueryRefRecord
			if err := rec.Decode(&ref); err != nil {
				return err
			}
			if sq, ok := queries[ref.Name]; ok {
				sq.Stopped = rec.Kind == wal.KindStopQuery
				queries[ref.Name] = sq
			}
		case wal.KindIntent:
			var ir wal.IntentRecord
			if err := rec.Decode(&ir); err != nil {
				return err
			}
			pending[ir.DedupKey] = ir
		case wal.KindOutcome:
			var or wal.OutcomeRecord
			if err := rec.Decode(&or); err != nil {
				return err
			}
			delete(pending, or.DedupKey)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: replay departed journal: %w", err)
	}

	sets := make(map[string]*HandoffSet)
	get := func(shard string) *HandoffSet {
		s, ok := sets[shard]
		if !ok {
			s = &HandoffSet{Shard: shard}
			sets[shard] = s
		}
		return s
	}
	devIDs := make([]string, 0, len(devices))
	for id := range devices {
		devIDs = append(devIDs, id)
	}
	sort.Strings(devIDs)
	for _, id := range devIDs {
		get(owner(id)).Devices = append(get(owner(id)).Devices, devices[id])
	}
	keys := make([]string, 0, len(pending))
	for k := range pending {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ir := pending[k]
		shard := ""
		if len(ir.Candidates) > 0 {
			shard = owner(ir.Candidates[0].ID)
		} else if len(devIDs) > 0 {
			shard = owner(devIDs[0])
		}
		if shard == "" {
			return nil, fmt.Errorf("cluster: intent %s has no candidate devices to follow", ir.DedupKey)
		}
		get(shard).Intents = append(get(shard).Intents, ir)
	}
	var qs []wal.SnapshotQuery
	for _, sq := range queries {
		qs = append(qs, sq)
	}
	sort.Slice(qs, func(i, j int) bool { return qs[i].ID < qs[j].ID })
	for _, set := range sets {
		set.Queries = append(set.Queries, qs...)
	}
	return sets, nil
}

// AdoptStats summarizes one Adopt call.
type AdoptStats struct {
	// Devices registered (DevicesSkipped were already registered here).
	Devices        int
	DevicesSkipped int
	// Queries created (QueriesSkipped already ran here — the expected
	// outcome when several sets carry the same query).
	Queries        int
	QueriesSkipped int
	// IntentsAdopted were re-journaled and re-dispatched here;
	// IntentsClosed were duplicates of already-pending intents or expired
	// in transit (closed with FailExpired outcomes by the engine).
	IntentsAdopted int
	IntentsClosed  int
}

// Adopt applies one handoff set to a surviving shard's engine: devices
// register (already-known ones are skipped), queries are re-created from
// their journaled SQL with their stopped state preserved, and pending
// intents transplant via Engine.AdoptIntent — re-journaled locally, then
// re-dispatched or closed as expired. The engine must be started with a
// recovered journal. Adopt is idempotent: re-applying a set only
// increments the Skipped/Closed counters.
func Adopt(ctx context.Context, eng *core.Engine, set *HandoffSet) (AdoptStats, error) {
	var st AdoptStats
	for _, dr := range set.Devices {
		if _, exists := eng.Layer().Device(dr.ID); exists {
			st.DevicesSkipped++
			continue
		}
		info := comm.DeviceInfo{ID: dr.ID, Type: dr.Type, Addr: dr.Addr}
		if len(dr.Static) > 0 {
			info.Static = make(map[string]any, len(dr.Static))
			for k, v := range dr.Static {
				info.Static[k] = v
			}
		}
		var mount geo.Mount
		if dr.Mount != nil {
			mount = *dr.Mount
		}
		if err := eng.RegisterDevice(info, mount); err != nil {
			return st, fmt.Errorf("cluster: adopt device %s: %w", dr.ID, err)
		}
		st.Devices++
	}
	for _, sq := range set.Queries {
		if _, exists := eng.QueryInfo(sq.Name); exists {
			st.QueriesSkipped++
			continue
		}
		stmt := fmt.Sprintf("CREATE AQ %s AS %s", sq.Name, sq.SQL)
		if _, err := eng.Exec(ctx, stmt); err != nil {
			return st, fmt.Errorf("cluster: adopt query %s: %w", sq.Name, err)
		}
		st.Queries++
		if sq.Stopped {
			if _, err := eng.Exec(ctx, "STOP AQ "+sq.Name); err != nil {
				return st, fmt.Errorf("cluster: adopt query %s (stop): %w", sq.Name, err)
			}
		}
	}
	for i := range set.Intents {
		adopted, err := eng.AdoptIntent(&set.Intents[i])
		if err != nil {
			return st, fmt.Errorf("cluster: adopt intent %s: %w", set.Intents[i].DedupKey, err)
		}
		if adopted {
			st.IntentsAdopted++
		} else {
			st.IntentsClosed++
		}
	}
	return st, nil
}
