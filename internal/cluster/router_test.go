package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"

	"aorta/internal/frontdoor"
	"aorta/internal/netsim"
	"aorta/internal/vclock"
)

// stubShard is a scripted shard front door on a netsim listener: it
// records every statement it receives and answers from a canned handler.
type stubShard struct {
	id string

	mu    sync.Mutex
	stmts []string
	reply func(stmt string) map[string]any
}

func (s *stubShard) record(stmt string) {
	s.mu.Lock()
	s.stmts = append(s.stmts, stmt)
	s.mu.Unlock()
}

func (s *stubShard) received() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.stmts...)
}

func (s *stubShard) serve(t *testing.T, ln net.Listener) {
	t.Helper()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				sc := bufio.NewScanner(conn)
				enc := json.NewEncoder(conn)
				for sc.Scan() {
					line := strings.TrimSpace(sc.Text())
					if line == "" {
						continue
					}
					id, stmt, _ := frontdoor.SplitTag(line)
					s.record(stmt)
					frame := map[string]any{"ok": true}
					if s.reply != nil {
						frame = s.reply(stmt)
					}
					frame["id"] = id
					if err := enc.Encode(frame); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
}

// clusterHarness wires N stub shards behind a router on one netsim
// network.
func clusterHarness(t *testing.T, n int) (*Router, []*stubShard) {
	t.Helper()
	net := netsim.NewNetwork(vclock.Real{}, 1)
	var infos []ShardInfo
	var stubs []*stubShard
	for i := 1; i <= n; i++ {
		id := fmt.Sprintf("shard-%d", i)
		ln, err := net.Listen(id)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		stub := &stubShard{id: id}
		stub.serve(t, ln)
		stubs = append(stubs, stub)
		infos = append(infos, ShardInfo{ID: id, Addr: id})
	}
	r, err := NewRouter(RouterConfig{Shards: infos, Dialer: net})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r, stubs
}

func asResponse(t *testing.T, v any) *Response {
	t.Helper()
	resp, ok := v.(*Response)
	if !ok {
		t.Fatalf("Exec returned %T, want *Response", v)
	}
	return resp
}

// TestRouterTypePruning: a camera-only query must never land on a shard
// holding only motes.
func TestRouterTypePruning(t *testing.T) {
	r, stubs := clusterHarness(t, 3)
	// shard-1: motes only; shard-2: cameras; shard-3: motes + cameras.
	r.SetDevices([]DeviceEntry{
		{ID: "m1", Type: "sensor"}, {ID: "m2", Type: "sensor"},
		{ID: "c1", Type: "camera"}, {ID: "c2", Type: "camera"},
	})
	// Force ownership via pins so the test controls the layout exactly.
	r.mu.Lock()
	smap, err := NewMap(r.smap.Shards(), map[string]string{
		"m1": "shard-1", "m2": "shard-3", "c1": "shard-2", "c2": "shard-3",
	})
	if err != nil {
		r.mu.Unlock()
		t.Fatal(err)
	}
	r.smap = smap
	r.reindexLocked()
	r.mu.Unlock()

	resp := asResponse(t, r.Exec(context.Background(), "q1", `SELECT c.ip FROM camera c`))
	if !resp.OK {
		t.Fatalf("camera SELECT failed: %s", resp.Error)
	}
	if got := stubs[0].received(); len(got) != 0 {
		t.Errorf("mote-only shard-1 received camera-only statements: %v", got)
	}
	for _, s := range []*stubShard{stubs[1], stubs[2]} {
		if got := s.received(); len(got) != 1 {
			t.Errorf("camera shard %s received %v, want 1 statement", s.id, got)
		}
	}
}

// TestRouterIDPruning: pinning a table's id to a literal routes to the
// owner shard only.
func TestRouterIDPruning(t *testing.T) {
	r, stubs := clusterHarness(t, 3)
	r.mu.Lock()
	smap, err := NewMap(r.smap.Shards(), map[string]string{
		"m1": "shard-1", "m2": "shard-2", "m3": "shard-3",
	})
	if err != nil {
		r.mu.Unlock()
		t.Fatal(err)
	}
	r.smap = smap
	r.mu.Unlock()
	r.SetDevices([]DeviceEntry{
		{ID: "m1", Type: "sensor"}, {ID: "m2", Type: "sensor"}, {ID: "m3", Type: "sensor"},
	})

	resp := asResponse(t, r.Exec(context.Background(), "",
		`CREATE AQ watch AS SELECT s.accel_x FROM sensor s WHERE s.id = "m2" EVERY "5s"`))
	if !resp.OK {
		t.Fatalf("CREATE AQ failed: %s", resp.Error)
	}
	if got := stubs[1].received(); len(got) != 1 {
		t.Fatalf("owner shard-2 received %v, want the CREATE AQ", got)
	}
	for _, s := range []*stubShard{stubs[0], stubs[2]} {
		if got := s.received(); len(got) != 0 {
			t.Errorf("non-owner %s received %v", s.id, got)
		}
	}

	// The catalog remembers where the query went: DROP follows it.
	resp = asResponse(t, r.Exec(context.Background(), "", "DROP AQ watch"))
	if !resp.OK {
		t.Fatalf("DROP AQ failed: %s", resp.Error)
	}
	if got := stubs[1].received(); len(got) != 2 {
		t.Errorf("owner shard-2 received %v, want CREATE + DROP", got)
	}
	if got := stubs[0].received(); len(got) != 0 {
		t.Errorf("shard-1 received %v, want nothing", got)
	}
}

// TestRouterMergeTagsRows: merged ad-hoc rows carry their source shard.
func TestRouterMergeTagsRows(t *testing.T) {
	r, stubs := clusterHarness(t, 2)
	for i, s := range stubs {
		i := i
		s.reply = func(stmt string) map[string]any {
			return map[string]any{"ok": true, "rows": []map[string]any{{"accel_x": float64(100 + i)}}}
		}
	}
	resp := asResponse(t, r.Exec(context.Background(), "q9", `SELECT s.accel_x FROM sensor s`))
	if !resp.OK {
		t.Fatalf("SELECT failed: %s", resp.Error)
	}
	if resp.ID != "q9" {
		t.Errorf("response id = %q, want q9", resp.ID)
	}
	if len(resp.Rows) != 2 {
		t.Fatalf("merged %d rows, want 2", len(resp.Rows))
	}
	var shards []string
	for _, row := range resp.Rows {
		shard, _ := row["shard"].(string)
		shards = append(shards, shard)
	}
	sort.Strings(shards)
	if shards[0] != "shard-1" || shards[1] != "shard-2" {
		t.Errorf("row shard tags = %v, want [shard-1 shard-2]", shards)
	}
}

// TestRouterPartialFailure: mixed success/failure surfaces the typed
// partial error with per-shard codes — not first-error-wins.
func TestRouterPartialFailure(t *testing.T) {
	r, stubs := clusterHarness(t, 3)
	stubs[1].reply = func(stmt string) map[string]any {
		return map[string]any{"ok": false, "error": "disk full", "code": "degraded"}
	}
	resp := asResponse(t, r.Exec(context.Background(), "p1", `CREATE AQ x AS SELECT s.accel_x FROM sensor s EVERY "5s"`))
	if resp.OK {
		t.Fatal("partial failure reported as success")
	}
	if resp.Code != frontdoor.CodePartial {
		t.Errorf("code = %q, want %q", resp.Code, frontdoor.CodePartial)
	}
	want := map[string]string{"shard-1": "ok", "shard-2": "degraded", "shard-3": "ok"}
	for shard, code := range want {
		if resp.Shards[shard] != code {
			t.Errorf("shards[%s] = %q, want %q", shard, resp.Shards[shard], code)
		}
	}
	if !strings.Contains(resp.Error, "disk full") {
		t.Errorf("error %q does not carry the shard failure", resp.Error)
	}
	// A partial CREATE AQ must not be recorded as routed: DROP broadcasts.
	if _, ok := r.catalog["x"]; ok {
		t.Error("failed CREATE AQ left a catalog entry")
	}
}

// TestRouterUniformFailure: when every shard fails the same way the
// shared code propagates instead of "partial".
func TestRouterUniformFailure(t *testing.T) {
	r, stubs := clusterHarness(t, 2)
	for _, s := range stubs {
		s.reply = func(stmt string) map[string]any {
			return map[string]any{"ok": false, "error": "read-only", "code": "degraded"}
		}
	}
	resp := asResponse(t, r.Exec(context.Background(), "", `CREATE AQ y AS SELECT s.accel_x FROM sensor s EVERY "5s"`))
	if resp.OK {
		t.Fatal("uniform failure reported as success")
	}
	if resp.Code != "degraded" {
		t.Errorf("code = %q, want degraded (uniform failure is not partial)", resp.Code)
	}
}

// TestRouterMetricsAggregation: \metrics merges per-shard frames into a
// breakdown plus summed aggregate.
func TestRouterMetricsAggregation(t *testing.T) {
	r, stubs := clusterHarness(t, 2)
	for i, s := range stubs {
		i := i
		s.reply = func(stmt string) map[string]any {
			return map[string]any{"ok": true, "metrics": map[string]any{
				"Requests":    float64(10 * (i + 1)),
				"Successes":   float64(9 * (i + 1)),
				"MeanLatency": float64(1000 * (i + 1)),
				"Failures":    map[string]any{"expired": float64(i + 1)},
			}}
		}
	}
	resp := asResponse(t, r.Exec(context.Background(), "", `\metrics`))
	if !resp.OK {
		t.Fatalf("\\metrics failed: %s", resp.Error)
	}
	if resp.Cluster == nil || len(resp.Cluster.Shards) != 2 {
		t.Fatalf("cluster breakdown missing: %+v", resp.Cluster)
	}
	agg := resp.Cluster.Aggregate
	if got := agg["Requests"]; got != float64(30) {
		t.Errorf("aggregate Requests = %v, want 30", got)
	}
	if got := agg["Successes"]; got != float64(27) {
		t.Errorf("aggregate Successes = %v, want 27", got)
	}
	// Weighted mean: (10*1000 + 20*2000) / 30.
	if got := agg["MeanLatency"]; got != float64(50000)/30 {
		t.Errorf("aggregate MeanLatency = %v, want %v", got, float64(50000)/30)
	}
	if f, ok := agg["Failures"].(map[string]any); !ok || f["expired"] != float64(3) {
		t.Errorf("aggregate Failures = %v, want expired=3", agg["Failures"])
	}
}

// TestRouterRetire: a retired shard stops receiving statements and its
// catalog entries recompute to the survivors.
func TestRouterRetire(t *testing.T) {
	r, stubs := clusterHarness(t, 2)
	r.mu.Lock()
	smap, err := NewMap(r.smap.Shards(), map[string]string{"m1": "shard-2"})
	if err != nil {
		r.mu.Unlock()
		t.Fatal(err)
	}
	r.smap = smap
	r.mu.Unlock()
	r.SetDevices([]DeviceEntry{{ID: "m1", Type: "sensor"}})

	resp := asResponse(t, r.Exec(context.Background(), "",
		`CREATE AQ z AS SELECT s.accel_x FROM sensor s WHERE s.id = "m1" EVERY "5s"`))
	if !resp.OK {
		t.Fatalf("CREATE AQ failed: %s", resp.Error)
	}
	if got := stubs[1].received(); len(got) != 1 {
		t.Fatalf("shard-2 received %v", got)
	}

	if err := r.Retire("shard-2"); err != nil {
		t.Fatal(err)
	}
	// m1's owner is now shard-1 (the pin's shard is gone), so the catalog
	// entry must have been recomputed and DROP routes to shard-1.
	resp = asResponse(t, r.Exec(context.Background(), "", "DROP AQ z"))
	if !resp.OK {
		t.Fatalf("DROP AQ after retire failed: %s", resp.Error)
	}
	if got := stubs[0].received(); len(got) != 1 || !strings.HasPrefix(got[0], "DROP") {
		t.Errorf("survivor shard-1 received %v, want the DROP", got)
	}

	if err := r.Retire("shard-1"); err == nil {
		t.Error("retiring the last shard succeeded")
	}
}

// TestRouterNoCoverageSelect: with inventory present and no shard holding
// the queried type, an ad-hoc SELECT answers locally with zero rows.
func TestRouterNoCoverageSelect(t *testing.T) {
	r, stubs := clusterHarness(t, 2)
	r.SetDevices([]DeviceEntry{{ID: "m1", Type: "sensor"}})
	resp := asResponse(t, r.Exec(context.Background(), "", `SELECT p.number FROM phone p`))
	if !resp.OK {
		t.Fatalf("zero-coverage SELECT failed: %s", resp.Error)
	}
	if len(resp.Rows) != 0 {
		t.Errorf("zero-coverage SELECT returned rows: %v", resp.Rows)
	}
	for _, s := range stubs {
		for _, stmt := range s.received() {
			if strings.HasPrefix(stmt, "SELECT p.number") {
				t.Errorf("zero-coverage SELECT reached shard %s", s.id)
			}
		}
	}
}
