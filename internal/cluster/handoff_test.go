package cluster

import (
	"context"
	"testing"
	"time"

	"aorta/internal/core"
	"aorta/internal/device"
	"aorta/internal/device/phone"
	"aorta/internal/netsim"
	"aorta/internal/vclock"
	"aorta/internal/wal"
)

func appendRec(t *testing.T, j *wal.Journal, kind wal.Kind, payload any) {
	t.Helper()
	rec, err := wal.NewRecord(kind, payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec); err != nil {
		t.Fatal(err)
	}
}

// TestPlanHandoff partitions a synthesized departed-shard journal:
// devices go to their new owners, queries go to every receiving set, and
// only outcome-less intents survive, following their first candidate.
func TestPlanHandoff(t *testing.T) {
	dir := t.TempDir()
	j, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"m1", "m2", "m3", "m4"} {
		appendRec(t, j, wal.KindRegisterDevice, wal.DeviceRecord{ID: id, Type: "sensor", Addr: id})
	}
	appendRec(t, j, wal.KindRegisterDevice, wal.DeviceRecord{ID: "gone", Type: "sensor", Addr: "gone"})
	appendRec(t, j, wal.KindUnregisterDevice, wal.DeviceRecord{ID: "gone"})
	appendRec(t, j, wal.KindCreateQuery, wal.QueryRecord{ID: 1, Name: "q1", SQL: `SELECT s.accel_x FROM sensor s EVERY "60s"`})
	appendRec(t, j, wal.KindCreateQuery, wal.QueryRecord{ID: 2, Name: "q2", SQL: `SELECT s.accel_x FROM sensor s EVERY "60s"`})
	appendRec(t, j, wal.KindStopQuery, wal.QueryRefRecord{Name: "q2"})
	appendRec(t, j, wal.KindCreateQuery, wal.QueryRecord{ID: 3, Name: "dropped", SQL: `SELECT s.accel_x FROM sensor s EVERY "60s"`})
	appendRec(t, j, wal.KindDropQuery, wal.QueryRefRecord{Name: "dropped"})
	appendRec(t, j, wal.KindIntent, wal.IntentRecord{
		DedupKey: "q1|a|0", RequestID: 1, Query: "q1", Action: "beep",
		Candidates: []wal.CandidateRecord{{ID: "m1"}},
	})
	appendRec(t, j, wal.KindIntent, wal.IntentRecord{
		DedupKey: "q1|b|0", RequestID: 2, Query: "q1", Action: "beep",
		Candidates: []wal.CandidateRecord{{ID: "m3"}},
	})
	appendRec(t, j, wal.KindOutcome, wal.OutcomeRecord{DedupKey: "q1|a|0", RequestID: 1})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	owner := func(deviceID string) string {
		if deviceID == "m1" || deviceID == "m2" {
			return "shard-A"
		}
		return "shard-B"
	}
	sets, err := PlanHandoff(dir, owner)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 2 {
		t.Fatalf("got %d handoff sets, want 2", len(sets))
	}
	a, b := sets["shard-A"], sets["shard-B"]
	if a == nil || b == nil {
		t.Fatalf("missing sets: %v", sets)
	}
	if len(a.Devices) != 2 || a.Devices[0].ID != "m1" || a.Devices[1].ID != "m2" {
		t.Errorf("shard-A devices = %v", a.Devices)
	}
	if len(b.Devices) != 2 || b.Devices[0].ID != "m3" || b.Devices[1].ID != "m4" {
		t.Errorf("shard-B devices = %v", b.Devices)
	}
	for _, set := range []*HandoffSet{a, b} {
		if len(set.Queries) != 2 {
			t.Fatalf("%s queries = %v, want q1+q2 (dropped query must not replay)", set.Shard, set.Queries)
		}
		if set.Queries[0].Name != "q1" || set.Queries[0].Stopped {
			t.Errorf("%s queries[0] = %+v, want running q1", set.Shard, set.Queries[0])
		}
		if set.Queries[1].Name != "q2" || !set.Queries[1].Stopped {
			t.Errorf("%s queries[1] = %+v, want stopped q2", set.Shard, set.Queries[1])
		}
	}
	// Intent 1 has an outcome — gone. Intent 2 follows candidate m3 → B.
	if len(a.Intents) != 0 {
		t.Errorf("shard-A intents = %v, want none", a.Intents)
	}
	if len(b.Intents) != 1 || b.Intents[0].DedupKey != "q1|b|0" {
		t.Errorf("shard-B intents = %v, want the outcome-less one", b.Intents)
	}
}

// TestAdoptTransplantsIntent runs a real adoption: a surviving engine
// receives a handoff set carrying a phone device, a notify query, and a
// pending notify intent with journaled args — and must execute the intent
// to a successful outcome, with the intent re-journaled locally first.
func TestAdoptTransplantsIntent(t *testing.T) {
	clk := vclock.NewScaled(100)
	network := netsim.NewNetwork(clk, 7)
	lis, err := network.Listen("phone-1")
	if err != nil {
		t.Fatal(err)
	}
	srv := device.Serve(lis, phone.New("phone-1", "+85255501", "manager", clk))
	defer srv.Close()

	j, err := wal.Open(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	eng, err := core.New(core.Config{
		Clock: clk, Dialer: network, Journal: j,
		DisableLiveness: true, MaxAttempts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := eng.Recover(ctx); err != nil {
		t.Fatal(err)
	}
	outcomes := eng.SubscribeOutcomes(64)
	if err := eng.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	now := clk.Now()
	deadline := now.Add(10 * time.Minute)
	set := &HandoffSet{
		Shard: "survivor",
		Devices: []wal.DeviceRecord{{
			ID: "phone-1", Type: "phone", Addr: "phone-1",
			Static: map[string]any{"number": "+85255501", "owner": "manager"},
		}},
		Queries: []wal.SnapshotQuery{{
			QueryRecord: wal.QueryRecord{
				ID: 1, Name: "alerts",
				SQL: `SELECT notify(p.number, "moved") FROM phone p EVERY "30m"`,
			},
		}},
		Intents: []wal.IntentRecord{{
			DedupKey:   core.IntentDedupKey("alerts", "evt-1", deadline),
			RequestID:  42,
			QueryID:    1,
			Query:      "alerts",
			Action:     "notify",
			EventKey:   "evt-1",
			CreatedNS:  now.UnixNano(),
			DeadlineNS: deadline.UnixNano(),
			Candidates: []wal.CandidateRecord{{ID: "phone-1"}},
			Args:       map[string][]any{"phone-1": {"+85255501", "moved"}},
		}},
	}

	st, err := Adopt(ctx, eng, set)
	if err != nil {
		t.Fatal(err)
	}
	if st.Devices != 1 || st.Queries != 1 || st.IntentsAdopted != 1 {
		t.Fatalf("adopt stats = %+v, want 1 device, 1 query, 1 intent adopted", st)
	}
	if _, ok := eng.QueryInfo("alerts"); !ok {
		t.Fatal("adopted query not in catalog")
	}

	// The transplanted intent must run to completion on the survivor.
	waitUntil := time.After(10 * time.Second)
	for {
		select {
		case o := <-outcomes:
			if o.EventKey != "evt-1" {
				continue // the adopted query's own epochs may fire too
			}
			if o.Err != nil {
				t.Fatalf("adopted intent failed: %v (%s)", o.Err, o.Failure)
			}
			if o.DeviceID != "phone-1" {
				t.Fatalf("adopted intent ran on %s, want phone-1", o.DeviceID)
			}
			if eng.JournalPending() != 0 {
				t.Fatalf("journal pending = %d after outcome, want 0", eng.JournalPending())
			}
			// Re-applying the set must be a no-op.
			st2, err := Adopt(ctx, eng, set)
			if err != nil {
				t.Fatal(err)
			}
			if st2.Devices != 0 || st2.Queries != 0 || st2.IntentsAdopted != 0 {
				t.Fatalf("second adopt stats = %+v, want all skipped", st2)
			}
			return
		case <-waitUntil:
			t.Fatal("adopted intent produced no outcome within 10s")
		}
	}
}

// TestAdoptExpiredIntent: an intent whose deadline passed in transit is
// closed with a FailExpired outcome, not fired stale.
func TestAdoptExpiredIntent(t *testing.T) {
	clk := vclock.NewScaled(100)
	network := netsim.NewNetwork(clk, 7)
	j, err := wal.Open(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	eng, err := core.New(core.Config{Clock: clk, Dialer: network, Journal: j, DisableLiveness: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := eng.Recover(ctx); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	deadline := clk.Now().Add(-time.Minute)
	set := &HandoffSet{
		Shard: "survivor",
		Intents: []wal.IntentRecord{{
			DedupKey:   core.IntentDedupKey("alerts", "evt-2", deadline),
			RequestID:  43,
			Query:      "alerts",
			Action:     "notify",
			EventKey:   "evt-2",
			CreatedNS:  deadline.Add(-time.Minute).UnixNano(),
			DeadlineNS: deadline.UnixNano(),
			Candidates: []wal.CandidateRecord{{ID: "phone-1"}},
			Args:       map[string][]any{"phone-1": {"+85255501", "late"}},
		}},
	}
	st, err := Adopt(ctx, eng, set)
	if err != nil {
		t.Fatal(err)
	}
	if st.IntentsAdopted != 0 || st.IntentsClosed != 1 {
		t.Fatalf("adopt stats = %+v, want the intent closed as expired", st)
	}
	if eng.JournalPending() != 0 {
		t.Fatalf("journal pending = %d, want 0 (expired intent must close)", eng.JournalPending())
	}
	m := eng.Metrics()
	if m.Failures[core.FailExpired] != 1 {
		t.Fatalf("failures = %v, want one FailExpired", m.Failures)
	}
}
