package cluster

import (
	"fmt"
	"testing"
)

func deviceIDs(n int) []string {
	ids := make([]string, 0, n)
	for i := 1; i <= n; i++ {
		ids = append(ids, fmt.Sprintf("mote-%d", i))
	}
	return ids
}

func shardIDs(n int) []string {
	ids := make([]string, 0, n)
	for i := 1; i <= n; i++ {
		ids = append(ids, fmt.Sprintf("shard-%d", i))
	}
	return ids
}

func TestMapRejectsBadMembership(t *testing.T) {
	if _, err := NewMap(nil, nil); err == nil {
		t.Fatal("empty membership accepted")
	}
	if _, err := NewMap([]string{"a", ""}, nil); err == nil {
		t.Fatal("empty shard id accepted")
	}
	if _, err := NewMap([]string{"a", "a"}, nil); err == nil {
		t.Fatal("duplicate shard id accepted")
	}
}

// TestMapDeterministic asserts the mapping depends only on inputs: two
// independently constructed maps (shard list given in different orders)
// agree on every owner. This is the cross-process identity guarantee —
// there is no seed, no process state, no call-order dependence.
func TestMapDeterministic(t *testing.T) {
	a, err := NewMap([]string{"shard-1", "shard-2", "shard-3"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMap([]string{"shard-3", "shard-1", "shard-2"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, dev := range deviceIDs(500) {
		if ao, bo := a.Owner(dev), b.Owner(dev); ao != bo {
			t.Fatalf("owner(%s) differs across maps: %s vs %s", dev, ao, bo)
		}
	}
}

// TestMapGoldenOwners pins a handful of concrete assignments. FNV-64a is
// stable across platforms and Go versions, so these never move unless the
// hashing scheme itself changes — which would silently remap every
// deployed cluster and must be caught.
func TestMapGoldenOwners(t *testing.T) {
	m, err := NewMap(shardIDs(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	golden := map[string]string{
		"mote-1":   "shard-4",
		"mote-2":   "shard-4",
		"mote-3":   "shard-2",
		"camera-1": "shard-3",
		"phone-1":  "shard-4",
	}
	for dev, want := range golden {
		if got := m.Owner(dev); got != want {
			t.Errorf("owner(%s) = %s, want %s (hash scheme changed?)", dev, got, want)
		}
	}
}

// TestMapStabilityOnGrowth asserts the rendezvous property exactly: when a
// shard joins, the devices that move are precisely those the new shard now
// owns — no device migrates between two surviving shards — and the moved
// fraction is close to the ideal 1/N.
func TestMapStabilityOnGrowth(t *testing.T) {
	devices := deviceIDs(2000)
	for _, n := range []int{1, 2, 4, 8} {
		before, err := NewMap(shardIDs(n), nil)
		if err != nil {
			t.Fatal(err)
		}
		joined := fmt.Sprintf("shard-%d", n+1)
		after, err := before.WithShards(append(shardIDs(n), joined))
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, dev := range devices {
			was, is := before.Owner(dev), after.Owner(dev)
			if was == is {
				continue
			}
			moved++
			if is != joined {
				t.Fatalf("n=%d: %s moved %s→%s, but only moves onto the joining shard are allowed", n, dev, was, is)
			}
		}
		// Ideal is len(devices)/(n+1). FNV spreads well enough that 2000
		// devices land within ±35% of ideal for every n tested here; the
		// bound is deterministic because the hash is.
		ideal := float64(len(devices)) / float64(n+1)
		if f := float64(moved); f < 0.65*ideal || f > 1.35*ideal {
			t.Errorf("n=%d→%d: moved %d devices, want ~%.0f (±35%%)", n, n+1, moved, ideal)
		}
	}
}

// TestMapStabilityOnRemoval is the inverse property: removing a shard
// moves exactly the devices it owned, and nothing else.
func TestMapStabilityOnRemoval(t *testing.T) {
	devices := deviceIDs(2000)
	before, err := NewMap(shardIDs(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	const victim = "shard-3"
	var survivors []string
	for _, s := range shardIDs(4) {
		if s != victim {
			survivors = append(survivors, s)
		}
	}
	after, err := before.WithShards(survivors)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, dev := range devices {
		was, is := before.Owner(dev), after.Owner(dev)
		if was != victim {
			if was != is {
				t.Fatalf("%s moved %s→%s although its owner survived", dev, was, is)
			}
			continue
		}
		moved++
		if is == victim {
			t.Fatalf("%s still owned by removed shard", dev)
		}
	}
	ideal := float64(len(devices)) / 4
	if f := float64(moved); f < 0.65*ideal || f > 1.35*ideal {
		t.Errorf("removal moved %d devices, want ~%.0f (±35%%)", moved, ideal)
	}
}

// TestMapPins asserts pinned devices follow their pin while it is a live
// member and fall back to the hash when it is not.
func TestMapPins(t *testing.T) {
	pins := map[string]string{"phone-1": "shard-2", "phone-2": "shard-9"}
	m, err := NewMap(shardIDs(4), pins)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Owner("phone-1"); got != "shard-2" {
		t.Errorf("pinned owner = %s, want shard-2", got)
	}
	// phone-2 is pinned to a non-member: hash decides.
	unpinned, err := NewMap(shardIDs(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.Owner("phone-2"), unpinned.Owner("phone-2"); got != want {
		t.Errorf("dead pin owner = %s, want hash fallback %s", got, want)
	}
	// Pins survive membership change.
	grown, err := m.WithShards(shardIDs(8))
	if err != nil {
		t.Fatal(err)
	}
	if got := grown.Owner("phone-1"); got != "shard-2" {
		t.Errorf("pin lost across WithShards: owner = %s", got)
	}
}

func TestPartitionCoversEveryShard(t *testing.T) {
	m, err := NewMap(shardIDs(8), nil)
	if err != nil {
		t.Fatal(err)
	}
	parts := m.Partition(deviceIDs(3)) // fewer devices than shards
	if len(parts) != 8 {
		t.Fatalf("partition has %d entries, want 8 (empty shards must be visible)", len(parts))
	}
	total := 0
	for _, ids := range parts {
		total += len(ids)
	}
	if total != 3 {
		t.Fatalf("partition assigned %d devices, want 3", total)
	}
}
