// Package cluster scales the Aorta engine horizontally: the device
// population is partitioned across N independent engine instances
// (shards) by a deterministic shard map, a router fans statements out to
// the shards whose device coverage they can touch and merges the
// responses, and shard handoff replays a departed shard's write-ahead
// journal into the surviving owners so rebalancing keeps the single-
// engine zero-loss guarantee.
//
// The shard map uses rendezvous (highest-random-weight) hashing: every
// (shard, device) pair is scored with an FNV-64a hash and the device
// belongs to the highest-scoring shard. The mapping needs no coordination
// and no state beyond the member list — two processes holding the same
// member list compute identical owners — and membership change moves only
// the devices whose maximum moved: adding a shard steals ~1/N of each
// existing shard's devices, removing one redistributes exactly its own.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Map assigns device IDs to shards. It is immutable; membership changes
// produce a new Map via WithShards.
type Map struct {
	shards []string          // sorted, unique
	pins   map[string]string // device id → shard id (manifest affinity)
}

// NewMap builds a shard map over the given shard IDs. pins overrides the
// hash for specific devices (zone/type affinity from the manifest); a pin
// to a shard not in the member list is ignored, so pins survive the
// pinned shard's departure by falling back to the hash.
func NewMap(shards []string, pins map[string]string) (*Map, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: shard map needs at least one shard")
	}
	sorted := make([]string, 0, len(shards))
	seen := make(map[string]bool, len(shards))
	for _, s := range shards {
		if s == "" {
			return nil, fmt.Errorf("cluster: empty shard id")
		}
		if seen[s] {
			return nil, fmt.Errorf("cluster: duplicate shard id %q", s)
		}
		seen[s] = true
		sorted = append(sorted, s)
	}
	sort.Strings(sorted)
	m := &Map{shards: sorted}
	if len(pins) > 0 {
		m.pins = make(map[string]string, len(pins))
		for dev, shard := range pins {
			m.pins[dev] = shard
		}
	}
	return m, nil
}

// Shards returns the member shard IDs in sorted order.
func (m *Map) Shards() []string {
	out := make([]string, len(m.shards))
	copy(out, m.shards)
	return out
}

// Contains reports whether shard is a member.
func (m *Map) Contains(shard string) bool {
	i := sort.SearchStrings(m.shards, shard)
	return i < len(m.shards) && m.shards[i] == shard
}

// Owner returns the shard owning deviceID: its pin when pinned to a live
// member, else the rendezvous winner. The result depends only on the
// member list and the pins, never on call order or process identity.
func (m *Map) Owner(deviceID string) string {
	if shard, ok := m.pins[deviceID]; ok && m.Contains(shard) {
		return shard
	}
	best := ""
	var bestScore uint64
	for _, shard := range m.shards {
		s := score(shard, deviceID)
		// Strict > with the sorted member list makes ties (astronomically
		// rare) break toward the lexicographically first shard, keeping the
		// mapping total-order deterministic.
		if best == "" || s > bestScore {
			best, bestScore = shard, s
		}
	}
	return best
}

// WithShards returns a map over a new member list with the same pins.
func (m *Map) WithShards(shards []string) (*Map, error) {
	return NewMap(shards, m.pins)
}

// Partition groups deviceIDs by owner. Every member shard gets an entry,
// so empty shards are visible to callers (manifest validation reports
// them as defects).
func (m *Map) Partition(deviceIDs []string) map[string][]string {
	out := make(map[string][]string, len(m.shards))
	for _, s := range m.shards {
		out[s] = nil
	}
	for _, id := range deviceIDs {
		owner := m.Owner(id)
		out[owner] = append(out[owner], id)
	}
	for _, ids := range out {
		sort.Strings(ids)
	}
	return out
}

// score is the rendezvous weight of one (shard, device) pair: FNV-64a
// over "shard\x00device" pushed through a splitmix64 finalizer. Raw FNV
// avalanches poorly on short sequential keys ("mote-1", "mote-2", ...),
// which skews ownership badly; the finalizer restores uniform spread while
// staying just as deterministic across platforms and processes.
func score(shard, deviceID string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(shard))
	h.Write([]byte{0})
	h.Write([]byte(deviceID))
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
