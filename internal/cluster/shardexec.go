package cluster

import (
	"context"
	"errors"
	"strings"

	"aorta/internal/core"
	"aorta/internal/frontdoor"
	"aorta/internal/wal"
)

// shardResponse is the shard-side response frame: the subset of the
// daemon's frame an in-process shard serves. Field names and JSON keys
// match cmd/aortad so the router decodes both identically.
type shardResponse struct {
	ID        string                     `json:"id,omitempty"`
	OK        bool                       `json:"ok"`
	Code      string                     `json:"code,omitempty"`
	Error     string                     `json:"error,omitempty"`
	Message   string                     `json:"message,omitempty"`
	Rows      []map[string]any           `json:"rows,omitempty"`
	Queries   []core.Info                `json:"queries,omitempty"`
	Names     []string                   `json:"names,omitempty"`
	Metrics   *core.MetricsSnapshot      `json:"metrics,omitempty"`
	Frontdoor *frontdoor.MetricsSnapshot `json:"frontdoor,omitempty"`
	Wal       *wal.Stats                 `json:"wal,omitempty"`
}

// ShardExec returns a frontdoor.Exec serving one engine — the shard-side
// half of an in-process cluster (the cluster study, tests). It executes
// SQL through the engine and answers \metrics; cmd/aortad's richer exec
// (photos, lab stimulation) is a superset with the same frame shape.
func ShardExec(eng *core.Engine, door *frontdoor.Door) frontdoor.Exec {
	return func(ctx context.Context, id, stmt string) any {
		if strings.HasPrefix(stmt, "\\") {
			resp := &shardResponse{ID: id}
			switch strings.Fields(stmt)[0] {
			case "\\ping":
				// The router's health probe: any response frame proves the
				// shard alive, this one just costs nothing to serve.
				resp.OK = true
				resp.Message = "pong"
				return resp
			case "\\metrics":
			default:
				resp.Error = "unknown command " + stmt
				return resp
			}
			m := eng.Metrics()
			resp.OK = true
			resp.Metrics = &m
			if door != nil {
				fm := door.Metrics()
				resp.Frontdoor = &fm
			}
			if ws, ok := eng.JournalStats(); ok {
				resp.Wal = &ws
			}
			return resp
		}
		resp := &shardResponse{ID: id, OK: true}
		res, err := eng.Exec(ctx, stmt)
		if err != nil {
			resp.OK = false
			resp.Error = err.Error()
			resp.Code = shardErrorCode(ctx, err)
		} else {
			resp.Message = res.Message
			resp.Rows = res.Rows
			resp.Queries = res.Queries
			resp.Names = res.Names
		}
		return resp
	}
}

// shardErrorCode maps an engine error to its wire code (the daemon's
// errorCode, minus lab-only cases).
func shardErrorCode(ctx context.Context, err error) string {
	cause := context.Cause(ctx)
	switch {
	case errors.Is(err, core.ErrDraining):
		return frontdoor.CodeDraining
	case errors.Is(err, core.ErrDegraded):
		return frontdoor.CodeDegraded
	case errors.Is(err, core.ErrQuarantined):
		return frontdoor.CodeQuarantined
	case errors.Is(err, core.ErrPanic):
		return frontdoor.CodePanic
	case errors.Is(err, context.DeadlineExceeded),
		ctx.Err() != nil && errors.Is(cause, context.DeadlineExceeded):
		return frontdoor.CodeDeadlineExceeded
	default:
		return ""
	}
}
