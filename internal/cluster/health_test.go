package cluster

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"aorta/internal/frontdoor"
	"aorta/internal/netsim"
	"aorta/internal/vclock"
)

// healthHarness wires N stub shards behind a router with an explicit
// health config (clusterHarness keeps the defaults).
func healthHarness(t *testing.T, n int, hcfg HealthConfig, pins map[string]string) (*Router, []*stubShard) {
	t.Helper()
	net := netsim.NewNetwork(vclock.Real{}, 1)
	var infos []ShardInfo
	var stubs []*stubShard
	for i := 1; i <= n; i++ {
		id := fmt.Sprintf("shard-%d", i)
		ln, err := net.Listen(id)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		stub := &stubShard{id: id}
		stub.serve(t, ln)
		stubs = append(stubs, stub)
		infos = append(infos, ShardInfo{ID: id, Addr: id})
	}
	r, err := NewRouter(RouterConfig{Shards: infos, Pins: pins, Dialer: net, Health: hcfg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r, stubs
}

// TestRetireRacesFanout: retiring a shard while a fan-out statement is
// in flight on it must fail that shard's slice typed — "partial" with
// an "unreachable" code — and never hang or panic. Run under -race.
func TestRetireRacesFanout(t *testing.T) {
	r, stubs := clusterHarness(t, 2)
	block := make(chan struct{})
	t.Cleanup(func() { close(block) })
	stubs[1].reply = func(stmt string) map[string]any {
		<-block // hold the statement in flight until the test releases it
		return map[string]any{"ok": true}
	}

	done := make(chan *Response, 1)
	go func() {
		done <- asResponse(t, r.Exec(context.Background(), "race",
			`CREATE AQ r AS SELECT s.accel_x FROM sensor s EVERY "5s"`))
	}()

	// Wait until the statement is demonstrably in flight on shard-2,
	// then yank shard-2 out of the membership underneath it.
	deadline := time.Now().Add(5 * time.Second)
	for len(stubs[1].received()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("statement never reached shard-2")
		}
		time.Sleep(time.Millisecond)
	}
	if err := r.Retire("shard-2"); err != nil {
		t.Fatal(err)
	}

	select {
	case resp := <-done:
		if resp.OK {
			t.Fatal("fan-out raced by Retire reported success")
		}
		if resp.Code != frontdoor.CodePartial {
			t.Errorf("code = %q, want %q", resp.Code, frontdoor.CodePartial)
		}
		if got := resp.Shards["shard-2"]; got != frontdoor.CodeUnreachable {
			t.Errorf("shards[shard-2] = %q, want %q", got, frontdoor.CodeUnreachable)
		}
		if got := resp.Shards["shard-1"]; got != "ok" {
			t.Errorf("shards[shard-1] = %q, want ok", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("fan-out hung after Retire of an in-flight shard")
	}
}

// TestShardConnBackoffShedsAndEvidence: after a dial failure the next
// statement inside the backoff window is shed without a redial and
// without feeding the detector fresh failure evidence; once the window
// passes, the redial runs and the failure streak grows.
func TestShardConnBackoffShedsAndEvidence(t *testing.T) {
	clk := vclock.NewManual(time.Unix(1000, 0))
	net := netsim.NewNetwork(clk, 1)
	ln, err := net.Listen("shard-1")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	stub := &stubShard{id: "shard-1"}
	stub.serve(t, ln)
	// shard-2 has no listener: every dial fails immediately.
	r, err := NewRouter(RouterConfig{
		Shards: []ShardInfo{{ID: "shard-1", Addr: "shard-1"}, {ID: "shard-2", Addr: "shard-2"}},
		Dialer: net,
		Health: HealthConfig{Clock: clk, BreakerThreshold: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)

	exec := func() *Response {
		return asResponse(t, r.Exec(context.Background(), "", "SHOW DEVICES"))
	}
	fails := func() int {
		h := r.Health()
		if h == nil {
			t.Fatal("health view disabled")
		}
		return h.Shards["shard-2"].ConsecutiveFailures
	}

	if resp := exec(); resp.OK || resp.Shards["shard-2"] != frontdoor.CodeUnreachable {
		t.Fatalf("first broadcast = %+v, want shard-2 unreachable", resp)
	}
	if got := fails(); got != 1 {
		t.Fatalf("failures after dial error = %d, want 1", got)
	}
	// Inside the backoff window: shed, no dial, no fresh evidence.
	if resp := exec(); resp.OK || resp.Shards["shard-2"] != frontdoor.CodeUnreachable {
		t.Fatalf("shed broadcast = %+v, want shard-2 unreachable", resp)
	}
	if !strings.Contains(strings.ToLower(exec().Error), "backoff") {
		t.Error("shed failure does not name the dial backoff")
	}
	if got := fails(); got != 1 {
		t.Errorf("failures after shed statement = %d, want still 1 (shed carries no evidence)", got)
	}
	if h := r.Health(); !h.Shards["shard-2"].DialBackoff {
		t.Error("health view does not show shard-2 in dial backoff")
	}
	// Past the window the redial runs (and fails) again.
	clk.Advance(10 * time.Second)
	exec()
	if got := fails(); got != 2 {
		t.Errorf("failures after backoff expiry = %d, want 2", got)
	}
}

// TestAutoRetireAfterGrace: a shard Down past the grace window is
// retired by the router itself and the handoff hook runs with the
// post-retirement owner map.
func TestAutoRetireAfterGrace(t *testing.T) {
	clk := vclock.NewManual(time.Unix(1000, 0))
	var mu sync.Mutex
	var handoffVictim, handoffOwner string
	hcfg := HealthConfig{
		Clock:       clk,
		AutoRetire:  true,
		GraceWindow: time.Minute,
		Handoff: func(ctx context.Context, victim string, owner func(string) string) (AdoptStats, error) {
			mu.Lock()
			handoffVictim, handoffOwner = victim, owner("m1")
			mu.Unlock()
			return AdoptStats{Devices: 1}, nil
		},
	}
	r, _ := healthHarness(t, 3, hcfg, map[string]string{"m1": "shard-3"})

	// Three consecutive failures: shard-3 goes Down and the grace timer
	// arms. The evidence is fed directly — the wire path has its own tests.
	for i := 0; i < 3; i++ {
		r.observeShard("shard-3", false)
	}
	deadline := time.Now().Add(10 * time.Second)
	for r.Map().Contains("shard-3") {
		if time.Now().After(deadline) {
			t.Fatalf("shard-3 never auto-retired (events: %v)", r.MembershipEvents())
		}
		clk.Advance(2 * time.Minute)
		time.Sleep(2 * time.Millisecond)
	}

	retireDeadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		victim, owner := handoffVictim, handoffOwner
		mu.Unlock()
		if victim != "" {
			if victim != "shard-3" {
				t.Fatalf("handoff victim = %q, want shard-3", victim)
			}
			if owner == "shard-3" || owner == "" {
				t.Fatalf("handoff owner(m1) = %q, want a survivor", owner)
			}
			break
		}
		if time.Now().After(retireDeadline) {
			t.Fatal("handoff hook never ran after auto-retire")
		}
		time.Sleep(2 * time.Millisecond)
	}

	var sawRetire, sawHandoff bool
	for _, ev := range r.MembershipEvents() {
		if ev.Shard == "shard-3" && ev.Action == "auto-retired" {
			sawRetire = true
		}
		if ev.Shard == "shard-3" && ev.Action == "handoff" {
			sawHandoff = true
		}
	}
	if !sawRetire || !sawHandoff {
		t.Errorf("membership journal missing auto-retired/handoff for shard-3: %v", r.MembershipEvents())
	}
}

// TestAutoRetireQuorumGuard: when most of the membership looks Down at
// once — the signature of a partitioned ROUTER, not dead shards — the
// grace timer must hold its fire instead of amputating the cluster.
func TestAutoRetireQuorumGuard(t *testing.T) {
	clk := vclock.NewManual(time.Unix(1000, 0))
	hcfg := HealthConfig{Clock: clk, AutoRetire: true, GraceWindow: time.Minute}
	r, _ := healthHarness(t, 4, hcfg, nil)

	// 3 of 4 shards Down: for any victim only 1 of its 3 peers is up,
	// under the default 50% quorum (need 1.5).
	for _, id := range []string{"shard-2", "shard-3", "shard-4"} {
		for i := 0; i < 3; i++ {
			r.observeShard(id, false)
		}
	}
	skipped := false
	deadline := time.Now().Add(5 * time.Second)
	for !skipped && time.Now().Before(deadline) {
		clk.Advance(2 * time.Minute)
		time.Sleep(2 * time.Millisecond)
		for _, ev := range r.MembershipEvents() {
			if ev.Action == "retire-skipped" {
				skipped = true
			}
			if ev.Action == "auto-retired" || ev.Action == "retired" {
				t.Fatalf("shard %s retired below quorum: %s", ev.Shard, ev.Reason)
			}
		}
	}
	if !skipped {
		t.Fatal("quorum guard never recorded a retire-skipped event")
	}
	if got := len(r.Map().Shards()); got != 4 {
		t.Errorf("membership shrank to %d below quorum, want 4", got)
	}
}

// TestShardBreaker: threshold failures inside the window open the
// circuit; the cooldown admits exactly one half-open trial whose
// outcome closes or re-opens it.
func TestShardBreaker(t *testing.T) {
	t0 := time.Unix(2000, 0)
	b := newShardBreaker(3, 10*time.Second, 5*time.Second)

	b.record(t0, false)
	b.record(t0.Add(time.Second), false)
	if !b.allow(t0.Add(2 * time.Second)) {
		t.Fatal("breaker open below threshold")
	}
	b.record(t0.Add(2*time.Second), false)
	if b.allow(t0.Add(3 * time.Second)) {
		t.Fatal("breaker closed after threshold failures inside the window")
	}
	// Cooldown: one half-open trial, not a floodgate.
	if !b.allow(t0.Add(8 * time.Second)) {
		t.Fatal("half-open trial refused after cooldown")
	}
	if b.allow(t0.Add(8 * time.Second)) {
		t.Fatal("second statement admitted during the half-open trial")
	}
	// Failed trial restarts the cooldown.
	b.record(t0.Add(9*time.Second), false)
	if b.allow(t0.Add(10 * time.Second)) {
		t.Fatal("breaker closed right after a failed half-open trial")
	}
	if !b.allow(t0.Add(15 * time.Second)) {
		t.Fatal("no new trial after the restarted cooldown")
	}
	b.record(t0.Add(15*time.Second), true)
	if !b.allow(t0.Add(15 * time.Second)) {
		t.Fatal("breaker still open after a successful trial")
	}

	// Window expiry: old failures age out instead of accumulating.
	b2 := newShardBreaker(3, 10*time.Second, 5*time.Second)
	b2.record(t0, false)
	b2.record(t0.Add(time.Second), false)
	b2.record(t0.Add(20*time.Second), false) // first two aged out
	if !b2.allow(t0.Add(21 * time.Second)) {
		t.Error("stale failures outside the window opened the breaker")
	}

	// Disabled breaker (negative threshold) is a nil receiver: all no-ops.
	var nb *shardBreaker = newShardBreaker(-1, 0, 0)
	if nb != nil {
		t.Fatal("negative threshold did not disable the breaker")
	}
	if !nb.allow(t0) || nb.isOpen() {
		t.Error("nil breaker blocked a statement")
	}
	nb.record(t0, false)
}

// TestBackoffFor: the doubling schedule with its cap.
func TestBackoffFor(t *testing.T) {
	base, max := time.Second, 60*time.Second
	for _, tc := range []struct {
		fails int
		want  time.Duration
	}{
		{1, time.Second}, {2, 2 * time.Second}, {3, 4 * time.Second},
		{6, 32 * time.Second}, {7, 60 * time.Second}, {20, 60 * time.Second},
	} {
		if got := backoffFor(base, max, tc.fails); got != tc.want {
			t.Errorf("backoffFor(%d) = %v, want %v", tc.fails, got, tc.want)
		}
	}
}

// TestParseDrainShard: the DRAIN SHARD statement grammar.
func TestParseDrainShard(t *testing.T) {
	for _, tc := range []struct {
		stmt   string
		victim string
		ok     bool
	}{
		{"DRAIN SHARD shard-2", "shard-2", true},
		{"drain shard s1;", "s1", true},
		{"  Drain  Shard  x  ", "x", true},
		{"DRAIN SHARD", "", false},
		{"DRAIN SHARD a b", "", false},
		{"SELECT s.x FROM sensor s", "", false},
		{"DRAINAGE SHARD x", "", false},
	} {
		victim, ok := parseDrainShard(tc.stmt)
		if ok != tc.ok || victim != tc.victim {
			t.Errorf("parseDrainShard(%q) = (%q, %v), want (%q, %v)", tc.stmt, victim, ok, tc.victim, tc.ok)
		}
	}
}

// TestExecDrain: the router-side drain path — validation, the drainer
// contract (survivor-only owner map), retirement, and the membership
// journal.
func TestExecDrain(t *testing.T) {
	var mu sync.Mutex
	var drainVictim, drainOwner string
	hcfg := HealthConfig{
		Drainer: func(ctx context.Context, victim string, owner func(string) string) (DrainReport, error) {
			mu.Lock()
			drainVictim, drainOwner = victim, owner("m1")
			mu.Unlock()
			return DrainReport{Devices: 2, Queries: 1}, nil
		},
	}
	r, _ := healthHarness(t, 2, hcfg, map[string]string{"m1": "shard-2"})

	if resp := asResponse(t, r.Exec(context.Background(), "", "DRAIN SHARD nope")); resp.OK ||
		!strings.Contains(resp.Error, "unknown shard") {
		t.Fatalf("draining an unknown shard = %+v", resp)
	}

	resp := asResponse(t, r.Exec(context.Background(), "d1", "DRAIN SHARD shard-2"))
	if !resp.OK {
		t.Fatalf("DRAIN SHARD failed: %s", resp.Error)
	}
	if !strings.Contains(resp.Message, "drained") || !strings.Contains(resp.Message, "2 devices") {
		t.Errorf("drain message %q does not carry the moved counts", resp.Message)
	}
	mu.Lock()
	if drainVictim != "shard-2" {
		t.Errorf("drainer victim = %q, want shard-2", drainVictim)
	}
	if drainOwner != "shard-1" {
		t.Errorf("drainer owner(m1) = %q, want the survivor shard-1 (the m1 pin must not survive the drain)", drainOwner)
	}
	mu.Unlock()
	if r.Map().Contains("shard-2") {
		t.Error("drained shard still in the membership")
	}
	var sawDraining, sawDrained bool
	for _, ev := range r.MembershipEvents() {
		if ev.Shard == "shard-2" && ev.Action == "draining" {
			sawDraining = true
		}
		if ev.Shard == "shard-2" && ev.Action == "drained" {
			sawDrained = true
		}
	}
	if !sawDraining || !sawDrained {
		t.Errorf("membership journal missing draining/drained: %v", r.MembershipEvents())
	}

	// The survivor is the last shard: refuse to drain it.
	if resp := asResponse(t, r.Exec(context.Background(), "", "DRAIN SHARD shard-1")); resp.OK ||
		!strings.Contains(resp.Error, "last shard") {
		t.Fatalf("draining the last shard = %+v", resp)
	}
}

// TestDrainWithoutDrainer: a router with no drainer refuses the
// statement instead of silently retiring the shard.
func TestDrainWithoutDrainer(t *testing.T) {
	r, _ := clusterHarness(t, 2)
	resp := asResponse(t, r.Exec(context.Background(), "", "DRAIN SHARD shard-2"))
	if resp.OK || !strings.Contains(resp.Error, "no drainer") {
		t.Fatalf("drain without a drainer = %+v", resp)
	}
	if !r.Map().Contains("shard-2") {
		t.Error("shard-2 left the membership without a drainer")
	}
}

// TestShardCommand: the single-shard control used by the wire-only
// drain path.
func TestShardCommand(t *testing.T) {
	r, stubs := clusterHarness(t, 2)
	if err := r.ShardCommand(context.Background(), "shard-2", "\\drain"); err != nil {
		t.Fatalf("ShardCommand: %v", err)
	}
	if got := stubs[1].received(); len(got) != 1 || got[0] != "\\drain" {
		t.Errorf("shard-2 received %v, want the forwarded \\drain", got)
	}
	if got := stubs[0].received(); len(got) != 0 {
		t.Errorf("shard-1 received %v, want nothing (single-shard command)", got)
	}
	if err := r.ShardCommand(context.Background(), "nope", "\\drain"); err == nil {
		t.Error("ShardCommand to an unknown shard succeeded")
	}
	stubs[1].reply = func(stmt string) map[string]any {
		return map[string]any{"ok": false, "error": "boom"}
	}
	if err := r.ShardCommand(context.Background(), "shard-2", "\\drain"); err == nil ||
		!strings.Contains(err.Error(), "boom") {
		t.Errorf("ShardCommand error = %v, want the shard's failure", err)
	}
}

// TestMetricsCarriesRouterHealth: the \metrics frame includes the
// per-shard health view when the apparatus is on, and omits it when
// disabled.
func TestMetricsCarriesRouterHealth(t *testing.T) {
	r, _ := clusterHarness(t, 2)
	resp := asResponse(t, r.Exec(context.Background(), "", `\metrics`))
	if resp.Router == nil {
		t.Fatal("\\metrics frame has no router health section")
	}
	if len(resp.Router.Shards) != 2 {
		t.Errorf("router health covers %d shards, want 2", len(resp.Router.Shards))
	}

	net := netsim.NewNetwork(vclock.Real{}, 1)
	ln, err := net.Listen("s1")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	(&stubShard{id: "s1"}).serve(t, ln)
	rd, err := NewRouter(RouterConfig{
		Shards: []ShardInfo{{ID: "s1", Addr: "s1"}},
		Dialer: net,
		Health: HealthConfig{Disabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rd.Close)
	if resp := asResponse(t, rd.Exec(context.Background(), "", `\metrics`)); resp.Router != nil {
		t.Error("disabled health apparatus still reports a router health section")
	}
}
